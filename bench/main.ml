(** Benchmark harness.

    - [dune exec bench/main.exe] runs every experiment E1-E15 (DESIGN.md's
      index of the paper's tables and figures) and prints paper-vs-measured
      rows.
    - [dune exec bench/main.exe -- e12 e14] runs a subset.
    - [dune exec bench/main.exe -- bechamel] runs the Bechamel
      micro-benchmarks (one [Test.make] per experiment family).
    - [dune exec bench/main.exe -- trace] prints the per-stage span
      breakdown (times + size counters) for a compile+run of a multiplier.
    - [dune exec bench/main.exe -- parallel] measures domain-parallel SA
      read-batch scaling on a 300-variable spin glass. *)

let run_experiments ids =
  let selected =
    if ids = [] then Experiments.all
    else
      List.filter_map
        (fun id ->
           match List.find_opt (fun (eid, _, _) -> eid = id) Experiments.all with
           | Some e -> Some e
           | None ->
             Printf.eprintf "unknown experiment %s\n" id;
             None)
        ids
  in
  print_endline "Reproduction of 'Targeting Classical Code to a Quantum Annealer' (ASPLOS'19)";
  print_endline "Absolute numbers come from a classical substrate; compare shapes, not values.";
  List.iter
    (fun (_, _, run) ->
       let t0 = Unix.gettimeofday () in
       run ();
       Printf.printf "[%.1fs]\n" (Unix.gettimeofday () -. t0))
    selected

(* --- Bechamel micro-benchmarks -------------------------------------------- *)

let bechamel () =
  let open Bechamel in
  let open Toolkit in
  (* Small fixed workloads, one per experiment family. *)
  let fig2 =
    "module circuit (s, a, b, c); input s, a, b; output [1:0] c; assign c = s ? a + b : a - b; endmodule"
  in
  let compiled = Qac_core.Pipeline.compile fig2 in
  let logical = compiled.Qac_core.Pipeline.program.Qac_qmasm.Assemble.problem in
  let australia_csp () =
    Qac_csp.Mzn.parse
      "var 1..4: NSW; var 1..4: QLD; var 1..4: SA; var 1..4: VIC; var 1..4: WA;\n\
       var 1..4: NT; var 1..4: ACT;\n\
       constraint WA != NT; constraint WA != SA; constraint NT != SA;\n\
       constraint NT != QLD; constraint SA != QLD; constraint SA != NSW;\n\
       constraint SA != VIC; constraint QLD != NSW; constraint NSW != VIC;\n\
       constraint NSW != ACT;\nsolve satisfy;\n"
  in
  let chimera = Qac_chimera.Chimera.create 4 in
  let triangle =
    Qac_ising.Problem.create ~num_vars:3 ~h:[| 0.5; 0.5; 0.5 |]
      ~j:[ ((0, 1), 1.0); ((1, 2), 1.0); ((0, 2), 1.0) ]
      ()
  in
  let and_table = Qac_cellgen.Truthtab.of_function ~num_inputs:2 (fun v -> v.(0) && v.(1)) in
  let sa_params =
    { Qac_anneal.Sa.default_params with Qac_anneal.Sa.num_reads = 5; num_sweeps = 100 }
  in
  let tests =
    [ Test.make ~name:"e1-compile: verilog->ising (fig2)"
        (Staged.stage (fun () -> ignore (Qac_core.Pipeline.compile fig2)));
      Test.make ~name:"e4-cellgen: derive AND via LP"
        (Staged.stage (fun () -> ignore (Qac_cellgen.Gen.derive_exact and_table)));
      Test.make ~name:"e6-exact: enumerate fig2 problem"
        (Staged.stage (fun () -> ignore (Qac_ising.Exact.solve ~limit:1 logical)));
      Test.make ~name:"e9-embed: triangle into C4"
        (Staged.stage (fun () -> ignore (Qac_embed.Cmr.find chimera triangle)));
      Test.make ~name:"e12-sa: 5 reads x 100 sweeps (fig2 problem)"
        (Staged.stage (fun () -> ignore (Qac_anneal.Sa.sample ~params:sa_params logical)));
      Test.make ~name:"e15-csp: solve Listing 8"
        (Staged.stage
           (fun () ->
              let csp = australia_csp () in
              ignore (Qac_csp.Csp.solve csp)));
      Test.make ~name:"qmasm: parse+assemble stdcell AND"
        (Staged.stage
           (fun () ->
              ignore
                (Qac_qmasm.Qmasm.load ~resolve:Qac_edif2qmasm.Edif2qmasm.resolve
                   "!include \"stdcell.qmasm\"\n!use_macro AND g\n")));
    ]
  in
  print_endline "Bechamel micro-benchmarks (time per run, monotonic clock):";
  List.iter
    (fun test ->
       let instances = Instance.[ monotonic_clock ] in
       let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
       let results = Benchmark.all cfg instances test in
       let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
       let analyzed = Analyze.all ols Instance.monotonic_clock results in
       Hashtbl.iter
         (fun name result ->
            match Analyze.OLS.estimates result with
            | Some [ est ] ->
              Printf.printf "  %-48s %12.1f us\n" name (est /. 1000.0)
            | Some _ | None -> Printf.printf "  %-48s (no estimate)\n" name)
         analyzed)
    tests

(* --- Per-stage tracing ------------------------------------------------------ *)

let trace_breakdown () =
  let module P = Qac_core.Pipeline in
  let module Trace = Qac_diag.Trace in
  let src =
    "module mult (a, b, p); input [2:0] a; input [2:0] b; output [5:0] p; \
     assign p = a * b; endmodule"
  in
  let trace = Trace.create () in
  let t = P.compile ~trace src in
  let params =
    { Qac_anneal.Sa.default_params with Qac_anneal.Sa.num_reads = 200; num_sweeps = 500 }
  in
  let result =
    P.run t ~pins:[ ("p", 15) ] ~trace ~solver:(P.Sa params) ~target:P.Logical
  in
  Printf.printf "per-stage trace (compile + run, 3x3 multiplier, p pinned to 15):\n";
  Format.printf "%a" Trace.pp trace;
  Printf.printf "valid solutions: %d of %d distinct\n"
    (List.length (P.valid_solutions result))
    (List.length result.P.solutions)

(* --- Domain-parallel SA scaling --------------------------------------------- *)

let parallel_scaling () =
  let module Rng = Qac_anneal.Rng in
  (* A 300-variable random spin glass: ring + random chords. *)
  let n = 300 in
  let rng = Rng.create 1 in
  let h = Array.init n (fun _ -> (Rng.float rng *. 2.0) -. 1.0) in
  let seen = Hashtbl.create 1024 in
  let j = ref [] in
  for i = 0 to n - 1 do
    Hashtbl.replace seen (i, (i + 1) mod n) ();
    j := ((i, (i + 1) mod n), (Rng.float rng *. 2.0) -. 1.0) :: !j
  done;
  let added = ref 0 in
  while !added < 3 * n do
    let a = Rng.int rng n and b = Rng.int rng n in
    let key = (min a b, max a b) in
    if a <> b && not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      j := (key, (Rng.float rng *. 2.0) -. 1.0) :: !j;
      incr added
    end
  done;
  let problem = Qac_ising.Problem.create ~num_vars:n ~h ~j:!j () in
  let params =
    { Qac_anneal.Sa.default_params with
      Qac_anneal.Sa.num_reads = 256;
      num_sweeps = 400;
      seed = 7 }
  in
  Printf.printf
    "domain-parallel SA: %d vars, %d terms, %d reads x %d sweeps (%d cores available)\n"
    n
    (Qac_ising.Problem.num_terms problem)
    params.Qac_anneal.Sa.num_reads params.Qac_anneal.Sa.num_sweeps
    (Domain.recommended_domain_count ());
  let baseline = ref 0.0 in
  List.iter
    (fun threads ->
       let r = Qac_anneal.Parallel.sample_sa ~num_threads:threads ~params problem in
       let wall = r.Qac_anneal.Sampler.elapsed_seconds in
       if threads = 1 then baseline := wall;
       Printf.printf
         "  threads=%-2d  wall=%7.3fs  speedup=%5.2fx  distinct=%d  best=%g\n" threads wall
         (!baseline /. wall)
         (Qac_anneal.Sampler.num_distinct r)
         (Qac_anneal.Sampler.best r).Qac_anneal.Sampler.energy)
    [ 1; 2; 4; 8 ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "bechamel" ] -> bechamel ()
  | [ "trace" ] -> trace_breakdown ()
  | [ "parallel" ] -> parallel_scaling ()
  | ids -> run_experiments ids
