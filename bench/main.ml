(** Benchmark harness.

    - [dune exec bench/main.exe] runs every experiment E1-E15 (DESIGN.md's
      index of the paper's tables and figures) and prints paper-vs-measured
      rows.
    - [dune exec bench/main.exe -- e12 e14] runs a subset.
    - [dune exec bench/main.exe -- bechamel] runs the Bechamel
      micro-benchmarks (one [Test.make] per experiment family).
    - [dune exec bench/main.exe -- trace] prints the per-stage span
      breakdown (times + size counters) for a compile+run of a multiplier.
    - [dune exec bench/main.exe -- parallel] measures domain-parallel SA
      read-batch scaling on a 300-variable spin glass.
    - [dune exec bench/main.exe -- kernel [smoke]] compares the list-walking
      baseline sweep kernel against the CSR + incremental-field kernel on
      Chimera-structured spin glasses and writes [BENCH_ANNEAL.json].
      [smoke] restricts to small sizes/sweep counts for CI.
    - [dune exec bench/main.exe -- embed [smoke]] compares the pre-PR minor
      embedder ({!Embed_baseline}) against the CSR + scratch-reusing
      [Qac_embed.Cmr] on spin-glass and multiplier interaction graphs,
      measures the embedding cache cold/warm behaviour, and writes
      [BENCH_EMBED.json].
    - [dune exec bench/main.exe -- batch [smoke]] compares batched-tiled
      serving ([Qac_serve] packing jobs onto one C16 via [Qac_embed.Tiler])
      against sequential [Pipeline.run] per job on a fleet of small
      circuits, and writes [BENCH_BATCH.json].
    - [dune exec bench/main.exe -- serve [smoke]] pushes the same mixed
      workload through the sharded serving tier (1 vs 4 shards, affinity
      vs round-robin routing, in-process vs through the socket front end),
      checks responses stay bit-identical across every arm, and writes
      [BENCH_SERVE.json].
    - [dune exec bench/main.exe -- pegasus [smoke]] compares Pegasus against
      Chimera at matched working-qubit budgets (C4 vs P3, C8 vs P5): minor
      embedding of the paper's circuits (qubit counts, max/mean chain
      length), end-to-end [Pipeline.run] latency, a tiled multi-job batch
      served on Pegasus, native-K4 clique embeddings, and the cell library
      rederived under the Advantage coefficient ranges.  Writes
      [BENCH_PEGASUS.json].
    - [dune exec bench/main.exe -- sat [smoke]] batch-serves planted random
      3-SAT instances (compiled to Ising penalties by [Qac_sat]) through the
      tiler on Chimera and Pegasus, reporting solved fraction, jobs/s, and
      embedding-cache sharing across the structurally identical batch; writes
      [BENCH_SAT.json]. *)

let run_experiments ids =
  let selected =
    if ids = [] then Experiments.all
    else
      List.filter_map
        (fun id ->
           match List.find_opt (fun (eid, _, _) -> eid = id) Experiments.all with
           | Some e -> Some e
           | None ->
             Printf.eprintf "unknown experiment %s\n" id;
             None)
        ids
  in
  print_endline "Reproduction of 'Targeting Classical Code to a Quantum Annealer' (ASPLOS'19)";
  print_endline "Absolute numbers come from a classical substrate; compare shapes, not values.";
  List.iter
    (fun (_, _, run) ->
       let t0 = Unix.gettimeofday () in
       run ();
       Printf.printf "[%.1fs]\n" (Unix.gettimeofday () -. t0))
    selected

(* --- Bechamel micro-benchmarks -------------------------------------------- *)

let bechamel () =
  let open Bechamel in
  let open Toolkit in
  (* Small fixed workloads, one per experiment family. *)
  let fig2 =
    "module circuit (s, a, b, c); input s, a, b; output [1:0] c; assign c = s ? a + b : a - b; endmodule"
  in
  let compiled = Qac_core.Pipeline.compile fig2 in
  let logical = compiled.Qac_core.Pipeline.program.Qac_qmasm.Assemble.problem in
  let australia_csp () =
    Qac_csp.Mzn.parse
      "var 1..4: NSW; var 1..4: QLD; var 1..4: SA; var 1..4: VIC; var 1..4: WA;\n\
       var 1..4: NT; var 1..4: ACT;\n\
       constraint WA != NT; constraint WA != SA; constraint NT != SA;\n\
       constraint NT != QLD; constraint SA != QLD; constraint SA != NSW;\n\
       constraint SA != VIC; constraint QLD != NSW; constraint NSW != VIC;\n\
       constraint NSW != ACT;\nsolve satisfy;\n"
  in
  let chimera = Qac_chimera.Chimera.create 4 in
  let triangle =
    Qac_ising.Problem.create ~num_vars:3 ~h:[| 0.5; 0.5; 0.5 |]
      ~j:[ ((0, 1), 1.0); ((1, 2), 1.0); ((0, 2), 1.0) ]
      ()
  in
  let and_table = Qac_cellgen.Truthtab.of_function ~num_inputs:2 (fun v -> v.(0) && v.(1)) in
  let sa_params =
    { Qac_anneal.Sa.default_params with Qac_anneal.Sa.num_reads = 5; num_sweeps = 100 }
  in
  let tests =
    [ Test.make ~name:"e1-compile: verilog->ising (fig2)"
        (Staged.stage (fun () -> ignore (Qac_core.Pipeline.compile fig2)));
      Test.make ~name:"e4-cellgen: derive AND via LP"
        (Staged.stage (fun () -> ignore (Qac_cellgen.Gen.derive_exact and_table)));
      Test.make ~name:"e6-exact: enumerate fig2 problem"
        (Staged.stage (fun () -> ignore (Qac_ising.Exact.solve ~limit:1 logical)));
      Test.make ~name:"e9-embed: triangle into C4"
        (Staged.stage (fun () -> ignore (Qac_embed.Cmr.find chimera triangle)));
      Test.make ~name:"e12-sa: 5 reads x 100 sweeps (fig2 problem)"
        (Staged.stage (fun () -> ignore (Qac_anneal.Sa.sample ~params:sa_params logical)));
      Test.make ~name:"e15-csp: solve Listing 8"
        (Staged.stage
           (fun () ->
              let csp = australia_csp () in
              ignore (Qac_csp.Csp.solve csp)));
      Test.make ~name:"qmasm: parse+assemble stdcell AND"
        (Staged.stage
           (fun () ->
              ignore
                (Qac_qmasm.Qmasm.load ~resolve:Qac_edif2qmasm.Edif2qmasm.resolve
                   "!include \"stdcell.qmasm\"\n!use_macro AND g\n")));
    ]
  in
  print_endline "Bechamel micro-benchmarks (time per run, monotonic clock):";
  List.iter
    (fun test ->
       let instances = Instance.[ monotonic_clock ] in
       let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
       let results = Benchmark.all cfg instances test in
       let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
       let analyzed = Analyze.all ols Instance.monotonic_clock results in
       Hashtbl.iter
         (fun name result ->
            match Analyze.OLS.estimates result with
            | Some [ est ] ->
              Printf.printf "  %-48s %12.1f us\n" name (est /. 1000.0)
            | Some _ | None -> Printf.printf "  %-48s (no estimate)\n" name)
         analyzed)
    tests

(* --- Per-stage tracing ------------------------------------------------------ *)

let trace_breakdown () =
  let module P = Qac_core.Pipeline in
  let module Trace = Qac_diag.Trace in
  let src =
    "module mult (a, b, p); input [2:0] a; input [2:0] b; output [5:0] p; \
     assign p = a * b; endmodule"
  in
  let trace = Trace.create () in
  let t = P.compile ~trace src in
  let params =
    { Qac_anneal.Sa.default_params with Qac_anneal.Sa.num_reads = 200; num_sweeps = 500 }
  in
  let result =
    P.run t ~pins:[ ("p", 15) ] ~trace ~solver:(P.Sa params) ~target:P.Logical
  in
  Printf.printf "per-stage trace (compile + run, 3x3 multiplier, p pinned to 15):\n";
  Format.printf "%a" Trace.pp trace;
  Printf.printf "valid solutions: %d of %d distinct\n"
    (List.length (P.valid_solutions result))
    (List.length result.P.solutions)

(* --- Domain-parallel SA scaling --------------------------------------------- *)

let parallel_scaling () =
  let module Rng = Qac_anneal.Rng in
  (* A 300-variable random spin glass: ring + random chords. *)
  let n = 300 in
  let rng = Rng.create 1 in
  let h = Array.init n (fun _ -> (Rng.float rng *. 2.0) -. 1.0) in
  let seen = Hashtbl.create 1024 in
  let j = ref [] in
  for i = 0 to n - 1 do
    Hashtbl.replace seen (i, (i + 1) mod n) ();
    j := ((i, (i + 1) mod n), (Rng.float rng *. 2.0) -. 1.0) :: !j
  done;
  let added = ref 0 in
  while !added < 3 * n do
    let a = Rng.int rng n and b = Rng.int rng n in
    let key = (min a b, max a b) in
    if a <> b && not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      j := (key, (Rng.float rng *. 2.0) -. 1.0) :: !j;
      incr added
    end
  done;
  let problem = Qac_ising.Problem.create ~num_vars:n ~h ~j:!j () in
  let params =
    { Qac_anneal.Sa.default_params with
      Qac_anneal.Sa.num_reads = 256;
      num_sweeps = 400;
      seed = 7 }
  in
  Printf.printf
    "domain-parallel SA: %d vars, %d terms, %d reads x %d sweeps (%d cores available)\n"
    n
    (Qac_ising.Problem.num_terms problem)
    params.Qac_anneal.Sa.num_reads params.Qac_anneal.Sa.num_sweeps
    (Domain.recommended_domain_count ());
  let baseline = ref 0.0 in
  List.iter
    (fun threads ->
       let r = Qac_anneal.Parallel.sample_sa ~num_threads:threads ~params problem in
       let wall = r.Qac_anneal.Sampler.elapsed_seconds in
       if threads = 1 then baseline := wall;
       Printf.printf
         "  threads=%-2d  wall=%7.3fs  speedup=%5.2fx  distinct=%d  best=%g\n" threads wall
         (!baseline /. wall)
         (Qac_anneal.Sampler.num_distinct r)
         (Qac_anneal.Sampler.best r).Qac_anneal.Sampler.energy)
    [ 1; 2; 4; 8 ]

(* --- Annealing kernel microbenchmark ---------------------------------------- *)

(* A Chimera-structured spin glass: the native topology of the paper's
   target hardware, so degrees (5-6) match what embedded problems see. *)
let chimera_glass ~m ~seed =
  let module Rng = Qac_anneal.Rng in
  let module Chimera = Qac_chimera.Chimera in
  let g = Chimera.create m in
  let n = Chimera.num_qubits g in
  let rng = Rng.create seed in
  let h = Array.init n (fun _ -> (Rng.float rng *. 2.0) -. 1.0) in
  let j =
    List.map
      (fun (a, b) -> ((a, b), (Rng.float rng *. 2.0) -. 1.0))
      (Chimera.edges g)
  in
  Qac_ising.Problem.create ~num_vars:n ~h ~j ()

(* The pre-CSR kernel, verbatim: adjacency as a boxed [(int * float) list]
   per spin (built by prepending, as [adjacency_of_couplers] did), local
   field re-derived by a list fold on every proposal. *)
let baseline_sweeps (p : Qac_ising.Problem.t) ~rng ~schedule ~num_sweeps =
  let n = p.Qac_ising.Problem.num_vars in
  let adj = Array.make n [] in
  Array.iter
    (fun ((i, j), v) ->
       adj.(i) <- (j, v) :: adj.(i);
       adj.(j) <- (i, v) :: adj.(j))
    p.Qac_ising.Problem.couplers;
  let module Rng = Qac_anneal.Rng in
  let spins = Rng.spins rng n in
  let order = Array.init n (fun i -> i) in
  for step = 0 to num_sweeps - 1 do
    let beta = Qac_anneal.Schedule.beta schedule ~step ~num_steps:num_sweeps in
    Rng.shuffle rng order;
    Array.iter
      (fun i ->
         let field =
           List.fold_left
             (fun acc (j, v) -> acc +. (v *. float_of_int spins.(j)))
             p.Qac_ising.Problem.h.(i) adj.(i)
         in
         let delta = -2.0 *. float_of_int spins.(i) *. field in
         if delta <= 0.0 || Rng.float rng < exp (-.beta *. delta) then
           spins.(i) <- -spins.(i))
      order
  done;
  Qac_ising.Problem.energy p spins

let csr_sweeps (p : Qac_ising.Problem.t) ~rng ~schedule ~num_sweeps =
  let module State = Qac_anneal.State in
  let st = State.random p rng in
  let order = Array.init (State.num_vars st) (fun i -> i) in
  Qac_anneal.Rng.shuffle rng order;
  for step = 0 to num_sweeps - 1 do
    let beta = Qac_anneal.Schedule.beta schedule ~step ~num_steps:num_sweeps in
    State.metropolis_sweep st ~beta ~rng ~order
  done;
  State.energy st

(* Valid-read rates for the composite post-processors and chain-break
   policies on the E1-style circuit, solved through a minor embedding (the
   path where broken chains and excited cells actually occur).  The ramp is
   capped warm ([beta_max = 2]) so reads carry thermal excitations, like
   raw annealer samples — a fully cooled SA read is already a local
   minimum, leaving polish nothing to do.  Rate = valid occurrences /
   occurrences emitted, so [discard] is scored on what it keeps. *)
let composite_rows ~smoke () =
  let module P = Qac_core.Pipeline in
  let fig2 =
    "module circuit (s, a, b, c); input s, a, b; output [1:0] c; assign c = s ? a + b : a - b; endmodule"
  in
  let t = P.compile fig2 in
  let reads = if smoke then 40 else 200 in
  let sweeps = if smoke then 60 else 100 in
  let params =
    { Qac_anneal.Sa.default_params with
      Qac_anneal.Sa.num_reads = reads;
      num_sweeps = sweeps;
      seed = 42;
      beta_max = Some 2.0;
      greedy_postprocess = false }
  in
  let target =
    P.Physical
      { graph = Qac_chimera.Chimera.create 8;
        embed_params = None;
        chain_strength = None;
        roof_duality = false }
  in
  let cache = Qac_embed.Cache.create () in
  let configs =
    [ (`None, Qac_embed.Embedding.Vote);
      (`Polish, Qac_embed.Embedding.Vote);
      (`Gauge, Qac_embed.Embedding.Vote);
      (`None, Qac_embed.Embedding.Discard);
      (`None, Qac_embed.Embedding.Polish) ]
  in
  Printf.printf
    "composite post-processing: valid-read rate on the E1-style circuit\n\
     (minor-embedded into C8, SA %d reads x %d sweeps, ramp capped warm at \
     beta_max=2 to emulate raw annealer reads)\n"
    reads sweeps;
  List.map
    (fun (postprocess, chain_break) ->
       let t0 = Unix.gettimeofday () in
       let result =
         P.run t ~embed_cache:cache ~postprocess ~chain_break
           ~solver:(P.Sa params) ~target
       in
       let seconds = Unix.gettimeofday () -. t0 in
       let occurrences l =
         List.fold_left (fun acc (s : P.solution) -> acc + s.P.num_occurrences) 0 l
       in
       let valid = occurrences (P.valid_solutions result) in
       let total = occurrences result.P.solutions in
       let rate = float_of_int valid /. float_of_int (max 1 total) in
       let pp = Qac_anneal.Composite.string_of_postprocess postprocess in
       let cb = Qac_embed.Embedding.string_of_chain_break chain_break in
       Printf.printf
         "  postprocess=%-6s chain-break=%-7s  valid %4d / %4d reads  rate=%.3f  \
          (%.2fs)\n"
         pp cb valid total rate seconds;
       Printf.sprintf
         "    { \"postprocess\": %S, \"chain_break\": %S, \"num_reads\": %d,\n\
         \      \"valid_occurrences\": %d, \"emitted_occurrences\": %d,\n\
         \      \"valid_read_rate\": %.4f, \"seconds\": %.3f }"
         pp cb reads valid total rate seconds)
    configs

let kernel_bench ~smoke () =
  let module Rng = Qac_anneal.Rng in
  (* (chimera grid size, sweeps): 8*m^2 variables. *)
  let cases =
    if smoke then [ (4, 80); (8, 40) ] else [ (4, 3000); (8, 1200); (16, 300) ]
  in
  let repeats = if smoke then 1 else 3 in
  Printf.printf
    "annealing kernel: list-walking baseline vs CSR + incremental fields vs \
     bit-parallel 64-lane blocks\n\
     (Chimera-structured spin glass, shore 4; identical RNG streams for \
     baseline/csr)\n";
  let rows =
    List.map
      (fun (m, num_sweeps) ->
         let p = chimera_glass ~m ~seed:(100 + m) in
         let n = p.Qac_ising.Problem.num_vars in
         let couplers = Qac_ising.Problem.num_interactions p in
         let schedule = Qac_anneal.Schedule.create p in
         let time_once f =
           let rng = Rng.create 7 in
           let t0 = Unix.gettimeofday () in
           let energy = f p ~rng ~schedule ~num_sweeps in
           (Unix.gettimeofday () -. t0, energy)
         in
         (* Warm up once, then keep the fastest of [repeats] runs (the
            least-disturbed measurement on a shared machine). *)
         let time f =
           ignore (time_once f);
           let best = ref (time_once f) in
           for _ = 2 to repeats do
             let (seconds, _) as r = time_once f in
             if seconds < fst !best then best := r
           done;
           !best
         in
         let baseline_seconds, baseline_energy = time baseline_sweeps in
         let csr_seconds, csr_energy = time csr_sweeps in
         (* The packed kernel anneals 64 replicas per pass; its figure of
            merit is {e aggregate} spin-updates/s across the block.  The
            quantized problem and threshold tables are built once outside
            the timed region, mirroring the schedule setup above. *)
         let module Bitpar = Qac_anneal.Bitpar in
         let lanes = Bitpar.max_lanes in
         let q = Bitpar.quantize p in
         let acceptance = Bitpar.acceptance q schedule ~num_sweeps in
         let bitpar_once () =
           let t0 = Unix.gettimeofday () in
           let r = Bitpar.anneal_block q ~acceptance ~lanes ~block_seed:7 in
           let seconds = Unix.gettimeofday () -. t0 in
           let e =
             Array.fold_left
               (fun acc spins -> Float.min acc (Qac_ising.Problem.energy p spins))
               infinity r.Bitpar.reads
           in
           (seconds, e)
         in
         let bitpar_seconds, bitpar_energy =
           ignore (bitpar_once ());
           let best = ref (bitpar_once ()) in
           for _ = 2 to repeats do
             let (seconds, _) as r = bitpar_once () in
             if seconds < fst !best then best := r
           done;
           !best
         in
         let rate seconds = float_of_int num_sweeps /. seconds in
         let speedup = baseline_seconds /. csr_seconds in
         let csr_updates = float_of_int (n * num_sweeps) /. csr_seconds in
         let bitpar_agg_updates =
           float_of_int (n * num_sweeps * lanes) /. bitpar_seconds
         in
         let bitpar_ratio = bitpar_agg_updates /. csr_updates in
         Printf.printf
           "  n=%-5d couplers=%-5d sweeps=%-4d baseline=%8.1f sw/s  csr=%9.1f \
            sw/s  speedup=%5.2fx  bitpar=%6.0fM agg upd/s (%4.2fx csr)  \
            (E_base=%g E_csr=%g E_bp=%g)\n"
           n couplers num_sweeps (rate baseline_seconds) (rate csr_seconds) speedup
           (bitpar_agg_updates /. 1e6) bitpar_ratio baseline_energy csr_energy
           bitpar_energy;
         Printf.sprintf
           "    { \"num_vars\": %d, \"num_couplers\": %d, \"num_sweeps\": %d,\n\
           \      \"baseline_seconds\": %.6f, \"csr_seconds\": %.6f,\n\
           \      \"baseline_sweeps_per_sec\": %.1f, \"csr_sweeps_per_sec\": %.1f,\n\
           \      \"baseline_spin_updates_per_sec\": %.0f, \"csr_spin_updates_per_sec\": %.0f,\n\
           \      \"speedup\": %.2f,\n\
           \      \"bitpar_seconds\": %.6f, \"bitpar_lanes\": %d, \"bitpar_num_threads\": 1,\n\
           \      \"bitpar_agg_spin_updates_per_sec\": %.0f, \"bitpar_vs_csr\": %.2f }"
           n couplers num_sweeps baseline_seconds csr_seconds (rate baseline_seconds)
           (rate csr_seconds)
           (float_of_int (n * num_sweeps) /. baseline_seconds)
           csr_updates speedup bitpar_seconds lanes bitpar_agg_updates bitpar_ratio)
      cases
  in
  let composites = composite_rows ~smoke () in
  let oc = open_out "BENCH_ANNEAL.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"anneal-kernel\",\n\
    \  \"mode\": \"%s\",\n\
    \  \"workload\": \"Metropolis sweeps, Chimera-structured spin glass (shore 4), geometric schedule\",\n\
    \  \"kernels\": { \"baseline\": \"boxed (int * float) list adjacency, field re-derived per proposal\",\n\
    \                 \"csr\": \"row_start/col/weight arrays + incremental local-field state\",\n\
    \                 \"bitpar\": \"64 replicas per block, integer quantized fields, shared threshold tables; aggregate updates/s, single-threaded (blocks scale across domains via Parallel)\" },\n\
    \  \"results\": [\n%s\n  ],\n\
    \  \"composite_valid_read_rate\": [\n%s\n  ]\n}\n"
    (if smoke then "smoke" else "full")
    (String.concat ",\n" rows)
    (String.concat ",\n" composites);
  close_out oc;
  Printf.printf "wrote BENCH_ANNEAL.json\n"

(* --- Minor-embedding microbenchmark ----------------------------------------- *)

(* A random logical interaction graph: ring + random chords, unit weights
   (the embedder reads only the coupler structure). *)
let random_logical ~num_vars ~chords ~seed =
  let module Rng = Qac_anneal.Rng in
  let rng = Rng.create seed in
  let seen = Hashtbl.create (4 * num_vars) in
  let j = ref [] in
  for i = 0 to num_vars - 1 do
    let key = (min i ((i + 1) mod num_vars), max i ((i + 1) mod num_vars)) in
    Hashtbl.replace seen key ();
    j := (key, 1.0) :: !j
  done;
  let added = ref 0 in
  while !added < chords do
    let a = Rng.int rng num_vars and b = Rng.int rng num_vars in
    let key = (min a b, max a b) in
    if a <> b && not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      j := (key, 1.0) :: !j;
      incr added
    end
  done;
  Qac_ising.Problem.create ~num_vars ~h:(Array.make num_vars 0.0) ~j:!j ()

let multiplier_problem () =
  let src =
    "module mult (a, b, p); input [2:0] a; input [2:0] b; output [5:0] p; \
     assign p = a * b; endmodule"
  in
  let t = Qac_core.Pipeline.compile src in
  t.Qac_core.Pipeline.program.Qac_qmasm.Assemble.problem

let embed_bench ~smoke () =
  let module Embedding = Qac_embed.Embedding in
  (* (name, chimera grid size, logical problem).  The C8 spin glass is the
     acceptance workload: 512 physical qubits, single-threaded. *)
  let cases =
    if smoke then
      [ ("C4 spin glass", 4, random_logical ~num_vars:12 ~chords:12 ~seed:11);
        ("C8 spin glass", 8, random_logical ~num_vars:24 ~chords:24 ~seed:12) ]
    else
      [ ("C4 spin glass", 4, random_logical ~num_vars:16 ~chords:16 ~seed:11);
        ("C8 spin glass", 8, random_logical ~num_vars:48 ~chords:48 ~seed:12);
        ("C8 multiplier", 8, multiplier_problem ());
        ("C16 spin glass", 16, random_logical ~num_vars:72 ~chords:72 ~seed:13) ]
  in
  let tries = if smoke then 1 else 2 in
  (* The embedders use their RNG differently, so one seed's trajectory (how
     many refinement passes until a valid minor) is luck; summing over a few
     seeds compares the algorithms, not the dice. *)
  let seeds = if smoke then [ 5 ] else [ 5; 6; 7; 8; 9; 10 ] in
  Printf.printf
    "minor embedding: pre-PR baseline (tuple heap, per-call arrays, Hashtbl trim)\n\
     vs CSR + scratch-reusing Cmr (tries=%d, single-threaded, %d seed(s))\n"
    tries (List.length seeds);
  let rows =
    List.map
      (fun (name, m, p) ->
         let graph = Qac_chimera.Chimera.create m in
         let num_qubits = Qac_chimera.Chimera.num_qubits graph in
         let couplers = Qac_ising.Problem.num_interactions p in
         (* Sum wall time across seeds; keep the best embedding found. *)
         let time f =
           List.fold_left
             (fun (total, best, ok) seed ->
                (* Per-seed results are deterministic, so the min of two
                   timings measures the same computation with less of the
                   shared container's scheduling noise.  [Gc.compact] levels
                   the playing field: whoever runs second must not inherit
                   the other's major-heap garbage. *)
                let timed_once () =
                  Gc.compact ();
                  let t0 = Unix.gettimeofday () in
                  let e = f seed in
                  (Unix.gettimeofday () -. t0, e)
                in
                let t1, embedding = timed_once () in
                let t2, _ = timed_once () in
                let total = total +. Float.min t1 t2 in
                match embedding with
                | None -> (total, best, ok)
                | Some e ->
                  let q = Embedding.num_physical_qubits e in
                  (match best with
                   | Some (bq, _) when bq <= q -> (total, best, ok + 1)
                   | _ -> (total, Some (q, e), ok + 1)))
             (0.0, None, 0) seeds
         in
         let baseline_seconds, baseline_best, baseline_ok =
           time (fun seed ->
               Embed_baseline.find
                 ~params:{ Embed_baseline.default_params with tries; seed }
                 graph p)
         in
         let optimized_seconds, optimized_best, optimized_ok =
           time (fun seed ->
               Qac_embed.Cmr.find
                 ~params:
                   { Qac_embed.Cmr.default_params with tries; seed; num_threads = 1 }
                 graph p)
         in
         (* Whatever was found must be a valid minor; quality (qubit count,
            success rate) is reported so a speedup can't hide a regression. *)
         List.iter
           (fun (who, best, ok) ->
              if ok = 0 then failwith (who ^ " never embedded " ^ name);
              match best with
              | Some (_, e) ->
                (match Embedding.verify graph p e with
                 | Ok () -> ()
                 | Error msg -> failwith (who ^ " invalid on " ^ name ^ ": " ^ msg))
              | None -> ())
           [ ("baseline", baseline_best, baseline_ok);
             ("optimized", optimized_best, optimized_ok) ];
         let qubits = function Some (q, _) -> q | None -> -1 in
         let speedup = baseline_seconds /. optimized_seconds in
         Printf.printf
           "  %-16s n=%-3d couplers=%-3d qubits=%-5d baseline=%8.3fs (%d qb, %d/%d)  \
            optimized=%7.3fs (%d qb, %d/%d)  speedup=%5.2fx\n"
           name p.Qac_ising.Problem.num_vars couplers num_qubits baseline_seconds
           (qubits baseline_best) baseline_ok (List.length seeds) optimized_seconds
           (qubits optimized_best) optimized_ok (List.length seeds) speedup;
         Printf.sprintf
           "    { \"name\": %S, \"chimera_m\": %d, \"num_qubits\": %d,\n\
           \      \"logical_vars\": %d, \"logical_couplers\": %d, \"tries\": %d, \"seeds\": %d,\n\
           \      \"baseline_seconds\": %.6f, \"optimized_seconds\": %.6f,\n\
           \      \"baseline_embedding_qubits\": %d, \"optimized_embedding_qubits\": %d,\n\
           \      \"baseline_successes\": %d, \"optimized_successes\": %d,\n\
           \      \"speedup\": %.2f }"
           name m num_qubits p.Qac_ising.Problem.num_vars couplers tries
           (List.length seeds) baseline_seconds optimized_seconds
           (qubits baseline_best) (qubits optimized_best) baseline_ok optimized_ok
           speedup)
      cases
  in
  (* Cache behaviour: a second Pipeline.run of the same circuit shape must
     hit the cache and skip the embed span entirely. *)
  let module P = Qac_core.Pipeline in
  let module Trace = Qac_diag.Trace in
  let t =
    P.compile
      "module t (a, b, o); input [1:0] a; input [1:0] b; output [3:0] o; \
       assign o = a * b; endmodule"
  in
  let target =
    P.Physical
      { graph = Qac_chimera.Chimera.create 8;
        embed_params = None;
        chain_strength = None;
        roof_duality = false }
  in
  let solver =
    P.Sa { Qac_anneal.Sa.default_params with Qac_anneal.Sa.num_reads = 1; num_sweeps = 10 }
  in
  let cache = Qac_embed.Cache.create () in
  let run_traced () =
    let trace = Trace.create () in
    let (_ : P.run_result) = P.run t ~trace ~embed_cache:cache ~solver ~target in
    trace
  in
  let embed_seconds trace =
    List.fold_left
      (fun acc s -> if s.Trace.name = "embed" then acc +. s.Trace.elapsed_seconds else acc)
      0.0 (Trace.spans trace)
  in
  let cold = run_traced () in
  let warm = run_traced () in
  let cold_embed = embed_seconds cold in
  let warm_hit = Trace.find_counter warm "embed-cache-hit" "embed-cache-hit" in
  let warm_hit =
    match warm_hit with
    | Some v -> v
    | None ->
      (* The hit counter attaches to whichever span is open — look it up
         across all spans. *)
      List.fold_left
        (fun acc s ->
           match Trace.find_counter warm s.Trace.name "embed-cache-hit" with
           | Some v -> acc + v
           | None -> acc)
        0 (Trace.spans warm)
  in
  let warm_embed = embed_seconds warm in
  Printf.printf
    "  embed cache      cold=%8.3fs  warm=%8.3fs  warm-hit=%d (embed span %s)\n"
    cold_embed warm_embed warm_hit
    (if warm_embed = 0.0 then "skipped" else "present");
  let oc = open_out "BENCH_EMBED.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"minor-embedding\",\n\
    \  \"mode\": \"%s\",\n\
    \  \"workload\": \"CMR minor embedding into Chimera (shore 4), spin-glass and multiplier interaction graphs\",\n\
    \  \"embedders\": { \"baseline\": \"pre-PR: tuple-boxed heap, per-Dijkstra array allocation, Hashtbl trim\",\n\
    \                   \"optimized\": \"CSR rows, reused Dijkstra scratch, decrease-key int heap, bool-mask trim\" },\n\
    \  \"results\": [\n%s\n  ],\n\
    \  \"cache\": { \"cold_embed_seconds\": %.6f, \"warm_embed_seconds\": %.6f,\n\
    \              \"warm_cache_hits\": %d, \"warm_embed_span_skipped\": %b }\n\
     }\n"
    (if smoke then "smoke" else "full")
    (String.concat ",\n" rows)
    cold_embed warm_embed warm_hit (warm_embed = 0.0);
  close_out oc;
  Printf.printf "wrote BENCH_EMBED.json\n"

(* --- Batch serving benchmark ------------------------------------------------ *)

(* Both arms solve the same fleet of pinned adder/logic circuits against a
   C16: the sequential arm embeds each job into the full 2048-qubit graph
   (Pipeline.run, one job at a time); the batched arm hands all jobs to the
   serve scheduler, which embeds each into a small local C_k, tiles them
   side by side, and solves them concurrently.  Compilation is hoisted out
   of both timings — the comparison is about serving, not the front end. *)
let batch_bench ~smoke () =
  let module P = Qac_core.Pipeline in
  let module Serve = Qac_serve.Serve in
  let module Tiler = Qac_embed.Tiler in
  let module Sampler = Qac_anneal.Sampler in
  let widths = if smoke then [ 1; 2 ] else [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let ops = [ ("add", "+"); ("xor", "^"); ("and", "&"); ("or", "|") ] in
  let circuits =
    List.concat_map
      (fun w ->
         List.map
           (fun (opname, op) ->
              let name = Printf.sprintf "j%d_%s" w opname in
              let src =
                Printf.sprintf
                  "module %s (a, b, y); input [%d:0] a; input [%d:0] b; \
                   output [%d:0] y; assign y = a %s b; endmodule"
                  name (w - 1) (w - 1) w op
              in
              (name, w, P.compile src))
           ops)
      widths
  in
  let jobs =
    List.mapi
      (fun i (name, w, t) ->
         let pins = [ ("a", i mod (1 lsl w)); ("b", ((3 * i) + 1) mod (1 lsl w)) ] in
         (i, name, t, pins))
      circuits
  in
  let n = List.length jobs in
  let tries = if smoke then 2 else 8 in
  let sa_params =
    { Qac_anneal.Sa.default_params with
      Qac_anneal.Sa.num_reads = (if smoke then 10 else 50);
      num_sweeps = (if smoke then 50 else 200);
      seed = 42 }
  in
  let threads = min 8 (Domain.recommended_domain_count ()) in
  let graph = Qac_chimera.Chimera.create 16 in
  Printf.printf
    "batch serving: sequential Pipeline.run vs tiled Serve on %s\n\
     (%d circuits, SA %d reads x %d sweeps, embed tries=%d, %d threads)\n"
    graph.Qac_chimera.Topology.name n sa_params.Qac_anneal.Sa.num_reads
    sa_params.Qac_anneal.Sa.num_sweeps tries threads;
  let count_valid t program (resp : Sampler.response) =
    List.exists
      (fun (s : Sampler.sample) ->
         (P.solution_of_spins t ~program s.Sampler.spins).P.valid)
      resp.Sampler.samples
  in
  (* Sequential arm: one full-graph embed + solve per job. *)
  let seq_cache = Qac_embed.Cache.create () in
  let seq_valid = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (_, _, t, pins) ->
       let r =
         P.run t ~pins ~num_threads:threads ~embed_cache:seq_cache
           ~solver:(P.Sa sa_params)
           ~target:
             (P.Physical
                { graph;
                  embed_params =
                    Some { Qac_embed.Cmr.default_params with tries; num_threads = threads };
                  chain_strength = None;
                  roof_duality = false })
       in
       if P.valid_solutions r <> [] then incr seq_valid)
    jobs;
  let sequential_seconds = Unix.gettimeofday () -. t0 in
  (* Batched arm: submit everything, let the scheduler tile and solve. *)
  let batch_cache = Qac_embed.Cache.create () in
  (* CMR wants generous headroom on Chimera (chains eat qubits): slack 6
     makes the ladder's first block size succeed for nearly every job, so
     tiling pays one cheap local embed per job instead of climbing through
     failed attempts at tight sizes. *)
  let tiler_params =
    { Tiler.default_params with
      Tiler.slack = 6.0;
      Tiler.embed_params = Some { Qac_embed.Cmr.default_params with tries } }
  in
  let solver ~deadline p = P.dispatch_solver ~num_threads:1 ?deadline (P.Sa sa_params) p in
  let programs = Hashtbl.create n in
  let t0 = Unix.gettimeofday () in
  let service =
    Serve.create ~batch_jobs:n ~num_threads:threads ~tiler_params
      ~embed_cache:batch_cache ~solver ~graph ()
  in
  List.iter
    (fun (i, name, t, pins) ->
       let program = P.assemble_with_pins ~pins t in
       let id = Printf.sprintf "%s#%d" name i in
       Hashtbl.replace programs id (t, program);
       Serve.submit service
         { Serve.id; problem = program.Qac_qmasm.Assemble.problem; timeout_ms = None })
    jobs;
  let results = Serve.drain service in
  let batched_seconds = Unix.gettimeofday () -. t0 in
  let batch_valid = ref 0 and batch_done = ref 0 in
  List.iter
    (fun (r : Serve.result) ->
       (match r.Serve.status with Serve.Done -> incr batch_done | _ -> ());
       match r.Serve.response with
       | Some resp ->
         let t, program = Hashtbl.find programs r.Serve.id in
         if count_valid t program resp then incr batch_valid
       | None -> ())
    results;
  let st = Serve.stats service in
  let { Qac_embed.Cache.hits; misses; _ } = Qac_embed.Cache.stats batch_cache in
  let jps seconds = float_of_int n /. seconds in
  let speedup = sequential_seconds /. batched_seconds in
  Printf.printf
    "  sequential: %7.2fs (%5.2f jobs/s, %d/%d valid)\n\
    \  batched:    %7.2fs (%5.2f jobs/s, %d/%d done, %d/%d valid)\n\
    \  speedup=%5.2fx  batches=%d  occupancy=%.1f%%  deferrals=%d  cache=%d hit/%d miss\n"
    sequential_seconds (jps sequential_seconds) !seq_valid n batched_seconds
    (jps batched_seconds) !batch_done n !batch_valid n speedup st.Serve.batches
    (100.0 *. st.Serve.mean_occupancy) st.Serve.deferrals hits misses;
  let oc = open_out "BENCH_BATCH.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"batch-serving\",\n\
    \  \"mode\": \"%s\",\n\
    \  \"workload\": \"pinned adder/xor/and/or circuits, SA %d reads x %d sweeps, embed tries=%d\",\n\
    \  \"topology\": %S,\n\
    \  \"num_jobs\": %d,\n\
    \  \"threads\": %d,\n\
    \  \"sequential_seconds\": %.6f,\n\
    \  \"batched_seconds\": %.6f,\n\
    \  \"sequential_jobs_per_sec\": %.3f,\n\
    \  \"batched_jobs_per_sec\": %.3f,\n\
    \  \"speedup\": %.2f,\n\
    \  \"sequential_valid\": %d,\n\
    \  \"batched_done\": %d,\n\
    \  \"batched_valid\": %d,\n\
    \  \"batches\": %d,\n\
    \  \"mean_occupancy_pct\": %.1f,\n\
    \  \"deferrals\": %d,\n\
    \  \"embed_cache_hits\": %d,\n\
    \  \"embed_cache_misses\": %d\n\
     }\n"
    (if smoke then "smoke" else "full")
    sa_params.Qac_anneal.Sa.num_reads sa_params.Qac_anneal.Sa.num_sweeps tries
    graph.Qac_chimera.Topology.name n threads sequential_seconds batched_seconds
    (jps sequential_seconds) (jps batched_seconds) speedup !seq_valid !batch_done
    !batch_valid st.Serve.batches
    (100.0 *. st.Serve.mean_occupancy)
    st.Serve.deferrals hits misses;
  close_out oc;
  Printf.printf "wrote BENCH_BATCH.json\n"

(* --- Sharded serving tier ---------------------------------------------------- *)

(* The mixed workload from [batch_bench] pushed through the Shard pool at 1
   and 4 shards, with affinity vs round-robin routing as the cache
   experiment, plus one arm through the socket front end.  Three claims
   under test: (1) a 1-shard pool costs nothing over the in-process batch
   path; (2) affinity routing beats round-robin on aggregate embed-cache
   hit rate (same-shaped jobs land on the same warm cache); (3) responses
   are bit-identical across every arm — shard count, routing policy and
   the wire change scheduling and placement, never answers. *)
let serve_bench ~smoke ?store_dir () =
  let module P = Qac_core.Pipeline in
  let module Serve = Qac_serve.Serve in
  let module Shard = Qac_serve.Shard in
  let module Server = Qac_serve.Server in
  let module Protocol = Qac_serve.Protocol in
  let module Tiler = Qac_embed.Tiler in
  let module Sampler = Qac_anneal.Sampler in
  let module Hist = Qac_diag.Hist in
  let module Store = Qac_embed.Store in
  let widths = if smoke then [ 1; 2 ] else [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let ops = [ ("add", "+"); ("xor", "^"); ("and", "&"); ("or", "|") ] in
  let specs =
    List.concat_map
      (fun w ->
         List.map
           (fun (opname, op) ->
              let name = Printf.sprintf "s%d_%s" w opname in
              let src =
                Printf.sprintf
                  "module %s (a, b, y); input [%d:0] a; input [%d:0] b; \
                   output [%d:0] y; assign y = a %s b; endmodule"
                  name (w - 1) (w - 1) w op
              in
              (name, w, src))
           ops)
      widths
  in
  let circuits = List.map (fun (name, w, src) -> (name, w, P.compile src)) specs in
  let pins_of i w = [ ("a", i mod (1 lsl w)); ("b", ((3 * i) + 1) mod (1 lsl w)) ] in
  let jobs =
    List.mapi
      (fun i (name, w, t) ->
         let program = P.assemble_with_pins ~pins:(pins_of i w) t in
         { Serve.id = Printf.sprintf "%s#%d" name i;
           problem = program.Qac_qmasm.Assemble.problem;
           timeout_ms = None })
      circuits
  in
  let n = List.length jobs in
  let tries = if smoke then 2 else 8 in
  let sa_params =
    { Qac_anneal.Sa.default_params with
      Qac_anneal.Sa.num_reads = (if smoke then 10 else 50);
      num_sweeps = (if smoke then 50 else 200);
      seed = 42 }
  in
  let cores = Domain.recommended_domain_count () in
  let threads = min 8 cores in
  let graph = Qac_chimera.Chimera.create 16 in
  let tiler_params =
    { Tiler.default_params with
      Tiler.slack = 6.0;
      Tiler.embed_params = Some { Qac_embed.Cmr.default_params with tries } }
  in
  let solver ~deadline p = P.dispatch_solver ~num_threads:1 ?deadline (P.Sa sa_params) p in
  Printf.printf
    "sharded serving: %d mixed circuits on %s, SA %d reads x %d sweeps, \
     tries=%d (%d cores)\n"
    n graph.Qac_chimera.Topology.name sa_params.Qac_anneal.Sa.num_reads
    sa_params.Qac_anneal.Sa.num_sweeps tries cores;
  (* Everything that varies with scheduling is zeroed before comparison;
     what's left — status, spins, energies, occurrence counts, read count —
     is the answer, and must not move. *)
  let canon (r : Serve.result) =
    Protocol.json_to_string
      (Protocol.result_to_json
         { r with
           Serve.batch = 0;
           wait_seconds = 0.0;
           solve_seconds = 0.0;
           response =
             Option.map
               (fun resp -> { resp with Sampler.elapsed_seconds = 0.0 })
               r.Serve.response })
  in
  let canon_map results =
    List.fold_left
      (fun acc (r : Serve.result) -> (r.Serve.id, canon r) :: acc)
      [] results
    |> List.sort compare
  in
  let hit_rate stats =
    let hits, lookups =
      Array.fold_left
        (fun (h, l) (s : Shard.shard_stats) ->
           let c = s.Shard.cache in
           (h + c.Qac_embed.Cache.hits,
            l + c.Qac_embed.Cache.hits + c.Qac_embed.Cache.misses))
        (0, 0) stats
    in
    if lookups = 0 then 0.0 else float_of_int hits /. float_of_int lookups
  in
  (* One JSON object per shard: how the affinity experiment actually
     distributed work and cache locality, not just the pool aggregate. *)
  let per_shard_json stats =
    let objs =
      Array.to_list stats
      |> List.map (fun (s : Shard.shard_stats) ->
        let c = s.Shard.cache in
        let h = c.Qac_embed.Cache.hits and m = c.Qac_embed.Cache.misses in
        let rate =
          if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)
        in
        Printf.sprintf
          "{ \"shard\": %d, \"jobs\": %d, \"cache_hits\": %d, \
           \"cache_misses\": %d, \"store_hits\": %d, \"hit_rate\": %.4f }"
          s.Shard.shard s.Shard.serve.Serve.jobs_done h m
          c.Qac_embed.Cache.store_hits rate)
    in
    "[ " ^ String.concat ", " objs ^ " ]"
  in
  let sum_embed_misses stats =
    Array.fold_left
      (fun acc (s : Shard.shard_stats) -> acc + s.Shard.cache.Qac_embed.Cache.misses)
      0 stats
  in
  (* Baseline: the plain in-process Serve batch path (BENCH_BATCH's
     batched arm), so the 1-shard-overhead claim lives in one file. *)
  let baseline_cache = Qac_embed.Cache.create () in
  let t0 = Unix.gettimeofday () in
  let service =
    Serve.create ~batch_jobs:n ~num_threads:threads ~tiler_params
      ~embed_cache:baseline_cache ~solver ~graph ()
  in
  List.iter (fun job -> Serve.submit service job) jobs;
  let baseline_results = Serve.drain service in
  let baseline_seconds = Unix.gettimeofday () -. t0 in
  let baseline_canon = canon_map baseline_results in
  (* Pool arms: threads divide across shards so every arm gets the same
     core budget — shard scaling must come from parallel batches and
     cache locality, not from quietly using more hardware. *)
  let run_pool ~num_shards ~routing =
    let pool =
      Shard.create ~num_shards ~routing ~batch_jobs:n
        ~num_threads:(max 1 (threads / num_shards))
        ~tiler_params ~solver ~graph ()
    in
    let t0 = Unix.gettimeofday () in
    List.iter (fun job -> ignore (Shard.submit pool job)) jobs;
    let results = List.map snd (Shard.drain pool) in
    let seconds = Unix.gettimeofday () -. t0 in
    let lat = Shard.latency pool in
    let stats = Shard.stats pool in
    (canon_map results, seconds, hit_rate stats,
     1000.0 *. Hist.p50 lat, 1000.0 *. Hist.p99 lat, stats)
  in
  let one_canon, one_seconds, one_hit, one_p50, one_p99, one_stats =
    run_pool ~num_shards:1 ~routing:Shard.Affinity
  in
  let four_canon, four_seconds, four_hit, four_p50, four_p99, four_stats =
    run_pool ~num_shards:4 ~routing:Shard.Affinity
  in
  let rr_canon, rr_seconds, rr_hit, _, _, rr_stats =
    run_pool ~num_shards:4 ~routing:Shard.Round_robin
  in
  (* Socket arm: a 1-shard pool behind the server, driven over a
     Unix-domain socket with pipelined submits then polls. *)
  let sock_path = Filename.temp_file "qac_serve_bench" ".sock" in
  let pool =
    Shard.create ~num_shards:1 ~batch_jobs:n ~num_threads:threads ~tiler_params
      ~solver ~graph ()
  in
  let server = Server.create ~pool ~sockaddr:(Unix.ADDR_UNIX sock_path) () in
  let server_domain = Domain.spawn (fun () -> Server.run server) in
  let fd = Protocol.connect (Unix.ADDR_UNIX sock_path) in
  let t0 = Unix.gettimeofday () in
  let tickets =
    List.map
      (fun job ->
         let rec submit () =
           match Protocol.call fd (Protocol.Submit job) with
           | Protocol.Submitted { ticket; _ } -> ticket
           | Protocol.Busy { retry_after_ms } ->
             Unix.sleepf (retry_after_ms /. 1000.0);
             submit ()
           | _ -> failwith "serve bench: unexpected reply to submit"
         in
         submit ())
      jobs
  in
  let socket_results =
    List.map
      (fun ticket ->
         let rec poll () =
           match Protocol.call fd (Protocol.Poll ticket) with
           | Protocol.Completed r -> r
           | Protocol.Pending ->
             Unix.sleepf 0.002;
             poll ()
           | _ -> failwith "serve bench: unexpected reply to poll"
         in
         poll ())
      tickets
  in
  let socket_seconds = Unix.gettimeofday () -. t0 in
  (match Protocol.call fd Protocol.Shutdown with
   | Protocol.Shutdown_ok -> ()
   | _ -> failwith "serve bench: unexpected reply to shutdown");
  Unix.close fd;
  ignore (Domain.join server_domain);
  let socket_canon = canon_map socket_results in
  (* Store arms: the same workload rebuilt from Verilog source against a
     persistent artifact store.  The cold arm pays parse->assemble->embed
     and seeds the store; the warm arm re-opens the same directory through
     a brand-new handle — a restarted process — and must find every
     compiled problem and embedding on disk.  Timing covers the front half
     too (snapshot-or-compile), which is exactly what a restart saves. *)
  let snapshot_key src pins =
    Digest.string
      (String.concat "\x00"
         (src :: List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) pins))
  in
  let run_store_arm store =
    let cc = P.compile_cache_create () in
    let snap_hits = ref 0 and snap_misses = ref 0 in
    let t0 = Unix.gettimeofday () in
    let arm_jobs =
      List.mapi
        (fun i (name, w, src) ->
           let pins = pins_of i w in
           let key = snapshot_key src pins in
           let problem =
             match Store.find_problem store key with
             | Some p ->
               incr snap_hits;
               p
             | None ->
               incr snap_misses;
               let t = P.compile_cached ~cache:cc src in
               let program = P.assemble_with_pins ~pins t in
               Store.put_problem store key program.Qac_qmasm.Assemble.problem;
               program.Qac_qmasm.Assemble.problem
           in
           { Serve.id = Printf.sprintf "%s#%d" name i; problem; timeout_ms = None })
        specs
    in
    let pool =
      Shard.create ~num_shards:4 ~routing:Shard.Affinity ~batch_jobs:n
        ~num_threads:(max 1 (threads / 4))
        ~tiler_params ~store ~solver ~graph ()
    in
    List.iter (fun job -> ignore (Shard.submit pool job)) arm_jobs;
    let results = List.map snd (Shard.drain pool) in
    let seconds = Unix.gettimeofday () -. t0 in
    let stats = Shard.stats pool in
    (canon_map results, seconds, !snap_hits, !snap_misses,
     sum_embed_misses stats, hit_rate stats)
  in
  let store_path =
    match store_dir with
    | Some d -> d
    | None ->
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "qac_store_bench.%d" (Unix.getpid ()))
  in
  let cold_canon, cold_seconds, cold_snap_hits, cold_snap_misses,
      cold_embed_misses, cold_hit =
    run_store_arm (Store.open_dir store_path)
  in
  let warm_canon, warm_seconds, warm_snap_hits, warm_snap_misses,
      warm_embed_misses, warm_hit =
    run_store_arm (Store.open_dir store_path)
  in
  let store_stats = Store.stats (Store.open_dir ~readonly:true store_path) in
  let warm_speedup = cold_seconds /. warm_seconds in
  (* Duplicate-heavy arm: each of the first [dup_unique] jobs submitted 4x.
     Coalescing must collapse every group onto one leader: exactly one
     solve per unique problem, every follower answered with the leader's
     bit-identical response.  The wide batch window keeps the flush from
     racing ahead of the duplicate submissions. *)
  let dup_base = List.filteri (fun i _ -> i < 8) jobs in
  let dup_unique = List.length dup_base in
  let dup_copies = 4 in
  let dup_jobs =
    List.concat_map
      (fun (j : Serve.job) ->
         List.init dup_copies (fun k ->
           if k = 0 then j
           else { j with Serve.id = Printf.sprintf "%s~d%d" j.Serve.id k }))
      dup_base
  in
  let dup_pool =
    Shard.create ~num_shards:1 ~batch_jobs:(List.length dup_jobs + 1)
      ~batch_window_s:0.25 ~num_threads:threads ~tiler_params ~solver ~graph ()
  in
  let dt0 = Unix.gettimeofday () in
  List.iter (fun job -> ignore (Shard.submit dup_pool job)) dup_jobs;
  let dup_results = List.map snd (Shard.drain dup_pool) in
  let dup_seconds = Unix.gettimeofday () -. dt0 in
  let dup_sv = (Shard.stats dup_pool).(0).Shard.serve in
  let dup_placed = dup_sv.Serve.placed in
  let dup_coalesced = dup_sv.Serve.coalesced in
  let base_id id =
    match String.index_opt id '~' with
    | Some k -> String.sub id 0 k
    | None -> id
  in
  let dup_canon =
    List.map
      (fun (r : Serve.result) ->
         (base_id r.Serve.id, canon { r with Serve.id = base_id r.Serve.id }))
      dup_results
    |> List.sort_uniq compare
  in
  let dup_identical =
    List.length dup_canon = dup_unique
    && List.for_all (fun entry -> List.mem entry baseline_canon) dup_canon
  in
  let dup_one_solve =
    dup_placed = dup_unique && dup_coalesced = (dup_copies - 1) * dup_unique
  in
  let deterministic =
    List.for_all
      (fun c -> c = baseline_canon)
      [ one_canon; four_canon; rr_canon; socket_canon; cold_canon; warm_canon ]
  in
  let jps s = float_of_int n /. s in
  Printf.printf
    "  in-process batch:   %6.2fs (%5.2f jobs/s)\n\
    \  1 shard:            %6.2fs (%5.2f jobs/s, p50 %.0f ms, p99 %.0f ms, \
     cache hit %.0f%%)\n\
    \  4 shards affinity:  %6.2fs (%5.2f jobs/s, p50 %.0f ms, p99 %.0f ms, \
     cache hit %.0f%%)\n\
    \  4 shards rr:        %6.2fs (%5.2f jobs/s, cache hit %.0f%%)\n\
    \  socket (1 shard):   %6.2fs (%5.2f jobs/s)\n\
    \  cold store:         %6.2fs (%5.2f jobs/s, %d snapshot hits, %d misses, \
     %d embed misses)\n\
    \  warm restart:       %6.2fs (%5.2f jobs/s, %d snapshot hits, %d misses, \
     %d embed misses) -> %.2fx\n\
    \  duplicate-heavy:    %6.2fs (%d submitted, %d placed, %d coalesced)\n\
    \  responses bit-identical across arms: %b\n"
    baseline_seconds (jps baseline_seconds) one_seconds (jps one_seconds) one_p50
    one_p99 (100.0 *. one_hit) four_seconds (jps four_seconds) four_p50 four_p99
    (100.0 *. four_hit) rr_seconds (jps rr_seconds) (100.0 *. rr_hit)
    socket_seconds (jps socket_seconds)
    cold_seconds (jps cold_seconds) cold_snap_hits cold_snap_misses
    cold_embed_misses
    warm_seconds (jps warm_seconds) warm_snap_hits warm_snap_misses
    warm_embed_misses warm_speedup
    dup_seconds (List.length dup_jobs) dup_placed dup_coalesced deterministic;
  if not deterministic then failwith "serve bench: responses diverged across arms";
  if not dup_one_solve then
    failwith
      (Printf.sprintf
         "serve bench: duplicate-heavy arm expected %d placed / %d coalesced, \
          got %d / %d"
         dup_unique ((dup_copies - 1) * dup_unique) dup_placed dup_coalesced);
  if not dup_identical then
    failwith "serve bench: coalesced followers diverged from their leaders";
  let oc = open_out "BENCH_SERVE.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"sharded-serving\",\n\
    \  \"mode\": \"%s\",\n\
    \  \"workload\": \"mixed %d-circuit add/xor/and/or, SA %d reads x %d sweeps, embed tries=%d\",\n\
    \  \"topology\": %S,\n\
    \  \"num_jobs\": %d,\n\
    \  \"cores\": %d,\n\
    \  \"total_threads\": %d,\n\
    \  \"note\": \"every arm shares the same core budget; threads divide across shards\",\n\
    \  \"inproc_batch\": { \"seconds\": %.6f, \"jobs_per_sec\": %.3f },\n\
    \  \"one_shard\": { \"seconds\": %.6f, \"jobs_per_sec\": %.3f,\n\
    \                 \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"cache_hit_rate\": %.4f,\n\
    \                 \"per_shard\": %s },\n\
    \  \"four_shard_affinity\": { \"seconds\": %.6f, \"jobs_per_sec\": %.3f,\n\
    \                 \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"cache_hit_rate\": %.4f,\n\
    \                 \"per_shard\": %s },\n\
    \  \"four_shard_round_robin\": { \"seconds\": %.6f, \"jobs_per_sec\": %.3f,\n\
    \                 \"cache_hit_rate\": %.4f,\n\
    \                 \"per_shard\": %s },\n\
    \  \"socket_one_shard\": { \"seconds\": %.6f, \"jobs_per_sec\": %.3f },\n\
    \  \"store\": {\n\
    \    \"dir\": %S,\n\
    \    \"cold\": { \"seconds\": %.6f, \"jobs_per_sec\": %.3f,\n\
    \               \"problem_snapshot_hits\": %d, \"problem_snapshot_misses\": %d,\n\
    \               \"embed_misses\": %d, \"cache_hit_rate\": %.4f },\n\
    \    \"warm_restart\": { \"seconds\": %.6f, \"jobs_per_sec\": %.3f,\n\
    \               \"problem_snapshot_hits\": %d, \"problem_snapshot_misses\": %d,\n\
    \               \"embed_misses\": %d, \"cache_hit_rate\": %.4f },\n\
    \    \"warm_speedup\": %.2f,\n\
    \    \"warm_zero_embed_misses\": %b,\n\
    \    \"artifacts\": { \"embeddings\": %d, \"problems\": %d }\n\
    \  },\n\
    \  \"duplicate_heavy\": { \"seconds\": %.6f, \"submitted\": %d, \"unique\": %d,\n\
    \               \"placed\": %d, \"coalesced\": %d,\n\
    \               \"one_solve_per_unique\": %b, \"bit_identical_responses\": %b },\n\
    \  \"deterministic_across_arms\": %b\n\
     }\n"
    (if smoke then "smoke" else "full")
    n sa_params.Qac_anneal.Sa.num_reads sa_params.Qac_anneal.Sa.num_sweeps tries
    graph.Qac_chimera.Topology.name n cores threads baseline_seconds
    (jps baseline_seconds) one_seconds (jps one_seconds) one_p50 one_p99 one_hit
    (per_shard_json one_stats) four_seconds (jps four_seconds) four_p50 four_p99
    four_hit (per_shard_json four_stats) rr_seconds (jps rr_seconds) rr_hit
    (per_shard_json rr_stats) socket_seconds (jps socket_seconds) store_path
    cold_seconds (jps cold_seconds) cold_snap_hits cold_snap_misses
    cold_embed_misses cold_hit warm_seconds (jps warm_seconds) warm_snap_hits
    warm_snap_misses warm_embed_misses warm_hit warm_speedup
    (warm_embed_misses = 0)
    store_stats.Store.embeddings store_stats.Store.problems dup_seconds
    (List.length dup_jobs) dup_unique dup_placed dup_coalesced dup_one_solve
    dup_identical deterministic;
  close_out oc;
  Printf.printf "wrote BENCH_SERVE.json\n"

(* --- Pegasus vs Chimera ------------------------------------------------------ *)

(* Size pairs are matched by working-qubit budget, not by the size
   parameter: C4 has 128 qubits and P3 128 working (8(m-1)(3m-1)); C8 has
   512 and P5 448.  Pegasus's degree-15 fabric should buy shorter chains on
   the same circuits — the acceptance bar is max chain <= the Chimera
   baseline on the E1-style circuit. *)
let pegasus_bench ~smoke () =
  let module P = Qac_core.Pipeline in
  let module Embedding = Qac_embed.Embedding in
  let module Cmr = Qac_embed.Cmr in
  let module Serve = Qac_serve.Serve in
  let module Tiler = Qac_embed.Tiler in
  let module Topology = Qac_chimera.Topology in
  let fig2_src =
    "module circuit (s, a, b, c); input s, a, b; output [1:0] c; assign c = s ? a + b : a - b; endmodule"
  in
  let fig2 = Qac_core.Pipeline.compile fig2_src in
  let fig2_problem = fig2.P.program.Qac_qmasm.Assemble.problem in
  (* (name, problem, chimera sizes to try, pegasus sizes to try): the first
     size that embeds is reported, so a hard seed cannot sink the bench. *)
  let cases =
    if smoke then [ ("fig2-e1", fig2_problem, [ 4; 5 ], [ 3; 4 ]) ]
    else
      [ ("fig2-e1", fig2_problem, [ 4; 5 ], [ 3; 4 ]);
        ("mult3x3", multiplier_problem (), [ 8; 9 ], [ 5; 6 ]) ]
  in
  let embed_stats graph problem =
    let params = { (Cmr.params_for graph) with Cmr.seed = 5 } in
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    match Cmr.find ~params graph problem with
    | None -> None
    | Some e ->
      let seconds = Unix.gettimeofday () -. t0 in
      (match Embedding.verify graph problem e with
       | Ok () -> ()
       | Error msg -> failwith ("pegasus bench: invalid embedding: " ^ msg));
      let qubits = Embedding.num_physical_qubits e in
      let chains = Array.length e.Embedding.chains in
      Some
        ( seconds,
          qubits,
          Embedding.max_chain_length e,
          float_of_int qubits /. float_of_int (max 1 chains) )
  in
  let rec first_embedding build problem = function
    | [] -> failwith "pegasus bench: no size embedded the circuit"
    | m :: rest ->
      let graph = build m in
      (match embed_stats graph problem with
       | Some stats -> (graph, stats)
       | None -> first_embedding build problem rest)
  in
  Printf.printf
    "pegasus vs chimera: CMR embedding at matched working-qubit budgets\n\
     (params_for retune: degree-15 fabrics get tries=16 passes=16)\n";
  let all_within = ref true in
  let embed_rows =
    List.map
      (fun (name, problem, chimera_sizes, pegasus_sizes) ->
         let cg, (cs, cq, cmax, cmean) =
           first_embedding (fun m -> Qac_chimera.Chimera.create m) problem chimera_sizes
         in
         let pg, (ps, pq, pmax, pmean) =
           first_embedding (fun m -> Qac_chimera.Pegasus.create m) problem pegasus_sizes
         in
         if pmax > cmax then all_within := false;
         Printf.printf
           "  %-9s n=%-3d  %-14s %3d qb  max-chain=%d  mean=%.2f  %.3fs   %-10s %3d qb  \
            max-chain=%d  mean=%.2f  %.3fs\n"
           name problem.Qac_ising.Problem.num_vars cg.Topology.name cq cmax cmean cs
           pg.Topology.name pq pmax pmean ps;
         Printf.sprintf
           "    { \"circuit\": %S, \"logical_vars\": %d,\n\
           \      \"chimera\": { \"graph\": %S, \"working_qubits\": %d, \"embedding_qubits\": %d,\n\
           \                   \"max_chain\": %d, \"mean_chain\": %.3f, \"embed_seconds\": %.6f },\n\
           \      \"pegasus\": { \"graph\": %S, \"working_qubits\": %d, \"embedding_qubits\": %d,\n\
           \                   \"max_chain\": %d, \"mean_chain\": %.3f, \"embed_seconds\": %.6f },\n\
           \      \"pegasus_max_chain_le_chimera\": %b }"
           name problem.Qac_ising.Problem.num_vars cg.Topology.name
           (Topology.num_working_qubits cg) cq cmax cmean cs pg.Topology.name
           (Topology.num_working_qubits pg) pq pmax pmean ps (pmax <= cmax))
      cases
  in
  (* Native K4: on Pegasus a 4-clique embeds with unit chains; on Chimera
     even K3 needs a chain (the fabric is bipartite). *)
  let p2 = Qac_chimera.Pegasus.create 2 in
  let k4_unit_chains =
    match Qac_embed.Clique.embed p2 ~n:4 with
    | Some e ->
      Array.for_all (fun chain -> Array.length chain = 1) e.Qac_embed.Embedding.chains
    | None -> false
  in
  Printf.printf "  native K4 on P2 with unit chains: %b\n" k4_unit_chains;
  (* End-to-end: compile once, then Pipeline.run fig2 forward on each
     fabric. *)
  let sa_params =
    { Qac_anneal.Sa.default_params with
      Qac_anneal.Sa.num_reads = (if smoke then 10 else 50);
      num_sweeps = (if smoke then 50 else 200);
      seed = 42 }
  in
  (* The e2e arm gets a fixed SA budget even in smoke mode (it is <1s):
     with the smoke read count the run rarely finds a valid solution, and a
     latency number for a failed solve compares nothing. *)
  let e2e_params =
    { Qac_anneal.Sa.default_params with
      Qac_anneal.Sa.num_reads = 100;
      num_sweeps = 500;
      seed = 42 }
  in
  let e2e graph =
    let t0 = Unix.gettimeofday () in
    let r =
      P.run fig2
        ~pins:[ ("s", 1); ("a", 1); ("b", 1) ]
        ~solver:(P.Sa e2e_params)
        ~target:
          (P.Physical
             { graph; embed_params = None; chain_strength = None; roof_duality = false })
    in
    (Unix.gettimeofday () -. t0, P.valid_solutions r <> [])
  in
  let chimera_e2e_seconds, chimera_e2e_valid = e2e (Qac_chimera.Chimera.create 4) in
  let pegasus_e2e_seconds, pegasus_e2e_valid = e2e (Qac_chimera.Pegasus.create 3) in
  Printf.printf
    "  e2e fig2: chimera-4x4x4 %.3fs (valid=%b)   pegasus-3 %.3fs (valid=%b)\n"
    chimera_e2e_seconds chimera_e2e_valid pegasus_e2e_seconds pegasus_e2e_valid;
  (* Tiled serving on Pegasus: a multi-job batch must place, solve, and
     drain with every job Done — the serve-side acceptance criterion. *)
  let widths = if smoke then [ 1 ] else [ 1; 2 ] in
  let ops = [ ("add", "+"); ("xor", "^"); ("and", "&"); ("or", "|") ] in
  let serve_jobs =
    List.concat_map
      (fun w ->
         List.map
           (fun (opname, op) ->
              let name = Printf.sprintf "p%d_%s" w opname in
              let src =
                Printf.sprintf
                  "module %s (a, b, y); input [%d:0] a; input [%d:0] b; \
                   output [%d:0] y; assign y = a %s b; endmodule"
                  name (w - 1) (w - 1) w op
              in
              (name, w, P.compile src))
           ops)
      widths
  in
  let serve_graph = Qac_chimera.Pegasus.create (if smoke then 5 else 6) in
  let tiler_params =
    { Tiler.default_params with Tiler.slack = 6.0 }
  in
  let solver ~deadline p = P.dispatch_solver ~num_threads:1 ?deadline (P.Sa sa_params) p in
  let threads = min 4 (Domain.recommended_domain_count ()) in
  let njobs = List.length serve_jobs in
  let t0 = Unix.gettimeofday () in
  let service =
    Serve.create ~batch_jobs:njobs ~num_threads:threads ~tiler_params
      ~embed_cache:(Qac_embed.Cache.create ()) ~solver ~graph:serve_graph ()
  in
  List.iteri
    (fun i (name, w, t) ->
       let pins = [ ("a", i mod (1 lsl w)); ("b", ((3 * i) + 1) mod (1 lsl w)) ] in
       let program = P.assemble_with_pins ~pins t in
       Serve.submit service
         { Serve.id = Printf.sprintf "%s#%d" name i;
           problem = program.Qac_qmasm.Assemble.problem;
           timeout_ms = None })
    serve_jobs;
  let results = Serve.drain service in
  let serve_seconds = Unix.gettimeofday () -. t0 in
  let serve_done =
    List.length (List.filter (fun (r : Serve.result) -> r.Serve.status = Serve.Done) results)
  in
  let st = Serve.stats service in
  Printf.printf
    "  serve on %s: %d/%d done in %.2fs (%d batches, occupancy %.1f%%, %d deferrals)\n"
    serve_graph.Topology.name serve_done njobs serve_seconds st.Serve.batches
    (100.0 *. st.Serve.mean_occupancy) st.Serve.deferrals;
  (* Cell library under the Advantage coefficient box (h in [-4,4], J in
     [-1,1]): rerun the LP per cell and compare gaps with the 2000Q box. *)
  let module Gen = Qac_cellgen.Gen in
  let module Truthtab = Qac_cellgen.Truthtab in
  let cell_tables =
    [ ("AND", Truthtab.of_function ~num_inputs:2 (fun v -> v.(0) && v.(1)));
      ("OR", Truthtab.of_function ~num_inputs:2 (fun v -> v.(0) || v.(1)));
      ("XOR", Truthtab.of_function ~num_inputs:2 (fun v -> v.(0) <> v.(1)));
      ("MUX", Truthtab.of_function ~num_inputs:3 (fun v -> if v.(0) then v.(2) else v.(1)));
      ("AOI3", Truthtab.of_function ~num_inputs:3 (fun v -> not ((v.(0) && v.(1)) || v.(2))))
    ]
  in
  let cell_rows =
    List.map
      (fun (name, table) ->
         let gap_of range =
           match Gen.derive ~range table with
           | Some d ->
             if not (Gen.verify d) then
               failwith ("pegasus bench: cell " ^ name ^ " failed verification");
             (d.Gen.gap, d.Gen.num_ancillas)
           | None -> failwith ("pegasus bench: cell " ^ name ^ " underivable")
         in
         let gap_2000q, anc_2000q = gap_of Qac_ising.Scale.dwave_2000q in
         let gap_adv, anc_adv = gap_of Qac_ising.Scale.advantage in
         Printf.printf
           "  cell %-5s gap: 2000q=%g (%d anc)  advantage=%g (%d anc)\n" name gap_2000q
           anc_2000q gap_adv anc_adv;
         Printf.sprintf
           "    { \"cell\": %S, \"gap_2000q\": %g, \"ancillas_2000q\": %d, \
            \"gap_advantage\": %g, \"ancillas_advantage\": %d }"
           name gap_2000q anc_2000q gap_adv anc_adv)
      cell_tables
  in
  let oc = open_out "BENCH_PEGASUS.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"pegasus-vs-chimera\",\n\
    \  \"mode\": \"%s\",\n\
    \  \"workload\": \"CMR embedding, end-to-end Pipeline.run, tiled Serve batch, and LP cell rederivation on Pegasus vs Chimera at matched working-qubit budgets\",\n\
    \  \"embeddings\": [\n%s\n  ],\n\
    \  \"all_max_chains_within_chimera_baseline\": %b,\n\
    \  \"native_k4_unit_chains\": %b,\n\
    \  \"e2e\": { \"circuit\": \"fig2-e1\", \"reads\": %d, \"sweeps\": %d,\n\
    \           \"note\": \"fixed SA budget in both modes\",\n\
    \           \"chimera_seconds\": %.6f, \"chimera_valid\": %b,\n\
    \           \"pegasus_seconds\": %.6f, \"pegasus_valid\": %b },\n\
    \  \"serve\": { \"graph\": %S, \"jobs\": %d, \"done\": %d, \"seconds\": %.6f,\n\
    \             \"batches\": %d, \"mean_occupancy_pct\": %.1f, \"deferrals\": %d,\n\
    \             \"threads\": %d },\n\
    \  \"cells\": [\n%s\n  ]\n\
     }\n"
    (if smoke then "smoke" else "full")
    (String.concat ",\n" embed_rows)
    !all_within k4_unit_chains e2e_params.Qac_anneal.Sa.num_reads
    e2e_params.Qac_anneal.Sa.num_sweeps chimera_e2e_seconds chimera_e2e_valid
    pegasus_e2e_seconds pegasus_e2e_valid serve_graph.Topology.name njobs serve_done
    serve_seconds st.Serve.batches
    (100.0 *. st.Serve.mean_occupancy)
    st.Serve.deferrals threads
    (String.concat ",\n" cell_rows);
  close_out oc;
  Printf.printf "wrote BENCH_PEGASUS.json\n"

(* --- SAT workload through the serving tier --------------------------------- *)

(* Planted random 3-SAT, batch-served through the tiler on Chimera and
   Pegasus.  All instances share one clause skeleton (which variables pair
   up) and differ only in literal polarities and weights' signs — a gauge
   change that preserves the compiled problem's coupler structure, so the
   whole batch shares a single embedding-cache entry per graph: one CMR
   solve, N-1 hits.  Reported per graph: solved fraction (best decoded
   read violates nothing) and jobs/s. *)
let sat_bench ~smoke () =
  let module Dimacs = Qac_sat.Dimacs in
  let module Compile = Qac_sat.Compile in
  let module Serve = Qac_serve.Serve in
  let module Tiler = Qac_embed.Tiler in
  let module Cache = Qac_embed.Cache in
  let module Topology = Qac_chimera.Topology in
  let module Sampler = Qac_anneal.Sampler in
  let module P = Qac_core.Pipeline in
  let num_instances = if smoke then 8 else 32 in
  let n = if smoke then 8 else 14 in
  let m = if smoke then 26 else 49 in
  let rng = Random.State.make [| 421 |] in
  (* one skeleton of distinct-variable triples for every instance *)
  let skeleton =
    Array.init m (fun _ ->
        let a = Random.State.int rng n in
        let b = (a + 1 + Random.State.int rng (n - 1)) mod n in
        let rec pick () =
          let c = Random.State.int rng n in
          if c = a || c = b then pick () else c
        in
        (a, b, pick ()))
  in
  (* Each instance is a fresh per-variable gauge of the all-positive
     skeleton: literal polarities follow the gauge, so the instance is
     satisfied exactly by the (hidden) gauge assignment.  A gauge flips
     coefficient signs but cancels couplers gauge-invariantly, so every
     instance compiles to the same coupler structure — the whole batch
     shares one embedding-cache entry per graph by construction. *)
  let planted_instance () =
    let gauge = Array.init n (fun _ -> Random.State.bool rng) in
    let clauses =
      Array.map
        (fun (a, b, c) ->
           let lits =
             Array.map
               (fun v -> if gauge.(v) then v + 1 else -(v + 1))
               [| a; b; c |]
           in
           { Dimacs.lits; weight = Dimacs.Hard })
        skeleton
    in
    { Dimacs.num_vars = n; clauses; mode = Dimacs.Cnf; top = None }
  in
  let compiled = Array.init num_instances (fun _ -> Compile.compile (planted_instance ())) in
  let digest0 = Cache.structure_digest compiled.(0).Compile.problem in
  let shared_structure =
    Array.for_all
      (fun (c : Compile.t) -> Cache.structure_digest c.Compile.problem = digest0)
      compiled
  in
  Printf.printf
    "planted 3-SAT: %d instances, n=%d m=%d -> %d spins, %d couplers each \
     (shared structure: %b)\n"
    num_instances n m
    compiled.(0).Compile.problem.Qac_ising.Problem.num_vars
    (Array.length compiled.(0).Compile.problem.Qac_ising.Problem.couplers)
    shared_structure;
  let sa_params =
    { Qac_anneal.Sa.default_params with
      Qac_anneal.Sa.num_reads = (if smoke then 12 else 32);
      num_sweeps = (if smoke then 100 else 400);
      seed = 42 }
  in
  let solver ~deadline p = P.dispatch_solver ~num_threads:1 ?deadline (P.Sa sa_params) p in
  let threads = min 4 (Domain.recommended_domain_count ()) in
  let tiler_params = { Tiler.default_params with Tiler.slack = 6.0 } in
  let run_graph graph =
    let embed_cache = Cache.create () in
    let t0 = Unix.gettimeofday () in
    let service =
      Serve.create ~batch_jobs:num_instances ~num_threads:threads ~tiler_params
        ~embed_cache ~solver ~graph ()
    in
    Array.iteri
      (fun i (c : Compile.t) ->
         Serve.submit service
           { Serve.id = string_of_int i; problem = c.Compile.problem; timeout_ms = None })
      compiled;
    let results = Serve.drain service in
    let seconds = Unix.gettimeofday () -. t0 in
    let st = Serve.stats service in
    let cache = Cache.stats embed_cache in
    let served = ref 0 and solved = ref 0 in
    List.iter
      (fun (r : Serve.result) ->
         match r.Serve.status, r.Serve.response with
         | Serve.Done, Some resp ->
           incr served;
           let c = compiled.(int_of_string r.Serve.id) in
           let best_violations =
             List.fold_left
               (fun acc (s : Sampler.sample) ->
                  let a = Compile.decode c s.Sampler.spins in
                  min acc (fst (Dimacs.violations c.Compile.formula a)))
               max_int resp.Sampler.samples
           in
           if best_violations = 0 then incr solved
         | _ -> ())
      results;
    let solved_fraction = float_of_int !solved /. float_of_int num_instances in
    Printf.printf
      "  %-14s %d/%d done, solved %d/%d (%.0f%%), %.2f jobs/s, %d batches, \
       occupancy %.1f%%, embed cache %d hit / %d miss\n"
      graph.Topology.name !served num_instances !solved num_instances
      (100.0 *. solved_fraction) st.Serve.jobs_per_second st.Serve.batches
      (100.0 *. st.Serve.mean_occupancy) cache.Cache.hits cache.Cache.misses;
    Printf.sprintf
      "    { \"graph\": %S, \"jobs\": %d, \"done\": %d, \"solved\": %d,\n\
      \      \"solved_fraction\": %.4f, \"jobs_per_second\": %.3f, \"seconds\": %.6f,\n\
      \      \"batches\": %d, \"mean_occupancy_pct\": %.1f,\n\
      \      \"embed_cache_hits\": %d, \"embed_cache_misses\": %d }"
      graph.Topology.name num_instances !served !solved solved_fraction
      st.Serve.jobs_per_second seconds st.Serve.batches
      (100.0 *. st.Serve.mean_occupancy)
      cache.Cache.hits cache.Cache.misses
  in
  let graphs =
    if smoke then [ Qac_chimera.Chimera.create 6; Qac_chimera.Pegasus.create 4 ]
    else [ Qac_chimera.Chimera.create 16; Qac_chimera.Pegasus.create 6 ]
  in
  let rows = List.map run_graph graphs in
  let oc = open_out "BENCH_SAT.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"sat-serve\",\n\
    \  \"mode\": \"%s\",\n\
    \  \"workload\": \"planted random 3-SAT (per-instance variable gauges of one all-positive clause skeleton) compiled to Ising penalties and batch-served through the tiler; gauge changes preserve coupler structure, so every job shares the embedding-cache entry\",\n\
    \  \"instances\": %d, \"variables\": %d, \"clauses\": %d,\n\
    \  \"spins_per_instance\": %d, \"shared_structure_digest\": %b,\n\
    \  \"sa\": { \"reads\": %d, \"sweeps\": %d },\n\
    \  \"threads\": %d,\n\
    \  \"graphs\": [\n%s\n  ]\n\
     }\n"
    (if smoke then "smoke" else "full")
    num_instances n m
    compiled.(0).Compile.problem.Qac_ising.Problem.num_vars
    shared_structure sa_params.Qac_anneal.Sa.num_reads
    sa_params.Qac_anneal.Sa.num_sweeps threads
    (String.concat ",\n" rows);
  close_out oc;
  Printf.printf "wrote BENCH_SAT.json\n"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "bechamel" ] -> bechamel ()
  | [ "trace" ] -> trace_breakdown ()
  | [ "parallel" ] -> parallel_scaling ()
  | "kernel" :: rest -> kernel_bench ~smoke:(rest = [ "smoke" ]) ()
  | "embed" :: rest -> embed_bench ~smoke:(rest = [ "smoke" ]) ()
  | "batch" :: rest -> batch_bench ~smoke:(rest = [ "smoke" ]) ()
  | "serve" :: rest ->
    (* serve [smoke] [--store DIR]: DIR persists artifacts across runs, so
       CI can assert that a second invocation restarts warm. *)
    let rec parse smoke store_dir = function
      | [] -> (smoke, store_dir)
      | "smoke" :: rest -> parse true store_dir rest
      | "--store" :: dir :: rest -> parse smoke (Some dir) rest
      | arg :: _ -> failwith ("serve bench: unknown argument " ^ arg)
    in
    let smoke, store_dir = parse false None rest in
    serve_bench ~smoke ?store_dir ()
  | "pegasus" :: rest -> pegasus_bench ~smoke:(rest = [ "smoke" ]) ()
  | "sat" :: rest -> sat_bench ~smoke:(rest = [ "smoke" ]) ()
  | ids -> run_experiments ids
