(** The pre-CSR minor embedder, preserved verbatim as the benchmark baseline
    for [main.exe -- embed].

    This is the CMR implementation as it stood before the CSR/scratch-reuse
    rewrite of [Qac_embed.Cmr]: a polymorphic tuple-boxed heap, fresh
    [dist]/[parent]/[is_source] arrays allocated per Dijkstra, a fresh jitter
    array per route, and Hashtbl-based chain trimming that re-runs a full
    connectivity check per removal candidate.  The only change from the
    original is that the [int list] adjacency is precomputed once at state
    creation — the old [Topology.t] stored adjacency lists directly, so a
    per-call [Chimera.neighbors] on today's CSR topology would unfairly slow
    this baseline down.

    Do not "improve" this module; its entire value is staying fixed. *)

module Chimera = Qac_chimera.Chimera
module Rng = Qac_anneal.Rng
open Qac_ising

type params = {
  tries : int;
  max_passes : int;
  alpha : float;
  seed : int;
}

let default_params = { tries = 8; max_passes = 24; alpha = 4.0; seed = 0 }

(* The old polymorphic (priority, payload) binary heap, minus its
   [Obj.magic] empty-slot trick (the array starts empty and the first push
   supplies the fill element). *)
module Heap = struct
  type 'a t = {
    mutable items : (float * 'a) array;
    mutable size : int;
  }

  let create () = { items = [||]; size = 0 }

  let swap h i j =
    let tmp = h.items.(i) in
    h.items.(i) <- h.items.(j);
    h.items.(j) <- tmp

  let push h priority payload =
    if h.size = Array.length h.items then begin
      let bigger = Array.make (max 16 (2 * h.size)) (priority, payload) in
      Array.blit h.items 0 bigger 0 h.size;
      h.items <- bigger
    end;
    h.items.(h.size) <- (priority, payload);
    h.size <- h.size + 1;
    let rec up i =
      if i > 0 then begin
        let parent = (i - 1) / 2 in
        if fst h.items.(i) < fst h.items.(parent) then begin
          swap h i parent;
          up parent
        end
      end
    in
    up (h.size - 1)

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.items.(0) in
      h.size <- h.size - 1;
      if h.size > 0 then begin
        h.items.(0) <- h.items.(h.size);
        let rec down i =
          let left = (2 * i) + 1 and right = (2 * i) + 2 in
          let smallest = ref i in
          if left < h.size && fst h.items.(left) < fst h.items.(!smallest) then
            smallest := left;
          if right < h.size && fst h.items.(right) < fst h.items.(!smallest) then
            smallest := right;
          if !smallest <> i then begin
            swap h i !smallest;
            down !smallest
          end
        in
        down 0
      end;
      Some top
    end
end

exception Route_failed

type state = {
  graph : Chimera.t;
  num_qubits : int;
  adjacency : int list array;  (* what the old Topology.t stored *)
  logical_neighbors : int list array;
  chains : int list array;
  usage : int array;
  mutable alpha : float;
}

let qubit_cost st ~jitter q =
  (st.alpha ** float_of_int (min st.usage.(q) 8)) *. jitter.(q)

let distances_from_chain st ~jitter u =
  let dist = Array.make st.num_qubits infinity in
  let parent = Array.make st.num_qubits (-1) in
  let is_source = Array.make st.num_qubits false in
  let heap = Heap.create () in
  List.iter
    (fun q ->
       dist.(q) <- 0.0;
       is_source.(q) <- true;
       Heap.push heap 0.0 q)
    st.chains.(u);
  let rec run () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, q) ->
      if d <= dist.(q) then begin
        let step = if is_source.(q) then 0.0 else qubit_cost st ~jitter q in
        List.iter
          (fun n ->
             let nd = d +. step in
             if nd < dist.(n) -. 1e-12 && not is_source.(n) then begin
               dist.(n) <- nd;
               parent.(n) <- q;
               Heap.push heap nd n
             end)
          st.adjacency.(q)
      end;
      run ()
  in
  run ();
  (dist, parent, is_source)

let route_chain st rng v =
  let jitter = Array.init st.num_qubits (fun _ -> 1.0 +. (0.5 *. Rng.float rng)) in
  List.iter (fun q -> st.usage.(q) <- st.usage.(q) - 1) st.chains.(v);
  st.chains.(v) <- [];
  let embedded_neighbors =
    List.filter (fun u -> st.chains.(u) <> []) st.logical_neighbors.(v)
  in
  if embedded_neighbors = [] then begin
    let candidates = ref [] in
    let best_usage = ref max_int in
    for q = 0 to st.num_qubits - 1 do
      if Chimera.is_working st.graph q then begin
        if st.usage.(q) < !best_usage then begin
          best_usage := st.usage.(q);
          candidates := [ q ]
        end
        else if st.usage.(q) = !best_usage then candidates := q :: !candidates
      end
    done;
    let pick = List.nth !candidates (Rng.int rng (List.length !candidates)) in
    st.chains.(v) <- [ pick ];
    st.usage.(pick) <- st.usage.(pick) + 1
  end
  else begin
    let results =
      List.map (fun u -> (u, distances_from_chain st ~jitter u)) embedded_neighbors
    in
    let best_root = ref (-1) in
    let best_score = ref infinity in
    for q = 0 to st.num_qubits - 1 do
      if Chimera.is_working st.graph q then begin
        let total =
          List.fold_left (fun acc (_, (dist, _, _)) -> acc +. dist.(q)) 0.0 results
        in
        if total < infinity then begin
          let score = total +. qubit_cost st ~jitter q in
          if score < !best_score then begin
            best_score := score;
            best_root := q
          end
        end
      end
    done;
    if !best_root < 0 then raise Route_failed;
    let chain = Hashtbl.create 16 in
    Hashtbl.replace chain !best_root ();
    List.iter
      (fun (_, (_, parent, is_source)) ->
         let rec walk q =
           if not is_source.(q) then begin
             Hashtbl.replace chain q ();
             let p = parent.(q) in
             if p >= 0 then walk p
           end
         in
         walk !best_root)
      results;
    let members = Hashtbl.fold (fun q () acc -> q :: acc) chain [] in
    st.chains.(v) <- members;
    List.iter (fun q -> st.usage.(q) <- st.usage.(q) + 1) members
  end

let trim_chain st v =
  let members = Hashtbl.create 16 in
  List.iter (fun q -> Hashtbl.replace members q ()) st.chains.(v);
  let embedded_neighbors =
    List.filter (fun u -> u <> v && st.chains.(u) <> []) st.logical_neighbors.(v)
  in
  let still_valid () =
    let member_list = Hashtbl.fold (fun q () acc -> q :: acc) members [] in
    match member_list with
    | [] -> false
    | first :: _ ->
      let visited = Hashtbl.create 16 in
      let rec dfs q =
        if not (Hashtbl.mem visited q) then begin
          Hashtbl.replace visited q ();
          List.iter (fun n -> if Hashtbl.mem members n then dfs n) st.adjacency.(q)
        end
      in
      dfs first;
      Hashtbl.length visited = Hashtbl.length members
      && List.for_all
           (fun u ->
              List.exists
                (fun qu -> List.exists (fun n -> Hashtbl.mem members n) st.adjacency.(qu))
                st.chains.(u))
           embedded_neighbors
  in
  let removed_any = ref true in
  while !removed_any do
    removed_any := false;
    let candidates = Hashtbl.fold (fun q () acc -> q :: acc) members [] in
    let candidates =
      List.sort (fun a b -> compare (st.usage.(b), b) (st.usage.(a), a)) candidates
    in
    List.iter
      (fun q ->
         if Hashtbl.length members > 1 then begin
           Hashtbl.remove members q;
           if still_valid () then begin
             st.usage.(q) <- st.usage.(q) - 1;
             removed_any := true
           end
           else Hashtbl.replace members q ()
         end)
      candidates
  done;
  st.chains.(v) <- Hashtbl.fold (fun q () acc -> q :: acc) members []

let route_and_trim st rng v =
  route_chain st rng v;
  trim_chain st v

let overfull st =
  let count = ref 0 in
  Array.iter (fun u -> if u > 1 then incr count) st.usage;
  !count

let total_chain_length st =
  Array.fold_left (fun acc chain -> acc + List.length chain) 0 st.chains

let find ?(params = default_params) graph (p : Problem.t) =
  let n = p.Problem.num_vars in
  if n = 0 then Some { Qac_embed.Embedding.chains = [||] }
  else begin
    let num_qubits = Chimera.num_qubits graph in
    let adjacency = Array.init num_qubits (fun q -> Chimera.neighbors graph q) in
    let logical_neighbors = Array.make n [] in
    Array.iter
      (fun ((u, v), _) ->
         logical_neighbors.(u) <- v :: logical_neighbors.(u);
         logical_neighbors.(v) <- u :: logical_neighbors.(v))
      p.Problem.couplers;
    let rng = Rng.create params.seed in
    let best = ref None in
    let consider st =
      if overfull st = 0 then begin
        let length = total_chain_length st in
        match !best with
        | Some (best_length, _) when best_length <= length -> ()
        | _ ->
          best :=
            Some
              ( length,
                { Qac_embed.Embedding.chains =
                    Array.map
                      (fun chain -> Array.of_list (List.sort compare chain))
                      st.chains
                } )
      end
    in
    for _try = 1 to params.tries do
      let try_rng = Rng.split rng in
      let st =
        { graph;
          num_qubits;
          adjacency;
          logical_neighbors;
          chains = Array.make n [];
          usage = Array.make num_qubits 0;
          alpha = params.alpha }
      in
      let order = Array.init n (fun i -> i) in
      Rng.shuffle try_rng order;
      (try
         Array.iter (fun v -> route_and_trim st try_rng v) order;
         for pass = 1 to params.max_passes do
           st.alpha <- Float.min 1e6 (params.alpha *. (2.0 ** float_of_int pass));
           Rng.shuffle try_rng order;
           Array.iter (fun v -> route_and_trim st try_rng v) order;
           if overfull st = 0 then begin
             consider st;
             st.alpha <- 1e6;
             for _shorten = 1 to 3 do
               Rng.shuffle try_rng order;
               Array.iter (fun v -> route_and_trim st try_rng v) order;
               if overfull st = 0 then consider st
             done;
             raise Exit
           end
         done
       with
       | Exit -> ()
       | Route_failed -> ());
      consider st
    done;
    Option.map snd !best
  end
