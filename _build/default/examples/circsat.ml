(* Circuit satisfiability (paper section 5.2, Figure 4 / Listing 5).

   The Verilog below *verifies* a candidate assignment: it computes the
   circuit's output from x1..x3.  Running it backward — pinning y to True —
   makes the annealer find the satisfying inputs, exactly the NP-solving
   recipe of section 5.1.

   Run with: dune exec examples/circsat.exe *)

module P = Qac_core.Pipeline

let source =
  {|
module circsat (a, b, c, y);
  input a, b, c;
  output y;
  wire [1:10] x;
  assign x[1] = a;
  assign x[2] = b;
  assign x[3] = c;
  assign x[4] = ~x[3];
  assign x[5] = x[1] | x[2];
  assign x[6] = ~x[4];
  assign x[7] = x[1] & x[2] & x[4];
  assign x[8] = x[5] | x[6];
  assign x[9] = x[6] | x[7];
  assign x[10] = x[8] & x[9] & x[7];
  assign y = x[10];
endmodule
|}

let () =
  print_endline "=== Circuit satisfiability, run backward from y = 1 ===";
  let t = P.compile source in
  Printf.printf "logical variables: %d\n\n"
    t.P.program.Qac_qmasm.Assemble.problem.Qac_ising.Problem.num_vars;
  (* Exact minimization stands in for the annealer here (the problem is
     small); swap in P.Sa {...} to sample stochastically. *)
  let result = P.run t ~pins:[ ("y", 1) ] ~solver:P.Exact_solver ~target:P.Logical in
  (match P.valid_solutions result with
   | [] -> print_endline "circuit is unsatisfiable (no valid ground state)"
   | solutions ->
     List.iter
       (fun s ->
          Printf.printf "satisfying assignment: x1=%d x2=%d x3=%d\n"
            (List.assoc "a" s.P.ports) (List.assoc "b" s.P.ports) (List.assoc "c" s.P.ports))
       solutions);
  (* The polynomial-time check (section 5.1): run the assignment forward. *)
  print_endline "\nverification: running (1,1,0) forward...";
  let forward =
    P.run t ~pins:[ ("a", 1); ("b", 1); ("c", 0) ] ~solver:P.Exact_solver ~target:P.Logical
  in
  List.iter
    (fun s -> Printf.printf "y = %d — verified\n" (List.assoc "y" s.P.ports))
    (P.valid_solutions forward)
