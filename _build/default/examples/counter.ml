(* Sequential logic (paper section 4.3.3, Listing 3).

   Stateful programs are compiled by statically unrolling: the whole
   circuit is replicated per time step, with each flip-flop's D at step t
   feeding its Q at step t+1 — "trading the program's time dimension for a
   second spatial dimension", at a heavy qubit cost.

   Run with: dune exec examples/counter.exe *)

module P = Qac_core.Pipeline

let source =
  {|
module count (clk, inc, reset, out);
  input clk;
  input inc;
  input reset;
  output [2:0] out;
  reg [2:0] var;
  always @(posedge clk)
    if (reset)
      var <= 0;
    else
      if (inc)
        var <= var + 1;
  assign out = var;
endmodule
|}

let () =
  print_endline "=== Listing 3: a counter, unrolled over discrete time ===";
  (* Qubit growth per unroll depth — the cost the paper warns about. *)
  List.iter
    (fun steps ->
       let t = P.compile source ~steps in
       let props = P.static_properties t in
       Printf.printf "steps = %d: %d logical variables\n" steps props.P.logical_vars)
    [ 1; 2; 4; 8 ];

  (* Run 3 steps forward: reset low, inc high; the counter counts. *)
  let t = P.compile source ~steps:3 in
  let pins =
    [ ("var[0]@init", 0); ("var[1]@init", 0); ("var[2]@init", 0) ]
    @ List.concat_map
        (fun step ->
           [ (Printf.sprintf "clk@%d" step, 0);
             (Printf.sprintf "inc@%d" step, 1);
             (Printf.sprintf "reset@%d" step, 0) ])
        [ 0; 1; 2 ]
  in
  let solver =
    P.Sa { Qac_anneal.Sa.default_params with Qac_anneal.Sa.num_reads = 400; num_sweeps = 1500; seed = 2 }
  in
  let result = P.run t ~pins ~solver ~target:P.Logical in
  (match P.valid_solutions result with
   | s :: _ ->
     print_endline "\nforward, inc=1 on every step:";
     List.iter
       (fun step -> Printf.printf "  out@%d = %d\n" step (List.assoc (Printf.sprintf "out@%d" step) s.P.ports))
       [ 0; 1; 2 ];
     Printf.printf "  final state = %d\n"
       ((4 * List.assoc "var[2]@final" s.P.ports)
        + (2 * List.assoc "var[1]@final" s.P.ports)
        + List.assoc "var[0]@final" s.P.ports)
   | [] -> print_endline "no valid forward solution sampled");

  (* Backward: which per-step inputs drive the counter from 0 to 2 in two
     steps?  (Answer: inc on both steps, reset on neither.) *)
  let t2 = P.compile source ~steps:2 in
  let pins =
    [ ("var[0]@init", 0); ("var[1]@init", 0); ("var[2]@init", 0);
      ("clk@0", 0); ("clk@1", 0); ("reset@0", 0); ("reset@1", 0);
      ("var[0]@final", 0); ("var[1]@final", 1); ("var[2]@final", 0) ]
  in
  let solver =
    P.Sa { Qac_anneal.Sa.default_params with Qac_anneal.Sa.num_reads = 400; num_sweeps = 1500; seed = 4 }
  in
  let result = P.run t2 ~pins ~solver ~target:P.Logical in
  match P.valid_solutions result with
  | s :: _ ->
    Printf.printf "\nbackward (reach 2 in 2 steps): inc@0 = %d, inc@1 = %d\n"
      (List.assoc "inc@0" s.P.ports) (List.assoc "inc@1" s.P.ports)
  | [] -> print_endline "no valid backward solution"
