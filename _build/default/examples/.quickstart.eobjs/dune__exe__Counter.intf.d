examples/counter.mli:
