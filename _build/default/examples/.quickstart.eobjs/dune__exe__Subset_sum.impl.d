examples/subset_sum.ml: List Printf Qac_anneal Qac_core Qac_ising Qac_qmasm String
