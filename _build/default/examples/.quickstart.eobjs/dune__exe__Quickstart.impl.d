examples/quickstart.ml: List Printf Qac_anneal Qac_core
