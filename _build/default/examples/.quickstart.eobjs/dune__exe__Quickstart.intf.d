examples/quickstart.mli:
