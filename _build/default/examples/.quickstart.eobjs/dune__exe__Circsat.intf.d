examples/circsat.mli:
