examples/map_color.mli:
