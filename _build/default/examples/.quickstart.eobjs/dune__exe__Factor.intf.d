examples/factor.mli:
