examples/subset_sum.mli:
