examples/map_color.ml: Array List Printf Problem Qac_anneal Qac_core Qac_csp Qac_ising
