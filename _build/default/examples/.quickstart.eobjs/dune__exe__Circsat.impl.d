examples/circsat.ml: List Printf Qac_core Qac_ising Qac_qmasm
