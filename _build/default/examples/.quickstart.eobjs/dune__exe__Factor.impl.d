examples/factor.ml: Hashtbl List Printf Qac_anneal Qac_core Qac_ising Qac_qmasm
