examples/counter.ml: List Printf Qac_anneal Qac_core
