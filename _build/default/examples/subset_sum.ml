(* Subset sum — a fourth NP problem in the paper's style (section 5.1):
   "rather than write a program that directly solves an NP problem, one can
   write a program that verifies a proposed solution then run the program
   backward".

   The Verilog below *checks* whether the subset of weights selected by the
   bitmask [sel] sums to [target]; pinning valid=1 and a target makes the
   annealer find the subset.

   Run with: dune exec examples/subset_sum.exe *)

module P = Qac_core.Pipeline

(* Weights baked into the checker; the loop is unrolled at elaboration. *)
let weights = [ 3; 5; 6; 7; 11 ]

let source =
  let terms =
    List.mapi (fun i w -> Printf.sprintf "(sel[%d] ? %d : 0)" i w) weights
    |> String.concat " + "
  in
  Printf.sprintf
    {|
module subset_sum (sel, target, valid);
  input [%d:0] sel;
  input [5:0] target;
  output valid;
  wire [5:0] sum;
  assign sum = %s;
  assign valid = sum == target;
endmodule
|}
    (List.length weights - 1)
    terms

let () =
  Printf.printf "=== Subset sum over weights %s ===\n"
    (String.concat ", " (List.map string_of_int weights));
  let t = P.compile source in
  Printf.printf "checker compiled to %d logical variables\n\n"
    t.P.program.Qac_qmasm.Assemble.problem.Qac_ising.Problem.num_vars;
  let solve target =
    let solver =
      P.Sa { Qac_anneal.Sa.default_params with
             Qac_anneal.Sa.num_reads = 300; num_sweeps = 1200; seed = 17 }
    in
    let result =
      P.run t ~pins:[ ("valid", 1); ("target", target) ] ~solver ~target:P.Logical
    in
    let subsets =
      List.map (fun s -> List.assoc "sel" s.P.ports) (P.valid_solutions result)
      |> List.sort_uniq compare
    in
    Printf.printf "target %2d: %d subset(s)" target (List.length subsets);
    List.iter
      (fun sel ->
         let chosen =
           List.filteri (fun i _ -> (sel lsr i) land 1 = 1) weights
         in
         Printf.printf "  {%s}" (String.concat "+" (List.map string_of_int chosen)))
      subsets;
    print_newline ()
  in
  (* A few targets: some with unique subsets, one with several, one with
     none (the checker is unsatisfiable: no valid sample survives
     verification). *)
  List.iter solve [ 8; 14; 16; 4 ];
  print_endline "\n(targets with no subset yield zero verified solutions —";
  print_endline " the annealer returns *something*, the polynomial-time check rejects it)"
