(* Map coloring (paper section 5.4, Listing 7 / Figure 5).

   The Verilog checks whether a candidate 4-coloring of Australia's states
   and territories is proper; running it backward from valid = 1 samples
   colorings.  The example also shows the hand-coded unary-encoded Ising
   formulation of section 6.1 for comparison, and the classical CSP baseline
   of section 6.2 (Listing 8).

   Run with: dune exec examples/map_color.exe *)

module P = Qac_core.Pipeline
open Qac_ising

let source =
  {|
module australia (NSW, QLD, SA, VIC, WA, NT, ACT, valid);
  input [1:0] NSW, QLD, SA, VIC, WA, NT, ACT;
  output valid;
  assign valid = WA != NT && WA != SA && NT != SA && NT != QLD && SA != QLD
              && SA != NSW && SA != VIC && QLD != NSW && NSW != VIC && NSW != ACT;
endmodule
|}

let regions = [ "WA"; "NT"; "SA"; "QLD"; "NSW"; "VIC"; "ACT" ]

let adjacency =
  [ ("WA", "NT"); ("WA", "SA"); ("NT", "SA"); ("NT", "QLD"); ("SA", "QLD");
    ("SA", "NSW"); ("SA", "VIC"); ("QLD", "NSW"); ("NSW", "VIC"); ("NSW", "ACT") ]

(* The hand-coded formulation of section 6.1: one variable per
   (region, color), one-hot constraints per region, conflict penalties per
   border — 28 logical variables instead of the compiler's ~74. *)
let hand_coded () =
  let index region color = (List.assoc region (List.mapi (fun i r -> (r, i)) regions) * 4) + color in
  let b = Problem.Builder.create ~num_vars:28 () in
  (* One-hot: for each region, exactly one color.  As a QUBO penalty
     (sum x - 1)^2, converted to spins. *)
  List.iter
    (fun region ->
       (* (sum_c x_c - 1)^2 = -sum x_c + 2 sum_{c<c'} x_c x_c' + 1 over 0/1
          variables; with x = (1+s)/2, the -x term gives h -= 1/2 and each
          2 x x' term gives J += 1/2 plus h += 1/2 on both endpoints. *)
       for c = 0 to 3 do
         Problem.Builder.add_h b (index region c) (-0.5);
         for c' = c + 1 to 3 do
           Problem.Builder.add_j b (index region c) (index region c') 0.5;
           Problem.Builder.add_h b (index region c) 0.5;
           Problem.Builder.add_h b (index region c') 0.5
         done
       done)
    regions;
  (* Conflicts: adjacent regions must not share a color. *)
  List.iter
    (fun (r1, r2) ->
       for c = 0 to 3 do
         Problem.Builder.add_j b (index r1 c) (index r2 c) 0.25;
         Problem.Builder.add_h b (index r1 c) 0.25;
         Problem.Builder.add_h b (index r2 c) 0.25
       done)
    adjacency;
  Problem.Builder.build b

let () =
  print_endline "=== Listing 7: four-coloring Australia by running a checker backward ===";
  let t = P.compile source in
  let props = P.static_properties t in
  Printf.printf "compiled: %d Verilog lines -> %d logical variables\n" props.P.verilog_lines
    props.P.logical_vars;
  let solver =
    P.Sa { Qac_anneal.Sa.default_params with Qac_anneal.Sa.num_reads = 300; num_sweeps = 800; seed = 3 }
  in
  let result = P.run t ~pins:[ ("valid", 1) ] ~solver ~target:P.Logical in
  (match P.valid_solutions result with
   | [] -> print_endline "no coloring sampled; increase reads"
   | s :: _ ->
     print_endline "sampled coloring:";
     List.iter (fun r -> Printf.printf "  %s = %d\n" r (List.assoc r s.P.ports)) regions;
     let distinct = List.length (P.valid_solutions result) in
     Printf.printf "(%d distinct valid colorings in this run's samples)\n" distinct);

  print_endline "\n--- hand-coded unary encoding (section 6.1) ---";
  let hand = hand_coded () in
  Printf.printf "hand-coded logical variables: %d (compiler: %d)\n" hand.Problem.num_vars
    props.P.logical_vars;
  let response =
    Qac_anneal.Sa.sample
      ~params:{ Qac_anneal.Sa.default_params with Qac_anneal.Sa.num_reads = 200; num_sweeps = 500 }
      hand
  in
  let best = Qac_anneal.Sampler.best response in
  (* Decode: find each region's chosen color. *)
  let coloring =
    List.mapi
      (fun i r ->
         let colors =
           List.filter (fun c -> best.Qac_anneal.Sampler.spins.((i * 4) + c) > 0) [ 0; 1; 2; 3 ]
         in
         (r, colors))
      regions
  in
  let ok =
    List.for_all (fun (_, colors) -> List.length colors = 1) coloring
    && List.for_all
         (fun (r1, r2) -> List.assoc r1 coloring <> List.assoc r2 coloring)
         adjacency
  in
  Printf.printf "hand-coded sample is a proper one-hot coloring: %b\n" ok;

  print_endline "\n--- classical CSP baseline (Listing 8) ---";
  let listing8 =
    "var 1..4: NSW; var 1..4: QLD; var 1..4: SA; var 1..4: VIC;\n\
     var 1..4: WA; var 1..4: NT; var 1..4: ACT;\n\
     constraint WA != NT; constraint WA != SA; constraint NT != SA;\n\
     constraint NT != QLD; constraint SA != QLD; constraint SA != NSW;\n\
     constraint SA != VIC; constraint QLD != NSW; constraint NSW != VIC;\n\
     constraint NSW != ACT;\n\
     solve satisfy;\n"
  in
  let csp = Qac_csp.Mzn.parse listing8 in
  match Qac_csp.Csp.solve csp with
  | Some coloring ->
    print_string "CSP solution: ";
    List.iter (fun (r, c) -> Printf.printf "%s=%d " r c) coloring;
    print_newline ()
  | None -> print_endline "CSP found no solution (unexpected)"
