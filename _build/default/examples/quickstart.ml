(* Quickstart: the paper's Figure 2 — a 1-bit mux between an adder and a
   subtractor — compiled end to end and run both forward (inputs to outputs)
   and backward (outputs to inputs).

   Run with: dune exec examples/quickstart.exe *)

module P = Qac_core.Pipeline

let source =
  {|
module circuit (s, a, b, c);
  input s;
  input a;
  input b;
  output [1:0] c;
  assign c = s ? a + b : a - b;
endmodule
|}

let () =
  print_endline "=== Figure 2: compile classical code to a pseudo-Boolean function ===";
  let t = P.compile source in
  let props = P.static_properties t in
  Printf.printf
    "compiled: %d Verilog lines -> %d EDIF lines -> %d QMASM lines -> %d Ising variables\n\n"
    props.P.verilog_lines props.P.edif_lines props.P.qmasm_lines props.P.logical_vars;

  (* Forward: pin the inputs, the annealer's ground state carries the
     output. *)
  print_endline "-- forward: s=1, a=1, b=1 (add) --";
  let result =
    P.run t ~pins:[ ("s", 1); ("a", 1); ("b", 1) ] ~solver:P.Exact_solver ~target:P.Logical
  in
  List.iter
    (fun s -> Printf.printf "c = %d (valid: %b)\n" (List.assoc "c" s.P.ports) s.P.valid)
    (P.valid_solutions result);

  (* Backward: pin the output, solve for inputs — the paper's key trick. *)
  print_endline "\n-- backward: c=3 — which inputs produce 3? --";
  let result = P.run t ~pins:[ ("c", 3) ] ~solver:P.Exact_solver ~target:P.Logical in
  List.iter
    (fun s ->
       Printf.printf "s=%d a=%d b=%d  ->  c=%d\n" (List.assoc "s" s.P.ports)
         (List.assoc "a" s.P.ports) (List.assoc "b" s.P.ports) (List.assoc "c" s.P.ports))
    (P.valid_solutions result);

  (* The same program on a simulated D-Wave: minor-embedded into a Chimera
     graph and sampled with simulated annealing. *)
  print_endline "\n-- physical: same circuit, minor-embedded on a C16 Chimera --";
  let solver =
    P.Sa { Qac_anneal.Sa.default_params with Qac_anneal.Sa.num_reads = 100; num_sweeps = 1000 }
  in
  let result = P.run t ~pins:[ ("s", 0); ("a", 1); ("b", 1) ] ~solver ~target:P.dwave_target in
  (match result.P.num_physical_qubits with
   | Some q ->
     Printf.printf "%d logical variables -> %d physical qubits\n" result.P.num_logical_vars q
   | None -> ());
  match P.valid_solutions result with
  | s :: _ -> Printf.printf "1 - 1 = %d (sampled from hardware-shaped problem)\n" (List.assoc "c" s.P.ports)
  | [] -> print_endline "no valid sample this run; increase --reads"
