(* Factoring by multiplying backward (paper section 5.3, Listing 6).

   "One need only express a simple C = A x B multiplication, provide a value
   for C, and let the quantum annealer solve for A and B."  The same
   compiled program multiplies (pin A and B), factors (pin C) and divides
   (pin C and A).

   Run with: dune exec examples/factor.exe *)

module P = Qac_core.Pipeline

let source =
  {|
module mult (A, B, C);
  input [3:0] A;
  input [3:0] B;
  output [7:0] C;
  assign C = A * B;
endmodule
|}

let sa ~reads ~sweeps ~seed =
  P.Sa { Qac_anneal.Sa.default_params with Qac_anneal.Sa.num_reads = reads; num_sweeps = sweeps; seed }

let show label result =
  Printf.printf "%s\n" label;
  let seen = Hashtbl.create 8 in
  List.iter
    (fun s ->
       let key = (List.assoc "A" s.P.ports, List.assoc "B" s.P.ports, List.assoc "C" s.P.ports) in
       if not (Hashtbl.mem seen key) then begin
         Hashtbl.replace seen key ();
         let a, b, c = key in
         Printf.printf "  A=%d  B=%d  C=%d   (energy %g, %d occurrences)\n" a b c s.P.energy
           s.P.num_occurrences
       end)
    (P.valid_solutions result);
  if Hashtbl.length seen = 0 then print_endline "  (no valid samples; rerun with more reads)"

let () =
  print_endline "=== Listing 6: a 4x4-bit multiplier run in all three directions ===";
  let t = P.compile source in
  Printf.printf "logical variables: %d\n\n"
    t.P.program.Qac_qmasm.Assemble.problem.Qac_ising.Problem.num_vars;

  (* Backward: factor 143 (the paper's --pin "C[7:0] := 10001111"). *)
  let result = P.run t ~pin_source:"C[7:0] := 10001111" ~solver:(sa ~reads:500 ~sweeps:2000 ~seed:5) ~target:P.Logical in
  show "factor C = 143:" result;

  (* Forward: multiply 13 x 11 (--pin "A[3:0] := 1101" --pin "B[3:0] := 1011"). *)
  let result =
    P.run t ~pin_source:"A[3:0] := 1101\nB[3:0] := 1011"
      ~solver:(sa ~reads:300 ~sweeps:1500 ~seed:7) ~target:P.Logical
  in
  show "\nmultiply A = 13, B = 11:" result;

  (* Sideways: divide 143 / 13. *)
  let result =
    P.run t ~pin_source:"C[7:0] := 10001111\nA[3:0] := 1101"
      ~solver:(sa ~reads:300 ~sweeps:1500 ~seed:9) ~target:P.Logical
  in
  show "\ndivide C = 143 by A = 13:" result
