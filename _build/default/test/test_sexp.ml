module Sexp = Qac_sexp.Sexp

let check_roundtrip name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let parsed = Sexp.parse_string src in
      Alcotest.(check bool) "structure" true (Sexp.equal parsed expected);
      let reparsed = Sexp.parse_string (Sexp.to_string parsed) in
      Alcotest.(check bool) "pretty round-trip" true (Sexp.equal parsed reparsed);
      let reparsed = Sexp.parse_string (Sexp.to_string_compact parsed) in
      Alcotest.(check bool) "compact round-trip" true (Sexp.equal parsed reparsed))

let atom = Sexp.atom
let list = Sexp.list

let parse_error name src =
  Alcotest.test_case name `Quick (fun () ->
      match Sexp.parse_string src with
      | exception Sexp.Parse_error _ -> ()
      | _ -> Alcotest.fail "expected Parse_error")

let accessor_tests =
  [ Alcotest.test_case "find_all is case-insensitive" `Quick (fun () ->
        let s = Sexp.parse_string "(cell (Port a) (PORT b) (net x))" in
        Alcotest.(check int) "ports" 2 (List.length (Sexp.find_all ~tag:"port" s));
        Alcotest.(check int) "nets" 1 (List.length (Sexp.find_all ~tag:"net" s));
        Alcotest.(check int) "absent" 0 (List.length (Sexp.find_all ~tag:"instance" s)));
    Alcotest.test_case "tag" `Quick (fun () ->
        Alcotest.(check (option string)) "list" (Some "edif")
          (Sexp.tag (Sexp.parse_string "(edif x)"));
        Alcotest.(check (option string)) "atom" None (Sexp.tag (atom "x")));
    Alcotest.test_case "find" `Quick (fun () ->
        let s = Sexp.parse_string "(a (b 1) (c 2))" in
        match Sexp.find ~tag:"c" s with
        | Some (Sexp.List [ _; Sexp.Atom "2" ]) -> ()
        | _ -> Alcotest.fail "find c");
    Alcotest.test_case "parse_many" `Quick (fun () ->
        Alcotest.(check int) "three" 3 (List.length (Sexp.parse_many "a (b) c")));
    Alcotest.test_case "comments skipped" `Quick (fun () ->
        let s = Sexp.parse_string "; header\n(a ; inline\n b)" in
        Alcotest.(check bool) "eq" true (Sexp.equal s (list [ atom "a"; atom "b" ])));
    Alcotest.test_case "quoted atoms keep spaces" `Quick (fun () ->
        match Sexp.parse_string {|(rename x "out[3]")|} with
        | Sexp.List [ _; _; Sexp.Atom "out[3]" ] -> ()
        | _ -> Alcotest.fail "rename");
    Alcotest.test_case "quoting emitted when needed" `Quick (fun () ->
        let s = list [ atom "a b"; atom "plain" ] in
        let src = Sexp.to_string_compact s in
        Alcotest.(check bool) "round" true (Sexp.equal s (Sexp.parse_string src)));
    Alcotest.test_case "escaped quote round-trips" `Quick (fun () ->
        let s = atom {|say "hi"|} in
        Alcotest.(check bool) "round" true
          (Sexp.equal s (Sexp.parse_string (Sexp.to_string_compact s))));
  ]

let suite =
  [ check_roundtrip "atom" "hello" (atom "hello");
    check_roundtrip "empty list" "()" (list []);
    check_roundtrip "nested" "(a (b c) ((d)))"
      (list [ atom "a"; list [ atom "b"; atom "c" ]; list [ list [ atom "d" ] ] ]);
    check_roundtrip "string atom" {|("two words")|} (list [ atom "two words" ]);
    check_roundtrip "numbers" "(1 -2.5 3e4)" (list [ atom "1"; atom "-2.5"; atom "3e4" ]);
    parse_error "unbalanced open" "(a (b)";
    parse_error "unbalanced close" "a)";
    parse_error "trailing garbage" "(a) b";
    parse_error "empty input" "   ";
    parse_error "unterminated string" {|("abc|};
  ]
  @ accessor_tests
