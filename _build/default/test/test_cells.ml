open Qac_ising
open Qac_cells

(* Table 5 (plus Table 1 and section 4.3.4): every standard cell's
   Hamiltonian must have exactly its truth table as ground states, with a
   positive gap, within the hardware coefficient ranges. *)

let verify_cell cell =
  Alcotest.test_case ("Table 5: " ^ cell.Cells.name) `Quick (fun () ->
      (match Cells.verify cell with
       | Ok gap -> Alcotest.(check bool) "positive gap" true (gap > 0.0)
       | Error msg -> Alcotest.fail msg);
      Alcotest.(check bool) "fits hardware range" true
        (Scale.fits Scale.dwave_2000q cell.Cells.hamiltonian))

let table5_tests = List.map verify_cell Cells.all

let specific_tests =
  [ Alcotest.test_case "AND ground energy is -3 when scaled like section 4.3.2" `Quick
      (fun () ->
         (* Section 4.3.2's example solution is exactly 2x Table 5's AND. *)
         let paper_432 = Problem.scale Cells.and_.Cells.hamiltonian 2.0 in
         let r = Exact.solve paper_432 in
         Alcotest.(check (float 1e-9)) "k" (-3.0) r.Exact.ground_energy);
    Alcotest.test_case "section 4.3.2 XOR solution (k = -4)" `Quick (fun () ->
        (* H = -sY + sA - sB + 2sa - sYsA + sYsB - 2sYsa - sAsB + 2sAsa - 2sBsa,
           with variable order A=0, B=1, Y=2, a=3. *)
        let p =
          Problem.create ~num_vars:4
            ~h:[| 1.0; -1.0; -1.0; 2.0 |]
            ~j:
              [ ((0, 2), -1.0);
                ((1, 2), 1.0);
                ((2, 3), -2.0);
                ((0, 1), -1.0);
                ((0, 3), 2.0);
                ((1, 3), -2.0) ]
            ()
        in
        let r = Exact.solve p in
        Alcotest.(check (float 1e-9)) "k" (-4.0) r.Exact.ground_energy;
        (* Visible parts of ground states = XOR truth table. *)
        let visible =
          List.sort_uniq compare
            (List.map (fun s -> Array.sub s 0 3) r.Exact.ground_states)
        in
        let expected =
          [ [| -1; -1; -1 |]; [| -1; 1; 1 |]; [| 1; -1; 1 |]; [| 1; 1; -1 |] ]
        in
        Alcotest.(check bool) "xor table" true (List.sort compare expected = visible));
    Alcotest.test_case "Table 1: wire minimized exactly at equality" `Quick (fun () ->
        let e a y = Problem.energy Cells.wire [| a; y |] in
        Alcotest.(check (float 1e-9)) "--" (-1.0) (e (-1) (-1));
        Alcotest.(check (float 1e-9)) "++" (-1.0) (e 1 1);
        Alcotest.(check (float 1e-9)) "-+" 1.0 (e (-1) 1);
        Alcotest.(check (float 1e-9)) "+-" 1.0 (e 1 (-1)));
    Alcotest.test_case "ground and power pins" `Quick (fun () ->
        Alcotest.(check bool) "gnd -> false" true (Exact.is_ground_state Cells.ground [| -1 |]);
        Alcotest.(check bool) "vcc -> true" true (Exact.is_ground_state Cells.power [| 1 |]));
    Alcotest.test_case "cell lookup is case-insensitive" `Quick (fun () ->
        match Cells.find "nand" with
        | Some c -> Alcotest.(check string) "name" "NAND" c.Cells.name
        | None -> Alcotest.fail "lookup failed");
    Alcotest.test_case "pin_names order and ancilla naming" `Quick (fun () ->
        Alcotest.(check (list string)) "mux pins"
          [ "A"; "B"; "S"; "Y"; "$a" ] (Cells.pin_names Cells.mux);
        Alcotest.(check (list string)) "aoi4 pins"
          [ "A"; "B"; "C"; "D"; "Y"; "$a"; "$b" ] (Cells.pin_names Cells.aoi4));
    Alcotest.test_case "section 4.3.5: AND3 from two ANDs plus a wire" `Quick (fun () ->
        (* Variables: A=0 B=1 C=2 Y=3 n=4 m=5;
           H = H_and(n; A, B) + H_and(Y; m, C) + wire(m, n). *)
        let b = Problem.Builder.create () in
        (* Cells.and_ has order A=0 B=1 Y=2. *)
        Problem.Builder.add_problem b Cells.and_.Cells.hamiltonian ~var_map:[| 0; 1; 4 |];
        Problem.Builder.add_problem b Cells.and_.Cells.hamiltonian ~var_map:[| 5; 2; 3 |];
        Problem.Builder.add_problem b Cells.wire ~var_map:[| 5; 4 |];
        let p = Problem.Builder.build b in
        let r = Exact.solve p in
        (* Visible ground states (A,B,C,Y) must be the AND3 table. *)
        let visible =
          List.sort_uniq compare
            (List.map (fun s -> Array.sub s 0 4) r.Exact.ground_states)
        in
        Alcotest.(check int) "8 visible rows" 8 (List.length visible);
        List.iter
          (fun row ->
             let y_expected = row.(0) > 0 && row.(1) > 0 && row.(2) > 0 in
             Alcotest.(check bool) "AND3 relation" y_expected (row.(3) > 0))
          visible);
    Alcotest.test_case "section 4.3.6: pinning inputs computes forward" `Quick (fun () ->
        (* AND with A pinned true, B pinned false -> Y must be false. *)
        let b = Problem.Builder.create () in
        Problem.Builder.add_problem b Cells.and_.Cells.hamiltonian
          ~var_map:[| 0; 1; 2 |];
        Problem.Builder.add_problem b (Problem.scale Cells.power 4.0) ~var_map:[| 0 |];
        Problem.Builder.add_problem b (Problem.scale Cells.ground 4.0) ~var_map:[| 1 |];
        let r = Exact.solve (Problem.Builder.build b) in
        List.iter
          (fun s ->
             Alcotest.(check int) "A" 1 s.(0);
             Alcotest.(check int) "B" (-1) s.(1);
             Alcotest.(check int) "Y" (-1) s.(2))
          r.Exact.ground_states);
    Alcotest.test_case "section 4.3.6: pinning the output runs backward" `Quick (fun () ->
        (* AND with Y pinned true -> A = B = true is the unique ground state. *)
        let b = Problem.Builder.create () in
        Problem.Builder.add_problem b Cells.and_.Cells.hamiltonian
          ~var_map:[| 0; 1; 2 |];
        Problem.Builder.add_problem b (Problem.scale Cells.power 4.0) ~var_map:[| 2 |];
        let r = Exact.solve (Problem.Builder.build b) in
        Alcotest.(check int) "unique" 1 (List.length r.Exact.ground_states);
        List.iter
          (fun s ->
             Alcotest.(check int) "A" 1 s.(0);
             Alcotest.(check int) "B" 1 s.(1))
          r.Exact.ground_states);
    Alcotest.test_case "cells agree with their logic functions" `Quick (fun () ->
        List.iter
          (fun c ->
             if not c.Cells.is_flip_flop then begin
               let num_inputs = List.length c.Cells.inputs in
               let table = Cells.truth_table c in
               Alcotest.(check int) "rows" (1 lsl num_inputs)
                 (List.length table.Qac_cellgen.Truthtab.valid)
             end)
          Cells.all);
  ]

let suite = table5_tests @ specific_tests
