open Qac_netlist
module B = Netlist.Builder

let bits_of_int width v = Array.init width (fun i -> (v lsr i) land 1 = 1)

let int_of_bits bits =
  let v = ref 0 in
  Array.iteri (fun i b -> if b then v := !v lor (1 lsl i)) bits;
  !v

(* A ripple-carry full adder over [width]-bit inputs, for simulation tests. *)
let build_adder width =
  let b = B.create "adder" in
  let a = B.add_input b "a" width in
  let bb = B.add_input b "b" width in
  let sum = Array.make (width + 1) Netlist.Zero in
  let carry = ref Netlist.Zero in
  for i = 0 to width - 1 do
    let x = a.(i) and y = bb.(i) in
    let s1 = B.xor_ b x y in
    sum.(i) <- B.xor_ b s1 !carry;
    carry := B.or_ b (B.and_ b x y) (B.and_ b s1 !carry)
  done;
  sum.(width) <- !carry;
  B.set_output b "sum" sum;
  B.build b

let builder_tests =
  [ Alcotest.test_case "constant folding" `Quick (fun () ->
        let b = B.create "t" in
        let x = (B.add_input b "x" 1).(0) in
        Alcotest.(check bool) "and zero" true (B.and_ b x Netlist.Zero = Netlist.Zero);
        Alcotest.(check bool) "and one" true (B.and_ b x Netlist.One = x);
        Alcotest.(check bool) "or one" true (B.or_ b x Netlist.One = Netlist.One);
        Alcotest.(check bool) "xor self" true (B.xor_ b x x = Netlist.Zero);
        Alcotest.(check bool) "idempotent" true (B.and_ b x x = x));
    Alcotest.test_case "double negation folds" `Quick (fun () ->
        let b = B.create "t" in
        let x = (B.add_input b "x" 1).(0) in
        let nx = B.not_ b x in
        Alcotest.(check bool) "not not x = x" true (B.not_ b nx = x));
    Alcotest.test_case "complement detection" `Quick (fun () ->
        let b = B.create "t" in
        let x = (B.add_input b "x" 1).(0) in
        let nx = B.not_ b x in
        Alcotest.(check bool) "x and ~x" true (B.and_ b x nx = Netlist.Zero);
        Alcotest.(check bool) "x or ~x" true (B.or_ b x nx = Netlist.One);
        Alcotest.(check bool) "x xor ~x" true (B.xor_ b x nx = Netlist.One));
    Alcotest.test_case "structural hashing shares cells" `Quick (fun () ->
        let b = B.create "t" in
        let x = (B.add_input b "x" 1).(0) in
        let y = (B.add_input b "y" 1).(0) in
        let g1 = B.and_ b x y in
        let g2 = B.and_ b y x in
        Alcotest.(check bool) "commuted AND shared" true (g1 = g2);
        B.set_output b "o" [| g1 |];
        Alcotest.(check int) "one cell" 1 (Netlist.num_cells (B.build b)));
    Alcotest.test_case "mux simplifications" `Quick (fun () ->
        let b = B.create "t" in
        let s = (B.add_input b "s" 1).(0) in
        let x = (B.add_input b "x" 1).(0) in
        Alcotest.(check bool) "same branches" true (B.mux b ~sel:s ~a:x ~b:x = x);
        Alcotest.(check bool) "0/1 is sel" true
          (B.mux b ~sel:s ~a:Netlist.Zero ~b:Netlist.One = s);
        Alcotest.(check bool) "const sel" true (B.mux b ~sel:Netlist.One ~a:x ~b:s = s));
    Alcotest.test_case "unconnected dff rejected" `Quick (fun () ->
        let b = B.create "t" in
        let q = B.dff_placeholder b ~edge:`Pos in
        B.set_output b "q" [| q |];
        match B.build b with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected failure");
  ]

let sim_tests =
  [ Alcotest.test_case "adder simulates correctly (exhaustive 4-bit)" `Quick (fun () ->
        let n = build_adder 4 in
        for a = 0 to 15 do
          for b = 0 to 15 do
            let outs =
              Sim.comb n ~inputs:[ ("a", bits_of_int 4 a); ("b", bits_of_int 4 b) ]
            in
            Alcotest.(check int) "sum" (a + b) (int_of_bits (List.assoc "sum" outs))
          done
        done);
    Alcotest.test_case "check_relation accepts valid, rejects invalid" `Quick (fun () ->
        let n = build_adder 2 in
        let valid =
          [ ("a", bits_of_int 2 3); ("b", bits_of_int 2 2); ("sum", bits_of_int 3 5) ]
        in
        let invalid =
          [ ("a", bits_of_int 2 3); ("b", bits_of_int 2 2); ("sum", bits_of_int 3 4) ]
        in
        Alcotest.(check bool) "valid" true (Sim.check_relation n ~assignment:valid);
        Alcotest.(check bool) "invalid" false (Sim.check_relation n ~assignment:invalid));
    Alcotest.test_case "sequential counter steps" `Quick (fun () ->
        (* 2-bit counter: q <= q + 1 each cycle *)
        let b = B.create "counter" in
        let q0 = B.dff_placeholder b ~edge:`Pos in
        let q1 = B.dff_placeholder b ~edge:`Pos in
        B.connect_dff b ~q:q0 ~d:(B.not_ b q0);
        B.connect_dff b ~q:q1 ~d:(B.xor_ b q1 q0);
        B.set_output b "q" [| q0; q1 |];
        let n = B.build b in
        Alcotest.(check int) "ffs" 2 (Netlist.num_flip_flops n);
        let outs = Sim.run n ~inputs:[ []; []; []; []; [] ] in
        let values = List.map (fun o -> int_of_bits (List.assoc "q" o)) outs in
        Alcotest.(check (list int)) "counting" [ 0; 1; 2; 3; 0 ] values);
  ]

let opt_tests =
  [ Alcotest.test_case "dce removes dead logic" `Quick (fun () ->
        let b = B.create "t" in
        let x = (B.add_input b "x" 1).(0) in
        let y = (B.add_input b "y" 1).(0) in
        let live = B.and_ b x y in
        let _dead = B.raw_cell b Netlist.Xor [| x; y |] in
        let _dead2 = B.raw_cell b Netlist.Or [| _dead; x |] in
        B.set_output b "o" [| live |];
        let n = Passes.dce (B.build b) in
        Alcotest.(check int) "cells" 1 (Netlist.num_cells n));
    Alcotest.test_case "dce keeps feedback flip-flops" `Quick (fun () ->
        let b = B.create "t" in
        let q = B.dff_placeholder b ~edge:`Pos in
        B.connect_dff b ~q ~d:(B.not_ b q);
        B.set_output b "q" [| q |];
        let n = Passes.dce (B.build b) in
        Alcotest.(check int) "ffs" 1 (Netlist.num_flip_flops n);
        Alcotest.(check int) "cells" 2 (Netlist.num_cells n));
    Alcotest.test_case "techmap introduces NAND" `Quick (fun () ->
        let b = B.create "t" in
        let x = (B.add_input b "x" 1).(0) in
        let y = (B.add_input b "y" 1).(0) in
        B.set_output b "o" [| B.not_ b (B.and_ b x y) |];
        let n = Passes.techmap (B.build b) in
        Alcotest.(check int) "one cell" 1 (Netlist.num_cells n);
        Alcotest.(check bool) "is nand" true
          (List.mem_assoc Netlist.Nand (Netlist.cells_by_kind n)));
    Alcotest.test_case "techmap builds AOI4" `Quick (fun () ->
        let b = B.create "t" in
        let x = (B.add_input b "x" 1).(0) in
        let y = (B.add_input b "y" 1).(0) in
        let z = (B.add_input b "z" 1).(0) in
        let w = (B.add_input b "w" 1).(0) in
        B.set_output b "o"
          [| B.not_ b (B.or_ b (B.and_ b x y) (B.and_ b z w)) |];
        let n = Passes.techmap (B.build b) in
        Alcotest.(check int) "one cell" 1 (Netlist.num_cells n);
        Alcotest.(check bool) "is aoi4" true
          (List.mem_assoc Netlist.Aoi4 (Netlist.cells_by_kind n)));
    Alcotest.test_case "techmap keeps shared subterms" `Quick (fun () ->
        (* The AND feeds both the NOT and an output: must not be absorbed. *)
        let b = B.create "t" in
        let x = (B.add_input b "x" 1).(0) in
        let y = (B.add_input b "y" 1).(0) in
        let a = B.and_ b x y in
        B.set_output b "o1" [| B.not_ b a |];
        B.set_output b "o2" [| a |];
        let n = Passes.techmap (B.build b) in
        Alcotest.(check int) "two cells" 2 (Netlist.num_cells n));
    Alcotest.test_case "optimize preserves adder behaviour" `Quick (fun () ->
        let n = build_adder 3 in
        let o = Passes.optimize n in
        for a = 0 to 7 do
          for b = 0 to 7 do
            let inputs = [ ("a", bits_of_int 3 a); ("b", bits_of_int 3 b) ] in
            Alcotest.(check int) "sum"
              (int_of_bits (List.assoc "sum" (Sim.comb n ~inputs)))
              (int_of_bits (List.assoc "sum" (Sim.comb o ~inputs)))
          done
        done);
  ]

(* Random DAG netlists for property tests: apply random gates over a pool of
   available signals. *)
let random_netlist_gen =
  QCheck.Gen.(
    let* num_inputs = int_range 2 5 in
    let* num_gates = int_range 1 25 in
    let* choices = list_repeat num_gates (triple (int_bound 6) nat nat) in
    return (num_inputs, choices))

let build_random (num_inputs, choices) =
  let b = B.create "rand" in
  let inputs = Array.init num_inputs (fun i -> (B.add_input b (Printf.sprintf "i%d" i) 1).(0)) in
  let pool = ref (Array.to_list inputs @ [ Netlist.Zero; Netlist.One ]) in
  let pick n = List.nth !pool (n mod List.length !pool) in
  List.iter
    (fun (op, xi, yi) ->
       let x = pick xi and y = pick yi in
       let s =
         match op with
         | 0 -> B.and_ b x y
         | 1 -> B.or_ b x y
         | 2 -> B.xor_ b x y
         | 3 -> B.not_ b x
         | 4 -> B.mux b ~sel:x ~a:y ~b:(pick (xi + yi))
         | 5 -> B.nand_ b x y
         | _ -> B.nor_ b x y
       in
       pool := s :: !pool)
    choices;
  let out = Array.of_list (List.filteri (fun i _ -> i < 4) !pool) in
  B.set_output b "o" out;
  B.build b

let property_tests =
  let optimize_preserves =
    QCheck.Test.make ~name:"optimize preserves random netlist behaviour" ~count:100
      (QCheck.make random_netlist_gen) (fun spec ->
        let n = build_random spec in
        let o = Passes.optimize n in
        let num_inputs = List.length n.Netlist.inputs in
        List.for_all
          (fun code ->
             let inputs =
               List.mapi
                 (fun i (name, _) -> (name, [| (code lsr i) land 1 = 1 |]))
                 n.Netlist.inputs
             in
             Sim.comb n ~inputs = Sim.comb o ~inputs)
          (List.init (1 lsl num_inputs) (fun c -> c)))
  in
  [ QCheck_alcotest.to_alcotest optimize_preserves ]

let unroll_tests =
  [ Alcotest.test_case "unrolled counter matches sequential sim" `Quick (fun () ->
        let b = B.create "counter" in
        let q0 = B.dff_placeholder b ~edge:`Pos in
        let q1 = B.dff_placeholder b ~edge:`Pos in
        B.connect_dff b ~q:q0 ~d:(B.not_ b q0);
        B.connect_dff b ~q:q1 ~d:(B.xor_ b q1 q0);
        B.set_output b "q" [| q0; q1 |];
        let n = B.build b in
        let u = Passes.unroll n ~steps:4 ~ff_names:[| "r0"; "r1" |] in
        Alcotest.(check bool) "combinational" true (Netlist.is_combinational u);
        let inputs =
          [ ("r0@init", [| false |]); ("r1@init", [| false |]) ]
        in
        let outs = Sim.comb u ~inputs in
        let q_at s = int_of_bits (List.assoc (Printf.sprintf "q@%d" s) outs) in
        Alcotest.(check (list int)) "trace" [ 0; 1; 2; 3 ] (List.init 4 q_at);
        Alcotest.(check bool) "final r0" false (List.assoc "r0@final" outs).(0);
        Alcotest.(check bool) "final r1" false (List.assoc "r1@final" outs).(0));
    Alcotest.test_case "unroll keeps per-step inputs independent" `Quick (fun () ->
        (* q <= q xor in *)
        let b = B.create "toggle" in
        let inp = (B.add_input b "in" 1).(0) in
        let q = B.dff_placeholder b ~edge:`Pos in
        B.connect_dff b ~q ~d:(B.xor_ b q inp);
        B.set_output b "q" [| q |];
        let n = B.build b in
        let u = Passes.unroll n ~steps:3 in
        let outs =
          Sim.comb u
            ~inputs:
              [ ("ff0@init", [| false |]);
                ("in@0", [| true |]);
                ("in@1", [| false |]);
                ("in@2", [| true |]) ]
        in
        Alcotest.(check bool) "q@0" false (List.assoc "q@0" outs).(0);
        Alcotest.(check bool) "q@1" true (List.assoc "q@1" outs).(0);
        Alcotest.(check bool) "q@2" true (List.assoc "q@2" outs).(0);
        Alcotest.(check bool) "final" false (List.assoc "ff0@final" outs).(0));
  ]

let suite = builder_tests @ sim_tests @ opt_tests @ property_tests @ unroll_tests
