test/test_ising.ml: Alcotest Array Exact Float Gen List Option Problem QCheck QCheck_alcotest Qac_ising Qubo Scale
