test/test_misc.ml: Alcotest Array Exact List Option Problem Qac_anneal Qac_cells Qac_chimera Qac_csp Qac_edif Qac_embed Qac_ising Qac_netlist Qac_qmasm Qac_verilog Qubo
