test/test_chimera.ml: Alcotest Array List Printf Qac_chimera Qac_embed Qac_ising Queue
