test/test_anneal.ml: Alcotest Array Exact Exact_sampler Format Greedy List Printf Problem Qac_anneal Qac_ising Qac_qmasm Qbsolv Random Rng Sa Sampler Schedule Sqa Tabu
