test/test_verilog.ml: Alcotest Array Ast Buffer Elab Eval Hashtbl List Parser Printf QCheck QCheck_alcotest Qac_netlist Qac_verilog Random String Synth Verilog
