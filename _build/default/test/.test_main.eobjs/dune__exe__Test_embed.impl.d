test/test_embed.ml: Alcotest Array Exact List Problem QCheck QCheck_alcotest Qac_chimera Qac_embed Qac_ising Random
