test/test_pipeline2.ml: Alcotest List Qac_anneal Qac_chimera Qac_core Qac_embed Qac_ising
