test/test_qmasm.ml: Alcotest Array Assemble Ast Exact Float List Macro Option Parser Printf Problem QCheck QCheck_alcotest Qac_cells Qac_edif2qmasm Qac_ising Qac_qmasm Qac_verilog Qmasm Random
