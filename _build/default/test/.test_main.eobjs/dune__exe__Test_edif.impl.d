test/test_edif.ml: Alcotest Array List Netlist Printf QCheck QCheck_alcotest Qac_edif Qac_netlist Qac_sexp Qac_verilog Random Sim Test_netlist
