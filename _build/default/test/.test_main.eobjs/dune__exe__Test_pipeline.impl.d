test/test_pipeline.ml: Alcotest List Printf Qac_anneal Qac_chimera Qac_core Qac_ising Qac_qmasm Qac_roofdual
