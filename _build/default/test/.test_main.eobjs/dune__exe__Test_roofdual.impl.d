test/test_roofdual.ml: Alcotest Array Exact Float List Problem QCheck QCheck_alcotest Qac_ising Qac_roofdual Random
