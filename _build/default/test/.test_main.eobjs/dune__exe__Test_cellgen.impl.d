test/test_cellgen.ml: Alcotest Array Gen List Lp QCheck QCheck_alcotest Qac_cellgen Qac_ising Scale Truthtab
