test/test_netlist.ml: Alcotest Array List Netlist Passes Printf QCheck QCheck_alcotest Qac_netlist Sim
