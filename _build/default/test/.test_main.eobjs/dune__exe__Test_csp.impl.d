test/test_csp.ml: Alcotest Buffer Csp List Mzn Printf Qac_csp String
