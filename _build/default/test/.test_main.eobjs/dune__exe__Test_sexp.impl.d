test/test_sexp.ml: Alcotest List Qac_sexp
