test/test_verilog2.ml: Alcotest Array Ast Elab Eval Hashtbl List Parser Printf Qac_netlist Qac_verilog Random Synth Verilog
