test/test_cells.ml: Alcotest Array Cells Exact List Problem Qac_cellgen Qac_cells Qac_ising Scale
