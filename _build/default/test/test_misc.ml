(* Cross-cutting edge-case battery: ising algebra, cell gaps, EDIF and CSP
   corners, stdcell text, SQA parameters, clique-template sizing. *)

open Qac_ising

let ising_tests =
  [ Alcotest.test_case "relabel merges couplers mapped to the same pair" `Quick (fun () ->
        let p =
          Problem.create ~num_vars:4 ~h:[| 1.0; 0.0; 0.0; 2.0 |]
            ~j:[ ((0, 1), 1.0); ((2, 3), 0.5) ]
            ()
        in
        (* Map 2 -> 0 and 3 -> 1: couplers (0,1) and (2,3) collapse. *)
        let r = Problem.relabel p [| 0; 1; 0; 1 |] ~num_vars:2 in
        Alcotest.(check int) "vars" 2 r.Problem.num_vars;
        Alcotest.(check (float 1e-9)) "merged J" 1.5 (Problem.get_j r 0 1);
        Alcotest.(check (float 1e-9)) "h0" 1.0 r.Problem.h.(0);
        Alcotest.(check (float 1e-9)) "h1 (old vars 1 and 3)" 2.0 r.Problem.h.(1));
    Alcotest.test_case "get_j on absent coupler is zero" `Quick (fun () ->
        let p = Problem.create ~num_vars:3 ~h:(Array.make 3 0.0) ~j:[ ((0, 2), 1.0) ] () in
        Alcotest.(check (float 0.0)) "absent" 0.0 (Problem.get_j p 0 1);
        Alcotest.(check (float 0.0)) "present" 1.0 (Problem.get_j p 2 0));
    Alcotest.test_case "scale rejects nonpositive factors" `Quick (fun () ->
        match Problem.scale Problem.empty (-1.0) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected rejection");
    Alcotest.test_case "energy checks spin values" `Quick (fun () ->
        let p = Problem.create ~num_vars:1 ~h:[| 1.0 |] ~j:[] () in
        match Problem.energy p [| 0 |] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected rejection");
    Alcotest.test_case "min_j / max_j / max_abs_h" `Quick (fun () ->
        let p =
          Problem.create ~num_vars:3 ~h:[| -3.0; 1.0; 0.0 |]
            ~j:[ ((0, 1), -2.0); ((1, 2), 0.5) ]
            ()
        in
        Alcotest.(check (float 0.0)) "max_abs_h" 3.0 (Problem.max_abs_h p);
        Alcotest.(check (float 0.0)) "max_j" 0.5 (Problem.max_j p);
        Alcotest.(check (float 0.0)) "min_j" (-2.0) (Problem.min_j p));
    Alcotest.test_case "qubo offset preserved through double conversion" `Quick (fun () ->
        let q =
          Qubo.create ~num_vars:2 ~linear:[| 1.0; -2.0 |] ~quadratic:[ ((0, 1), 3.0) ]
            ~offset:7.5 ()
        in
        let q2 = Qubo.of_ising (Qubo.to_ising q) in
        List.iter
          (fun (a, b) ->
             Alcotest.(check (float 1e-9)) "energy" (Qubo.energy q [| a; b |])
               (Qubo.energy q2 [| a; b |]))
          [ (false, false); (true, false); (false, true); (true, true) ]);
    Alcotest.test_case "exact histogram energies ascend" `Quick (fun () ->
        let p =
          Problem.create ~num_vars:3 ~h:[| 0.3; -0.7; 0.1 |] ~j:[ ((0, 2), -0.4) ] ()
        in
        let hist = Exact.brute_energy_histogram p in
        let energies = List.map fst hist in
        Alcotest.(check bool) "sorted" true (List.sort compare energies = energies));
  ]

let cells_tests =
  [ Alcotest.test_case "exact gaps of Table 5 match recorded values" `Quick (fun () ->
        let expected =
          [ ("NOT", 2.0); ("AND", 2.0); ("OR", 2.0); ("NAND", 2.0); ("NOR", 2.0);
            ("XOR", 1.0); ("XNOR", 1.0); ("MUX", 1.0); ("OAI3", 1.0);
            ("DFF_P", 2.0); ("DFF_N", 2.0) ]
        in
        List.iter
          (fun (name, gap) ->
             match Qac_cells.Cells.find name with
             | None -> Alcotest.fail ("missing cell " ^ name)
             | Some c ->
               (match Qac_cells.Cells.verify c with
                | Ok g -> Alcotest.(check (float 1e-6)) name gap g
                | Error msg -> Alcotest.fail msg))
          expected);
    Alcotest.test_case "AOI gaps are thirds" `Quick (fun () ->
        let gap name =
          match Qac_cells.Cells.verify (Option.get (Qac_cells.Cells.find name)) with
          | Ok g -> g
          | Error msg -> Alcotest.fail msg
        in
        Alcotest.(check (float 1e-6)) "AOI3" (4.0 /. 3.0) (gap "AOI3");
        Alcotest.(check (float 1e-6)) "AOI4" (1.0 /. 3.0) (gap "AOI4");
        Alcotest.(check (float 1e-6)) "OAI4" (4.0 /. 3.0) (gap "OAI4"));
    Alcotest.test_case "stdcell text is stable across calls" `Quick (fun () ->
        Alcotest.(check string) "same" (Qac_cells.Stdcell.contents ())
          (Qac_cells.Stdcell.contents ()));
    Alcotest.test_case "stdcell macros carry assertions" `Quick (fun () ->
        let stmts = Qac_qmasm.Parser.parse_string (Qac_cells.Stdcell.contents ()) in
        let assertions =
          List.length
            (List.filter (function Qac_qmasm.Ast.Assertion _ -> true | _ -> false) stmts)
        in
        Alcotest.(check int) "one per cell" 14 assertions);
  ]

let edif_tests =
  [ Alcotest.test_case "netlist names with special characters survive" `Quick (fun () ->
        (* Unrolled ports contain @ and []; EDIF must round-trip them. *)
        let src =
          "module t (clk, o); input clk; output o; reg q; always @(posedge clk) q <= ~q; assign o = q; endmodule"
        in
        let netlist =
          Qac_netlist.Passes.unroll ~ff_names:[| "q" |]
            (Qac_verilog.Synth.compile src).Qac_verilog.Synth.netlist ~steps:2
        in
        let back = Qac_edif.Edif.of_string (Qac_edif.Edif.to_string netlist) in
        Alcotest.(check bool) "q@init input present" true
          (Qac_netlist.Netlist.find_input back "q@init" <> None);
        Alcotest.(check bool) "o@1 output present" true
          (Qac_netlist.Netlist.find_output back "o@1" <> None));
    Alcotest.test_case "edif of empty-logic module" `Quick (fun () ->
        let src = "module t (a, o); input a; output o; assign o = a; endmodule" in
        let n = (Qac_verilog.Synth.compile src).Qac_verilog.Synth.netlist in
        let back = Qac_edif.Edif.of_string (Qac_edif.Edif.to_string n) in
        let out = Qac_netlist.Sim.comb back ~inputs:[ ("a", [| true |]) ] in
        Alcotest.(check bool) "passthrough" true (List.assoc "o" out).(0));
  ]

let csp_tests =
  [ Alcotest.test_case "iter_solutions early stop" `Quick (fun () ->
        let t = Qac_csp.Csp.create () in
        let _ = Qac_csp.Csp.add_var t ~name:"x" ~lo:0 ~hi:9 () in
        let count = ref 0 in
        Qac_csp.Csp.iter_solutions t (fun _ ->
            incr count;
            if !count >= 3 then `Stop else `Continue);
        Alcotest.(check int) "stopped" 3 !count);
    Alcotest.test_case "var_name lookup" `Quick (fun () ->
        let t = Qac_csp.Csp.create () in
        let a = Qac_csp.Csp.add_var t ~name:"alpha" ~lo:0 ~hi:1 () in
        Alcotest.(check string) "name" "alpha" (Qac_csp.Csp.var_name t a));
    Alcotest.test_case "solve_all with limit" `Quick (fun () ->
        let t = Qac_csp.Csp.create () in
        let _ = Qac_csp.Csp.add_var t ~lo:0 ~hi:9 () in
        Alcotest.(check int) "limited" 4 (List.length (Qac_csp.Csp.solve_all ~limit:4 t)));
  ]

let sqa_clique_tests =
  [ Alcotest.test_case "sqa j_perp behaviour via extreme gammas" `Quick (fun () ->
        (* With gamma pinned huge the replicas decouple: reads should still
           return legal spin vectors (sanity of the Trotter machinery). *)
        let p = Problem.create ~num_vars:4 ~h:[| 1.0; -1.0; 0.5; -0.5 |] ~j:[] () in
        let r =
          Qac_anneal.Sqa.sample
            ~params:{ Qac_anneal.Sqa.default_params with
                      Qac_anneal.Sqa.gamma_initial = 10.0; gamma_final = 5.0;
                      num_reads = 5; num_sweeps = 50 }
            p
        in
        List.iter
          (fun s ->
             Array.iter
               (fun v -> Alcotest.(check bool) "+-1" true (v = 1 || v = -1))
               s.Qac_anneal.Sampler.spins)
          r.Qac_anneal.Sampler.samples);
    Alcotest.test_case "clique template chain lengths" `Quick (fun () ->
        (* Variable v in block b has chain length (b+1) + (blocks-b). *)
        let g = Qac_chimera.Chimera.create 4 in
        match Qac_embed.Clique.embed g ~n:12 with
        | None -> Alcotest.fail "template failed"
        | Some e ->
          Alcotest.(check int) "blocks = 3 -> max chain 4" 4
            (Qac_embed.Embedding.max_chain_length e));
    Alcotest.test_case "clique template on wider shore" `Quick (fun () ->
        let g = Qac_chimera.Chimera.create ~shore:6 3 in
        match Qac_embed.Clique.embed g ~n:18 with
        | None -> Alcotest.fail "template failed on shore 6"
        | Some e ->
          let p18 =
            let j = ref [] in
            for i = 0 to 17 do
              for k = i + 1 to 17 do
                j := ((i, k), 0.1) :: !j
              done
            done;
            Problem.create ~num_vars:18 ~h:(Array.make 18 0.0) ~j:!j ()
          in
          (match Qac_embed.Embedding.verify g p18 e with
           | Ok () -> ()
           | Error msg -> Alcotest.fail msg));
  ]

let suite = ising_tests @ cells_tests @ edif_tests @ csp_tests @ sqa_clique_tests
