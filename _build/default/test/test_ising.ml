open Qac_ising

let spins_of_int n code =
  Array.init n (fun i -> if (code lsr i) land 1 = 1 then 1 else -1)

let triangle =
  (* Frustrated antiferromagnetic triangle: 6 degenerate ground states. *)
  Problem.create ~num_vars:3 ~h:[| 0.0; 0.0; 0.0 |]
    ~j:[ ((0, 1), 1.0); ((1, 2), 1.0); ((0, 2), 1.0) ]
    ()

let builder_tests =
  [ Alcotest.test_case "builder accumulates coefficients" `Quick (fun () ->
        let b = Problem.Builder.create () in
        Problem.Builder.add_h b 0 1.0;
        Problem.Builder.add_h b 0 0.5;
        Problem.Builder.add_j b 1 0 2.0;
        Problem.Builder.add_j b 0 1 (-1.0);
        let p = Problem.Builder.build b in
        Alcotest.(check int) "vars" 2 p.Problem.num_vars;
        Alcotest.(check (float 1e-9)) "h0" 1.5 p.Problem.h.(0);
        Alcotest.(check (float 1e-9)) "J01" 1.0 (Problem.get_j p 0 1));
    Alcotest.test_case "zero couplers dropped" `Quick (fun () ->
        let b = Problem.Builder.create () in
        Problem.Builder.add_j b 0 1 1.0;
        Problem.Builder.add_j b 0 1 (-1.0);
        let p = Problem.Builder.build b in
        Alcotest.(check int) "couplers" 0 (Problem.num_interactions p));
    Alcotest.test_case "self coupler rejected" `Quick (fun () ->
        let b = Problem.Builder.create () in
        Alcotest.check_raises "self" (Invalid_argument "Builder.add_j: self-coupler")
          (fun () -> Problem.Builder.add_j b 2 2 1.0));
    Alcotest.test_case "add_problem with renaming" `Quick (fun () ->
        let p = triangle in
        let b = Problem.Builder.create () in
        Problem.Builder.add_problem b p ~var_map:[| 5; 3; 1 |];
        let q = Problem.Builder.build b in
        Alcotest.(check int) "vars" 6 q.Problem.num_vars;
        Alcotest.(check (float 1e-9)) "J35" 1.0 (Problem.get_j q 3 5);
        Alcotest.(check (float 1e-9)) "J13" 1.0 (Problem.get_j q 1 3);
        Alcotest.(check (float 1e-9)) "J15" 1.0 (Problem.get_j q 1 5));
  ]

let energy_tests =
  [ Alcotest.test_case "energy of simple chain" `Quick (fun () ->
        (* H = s0 - s1 - s0*s1: table check *)
        let p =
          Problem.create ~num_vars:2 ~h:[| 1.0; -1.0 |] ~j:[ ((0, 1), -1.0) ] ()
        in
        let e a b = Problem.energy p [| a; b |] in
        Alcotest.(check (float 1e-9)) "--" (-1.0 +. 1.0 -. 1.0) (e (-1) (-1));
        Alcotest.(check (float 1e-9)) "-+" (-1.0 -. 1.0 +. 1.0) (e (-1) 1);
        Alcotest.(check (float 1e-9)) "+-" (1.0 +. 1.0 +. 1.0) (e 1 (-1));
        Alcotest.(check (float 1e-9)) "++" (1.0 -. 1.0 -. 1.0) (e 1 1));
    Alcotest.test_case "offset participates in energy" `Quick (fun () ->
        let p = Problem.create ~num_vars:1 ~h:[| 1.0 |] ~j:[] ~offset:10.0 () in
        Alcotest.(check (float 1e-9)) "e" 9.0 (Problem.energy p [| -1 |]));
    Alcotest.test_case "energy_delta matches recomputation" `Quick (fun () ->
        let p =
          Problem.create ~num_vars:4 ~h:[| 0.5; -1.0; 0.25; 2.0 |]
            ~j:[ ((0, 1), -0.5); ((1, 2), 1.5); ((2, 3), -1.0); ((0, 3), 0.75) ]
            ()
        in
        for code = 0 to 15 do
          let sigma = spins_of_int 4 code in
          for i = 0 to 3 do
            let e0 = Problem.energy p sigma in
            let flipped = Array.copy sigma in
            flipped.(i) <- -flipped.(i);
            let expected = Problem.energy p flipped -. e0 in
            Alcotest.(check (float 1e-9)) "delta" expected (Problem.energy_delta p sigma i)
          done
        done);
    Alcotest.test_case "scale preserves argmin and scales energy" `Quick (fun () ->
        let p2 = Problem.scale triangle 2.5 in
        let sigma = [| 1; -1; 1 |] in
        Alcotest.(check (float 1e-9)) "scaled" (2.5 *. Problem.energy triangle sigma)
          (Problem.energy p2 sigma));
    Alcotest.test_case "add sums Hamiltonians" `Quick (fun () ->
        let a = Problem.create ~num_vars:2 ~h:[| 1.0; 0.0 |] ~j:[ ((0, 1), 1.0) ] () in
        let b = Problem.create ~num_vars:3 ~h:[| 0.0; 2.0; -1.0 |] ~j:[ ((0, 1), -1.0) ] () in
        let s = Problem.add a b in
        Alcotest.(check int) "vars" 3 s.Problem.num_vars;
        let sigma = [| 1; 1; -1 |] in
        Alcotest.(check (float 1e-9)) "sum"
          (Problem.energy a [| 1; 1 |] +. Problem.energy b sigma)
          (Problem.energy s sigma));
    Alcotest.test_case "num_terms counts nonzero" `Quick (fun () ->
        let p = Problem.create ~num_vars:3 ~h:[| 1.0; 0.0; 2.0 |] ~j:[ ((0, 2), 1.0) ] () in
        Alcotest.(check int) "terms" 3 (Problem.num_terms p));
  ]

let exact_tests =
  [ Alcotest.test_case "ferromagnetic pair ground states" `Quick (fun () ->
        let p = Problem.create ~num_vars:2 ~h:[| 0.0; 0.0 |] ~j:[ ((0, 1), -1.0) ] () in
        let r = Exact.solve p in
        Alcotest.(check (float 1e-9)) "energy" (-1.0) r.Exact.ground_energy;
        Alcotest.(check int) "count" 2 (List.length r.Exact.ground_states);
        Alcotest.(check (float 1e-9)) "gap" 2.0 (Option.get (Exact.gap p)));
    Alcotest.test_case "frustrated triangle has 6 ground states" `Quick (fun () ->
        Alcotest.(check int) "count" 6 (Exact.num_ground_states triangle));
    Alcotest.test_case "pinned variable" `Quick (fun () ->
        (* strong field forces s0 = -1 *)
        let p = Problem.create ~num_vars:2 ~h:[| 5.0; 0.0 |] ~j:[ ((0, 1), -1.0) ] () in
        let r = Exact.solve p in
        List.iter
          (fun sigma -> Alcotest.(check int) "s0" (-1) sigma.(0))
          r.Exact.ground_states);
    Alcotest.test_case "histogram covers all configurations" `Quick (fun () ->
        let hist = Exact.brute_energy_histogram triangle in
        let total = List.fold_left (fun acc (_, n) -> acc + n) 0 hist in
        Alcotest.(check int) "total" 8 total);
    Alcotest.test_case "is_ground_state" `Quick (fun () ->
        let p = Problem.create ~num_vars:1 ~h:[| 1.0 |] ~j:[] () in
        Alcotest.(check bool) "down" true (Exact.is_ground_state p [| -1 |]);
        Alcotest.(check bool) "up" false (Exact.is_ground_state p [| 1 |]));
    Alcotest.test_case "too large rejected" `Quick (fun () ->
        let p = Problem.create ~num_vars:31 ~h:(Array.make 31 0.0) ~j:[] () in
        match Exact.solve p with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected guard");
  ]

let qubo_tests =
  let qcheck_roundtrip =
    QCheck.Test.make ~name:"qubo/ising round-trip preserves energy" ~count:200
      QCheck.(
        triple (int_bound 4)
          (list_of_size Gen.(return 5) (float_bound_exclusive 4.0))
          (list_of_size Gen.(return 10) (float_bound_exclusive 4.0)))
      (fun (extra, hs, js) ->
         let n = 2 + extra in
         let h = Array.init n (fun i -> try List.nth hs i with _ -> 0.0) in
         let j = ref [] in
         let count = ref 0 in
         for i = 0 to n - 1 do
           for k = i + 1 to n - 1 do
             (match List.nth_opt js !count with
              | Some v -> j := ((i, k), v) :: !j
              | None -> ());
             incr count
           done
         done;
         let p = Problem.create ~num_vars:n ~h ~j:!j ~offset:1.25 () in
         let q = Qubo.of_ising p in
         let p' = Qubo.to_ising q in
         List.for_all
           (fun code ->
              let sigma = spins_of_int n code in
              let x = Qubo.bools_of_spins sigma in
              let e = Problem.energy p sigma in
              Float.abs (e -. Qubo.energy q x) < 1e-7
              && Float.abs (e -. Problem.energy p' sigma) < 1e-7)
           (List.init (1 lsl n) (fun c -> c)))
  in
  [ QCheck_alcotest.to_alcotest qcheck_roundtrip;
    Alcotest.test_case "hand qubo energy" `Quick (fun () ->
        (* E(x) = 3 x0 - 2 x1 + 4 x0 x1 + 1 *)
        let q =
          Qubo.create ~num_vars:2 ~linear:[| 3.0; -2.0 |] ~quadratic:[ ((0, 1), 4.0) ]
            ~offset:1.0 ()
        in
        Alcotest.(check (float 1e-9)) "00" 1.0 (Qubo.energy q [| false; false |]);
        Alcotest.(check (float 1e-9)) "10" 4.0 (Qubo.energy q [| true; false |]);
        Alcotest.(check (float 1e-9)) "01" (-1.0) (Qubo.energy q [| false; true |]);
        Alcotest.(check (float 1e-9)) "11" 6.0 (Qubo.energy q [| true; true |]));
  ]

let scale_tests =
  [ Alcotest.test_case "in-range problem untouched" `Quick (fun () ->
        Alcotest.(check bool) "same" true
          (Problem.equal triangle (Scale.apply Scale.dwave_2000q triangle)));
    Alcotest.test_case "oversized h scaled down" `Quick (fun () ->
        let p = Problem.create ~num_vars:1 ~h:[| 8.0 |] ~j:[] () in
        let s = Scale.apply Scale.dwave_2000q p in
        Alcotest.(check (float 1e-9)) "h" 2.0 s.Problem.h.(0));
    Alcotest.test_case "positive J capped at 1 on dwave range" `Quick (fun () ->
        let p = Problem.create ~num_vars:2 ~h:[| 0.0; 0.0 |] ~j:[ ((0, 1), 4.0) ] () in
        let s = Scale.apply Scale.dwave_2000q p in
        Alcotest.(check (float 1e-9)) "J" 1.0 (Problem.get_j s 0 1);
        Alcotest.(check bool) "fits" true (Scale.fits Scale.dwave_2000q s));
    Alcotest.test_case "negative J capped at -2" `Quick (fun () ->
        let p = Problem.create ~num_vars:2 ~h:[| 0.0; 0.0 |] ~j:[ ((0, 1), -8.0) ] () in
        let s = Scale.apply Scale.dwave_2000q p in
        Alcotest.(check (float 1e-9)) "J" (-2.0) (Problem.get_j s 0 1));
    Alcotest.test_case "scaling preserves ground states" `Quick (fun () ->
        let p =
          Problem.create ~num_vars:3 ~h:[| 7.0; -3.0; 0.5 |]
            ~j:[ ((0, 1), 5.0); ((1, 2), -6.0) ]
            ()
        in
        let s = Scale.apply Scale.dwave_2000q p in
        let gp = (Exact.solve p).Exact.ground_states in
        let gs = (Exact.solve s).Exact.ground_states in
        Alcotest.(check bool) "same argmin" true (gp = gs));
    Alcotest.test_case "quantize keeps coarse structure" `Quick (fun () ->
        let p = Problem.create ~num_vars:2 ~h:[| 1.0; -1.0 |] ~j:[ ((0, 1), -1.0) ] () in
        let q = Scale.quantize ~bits:4 p in
        let gp = (Exact.solve p).Exact.ground_states in
        let gq = (Exact.solve q).Exact.ground_states in
        Alcotest.(check bool) "same argmin" true (gp = gq));
  ]

let suite = builder_tests @ energy_tests @ exact_tests @ qubo_tests @ scale_tests
