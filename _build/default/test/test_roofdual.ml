open Qac_ising
module Qpbo = Qac_roofdual.Qpbo

let random_problem ~seed ~n ~density =
  let st = Random.State.make [| seed |] in
  let h = Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0) in
  let j = ref [] in
  for i = 0 to n - 1 do
    for k = i + 1 to n - 1 do
      if Random.State.float st 1.0 < density then
        j := ((i, k), Random.State.float st 2.0 -. 1.0) :: !j
    done
  done;
  Problem.create ~num_vars:n ~h ~j:!j ()

(* Weak persistency: fixing the labeled variables must preserve the optimal
   energy; the bound must hold. *)
let check_weak_persistency p =
  let exact = Exact.solve p in
  let result = Qpbo.solve p in
  Alcotest.(check bool) "lower bound holds" true
    (result.Qpbo.lower_bound <= exact.Exact.ground_energy +. 1e-6);
  if result.Qpbo.fixed <> [] then begin
    let consistent =
      List.exists
        (fun ground ->
           List.for_all
             (fun (i, b) -> (ground.(i) > 0) = b)
             result.Qpbo.fixed)
        exact.Exact.ground_states
    in
    Alcotest.(check bool) "some ground state agrees with all fixings" true consistent
  end

let unit_tests =
  [ Alcotest.test_case "pure field problem fully fixed" `Quick (fun () ->
        let p = Problem.create ~num_vars:3 ~h:[| 1.0; -2.0; 0.5 |] ~j:[] () in
        let r = Qpbo.solve p in
        Alcotest.(check int) "all fixed" 3 (List.length r.Qpbo.fixed);
        Alcotest.(check bool) "values" true
          (r.Qpbo.fixed = [ (0, false); (1, true); (2, false) ]);
        Alcotest.(check (float 1e-9)) "tight bound" (-3.5) r.Qpbo.lower_bound);
    Alcotest.test_case "submodular (ferromagnetic) problems fix completely" `Quick
      (fun () ->
         (* All J <= 0 in QUBO form means roof duality is tight. *)
         let p =
           Problem.create ~num_vars:4 ~h:[| 0.3; -0.2; 0.5; -0.1 |]
             ~j:[ ((0, 1), -1.0); ((1, 2), -0.5); ((2, 3), -1.0) ]
             ()
         in
         let r = Qpbo.solve p in
         let exact = Exact.solve p in
         Alcotest.(check int) "all fixed" 4 (List.length r.Qpbo.fixed);
         Alcotest.(check (float 1e-6)) "bound tight" exact.Exact.ground_energy
           r.Qpbo.lower_bound);
    Alcotest.test_case "frustrated triangle fixes nothing" `Quick (fun () ->
        let p =
          Problem.create ~num_vars:3 ~h:[| 0.0; 0.0; 0.0 |]
            ~j:[ ((0, 1), 1.0); ((1, 2), 1.0); ((0, 2), 1.0) ]
            ()
        in
        let r = Qpbo.solve p in
        Alcotest.(check (list (pair int bool))) "nothing fixed" [] r.Qpbo.fixed);
    Alcotest.test_case "simplify folds fixed variables" `Quick (fun () ->
        (* Strong field pins variable 0; coupling folds into variable 1. *)
        let p =
          Problem.create ~num_vars:2 ~h:[| 5.0; 0.1 |] ~j:[ ((0, 1), -1.0) ] ()
        in
        let s = Qpbo.simplify p in
        Alcotest.(check bool) "var 0 fixed false" true (List.mem (0, false) s.Qpbo.fixed);
        (* Reduced problem over remaining variables solves to the same
           optimum as the original. *)
        let reduced_exact = Exact.solve s.Qpbo.reduced in
        let full_exact = Exact.solve p in
        Alcotest.(check (float 1e-9)) "same optimum" full_exact.Exact.ground_energy
          reduced_exact.Exact.ground_energy;
        (* Restore round-trip. *)
        (match reduced_exact.Exact.ground_states with
         | g :: _ ->
           let full = Qpbo.restore ~original_num_vars:2 s g in
           Alcotest.(check bool) "restored is ground" true (Exact.is_ground_state p full)
         | [] -> Alcotest.fail "no reduced ground state"));
    Alcotest.test_case "empty problem" `Quick (fun () ->
        let r = Qpbo.solve Problem.empty in
        Alcotest.(check (list (pair int bool))) "nothing" [] r.Qpbo.fixed);
  ]

let property_tests =
  let persistency =
    QCheck.Test.make ~name:"roof duality gives weak persistency on random problems"
      ~count:60
      QCheck.(int_bound 100000)
      (fun seed ->
         let p = random_problem ~seed ~n:(4 + (seed mod 7)) ~density:0.5 in
         check_weak_persistency p;
         true)
  in
  let simplify_preserves =
    QCheck.Test.make ~name:"simplify preserves the optimal energy" ~count:40
      QCheck.(int_bound 100000)
      (fun seed ->
         let p = random_problem ~seed:(seed + 7919) ~n:(3 + (seed mod 8)) ~density:0.4 in
         let s = Qpbo.simplify p in
         let reduced = Exact.solve s.Qpbo.reduced in
         let full = Exact.solve p in
         Float.abs (reduced.Exact.ground_energy -. full.Exact.ground_energy) < 1e-6)
  in
  [ QCheck_alcotest.to_alcotest persistency;
    QCheck_alcotest.to_alcotest simplify_preserves ]

let suite = unit_tests @ property_tests
