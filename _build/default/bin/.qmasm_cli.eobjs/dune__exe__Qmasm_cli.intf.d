bin/qmasm_cli.mli:
