bin/qmasm_cli.ml: Arg Cmd Cmdliner Format List Printf Problem Qac_anneal Qac_edif2qmasm Qac_ising Qac_qmasm String Term
