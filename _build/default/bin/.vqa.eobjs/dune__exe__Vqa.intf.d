bin/vqa.mli:
