bin/vqa.ml: Arg Cmd Cmdliner List Printf Qac_anneal Qac_cells Qac_chimera Qac_core Qac_embed Qac_ising Qac_qmasm String Term
