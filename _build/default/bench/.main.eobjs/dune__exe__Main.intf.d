bench/main.mli:
