(** The per-table/per-figure experiment harness (DESIGN.md E1-E15).

    Every experiment prints the paper's reported artifact next to what this
    reproduction measures.  Absolute numbers differ (the substrate is
    simulated annealing on a CPU, not a D-Wave 2000Q); the *shape* — who
    wins, what grows, where the costs are — is the reproduction target. *)

module P = Qac_core.Pipeline
module Cells = Qac_cells.Cells
module Truthtab = Qac_cellgen.Truthtab
module Gen = Qac_cellgen.Gen
module Chimera = Qac_chimera.Chimera
module Cmr = Qac_embed.Cmr
module Embedding = Qac_embed.Embedding
module Sampler = Qac_anneal.Sampler
open Qac_ising

let header id title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s: %s\n" (String.uppercase_ascii id) title;
  Printf.printf "================================================================\n"

let row fmt = Printf.printf fmt

(* --- Sources (verbatim from the paper) ----------------------------------- *)

let fig2_src =
  {|module circuit (s, a, b, c);
  input s;
  input a;
  input b;
  output [1:0] c;
  assign c = s ? a + b : a - b;
endmodule|}

let circsat_src =
  {|module circsat (a, b, c, y);
  input a, b, c;
  output y;
  wire [1:10] x;
  assign x[1] = a;
  assign x[2] = b;
  assign x[3] = c;
  assign x[4] = ~x[3];
  assign x[5] = x[1] | x[2];
  assign x[6] = ~x[4];
  assign x[7] = x[1] & x[2] & x[4];
  assign x[8] = x[5] | x[6];
  assign x[9] = x[6] | x[7];
  assign x[10] = x[8] & x[9] & x[7];
  assign y = x[10];
endmodule|}

let mult_src =
  {|module mult (A, B, C);
  input [3:0] A;
  input [3:0] B;
  output[7:0] C;
  assign C = A * B;
endmodule|}

let australia_src =
  (* Formatted as the paper's 6-line Listing 7 (the assign wraps once). *)
  {|module australia (NSW, QLD, SA, VIC, WA, NT, ACT, valid);
  input [1:0] NSW, QLD, SA, VIC, WA, NT, ACT;
  output valid;
  assign valid = WA != NT && WA != SA && NT != SA && NT != QLD && SA != QLD && SA != NSW
              && SA != VIC && QLD != NSW && NSW != VIC && NSW != ACT;
endmodule|}

let counter_src =
  {|module count (clk, inc, reset, out);
  input clk;
  input inc;
  input reset;
  output [5:0] out;
  reg [5:0] var;
  always @(posedge clk)
    if (reset)
      var <= 0;
    else
      if (inc)
        var <= var + 1;
  assign out = var;
endmodule|}

let listing8_mzn =
  "var 1..4: NSW; var 1..4: QLD; var 1..4: SA; var 1..4: VIC;\n\
   var 1..4: WA; var 1..4: NT; var 1..4: ACT;\n\
   constraint WA != NT; constraint WA != SA; constraint NT != SA;\n\
   constraint NT != QLD; constraint SA != QLD; constraint SA != NSW;\n\
   constraint SA != VIC; constraint QLD != NSW; constraint NSW != VIC;\n\
   constraint NSW != ACT;\n\
   solve satisfy;\n"

let sa ~reads ~sweeps ~seed =
  P.Sa { Qac_anneal.Sa.default_params with Qac_anneal.Sa.num_reads = reads; num_sweeps = sweeps; seed }

let mean_std values =
  let n = float_of_int (List.length values) in
  let mean = List.fold_left ( +. ) 0.0 values /. n in
  let var = List.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0 values /. n in
  (mean, sqrt var)

(* --- E1: Figure 2 --------------------------------------------------------- *)

let e1 () =
  header "e1" "Figure 2 — end-to-end transformation of a simple function";
  let t = P.compile fig2_src in
  let props = P.static_properties t in
  row "stage sizes: %d Verilog lines -> %d EDIF lines -> %d QMASM lines -> %d Ising variables\n"
    props.P.verilog_lines props.P.edif_lines props.P.qmasm_lines props.P.logical_vars;
  row "paper: H(sigma) over physical qubits; minimized exactly at valid (s,a,b,c) relations\n";
  let result = P.run t ~solver:P.Exact_solver ~target:P.Logical in
  row "measured: %d ground states, one per input combination (expected 8)\n"
    (List.length result.P.solutions);
  List.iter
    (fun (s_v, a_v, b_v, c_v, ok) ->
       row "  {s=%d, a=%d, b=%d, c=%d%d}  valid relation: %b\n" s_v a_v b_v
         ((c_v lsr 1) land 1) (c_v land 1) ok)
    (List.map
       (fun sol ->
          ( List.assoc "s" sol.P.ports,
            List.assoc "a" sol.P.ports,
            List.assoc "b" sol.P.ports,
            List.assoc "c" sol.P.ports,
            sol.P.valid ))
       result.P.solutions);
  row "paper's examples: {s=0,a=1,b=0,c=01} and {s=1,a=1,b=1,c=10} valid; {s=1,a=0,b=0,c=11} not\n";
  let check sv av bv cv =
    List.exists
      (fun sol ->
         List.assoc "s" sol.P.ports = sv
         && List.assoc "a" sol.P.ports = av
         && List.assoc "b" sol.P.ports = bv
         && List.assoc "c" sol.P.ports = cv)
      result.P.solutions
  in
  row "measured: {0,1,0,01} in ground set: %b; {1,1,1,10} in ground set: %b; {1,0,0,11}: %b\n"
    (check 0 1 0 1) (check 1 1 1 2) (check 1 0 0 3)

(* --- E2: Figure 3 --------------------------------------------------------- *)

let e2 () =
  header "e2" "Figure 3 — digital circuit and EDIF netlist for Figure 2(a)";
  let t = P.compile fig2_src in
  row "paper: Yosys+ABC compile Figure 2(a) into a gate-level circuit; 112-line EDIF excerpted\n";
  row "measured netlist: %d cells over the Table 5 set, %d flip-flops\n"
    (Qac_netlist.Netlist.num_cells t.P.netlist)
    (Qac_netlist.Netlist.num_flip_flops t.P.netlist);
  List.iter
    (fun (kind, n) -> row "  %-5s x %d\n" (Qac_netlist.Netlist.kind_name kind) n)
    (Qac_netlist.Netlist.cells_by_kind t.P.netlist);
  row "measured EDIF: %d lines (paper: 112); first lines:\n" (Qac_edif.Edif.line_count t.P.edif);
  String.split_on_char '\n' t.P.edif
  |> List.filteri (fun i _ -> i < 6)
  |> List.iter (fun line -> row "  | %s\n" line);
  (* Round-trip sanity. *)
  let reparsed = Qac_edif.Edif.of_string t.P.edif in
  row "EDIF parses back to a netlist with %d cells (round-trip ok: %b)\n"
    (Qac_netlist.Netlist.num_cells reparsed)
    (Qac_netlist.Netlist.num_cells reparsed = Qac_netlist.Netlist.num_cells t.P.netlist)

(* --- E3: Table 1 ----------------------------------------------------------- *)

let e3 () =
  header "e3" "Table 1 — a two-ended net as a quadratic pseudo-Boolean function";
  row "%6s %6s %12s %6s\n" "sig_A" "sig_Y" "-sig_A*sig_Y" "min?";
  let r = Exact.solve Cells.wire in
  List.iter
    (fun (a, y) ->
       let e = Problem.energy Cells.wire [| a; y |] in
       let is_min = Float.abs (e -. r.Exact.ground_energy) < 1e-9 in
       row "%6d %6d %12g %6s\n" a y e (if is_min then "yes" else ""))
    [ (-1, -1); (-1, 1); (1, -1); (1, 1) ];
  row "paper: minimized exactly where sig_A = sig_Y — reproduced: %b\n"
    (List.for_all
       (fun s -> s.(0) = s.(1))
       r.Exact.ground_states)

(* --- E4: Table 2 ----------------------------------------------------------- *)

let e4 () =
  header "e4" "Table 2 — system of inequalities for an AND gate";
  let table = Truthtab.of_function ~num_inputs:2 (fun v -> v.(0) && v.(1)) in
  (match Gen.derive_exact table with
   | None -> row "derivation FAILED (unexpected)\n"
   | Some d ->
     row "derived gap-maximal AND cell: k = %g, gap = %g (LP over h, J with hardware box)\n"
       d.Gen.ground_energy d.Gen.gap;
     row "%6s %6s %6s %10s %10s\n" "sig_Y" "sig_A" "sig_B" "H(row)" "constraint";
     (* Table 2 lists rows in (Y, A, B) order; our variables are (A, B, Y). *)
     List.iter
       (fun (y, a, b) ->
          let spins = [| a; b; y |] in
          let e = Problem.energy d.Gen.problem spins in
          let valid = Truthtab.is_valid table (Truthtab.row_of_spins spins) in
          row "%6d %6d %6d %10g %10s\n" y a b e (if valid then "= k" else "> k"))
       [ (-1, -1, -1); (-1, -1, 1); (-1, 1, -1); (-1, 1, 1);
         (1, -1, -1); (1, -1, 1); (1, 1, -1); (1, 1, 1) ];
     (* The paper's example solution (2 sigY - sigA - sigB - 2 sigY sigA -
        2 sigY sigB + sigA sigB) is exactly 2x the Table 5 AND cell. *)
     let paper = Problem.scale Cells.and_.Cells.hamiltonian 2.0 in
     let r = Exact.solve paper in
     row "paper's example column: k = -3 with values {-3,-3,-3,1,9,1,1,-3} — our k: %g\n"
       r.Exact.ground_energy)

(* --- E5: Tables 3-4 --------------------------------------------------------- *)

let e5 () =
  header "e5" "Tables 3-4 — XOR requires an ancilla";
  let xor_table = Truthtab.of_function ~num_inputs:2 (fun v -> v.(0) <> v.(1)) in
  (match Gen.derive_exact xor_table with
   | None -> row "ancilla-free XOR: no solution (paper: system of inequalities unsolvable) [ok]\n"
   | Some _ -> row "ancilla-free XOR unexpectedly solvable [MISMATCH]\n");
  (* Table 3's augmentation: rows (Y,A,B,a) = FFFF, TFTT, TTFF, FTTF;
     our column order is A,B,Y,a. *)
  let augmented =
    Truthtab.create ~num_vars:4
      [ [| false; false; false; false |];
        [| false; true; true; true |];
        [| true; false; true; false |];
        [| true; true; false; false |] ]
  in
  (match Gen.derive_exact augmented with
   | None -> row "Table 3 augmentation FAILED (unexpected)\n"
   | Some d ->
     row "Table 3's ancilla column makes the system solvable: k = %g, gap = %g\n"
       d.Gen.ground_energy d.Gen.gap;
     row "verified exhaustively: %b\n" (Gen.verify d));
  (* Reproduce Table 4's 16-row energy table with the section 4.3.2
     solution: H = -sY + sA - sB + 2sa - sYsA + sYsB - 2sYsa - sAsB + 2sAsa - 2sBsa. *)
  let paper_432 =
    Problem.create ~num_vars:4
      ~h:[| 1.0; -1.0; -1.0; 2.0 |]
      ~j:
        [ ((0, 2), -1.0); ((1, 2), 1.0); ((2, 3), -2.0); ((0, 1), -1.0); ((0, 3), 2.0);
          ((1, 3), -2.0) ]
      ()
  in
  row "\nTable 4 (paper's section 4.3.2 solution, k = -4):\n";
  row "%5s %5s %5s %5s %8s %10s | paper\n" "Y" "A" "B" "a" "H" "constraint";
  let paper_rows =
    (* The 16 Example-column values of Table 4, in (Y,A,B,a) binary order. *)
    [ -4; 4; -2; -2; -2; 14; -4; 4; -2; -2; 4; -4; -4; 4; -2; -2 ]
  in
  List.iteri
    (fun idx paper_value ->
       let bit k = if (idx lsr (3 - k)) land 1 = 1 then 1 else -1 in
       let y = bit 0 and a = bit 1 and b = bit 2 and anc = bit 3 in
       let e = Problem.energy paper_432 [| a; b; y; anc |] in
       row "%5d %5d %5d %5d %8g %10s | %d %s\n" y a b anc e
         (if e <= -3.999 then "= k" else "> k")
         paper_value
         (if Float.abs (e -. float_of_int paper_value) < 1e-9 then "" else "[MISMATCH]"))
    paper_rows

(* --- E6: Table 5 ------------------------------------------------------------ *)

let e6 () =
  header "e6" "Table 5 — the standard-cell library, verified exhaustively";
  row "%-7s %-10s %-8s %-6s %s\n" "cell" "inputs" "ancillas" "gap" "ground states = truth table?";
  List.iter
    (fun (c : Cells.t) ->
       match Cells.verify c with
       | Ok gap ->
         row "%-7s %-10d %-8d %-6g yes\n" c.Cells.name (List.length c.Cells.inputs)
           c.Cells.num_ancillas gap
       | Error msg -> row "%-7s FAILED: %s\n" c.Cells.name msg)
    Cells.all;
  row "stdcell.qmasm: %d statement lines (paper: 232)\n" (Qac_cells.Stdcell.line_count ())

(* --- E7: Listings 1, 2 and 4 ------------------------------------------------ *)

let e7 () =
  header "e7" "Listings 1, 2, 4 — QMASM programs assemble and solve";
  (* Listing 1. *)
  let listing1 = "A -1\nD 2\nA B -5\nB C -5\nC D -5\nD A -5\nA C 10\nB D 10\n" in
  let a = Qac_qmasm.Qmasm.load listing1 in
  let r = Exact.solve a.Qac_qmasm.Assemble.problem in
  row "Listing 1 (4-variable ring): ground energy %g, %d ground state(s):\n" r.Exact.ground_energy
    (List.length r.Exact.ground_states);
  List.iter
    (fun spins ->
       let assignment = Qac_qmasm.Assemble.assignment_of_spins a spins in
       row "  %s\n"
         (String.concat " "
            (List.map (fun (n, v) -> Printf.sprintf "%s=%s" n (if v then "T" else "F")) assignment)))
    r.Exact.ground_states;
  (* Listing 2's OR macro from the generated standard-cell library. *)
  let src = "!include \"stdcell.qmasm\"\n!use_macro OR my_or\n" in
  let a = Qac_qmasm.Qmasm.load ~resolve:Qac_edif2qmasm.Edif2qmasm.resolve src in
  let r = Exact.solve a.Qac_qmasm.Assemble.problem in
  let or_ok =
    List.for_all
      (fun spins ->
         let v = Qac_qmasm.Assemble.assignment_of_spins a spins in
         List.assoc "my_or.Y" v = (List.assoc "my_or.A" v || List.assoc "my_or.B" v))
      r.Exact.ground_states
  in
  row "Listing 2 (OR macro): %d ground states, all satisfy Y = A|B: %b\n"
    (List.length r.Exact.ground_states) or_ok;
  (* Listing 4's AND3 composition. *)
  let and3 =
    "!include \"stdcell.qmasm\"\n\
     !begin_macro AND3\n!use_macro AND $and1\n!use_macro AND $and2\n\
     A = $and1.A\nB = $and1.B\nC = $and2.B\nY = $and2.Y\n$and1.Y = $and2.A\n\
     !end_macro AND3\n!use_macro AND3 my_and\n"
  in
  let a = Qac_qmasm.Qmasm.load ~resolve:Qac_edif2qmasm.Edif2qmasm.resolve and3 in
  let r = Exact.solve a.Qac_qmasm.Assemble.problem in
  let and3_ok =
    List.for_all
      (fun spins ->
         let v = Qac_qmasm.Assemble.assignment_of_spins a spins in
         List.assoc "my_and.Y" v
         = (List.assoc "my_and.A" v && List.assoc "my_and.B" v && List.assoc "my_and.C" v))
      r.Exact.ground_states
  in
  row "Listing 4 (AND3 = two ANDs + a wire): all ground states satisfy Y = A&B&C: %b\n" and3_ok

(* --- E8: section 4.3.6 ------------------------------------------------------- *)

let e8 () =
  header "e8" "Section 4.3.6 — passing arguments by pinning";
  let and3 =
    "!include \"stdcell.qmasm\"\n\
     !begin_macro AND3\n!use_macro AND $and1\n!use_macro AND $and2\n\
     A = $and1.A\nB = $and1.B\nC = $and2.B\nY = $and2.Y\n$and1.Y = $and2.A\n\
     !end_macro AND3\n!use_macro AND3 g\n"
  in
  let solve_with pins =
    let a = Qac_qmasm.Qmasm.load ~resolve:Qac_edif2qmasm.Edif2qmasm.resolve (and3 ^ pins) in
    let r = Exact.solve a.Qac_qmasm.Assemble.problem in
    List.map (Qac_qmasm.Assemble.assignment_of_spins a) r.Exact.ground_states
  in
  (* Forward: AND3(T, F, T). *)
  let fwd = solve_with "g.A := true\ng.B := false\ng.C := true\n" in
  row "forward AND3(T,F,T): Y in every ground state = %s (paper: False)\n"
    (String.concat ","
       (List.sort_uniq compare
          (List.map (fun v -> if List.assoc "g.Y" v then "T" else "F") fwd)));
  (* Backward: pin Y = True. *)
  let bwd = solve_with "g.Y := true\n" in
  row "backward Y := True: inputs in the unique ground state = %s (paper: A=B=C=True)\n"
    (String.concat " "
       (List.map
          (fun v ->
             Printf.sprintf "A=%s B=%s C=%s"
               (if List.assoc "g.A" v then "T" else "F")
               (if List.assoc "g.B" v then "T" else "F")
               (if List.assoc "g.C" v then "T" else "F"))
          bwd))

(* --- E9: section 4.4 ---------------------------------------------------------- *)

let e9 () =
  header "e9" "Section 4.4 — minor embedding a triangle into the Chimera graph";
  let triangle =
    Problem.create ~num_vars:3 ~h:[| 0.5; 0.5; 0.5 |]
      ~j:[ ((0, 1), 1.0); ((1, 2), 1.0); ((0, 2), 1.0) ]
      ()
  in
  row "paper: H_log over {A,B,C} maps to qubits {0}, {2,4}, {5}: B becomes a 2-qubit chain\n";
  let graph = Chimera.create 2 in
  let hand = { Embedding.chains = [| [| 0 |]; [| 2; 4 |]; [| 5 |] |] } in
  (match Embedding.verify graph triangle hand with
   | Ok () -> row "hand embedding verifies on our Chimera model: yes\n"
   | Error msg -> row "hand embedding FAILED: %s\n" msg);
  let phys = Embedding.apply graph triangle hand ~chain_strength:1.0 in
  row "H_phys coefficients (paper's figures, chain strength 1):\n";
  row "  h: q0=%g q2=%g q4=%g q5=%g (paper: 1/4, 1/8, 1/8, 1/4)\n" phys.Problem.h.(0)
    phys.Problem.h.(2) phys.Problem.h.(4) phys.Problem.h.(5);
  row "  J: (0,4)=%g (0,5)=%g (2,4)=%g (2,5)=%g (paper: 1/2, 1/2, -1, 1/2)\n"
    (Problem.get_j phys 0 4) (Problem.get_j phys 0 5) (Problem.get_j phys 2 4)
    (Problem.get_j phys 2 5);
  (* Note: the paper scales H_phys by 1/2 overall (hardware range); ours is
     unscaled, so expect exactly 2x its printed coefficients. *)
  let compacted, _ = Embedding.compact phys in
  let logical_g = Exact.solve triangle in
  let physical_g = Exact.solve compacted in
  row "logical ground energy %g; physical (per chain intact) %g + chain offset\n"
    logical_g.Exact.ground_energy physical_g.Exact.ground_energy;
  (* And the heuristic embedder finds its own. *)
  match Cmr.find graph triangle with
  | Some e ->
    row "CMR heuristic embedding: %d qubits, max chain %d, verifies: %b\n"
      (Embedding.num_physical_qubits e) (Embedding.max_chain_length e)
      (Embedding.verify graph triangle e = Ok ())
  | None -> row "CMR heuristic FAILED\n"

(* --- E10: Listing 3 ------------------------------------------------------------ *)

let e10 () =
  header "e10" "Listing 3 — sequential logic costs qubits linearly per time step";
  row "%6s %18s %18s\n" "steps" "logical variables" "(paper: 'heavy toll in qubit count')";
  List.iter
    (fun steps ->
       let t = P.compile counter_src ~steps in
       let props = P.static_properties t in
       row "%6d %18d\n" steps props.P.logical_vars)
    [ 1; 2; 4; 8 ];
  (* Forward-simulate the unrolled circuit against the interpreter. *)
  let t = P.compile counter_src ~steps:4 in
  let pins =
    List.init 6 (fun b -> (Printf.sprintf "var[%d]@init" b, 0))
    @ List.concat_map
        (fun step ->
           [ (Printf.sprintf "clk@%d" step, 0);
             (Printf.sprintf "inc@%d" step, 1);
             (Printf.sprintf "reset@%d" step, 0) ])
        [ 0; 1; 2; 3 ]
  in
  let result =
    P.run t ~pins ~solver:(sa ~reads:300 ~sweeps:1500 ~seed:11) ~target:P.Logical
  in
  match P.valid_solutions result with
  | s :: _ ->
    row "unrolled 4 steps, inc every cycle: out = %s (expected 0 1 2 3)\n"
      (String.concat " "
         (List.map
            (fun step -> string_of_int (List.assoc (Printf.sprintf "out@%d" step) s.P.ports))
            [ 0; 1; 2; 3 ]))
  | [] -> row "no valid sample (increase reads)\n"

(* --- E11: Listing 5 ------------------------------------------------------------- *)

let e11 () =
  header "e11" "Listing 5 / Figure 4 — circuit satisfiability run backward";
  let t = P.compile circsat_src in
  let props = P.static_properties t in
  row "compiled: %d Verilog lines, %d logical variables\n" props.P.verilog_lines
    props.P.logical_vars;
  let result = P.run t ~pins:[ ("y", 1) ] ~solver:P.Exact_solver ~target:P.Logical in
  (match P.valid_solutions result with
   | [ s ] ->
     row "pinned y=1 -> a=%d b=%d c=%d (paper: a and b True, c False)\n"
       (List.assoc "a" s.P.ports) (List.assoc "b" s.P.ports) (List.assoc "c" s.P.ports)
   | other -> row "unexpected solution count %d\n" (List.length other));
  (* Also stochastic, like the hardware. *)
  let result = P.run t ~pins:[ ("y", 1) ] ~solver:(sa ~reads:100 ~sweeps:500 ~seed:1) ~target:P.Logical in
  let valid = P.valid_solutions result in
  row "with simulated annealing (100 reads): found the satisfying assignment: %b\n" (valid <> [])

(* --- E12: Listing 6 -------------------------------------------------------------- *)

let e12 () =
  header "e12" "Listing 6 — factoring 143 by running a multiplier backward";
  let t = P.compile mult_src in
  let props = P.static_properties t in
  row "compiled multiplier: %d logical variables\n" props.P.logical_vars;
  let result =
    P.run t ~pin_source:"C[7:0] := 10001111" ~solver:(sa ~reads:500 ~sweeps:2000 ~seed:5)
      ~target:P.Logical
  in
  let tally = Hashtbl.create 4 in
  List.iter
    (fun s ->
       if s.P.valid && s.P.pins_respected then begin
         let key = (List.assoc "A" s.P.ports, List.assoc "B" s.P.ports) in
         let prev = try Hashtbl.find tally key with Not_found -> 0 in
         Hashtbl.replace tally key (prev + s.P.num_occurrences)
       end)
    result.P.solutions;
  let factors =
    Hashtbl.fold (fun (a, b) n acc -> (a, b, n) :: acc) tally [] |> List.sort compare
  in
  row "pin C[7:0] := 10001111 (143): valid factorizations sampled:\n";
  List.iter (fun (a, b, n) -> row "  {A=%d, B=%d} in %d of 500 reads\n" a b n) factors;
  row "paper: returns two unique solutions {A=11,B=13} and {A=13,B=11} — reproduced: %b\n"
    (List.map (fun (a, b, _) -> (a, b)) factors = [ (11, 13); (13, 11) ]);
  (* Multiply and divide with the same program. *)
  let result =
    P.run t ~pin_source:"A[3:0] := 1101\nB[3:0] := 1011"
      ~solver:(sa ~reads:200 ~sweeps:1500 ~seed:7) ~target:P.Logical
  in
  (match P.valid_solutions result with
   | s :: _ -> row "multiply 13 x 11 -> C = %d\n" (List.assoc "C" s.P.ports)
   | [] -> row "multiply: no valid sample\n");
  let result =
    P.run t ~pin_source:"C[7:0] := 10001111\nA[3:0] := 1101"
      ~solver:(sa ~reads:200 ~sweeps:1500 ~seed:9) ~target:P.Logical
  in
  match P.valid_solutions result with
  | s :: _ -> row "divide 143 / 13 -> B = %d\n" (List.assoc "B" s.P.ports)
  | [] -> row "divide: no valid sample\n"

(* --- E13: Listing 7 ---------------------------------------------------------------- *)

let adjacency =
  [ ("WA", "NT"); ("WA", "SA"); ("NT", "SA"); ("NT", "QLD"); ("SA", "QLD");
    ("SA", "NSW"); ("SA", "VIC"); ("QLD", "NSW"); ("NSW", "VIC"); ("NSW", "ACT") ]

let e13 () =
  header "e13" "Listing 7 / Figure 5 — four-coloring Australia backward";
  let t = P.compile australia_src in
  let result =
    P.run t ~pins:[ ("valid", 1) ] ~solver:(sa ~reads:400 ~sweeps:800 ~seed:3)
      ~target:P.Logical
  in
  let valid = P.valid_solutions result in
  row "samples that are proper colorings: %d distinct (of %d distinct samples)\n"
    (List.length valid) (List.length result.P.solutions);
  (match valid with
   | s :: _ ->
     row "example: ";
     List.iter
       (fun r -> row "%s=%d " r (List.assoc r s.P.ports))
       [ "ACT"; "NSW"; "NT"; "QLD"; "SA"; "VIC"; "WA" ];
     row "\n";
     let proper =
       List.for_all (fun (a, b) -> List.assoc a s.P.ports <> List.assoc b s.P.ports) adjacency
     in
     row "adjacency check (all 10 borders differ): %b\n" proper
   | [] -> row "no valid coloring sampled\n");
  row "paper: 'it returns a valid coloring, such as {ACT=2,NSW=0,NT=1,QLD=3,SA=2,VIC=3,WA=3}'\n";
  row "(the annealer samples from the 576 proper colorings; any proper coloring is correct)\n"

(* --- E14: section 6.1 ----------------------------------------------------------------- *)

let e14 ?(embeddings = 8) () =
  header "e14" "Section 6.1 — static properties of the map-coloring compilation";
  let t = P.compile australia_src in
  let props = P.static_properties t in
  row "%-34s %16s %16s\n" "metric" "paper" "measured";
  row "%-34s %16s %16d\n" "Verilog lines" "6" props.P.verilog_lines;
  row "%-34s %16s %16d\n" "EDIF lines" "123" props.P.edif_lines;
  row "%-34s %16s %16d\n" "QMASM lines (excl. stdcell)" "736" props.P.qmasm_lines;
  row "%-34s %16s %16d\n" "stdcell.qmasm lines" "232" props.P.stdcell_lines;
  row "%-34s %16s %16d\n" "logical variables" "74" props.P.logical_vars;
  row "%-34s %16s %16d\n" "logical terms" "312" props.P.logical_terms;
  (* Physical qubits over repeated randomized embeddings. *)
  let problem = t.P.program.Qac_qmasm.Assemble.problem in
  let graph = Chimera.dwave_2000q in
  let qubits = ref [] and terms = ref [] and failures = ref 0 in
  for seed = 1 to embeddings do
    match Cmr.find ~params:{ Cmr.default_params with Cmr.seed; tries = 4 } graph problem with
    | Some e ->
      qubits := float_of_int (Embedding.num_physical_qubits e) :: !qubits;
      let phys = Embedding.apply graph problem e in
      terms := float_of_int (Problem.num_terms phys) :: !terms
    | None -> incr failures
  done;
  (match !qubits with
   | [] -> row "%-34s %16s %16s\n" "physical qubits" "369 +/- 26" "no embeddings"
   | qs ->
     let qm, qs_ = mean_std qs in
     let tm, ts_ = mean_std !terms in
     row "%-34s %16s %10.0f +/- %.0f\n" "physical qubits (C16, randomized)" "369 +/- 26" qm qs_;
     row "%-34s %16s %10.0f +/- %.0f\n" "physical terms" "963 +/- 53" tm ts_;
     if !failures > 0 then row "(%d of %d embedding attempts failed)\n" !failures embeddings);
  row "\nhand-coded unary encoding (Dahl/Lucas style): 28 logical vars, 88 qubits (paper)\n";
  row "compiled/hand-coded logical ratio: paper 74/28 = 2.6x; measured %d/28 = %.1fx\n"
    props.P.logical_vars
    (float_of_int props.P.logical_vars /. 28.0);
  match !qubits with
  | [] -> ()
  | qs ->
    let qm, _ = mean_std qs in
    row "compiled/hand-coded physical ratio: paper 369/88 = 4.2x; measured %.0f/88 = %.1fx\n" qm
      (qm /. 88.0)

(* --- E15: section 6.2 ------------------------------------------------------------------ *)

let e15 () =
  header "e15" "Section 6.2 — execution time vs a classical CSP solver";
  (* Annealer side: SA samples of the compiled map-coloring problem; time
     per *valid* solution, amortized over a batch (the paper amortizes
     1,000,000 anneals of 20us against queueing/HTTPS overheads). *)
  let t = P.compile australia_src in
  let reads = 2000 in
  let solver = sa ~reads ~sweeps:300 ~seed:2 in
  let result = P.run t ~pins:[ ("valid", 1) ] ~solver ~target:P.Logical in
  let valid_reads =
    List.fold_left
      (fun acc s -> if s.P.valid && s.P.pins_respected then acc + s.P.num_occurrences else acc)
      0 result.P.solutions
  in
  let annealer_per_solution =
    if valid_reads = 0 then infinity else result.P.elapsed_seconds /. float_of_int valid_reads
  in
  row "annealer (SA, %d reads, %d sweeps): %.3fs total, %d valid-coloring reads\n" reads 300
    result.P.elapsed_seconds valid_reads;
  row "  => %.0f us per solution (paper, D-Wave 2000Q: 734 us per solution)\n"
    (annealer_per_solution *. 1e6);
  (* Classical side: repeated randomized CSP solves of Listing 8. *)
  let runs = 2000 in
  let t0 = Unix.gettimeofday () in
  let solved = ref 0 in
  for seed = 1 to runs do
    let csp = Qac_csp.Mzn.parse listing8_mzn in
    match Qac_csp.Csp.solve ~seed csp with
    | Some _ -> incr solved
    | None -> ()
  done;
  let csp_elapsed = Unix.gettimeofday () -. t0 in
  let csp_per_solution = csp_elapsed /. float_of_int !solved in
  row "CSP baseline (Listing 8, %d randomized solves): %.3fs total\n" runs csp_elapsed;
  row "  => %.0f us per solution (paper, Chuffed: 1798 us per solution)\n"
    (csp_per_solution *. 1e6);
  row "\nratio annealer/CSP: paper 734/1798 = 0.41x; measured %.1fx\n"
    (annealer_per_solution /. csp_per_solution);
  row "NOTE: the paper's 0.41x depends on hardware 20us anneals; a software SA\n";
  row "substrate cannot reproduce that constant factor on a 7-region toy CSP.\n";
  row "(the paper's point — the annealing path 'is not necessarily worse' than a\n";
  row " classical solver, and it samples the solution space while the CSP returns\n";
  row " the same coloring every time unless randomized — holds on our substrate: %d\n"
    (List.length (P.valid_solutions result));
  row " distinct colorings were sampled in one batch)\n"

(* --- Extension experiments (ablations beyond the paper's evaluation) ------ *)

let ext1 () =
  header "ext1" "Ablation — tech mapping (ABC-style) on vs off";
  row "%-12s %22s %22s
" "workload" "logical vars (mapped)" "logical vars (unmapped)";
  List.iter
    (fun (name, src) ->
       let mapped = P.compile src in
       let unmapped = P.compile ~optimize:false src in
       row "%-12s %22d %22d
" name
         (P.static_properties mapped).P.logical_vars
         (P.static_properties unmapped).P.logical_vars)
    [ ("fig2", fig2_src); ("circsat", circsat_src); ("mult4x4", mult_src);
      ("australia", australia_src) ];
  row "(tech mapping folds NOT+AND/OR cones into NAND/NOR/XNOR/AOI/OAI cells;
";
  row " the paper notes richer cells 'can reduce the required qubit count')
"

let ext2 () =
  header "ext2" "Ablation — chain merging vs explicit chain couplers";
  row "%-12s %18s %18s
" "workload" "merged vars" "unmerged vars";
  List.iter
    (fun (name, src) ->
       let merged = P.compile src in
       let unmerged =
         P.compile ~options:{ P.default_options with Qac_qmasm.Assemble.merge_chains = false } src
       in
       row "%-12s %18d %18d
" name
         (P.static_properties merged).P.logical_vars
         (P.static_properties unmerged).P.logical_vars)
    [ ("fig2", fig2_src); ("circsat", circsat_src); ("australia", australia_src) ];
  row "(qmasm merges 'explicit A = B constraints ... into a single variable', section 4.4)
"

let ext3 () =
  header "ext3" "Extension — analog coefficient precision (section 2's noise discussion)";
  let t = P.compile circsat_src in
  row "circsat with y pinned, coefficients quantized to 2^bits levels:
";
  row "%6s %24s
" "bits" "backward answer correct?";
  List.iter
    (fun bits ->
       (* Pin y = true, quantize, solve exactly, check the answer. *)
       let statements = t.P.statements @ [ Qac_qmasm.Ast.Pin [ ("y", true) ] ] in
       let program = Qac_qmasm.Assemble.assemble ~options:P.default_options statements in
       let quantized = Scale.quantize ~bits program.Qac_qmasm.Assemble.problem in
       let r = Exact.solve quantized in
       let ok =
         List.for_all
           (fun spins ->
              let v = Qac_qmasm.Assemble.assignment_of_spins program spins in
              List.assoc "a" v && List.assoc "b" v && not (List.assoc "c" v))
           r.Exact.ground_states
         && r.Exact.ground_states <> []
       in
       row "%6d %24b
" bits ok)
    [ 2; 3; 4; 5; 6; 8 ];
  row "(few-bit coefficients break the gadget structure; ~4-5 bits suffice here,
";
  row " matching the paper's concern about limited analog precision)
"

let ext4 () =
  header "ext4" "Extension — embedding onto a chip with broken qubits";
  let triangle_plus =
    Problem.create ~num_vars:5 ~h:(Array.make 5 0.1)
      ~j:[ ((0, 1), 1.0); ((1, 2), 1.0); ((0, 2), 1.0); ((2, 3), -1.0); ((3, 4), 1.0);
           ((0, 4), 0.5) ]
      ()
  in
  row "%10s %10s %14s
" "dropout" "success" "mean qubits";
  List.iter
    (fun dropout_percent ->
       let successes = ref 0 and qubits = ref [] in
       for seed = 1 to 10 do
         let st = Random.State.make [| (seed * 100) + dropout_percent |] in
         let broken =
           List.filter (fun _ -> Random.State.int st 100 < dropout_percent)
             (List.init 32 (fun q -> q))
         in
         let graph = Chimera.create 2 ~broken in
         match
           Cmr.find ~params:{ Cmr.default_params with Cmr.seed } graph triangle_plus
         with
         | Some e ->
           incr successes;
           qubits := float_of_int (Embedding.num_physical_qubits e) :: !qubits
         | None -> ()
       done;
       let mean = if !qubits = [] then 0.0 else fst (mean_std !qubits) in
       row "%9d%% %7d/10 %14.1f
" dropout_percent !successes mean)
    [ 0; 5; 10; 20; 30 ];
  row "(the paper notes 'there is inevitably some drop-out'; embedding degrades gracefully)
"

let ext5 () =
  header "ext5" "Extension — solver comparison on the compiled map-coloring problem";
  let t = P.compile australia_src in
  row "%-28s %10s %12s %16s
" "solver" "time (s)" "valid reads" "distinct colorings";
  let evaluate name solver =
    let result = P.run t ~pins:[ ("valid", 1) ] ~solver ~target:P.Logical in
    let valid = P.valid_solutions result in
    let valid_reads =
      List.fold_left (fun acc s -> acc + s.P.num_occurrences) 0 valid
    in
    row "%-28s %10.2f %12d %16d
" name result.P.elapsed_seconds valid_reads
      (List.length valid)
  in
  evaluate "SA (400 reads x 800 sweeps)" (sa ~reads:400 ~sweeps:800 ~seed:3);
  evaluate "tabu (40 restarts)"
    (P.Tabu { Qac_anneal.Tabu.default_params with
              Qac_anneal.Tabu.num_restarts = 40; max_iterations = 400; seed = 1 });
  evaluate "qbsolv (decomposing)"
    (P.Qbsolv { Qac_anneal.Qbsolv.default_params with Qac_anneal.Qbsolv.seed = 1 });
  row "(SA samples many distinct colorings per batch; qbsolv returns one polished
";
  row " solution; tabu sits between — matching their roles in the D-Wave stack)
"

let ext6 () =
  header "ext6" "Extension — simulated quantum annealing (Trotterized) vs SA";
  row "(section 2: the compiled Hamiltonians also target Hitachi's simulated\n";
  row " quantum annealer; we compare ground-state hit rates at a similar sweep\n";
  row " budget on compiled circsat and random spin glasses)\n\n";
  let t = P.compile circsat_src in
  let statements = t.P.statements @ [ Qac_qmasm.Ast.Pin [ ("y", true) ] ] in
  let program = Qac_qmasm.Assemble.assemble ~options:P.default_options statements in
  let pinned = program.Qac_qmasm.Assemble.problem in
  let ground p = (Exact.solve ~limit:0 p).Exact.ground_energy in
  let hit_rate response target =
    let hits =
      List.fold_left
        (fun acc s ->
           if Float.abs (s.Sampler.energy -. target) < 1e-6 then
             acc + s.Sampler.num_occurrences
           else acc)
        0 response.Sampler.samples
    in
    (hits, response.Sampler.num_reads)
  in
  row "%-28s %16s %16s\n" "problem" "SA hits" "SQA hits";
  let compare_problem name p =
    let target = ground p in
    let sa_r =
      Qac_anneal.Sa.sample
        ~params:{ Qac_anneal.Sa.default_params with Qac_anneal.Sa.num_reads = 50; num_sweeps = 150 }
        p
    in
    let sqa_r =
      Qac_anneal.Sqa.sample
        ~params:{ Qac_anneal.Sqa.default_params with
                  Qac_anneal.Sqa.num_reads = 50; num_sweeps = 150; num_slices = 10 }
        p
    in
    let sa_h, sa_n = hit_rate sa_r target in
    let sqa_h, sqa_n = hit_rate sqa_r target in
    row "%-28s %11d/%-4d %11d/%-4d\n" name sa_h sa_n sqa_h sqa_n
  in
  compare_problem "circsat (y pinned)" pinned;
  List.iter
    (fun seed ->
       let st = Random.State.make [| seed |] in
       let n = 16 in
       let h = Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0) in
       let j = ref [] in
       for i = 0 to n - 1 do
         for k = i + 1 to n - 1 do
           if Random.State.float st 1.0 < 0.4 then
             j := ((i, k), Random.State.float st 2.0 -. 1.0) :: !j
         done
       done;
       compare_problem
         (Printf.sprintf "random glass (16 vars, #%d)" seed)
         (Problem.create ~num_vars:n ~h ~j:!j ()))
    [ 1; 2; 3 ];
  row "(SQA does ~num_slices times the work per sweep, buying a reliably higher\n";
  row " per-read hit rate; both sample stochastically like the hardware)\n"

let ext7 () =
  header "ext7" "Extension — future topologies: Chimera vs wider shores vs Pegasus";
  row "(the paper's conclusion: future annealers bring 'increased qubit counts,\n";
  row " greater connectivity'; richer topologies need fewer/shorter chains)\n\n";
  let k4 =
    Problem.create ~num_vars:4 ~h:(Array.make 4 0.1)
      ~j:[ ((0, 1), 1.0); ((0, 2), 1.0); ((0, 3), 1.0); ((1, 2), 1.0); ((1, 3), 1.0);
           ((2, 3), 1.0) ]
      ()
  in
  let k8 =
    let j = ref [] in
    for i = 0 to 7 do
      for k = i + 1 to 7 do
        j := ((i, k), if (i + k) mod 2 = 0 then 1.0 else -1.0) :: !j
      done
    done;
    Problem.create ~num_vars:8 ~h:(Array.make 8 0.1) ~j:!j ()
  in
  let topologies =
    [ ("chimera C4 (shore 4, deg<=6)", Chimera.create 4);
      ("chimera C4 (shore 6, deg<=8)", Chimera.create ~shore:6 4);
      ("pegasus P3 (deg<=15)", Qac_chimera.Pegasus.create 3) ]
  in
  row "%-30s %14s %14s %14s\n" "topology" "K4 qubits" "K8 qubits" "K8 max chain";
  List.iter
    (fun (name, graph) ->
       let stat p =
         match
           Cmr.find
             ~params:{ Cmr.default_params with Cmr.seed = 1; tries = 16; max_passes = 30 }
             graph p
         with
         | Some e ->
           ( string_of_int (Embedding.num_physical_qubits e),
             string_of_int (Embedding.max_chain_length e) )
         | None -> ("fail", "-")
       in
       let k4q, _ = stat k4 in
       let k8q, k8c = stat k8 in
       row "%-30s %14s %14s %14s\n" name k4q k8q k8c)
    topologies;
  (* Dense graphs are the known weak spot of path-based heuristics; the
     deterministic clique template handles them on Chimera. *)
  (match Qac_embed.Clique.find (Chimera.create 4) k8 with
   | Some e ->
     row "%-30s %14s %14d %14d\n" "chimera C4 + clique template" "4*"
       (Embedding.num_physical_qubits e) (Embedding.max_chain_length e)
   | None -> row "clique template failed (unexpected)\n");
  row "(Pegasus hosts K4 natively — its odd couplers create triangles, which no\n";
  row " bipartite Chimera graph contains; cliques and AOI-style cells embed with\n";
  row " visibly shorter chains as connectivity grows)\n"

let ext8 () =
  header "ext8" "Extension — time-to-solution (TTS) scaling on factoring";
  row "(the annealing-literature metric behind claims like section 6.2's: the\n";
  row " expected wall time to hit a ground state with 99%% confidence)\n\n";
  row "%-18s %12s %14s %16s\n" "multiplier" "reads hit" "p(success)" "TTS(99%) [s]";
  List.iter
    (fun w ->
       let src =
         Printf.sprintf
           "module mult (A, B, C); input [%d:0] A, B; output [%d:0] C; assign C = A * B; endmodule"
           (w - 1) ((2 * w) - 1)
       in
       let t = P.compile src in
       (* Pin a wide product with two nontrivial factors. *)
       let product = match w with 2 -> 6 | 3 -> 35 | _ -> 143 in
       let statements =
         t.P.statements
         @ [ Qac_qmasm.Ast.Pin
               (List.init (2 * w) (fun i ->
                    (Printf.sprintf "C[%d]" i, (product lsr i) land 1 = 1))) ]
       in
       let program = Qac_qmasm.Assemble.assemble ~options:P.default_options statements in
       let problem = program.Qac_qmasm.Assemble.problem in
       let response =
         Qac_anneal.Sa.sample
           ~params:{ Qac_anneal.Sa.default_params with
                     Qac_anneal.Sa.num_reads = 200; num_sweeps = 400 * w; seed = 5 }
           problem
       in
       let target = (Sampler.best response).Sampler.energy in
       (* Use the best sampled energy as the target: for the sizes here SA
          does reach the true ground (cross-checked in E12). *)
       let p_succ = Sampler.success_probability response ~target_energy:target in
       let tts = Sampler.time_to_solution response ~target_energy:target in
       row "%-18s %9.0f/200 %14.3f %16s\n"
         (Printf.sprintf "%dx%d bits (C=%d)" w w product)
         (p_succ *. 200.0) p_succ
         (match tts with Some t -> Printf.sprintf "%.4f" t | None -> "-"))
    [ 2; 3; 4 ];
  row "(TTS grows steeply with multiplier width even at these toy sizes --\n";
  row " the classical-substrate cost the paper's D-Wave offloads to hardware)\n"

let ext9 () =
  header "ext9" "Extension — qbsolv splitting a problem onto a chip-sized annealer";
  row "(section 4.3: qmasm can run 'indirectly through qbsolv, which can split\n";
  row " large problems into sub-problems that fit on the D-Wave hardware'.\n";
  row " Here a 200-variable spin glass is decomposed into <=24-variable chunks,\n";
  row " each minor-embedded into a tiny C4 'chip' (128 qubits) and annealed.)\n\n";
  let n = 200 in
  let st = Random.State.make [| 77 |] in
  let j = ref [] in
  for i = 0 to n - 1 do
    for k = i + 1 to min (n - 1) (i + 6) do
      if Random.State.int st 3 = 0 then
        j := ((i, k), Random.State.float st 2.0 -. 1.0) :: !j
    done
  done;
  let p =
    Problem.create ~num_vars:n
      ~h:(Array.init n (fun _ -> Random.State.float st 1.0 -. 0.5))
      ~j:!j ()
  in
  let chip = Chimera.create 4 in
  let embed_failures = ref 0 in
  let hardware_sub_solver sub =
    let params = { Cmr.default_params with Cmr.tries = 2; max_passes = 10; seed = 3 } in
    match Cmr.find ~params chip sub with
    | None ->
      incr embed_failures;
      Qac_anneal.Exact_sampler.sample sub
    | Some e ->
      let physical = Embedding.apply chip sub e in
      let compacted, old_of_new = Embedding.compact physical in
      let response =
        Qac_anneal.Sa.sample
          ~params:{ Qac_anneal.Sa.default_params with
                    Qac_anneal.Sa.num_reads = 12; num_sweeps = 250; seed = 9 }
          compacted
      in
      let reads =
        List.map
          (fun s ->
             let full = Array.make physical.Problem.num_vars 1 in
             Array.iteri (fun k old -> full.(old) <- s.Qac_anneal.Sampler.spins.(k)) old_of_new;
             (Embedding.unembed e full).Embedding.logical)
          response.Qac_anneal.Sampler.samples
      in
      Qac_anneal.Sampler.response_of_reads sub reads
  in
  let t0 = Unix.gettimeofday () in
  let via_chip =
    Qac_anneal.Qbsolv.sample
      ~params:{ Qac_anneal.Qbsolv.default_params with
                Qac_anneal.Qbsolv.sub_size = 24; num_repeats = 8; max_rounds = 60 }
      ~sub_solver:hardware_sub_solver p
  in
  let chip_time = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let direct =
    Qac_anneal.Sa.sample
      ~params:{ Qac_anneal.Sa.default_params with
                Qac_anneal.Sa.num_reads = 30; num_sweeps = 600; seed = 4 }
      p
  in
  let direct_time = Unix.gettimeofday () -. t0 in
  row "%-44s %12s %10s\n" "method" "energy" "time";
  row "%-44s %12.2f %9.1fs\n" "qbsolv over embedded C4 sub-anneals"
    (Sampler.best via_chip).Sampler.energy chip_time;
  row "%-44s %12.2f %9.1fs\n" "direct SA on the full logical problem"
    (Sampler.best direct).Sampler.energy direct_time;
  row "(embedding fallbacks to exact: %d; the decomposition attacks a problem\n" !embed_failures;
  row " ~1.6x larger than the chip's qubit count, which is qbsolv's purpose)\n"

let all : (string * string * (unit -> unit)) list =
  [ ("e1", "Figure 2: end-to-end transformation", e1);
    ("e2", "Figure 3: circuit and EDIF netlist", e2);
    ("e3", "Table 1: two-ended net", e3);
    ("e4", "Table 2: AND-gate inequality system", e4);
    ("e5", "Tables 3-4: XOR ancilla", e5);
    ("e6", "Table 5: standard-cell library", e6);
    ("e7", "Listings 1/2/4: QMASM programs", e7);
    ("e8", "Section 4.3.6: argument passing", e8);
    ("e9", "Section 4.4: minor embedding", e9);
    ("e10", "Listing 3: sequential unrolling", e10);
    ("e11", "Listing 5: circuit satisfiability", e11);
    ("e12", "Listing 6: factoring", e12);
    ("e13", "Listing 7: map coloring", e13);
    ("e14", "Section 6.1: static properties", fun () -> e14 ());
    ("e15", "Section 6.2: execution time", e15);
    ("ext1", "Ablation: tech mapping", ext1);
    ("ext2", "Ablation: chain merging", ext2);
    ("ext3", "Extension: coefficient precision", ext3);
    ("ext4", "Extension: broken qubits", ext4);
    ("ext5", "Extension: solver comparison", ext5);
    ("ext6", "Extension: simulated quantum annealing", ext6);
    ("ext7", "Extension: future topologies (Pegasus)", ext7);
    ("ext8", "Extension: time-to-solution scaling", ext8);
    ("ext9", "Extension: qbsolv onto a chip-sized annealer", ext9) ]
