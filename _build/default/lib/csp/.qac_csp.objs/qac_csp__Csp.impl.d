lib/csp/csp.ml: Array Format List Option Printf Queue Random
