lib/csp/mzn.mli: Csp
