lib/csp/csp.mli:
