lib/csp/mzn.ml: Csp Format Hashtbl List Qac_qmasm String
