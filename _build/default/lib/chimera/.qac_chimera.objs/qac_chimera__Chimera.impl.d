lib/chimera/chimera.ml: Printf Topology
