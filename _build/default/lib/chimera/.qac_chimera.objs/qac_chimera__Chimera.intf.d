lib/chimera/chimera.mli: Topology
