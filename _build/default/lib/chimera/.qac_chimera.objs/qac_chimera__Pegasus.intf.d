lib/chimera/pegasus.mli: Topology
