lib/chimera/topology.ml: Array List Queue
