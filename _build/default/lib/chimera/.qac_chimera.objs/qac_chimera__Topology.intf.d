lib/chimera/topology.mli:
