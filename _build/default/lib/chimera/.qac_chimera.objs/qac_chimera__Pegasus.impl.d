lib/chimera/pegasus.ml: Array List Printf Queue Topology
