(** Generic hardware topologies.

    A topology is a fixed undirected graph over qubit indices with a
    per-qubit working mask.  {!Chimera} (the D-Wave 2000Q layout the paper
    targets) and {!Pegasus} (the "greater connectivity" future generation
    the paper's conclusion anticipates) both produce values of this type, so
    the embedder and the pipeline are topology-agnostic. *)

type t = {
  name : string;  (** e.g. ["chimera-16x16x4"] *)
  params : (string * int) list;  (** named structural parameters, e.g. [("m", 16)] *)
  adjacency : int list array;  (** working neighbors per working qubit *)
  working : bool array;
}

(** [create ~name ~params ~num_qubits ~edges ~broken] builds a topology from
    an edge list; broken qubits lose all their edges. *)
val create :
  name:string ->
  params:(string * int) list ->
  num_qubits:int ->
  edges:(int * int) list ->
  ?broken:int list ->
  unit ->
  t

val num_qubits : t -> int
val num_working_qubits : t -> int
val is_working : t -> int -> bool
val neighbors : t -> int -> int list
val adjacent : t -> int -> int -> bool
val edges : t -> (int * int) list
val num_edges : t -> int
val degree : t -> int -> int
val max_degree : t -> int

val param : t -> string -> int
(** Raises [Not_found] for unknown parameters. *)

(** [is_bipartite t] — Chimera graphs are bipartite (no odd cycles,
    section 4.4); Pegasus is not (its odd couplers create triangles). *)
val is_bipartite : t -> bool
