type t = {
  name : string;
  params : (string * int) list;
  adjacency : int list array;
  working : bool array;
}

let create ~name ~params ~num_qubits ~edges ?(broken = []) () =
  if num_qubits < 0 then invalid_arg "Topology.create: negative qubit count";
  let working = Array.make num_qubits true in
  List.iter
    (fun q ->
       if q < 0 || q >= num_qubits then
         invalid_arg "Topology.create: broken qubit out of range";
       working.(q) <- false)
    broken;
  let adjacency = Array.make num_qubits [] in
  List.iter
    (fun (a, b) ->
       if a < 0 || a >= num_qubits || b < 0 || b >= num_qubits then
         invalid_arg "Topology.create: edge endpoint out of range";
       if a = b then invalid_arg "Topology.create: self-loop";
       if working.(a) && working.(b) then begin
         if not (List.mem b adjacency.(a)) then begin
           adjacency.(a) <- b :: adjacency.(a);
           adjacency.(b) <- a :: adjacency.(b)
         end
       end)
    edges;
  { name; params; adjacency; working }

let num_qubits t = Array.length t.working

let num_working_qubits t =
  Array.fold_left (fun acc w -> if w then acc + 1 else acc) 0 t.working

let is_working t q = q >= 0 && q < num_qubits t && t.working.(q)

let neighbors t q =
  if q < 0 || q >= num_qubits t then invalid_arg "Topology.neighbors: out of range";
  t.adjacency.(q)

let adjacent t a b = List.mem b (neighbors t a)

let edges t =
  let acc = ref [] in
  Array.iteri
    (fun q ns -> List.iter (fun p -> if q < p then acc := (q, p) :: !acc) ns)
    t.adjacency;
  List.rev !acc

let num_edges t = List.length (edges t)

let degree t q = List.length (neighbors t q)

let max_degree t =
  let best = ref 0 in
  for q = 0 to num_qubits t - 1 do
    best := max !best (degree t q)
  done;
  !best

let param t name = List.assoc name t.params

let is_bipartite t =
  let color = Array.make (num_qubits t) (-1) in
  let ok = ref true in
  for start = 0 to num_qubits t - 1 do
    if color.(start) < 0 && t.working.(start) then begin
      color.(start) <- 0;
      let queue = Queue.create () in
      Queue.add start queue;
      while not (Queue.is_empty queue) do
        let q = Queue.pop queue in
        List.iter
          (fun n ->
             if color.(n) < 0 then begin
               color.(n) <- 1 - color.(q);
               Queue.add n queue
             end
             else if color.(n) = color.(q) then ok := false)
          t.adjacency.(q)
      done
    end
  done;
  !ok
