lib/sexp/sexp.ml: Buffer Format List String
