lib/sexp/sexp.mli: Format
