type t =
  | Atom of string
  | List of t list

exception Parse_error of string

let atom s = Atom s
let list l = List l

let parse_error fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* --- Reader ----------------------------------------------------------- *)

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None
let advance c = c.pos <- c.pos + 1

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let rec skip_space c =
  match peek c with
  | Some ch when is_space ch ->
    advance c;
    skip_space c
  | Some ';' ->
    (* Line comments are not EDIF but are convenient in tests. *)
    let rec to_eol () =
      match peek c with
      | Some '\n' | None -> ()
      | Some _ ->
        advance c;
        to_eol ()
    in
    to_eol ();
    skip_space c
  | Some _ | None -> ()

let read_quoted c =
  let buf = Buffer.create 16 in
  advance c;
  (* opening quote *)
  let rec loop () =
    match peek c with
    | None -> parse_error "unterminated string at offset %d" c.pos
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
       | None -> parse_error "dangling escape at end of input"
       | Some ch ->
         Buffer.add_char buf ch;
         advance c;
         loop ())
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let read_bare c =
  let start = c.pos in
  let rec loop () =
    match peek c with
    | Some ch when (not (is_space ch)) && ch <> '(' && ch <> ')' && ch <> '"' ->
      advance c;
      loop ()
    | Some _ | None -> ()
  in
  loop ();
  String.sub c.src start (c.pos - start)

let rec read_sexp c =
  skip_space c;
  match peek c with
  | None -> parse_error "unexpected end of input"
  | Some '(' ->
    advance c;
    let rec items acc =
      skip_space c;
      match peek c with
      | None -> parse_error "unterminated list"
      | Some ')' ->
        advance c;
        List (List.rev acc)
      | Some _ -> items (read_sexp c :: acc)
    in
    items []
  | Some ')' -> parse_error "unexpected ')' at offset %d" c.pos
  | Some '"' -> Atom (read_quoted c)
  | Some _ ->
    let s = read_bare c in
    if s = "" then parse_error "empty token at offset %d" c.pos else Atom s

let parse_string src =
  let c = { src; pos = 0 } in
  let s = read_sexp c in
  skip_space c;
  (match peek c with
   | Some _ -> parse_error "trailing garbage at offset %d" c.pos
   | None -> ());
  s

let parse_many src =
  let c = { src; pos = 0 } in
  let rec loop acc =
    skip_space c;
    match peek c with
    | None -> List.rev acc
    | Some _ -> loop (read_sexp c :: acc)
  in
  loop []

(* --- Printer ---------------------------------------------------------- *)

let needs_quoting s =
  s = "" || String.exists (fun ch -> is_space ch || ch = '(' || ch = ')' || ch = '"') s

let atom_to_string s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun ch ->
         if ch = '"' || ch = '\\' then Buffer.add_char buf '\\';
         Buffer.add_char buf ch)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let rec to_string_compact = function
  | Atom s -> atom_to_string s
  | List items -> "(" ^ String.concat " " (List.map to_string_compact items) ^ ")"

let rec width = function
  | Atom s -> String.length s
  | List items -> 2 + List.fold_left (fun acc s -> acc + 1 + width s) 0 items

let to_string sexp =
  let buf = Buffer.create 256 in
  let rec go indent s =
    match s with
    | Atom _ -> Buffer.add_string buf (to_string_compact s)
    | List _ when width s <= 72 -> Buffer.add_string buf (to_string_compact s)
    | List [] -> Buffer.add_string buf "()"
    | List (hd :: tl) ->
      Buffer.add_char buf '(';
      go (indent + 2) hd;
      List.iter
        (fun item ->
           Buffer.add_char buf '\n';
           Buffer.add_string buf (String.make (indent + 2) ' ');
           go (indent + 2) item)
        tl;
      Buffer.add_char buf ')'
  in
  go 0 sexp;
  Buffer.contents buf

let pp fmt s = Format.pp_print_string fmt (to_string s)

let rec equal a b =
  match a, b with
  | Atom x, Atom y -> String.equal x y
  | List xs, List ys -> (try List.for_all2 equal xs ys with Invalid_argument _ -> false)
  | Atom _, List _ | List _, Atom _ -> false

(* --- Accessors -------------------------------------------------------- *)

let tag = function
  | List (Atom hd :: _) -> Some hd
  | List _ | Atom _ -> None

let lowercase_equal a b = String.equal (String.lowercase_ascii a) (String.lowercase_ascii b)

let find_all ~tag:wanted = function
  | Atom _ -> []
  | List items ->
    List.filter
      (fun item ->
         match tag item with
         | Some hd -> lowercase_equal hd wanted
         | None -> false)
      items

let find ~tag sexp =
  match find_all ~tag sexp with
  | [] -> None
  | hd :: _ -> Some hd

let atom_exn = function
  | Atom s -> s
  | List _ as s -> parse_error "expected atom, got %s" (to_string_compact s)
