(** S-expressions, as used by the EDIF netlist format (section 4.2 of the
    paper).  An EDIF netlist is a single large s-expression; this module
    provides the reader and printer shared by [Qac_edif]. *)

type t =
  | Atom of string  (** a bare token or a ["quoted string"] *)
  | List of t list

val atom : string -> t
val list : t list -> t

(** [parse_string s] parses exactly one s-expression from [s], ignoring
    surrounding whitespace.  Raises [Parse_error] on malformed input or
    trailing garbage. *)
val parse_string : string -> t

(** [parse_many s] parses zero or more s-expressions from [s]. *)
val parse_many : string -> t list

exception Parse_error of string

(** Pretty-print with indentation, EDIF-style: short lists on one line,
    long lists broken with two-space indents. *)
val to_string : t -> string

(** Compact single-line rendering. *)
val to_string_compact : t -> string

val pp : Format.formatter -> t -> unit

(** Structural equality (atoms compared case-sensitively). *)
val equal : t -> t -> bool

(** Accessors used when walking EDIF trees. *)

(** [tag sexp] is the head atom of a list, if any. *)
val tag : t -> string option

(** [find_all ~tag sexp] returns the immediate children of [sexp] (a list)
    whose head atom equals [tag], case-insensitively (EDIF keywords are
    case-insensitive). *)
val find_all : tag:string -> t -> t list

(** [find ~tag sexp] is the first child found by [find_all], if any. *)
val find : tag:string -> t -> t option

(** [atom_exn sexp] extracts the string of an [Atom], failing otherwise. *)
val atom_exn : t -> string
