(** Generation of [stdcell.qmasm] — the standard-cell library file that
    edif2qmasm-style output [!include]s (section 4.3.2, Listing 2).

    Every Table 5 cell becomes a QMASM macro whose body lists the cell's
    h and J coefficients over its pin names (ancillas as [$a], [$b]), with an
    [!assert] stating the cell's logic for post-solution checking. *)

val contents : unit -> string
(** The full library text (computed once). *)

val macro_of_cell : Cells.t -> string
(** One cell's [!begin_macro ... !end_macro] block. *)

val line_count : unit -> int
(** Statement-bearing lines, for the section 6.1 metrics (the paper reports
    232 lines for its stdcell.qmasm). *)
