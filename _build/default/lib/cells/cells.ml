open Qac_ising

type t = {
  name : string;
  inputs : string list;
  output : string;
  num_ancillas : int;
  logic : bool array -> bool;
  hamiltonian : Problem.t;
  is_flip_flop : bool;
}

let third = 1.0 /. 3.0
let twelfth = 1.0 /. 12.0

let make name ~inputs ~logic ~ancillas ~h ~j =
  let num_vars = List.length inputs + 1 + ancillas in
  if Array.length h <> num_vars then invalid_arg (name ^ ": h length");
  { name;
    inputs;
    output = "Y";
    num_ancillas = ancillas;
    logic;
    hamiltonian = Problem.create ~num_vars ~h ~j ();
    is_flip_flop = false }

(* Table 5, transcribed with variable order [inputs..., Y, ancillas...]. *)

let not_ =
  make "NOT" ~inputs:[ "A" ] ~ancillas:0
    ~logic:(fun v -> not v.(0))
    ~h:[| 0.0; 0.0 |]
    ~j:[ ((0, 1), 1.0) ]

let and_ =
  make "AND" ~inputs:[ "A"; "B" ] ~ancillas:0
    ~logic:(fun v -> v.(0) && v.(1))
    ~h:[| -0.5; -0.5; 1.0 |]
    ~j:[ ((0, 1), 0.5); ((0, 2), -1.0); ((1, 2), -1.0) ]

let or_ =
  make "OR" ~inputs:[ "A"; "B" ] ~ancillas:0
    ~logic:(fun v -> v.(0) || v.(1))
    ~h:[| 0.5; 0.5; -1.0 |]
    ~j:[ ((0, 1), 0.5); ((0, 2), -1.0); ((1, 2), -1.0) ]

let nand =
  make "NAND" ~inputs:[ "A"; "B" ] ~ancillas:0
    ~logic:(fun v -> not (v.(0) && v.(1)))
    ~h:[| -0.5; -0.5; -1.0 |]
    ~j:[ ((0, 1), 0.5); ((0, 2), 1.0); ((1, 2), 1.0) ]

let nor =
  make "NOR" ~inputs:[ "A"; "B" ] ~ancillas:0
    ~logic:(fun v -> not (v.(0) || v.(1)))
    ~h:[| 0.5; 0.5; 1.0 |]
    ~j:[ ((0, 1), 0.5); ((0, 2), 1.0); ((1, 2), 1.0) ]

let xor =
  make "XOR" ~inputs:[ "A"; "B" ] ~ancillas:1
    ~logic:(fun v -> v.(0) <> v.(1))
    ~h:[| 0.5; -0.5; -0.5; 1.0 |]
    ~j:
      [ ((0, 1), -0.5);
        ((0, 2), -0.5);
        ((0, 3), 1.0);
        ((1, 2), 0.5);
        ((1, 3), -1.0);
        ((2, 3), -1.0) ]

let xnor =
  make "XNOR" ~inputs:[ "A"; "B" ] ~ancillas:1
    ~logic:(fun v -> v.(0) = v.(1))
    ~h:[| 0.5; -0.5; 0.5; 1.0 |]
    ~j:
      [ ((0, 1), -0.5);
        ((0, 2), 0.5);
        ((0, 3), 1.0);
        ((1, 2), -0.5);
        ((1, 3), -1.0);
        ((2, 3), 1.0) ]

(* Variable order A=0, B=1, S=2, Y=3, ancilla=4. *)
let mux =
  make "MUX" ~inputs:[ "A"; "B"; "S" ] ~ancillas:1
    ~logic:(fun v -> if v.(2) then v.(1) else v.(0))
    ~h:[| 0.25; -0.25; 0.5; 0.5; 1.0 |]
    ~j:
      [ ((0, 2), 0.25);
        ((1, 2), -0.25);
        ((2, 3), 0.5);
        ((2, 4), 1.0);
        ((0, 1), 0.5);
        ((0, 3), -0.5);
        ((0, 4), 0.5);
        ((1, 3), -1.0);
        ((1, 4), -0.5);
        ((3, 4), 1.0) ]

(* Variable order A=0, B=1, C=2, Y=3, ancilla=4. *)
let aoi3 =
  make "AOI3" ~inputs:[ "A"; "B"; "C" ] ~ancillas:1
    ~logic:(fun v -> not ((v.(0) && v.(1)) || v.(2)))
    ~h:[| 0.0; -.third; third; 2.0 *. third; -2.0 *. third |]
    ~j:
      [ ((0, 1), third);
        ((0, 2), third);
        ((0, 3), third);
        ((0, 4), third);
        ((1, 3), -.third);
        ((1, 4), 1.0);
        ((2, 3), 1.0);
        ((2, 4), -.third);
        ((3, 4), -1.0) ]

let oai3 =
  make "OAI3" ~inputs:[ "A"; "B"; "C" ] ~ancillas:1
    ~logic:(fun v -> not ((v.(0) || v.(1)) && v.(2)))
    ~h:[| -0.25; 0.0; -0.75; -0.5; -0.5 |]
    ~j:
      [ ((0, 2), 0.75);
        ((0, 3), 0.5);
        ((0, 4), 0.5);
        ((1, 3), 0.25);
        ((1, 4), -0.25);
        ((2, 3), 1.0);
        ((2, 4), 1.0);
        ((3, 4), 0.25) ]

(* Variable order A=0, B=1, C=2, D=3, Y=4, a=5, b=6. *)
let aoi4 =
  make "AOI4" ~inputs:[ "A"; "B"; "C"; "D" ] ~ancillas:2
    ~logic:(fun v -> not ((v.(0) && v.(1)) || (v.(2) && v.(3))))
    ~h:
      [| -1.0 /. 6.0;
         -1.0 /. 6.0;
         -5.0 *. twelfth;
         0.25;
         -5.0 *. twelfth;
         -7.0 *. twelfth;
         1.0 /. 6.0 |]
    ~j:
      [ ((0, 1), 1.0 /. 6.0);
        ((0, 2), third);
        ((0, 3), -.twelfth);
        ((0, 4), 0.5);
        ((0, 5), third);
        ((0, 6), -0.25);
        ((1, 2), third);
        ((1, 3), -.twelfth);
        ((1, 4), 0.5);
        ((1, 5), third);
        ((1, 6), -0.25);
        ((2, 3), -.third);
        ((2, 4), 11.0 *. twelfth);
        ((2, 5), 11.0 *. twelfth);
        ((2, 6), -5.0 *. twelfth);
        ((3, 4), -.third);
        ((3, 5), -7.0 *. twelfth);
        ((3, 6), third);
        ((4, 5), 1.0);
        ((4, 6), -2.0 *. third);
        ((5, 6), -7.0 *. twelfth) ]

let oai4 =
  make "OAI4" ~inputs:[ "A"; "B"; "C"; "D" ] ~ancillas:2
    ~logic:(fun v -> not ((v.(0) || v.(1)) && (v.(2) || v.(3))))
    ~h:[| 2.0 *. third; -.third; -.third; -.third; -.third; -1.0; -1.0 |]
    ~j:
      [ ((0, 1), -.third);
        ((0, 4), third);
        ((0, 5), -.third);
        ((0, 6), -1.0);
        ((1, 6), 2.0 *. third);
        ((2, 3), third);
        ((2, 4), 2.0 *. third);
        ((2, 5), 2.0 *. third);
        ((3, 4), 2.0 *. third);
        ((3, 5), 2.0 *. third);
        ((4, 5), 1.0);
        ((4, 6), -.third);
        ((5, 6), third) ]

let dff edge_name =
  { name = edge_name;
    inputs = [ "D" ];
    output = "Q";
    num_ancillas = 0;
    logic = (fun v -> v.(0));
    hamiltonian =
      Problem.create ~num_vars:2 ~h:[| 0.0; 0.0 |] ~j:[ ((0, 1), -1.0) ] ();
    is_flip_flop = true }

let dff_p = dff "DFF_P"
let dff_n = dff "DFF_N"

let all =
  [ not_; and_; or_; nand; nor; xor; xnor; mux; aoi3; oai3; aoi4; oai4; dff_p; dff_n ]

let find name =
  let wanted = String.uppercase_ascii name in
  List.find_opt (fun c -> String.uppercase_ascii c.name = wanted) all

let num_vars c = List.length c.inputs + 1 + c.num_ancillas

let pin_names c =
  let ancillas =
    List.init c.num_ancillas (fun i -> Printf.sprintf "$%c" (Char.chr (Char.code 'a' + i)))
  in
  c.inputs @ (c.output :: ancillas)

let truth_table c =
  Qac_cellgen.Truthtab.of_function ~num_inputs:(List.length c.inputs) c.logic

let verify c =
  let result = Exact.solve c.hamiltonian in
  let visible_width = List.length c.inputs + 1 in
  let table = truth_table c in
  let visible sigma =
    Qac_cellgen.Truthtab.row_of_spins (Array.sub sigma 0 visible_width)
  in
  let ground_visible =
    List.sort_uniq compare (List.map visible result.Exact.ground_states)
  in
  let expected = List.sort compare table.Qac_cellgen.Truthtab.valid in
  if ground_visible <> expected then
    Error
      (Printf.sprintf "%s: ground states realize %d visible rows, expected %d" c.name
         (List.length ground_visible) (List.length expected))
  else
    match result.Exact.first_excited_energy with
    | None -> Error (c.name ^ ": degenerate spectrum")
    | Some second ->
      let gap = second -. result.Exact.ground_energy in
      if gap <= 1e-9 then Error (c.name ^ ": zero gap") else Ok gap

let ground = Problem.create ~num_vars:1 ~h:[| 1.0 |] ~j:[] ()
let power = Problem.create ~num_vars:1 ~h:[| -1.0 |] ~j:[] ()
let wire = Problem.create ~num_vars:2 ~h:[| 0.0; 0.0 |] ~j:[ ((0, 1), -1.0) ] ()
