(** The standard-cell library of Table 5: every cell the ABC optimizer
    targets by default, expressed as a quadratic pseudo-Boolean function
    whose ground states are exactly the cell's valid input/output relations.

    Hamiltonian variable order is always [inputs..., output, ancillas...].
    Coefficients are the paper's (chosen to honor the hardware ranges while
    maximizing the valid/invalid gap). *)

type t = {
  name : string;  (** QMASM macro name, e.g. "AND" *)
  inputs : string list;  (** pin names in Hamiltonian order, e.g. ["A"; "B"] *)
  output : string;  (** "Y", or "Q" for flip-flops *)
  num_ancillas : int;
  logic : bool array -> bool;  (** combinational function of the inputs *)
  hamiltonian : Qac_ising.Problem.t;
  is_flip_flop : bool;
      (** DFF cells relate a D input at time [t] to a Q output at time
          [t+1]; their "logic" is the identity (section 4.3.3). *)
}

val not_ : t
val and_ : t
val or_ : t
val nand : t
val nor : t
val xor : t
val xnor : t

(** inputs [A; B; S]; [Y = if S then B else A] *)
val mux : t

(** [Y = not ((A and B) or C)] *)
val aoi3 : t

(** [Y = not ((A or B) and C)] *)
val oai3 : t

(** [Y = not ((A and B) or (C and D))] *)
val aoi4 : t

(** [Y = not ((A or B) and (C or D))] *)
val oai4 : t

val dff_p : t
val dff_n : t

val all : t list

val find : string -> t option
(** Lookup by name (case-insensitive). *)

val num_vars : t -> int
(** inputs + output + ancillas. *)

val pin_names : t -> string list
(** All pin names in Hamiltonian variable order, ancillas as ["$a"],
    ["$b"]. *)

val truth_table : t -> Qac_cellgen.Truthtab.t
(** Valid rows over [inputs @ [output]] (ancillas excluded). *)

(** [verify cell] exhaustively checks that the visible parts of the
    Hamiltonian's ground states are exactly the cell's truth table, that
    every valid row is realized, and that the gap to the first excited state
    is positive.  Returns the gap. *)
val verify : t -> (float, string) result

val ground : Qac_ising.Problem.t
(** [H_GND(s) = s], minimized at False (section 4.3.4). *)

val power : Qac_ising.Problem.t
(** [H_VCC(s) = -s], minimized at True. *)

val wire : Qac_ising.Problem.t
(** Two-variable chain [H(sA, sY) = -sA * sY] (Table 1). *)
