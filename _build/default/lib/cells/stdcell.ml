(** Generation of [stdcell.qmasm] — the standard-cell library file that
    edif2qmasm-style output [!include]s (section 4.3.2, Listing 2).

    Every Table 5 cell becomes a QMASM macro whose body lists the cell's
    h and J coefficients over its pin names (ancillas as [$a], [$b]), with an
    [!assert] stating the cell's logic for post-solution checking. *)

open Qac_ising

let float_str v =
  (* Render exactly: 0.5, -0.25, 0.333333333333 — enough digits to
     round-trip through the QMASM parser's float_of_string. *)
  let s = Printf.sprintf "%.12g" v in
  s

(* The assertion text for each cell, over 0/1-valued symbols. *)
let assertion_text (cell : Cells.t) =
  match cell.Cells.name with
  | "NOT" -> Some "Y = 1 - A"
  | "AND" -> Some "Y = A & B"
  | "OR" -> Some "Y = A | B"
  | "NAND" -> Some "Y = 1 - (A & B)"
  | "NOR" -> Some "Y = 1 - (A | B)"
  | "XOR" -> Some "Y = A ^ B"
  | "XNOR" -> Some "Y = 1 - (A ^ B)"
  | "MUX" -> Some "Y = S * B + (1 - S) * A"
  | "AOI3" -> Some "Y = 1 - ((A & B) | C)"
  | "OAI3" -> Some "Y = 1 - ((A | B) & C)"
  | "AOI4" -> Some "Y = 1 - ((A & B) | (C & D))"
  | "OAI4" -> Some "Y = 1 - ((A | B) & (C | D))"
  | "DFF_P" | "DFF_N" -> Some "Q = D"
  | _ -> None

let macro_of_cell (cell : Cells.t) =
  let pins = Array.of_list (Cells.pin_names cell) in
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "# %s: %d input(s), %d ancilla(s)\n" cell.Cells.name (List.length cell.Cells.inputs)
    cell.Cells.num_ancillas;
  add "!begin_macro %s\n" cell.Cells.name;
  (match assertion_text cell with
   | Some text -> add "  !assert %s\n" text
   | None -> ());
  let p = cell.Cells.hamiltonian in
  Array.iteri
    (fun v h -> if h <> 0.0 then add "  %s %s\n" pins.(v) (float_str h))
    p.Problem.h;
  Array.iter
    (fun ((i, j), v) -> add "  %s %s %s\n" pins.(i) pins.(j) (float_str v))
    p.Problem.couplers;
  add "!end_macro %s\n" cell.Cells.name;
  Buffer.contents buf

let text =
  lazy
    (let buf = Buffer.create 4096 in
     Buffer.add_string buf
       "# stdcell.qmasm --- standard-cell library (Table 5 of the paper)\n\
        # Cells are quadratic pseudo-Boolean penalty functions: each macro's\n\
        # Hamiltonian is minimized exactly on the cell's valid input/output rows.\n\n";
     List.iter
       (fun cell ->
          Buffer.add_string buf (macro_of_cell cell);
          Buffer.add_char buf '\n')
       Cells.all;
     Buffer.contents buf)

let contents () = Lazy.force text

(** Number of statement-bearing lines, for the section 6.1 metrics (the
    paper reports 232 lines for its stdcell.qmasm). *)
let line_count () =
  String.split_on_char '\n' (contents ())
  |> List.filter (fun line ->
      let line = match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      String.trim line <> "")
  |> List.length
