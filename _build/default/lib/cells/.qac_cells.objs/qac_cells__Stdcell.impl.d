lib/cells/stdcell.ml: Array Buffer Cells Lazy List Printf Problem Qac_ising String
