lib/cells/stdcell.mli: Cells
