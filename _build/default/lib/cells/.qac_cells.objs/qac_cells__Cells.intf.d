lib/cells/cells.mli: Qac_cellgen Qac_ising
