lib/cells/cells.ml: Array Char Exact List Printf Problem Qac_cellgen Qac_ising String
