lib/verilog/elab.ml: Ast Format Hashtbl List Option Printf
