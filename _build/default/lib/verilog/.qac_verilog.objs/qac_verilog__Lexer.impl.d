lib/verilog/lexer.ml: Char Format List String
