lib/verilog/eval.mli: Elab
