lib/verilog/eval.ml: Array Ast Elab Eval_positions Format Fun Hashtbl List
