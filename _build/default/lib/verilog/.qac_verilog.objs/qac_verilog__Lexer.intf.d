lib/verilog/lexer.mli:
