lib/verilog/synth.ml: Array Ast Elab Eval_positions Format Hashtbl Lazy List Parser Printf Qac_netlist
