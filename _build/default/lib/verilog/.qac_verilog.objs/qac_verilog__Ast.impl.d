lib/verilog/ast.ml: Format
