lib/verilog/synth.mli: Elab Qac_netlist
