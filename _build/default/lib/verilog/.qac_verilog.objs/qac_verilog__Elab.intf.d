lib/verilog/elab.mli: Ast
