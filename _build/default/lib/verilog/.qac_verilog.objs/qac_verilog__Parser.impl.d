lib/verilog/parser.ml: Array Ast Format Lexer List Printf
