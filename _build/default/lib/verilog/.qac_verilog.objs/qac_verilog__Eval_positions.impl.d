lib/verilog/eval_positions.ml: Ast Elab Format List
