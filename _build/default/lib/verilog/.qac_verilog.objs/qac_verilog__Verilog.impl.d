lib/verilog/verilog.ml: Array Elab Eval Parser Synth
