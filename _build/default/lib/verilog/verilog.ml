(** Facade: one-call helpers over the full frontend
    (parse -> elaborate -> interpret / synthesize). *)

let parse = Parser.parse_design

let elaborate ?top src = Elab.elaborate ?top (parse src)

let interpreter ?top src = Eval.create (elaborate ?top src)

let compile = Synth.compile

(** [port_bits m name value] renders an integer as the bool vector (LSB
    first) of port [name] — the bridge between interpreter-style integer
    values and netlist-style bit vectors. *)
let port_bits (m : Elab.t) name value =
  let width = Elab.net_width m name in
  Array.init width (fun i -> (value lsr i) land 1 = 1)

let int_of_bits bits =
  let v = ref 0 in
  Array.iteri (fun i b -> if b then v := !v lor (1 lsl i)) bits;
  !v
