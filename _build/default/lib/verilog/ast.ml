(** Abstract syntax for the synthesizable Verilog subset the compiler
    accepts (section 4.1).  The subset covers what the paper's workloads
    need and more: multi-bit arithmetic/relational/bitwise operators,
    conditionals, concatenation/replication, module instantiation,
    parameters, constant-bound [for] loops, and [always] blocks (both
    clocked and combinational).  Unsupported by design: floating point,
    unbounded loops, recursion, memories, delays, and four-state logic. *)

type unop =
  | Bit_not  (** [~] *)
  | Log_not  (** [!] *)
  | Negate  (** [-] *)
  | Reduce_and  (** [&] *)
  | Reduce_or  (** [|] *)
  | Reduce_xor  (** [^] *)
  | Reduce_nand
  | Reduce_nor
  | Reduce_xnor

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Bit_and
  | Bit_or
  | Bit_xor
  | Bit_xnor
  | Log_and
  | Log_or
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Shl
  | Shr

type expr =
  | Number of { width : int option; value : int }
      (** [4'b1010] has [width = Some 4]; a bare [10] has [width = None]
          (self-determines to 32 bits, as in the standard) *)
  | Ident of string
  | Index of string * expr  (** [x[i]] *)
  | Select of string * expr * expr  (** [x[msb:lsb]], bounds constant *)
  | Concat of expr list  (** [{a, b, c}], first operand is most significant *)
  | Replicate of expr * expr  (** [{n{x}}], [n] constant *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Ternary of expr * expr * expr

type lvalue =
  | Lident of string
  | Lindex of string * expr
  | Lselect of string * expr * expr
  | Lconcat of lvalue list

type statement =
  | Blocking of lvalue * expr  (** [x = e] *)
  | Nonblocking of lvalue * expr  (** [x <= e] *)
  | If of expr * statement list * statement list
  | Case of expr * (expr list * statement list) list * statement list option
      (** arms, then optional default *)
  | For of string * expr * expr * string * expr * statement list
      (** [for (i = e0; cond; i = e_step) body]; bounds must elaborate to
          constants *)

type edge =
  | Posedge of string
  | Negedge of string
  | Star  (** [always @*] or [always @(...)] sensitivity treated as comb *)

type direction =
  | Input
  | Output

type net_kind =
  | Wire
  | Reg
  | Integer  (** loop variables *)
  | Genvar  (** generate-loop variables; exist only at elaboration time *)

type decl = {
  decl_name : string;
  dir : direction option;
  kind : net_kind option;  (** [None] when only a direction was given *)
  range : (expr * expr) option;  (** [[msb:lsb]], constant expressions *)
}

type connection =
  | Positional of expr
  | Named of string * expr option  (** [.p(e)]; [None] for unconnected [.p()] *)

type item =
  | Decl of decl
  | Parameter of string * expr
  | Assign of lvalue * expr
  | Always of edge * statement list
  | Instance of {
      module_name : string;
      instance_name : string;
      parameters : connection list;  (** [#(...)] overrides *)
      connections : connection list;
    }
  | Genfor of {
      genvar : string;
      init : expr;
      cond : expr;
      step : expr;  (** the loop must step its own genvar *)
      label : string option;  (** [begin : label] block name *)
      body : item list;  (** assigns, instances, always blocks, nested genfors *)
    }

type module_decl = {
  module_name : string;
  ports : string list;
  items : item list;
}

type design = module_decl list

(* Pretty-printing, used in error messages and golden tests. *)

let unop_symbol = function
  | Bit_not -> "~"
  | Log_not -> "!"
  | Negate -> "-"
  | Reduce_and -> "&"
  | Reduce_or -> "|"
  | Reduce_xor -> "^"
  | Reduce_nand -> "~&"
  | Reduce_nor -> "~|"
  | Reduce_xnor -> "~^"

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Bit_and -> "&"
  | Bit_or -> "|"
  | Bit_xor -> "^"
  | Bit_xnor -> "~^"
  | Log_and -> "&&"
  | Log_or -> "||"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Shl -> "<<"
  | Shr -> ">>"

let rec pp_expr fmt = function
  | Number { width = None; value } -> Format.fprintf fmt "%d" value
  | Number { width = Some w; value } -> Format.fprintf fmt "%d'd%d" w value
  | Ident name -> Format.pp_print_string fmt name
  | Index (name, e) -> Format.fprintf fmt "%s[%a]" name pp_expr e
  | Select (name, msb, lsb) -> Format.fprintf fmt "%s[%a:%a]" name pp_expr msb pp_expr lsb
  | Concat exprs ->
    Format.fprintf fmt "{%a}"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp_expr)
      exprs
  | Replicate (n, e) -> Format.fprintf fmt "{%a{%a}}" pp_expr n pp_expr e
  | Unop (op, e) -> Format.fprintf fmt "(%s%a)" (unop_symbol op) pp_expr e
  | Binop (op, a, b) ->
    Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_symbol op) pp_expr b
  | Ternary (c, t, e) -> Format.fprintf fmt "(%a ? %a : %a)" pp_expr c pp_expr t pp_expr e

let expr_to_string e = Format.asprintf "%a" pp_expr e
