(** Exhaustive enumeration behind the sampler interface, for problems up to
    [Qac_ising.Exact.max_vars] variables.  The response contains every
    ground state exactly once. *)

val sample : Qac_ising.Problem.t -> Sampler.response
