(** Greedy single-spin descent: repeatedly flip any spin that lowers the
    energy until none does.  Used standalone and as post-processing for
    stochastic samplers (qmasm-style sample polishing). *)

open Qac_ising

(** [descend p spins] mutates [spins] to a local minimum; returns the number
    of flips performed. *)
let descend (p : Problem.t) spins =
  let n = p.Problem.num_vars in
  let flips = ref 0 in
  let improved = ref true in
  while !improved do
    improved := false;
    for i = 0 to n - 1 do
      if Problem.energy_delta p spins i < -1e-12 then begin
        spins.(i) <- -spins.(i);
        incr flips;
        improved := true
      end
    done
  done;
  !flips

(** Non-mutating variant. *)
let local_minimum p spins =
  let copy = Array.copy spins in
  ignore (descend p copy);
  copy
