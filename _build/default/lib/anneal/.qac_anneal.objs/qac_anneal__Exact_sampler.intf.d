lib/anneal/exact_sampler.mli: Qac_ising Sampler
