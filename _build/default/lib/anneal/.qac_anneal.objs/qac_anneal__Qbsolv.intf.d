lib/anneal/qbsolv.mli: Qac_ising Sampler
