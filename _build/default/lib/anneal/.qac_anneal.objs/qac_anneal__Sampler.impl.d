lib/anneal/sampler.ml: Array Float Format Hashtbl List Problem Qac_ising String
