lib/anneal/sqa.ml: Array Float Greedy List Problem Qac_ising Rng Sampler Unix
