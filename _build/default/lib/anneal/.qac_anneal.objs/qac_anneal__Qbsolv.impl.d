lib/anneal/qbsolv.ml: Array Exact Float Greedy Hashtbl List Problem Qac_ising Rng Sampler Unix
