lib/anneal/sqa.mli: Qac_ising Sampler
