lib/anneal/rng.ml: Array Int64
