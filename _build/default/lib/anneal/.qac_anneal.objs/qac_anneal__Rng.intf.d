lib/anneal/rng.mli: Qac_ising
