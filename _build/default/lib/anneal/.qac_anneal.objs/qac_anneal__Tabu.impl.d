lib/anneal/tabu.ml: Array List Problem Qac_ising Rng Sampler Unix
