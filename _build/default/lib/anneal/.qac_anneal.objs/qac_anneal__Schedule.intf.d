lib/anneal/schedule.mli: Qac_ising
