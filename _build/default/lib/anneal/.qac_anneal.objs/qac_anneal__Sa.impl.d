lib/anneal/sa.ml: Array Greedy List Problem Qac_ising Rng Sampler Schedule Unix
