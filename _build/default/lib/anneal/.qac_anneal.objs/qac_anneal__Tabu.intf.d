lib/anneal/tabu.mli: Qac_ising Sampler
