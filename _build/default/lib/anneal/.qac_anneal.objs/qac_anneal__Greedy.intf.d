lib/anneal/greedy.mli: Qac_ising
