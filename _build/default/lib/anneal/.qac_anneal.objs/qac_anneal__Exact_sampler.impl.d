lib/anneal/exact_sampler.ml: Exact Problem Qac_ising Sampler Unix
