lib/anneal/greedy.ml: Array Problem Qac_ising
