lib/anneal/sampler.mli: Format Qac_ising
