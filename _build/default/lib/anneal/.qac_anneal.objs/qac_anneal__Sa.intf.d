lib/anneal/sa.mli: Qac_ising Rng Sampler Schedule
