lib/anneal/schedule.ml: Array Float List Option Problem Qac_ising
