(** Annealing schedules: inverse-temperature (beta) ramps.

    The default range is derived from the problem, in the manner of D-Wave's
    classical neal sampler: the hot end makes even the stiffest spin flip
    with probability ~1/2; the cold end makes the weakest coefficient
    significant. *)

type t = {
  beta_min : float;
  beta_max : float;
  kind : [ `Geometric | `Linear ];
}

val default_range : Qac_ising.Problem.t -> float * float
(** [(beta_min, beta_max)] derived from the problem's field extremes. *)

val create :
  ?kind:[ `Geometric | `Linear ] ->
  ?beta_min:float ->
  ?beta_max:float ->
  Qac_ising.Problem.t ->
  t
(** Defaults: geometric ramp over {!default_range}. *)

val beta : t -> step:int -> num_steps:int -> float
(** Inverse temperature at sweep [step] of [num_steps]. *)
