(** Abstract syntax of the QMASM language (Pakin, "A quantum macro
    assembler"; section 4.3 of the compiled paper).

    A program is a sequence of line statements:

    - ["A -1"] — a weight (linear coefficient h);
    - ["A B -5"] — a coupler (quadratic coefficient J);
    - ["A = B"] / ["A /= B"] — chain / anti-chain shortcuts biasing two
      variables to equal / opposite values;
    - ["A := true"], ["C[7:0] := 10001111"] — pins, fixing variables;
    - ["!begin_macro M" ... "!end_macro M"], ["!use_macro M inst"] — macros;
    - ["!include <file>"] — file inclusion (the standard-cell library);
    - ["!assert expr"] — post-solution checks;
    - ["!alias A B"] — symbol aliasing.

    Symbols may be hierarchical ([inst.A]); a [$] anywhere in a symbol marks
    it internal/uninteresting, omitted from reports. *)

(** Assertion expressions, evaluated over the returned solution. *)
type aexpr =
  | Int of int
  | Sym of string  (** a single Boolean variable, read as 0/1 *)
  | Sym_bit of string * int  (** [x[3]] *)
  | Sym_range of string * int * int  (** [x[7:0]], MSB first, read as an integer *)
  | Neg of aexpr
  | Bnot of aexpr
  | Lnot of bexpr
  | Arith of arith_op * aexpr * aexpr

and arith_op = A_add | A_sub | A_mul | A_div | A_mod | A_and | A_or | A_xor | A_shl | A_shr

and bexpr =
  | Cmp of cmp_op * aexpr * aexpr
  | And of bexpr * bexpr
  | Or of bexpr * bexpr

and cmp_op = C_eq | C_ne | C_lt | C_le | C_gt | C_ge

type stmt =
  | Weight of string * float
  | Coupler of string * string * float
  | Chain of string * string
  | Anti_chain of string * string
  | Pin of (string * bool) list  (** already expanded to per-bit pins *)
  | Alias of string * string
  | Assertion of bexpr
  | Include of string
  | Begin_macro of string
  | End_macro of string
  | Use_macro of string * string list

let rec pp_aexpr fmt = function
  | Int v -> Format.fprintf fmt "%d" v
  | Sym s -> Format.pp_print_string fmt s
  | Sym_bit (s, i) -> Format.fprintf fmt "%s[%d]" s i
  | Sym_range (s, msb, lsb) -> Format.fprintf fmt "%s[%d:%d]" s msb lsb
  | Neg a -> Format.fprintf fmt "(-%a)" pp_aexpr a
  | Bnot a -> Format.fprintf fmt "(~%a)" pp_aexpr a
  | Lnot b -> Format.fprintf fmt "(!%a)" pp_bexpr b
  | Arith (op, a, b) ->
    let sym =
      match op with
      | A_add -> "+"
      | A_sub -> "-"
      | A_mul -> "*"
      | A_div -> "/"
      | A_mod -> "%"
      | A_and -> "&"
      | A_or -> "|"
      | A_xor -> "^"
      | A_shl -> "<<"
      | A_shr -> ">>"
    in
    Format.fprintf fmt "(%a %s %a)" pp_aexpr a sym pp_aexpr b

and pp_bexpr fmt = function
  | Cmp (op, a, b) ->
    let sym =
      match op with
      | C_eq -> "="
      | C_ne -> "/="
      | C_lt -> "<"
      | C_le -> "<="
      | C_gt -> ">"
      | C_ge -> ">="
    in
    Format.fprintf fmt "%a %s %a" pp_aexpr a sym pp_aexpr b
  | And (a, b) -> Format.fprintf fmt "(%a && %a)" pp_bexpr a pp_bexpr b
  | Or (a, b) -> Format.fprintf fmt "(%a || %a)" pp_bexpr a pp_bexpr b

(** Symbols mentioned by a statement (used for macro prefixing). *)
let rec aexpr_syms = function
  | Int _ -> []
  | Sym s | Sym_bit (s, _) | Sym_range (s, _, _) -> [ s ]
  | Neg a | Bnot a -> aexpr_syms a
  | Lnot b -> bexpr_syms b
  | Arith (_, a, b) -> aexpr_syms a @ aexpr_syms b

and bexpr_syms = function
  | Cmp (_, a, b) -> aexpr_syms a @ aexpr_syms b
  | And (a, b) | Or (a, b) -> bexpr_syms a @ bexpr_syms b

(** Rename every symbol in an assertion. *)
let rec map_aexpr ~f = function
  | Int v -> Int v
  | Sym s -> Sym (f s)
  | Sym_bit (s, i) -> Sym_bit (f s, i)
  | Sym_range (s, a, b) -> Sym_range (f s, a, b)
  | Neg a -> Neg (map_aexpr ~f a)
  | Bnot a -> Bnot (map_aexpr ~f a)
  | Lnot b -> Lnot (map_bexpr ~f b)
  | Arith (op, a, b) -> Arith (op, map_aexpr ~f a, map_aexpr ~f b)

and map_bexpr ~f = function
  | Cmp (op, a, b) -> Cmp (op, map_aexpr ~f a, map_aexpr ~f b)
  | And (a, b) -> And (map_bexpr ~f a, map_bexpr ~f b)
  | Or (a, b) -> Or (map_bexpr ~f a, map_bexpr ~f b)

let is_internal_symbol s = String.contains s '$'

(** Render a statement back to QMASM source (inverse of [Parser] for
    statement lists without macros re-folded). *)
let stmt_to_string = function
  | Weight (a, w) -> Printf.sprintf "%s %.12g" a w
  | Coupler (a, b, j) -> Printf.sprintf "%s %s %.12g" a b j
  | Chain (a, b) -> Printf.sprintf "%s = %s" a b
  | Anti_chain (a, b) -> Printf.sprintf "%s /= %s" a b
  | Pin pins ->
    String.concat "\n"
      (List.map (fun (name, v) -> Printf.sprintf "%s := %s" name (if v then "true" else "false")) pins)
  | Alias (a, b) -> Printf.sprintf "!alias %s %s" a b
  | Assertion b -> Format.asprintf "!assert %a" pp_bexpr b
  | Include f -> Printf.sprintf "!include \"%s\"" f
  | Begin_macro m -> Printf.sprintf "!begin_macro %s" m
  | End_macro m -> Printf.sprintf "!end_macro %s" m
  | Use_macro (m, insts) -> Printf.sprintf "!use_macro %s %s" m (String.concat " " insts)

let program_to_string stmts = String.concat "\n" (List.map stmt_to_string stmts) ^ "\n"

