(** Tiny string helper: index of the first occurrence of a substring. *)

let find_substring haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i =
    if i + nl > hl then None
    else if String.sub haystack i nl = needle then Some i
    else go (i + 1)
  in
  if nl = 0 then None else go 0
