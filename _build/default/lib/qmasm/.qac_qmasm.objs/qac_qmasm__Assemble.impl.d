lib/qmasm/assemble.ml: Array Ast Float Format Hashtbl List Printf Problem Qac_ising
