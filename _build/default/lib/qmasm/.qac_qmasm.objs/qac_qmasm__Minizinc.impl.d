lib/qmasm/minizinc.ml: Array Assemble Ast Buffer Float List Printf Problem Qac_ising String
