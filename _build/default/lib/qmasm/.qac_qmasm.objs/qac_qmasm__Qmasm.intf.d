lib/qmasm/qmasm.mli: Assemble Ast Qac_ising
