lib/qmasm/qmasm.ml: Assemble List Macro Minizinc Parser
