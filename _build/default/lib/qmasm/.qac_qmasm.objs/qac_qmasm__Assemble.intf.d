lib/qmasm/assemble.mli: Ast Qac_ising
