lib/qmasm/str_split.ml: String
