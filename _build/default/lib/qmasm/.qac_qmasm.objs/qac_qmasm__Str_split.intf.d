lib/qmasm/str_split.mli:
