lib/qmasm/minizinc.mli: Assemble Qac_ising
