lib/qmasm/parser.ml: Ast Format List Printf Str_split String
