lib/qmasm/macro.mli: Ast
