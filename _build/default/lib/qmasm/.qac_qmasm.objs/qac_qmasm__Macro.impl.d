lib/qmasm/macro.ml: Ast Format Hashtbl List Parser
