lib/qmasm/parser.mli: Ast
