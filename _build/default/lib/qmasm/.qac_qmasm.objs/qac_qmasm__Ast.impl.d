lib/qmasm/ast.ml: Format List Printf String
