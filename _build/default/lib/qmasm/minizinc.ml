(** MiniZinc output: qmasm can "convert [programs] to various other formats
    for classical solution (e.g., a constraint problem for solution with
    MiniZinc)" — this emits that form.  Each Ising spin becomes a 0/1
    variable; the objective is the (scaled, integer) Hamiltonian. *)

open Qac_ising

(* MiniZinc identifiers can't contain '.', '$', '[' etc. *)
let sanitize s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf 'v';
  String.iter
    (fun c ->
       match c with
       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
       | _ -> Buffer.add_char buf '_')
    s;
  Buffer.contents buf

(* Scale coefficients to integers (MiniZinc's float support varies by
   solver): multiply by the smallest power of ten that makes everything
   integral, capped at 10^6. *)
let integer_scale (p : Problem.t) =
  let needed v scale = Float.abs ((v *. scale) -. Float.round (v *. scale)) > 1e-9 in
  let rec find scale =
    if scale >= 1e6 then 1e6
    else if
      Array.exists (fun v -> needed v scale) p.Problem.h
      || Array.exists (fun (_, v) -> needed v scale) p.Problem.couplers
    then find (scale *. 10.0)
    else scale
  in
  find 1.0

let of_program (a : Assemble.t) =
  let p = a.Assemble.problem in
  let scale = integer_scale p in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "%% Generated from QMASM: minimize the 2-local Ising Hamiltonian.\n";
  add "%% %d variables, %d couplers; coefficients scaled by %g.\n" p.Problem.num_vars
    (Problem.num_interactions p) scale;
  let var_name v =
    match a.Assemble.symbols_of_var.(v) with
    | primary :: _ -> sanitize primary
    | [] -> Printf.sprintf "v_anon%d" v
  in
  for v = 0 to p.Problem.num_vars - 1 do
    add "var 0..1: %s;  %% %s\n" (var_name v)
      (String.concat " = " a.Assemble.symbols_of_var.(v))
  done;
  add "\n%% spin(x) = 2x - 1\n";
  let spin v = Printf.sprintf "(2*%s - 1)" (var_name v) in
  let terms = ref [] in
  Array.iteri
    (fun v h ->
       if h <> 0.0 then
         terms := Printf.sprintf "%d*%s" (int_of_float (Float.round (h *. scale))) (spin v) :: !terms)
    p.Problem.h;
  Array.iter
    (fun ((i, j), v) ->
       terms :=
         Printf.sprintf "%d*%s*%s" (int_of_float (Float.round (v *. scale))) (spin i) (spin j)
         :: !terms)
    p.Problem.couplers;
  let terms = List.rev !terms in
  add "var int: energy = %s;\n" (if terms = [] then "0" else String.concat " + " terms);
  add "solve minimize energy;\n";
  let visible =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun v syms ->
               List.filter_map
                 (fun s -> if Ast.is_internal_symbol s then None else Some (v, s))
                 syms)
            a.Assemble.symbols_of_var))
  in
  add "output [%s];\n"
    (String.concat ", "
       (List.map
          (fun (v, s) -> Printf.sprintf "\"%s = \", show(%s), \"\\n\"" s (var_name v))
          visible));
  Buffer.contents buf
