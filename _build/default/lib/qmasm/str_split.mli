(** Tiny string helper shared across the QMASM and CSP parsers. *)

val find_substring : string -> string -> int option
(** [find_substring haystack needle] is the index of the first occurrence,
    or [None]; empty needles never match. *)
