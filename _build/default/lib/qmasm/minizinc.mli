(** MiniZinc export: qmasm can "convert [programs] to various other formats
    for classical solution (e.g., a constraint problem for solution with
    MiniZinc)".  Each spin becomes a 0/1 variable; the objective is the
    integer-scaled Hamiltonian; visible symbols appear in the output item. *)

val of_program : Assemble.t -> string

val sanitize : string -> string
(** MiniZinc-legal identifier for a QMASM symbol. *)

val integer_scale : Qac_ising.Problem.t -> float
(** The power-of-ten multiplier (up to 1e6) that makes every coefficient
    integral. *)
