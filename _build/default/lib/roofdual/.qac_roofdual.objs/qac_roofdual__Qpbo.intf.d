lib/roofdual/qpbo.mli: Qac_ising
