lib/roofdual/maxflow.ml: Array Float List Queue
