lib/roofdual/qpbo.ml: Array Float List Maxflow Problem Qac_ising Qubo
