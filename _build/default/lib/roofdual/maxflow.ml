(** Dinic maximum flow on a small dense-ish directed graph, for the
    roof-duality implication network. *)

type edge = {
  dst : int;
  mutable capacity : float;
  mutable flow : float;
  inverse : int;  (* index of the reverse edge in [edges] *)
}

type t = {
  num_nodes : int;
  mutable edges : edge array;
  mutable num_edges : int;
  adjacency : int list array;  (* edge indices per node, reverse order *)
}

let create num_nodes =
  { num_nodes;
    edges = Array.make 16 { dst = 0; capacity = 0.0; flow = 0.0; inverse = 0 };
    num_edges = 0;
    adjacency = Array.make num_nodes [] }

let push_edge t e =
  if t.num_edges = Array.length t.edges then begin
    let bigger = Array.make (2 * t.num_edges) t.edges.(0) in
    Array.blit t.edges 0 bigger 0 t.num_edges;
    t.edges <- bigger
  end;
  t.edges.(t.num_edges) <- e;
  t.num_edges <- t.num_edges + 1;
  t.num_edges - 1

(** [add_edge t u v cap] adds a directed edge with capacity [cap] (and a
    zero-capacity reverse edge).  Returns the edge index. *)
let add_edge t u v capacity =
  if capacity < 0.0 then invalid_arg "Maxflow.add_edge: negative capacity";
  let forward_idx = t.num_edges in
  let forward = { dst = v; capacity; flow = 0.0; inverse = forward_idx + 1 } in
  let backward = { dst = u; capacity = 0.0; flow = 0.0; inverse = forward_idx } in
  ignore (push_edge t forward);
  ignore (push_edge t backward);
  t.adjacency.(u) <- forward_idx :: t.adjacency.(u);
  t.adjacency.(v) <- (forward_idx + 1) :: t.adjacency.(v);
  forward_idx

let residual t idx =
  let e = t.edges.(idx) in
  e.capacity -. e.flow

let eps = 1e-12

(* BFS level graph. *)
let levels t ~source =
  let level = Array.make t.num_nodes (-1) in
  let queue = Queue.create () in
  level.(source) <- 0;
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun idx ->
         let e = t.edges.(idx) in
         if level.(e.dst) < 0 && residual t idx > eps then begin
           level.(e.dst) <- level.(u) + 1;
           Queue.add e.dst queue
         end)
      t.adjacency.(u)
  done;
  level

let max_flow t ~source ~sink =
  let total = ref 0.0 in
  let continue_ = ref true in
  while !continue_ do
    let level = levels t ~source in
    if level.(sink) < 0 then continue_ := false
    else begin
      (* Iterators over remaining edges per node (Dinic's current-arc). *)
      let current = Array.map (fun l -> ref l) (Array.map (fun l -> l) t.adjacency) in
      let rec augment u limit =
        if u = sink then limit
        else begin
          let rec try_edges () =
            match !(current.(u)) with
            | [] -> 0.0
            | idx :: rest ->
              let e = t.edges.(idx) in
              if residual t idx > eps && level.(e.dst) = level.(u) + 1 then begin
                let pushed = augment e.dst (Float.min limit (residual t idx)) in
                if pushed > eps then begin
                  e.flow <- e.flow +. pushed;
                  t.edges.(e.inverse).flow <- t.edges.(e.inverse).flow -. pushed;
                  pushed
                end
                else begin
                  current.(u) := rest;
                  try_edges ()
                end
              end
              else begin
                current.(u) := rest;
                try_edges ()
              end
          in
          try_edges ()
        end
      in
      let rec pump () =
        let pushed = augment source infinity in
        if pushed > eps then begin
          total := !total +. pushed;
          pump ()
        end
      in
      pump ()
    end
  done;
  !total

(** Nodes reachable from [source] in the residual graph (the source side of
    a minimum cut). *)
let reachable t ~source =
  let seen = Array.make t.num_nodes false in
  let queue = Queue.create () in
  seen.(source) <- true;
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun idx ->
         let e = t.edges.(idx) in
         if (not seen.(e.dst)) && residual t idx > eps then begin
           seen.(e.dst) <- true;
           Queue.add e.dst queue
         end)
      t.adjacency.(u)
  done;
  seen
