open Qac_ising

type result = {
  fixed : (int * bool) list;
  lower_bound : float;
}

(* Literals: node 2i encodes x_i, node 2i+1 encodes the complement.  Nodes
   2n and 2n+1 are the constant-true source and constant-false sink. *)
let lit_true i = 2 * i
let lit_false i = (2 * i) + 1
let negate l = l lxor 1

let solve_qubo (q : Qubo.t) =
  let n = q.Qubo.num_vars in
  let source = 2 * n and sink = (2 * n) + 1 in
  let net = Maxflow.create ((2 * n) + 2) in
  let constant = ref q.Qubo.offset in
  (* Posiform accumulation: linear terms over literals. *)
  let linear = Array.make (2 * n) 0.0 in
  let add_linear lit a =
    (* Combine a*u with any existing b*ū: cancel min(a,b) into constant. *)
    let other = negate lit in
    if linear.(other) > 0.0 then begin
      let cancel = Float.min a linear.(other) in
      linear.(other) <- linear.(other) -. cancel;
      constant := !constant +. cancel;
      let remaining = a -. cancel in
      if remaining > 0.0 then linear.(lit) <- linear.(lit) +. remaining
    end
    else linear.(lit) <- linear.(lit) +. a
  in
  Array.iteri
    (fun i c ->
       if c > 0.0 then add_linear (lit_true i) c
       else if c < 0.0 then begin
         (* c x = c - c x̄ *)
         constant := !constant +. c;
         add_linear (lit_false i) (-.c)
       end)
    q.Qubo.linear;
  (* Quadratic terms as implication arcs of half weight. *)
  let add_quadratic u v a =
    ignore (Maxflow.add_edge net u (negate v) (a /. 2.0));
    ignore (Maxflow.add_edge net v (negate u) (a /. 2.0))
  in
  Array.iter
    (fun ((i, j), c) ->
       if c > 0.0 then add_quadratic (lit_true i) (lit_true j) c
       else if c < 0.0 then begin
         (* c x y = c x + |c| x ȳ *)
         add_quadratic (lit_true i) (lit_false j) (-.c);
         (* and c x as above *)
         constant := !constant +. c;
         add_linear (lit_false i) (-.c)
       end)
    q.Qubo.quadratic;
  (* Linear terms a*u are quadratic terms with the constant-true literal. *)
  Array.iteri
    (fun lit a ->
       if a > 0.0 then begin
         ignore (Maxflow.add_edge net source (negate lit) (a /. 2.0));
         ignore (Maxflow.add_edge net lit sink (a /. 2.0))
       end)
    linear;
  let flow = Maxflow.max_flow net ~source ~sink in
  let reachable = Maxflow.reachable net ~source in
  let fixed = ref [] in
  for i = n - 1 downto 0 do
    let t_in = reachable.(lit_true i) and f_in = reachable.(lit_false i) in
    if t_in && not f_in then fixed := (i, true) :: !fixed
    else if f_in && not t_in then fixed := (i, false) :: !fixed
  done;
  { fixed = !fixed; lower_bound = !constant +. flow }

let solve (p : Problem.t) = solve_qubo (Qubo.of_ising p)

type simplified = {
  reduced : Problem.t;
  kept : int array;
  fixed : (int * bool) list;
}

let simplify (p : Problem.t) =
  let (r : result) = solve p in
  let fixed = r.fixed in
  let fixed_spin = Array.make p.Problem.num_vars 0 in
  List.iter (fun (i, b) -> fixed_spin.(i) <- (if b then 1 else -1)) fixed;
  let kept =
    Array.of_list
      (List.filter (fun i -> fixed_spin.(i) = 0) (List.init p.Problem.num_vars (fun i -> i)))
  in
  let new_of_old = Array.make p.Problem.num_vars (-1) in
  Array.iteri (fun k old -> new_of_old.(old) <- k) kept;
  let b = Problem.Builder.create ~num_vars:(Array.length kept) () in
  Problem.Builder.add_offset b p.Problem.offset;
  Array.iteri
    (fun i h ->
       if fixed_spin.(i) = 0 then Problem.Builder.add_h b new_of_old.(i) h
       else Problem.Builder.add_offset b (h *. float_of_int fixed_spin.(i)))
    p.Problem.h;
  Array.iter
    (fun ((i, j), v) ->
       match fixed_spin.(i), fixed_spin.(j) with
       | 0, 0 -> Problem.Builder.add_j b new_of_old.(i) new_of_old.(j) v
       | 0, s -> Problem.Builder.add_h b new_of_old.(i) (v *. float_of_int s)
       | s, 0 -> Problem.Builder.add_h b new_of_old.(j) (v *. float_of_int s)
       | si, sj -> Problem.Builder.add_offset b (v *. float_of_int (si * sj)))
    p.Problem.couplers;
  let reduced = Problem.Builder.build b in
  let reduced =
    if reduced.Problem.num_vars = Array.length kept then reduced
    else
      Problem.relabel reduced
        (Array.init reduced.Problem.num_vars (fun i -> i))
        ~num_vars:(Array.length kept)
  in
  { reduced; kept; fixed }

let restore ~original_num_vars s reduced_spins =
  let full = Array.make original_num_vars 1 in
  List.iter (fun (i, b) -> full.(i) <- (if b then 1 else -1)) s.fixed;
  Array.iteri (fun k old -> full.(old) <- reduced_spins.(k)) s.kept;
  full
