(** Roof duality (Hammer–Hansen–Simeone) via the Boros–Hammer implication
    network — the optimization qmasm applies through SAPI "to elide qubits
    whose final value can be determined a priori" (section 4.4).

    The QUBO is rewritten as a posiform (all coefficients nonnegative, over
    literals); each quadratic term contributes a symmetric pair of
    implication arcs of half its weight; a maximum flow from the
    constant-true literal to the constant-false literal then yields (a) the
    roof-dual lower bound on the minimum energy and (b) *weakly persistent*
    variable assignments: some optimal solution agrees with every fixed
    value. *)

type result = {
  fixed : (int * bool) list;  (** variable index, persistent value *)
  lower_bound : float;  (** roof-dual bound: min energy >= lower_bound *)
}

val solve_qubo : Qac_ising.Qubo.t -> result

val solve : Qac_ising.Problem.t -> result
(** Ising wrapper; fixed values are reported as booleans
    ([true] = spin +1). *)

(** [simplify p] fixes every persistent variable, folding its couplings into
    its neighbors' fields.  Returns the reduced problem, the map from
    reduced indices to original indices, and the fixed assignments;
    [restore] rebuilds a full spin vector from a reduced one. *)
type simplified = {
  reduced : Qac_ising.Problem.t;
  kept : int array;  (** reduced index -> original index *)
  fixed : (int * bool) list;
}

val simplify : Qac_ising.Problem.t -> simplified

val restore :
  original_num_vars:int ->
  simplified ->
  Qac_ising.Problem.spin array ->
  Qac_ising.Problem.spin array
