lib/edif/edif.mli: Qac_netlist Qac_sexp
