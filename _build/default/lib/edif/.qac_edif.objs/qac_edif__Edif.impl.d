lib/edif/edif.ml: Array Buffer Format Hashtbl List Option Printf Qac_netlist Qac_sexp String
