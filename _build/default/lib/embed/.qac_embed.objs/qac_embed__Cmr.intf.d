lib/embed/cmr.mli: Embedding Qac_chimera Qac_ising
