lib/embed/clique.mli: Embedding Qac_chimera Qac_ising
