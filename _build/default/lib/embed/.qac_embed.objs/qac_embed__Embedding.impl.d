lib/embed/embedding.ml: Array Float Hashtbl List Printf Problem Qac_chimera Qac_ising Result
