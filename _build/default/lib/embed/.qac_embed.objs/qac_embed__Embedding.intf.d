lib/embed/embedding.mli: Qac_chimera Qac_ising
