lib/embed/clique.ml: Array Embedding List Qac_chimera Qac_ising
