lib/embed/heap.ml: Array Obj
