lib/embed/cmr.ml: Array Embedding Float Hashtbl Heap List Option Problem Qac_anneal Qac_chimera Qac_ising
