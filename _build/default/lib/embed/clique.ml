module Chimera = Qac_chimera.Chimera

let embed graph ~n =
  let m = Chimera.size graph in
  let t = Chimera.shore graph in
  if n < 1 || n > t * m then None
  else begin
    let blocks = (n + t - 1) / t in
    let chains =
      Array.init n (fun v ->
          let b = v / t and k = v mod t in
          (* Vertical run: partition-0 track k of column b, rows 0..b. *)
          let vertical =
            List.init (b + 1) (fun row ->
                Chimera.qubit graph { Chimera.row; col = b; partition = 0; index = k })
          in
          (* Horizontal run: partition-1 track k of row b, columns b..blocks-1. *)
          let horizontal =
            List.init (blocks - b) (fun i ->
                Chimera.qubit graph
                  { Chimera.row = b; col = b + i; partition = 1; index = k })
          in
          Array.of_list (vertical @ horizontal))
    in
    let all_working =
      Array.for_all (Array.for_all (fun q -> Chimera.is_working graph q)) chains
    in
    if all_working then Some { Embedding.chains } else None
  end

let find graph (p : Qac_ising.Problem.t) = embed graph ~n:p.Qac_ising.Problem.num_vars
