module Chimera = Qac_chimera.Chimera
module Rng = Qac_anneal.Rng
open Qac_ising

type params = {
  tries : int;
  max_passes : int;
  alpha : float;
  seed : int;
}

let default_params = { tries = 8; max_passes = 24; alpha = 4.0; seed = 0 }

exception Route_failed
(* A variable could not reach every embedded neighbor chain (disconnected
   region, or every path blocked); the current try is abandoned. *)

type state = {
  graph : Chimera.t;
  num_qubits : int;
  logical_neighbors : int list array;
  chains : int list array;  (* physical qubits per logical variable *)
  usage : int array;  (* how many chains cover each qubit *)
  mutable alpha : float;
      (* overuse penalty base; escalated every refinement pass so stable
         overlap deadlocks (cheap shared qubit vs. many detours) eventually
         break *)
}

(* Cost of stepping on [q]: ~1 for a free qubit, alpha^usage otherwise, with
   per-route jitter to diversify tie-breaking. *)
let qubit_cost st ~jitter q =
  (st.alpha ** float_of_int (min st.usage.(q) 8)) *. jitter.(q)

(* Multi-source Dijkstra from the chain of [u].  [dist.(q)] is the cheapest
   cost of the *intermediate* qubits on a path from the chain to [q]
   (excluding both the chain's qubits and [q] itself), so a candidate root's
   own weight can be counted exactly once by the caller.  [parent] allows
   path reconstruction; [is_source] marks the chain's own qubits. *)
let distances_from_chain st ~jitter u =
  let dist = Array.make st.num_qubits infinity in
  let parent = Array.make st.num_qubits (-1) in
  let is_source = Array.make st.num_qubits false in
  let heap = Heap.create () in
  List.iter
    (fun q ->
       dist.(q) <- 0.0;
       is_source.(q) <- true;
       Heap.push heap 0.0 q)
    st.chains.(u);
  let rec run () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, q) ->
      if d <= dist.(q) then begin
        (* Stepping past [q] costs its weight, unless [q] is in the source
           chain (whose qubits are already paid for). *)
        let step = if is_source.(q) then 0.0 else qubit_cost st ~jitter q in
        List.iter
          (fun n ->
             let nd = d +. step in
             if nd < dist.(n) -. 1e-12 && not is_source.(n) then begin
               dist.(n) <- nd;
               parent.(n) <- q;
               Heap.push heap nd n
             end)
          (Chimera.neighbors st.graph q)
      end;
      run ()
  in
  run ();
  (dist, parent, is_source)

(* Rebuild the chain of [v] from scratch. *)
let route_chain st rng v =
  let jitter = Array.init st.num_qubits (fun _ -> 1.0 +. (0.5 *. Rng.float rng)) in
  (* Rip the old chain. *)
  List.iter (fun q -> st.usage.(q) <- st.usage.(q) - 1) st.chains.(v);
  st.chains.(v) <- [];
  let embedded_neighbors = List.filter (fun u -> st.chains.(u) <> []) st.logical_neighbors.(v) in
  if embedded_neighbors = [] then begin
    (* No constraints yet: claim a random least-used working qubit. *)
    let candidates = ref [] in
    let best_usage = ref max_int in
    for q = 0 to st.num_qubits - 1 do
      if Chimera.is_working st.graph q then begin
        if st.usage.(q) < !best_usage then begin
          best_usage := st.usage.(q);
          candidates := [ q ]
        end
        else if st.usage.(q) = !best_usage then candidates := q :: !candidates
      end
    done;
    let pick = List.nth !candidates (Rng.int rng (List.length !candidates)) in
    st.chains.(v) <- [ pick ];
    st.usage.(pick) <- st.usage.(pick) + 1
  end
  else begin
    let results = List.map (fun u -> (u, distances_from_chain st ~jitter u)) embedded_neighbors in
    (* Root choice: the chain rooted at [q] costs q's own weight once plus
       the intermediate-qubit cost of each path to a neighbor chain. *)
    let best_root = ref (-1) in
    let best_score = ref infinity in
    for q = 0 to st.num_qubits - 1 do
      if Chimera.is_working st.graph q then begin
        let total =
          List.fold_left (fun acc (_, (dist, _, _)) -> acc +. dist.(q)) 0.0 results
        in
        if total < infinity then begin
          let score = total +. qubit_cost st ~jitter q in
          if score < !best_score then begin
            best_score := score;
            best_root := q
          end
        end
      end
    done;
    if !best_root < 0 then raise Route_failed;
    let chain = Hashtbl.create 16 in
    Hashtbl.replace chain !best_root ();
    (* Walk parents back from the root toward each neighbor chain, adding the
       intermediate qubits (sources themselves stay with their owner). *)
    List.iter
      (fun (_, (_, parent, is_source)) ->
         let rec walk q =
           if not is_source.(q) then begin
             Hashtbl.replace chain q ();
             let p = parent.(q) in
             if p >= 0 then walk p
           end
         in
         walk !best_root)
      results;
    let members = Hashtbl.fold (fun q () acc -> q :: acc) chain [] in
    st.chains.(v) <- members;
    List.iter (fun q -> st.usage.(q) <- st.usage.(q) + 1) members
  end


(* Remove redundant qubits from a freshly routed chain: a member can go if
   the chain stays connected and every embedded logical neighbor is still
   reachable through some physical edge.  Union-of-shortest-paths routing
   leaves such slack whenever paths to different neighbors diverge. *)
let trim_chain st v =
  let members = Hashtbl.create 16 in
  List.iter (fun q -> Hashtbl.replace members q ()) st.chains.(v);
  let embedded_neighbors =
    List.filter (fun u -> u <> v && st.chains.(u) <> []) st.logical_neighbors.(v)
  in
  let still_valid () =
    let member_list = Hashtbl.fold (fun q () acc -> q :: acc) members [] in
    match member_list with
    | [] -> false
    | first :: _ ->
      (* Connectivity. *)
      let visited = Hashtbl.create 16 in
      let rec dfs q =
        if not (Hashtbl.mem visited q) then begin
          Hashtbl.replace visited q ();
          List.iter (fun n -> if Hashtbl.mem members n then dfs n) (Chimera.neighbors st.graph q)
        end
      in
      dfs first;
      Hashtbl.length visited = Hashtbl.length members
      (* Adjacency to each embedded neighbor chain. *)
      && List.for_all
           (fun u ->
              List.exists
                (fun qu ->
                   List.exists (fun n -> Hashtbl.mem members n) (Chimera.neighbors st.graph qu))
                st.chains.(u))
           embedded_neighbors
  in
  let removed_any = ref true in
  while !removed_any do
    removed_any := false;
    let candidates = Hashtbl.fold (fun q () acc -> q :: acc) members [] in
    (* Prefer dropping overused qubits, then high-cost ones. *)
    let candidates =
      List.sort
        (fun a b -> compare (st.usage.(b), b) (st.usage.(a), a))
        candidates
    in
    List.iter
      (fun q ->
         if Hashtbl.length members > 1 then begin
           Hashtbl.remove members q;
           if still_valid () then begin
             st.usage.(q) <- st.usage.(q) - 1;
             removed_any := true
           end
           else Hashtbl.replace members q ()
         end)
      candidates
  done;
  st.chains.(v) <- Hashtbl.fold (fun q () acc -> q :: acc) members []

let route_and_trim st rng v =
  route_chain st rng v;
  trim_chain st v

let overfull st =
  let count = ref 0 in
  Array.iter (fun u -> if u > 1 then incr count) st.usage;
  !count

let total_chain_length st =
  Array.fold_left (fun acc chain -> acc + List.length chain) 0 st.chains

let find ?(params = default_params) graph (p : Problem.t) =
  let n = p.Problem.num_vars in
  if n = 0 then Some { Embedding.chains = [||] }
  else begin
    let logical_neighbors = Array.make n [] in
    Array.iter
      (fun ((u, v), _) ->
         logical_neighbors.(u) <- v :: logical_neighbors.(u);
         logical_neighbors.(v) <- u :: logical_neighbors.(v))
      p.Problem.couplers;
    let rng = Rng.create params.seed in
    let best = ref None in
    let consider st =
      if overfull st = 0 then begin
        let length = total_chain_length st in
        match !best with
        | Some (best_length, _) when best_length <= length -> ()
        | _ ->
          best :=
            Some
              ( length,
                { Embedding.chains =
                    Array.map (fun chain -> Array.of_list (List.sort compare chain)) st.chains
                } )
      end
    in
    for _try = 1 to params.tries do
      let try_rng = Rng.split rng in
      let st =
        { graph;
          num_qubits = Chimera.num_qubits graph;
          logical_neighbors;
          chains = Array.make n [];
          usage = Array.make (Chimera.num_qubits graph) 0;
          alpha = params.alpha }
      in
      let order = Array.init n (fun i -> i) in
      Rng.shuffle try_rng order;
      (* Initial placement. *)
      (try
         Array.iter (fun v -> route_and_trim st try_rng v) order;
         (* Refinement passes, escalating the overuse penalty so stable
            overlap deadlocks eventually break. *)
         for pass = 1 to params.max_passes do
           st.alpha <- Float.min 1e6 (params.alpha *. (2.0 ** float_of_int pass));
           Rng.shuffle try_rng order;
           Array.iter (fun v -> route_and_trim st try_rng v) order;
           if overfull st = 0 then begin
             consider st;
             (* Shortening passes: keep rerouting with overlap effectively
                forbidden, keeping the best (shortest) valid embedding. *)
             st.alpha <- 1e6;
             for _shorten = 1 to 3 do
               Rng.shuffle try_rng order;
               Array.iter (fun v -> route_and_trim st try_rng v) order;
               if overfull st = 0 then consider st
             done;
             raise Exit
           end
         done
       with
       | Exit -> ()
       | Route_failed -> ());
      consider st
    done;
    Option.map snd !best
  end
