(** Binary min-heap of (priority, payload) pairs, for Dijkstra inside the
    minor embedder. *)

type 'a t = {
  mutable items : (float * 'a) array;
  mutable size : int;
}

let create () = { items = Array.make 16 (0.0, Obj.magic 0); size = 0 }

let is_empty h = h.size = 0

let swap h i j =
  let tmp = h.items.(i) in
  h.items.(i) <- h.items.(j);
  h.items.(j) <- tmp

let push h priority payload =
  if h.size = Array.length h.items then begin
    let bigger = Array.make (2 * h.size) h.items.(0) in
    Array.blit h.items 0 bigger 0 h.size;
    h.items <- bigger
  end;
  h.items.(h.size) <- (priority, payload);
  h.size <- h.size + 1;
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if fst h.items.(i) < fst h.items.(parent) then begin
        swap h i parent;
        up parent
      end
    end
  in
  up (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.items.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.items.(0) <- h.items.(h.size);
      let rec down i =
        let left = (2 * i) + 1 and right = (2 * i) + 2 in
        let smallest = ref i in
        if left < h.size && fst h.items.(left) < fst h.items.(!smallest) then smallest := left;
        if right < h.size && fst h.items.(right) < fst h.items.(!smallest) then
          smallest := right;
        if !smallest <> i then begin
          swap h i !smallest;
          down !smallest
        end
      in
      down 0
    end;
    Some top
  end
