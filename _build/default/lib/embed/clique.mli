(** Deterministic clique embeddings for Chimera graphs (the TRIAD / native
    clique template of Choi and of D-Wave's clique embedder).

    Path-based heuristics like {!Cmr} struggle on dense interaction graphs;
    the template embeds [K_n] ([n <= shore * m]) with L-shaped chains along
    the grid diagonal: variable [v = b*t + k] occupies the partition-0 track
    [k] of column [b] (rows [0..b]) plus the partition-1 track [k] of row
    [b] (columns [b..B-1], where [B = ceil(n/t)] blocks are in use).  Any
    two chains meet in exactly one unit cell, where the K_{t,t} intra-cell
    couplers realize the logical edge.  Chains have length at most
    [b + 1 + (B - b)]. *)

(** [embed graph ~n] returns the K_n template embedding, or [None] when
    [n > shore * size] or a needed qubit is broken. *)
val embed : Qac_chimera.Chimera.t -> n:int -> Embedding.t option

(** [find graph problem] embeds [problem]'s interaction graph using the
    clique template sized to its variable count — valid for any problem,
    dense or not, at the cost of clique-sized chains. *)
val find : Qac_chimera.Chimera.t -> Qac_ising.Problem.t -> Embedding.t option
