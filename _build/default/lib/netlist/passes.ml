open Netlist

let is_ff = function
  | Dff_p | Dff_n -> true
  | Not | And | Or | Nand | Nor | Xor | Xnor | Mux | Aoi3 | Oai3 | Aoi4 | Oai4 -> false

(* net -> index of the cell driving it, or -1 for input/unconnected nets. *)
let driver_table (t : Netlist.t) =
  let driver = Array.make t.num_nets (-1) in
  Array.iteri (fun idx c -> driver.(c.out) <- idx) t.cells;
  driver

let live_cells (t : Netlist.t) =
  let driver = driver_table t in
  let live_net = Array.make t.num_nets false in
  let live_cell = Array.make (Array.length t.cells) false in
  let rec mark = function
    | Zero | One -> ()
    | Net n ->
      if not live_net.(n) then begin
        live_net.(n) <- true;
        let d = driver.(n) in
        if d >= 0 && not live_cell.(d) then begin
          live_cell.(d) <- true;
          Array.iter mark t.cells.(d).inputs
        end
      end
  in
  List.iter (fun (_, signals) -> Array.iter mark signals) t.outputs;
  live_cell

let dce (t : Netlist.t) =
  let live = live_cells t in
  let b = Builder.create t.name in
  (* Map old nets to new signals.  Input ports first, then live cells in
     their original (topological) order. *)
  let map = Hashtbl.create t.num_nets in
  List.iter
    (fun (name, nets) ->
       let signals = Builder.add_input b name (Array.length nets) in
       Array.iteri (fun i n -> Hashtbl.replace map n signals.(i)) nets)
    t.inputs;
  let map_signal = function
    | Zero -> Zero
    | One -> One
    | Net n ->
      (match Hashtbl.find_opt map n with
       | Some s -> s
       | None -> invalid_arg "dce: use before definition")
  in
  (* Flip-flop outputs must exist before any user; allocate placeholders. *)
  Array.iteri
    (fun idx (c : cell) ->
       if live.(idx) && is_ff c.kind then begin
         let edge = if c.kind = Dff_p then `Pos else `Neg in
         Hashtbl.replace map c.out (Builder.dff_placeholder b ~edge)
       end)
    t.cells;
  Array.iteri
    (fun idx (c : cell) ->
       if live.(idx) && not (is_ff c.kind) then
         Hashtbl.replace map c.out (Builder.raw_cell b c.kind (Array.map map_signal c.inputs)))
    t.cells;
  Array.iteri
    (fun idx (c : cell) ->
       if live.(idx) && is_ff c.kind then
         Builder.connect_dff b ~q:(Hashtbl.find map c.out) ~d:(map_signal c.inputs.(0)))
    t.cells;
  List.iter (fun (name, signals) -> Builder.set_output b name (Array.map map_signal signals)) t.outputs;
  Builder.build b

(* --- Tech mapping ------------------------------------------------------ *)

(* A Not over a single-fanout cone of ANDs/ORs is rewritten bottom-up into
   the inverting Table 5 cells.  Matching happens on the old netlist; the
   replacement is emitted into a fresh builder. *)

type shape =
  | Sand of signal * signal
  | Sor of signal * signal
  | Sxor of signal * signal
  | Sopaque

let techmap (t : Netlist.t) =
  let driver = driver_table t in
  let fanout = fanout_counts t in
  let b = Builder.create t.name in
  let map = Hashtbl.create t.num_nets in
  List.iter
    (fun (name, nets) ->
       let signals = Builder.add_input b name (Array.length nets) in
       Array.iteri (fun i n -> Hashtbl.replace map n signals.(i)) nets)
    t.inputs;
  Array.iter
    (fun (c : cell) ->
       if is_ff c.kind then begin
         let edge = if c.kind = Dff_p then `Pos else `Neg in
         Hashtbl.replace map c.out (Builder.dff_placeholder b ~edge)
       end)
    t.cells;
  (* [shape_of s] looks through a single-fanout driver of [s]. *)
  let shape_of s =
    match s with
    | Zero | One -> Sopaque
    | Net n ->
      if fanout.(n) <> 1 || driver.(n) < 0 then Sopaque
      else
        let c = t.cells.(driver.(n)) in
        (match c.kind with
         | And -> Sand (c.inputs.(0), c.inputs.(1))
         | Or -> Sor (c.inputs.(0), c.inputs.(1))
         | Xor -> Sxor (c.inputs.(0), c.inputs.(1))
         | _ -> Sopaque)
  in
  let rec map_signal s =
    match s with
    | Zero -> Zero
    | One -> One
    | Net n ->
      (match Hashtbl.find_opt map n with
       | Some s' -> s'
       | None ->
         let c = t.cells.(driver.(n)) in
         let s' = emit c in
         Hashtbl.replace map n s';
         s')
  and emit (c : cell) =
    match c.kind with
    | Not -> emit_not c.inputs.(0)
    | _ -> Builder.raw_cell b c.kind (Array.map map_signal c.inputs)
  and emit_not arg =
    (* Match the biggest inverting cell available at this Not. *)
    match shape_of arg with
    | Sand (x, y) ->
      (match shape_of x, shape_of y with
       | Sor (p, q), Sor (r, s) ->
         Builder.raw_cell b Oai4 [| map_signal p; map_signal q; map_signal r; map_signal s |]
       | Sor (p, q), _ ->
         Builder.raw_cell b Oai3 [| map_signal p; map_signal q; map_signal y |]
       | _, Sor (r, s) ->
         Builder.raw_cell b Oai3 [| map_signal r; map_signal s; map_signal x |]
       | _, _ -> Builder.raw_cell b Nand [| map_signal x; map_signal y |])
    | Sor (x, y) ->
      (match shape_of x, shape_of y with
       | Sand (p, q), Sand (r, s) ->
         Builder.raw_cell b Aoi4 [| map_signal p; map_signal q; map_signal r; map_signal s |]
       | Sand (p, q), _ ->
         Builder.raw_cell b Aoi3 [| map_signal p; map_signal q; map_signal y |]
       | _, Sand (r, s) ->
         Builder.raw_cell b Aoi3 [| map_signal r; map_signal s; map_signal x |]
       | _, _ -> Builder.raw_cell b Nor [| map_signal x; map_signal y |])
    | Sxor (x, y) -> Builder.raw_cell b Xnor [| map_signal x; map_signal y |]
    | Sopaque -> Builder.not_ b (map_signal arg)
  in
  List.iter
    (fun (name, signals) -> Builder.set_output b name (Array.map map_signal signals))
    t.outputs;
  Array.iter
    (fun (c : cell) ->
       if is_ff c.kind then
         Builder.connect_dff b ~q:(Hashtbl.find map c.out) ~d:(map_signal c.inputs.(0)))
    t.cells;
  Builder.build b

let optimize t = dce (techmap (dce t))

(* --- Sequential unrolling (section 4.3.3) ------------------------------ *)

let unroll ?ff_names (t : Netlist.t) ~steps =
  if steps < 1 then invalid_arg "Passes.unroll: steps must be >= 1";
  let ffs =
    Array.to_list t.cells
    |> List.filter (fun (c : cell) -> is_ff c.kind)
    |> Array.of_list
  in
  let ff_name i =
    match ff_names with
    | Some names when i < Array.length names -> names.(i)
    | Some _ | None -> Printf.sprintf "ff%d" i
  in
  let b = Builder.create (t.name ^ "_unrolled") in
  (* Initial state ports. *)
  let state =
    Array.mapi
      (fun i (_ : cell) -> (Builder.add_input b (ff_name i ^ "@init") 1).(0))
      ffs
  in
  let state = ref state in
  for step = 0 to steps - 1 do
    let map = Hashtbl.create t.num_nets in
    List.iter
      (fun (name, nets) ->
         let signals = Builder.add_input b (Printf.sprintf "%s@%d" name step) (Array.length nets) in
         Array.iteri (fun i n -> Hashtbl.replace map n signals.(i)) nets)
      t.inputs;
    Array.iteri (fun i (c : cell) -> Hashtbl.replace map c.out !state.(i)) ffs;
    let map_signal = function
      | Zero -> Zero
      | One -> One
      | Net n -> Hashtbl.find map n
    in
    Array.iter
      (fun (c : cell) ->
         if not (is_ff c.kind) then
           Hashtbl.replace map c.out
             (Builder.raw_cell b c.kind (Array.map map_signal c.inputs)))
      t.cells;
    List.iter
      (fun (name, signals) ->
         Builder.set_output b (Printf.sprintf "%s@%d" name step)
           (Array.map map_signal signals))
      t.outputs;
    state := Array.map (fun (c : cell) -> map_signal c.inputs.(0)) ffs
  done;
  Array.iteri (fun i (_ : cell) -> Builder.set_output b (ff_name i ^ "@final") [| !state.(i) |]) ffs;
  Builder.build b
