(** Gate-level netlists over the Table 5 standard-cell set.

    This is the compiler's mid-level IR: the Verilog frontend bit-blasts into
    it, optimization passes rewrite it, and the EDIF backend serializes it.
    A netlist is a DAG of cells; sequential designs additionally contain
    D flip-flops, whose outputs are state rather than combinational
    functions. *)

type kind =
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Mux  (** inputs [A; B; S], output [S ? B : A] *)
  | Aoi3  (** [not ((A and B) or C)] *)
  | Oai3  (** [not ((A or B) and C)] *)
  | Aoi4  (** [not ((A and B) or (C and D))] *)
  | Oai4  (** [not ((A or B) and (C or D))] *)
  | Dff_p
  | Dff_n

val kind_name : kind -> string
(** The standard-cell name, e.g. ["AND"]; matches [Qac_cells.Cells.find]. *)

val kind_of_name : string -> kind option
val kind_arity : kind -> int
val kind_logic : kind -> bool array -> bool
(** Combinational function (identity for flip-flops). *)

type signal =
  | Zero
  | One
  | Net of int

type cell = {
  kind : kind;
  inputs : signal array;
  out : int;  (** the net this cell drives *)
}

type t = {
  name : string;
  num_nets : int;
  cells : cell array;
      (** in topological order for the combinational subgraph: every
          non-flip-flop cell appears after the cells driving its inputs *)
  inputs : (string * int array) list;  (** port name, driven nets, LSB first *)
  outputs : (string * signal array) list;
}

(** {1 Construction} *)

module Builder : sig
  type netlist := t
  type t

  val create : string -> t

  val add_input : t -> string -> int -> signal array
  (** [add_input b name width] declares an input port and returns its bit
      signals, LSB first. *)

  val set_output : t -> string -> signal array -> unit

  (** Gate constructors perform constant folding, algebraic simplification
      (idempotence, complements, double negation) and structural hashing, so
      equivalent subcircuits share cells. *)

  val not_ : t -> signal -> signal
  val and_ : t -> signal -> signal -> signal
  val or_ : t -> signal -> signal -> signal
  val xor_ : t -> signal -> signal -> signal
  val nand_ : t -> signal -> signal -> signal
  val nor_ : t -> signal -> signal -> signal
  val xnor_ : t -> signal -> signal -> signal

  val mux : t -> sel:signal -> a:signal -> b:signal -> signal
  (** [if sel then b else a]. *)

  val raw_cell : t -> kind -> signal array -> signal
  (** Hash-consed cell creation with no rewriting beyond commutative-input
      canonicalization; used by the tech-mapper and the EDIF reader. *)

  val dff_placeholder : t -> edge:[ `Pos | `Neg ] -> signal
  (** Allocate a flip-flop's Q net before its D cone exists, enabling
      feedback (e.g. a counter's [var <= var + 1]). *)

  val connect_dff : t -> q:signal -> d:signal -> unit

  val build : t -> netlist
end

(** {1 Accessors} *)

val find_input : t -> string -> int array option
val find_output : t -> string -> signal array option
val input_names : t -> string list
val output_names : t -> string list
val num_cells : t -> int
val num_flip_flops : t -> int
val is_combinational : t -> bool

val fanout_counts : t -> int array
(** Per-net use count (cell inputs + module outputs). *)

val cells_by_kind : t -> (kind * int) list

val estimated_logical_vars : t -> int
(** Number of logical Ising variables this netlist lowers to: one per input
    bit, one per cell output, plus each cell's ancillas (the section 6.1
    "logical variables" metric, before chain merging). *)

val pp_stats : Format.formatter -> t -> unit
