lib/netlist/netlist.ml: Array Format Hashtbl List Qac_cells String
