lib/netlist/passes.ml: Array Builder Hashtbl List Netlist Printf
