lib/netlist/passes.mli: Netlist
