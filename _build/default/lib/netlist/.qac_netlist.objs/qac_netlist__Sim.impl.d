lib/netlist/sim.ml: Array List Netlist
