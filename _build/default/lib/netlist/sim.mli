(** Netlist simulation: the polynomial-time verifier of the paper's
    NP-solving recipe (section 5.1 — "run the program forward ... and discard
    any results found to be incorrect"), and the differential-testing oracle
    for the synthesis pipeline. *)

(** [comb netlist ~inputs] evaluates a combinational netlist.  [inputs] maps
    every input port to its bit values (LSB first); the result maps every
    output port likewise.  Fails on sequential netlists. *)
val comb : Netlist.t -> inputs:(string * bool array) list -> (string * bool array) list

type sequential_state

(** [initial netlist ~reset] creates flip-flop state, all bits [reset]
    (default false). *)
val initial : ?reset:bool -> Netlist.t -> sequential_state

(** [step netlist state ~inputs] simulates one clock cycle: outputs are
    computed from the current state and inputs, then every flip-flop loads
    its D value.  Returns the outputs observed during the cycle and the next
    state. *)
val step :
  Netlist.t ->
  sequential_state ->
  inputs:(string * bool array) list ->
  (string * bool array) list * sequential_state

(** [run netlist ~inputs] runs a multi-cycle simulation from the all-false
    initial state, feeding one input map per cycle. *)
val run :
  Netlist.t -> inputs:(string * bool array) list list -> (string * bool array) list list

(** [check_relation netlist ~assignment] tests whether a full input/output
    assignment is a valid behaviour of a combinational netlist: runs the
    inputs forward and compares every output.  This is how annealer samples
    are verified. *)
val check_relation : Netlist.t -> assignment:(string * bool array) list -> bool
