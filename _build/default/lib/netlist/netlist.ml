type kind =
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Mux
  | Aoi3
  | Oai3
  | Aoi4
  | Oai4
  | Dff_p
  | Dff_n

let kind_name = function
  | Not -> "NOT"
  | And -> "AND"
  | Or -> "OR"
  | Nand -> "NAND"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"
  | Mux -> "MUX"
  | Aoi3 -> "AOI3"
  | Oai3 -> "OAI3"
  | Aoi4 -> "AOI4"
  | Oai4 -> "OAI4"
  | Dff_p -> "DFF_P"
  | Dff_n -> "DFF_N"

let all_kinds =
  [ Not; And; Or; Nand; Nor; Xor; Xnor; Mux; Aoi3; Oai3; Aoi4; Oai4; Dff_p; Dff_n ]

let kind_of_name name =
  let wanted = String.uppercase_ascii name in
  List.find_opt (fun k -> kind_name k = wanted) all_kinds

let kind_arity = function
  | Not -> 1
  | And | Or | Nand | Nor | Xor | Xnor -> 2
  | Mux | Aoi3 | Oai3 -> 3
  | Aoi4 | Oai4 -> 4
  | Dff_p | Dff_n -> 1

let kind_logic kind v =
  match kind with
  | Not -> not v.(0)
  | And -> v.(0) && v.(1)
  | Or -> v.(0) || v.(1)
  | Nand -> not (v.(0) && v.(1))
  | Nor -> not (v.(0) || v.(1))
  | Xor -> v.(0) <> v.(1)
  | Xnor -> v.(0) = v.(1)
  | Mux -> if v.(2) then v.(1) else v.(0)
  | Aoi3 -> not ((v.(0) && v.(1)) || v.(2))
  | Oai3 -> not ((v.(0) || v.(1)) && v.(2))
  | Aoi4 -> not ((v.(0) && v.(1)) || (v.(2) && v.(3)))
  | Oai4 -> not ((v.(0) || v.(1)) && (v.(2) || v.(3)))
  | Dff_p | Dff_n -> v.(0)

type signal =
  | Zero
  | One
  | Net of int

type cell = {
  kind : kind;
  inputs : signal array;
  out : int;
}

type t = {
  name : string;
  num_nets : int;
  cells : cell array;
  inputs : (string * int array) list;
  outputs : (string * signal array) list;
}

module Builder = struct
  type t = {
    name : string;
    mutable num_nets : int;
    mutable cells_rev : cell list;
    mutable num_cells : int;
    mutable inputs_rev : (string * int array) list;
    mutable outputs_rev : (string * signal array) list;
    hashcons : (kind * signal array, signal) Hashtbl.t;
    (* net -> the Not cell input it is the complement of, for double-negation
       and complement-detection rewrites *)
    complement_of : (int, signal) Hashtbl.t;
    mutable pending_dffs : (signal * [ `Pos | `Neg ] * signal option ref) list;
  }

  let create name =
    { name;
      num_nets = 0;
      cells_rev = [];
      num_cells = 0;
      inputs_rev = [];
      outputs_rev = [];
      hashcons = Hashtbl.create 256;
      complement_of = Hashtbl.create 64;
      pending_dffs = [] }

  let fresh_net b =
    let n = b.num_nets in
    b.num_nets <- n + 1;
    n

  let add_input b name width =
    if List.mem_assoc name b.inputs_rev then
      invalid_arg ("Builder.add_input: duplicate port " ^ name);
    let nets = Array.init width (fun _ -> fresh_net b) in
    b.inputs_rev <- (name, nets) :: b.inputs_rev;
    Array.map (fun n -> Net n) nets

  let set_output b name signals =
    if List.mem_assoc name b.outputs_rev then
      invalid_arg ("Builder.set_output: duplicate port " ^ name);
    b.outputs_rev <- (name, Array.copy signals) :: b.outputs_rev

  let is_commutative = function
    | And | Or | Nand | Nor | Xor | Xnor -> true
    | Not | Mux | Aoi3 | Oai3 | Aoi4 | Oai4 | Dff_p | Dff_n -> false

  let canonical kind inputs =
    if is_commutative kind then begin
      let sorted = Array.copy inputs in
      Array.sort compare sorted;
      sorted
    end
    else inputs

  let new_cell b kind inputs =
    let out = fresh_net b in
    b.cells_rev <- { kind; inputs; out } :: b.cells_rev;
    b.num_cells <- b.num_cells + 1;
    Net out

  let raw_cell b kind inputs =
    if Array.length inputs <> kind_arity kind then
      invalid_arg ("Builder.raw_cell: arity mismatch for " ^ kind_name kind);
    let inputs = canonical kind inputs in
    match Hashtbl.find_opt b.hashcons (kind, inputs) with
    | Some s -> s
    | None ->
      let s = new_cell b kind inputs in
      Hashtbl.add b.hashcons (kind, inputs) s;
      (match kind, s with
       | Not, Net out ->
         Hashtbl.replace b.complement_of out inputs.(0);
         (* Register the reverse direction too so not(not x) folds even when
            the inner Not was built first. *)
         (match inputs.(0) with
          | Net inner -> if not (Hashtbl.mem b.complement_of inner) then
              Hashtbl.replace b.complement_of inner s
          | Zero | One -> ())
       | _ -> ());
      s

  let complements b x y =
    match x, y with
    | Zero, One | One, Zero -> true
    | Net n, other | other, Net n ->
      (match Hashtbl.find_opt b.complement_of n with
       | Some c -> c = other
       | None -> false)
    | _ -> false

  let not_ b x =
    match x with
    | Zero -> One
    | One -> Zero
    | Net n ->
      (match Hashtbl.find_opt b.complement_of n with
       | Some c -> c
       | None -> raw_cell b Not [| x |])

  let and_ b x y =
    if x = Zero || y = Zero then Zero
    else if x = One then y
    else if y = One then x
    else if x = y then x
    else if complements b x y then Zero
    else raw_cell b And [| x; y |]

  let or_ b x y =
    if x = One || y = One then One
    else if x = Zero then y
    else if y = Zero then x
    else if x = y then x
    else if complements b x y then One
    else raw_cell b Or [| x; y |]

  let xor_ b x y =
    if x = Zero then y
    else if y = Zero then x
    else if x = One then not_ b y
    else if y = One then not_ b x
    else if x = y then Zero
    else if complements b x y then One
    else raw_cell b Xor [| x; y |]

  let nand_ b x y = not_ b (and_ b x y)
  let nor_ b x y = not_ b (or_ b x y)
  let xnor_ b x y = not_ b (xor_ b x y)

  let mux b ~sel ~a ~b:bb =
    match sel with
    | Zero -> a
    | One -> bb
    | Net _ ->
      if a = bb then a
      else if a = Zero && bb = One then sel
      else if a = One && bb = Zero then not_ b sel
      else if bb = Zero then and_ b (not_ b sel) a
      else if bb = One then or_ b sel a
      else if a = Zero then and_ b sel bb
      else if a = One then or_ b (not_ b sel) bb
      else if complements b a bb then xnor_ b sel bb
      else raw_cell b Mux [| a; bb; sel |]

  let dff_placeholder b ~edge =
    let q = fresh_net b in
    let dref = ref None in
    b.pending_dffs <- (Net q, edge, dref) :: b.pending_dffs;
    Net q

  let connect_dff b ~q ~d =
    let rec assign = function
      | [] -> invalid_arg "Builder.connect_dff: unknown placeholder"
      | (q', _, dref) :: rest ->
        if q' = q then
          match !dref with
          | Some _ -> invalid_arg "Builder.connect_dff: D already connected"
          | None -> dref := Some d
        else assign rest
    in
    assign b.pending_dffs

  let build b =
    let dff_cells =
      List.rev_map
        (fun (q, edge, dref) ->
           let d =
             match !dref with
             | Some d -> d
             | None -> invalid_arg "Builder.build: flip-flop with unconnected D"
           in
           let out = match q with Net n -> n | Zero | One -> assert false in
           { kind = (match edge with `Pos -> Dff_p | `Neg -> Dff_n);
             inputs = [| d |];
             out })
        b.pending_dffs
    in
    { name = b.name;
      num_nets = b.num_nets;
      cells = Array.of_list (List.rev b.cells_rev @ dff_cells);
      inputs = List.rev b.inputs_rev;
      outputs = List.rev b.outputs_rev }
end

let find_input t name = List.assoc_opt name t.inputs
let find_output t name = List.assoc_opt name t.outputs
let input_names t = List.map fst t.inputs
let output_names t = List.map fst t.outputs
let num_cells t = Array.length t.cells

let is_flip_flop_kind = function
  | Dff_p | Dff_n -> true
  | Not | And | Or | Nand | Nor | Xor | Xnor | Mux | Aoi3 | Oai3 | Aoi4 | Oai4 -> false

let num_flip_flops t =
  Array.fold_left
    (fun acc c -> if is_flip_flop_kind c.kind then acc + 1 else acc)
    0 t.cells

let is_combinational t = num_flip_flops t = 0

let fanout_counts t =
  let counts = Array.make t.num_nets 0 in
  let use = function
    | Net n -> counts.(n) <- counts.(n) + 1
    | Zero | One -> ()
  in
  Array.iter (fun (c : cell) -> Array.iter use c.inputs) t.cells;
  List.iter (fun (_, signals) -> Array.iter use signals) t.outputs;
  counts

let cells_by_kind t =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun c ->
       let prev = try Hashtbl.find tbl c.kind with Not_found -> 0 in
       Hashtbl.replace tbl c.kind (prev + 1))
    t.cells;
  List.filter_map
    (fun k -> match Hashtbl.find_opt tbl k with Some n -> Some (k, n) | None -> None)
    all_kinds

let cell_ancillas kind =
  match Qac_cells.Cells.find (kind_name kind) with
  | Some c -> c.Qac_cells.Cells.num_ancillas
  | None -> 0

let estimated_logical_vars t =
  let input_bits = List.fold_left (fun acc (_, nets) -> acc + Array.length nets) 0 t.inputs in
  Array.fold_left (fun acc c -> acc + 1 + cell_ancillas c.kind) input_bits t.cells

let pp_stats fmt t =
  Format.fprintf fmt "@[<v>netlist %s: %d nets, %d cells, %d inputs, %d outputs@," t.name
    t.num_nets (num_cells t) (List.length t.inputs) (List.length t.outputs);
  List.iter
    (fun (kind, n) -> Format.fprintf fmt "  %-5s x %d@," (kind_name kind) n)
    (cells_by_kind t);
  Format.fprintf fmt "@]"
