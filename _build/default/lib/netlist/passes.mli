(** Netlist optimization and lowering passes.

    These stand in for the Yosys/ABC optimization steps of section 4.2:
    dead-gate elimination keeps the qubit budget honest, and the tech-mapper
    rewrites generic logic into the larger Table 5 cells (NAND, NOR, XNOR,
    AOI/OAI), which "can reduce the required qubit count" (section 4.3.2).
    [unroll] implements the sequential-logic strategy of section 4.3.3:
    trading the time dimension for a spatial one. *)

val dce : Netlist.t -> Netlist.t
(** Remove cells whose outputs cannot reach a module output (through any
    chain of combinational logic and flip-flops).  Input ports are always
    preserved. *)

val techmap : Netlist.t -> Netlist.t
(** Pattern-match inverters over single-fanout AND/OR/XOR cones into
    NAND/NOR/XNOR/AOI3/OAI3/AOI4/OAI4 cells.  Behaviour-preserving. *)

val optimize : Netlist.t -> Netlist.t
(** [dce] followed by [techmap] followed by [dce]. *)

(** [unroll ?ff_names netlist ~steps] converts a sequential netlist into a
    purely combinational one by replicating the logic [steps] times:

    - every input port [p] becomes per-step ports [p@0 ... p@steps-1];
    - every output port likewise;
    - flip-flop [i] (in cell order; named by [ff_names] when given) reads its
      initial value from a new input port [<name>@init] and exposes its final
      value as output port [<name>@final];
    - the D value computed at step [t] becomes the Q value at step [t+1]
      (clock edges are ignored: time is discrete, section 4.3.3).

    A combinational netlist unrolls to per-step copies with no state ports. *)
val unroll : ?ff_names:string array -> Netlist.t -> steps:int -> Netlist.t
