type sequential_state = (int * bool) list
(* flip-flop output net -> stored bit *)

let eval_signal values = function
  | Netlist.Zero -> false
  | Netlist.One -> true
  | Netlist.Net n -> values.(n)

(* Evaluate the combinational cells in topological order; flip-flop outputs
   are pre-seeded from [state].  Returns the net values and the association
   of flip-flop output nets to their freshly computed D values. *)
let eval (t : Netlist.t) ~inputs ~state =
  let values = Array.make t.Netlist.num_nets false in
  List.iter (fun (net, bit) -> values.(net) <- bit) state;
  List.iter
    (fun (name, nets) ->
       match List.assoc_opt name inputs with
       | None -> invalid_arg ("Sim: missing input " ^ name)
       | Some bits ->
         if Array.length bits <> Array.length nets then
           invalid_arg ("Sim: width mismatch on input " ^ name);
         Array.iteri (fun i net -> values.(net) <- bits.(i)) nets)
    t.Netlist.inputs;
  let next_state = ref [] in
  Array.iter
    (fun (c : Netlist.cell) ->
       match c.kind with
       | Netlist.Dff_p | Netlist.Dff_n ->
         next_state := (c.out, eval_signal values c.inputs.(0)) :: !next_state
       | _ ->
         values.(c.out) <- Netlist.kind_logic c.kind (Array.map (eval_signal values) c.inputs))
    t.Netlist.cells;
  (values, !next_state)

let read_outputs (t : Netlist.t) values =
  List.map
    (fun (name, signals) -> (name, Array.map (eval_signal values) signals))
    t.Netlist.outputs

let comb t ~inputs =
  if not (Netlist.is_combinational t) then
    invalid_arg "Sim.comb: netlist contains flip-flops";
  let values, _ = eval t ~inputs ~state:[] in
  read_outputs t values

let initial ?(reset = false) (t : Netlist.t) =
  Array.to_list t.Netlist.cells
  |> List.filter_map (fun (c : Netlist.cell) ->
      match c.kind with
      | Netlist.Dff_p | Netlist.Dff_n -> Some (c.out, reset)
      | _ -> None)

let step t state ~inputs =
  let values, next_state = eval t ~inputs ~state in
  (read_outputs t values, next_state)

let run t ~inputs =
  let rec go state acc = function
    | [] -> List.rev acc
    | cycle :: rest ->
      let outputs, state = step t state ~inputs:cycle in
      go state (outputs :: acc) rest
  in
  go (initial t) [] inputs

let check_relation t ~assignment =
  let inputs =
    List.filter (fun (name, _) -> Netlist.find_input t name <> None) assignment
  in
  match comb t ~inputs with
  | exception Invalid_argument _ -> false
  | outputs ->
    List.for_all
      (fun (name, bits) ->
         match List.assoc_opt name assignment with
         | None -> true (* unconstrained output *)
         | Some expected -> bits = expected)
      outputs
