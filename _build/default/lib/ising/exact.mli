(** Exhaustive minimization of small Ising problems.

    Enumerates all [2^n] spin configurations in Gray-code order so each step
    costs only the flipped spin's degree.  Used to validate penalty functions
    (is the ground-state set exactly the gate's truth table?), to solve small
    compiled programs exactly, and as the ground truth in solver tests. *)

val max_vars : int
(** Enumeration guard; [solve] refuses problems larger than this (30). *)

type result = {
  ground_energy : float;
  ground_states : Problem.spin array list;  (** every optimal configuration *)
  first_excited_energy : float option;
      (** the lowest energy strictly above ground, when any state has one *)
}

val solve : ?limit:int -> Problem.t -> result
(** [limit] caps how many ground states are retained (default: unlimited).
    The count of ground states is always exact even when truncated — check
    [List.length] against [num_ground_states]. *)

val num_ground_states : Problem.t -> int

val gap : Problem.t -> float option
(** [first_excited_energy - ground_energy], the robustness margin the paper
    maximizes when choosing cell Hamiltonians (section 4.3.2). *)

val is_ground_state : Problem.t -> Problem.spin array -> bool

val brute_energy_histogram : Problem.t -> (float * int) list
(** All distinct energies with multiplicities, ascending.  Only for tiny
    problems (tests and table regeneration). *)
