(** QUBO (quadratic unconstrained binary optimization) form of a quadratic
    pseudo-Boolean function, over 0/1 variables.  qbsolv and the
    operations-research community work in this form (paper, section 3); the
    conversion to/from Ising spins is exact and preserves the energy of every
    configuration, including the constant offset. *)

type t = {
  num_vars : int;
  offset : float;
  linear : float array;
  quadratic : ((int * int) * float) array;  (** [i < j], sorted, deduplicated *)
}

val create :
  num_vars:int -> linear:float array -> quadratic:((int * int) * float) list ->
  ?offset:float -> unit -> t

val energy : t -> bool array -> float

val of_ising : Problem.t -> t
val to_ising : t -> Problem.t

(** [bools_of_spins sigma] maps -1 to [false] and +1 to [true]. *)
val bools_of_spins : Problem.spin array -> bool array

val spins_of_bools : bool array -> Problem.spin array
