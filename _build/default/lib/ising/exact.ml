let max_vars = 30

type result = {
  ground_energy : float;
  ground_states : Problem.spin array list;
  first_excited_energy : float option;
}

let epsilon = 1e-9

(* Visit all 2^n configurations in Gray-code order, calling [f sigma energy]
   on each.  Between consecutive configurations exactly one spin flips (the
   lowest set bit of the step counter), so the energy update is O(degree). *)
let iter_configurations p f =
  let n = p.Problem.num_vars in
  if n > max_vars then invalid_arg "Exact: problem too large for enumeration";
  let sigma = Array.make n (-1) in
  let e = ref (Problem.energy p sigma) in
  f sigma !e;
  if n > 0 then begin
    let steps = 1 lsl n in
    for step = 1 to steps - 1 do
      (* Index of the lowest set bit of [step]: the Gray-code flip position. *)
      let bit =
        let rec find i v = if v land 1 = 1 then i else find (i + 1) (v lsr 1) in
        find 0 step
      in
      e := !e +. Problem.energy_delta p sigma bit;
      sigma.(bit) <- -sigma.(bit);
      f sigma !e
    done
  end

let solve ?limit p =
  let best = ref infinity in
  let states = ref [] in
  let count = ref 0 in
  let second = ref infinity in
  let keep sigma =
    match limit with
    | Some l when !count > l -> ()
    | Some _ | None -> states := Array.copy sigma :: !states
  in
  iter_configurations p (fun sigma e ->
      if e < !best -. epsilon then begin
        (* Old ground level becomes a candidate for first-excited. *)
        if !best < !second then second := !best;
        best := e;
        states := [];
        count := 1;
        keep sigma
      end
      else if Float.abs (e -. !best) <= epsilon then begin
        incr count;
        keep sigma
      end
      else if e < !second then second := e);
  { ground_energy = !best;
    ground_states = List.rev !states;
    first_excited_energy = (if !second = infinity then None else Some !second) }

let num_ground_states p =
  let best = ref infinity in
  let count = ref 0 in
  iter_configurations p (fun _ e ->
      if e < !best -. epsilon then begin
        best := e;
        count := 1
      end
      else if Float.abs (e -. !best) <= epsilon then incr count);
  !count

let gap p =
  let r = solve ~limit:0 p in
  Option.map (fun second -> second -. r.ground_energy) r.first_excited_energy

let is_ground_state p sigma =
  let r = solve ~limit:0 p in
  Float.abs (Problem.energy p sigma -. r.ground_energy) <= epsilon

let brute_energy_histogram p =
  let tbl = Hashtbl.create 64 in
  iter_configurations p (fun _ e ->
      (* Bucket by rounded energy to merge float-identical levels. *)
      let key = Float.round (e /. epsilon) in
      let prev_e, prev_n = try Hashtbl.find tbl key with Not_found -> (e, 0) in
      Hashtbl.replace tbl key (prev_e, prev_n + 1));
  Hashtbl.fold (fun _ (e, n) acc -> (e, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
