lib/ising/problem.ml: Array Float Format Hashtbl List
