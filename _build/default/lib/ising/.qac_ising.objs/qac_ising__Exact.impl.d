lib/ising/exact.ml: Array Float Hashtbl List Option Problem
