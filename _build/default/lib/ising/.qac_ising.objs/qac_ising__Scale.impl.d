lib/ising/scale.ml: Array Float Problem
