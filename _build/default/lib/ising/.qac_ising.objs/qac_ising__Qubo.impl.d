lib/ising/qubo.ml: Array Hashtbl List Problem
