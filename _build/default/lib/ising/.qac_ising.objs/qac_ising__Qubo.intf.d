lib/ising/qubo.mli: Problem
