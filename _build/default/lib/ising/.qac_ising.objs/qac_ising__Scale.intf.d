lib/ising/scale.mli: Problem
