lib/ising/exact.mli: Problem
