lib/ising/problem.mli: Format
