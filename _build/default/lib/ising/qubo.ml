type t = {
  num_vars : int;
  offset : float;
  linear : float array;
  quadratic : ((int * int) * float) array;
}

let create ~num_vars ~linear ~quadratic ?(offset = 0.0) () =
  if Array.length linear <> num_vars then invalid_arg "Qubo.create: linear length mismatch";
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun ((i, j), v) ->
       if i = j then invalid_arg "Qubo.create: self-coupler";
       if i < 0 || j < 0 || i >= num_vars || j >= num_vars then
         invalid_arg "Qubo.create: index out of range";
       let key = if i < j then (i, j) else (j, i) in
       let prev = try Hashtbl.find tbl key with Not_found -> 0.0 in
       Hashtbl.replace tbl key (prev +. v))
    quadratic;
  let quadratic =
    Hashtbl.fold (fun key v acc -> if v = 0.0 then acc else (key, v) :: acc) tbl []
    |> Array.of_list
  in
  Array.sort (fun (a, _) (b, _) -> compare a b) quadratic;
  { num_vars; offset; linear = Array.copy linear; quadratic }

let energy q x =
  if Array.length x <> q.num_vars then invalid_arg "Qubo.energy: length mismatch";
  let e = ref q.offset in
  for i = 0 to q.num_vars - 1 do
    if x.(i) then e := !e +. q.linear.(i)
  done;
  Array.iter (fun ((i, j), v) -> if x.(i) && x.(j) then e := !e +. v) q.quadratic;
  !e

(* x_i = (1 + sigma_i) / 2, so
   a_i x_i           -> a_i/2 sigma_i + a_i/2
   b_ij x_i x_j      -> b_ij/4 (sigma_i sigma_j + sigma_i + sigma_j + 1). *)
let to_ising q =
  let b = Problem.Builder.create ~num_vars:q.num_vars () in
  Problem.Builder.add_offset b q.offset;
  Array.iteri
    (fun i a ->
       Problem.Builder.add_h b i (a /. 2.0);
       Problem.Builder.add_offset b (a /. 2.0))
    q.linear;
  Array.iter
    (fun ((i, j), v) ->
       Problem.Builder.add_j b i j (v /. 4.0);
       Problem.Builder.add_h b i (v /. 4.0);
       Problem.Builder.add_h b j (v /. 4.0);
       Problem.Builder.add_offset b (v /. 4.0))
    q.quadratic;
  let p = Problem.Builder.build b in
  if p.Problem.num_vars = q.num_vars then p
  else Problem.relabel p (Array.init q.num_vars (fun i -> i)) ~num_vars:q.num_vars

(* sigma_i = 2 x_i - 1, so
   h_i sigma_i          -> 2 h_i x_i - h_i
   J_ij sigma_i sigma_j -> 4 J_ij x_i x_j - 2 J_ij x_i - 2 J_ij x_j + J_ij. *)
let of_ising (p : Problem.t) =
  let linear = Array.make p.Problem.num_vars 0.0 in
  let offset = ref p.Problem.offset in
  Array.iteri
    (fun i h ->
       linear.(i) <- linear.(i) +. (2.0 *. h);
       offset := !offset -. h)
    p.Problem.h;
  let quadratic = ref [] in
  Array.iter
    (fun ((i, j), v) ->
       quadratic := ((i, j), 4.0 *. v) :: !quadratic;
       linear.(i) <- linear.(i) -. (2.0 *. v);
       linear.(j) <- linear.(j) -. (2.0 *. v);
       offset := !offset +. v)
    p.Problem.couplers;
  create ~num_vars:p.Problem.num_vars ~linear ~quadratic:!quadratic ~offset:!offset ()

let bools_of_spins sigma = Array.map (fun s -> s > 0) sigma
let spins_of_bools x = Array.map (fun b -> if b then 1 else -1) x
