lib/edif2qmasm/edif2qmasm.ml: Array Buffer Hashtbl List Printf Qac_cells Qac_netlist Qac_qmasm
