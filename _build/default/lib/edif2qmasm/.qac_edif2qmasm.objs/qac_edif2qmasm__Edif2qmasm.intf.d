lib/edif2qmasm/edif2qmasm.mli: Qac_netlist Qac_qmasm
