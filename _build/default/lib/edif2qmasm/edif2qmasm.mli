(** The EDIF -> QMASM compilation step (section 4.3): every netlist cell
    becomes a [!use_macro] instantiation of its Table 5 standard-cell macro,
    every net becomes same-value chains among the pins it joins, and
    constants become ground/power weights (section 4.3.4).

    Sequential netlists must be time-unrolled first
    ({!Qac_netlist.Passes.unroll}); a DFF cell reaching this stage is
    instantiated as a [DFF_P]/[DFF_N] macro, which relates D and Q within
    one time step (a steady-state constraint). *)

(** Symbol naming in the generated QMASM:
    - bit [i] of a multi-bit port [p] is [p[i]]; single-bit ports keep
      their name;
    - internal nets are [$7] (the [$] marks them qmasm-internal);
    - cell instances are [id00001], [id00002], ... in netlist cell order,
      so pins are e.g. [id00003.A]. *)

val port_symbol : width:int -> string -> int -> string

val stdcell_filename : string
(** ["stdcell.qmasm"], the include name emitted at the top of every
    generated program. *)

(** [resolve name] maps {!stdcell_filename} to the generated standard-cell
    library text; pass it (or a wrapper) to [Qmasm.load]. *)
val resolve : string -> string option

(** [convert netlist] produces QMASM source.  The text begins with
    [!include "stdcell.qmasm"]; program inputs/outputs keep their port
    names, so pins like [--pin "C[7:0] := 10001111"] can be applied by name. *)
val convert : Qac_netlist.Netlist.t -> string

(** [load ?options netlist] converts and assembles in one step: the
    generated QMASM is parsed, macros expanded, and the logical Ising
    problem produced. *)
val load : ?options:Qac_qmasm.Assemble.options -> Qac_netlist.Netlist.t -> Qac_qmasm.Assemble.t

val line_count : string -> int
(** Statement-bearing lines of generated QMASM, excluding the included
    standard-cell library (the section 6.1 metric: the paper reports 736
    lines + 232 library lines for Listing 7). *)
