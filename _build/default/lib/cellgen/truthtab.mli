(** Truth tables as penalty-function specifications.

    A table lists the *valid* rows of a relation over [num_vars] Boolean
    variables; the derived Hamiltonian must attain its minimum exactly on
    those rows (paper, section 4.3.2).  Variables are ordered
    [inputs..., output, ancillas...]. *)

type t = {
  num_vars : int;
  valid : bool array list;  (** each of length [num_vars]; no duplicates *)
}

val create : num_vars:int -> bool array list -> t

(** [of_function ~num_inputs f] builds the relation [Y = f(inputs)] over
    [num_inputs + 1] variables (output last), e.g. an AND gate's three-column
    table from [fun v -> v.(0) && v.(1)]. *)
val of_function : num_inputs:int -> (bool array -> bool) -> t

(** [augment table ~ancillas] appends ancilla columns: [ancillas] gives, for
    each valid row (in order), the values of the new variables.  This is the
    Table 3 operation. *)
val augment : t -> ancillas:bool array list -> t

val is_valid : t -> bool array -> bool

val all_rows : num_vars:int -> bool array list
(** All [2^num_vars] assignments, in binary counting order (variable 0 is the
    most significant bit, matching the row order of Tables 2 and 4). *)

val spins_of_row : bool array -> Qac_ising.Problem.spin array

val row_of_spins : Qac_ising.Problem.spin array -> bool array

val equal : t -> t -> bool

val pp_row : Format.formatter -> bool array -> unit
