type relation = Le | Ge | Eq

type constr = {
  coeffs : float array;
  relation : relation;
  rhs : float;
}

type objective = Maximize | Minimize

type outcome =
  | Optimal of { value : float; solution : float array }
  | Infeasible
  | Unbounded

let eps = 1e-9

(* Simplex over the standard form min c.x, A x = b, x >= 0, b >= 0.

   The tableau has [m] constraint rows plus one cost row (row m); column
   [cols - 1] is the right-hand side.  [basis.(r)] names the basic variable
   of row [r].  Entering/leaving variables are chosen with Bland's rule so
   the method terminates even on degenerate cell-derivation systems. *)

type tableau = {
  a : float array array;  (* (m + 1) x cols, last row = reduced costs *)
  basis : int array;
  m : int;
  cols : int;
}

let pivot t ~row ~col =
  let pivot_val = t.a.(row).(col) in
  let r = t.a.(row) in
  for c = 0 to t.cols - 1 do
    r.(c) <- r.(c) /. pivot_val
  done;
  for i = 0 to t.m do
    if i <> row then begin
      let factor = t.a.(i).(col) in
      if Float.abs factor > 0.0 then begin
        let ri = t.a.(i) in
        for c = 0 to t.cols - 1 do
          ri.(c) <- ri.(c) -. (factor *. r.(c))
        done
      end
    end
  done;
  t.basis.(row) <- col

(* Returns [`Optimal] or [`Unbounded]. *)
let run_simplex t ~num_cols_usable =
  let rec step () =
    (* Bland: entering variable = lowest-index column with negative reduced
       cost. *)
    let entering =
      let rec find c =
        if c >= num_cols_usable then None
        else if t.a.(t.m).(c) < -.eps then Some c
        else find (c + 1)
      in
      find 0
    in
    match entering with
    | None -> `Optimal
    | Some col ->
      (* Ratio test; ties broken by smallest basis variable (Bland). *)
      let leaving = ref None in
      for row = 0 to t.m - 1 do
        let a_rc = t.a.(row).(col) in
        if a_rc > eps then begin
          let ratio = t.a.(row).(t.cols - 1) /. a_rc in
          match !leaving with
          | None -> leaving := Some (row, ratio)
          | Some (best_row, best_ratio) ->
            if
              ratio < best_ratio -. eps
              || (Float.abs (ratio -. best_ratio) <= eps
                  && t.basis.(row) < t.basis.(best_row))
            then leaving := Some (row, ratio)
        end
      done;
      (match !leaving with
       | None -> `Unbounded
       | Some (row, _) ->
         pivot t ~row ~col;
         step ())
  in
  step ()

let solve objective obj constraints ~bounds =
  let n = Array.length obj in
  List.iter
    (fun c ->
       if Array.length c.coeffs <> n then invalid_arg "Lp.solve: coefficient length mismatch")
    constraints;
  if Array.length bounds <> n then invalid_arg "Lp.solve: bounds length mismatch";
  (* Fold finite bounds in as ordinary constraints, then treat every
     variable as free and split it into a positive and a negative part. *)
  let bound_constraints =
    let unit_row i = Array.init n (fun k -> if k = i then 1.0 else 0.0) in
    List.concat
      (List.init n (fun i ->
           let lo, hi = bounds.(i) in
           let lower =
             if lo > neg_infinity then [ { coeffs = unit_row i; relation = Ge; rhs = lo } ]
             else []
           in
           let upper =
             if hi < infinity then [ { coeffs = unit_row i; relation = Le; rhs = hi } ]
             else []
           in
           lower @ upper))
  in
  let constraints = constraints @ bound_constraints in
  let m = List.length constraints in
  (* Columns: 2n split variables, then one slack/surplus per inequality,
     then one artificial per row, then RHS. *)
  let num_slacks =
    List.fold_left (fun acc c -> if c.relation = Eq then acc else acc + 1) 0 constraints
  in
  let split = 2 * n in
  let art0 = split + num_slacks in
  let cols = art0 + m + 1 in
  let a = Array.make_matrix (m + 1) cols 0.0 in
  let basis = Array.make m 0 in
  let next_slack = ref split in
  List.iteri
    (fun row c ->
       let sign = if c.rhs < 0.0 then -1.0 else 1.0 in
       for i = 0 to n - 1 do
         a.(row).(2 * i) <- sign *. c.coeffs.(i);
         a.(row).((2 * i) + 1) <- -.sign *. c.coeffs.(i)
       done;
       a.(row).(cols - 1) <- sign *. c.rhs;
       (match c.relation with
        | Eq -> ()
        | Le ->
          a.(row).(!next_slack) <- sign *. 1.0;
          incr next_slack
        | Ge ->
          a.(row).(!next_slack) <- sign *. -1.0;
          incr next_slack);
       a.(row).(art0 + row) <- 1.0;
       basis.(row) <- art0 + row)
    constraints;
  let t = { a; basis; m; cols } in
  (* Phase 1: minimize the sum of artificials.  The cost row starts as
     -(sum of constraint rows) restricted to non-artificial columns so the
     artificial basis prices out to zero. *)
  for c = 0 to cols - 1 do
    let s = ref 0.0 in
    for row = 0 to m - 1 do
      s := !s +. a.(row).(c)
    done;
    a.(m).(c) <- if c >= art0 && c < cols - 1 then 0.0 else -. !s
  done;
  (match run_simplex t ~num_cols_usable:art0 with
   | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
   | `Optimal -> ());
  let phase1_value = -.t.a.(m).(cols - 1) in
  if phase1_value > 1e-7 then Infeasible
  else begin
    (* Drive any artificial variables that remain basic (at value 0) out of
       the basis when a usable pivot exists; rows with no usable pivot are
       redundant and harmless. *)
    for row = 0 to m - 1 do
      if t.basis.(row) >= art0 then begin
        let col = ref (-1) in
        for c = 0 to art0 - 1 do
          if !col < 0 && Float.abs t.a.(row).(c) > eps then col := c
        done;
        if !col >= 0 then pivot t ~row ~col:!col
      end
    done;
    (* Phase 2: install the real objective (in min form) and price out the
       current basis. *)
    let minimize_obj =
      match objective with
      | Minimize -> Array.copy obj
      | Maximize -> Array.map (fun v -> -.v) obj
    in
    for c = 0 to cols - 1 do
      t.a.(m).(c) <- 0.0
    done;
    for i = 0 to n - 1 do
      t.a.(m).(2 * i) <- minimize_obj.(i);
      t.a.(m).((2 * i) + 1) <- -.minimize_obj.(i)
    done;
    for row = 0 to m - 1 do
      let b = t.basis.(row) in
      let cost = t.a.(m).(b) in
      if Float.abs cost > 0.0 then
        for c = 0 to cols - 1 do
          t.a.(m).(c) <- t.a.(m).(c) -. (cost *. t.a.(row).(c))
        done
    done;
    match run_simplex t ~num_cols_usable:art0 with
    | `Unbounded -> Unbounded
    | `Optimal ->
      let value_min = -.t.a.(m).(cols - 1) in
      let raw = Array.make art0 0.0 in
      for row = 0 to m - 1 do
        if t.basis.(row) < art0 then raw.(t.basis.(row)) <- t.a.(row).(cols - 1)
      done;
      let solution = Array.init n (fun i -> raw.(2 * i) -. raw.((2 * i) + 1)) in
      let value = match objective with Minimize -> value_min | Maximize -> -.value_min in
      Optimal { value; solution }
  end
