type t = {
  num_vars : int;
  valid : bool array list;
}

let create ~num_vars valid =
  List.iter
    (fun row ->
       if Array.length row <> num_vars then invalid_arg "Truthtab.create: row width mismatch")
    valid;
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun row ->
       if Hashtbl.mem tbl row then invalid_arg "Truthtab.create: duplicate row";
       Hashtbl.add tbl row ())
    valid;
  { num_vars; valid }

let all_rows ~num_vars =
  List.init (1 lsl num_vars) (fun code ->
      Array.init num_vars (fun bit -> (code lsr (num_vars - 1 - bit)) land 1 = 1))

let of_function ~num_inputs f =
  let rows =
    List.map
      (fun inputs -> Array.append inputs [| f inputs |])
      (all_rows ~num_vars:num_inputs)
  in
  create ~num_vars:(num_inputs + 1) rows

let augment table ~ancillas =
  if List.length ancillas <> List.length table.valid then
    invalid_arg "Truthtab.augment: one ancilla row required per valid row";
  let widths = List.map Array.length ancillas in
  let width = match widths with [] -> 0 | w :: _ -> w in
  if List.exists (fun w -> w <> width) widths then
    invalid_arg "Truthtab.augment: ragged ancilla rows";
  create ~num_vars:(table.num_vars + width)
    (List.map2 Array.append table.valid ancillas)

let is_valid table row = List.exists (fun v -> v = row) table.valid

let spins_of_row row = Array.map (fun b -> if b then 1 else -1) row
let row_of_spins spins = Array.map (fun s -> s > 0) spins

let equal a b =
  a.num_vars = b.num_vars
  && List.length a.valid = List.length b.valid
  && List.for_all (fun row -> is_valid b row) a.valid

let pp_row fmt row =
  Array.iter (fun b -> Format.pp_print_char fmt (if b then 'T' else 'F')) row
