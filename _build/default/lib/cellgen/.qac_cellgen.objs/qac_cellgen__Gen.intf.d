lib/cellgen/gen.mli: Qac_ising Truthtab
