lib/cellgen/lp.ml: Array Float List
