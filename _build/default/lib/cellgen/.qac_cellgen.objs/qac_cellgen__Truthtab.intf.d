lib/cellgen/truthtab.mli: Format Qac_ising
