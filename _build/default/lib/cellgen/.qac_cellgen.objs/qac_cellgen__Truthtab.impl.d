lib/cellgen/truthtab.ml: Array Format Hashtbl List
