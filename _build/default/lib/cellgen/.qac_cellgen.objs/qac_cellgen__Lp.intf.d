lib/cellgen/lp.mli:
