lib/cellgen/gen.ml: Array Exact Float List Lp Option Printf Problem Qac_ising Random Scale Truthtab
