(** A small dense linear-programming solver (two-phase primal simplex with
    Bland's anti-cycling rule).

    The paper derives each gate's penalty function by solving a system of
    equalities and inequalities over the h and J coefficients "using, e.g.,
    MiniZinc" (section 4.3.2).  This module is our from-scratch substitute:
    the gap-maximization problem is a linear program over a handful of
    variables, far below the scale where sparse or revised simplex matters. *)

type relation = Le | Ge | Eq

type constr = {
  coeffs : float array;  (** one coefficient per variable *)
  relation : relation;
  rhs : float;
}

type objective = Maximize | Minimize

type outcome =
  | Optimal of { value : float; solution : float array }
  | Infeasible
  | Unbounded

(** [solve objective obj_coeffs constraints ~bounds] optimizes
    [obj_coeffs . x] subject to the constraints and per-variable bounds
    [(lo, hi)] (use [neg_infinity]/[infinity] for free variables).  All
    variables are otherwise free. *)
val solve :
  objective -> float array -> constr list -> bounds:(float * float) array -> outcome
