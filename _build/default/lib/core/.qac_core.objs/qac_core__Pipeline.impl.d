lib/core/pipeline.ml: Array Format Hashtbl List Problem Qac_anneal Qac_cells Qac_chimera Qac_edif Qac_edif2qmasm Qac_embed Qac_ising Qac_netlist Qac_qmasm Qac_roofdual Qac_verilog String
