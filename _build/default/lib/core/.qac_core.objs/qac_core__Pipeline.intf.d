lib/core/pipeline.mli: Qac_anneal Qac_chimera Qac_embed Qac_netlist Qac_qmasm Qac_verilog
