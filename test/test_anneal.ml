open Qac_ising
open Qac_anneal

let random_problem ~seed ~n ~density =
  let st = Random.State.make [| seed |] in
  let h = Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0) in
  let j = ref [] in
  for i = 0 to n - 1 do
    for k = i + 1 to n - 1 do
      if Random.State.float st 1.0 < density then
        j := ((i, k), Random.State.float st 2.0 -. 1.0) :: !j
    done
  done;
  Problem.create ~num_vars:n ~h ~j:!j ()

let rng_tests =
  [ Alcotest.test_case "deterministic streams" `Quick (fun () ->
        let a = Rng.create 1 and b = Rng.create 1 in
        for _ = 1 to 100 do
          Alcotest.(check (float 0.0)) "same" (Rng.float a) (Rng.float b)
        done);
    Alcotest.test_case "floats in [0,1)" `Quick (fun () ->
        let r = Rng.create 2 in
        for _ = 1 to 1000 do
          let v = Rng.float r in
          Alcotest.(check bool) "range" true (v >= 0.0 && v < 1.0)
        done);
    Alcotest.test_case "int bounds respected" `Quick (fun () ->
        let r = Rng.create 3 in
        for _ = 1 to 1000 do
          let v = Rng.int r 7 in
          Alcotest.(check bool) "range" true (v >= 0 && v < 7)
        done);
    Alcotest.test_case "rough uniformity" `Quick (fun () ->
        let r = Rng.create 4 in
        let counts = Array.make 4 0 in
        for _ = 1 to 4000 do
          let v = Rng.int r 4 in
          counts.(v) <- counts.(v) + 1
        done;
        Array.iter
          (fun c -> Alcotest.(check bool) "within 20%" true (c > 800 && c < 1200))
          counts);
    Alcotest.test_case "shuffle is a permutation" `Quick (fun () ->
        let r = Rng.create 5 in
        let arr = Array.init 20 (fun i -> i) in
        Rng.shuffle r arr;
        let sorted = Array.copy arr in
        Array.sort compare sorted;
        Alcotest.(check (array int)) "permutation" (Array.init 20 (fun i -> i)) sorted);
  ]

let sampler_tests =
  [ Alcotest.test_case "response aggregates duplicates" `Quick (fun () ->
        let p = Problem.create ~num_vars:2 ~h:[| 1.0; -1.0 |] ~j:[] () in
        let reads = [ [| 1; 1 |]; [| -1; 1 |]; [| 1; 1 |] ] in
        let r = Sampler.response_of_reads p reads in
        Alcotest.(check int) "reads" 3 r.Sampler.num_reads;
        Alcotest.(check int) "distinct" 2 (Sampler.num_distinct r);
        let best = Sampler.best r in
        Alcotest.(check (float 1e-9)) "best energy" (-2.0) best.Sampler.energy;
        Alcotest.(check int) "best occurrences" 1 best.Sampler.num_occurrences);
    Alcotest.test_case "samples sorted by energy" `Quick (fun () ->
        let p = random_problem ~seed:1 ~n:6 ~density:0.5 in
        let rng = Rng.create 0 in
        let reads = List.init 50 (fun _ -> Rng.spins rng 6) in
        let r = Sampler.response_of_reads p reads in
        let energies = List.map (fun s -> s.Sampler.energy) r.Sampler.samples in
        Alcotest.(check bool) "sorted" true (List.sort compare energies = energies));
  ]

let check_finds_ground ?(n = 12) ~name sample_fn =
  Alcotest.test_case name `Quick (fun () ->
      for seed = 1 to 5 do
        let p = random_problem ~seed ~n ~density:0.4 in
        let exact = Exact.solve ~limit:1 p in
        let response = sample_fn p in
        let best = Sampler.best response in
        Alcotest.(check (float 1e-6))
          (Printf.sprintf "seed %d ground energy" seed)
          exact.Exact.ground_energy best.Sampler.energy
      done)

let sa_tests =
  [ check_finds_ground ~name:"SA finds exact ground states (12 vars)" (fun p ->
        Sa.sample ~params:{ Sa.default_params with Sa.num_reads = 30 } p);
    Alcotest.test_case "SA deterministic given seed" `Quick (fun () ->
        let p = random_problem ~seed:9 ~n:10 ~density:0.5 in
        let r1 = Sa.sample ~params:{ Sa.default_params with Sa.num_reads = 5 } p in
        let r2 = Sa.sample ~params:{ Sa.default_params with Sa.num_reads = 5 } p in
        let spins r = List.map (fun s -> Array.to_list s.Sampler.spins) r.Sampler.samples in
        Alcotest.(check bool) "same samples" true (spins r1 = spins r2));
    Alcotest.test_case "SA respects explicit beta range" `Quick (fun () ->
        let p = random_problem ~seed:2 ~n:8 ~density:0.5 in
        let params =
          { Sa.default_params with Sa.beta_min = Some 0.1; beta_max = Some 10.0 }
        in
        let r = Sa.sample ~params p in
        Alcotest.(check bool) "nonempty" true (r.Sampler.samples <> []));
    Alcotest.test_case "SA on ferromagnetic ring lands in one of two grounds" `Quick
      (fun () ->
         let n = 16 in
         let j = List.init n (fun i -> ((i, (i + 1) mod n), -1.0)) in
         let j = List.map (fun ((a, b), v) -> ((min a b, max a b), v)) j in
         let p = Problem.create ~num_vars:n ~h:(Array.make n 0.0) ~j () in
         let r = Sa.sample ~params:{ Sa.default_params with Sa.num_reads = 20 } p in
         let best = Sampler.best r in
         Alcotest.(check (float 1e-9)) "energy" (-.float_of_int n) best.Sampler.energy);
    Alcotest.test_case "schedule endpoints" `Quick (fun () ->
        let p = random_problem ~seed:3 ~n:5 ~density:0.5 in
        let s = Schedule.create ~beta_min:0.5 ~beta_max:8.0 p in
        Alcotest.(check (float 1e-9)) "start" 0.5 (Schedule.beta s ~step:0 ~num_steps:100);
        Alcotest.(check (float 1e-9)) "end" 8.0 (Schedule.beta s ~step:99 ~num_steps:100));
  ]

let other_solver_tests =
  [ check_finds_ground ~name:"tabu finds exact ground states (12 vars)" (fun p ->
        Tabu.sample p);
    check_finds_ground ~name:"exact sampler through the response interface" (fun p ->
        Exact_sampler.sample p);
    Alcotest.test_case "exact sampler returns all ground states" `Quick (fun () ->
        let p = Problem.create ~num_vars:2 ~h:[| 0.0; 0.0 |] ~j:[ ((0, 1), -1.0) ] () in
        let r = Exact_sampler.sample p in
        Alcotest.(check int) "two grounds" 2 (List.length r.Sampler.samples));
    Alcotest.test_case "greedy descent reaches a local minimum" `Quick (fun () ->
        let p = random_problem ~seed:4 ~n:15 ~density:0.4 in
        let rng = Rng.create 1 in
        let spins = Rng.spins rng 15 in
        ignore (Greedy.descend p spins);
        for i = 0 to 14 do
          Alcotest.(check bool) "no improving flip" true
            (Problem.energy_delta p spins i >= -1e-9)
        done);
    Alcotest.test_case "qbsolv solves small problems exactly" `Quick (fun () ->
        let p = random_problem ~seed:5 ~n:10 ~density:0.5 in
        let exact = Exact.solve ~limit:1 p in
        let r = Qbsolv.sample p in
        Alcotest.(check (float 1e-6)) "ground" exact.Exact.ground_energy
          (Sampler.best r).Sampler.energy);
    Alcotest.test_case "qbsolv decomposes a 60-var ferromagnetic chain" `Quick (fun () ->
        let n = 60 in
        let j = List.init (n - 1) (fun i -> ((i, i + 1), -1.0)) in
        let p = Problem.create ~num_vars:n ~h:(Array.make n 0.0) ~j () in
        let r = Qbsolv.sample p in
        Alcotest.(check (float 1e-9)) "chain ground" (-.float_of_int (n - 1))
          (Sampler.best r).Sampler.energy);
    Alcotest.test_case "qbsolv beats or matches greedy on a 50-var glass" `Quick (fun () ->
        let p = random_problem ~seed:6 ~n:50 ~density:0.2 in
        let rng = Rng.create 3 in
        let greedy_spins = Rng.spins rng 50 in
        ignore (Greedy.descend p greedy_spins);
        let greedy_energy = Problem.energy p greedy_spins in
        let r = Qbsolv.sample p in
        Alcotest.(check bool) "qbsolv <= greedy" true
          ((Sampler.best r).Sampler.energy <= greedy_energy +. 1e-9));
    Alcotest.test_case "merge combines responses" `Quick (fun () ->
        let p = Problem.create ~num_vars:1 ~h:[| 1.0 |] ~j:[] () in
        let r1 = Sampler.response_of_reads p [ [| 1 |] ] in
        let r2 = Sampler.response_of_reads p [ [| -1 |]; [| 1 |] ] in
        let m = Sampler.merge p [ r1; r2 ] in
        Alcotest.(check int) "reads" 3 m.Sampler.num_reads;
        Alcotest.(check int) "distinct" 2 (Sampler.num_distinct m));
  ]

let suite = rng_tests @ sampler_tests @ sa_tests @ other_solver_tests

let sqa_tests =
  [ check_finds_ground ~name:"SQA finds exact ground states (12 vars)" (fun p ->
        Sqa.sample ~params:{ Sqa.default_params with Sqa.num_reads = 30 } p);
    Alcotest.test_case "SQA deterministic given seed" `Quick (fun () ->
        let p = random_problem ~seed:21 ~n:10 ~density:0.5 in
        let run () =
          Sqa.sample ~params:{ Sqa.default_params with Sqa.num_reads = 5 } p
        in
        let spins r = List.map (fun s -> Array.to_list s.Sampler.spins) r.Sampler.samples in
        Alcotest.(check bool) "same" true (spins (run ()) = spins (run ())));
    Alcotest.test_case "j_perp grows as gamma shrinks (tunneling freeze-out)" `Quick
      (fun () ->
         (* Indirect check through sampling behaviour: SQA with a huge final
            gamma keeps replicas independent and rarely agrees; with a tiny
            final gamma the replicas lock.  We check determinism of the
            physics constant via a monotonicity probe on a 2-spin problem. *)
         let p = Problem.create ~num_vars:2 ~h:[| 0.0; 0.0 |] ~j:[ ((0, 1), -1.0) ] () in
         let r =
           Sqa.sample
             ~params:{ Sqa.default_params with Sqa.num_reads = 20; num_sweeps = 100 }
             p
         in
         let best = Sampler.best r in
         Alcotest.(check (float 1e-9)) "ferromagnetic ground" (-1.0) best.Sampler.energy);
    Alcotest.test_case "SQA on frustrated triangle reaches ground" `Quick (fun () ->
        let p =
          Problem.create ~num_vars:3 ~h:[| 0.0; 0.0; 0.0 |]
            ~j:[ ((0, 1), 1.0); ((1, 2), 1.0); ((0, 2), 1.0) ]
            ()
        in
        let r = Sqa.sample p in
        Alcotest.(check (float 1e-9)) "energy" (-1.0) (Sampler.best r).Sampler.energy);
  ]

let suite = suite @ sqa_tests

let histogram_tests =
  [ Alcotest.test_case "histogram covers all reads" `Quick (fun () ->
        let p = random_problem ~seed:31 ~n:8 ~density:0.5 in
        let r = Sa.sample ~params:{ Sa.default_params with Sa.num_reads = 40 } p in
        let text = Format.asprintf "%a" (Sampler.pp_histogram ?buckets:None) r in
        Alcotest.(check bool) "mentions reads" true
          (Qac_qmasm.Str_split.find_substring text "40 reads" <> None));
    Alcotest.test_case "histogram of empty response" `Quick (fun () ->
        let text =
          Format.asprintf "%a" (Sampler.pp_histogram ?buckets:None)
            { Sampler.samples = []; num_reads = 0; elapsed_seconds = 0.0; timed_out = false }
        in
        Alcotest.(check bool) "no samples" true
          (Qac_qmasm.Str_split.find_substring text "no samples" <> None));
  ]

let suite = suite @ histogram_tests

let qbsolv_subsolver_tests =
  [ Alcotest.test_case "qbsolv with a custom sub-solver" `Quick (fun () ->
        (* Sub-solver = tabu; must still reach the ground of an easy chain. *)
        let n = 40 in
        let j = List.init (n - 1) (fun i -> ((i, i + 1), -1.0)) in
        let p = Problem.create ~num_vars:n ~h:(Array.make n 0.0) ~j () in
        let sub_solver sub =
          Tabu.sample ~params:{ Tabu.default_params with Tabu.num_restarts = 8 } sub
        in
        let r =
          Qbsolv.sample
            ~params:{ Qbsolv.default_params with Qbsolv.num_repeats = 25; max_rounds = 600 }
            ~sub_solver p
        in
        (* A stochastic sub-solver composed with greedy acceptance is not
           guaranteed to clear every domain wall; require near-ground (the
           seeded run reaches -35 of -39) and a massive improvement over
           random (expected energy ~0). *)
        Alcotest.(check bool) "near ground" true
          ((Sampler.best r).Sampler.energy <= -.float_of_int (n - 1) +. 6.0));
    Alcotest.test_case "qbsolv sub-solver receives frozen fields" `Quick (fun () ->
        (* Record subproblem sizes to confirm decomposition actually ran. *)
        let sizes = ref [] in
        let sub_solver sub =
          sizes := sub.Problem.num_vars :: !sizes;
          let result = Exact.solve ~limit:1 sub in
          Sampler.response_of_reads sub result.Exact.ground_states
        in
        let p = random_problem ~seed:12 ~n:40 ~density:0.15 in
        let _ =
          Qbsolv.sample ~params:{ Qbsolv.default_params with Qbsolv.sub_size = 15 }
            ~sub_solver p
        in
        Alcotest.(check bool) "decomposed" true (!sizes <> []);
        List.iter (fun s -> Alcotest.(check bool) "sized" true (s <= 15)) !sizes);
  ]

let suite = suite @ qbsolv_subsolver_tests

(* --- Sampler.merge across multi-batch responses ----------------------------- *)

let merge_batch_tests =
  [ Alcotest.test_case "merge aggregates occurrences across batches" `Quick
      (fun () ->
         let p = random_problem ~seed:9 ~n:6 ~density:0.5 in
         let batch seed n =
           Sa.sample
             ~params:{ Sa.default_params with Sa.num_reads = n; num_sweeps = 30; seed }
             p
         in
         let batches = [ batch 1 10; batch 2 15; batch 3 5 ] in
         let m = Sampler.merge p batches in
         Alcotest.(check int) "reads sum" 30 m.Sampler.num_reads;
         Alcotest.(check int) "occurrences sum" 30
           (List.fold_left
              (fun acc s -> acc + s.Sampler.num_occurrences)
              0 m.Sampler.samples);
         (* Per-configuration occurrences are the sum over batches. *)
         let count_in (r : Sampler.response) spins =
           List.fold_left
             (fun acc (s : Sampler.sample) ->
                if s.Sampler.spins = spins then acc + s.Sampler.num_occurrences
                else acc)
             0 r.Sampler.samples
         in
         List.iter
           (fun (s : Sampler.sample) ->
              Alcotest.(check int) "per-config sum" s.Sampler.num_occurrences
                (List.fold_left
                   (fun acc b -> acc + count_in b s.Sampler.spins)
                   0 batches))
           m.Sampler.samples);
    Alcotest.test_case "merged energies match the Hamiltonian" `Quick (fun () ->
        let p = random_problem ~seed:10 ~n:8 ~density:0.4 in
        let batch seed =
          Sa.sample
            ~params:{ Sa.default_params with Sa.num_reads = 8; num_sweeps = 30; seed }
            p
        in
        let m = Sampler.merge p [ batch 4; batch 5 ] in
        List.iter
          (fun (s : Sampler.sample) ->
             Alcotest.(check (float 1e-9)) "energy consistent"
               (Problem.energy p s.Sampler.spins)
               s.Sampler.energy)
          m.Sampler.samples);
    Alcotest.test_case "merge is order independent" `Quick (fun () ->
        let p = random_problem ~seed:11 ~n:6 ~density:0.5 in
        let batch seed =
          Sa.sample
            ~params:{ Sa.default_params with Sa.num_reads = 7; num_sweeps = 25; seed }
            p
        in
        let b1 = batch 6 and b2 = batch 7 and b3 = batch 8 in
        let a = Sampler.merge p [ b1; b2; b3 ] in
        let b = Sampler.merge p [ b3; b1; b2 ] in
        Alcotest.(check bool) "same samples" true
          (a.Sampler.samples = b.Sampler.samples));
    Alcotest.test_case "read ordering is deterministic under 1 vs 4 domains" `Quick
      (fun () ->
         let p = random_problem ~seed:12 ~n:10 ~density:0.3 in
         let params = { Sa.default_params with Sa.num_reads = 40; num_sweeps = 30 } in
         let r1 = Parallel.sample_sa ~num_threads:1 ~params p in
         let r4 = Parallel.sample_sa ~num_threads:4 ~params p in
         Alcotest.(check int) "reads" r1.Sampler.num_reads r4.Sampler.num_reads;
         Alcotest.(check bool) "identical ordered samples" true
           (r1.Sampler.samples = r4.Sampler.samples)) ]

let suite = suite @ merge_batch_tests

(* --- Deadlines: best-so-far partial results --------------------------------- *)

let past = 0.0 (* an absolute deadline that is always already expired *)

let timeout_tests =
  [ Alcotest.test_case "SA past deadline returns partial reads, flagged" `Quick
      (fun () ->
         let p = random_problem ~seed:13 ~n:10 ~density:0.4 in
         let r = Sa.sample ~deadline:past p in
         Alcotest.(check bool) "flagged" true r.Sampler.timed_out;
         Alcotest.(check bool) "kept at least one read" true (r.Sampler.num_reads >= 1);
         Alcotest.(check bool) "fewer than requested" true
           (r.Sampler.num_reads < Sa.default_params.Sa.num_reads));
    Alcotest.test_case "SA future deadline is bit-identical to none" `Quick (fun () ->
        let p = random_problem ~seed:14 ~n:10 ~density:0.4 in
        let params = { Sa.default_params with Sa.num_reads = 10; num_sweeps = 40 } in
        let plain = Sa.sample ~params p in
        let bounded = Sa.sample ~params ~deadline:(Unix.gettimeofday () +. 3600.0) p in
        Alcotest.(check bool) "not flagged" false bounded.Sampler.timed_out;
        Alcotest.(check bool) "same samples" true
          (plain.Sampler.samples = bounded.Sampler.samples));
    Alcotest.test_case "SQA and tabu past deadlines flag and stay partial" `Quick
      (fun () ->
         let p = random_problem ~seed:15 ~n:8 ~density:0.4 in
         let sqa = Sqa.sample ~deadline:past p in
         Alcotest.(check bool) "sqa flagged" true sqa.Sampler.timed_out;
         Alcotest.(check bool) "sqa has a read" true (sqa.Sampler.num_reads >= 1);
         let tabu = Tabu.sample ~deadline:past p in
         Alcotest.(check bool) "tabu flagged" true tabu.Sampler.timed_out;
         Alcotest.(check bool) "tabu has a read" true (tabu.Sampler.num_reads >= 1));
    Alcotest.test_case "qbsolv past deadline returns a coherent best-so-far" `Quick
      (fun () ->
         let p = random_problem ~seed:16 ~n:40 ~density:0.2 in
         let r = Qbsolv.sample ~deadline:past p in
         Alcotest.(check bool) "flagged" true r.Sampler.timed_out;
         let best = Sampler.best r in
         Alcotest.(check (float 1e-9)) "energy evaluated"
           (Problem.energy p best.Sampler.spins)
           best.Sampler.energy);
    Alcotest.test_case "parallel batches propagate the flag through merge" `Quick
      (fun () ->
         let p = random_problem ~seed:17 ~n:10 ~density:0.4 in
         let params = { Sa.default_params with Sa.num_reads = 32; num_sweeps = 30 } in
         let r = Parallel.sample_sa ~num_threads:4 ~deadline:past ~params p in
         Alcotest.(check bool) "flagged" true r.Sampler.timed_out;
         Alcotest.(check bool) "partial reads from every chunk" true
           (r.Sampler.num_reads >= 1 && r.Sampler.num_reads < 32)) ]

let suite = suite @ timeout_tests
