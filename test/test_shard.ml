(** The sharded serving tier: rendezvous routing properties, pool-level
    determinism across shard counts, cache-affinity placement, admission
    control, and the socket front end. *)

open Qac_ising
module Chimera = Qac_chimera.Chimera
module Cache = Qac_embed.Cache
module Tiler = Qac_embed.Tiler
module Serve = Qac_serve.Serve
module Shard = Qac_serve.Shard
module Server = Qac_serve.Server
module Protocol = Qac_serve.Protocol
module Sampler = Qac_anneal.Sampler
module Sa = Qac_anneal.Sa

let tiler_params =
  { Tiler.default_params with
    Tiler.embed_params = Some { Qac_embed.Cmr.default_params with tries = 4 } }

let solver ~deadline p =
  Sa.sample
    ~params:{ Sa.default_params with Sa.num_reads = 6; num_sweeps = 40; seed = 5 }
    ?deadline p

let chain_problem n =
  Problem.create ~num_vars:n
    ~h:(Array.init n (fun i -> if i mod 2 = 0 then 0.5 else -0.25))
    ~j:(List.init (n - 1) (fun i -> ((i, i + 1), if i mod 3 = 0 then -1.0 else 0.5)))
    ()

let job ?timeout_ms id problem = { Serve.id; problem; timeout_ms }

let check_response name (a : Sampler.response) (b : Sampler.response) =
  Alcotest.(check int) (name ^ ": num_reads") a.Sampler.num_reads b.Sampler.num_reads;
  Alcotest.(check int)
    (name ^ ": distinct")
    (List.length a.Sampler.samples)
    (List.length b.Sampler.samples);
  List.iter2
    (fun (x : Sampler.sample) (y : Sampler.sample) ->
       Alcotest.(check (array int)) (name ^ ": spins") x.Sampler.spins y.Sampler.spins;
       Alcotest.(check (float 1e-9)) (name ^ ": energy") x.Sampler.energy
         y.Sampler.energy;
       Alcotest.(check int) (name ^ ": occurrences") x.Sampler.num_occurrences
         y.Sampler.num_occurrences)
    a.Sampler.samples b.Sampler.samples

let response_exn (r : Serve.result) =
  match r.Serve.response with
  | Some resp -> resp
  | None -> Alcotest.fail (r.Serve.id ^ ": no response")

let digests n =
  List.init n (fun i -> Digest.string (Printf.sprintf "problem-%d" i))

let routing_tests =
  [ Alcotest.test_case "rendezvous is deterministic and in range" `Quick
      (fun () ->
         List.iter
           (fun d ->
              let s = Shard.rendezvous ~digest:d ~num_shards:7 in
              Alcotest.(check bool) "in range" true (s >= 0 && s < 7);
              Alcotest.(check int) "stable on repeat" s
                (Shard.rendezvous ~digest:d ~num_shards:7))
           (digests 200));
    Alcotest.test_case "single shard takes everything" `Quick (fun () ->
        List.iter
          (fun d ->
             Alcotest.(check int) "shard 0" 0 (Shard.rendezvous ~digest:d ~num_shards:1))
          (digests 50));
    Alcotest.test_case "load spreads over shards" `Quick (fun () ->
        let n = 4 and keys = 2000 in
        let counts = Array.make n 0 in
        List.iter
          (fun d ->
             let s = Shard.rendezvous ~digest:d ~num_shards:n in
             counts.(s) <- counts.(s) + 1)
          (digests keys);
        (* Binomial(2000, 1/4) is tightly concentrated: mean 500, sd ~19.
           A factor-2 band is > 10 sigma on each side. *)
        Array.iteri
          (fun i c ->
             Alcotest.(check bool)
               (Printf.sprintf "shard %d balanced (%d keys)" i c)
               true
               (c > keys / (2 * n) && c < keys * 2 / n))
          counts);
    Alcotest.test_case "placement is a pure function of digest and pool size"
      `Quick (fun () ->
          (* The digest-alone fold: no salt, no per-shard score, no state —
             re-deriving placement from the digest must agree everywhere
             (router, metrics readers, external clients).  The flip side,
             documented here on purpose: resizing is a different routing
             function and reshuffles most keys (pool size is fixed at
             create, so no live pool ever observes that). *)
          let moved = ref 0 in
          let keys = 2000 in
          List.iter
            (fun d ->
               let s = Shard.rendezvous ~digest:d ~num_shards:4 in
               Alcotest.(check int) "re-derivation agrees" s
                 (Shard.rendezvous ~digest:d ~num_shards:4);
               if s <> Shard.rendezvous ~digest:d ~num_shards:5 then incr moved)
            (digests keys);
          Alcotest.(check bool)
            (Printf.sprintf "resize reshuffles most keys (%d of %d)" !moved keys)
            true
            (!moved > keys / 2));
    Alcotest.test_case "route agrees with rendezvous on the structure digest"
      `Quick (fun () ->
          let graph = Chimera.create 4 in
          let pool =
            Shard.create ~num_shards:3 ~tiler_params ~solver ~graph ()
          in
          List.iter
            (fun n ->
               let p = chain_problem n in
               Alcotest.(check int) "route = rendezvous"
                 (Shard.rendezvous ~digest:(Cache.structure_digest p) ~num_shards:3)
                 (Shard.route pool p))
            [ 3; 4; 5; 6 ];
          ignore (Shard.drain pool)) ]

let pool_tests =
  [ Alcotest.test_case "pool results are identical at 1, 2 and 3 shards" `Quick
      (fun () ->
         let graph = Chimera.create 6 in
         let jobs () =
           List.init 6 (fun i -> job (string_of_int i) (chain_problem (3 + (i mod 3))))
         in
         let run num_shards =
           let pool =
             Shard.create ~num_shards ~tiler_params ~solver ~graph ()
           in
           List.iter (fun j -> ignore (Shard.submit pool j)) (jobs ());
           List.map snd (Shard.drain pool)
         in
         let r1 = run 1 and r2 = run 2 and r3 = run 3 in
         List.iter
           (fun other ->
              List.iter2
                (fun (a : Serve.result) (b : Serve.result) ->
                   Alcotest.(check string) "same id" a.Serve.id b.Serve.id;
                   check_response a.Serve.id (response_exn a) (response_exn b))
                r1 other)
           [ r2; r3 ]);
    Alcotest.test_case "pool equals plain Serve on the same jobs" `Quick
      (fun () ->
         let graph = Chimera.create 6 in
         let jobs () =
           List.init 4 (fun i -> job (string_of_int i) (chain_problem (3 + i)))
         in
         let plain = Serve.create ~tiler_params ~solver ~graph () in
         List.iter (Serve.submit plain) (jobs ());
         let expected = Serve.drain plain in
         let pool = Shard.create ~num_shards:2 ~tiler_params ~solver ~graph () in
         List.iter (fun j -> ignore (Shard.submit pool j)) (jobs ());
         let got = List.map snd (Shard.drain pool) in
         List.iter2
           (fun (a : Serve.result) (b : Serve.result) ->
              check_response a.Serve.id (response_exn a) (response_exn b))
           expected got);
    Alcotest.test_case "affinity sends same-structure jobs to one warm shard"
      `Quick (fun () ->
          let graph = Chimera.create 6 in
          let p = chain_problem 5 in
          let pool =
            Shard.create ~num_shards:3 ~routing:Shard.Affinity ~tiler_params
              ~solver ~graph ()
          in
          let home = Shard.route pool p in
          (* Same structure, different coefficients: every job must land on
             [home] and all cache traffic must stay there. *)
          let tickets =
            List.init 5 (fun i ->
                let vary = Problem.create ~num_vars:5
                    ~h:(Array.init 5 (fun k -> float_of_int (i + k) /. 10.0))
                    ~j:(List.init 4 (fun k -> ((k, k + 1), 1.0 +. float_of_int i)))
                    ()
                in
                Alcotest.(check int) "same structure, same shard" home
                  (Shard.route pool vary);
                Shard.submit pool (job (string_of_int i) vary))
          in
          ignore (Shard.drain pool);
          List.iter
            (fun t ->
               match Shard.poll pool t with
               | Some { Serve.status = Serve.Done; _ } -> ()
               | _ -> Alcotest.fail "job did not finish")
            tickets;
          let stats = Shard.stats pool in
          Array.iter
            (fun (s : Shard.shard_stats) ->
               let c = s.Shard.cache in
               if s.Shard.shard = home then begin
                 Alcotest.(check bool) "home shard hit the cache" true
                   (c.Cache.hits > 0);
                 Alcotest.(check int) "single structural miss" 1 c.Cache.misses
               end
               else begin
                 Alcotest.(check int) "cold shard: no lookups" 0
                   (c.Cache.hits + c.Cache.misses);
                 Alcotest.(check int) "cold shard: no jobs" 0
                   s.Shard.serve.Serve.jobs_done
               end)
            stats);
    Alcotest.test_case "poll and cancel work through global tickets" `Quick
      (fun () ->
         let graph = Chimera.create 6 in
         (* Manual-flush setup: a huge batch_jobs and window keep jobs
            queued until drain, so cancel has a stable target. *)
         let pool =
           Shard.create ~num_shards:2 ~batch_jobs:100 ~batch_window_s:60.0
             ~tiler_params ~solver ~graph ()
         in
         let t0 = Shard.submit pool (job "keep" (chain_problem 4)) in
         let t1 = Shard.submit pool (job "kill" (chain_problem 5)) in
         Alcotest.(check bool) "nothing finished yet" true
           (Shard.poll pool t0 = None);
         Alcotest.(check bool) "cancel queued job" true (Shard.cancel pool t1);
         ignore (Shard.drain pool);
         (match Shard.poll pool t0 with
          | Some { Serve.status = Serve.Done; _ } -> ()
          | _ -> Alcotest.fail "kept job should finish");
         (match Shard.poll pool t1 with
          | Some { Serve.status = Serve.Canceled; response = None; _ } -> ()
          | _ -> Alcotest.fail "canceled job should report Canceled");
         Alcotest.check_raises "unknown ticket"
           (Invalid_argument "Shard.poll: unknown ticket") (fun () ->
             ignore (Shard.poll pool 999)));
    Alcotest.test_case "try_submit sheds load with a retry hint" `Quick
      (fun () ->
         let graph = Chimera.create 6 in
         let pool =
           Shard.create ~num_shards:1 ~queue_capacity:1 ~batch_jobs:100
             ~batch_window_s:60.0 ~tiler_params ~solver ~graph ()
         in
         (match Shard.try_submit pool (job "first" (chain_problem 4)) with
          | Shard.Accepted { shard; _ } -> Alcotest.(check int) "shard 0" 0 shard
          | Shard.Rejected _ -> Alcotest.fail "empty queue must accept");
         (* A duplicate of the queued job coalesces instead of being shed,
            even with the queue full. *)
         (match Shard.try_submit pool (job "dup" (chain_problem 4)) with
          | Shard.Accepted _ -> ()
          | Shard.Rejected _ -> Alcotest.fail "duplicate must coalesce, not shed");
         (match Shard.try_submit pool (job "second" (chain_problem 5)) with
          | Shard.Rejected { retry_after_ms } ->
            Alcotest.(check bool) "hint respects the 10ms floor" true
              (retry_after_ms >= 10.0)
          | Shard.Accepted _ -> Alcotest.fail "full queue must reject");
         ignore (Shard.drain pool));
    Alcotest.test_case "metrics exposition carries per-shard counters" `Quick
      (fun () ->
         let graph = Chimera.create 6 in
         let pool = Shard.create ~num_shards:2 ~tiler_params ~solver ~graph () in
         List.iter
           (fun i -> ignore (Shard.submit pool (job (string_of_int i) (chain_problem (3 + i)))))
           [ 0; 1; 2 ];
         ignore (Shard.drain pool);
         let text = Shard.metrics pool in
         let contains needle =
           let rec scan i =
             i + String.length needle <= String.length text
             && (String.sub text i (String.length needle) = needle || scan (i + 1))
           in
           scan 0
         in
         List.iter
           (fun needle ->
              Alcotest.(check bool) (needle ^ " present") true (contains needle))
           [ "qac_serve_jobs_done{shard=\"0\"}";
             "qac_serve_jobs_done{shard=\"1\"}";
             "qac_embed_cache_hits{shard=\"0\"}";
             "qac_serve_latency_seconds_bucket{shard=\"0\",le=";
             "qac_serve_latency_p99_seconds{shard=\"1\"}" ];
         let st = Shard.stats pool in
         let total =
           Array.fold_left
             (fun acc (s : Shard.shard_stats) -> acc + s.Shard.serve.Serve.jobs_done)
             0 st
         in
         Alcotest.(check int) "jobs land somewhere" 3 total;
         Alcotest.(check int) "merged latency counts every job" 3
           (Qac_diag.Hist.count (Shard.latency pool))) ]

let server_tests =
  [ Alcotest.test_case "socket round-trip equals in-process results" `Quick
      (fun () ->
         let graph = Chimera.create 6 in
         let jobs () =
           List.init 4 (fun i -> job (string_of_int i) (chain_problem (3 + i)))
         in
         (* In-process reference. *)
         let reference = Serve.create ~tiler_params ~solver ~graph () in
         List.iter (Serve.submit reference) (jobs ());
         let expected = Serve.drain reference in
         (* Same jobs through a live server over a Unix-domain socket. *)
         let pool = Shard.create ~num_shards:2 ~tiler_params ~solver ~graph () in
         let sock_path = Filename.temp_file "qac_test_shard" ".sock" in
         let server =
           Server.create ~pool ~sockaddr:(Unix.ADDR_UNIX sock_path) ()
         in
         let server_domain = Domain.spawn (fun () -> Server.run server) in
         let fd = Protocol.connect (Unix.ADDR_UNIX sock_path) in
         let tickets =
           List.map
             (fun j ->
                match Protocol.call fd (Protocol.Submit j) with
                | Protocol.Submitted { ticket; _ } -> ticket
                | _ -> Alcotest.fail "submit not accepted")
             (jobs ())
         in
         let got =
           List.map
             (fun ticket ->
                let rec poll () =
                  match Protocol.call fd (Protocol.Poll ticket) with
                  | Protocol.Completed r -> r
                  | Protocol.Pending ->
                    Unix.sleepf 0.002;
                    poll ()
                  | _ -> Alcotest.fail "unexpected poll reply"
                in
                poll ())
             tickets
         in
         (match Protocol.call fd Protocol.Stats with
          | Protocol.Stats_json (Protocol.Arr shards) ->
            Alcotest.(check int) "stats for both shards" 2 (List.length shards)
          | _ -> Alcotest.fail "unexpected stats reply");
         (match Protocol.call fd Protocol.Metrics with
          | Protocol.Metrics_text text ->
            Alcotest.(check bool) "metrics nonempty" true (String.length text > 0)
          | _ -> Alcotest.fail "unexpected metrics reply");
         (match Protocol.call fd Protocol.Shutdown with
          | Protocol.Shutdown_ok -> ()
          | _ -> Alcotest.fail "unexpected shutdown reply");
         Unix.close fd;
         let drained = Domain.join server_domain in
         Alcotest.(check int) "drain covers every ticket" 4 (List.length drained);
         List.iter2
           (fun (a : Serve.result) (b : Serve.result) ->
              Alcotest.(check string) "id" a.Serve.id b.Serve.id;
              check_response a.Serve.id (response_exn a) (response_exn b))
           expected got;
         Alcotest.(check bool) "socket file removed" false (Sys.file_exists sock_path));
    Alcotest.test_case "server rejects garbage and oversized frames" `Quick
      (fun () ->
         let graph = Chimera.create 4 in
         let pool = Shard.create ~num_shards:1 ~tiler_params ~solver ~graph () in
         let sock_path = Filename.temp_file "qac_test_shard" ".sock" in
         let server =
           Server.create ~pool ~sockaddr:(Unix.ADDR_UNIX sock_path) ()
         in
         let server_domain = Domain.spawn (fun () -> Server.run server) in
         (* Garbage JSON in a well-formed frame: Error reply, connection
            survives for the next request. *)
         let fd = Protocol.connect (Unix.ADDR_UNIX sock_path) in
         Protocol.write_frame fd "this is not json";
         (match Protocol.read_frame fd with
          | Some payload ->
            (match Protocol.reply_of_json (Protocol.json_of_string payload) with
             | Protocol.Error _ -> ()
             | _ -> Alcotest.fail "garbage should earn an Error reply")
          | None -> Alcotest.fail "server closed on recoverable garbage");
         (match Protocol.call fd Protocol.Metrics with
          | Protocol.Metrics_text _ -> ()
          | _ -> Alcotest.fail "connection should survive garbage");
         (* Unknown op: also an Error reply. *)
         Protocol.write_frame fd "{\"op\":\"frobnicate\"}";
         (match Protocol.read_frame fd with
          | Some payload ->
            (match Protocol.reply_of_json (Protocol.json_of_string payload) with
             | Protocol.Error _ -> ()
             | _ -> Alcotest.fail "unknown op should earn an Error reply")
          | None -> Alcotest.fail "server closed on unknown op");
         (* Oversized declared length: the server answers Error and drops
            the connection (the stream can't be resynchronized). *)
         let header = Bytes.create 4 in
         Bytes.set_int32_be header 0 (Int32.of_int (Protocol.max_frame_len + 1));
         ignore (Unix.write fd header 0 4);
         (match Protocol.read_frame fd with
          | Some payload ->
            (match Protocol.reply_of_json (Protocol.json_of_string payload) with
             | Protocol.Error _ -> ()
             | _ -> Alcotest.fail "oversized frame should earn an Error reply")
          | None -> ()  (* dropping without a reply is also acceptable *)
          | exception Protocol.Protocol_error _ -> ());
         Unix.close fd;
         (* A fresh connection still works, then shuts the server down. *)
         let fd2 = Protocol.connect (Unix.ADDR_UNIX sock_path) in
         (match Protocol.call fd2 Protocol.Shutdown with
          | Protocol.Shutdown_ok -> ()
          | _ -> Alcotest.fail "unexpected shutdown reply");
         Unix.close fd2;
         ignore (Domain.join server_domain)) ]

let suite = routing_tests @ pool_tests @ server_tests
