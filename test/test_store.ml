(** The persistent artifact store: codec round-trips are bit-exact, every
    malformed input is an [Error] (never an exception), and the directory
    store survives restarts, rejects corruption, and honors read-only. *)

open Qac_ising
module Store = Qac_embed.Store
module Cache = Qac_embed.Cache
module Embedding = Qac_embed.Embedding

let bits = Int64.bits_of_float

let check_float_bits name a b =
  Alcotest.(check int64) (name ^ " (bit-exact)") (bits a) (bits b)

let temp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "qac_store_test.%d.%d" (Unix.getpid ()) !n)
    in
    (* fresh every call; the store creates it on open *)
    d

(* --- Generators -------------------------------------------------------------- *)

(* Floats that exercise the codec: negatives, subnormals, huge magnitudes,
   and values with no short decimal form.  NaN/infinity never appear in
   Ising coefficients, so the generator stays finite. *)
let gen_coeff =
  QCheck.Gen.oneof
    [ QCheck.Gen.float_bound_inclusive 1.0;
      QCheck.Gen.map (fun f -> -.f) (QCheck.Gen.float_bound_inclusive 1.0);
      QCheck.Gen.oneofl
        [ 0.1; -0.1; 1e-300; -1e300; 4.9e-324; 0.333333333333333314829616256247;
          1024.5; -65536.25 ] ]

let gen_embedding =
  QCheck.Gen.(
    let* n = int_range 0 12 in
    let* chains =
      array_repeat n
        (let* len = int_range 1 6 in
         array_repeat len (int_range 0 2047))
    in
    return { Embedding.chains })

let arb_embedding =
  QCheck.make gen_embedding ~print:(fun e ->
      Printf.sprintf "[|%s|]"
        (String.concat "; "
           (Array.to_list
              (Array.map
                 (fun c ->
                    Printf.sprintf "[|%s|]"
                      (String.concat ";"
                         (Array.to_list (Array.map string_of_int c))))
                 e.Embedding.chains))))

let gen_problem =
  QCheck.Gen.(
    let* n = int_range 1 10 in
    let* h = array_repeat n gen_coeff in
    let* offset = gen_coeff in
    let all_pairs =
      List.concat_map
        (fun i -> List.init (n - 1 - i) (fun k -> (i, i + 1 + k)))
        (List.init n (fun i -> i))
    in
    let* j =
      flatten_l
        (List.map
           (fun pair ->
              let* keep = bool in
              let* v = gen_coeff in
              return (if keep then [ (pair, v) ] else []))
           all_pairs)
    in
    return (Problem.create ~num_vars:n ~h ~j:(List.concat j) ~offset ()))

let arb_problem =
  QCheck.make gen_problem ~print:(fun p ->
      Format.asprintf "%a" Problem.pp p)

let check_problem_equal (a : Problem.t) (b : Problem.t) =
  Alcotest.(check int) "num_vars" a.Problem.num_vars b.Problem.num_vars;
  check_float_bits "offset" a.Problem.offset b.Problem.offset;
  Alcotest.(check int) "h length" (Array.length a.Problem.h)
    (Array.length b.Problem.h);
  Array.iteri (fun i v -> check_float_bits (Printf.sprintf "h.(%d)" i) v b.Problem.h.(i)) a.Problem.h;
  Alcotest.(check int) "coupler count"
    (Array.length a.Problem.couplers)
    (Array.length b.Problem.couplers);
  Array.iteri
    (fun k ((i, j), v) ->
       let (i', j'), v' = b.Problem.couplers.(k) in
       Alcotest.(check (pair int int)) (Printf.sprintf "coupler %d endpoints" k)
         (i, j) (i', j');
       check_float_bits (Printf.sprintf "coupler %d value" k) v v')
    a.Problem.couplers

let decode_embedding_exn s =
  match Store.decode_embedding s with
  | Ok e -> e
  | Error msg -> Alcotest.fail ("decode_embedding: " ^ msg)

let decode_problem_exn s =
  match Store.decode_problem s with
  | Ok p -> p
  | Error msg -> Alcotest.fail ("decode_problem: " ^ msg)

(* --- Codec ------------------------------------------------------------------- *)

let codec_tests =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:200 ~name:"embedding codec round-trips exactly"
         arb_embedding (fun e ->
           let e' = decode_embedding_exn (Store.encode_embedding e) in
           e'.Embedding.chains = e.Embedding.chains));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:200
         ~name:"problem codec round-trips bit-exactly" arb_problem (fun p ->
           check_problem_equal p (decode_problem_exn (Store.encode_problem p));
           true));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:50
         ~name:"every strict prefix is rejected, never a crash" arb_embedding
         (fun e ->
           let s = Store.encode_embedding e in
           let ok = ref true in
           for len = 0 to String.length s - 1 do
             match Store.decode_embedding (String.sub s 0 len) with
             | Ok _ -> ok := false
             | Error _ -> ()
           done;
           !ok));
    Alcotest.test_case "every single-byte corruption is rejected" `Quick
      (fun () ->
         let p =
           Problem.create ~num_vars:3 ~h:[| 0.5; -0.25; 0.125 |]
             ~j:[ ((0, 1), -1.0); ((1, 2), 0.75) ]
             ~offset:2.5 ()
         in
         let s = Store.encode_problem p in
         for i = 0 to String.length s - 1 do
           let b = Bytes.of_string s in
           Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
           match Store.decode_problem (Bytes.to_string b) with
           | Ok _ ->
             Alcotest.fail (Printf.sprintf "byte %d corruption accepted" i)
           | Error _ -> ()
         done);
    Alcotest.test_case "future version is refused, with the version named"
      `Quick (fun () ->
        let e = { Embedding.chains = [| [| 1; 2 |]; [| 3 |] |] } in
        let s = Store.encode_embedding e in
        let b = Bytes.of_string s in
        (* the u32 version field sits right after the 8-byte magic *)
        Bytes.set b 8 (Char.chr (Store.version + 1));
        (match Store.decode_embedding (Bytes.to_string b) with
         | Ok _ -> Alcotest.fail "future version accepted"
         | Error msg ->
           let mentions_version =
             let needle = "version" in
             let rec scan i =
               i + String.length needle <= String.length msg
               && (String.sub msg i (String.length needle) = needle
                   || scan (i + 1))
             in
             scan 0
           in
           Alcotest.(check bool)
             (Printf.sprintf "mentions version (%s)" msg)
             true mentions_version));
    Alcotest.test_case "kinds do not cross-decode" `Quick (fun () ->
        let e = { Embedding.chains = [| [| 0 |] |] } in
        let p =
          Problem.create ~num_vars:1 ~h:[| 0.5 |] ~j:[] ()
        in
        (match Store.decode_problem (Store.encode_embedding e) with
         | Ok _ -> Alcotest.fail "embedding decoded as problem"
         | Error _ -> ());
        match Store.decode_embedding (Store.encode_problem p) with
        | Ok _ -> Alcotest.fail "problem decoded as embedding"
        | Error _ -> ()) ]

(* --- Directory store --------------------------------------------------------- *)

let dir_tests =
  [ Alcotest.test_case "artifacts survive a re-open" `Quick (fun () ->
        let dir = temp_dir () in
        let key = Digest.string "job-1" in
        let pkey = Digest.string "problem-1" in
        let e = { Embedding.chains = [| [| 7; 8 |]; [| 9 |] |] } in
        let p =
          Problem.create ~num_vars:2 ~h:[| 0.5; -0.5 |] ~j:[ ((0, 1), 1.0) ] ()
        in
        let s1 = Store.open_dir dir in
        Alcotest.(check bool) "miss before put" true
          (Store.find_embedding s1 key = None);
        Store.put_embedding s1 key e;
        Store.put_problem s1 pkey p;
        (match Store.find_embedding s1 key with
         | Some e' ->
           Alcotest.(check bool) "same chains" true
             (e'.Embedding.chains = e.Embedding.chains)
         | None -> Alcotest.fail "miss after put");
        (* a brand-new handle on the same directory: everything off disk *)
        let s2 = Store.open_dir dir in
        (match Store.find_embedding s2 key with
         | Some e' ->
           Alcotest.(check bool) "chains off disk" true
             (e'.Embedding.chains = e.Embedding.chains)
         | None -> Alcotest.fail "embedding lost across re-open");
        (match Store.find_problem s2 pkey with
         | Some p' -> check_problem_equal p p'
         | None -> Alcotest.fail "problem lost across re-open");
        let st = Store.stats s2 in
        Alcotest.(check int) "one embedding" 1 st.Store.embeddings;
        Alcotest.(check int) "one problem" 1 st.Store.problems;
        Alcotest.(check int) "embed hit counted" 1 st.Store.embed_hits;
        Alcotest.(check int) "problem hit counted" 1 st.Store.problem_hits;
        Alcotest.(check int) "no load failures" 0 st.Store.load_failures);
    Alcotest.test_case "put is idempotent and find memoizes" `Quick (fun () ->
        let dir = temp_dir () in
        let s = Store.open_dir dir in
        let key = Digest.string "k" in
        let e = { Embedding.chains = [| [| 1 |] |] } in
        Store.put_embedding s key e;
        Store.put_embedding s key e;
        Alcotest.(check int) "one write" 1 (Store.stats s).Store.writes;
        ignore (Store.find_embedding s key);
        ignore (Store.find_embedding s key);
        Alcotest.(check int) "hits accumulate" 2
          (Store.stats s).Store.embed_hits);
    Alcotest.test_case "a corrupt artifact is a miss, not a crash" `Quick
      (fun () ->
         let dir = temp_dir () in
         let key = Digest.string "doomed" in
         let s1 = Store.open_dir dir in
         Store.put_embedding s1 key { Embedding.chains = [| [| 1; 2; 3 |] |] };
         (* stomp the payload on disk *)
         let file =
           Filename.concat dir ("emb-" ^ Digest.to_hex key ^ ".art")
         in
         let oc = open_out file in
         output_string oc "QACSTORE garbage";
         close_out oc;
         let s2 = Store.open_dir dir in
         Alcotest.(check bool) "corrupt artifact misses" true
           (Store.find_embedding s2 key = None);
         let st = Store.stats s2 in
         Alcotest.(check int) "load failure counted" 1 st.Store.load_failures;
         Alcotest.(check int) "counted as a miss" 1 st.Store.embed_misses);
    Alcotest.test_case "unrelated files in the directory are ignored" `Quick
      (fun () ->
         let dir = temp_dir () in
         let s1 = Store.open_dir dir in
         ignore s1;
         List.iter
           (fun name ->
              let oc = open_out (Filename.concat dir name) in
              output_string oc "not an artifact";
              close_out oc)
           [ "README"; "emb-nothex.art"; "emb-0123.art"; "prb-.art" ];
         let s2 = Store.open_dir dir in
         let st = Store.stats s2 in
         Alcotest.(check int) "no embeddings" 0 st.Store.embeddings;
         Alcotest.(check int) "no problems" 0 st.Store.problems);
    Alcotest.test_case "read-only stores never write" `Quick (fun () ->
        let dir = temp_dir () in
        let key = Digest.string "ro" in
        let s = Store.open_dir ~readonly:true dir in
        Store.put_embedding s key { Embedding.chains = [| [| 4 |] |] };
        Alcotest.(check int) "no writes" 0 (Store.stats s).Store.writes;
        let s2 = Store.open_dir dir in
        Alcotest.(check bool) "nothing on disk" true
          (Store.find_embedding s2 key = None)) ]

(* --- Cache integration ------------------------------------------------------- *)

let cache_tests =
  [ Alcotest.test_case "cache misses fall through to the store and promote"
      `Quick (fun () ->
        let dir = temp_dir () in
        let store = Store.open_dir dir in
        let key = Digest.string "shared-key" in
        let e = { Embedding.chains = [| [| 10; 11 |] |] } in
        (* first process: populate through the cache's write-through *)
        let c1 = Cache.create ~store () in
        Cache.add c1 key e;
        Alcotest.(check int) "written through" 1 (Store.stats store).Store.writes;
        (* second process: fresh cache, same store *)
        let c2 = Cache.create ~store:(Store.open_dir dir) () in
        (match Cache.find c2 key with
         | Some e' ->
           Alcotest.(check bool) "promoted copy" true
             (e'.Embedding.chains = e.Embedding.chains)
         | None -> Alcotest.fail "store-backed find missed");
        let st = Cache.stats c2 in
        Alcotest.(check int) "hit, not miss" 1 st.Cache.hits;
        Alcotest.(check int) "zero misses" 0 st.Cache.misses;
        Alcotest.(check int) "store hit counted" 1 st.Cache.store_hits;
        (* now resident in the LRU: a second find is a plain hit *)
        ignore (Cache.find c2 key);
        Alcotest.(check int) "LRU hit after promote" 2 (Cache.stats c2).Cache.hits;
        Alcotest.(check int) "store consulted once" 1
          (Cache.stats c2).Cache.store_hits);
    Alcotest.test_case "cache without a store still misses cleanly" `Quick
      (fun () ->
         let c = Cache.create () in
         Alcotest.(check bool) "miss" true
           (Cache.find c (Digest.string "absent") = None);
         Alcotest.(check int) "no store hits" 0 (Cache.stats c).Cache.store_hits)
  ]

let suite = codec_tests @ dir_tests @ cache_tests
