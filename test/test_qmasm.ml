open Qac_ising
open Qac_qmasm
module E2Q = Qac_edif2qmasm.Edif2qmasm

(* Listing 1 of the paper: a K4 antiferromagnet-ish program. *)
let listing1 = {|
A   -1
D    2
A B -5
B C -5
C D -5
D A -5
A C 10
B D 10
|}

let parser_tests =
  [ Alcotest.test_case "weights and couplers (Listing 1)" `Quick (fun () ->
        let stmts = Parser.parse_string listing1 in
        Alcotest.(check int) "8 statements" 8 (List.length stmts);
        match stmts with
        | Ast.Weight ("A", w) :: _ -> Alcotest.(check (float 0.0)) "w" (-1.0) w
        | _ -> Alcotest.fail "first statement");
    Alcotest.test_case "comments stripped" `Quick (fun () ->
        Alcotest.(check int) "1 statement" 1
          (List.length (Parser.parse_string "A 1 # weight on A\n# full comment\n")));
    Alcotest.test_case "chains, anti-chains and aliases" `Quick (fun () ->
        match Parser.parse_string "A = B\nC /= D\n!alias E F" with
        | [ Ast.Chain ("A", "B"); Ast.Anti_chain ("C", "D"); Ast.Alias ("E", "F") ] -> ()
        | _ -> Alcotest.fail "statements");
    Alcotest.test_case "pins: scalar and vector" `Quick (fun () ->
        (match Parser.parse_string "A := true" with
         | [ Ast.Pin [ ("A", true) ] ] -> ()
         | _ -> Alcotest.fail "scalar pin");
        match Parser.parse_string "C[3:0] := 1011" with
        | [ Ast.Pin pins ] ->
          Alcotest.(check (list (pair string bool)))
            "bits"
            [ ("C[3]", true); ("C[2]", false); ("C[1]", true); ("C[0]", true) ]
            pins
        | _ -> Alcotest.fail "vector pin");
    Alcotest.test_case "pin with decimal value" `Quick (fun () ->
        match Parser.parse_string "C[2:0] := 5" with
        | [ Ast.Pin pins ] ->
          Alcotest.(check (list (pair string bool)))
            "bits" [ ("C[2]", true); ("C[1]", false); ("C[0]", true) ] pins
        | _ -> Alcotest.fail "pin");
    Alcotest.test_case "macro definitions and use" `Quick (fun () ->
        let src = "!begin_macro M\nA 1\n!end_macro M\n!use_macro M x y" in
        match Parser.parse_string src with
        | [ Ast.Begin_macro "M"; Ast.Weight ("A", _); Ast.End_macro "M";
            Ast.Use_macro ("M", [ "x"; "y" ]) ] -> ()
        | _ -> Alcotest.fail "statements");
    Alcotest.test_case "assertion parses" `Quick (fun () ->
        match Parser.parse_string "!assert Y = A & B" with
        | [ Ast.Assertion (Ast.Cmp (Ast.C_eq, Ast.Sym "Y", _)) ] -> ()
        | _ -> Alcotest.fail "assertion");
    Alcotest.test_case "assertion with range and arithmetic" `Quick (fun () ->
        match Parser.parse_string "!assert C[7:0] = A[3:0] * B[3:0]" with
        | [ Ast.Assertion (Ast.Cmp (Ast.C_eq, Ast.Sym_range ("C", 7, 0), _)) ] -> ()
        | _ -> Alcotest.fail "assertion");
    Alcotest.test_case "bad directive rejected" `Quick (fun () ->
        match Parser.parse_string "!frobnicate x" with
        | exception Qac_diag.Diag.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
    Alcotest.test_case "line_count skips blanks and comments" `Quick (fun () ->
        Alcotest.(check int) "2" 2 (Parser.line_count "A 1\n\n# c\nB 2\n"));
  ]

let macro_tests =
  [ Alcotest.test_case "expansion prefixes symbols" `Quick (fun () ->
        let src = "!begin_macro M\nA 1\nA B -2\n!end_macro M\n!use_macro M inst" in
        let flat = Macro.expand ~resolve:(fun _ -> None) (Parser.parse_string src) in
        match flat with
        | [ Ast.Weight ("inst.A", _); Ast.Coupler ("inst.A", "inst.B", _) ] -> ()
        | _ -> Alcotest.fail "expansion");
    Alcotest.test_case "nested macros compose prefixes (Listing 4 style)" `Quick (fun () ->
        let src =
          "!begin_macro AND\nY 1\n!end_macro AND\n\
           !begin_macro AND3\n!use_macro AND x\n!use_macro AND y\nx.Y = y.Y\n!end_macro AND3\n\
           !use_macro AND3 top"
        in
        let flat = Macro.expand ~resolve:(fun _ -> None) (Parser.parse_string src) in
        match flat with
        | [ Ast.Weight ("top.x.Y", _); Ast.Weight ("top.y.Y", _);
            Ast.Chain ("top.x.Y", "top.y.Y") ] -> ()
        | other ->
          Alcotest.failf "expansion produced %d statements" (List.length other));
    Alcotest.test_case "includes resolve" `Quick (fun () ->
        let resolve = function
          | "lib.qmasm" -> Some "!begin_macro M\nA 1\n!end_macro M"
          | _ -> None
        in
        let src = "!include \"lib.qmasm\"\n!use_macro M i" in
        let flat = Macro.expand ~resolve (Parser.parse_string src) in
        Alcotest.(check int) "one stmt" 1 (List.length flat));
    Alcotest.test_case "circular include rejected" `Quick (fun () ->
        let resolve = function
          | "a" -> Some "!include \"a\""
          | _ -> None
        in
        match Macro.expand ~resolve (Parser.parse_string "!include \"a\"") with
        | exception Qac_diag.Diag.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
    Alcotest.test_case "undefined macro rejected" `Quick (fun () ->
        match Macro.expand ~resolve:(fun _ -> None) (Parser.parse_string "!use_macro NO i") with
        | exception Qac_diag.Diag.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
  ]

let assemble_tests =
  [ Alcotest.test_case "Listing 1 assembles and solves" `Quick (fun () ->
        let a = Qmasm.load listing1 in
        Alcotest.(check int) "4 variables" 4 (Array.length a.Assemble.symbols_of_var);
        let r = Exact.solve a.Assemble.problem in
        (* The ground state of Listing 1: check it is unique-ish and that
           re-evaluating matches the reported energy. *)
        List.iter
          (fun s ->
             Alcotest.(check (float 1e-9)) "energy" r.Exact.ground_energy
               (Problem.energy a.Assemble.problem s))
          r.Exact.ground_states);
    Alcotest.test_case "chains as couplers vs merged give same ground truth" `Quick
      (fun () ->
         let src = "A 1\nB -0.5\nA = B\nA C -1\n" in
         let coupled = Qmasm.load src in
         let merged =
           Qmasm.load
             ~options:{ Assemble.default_options with Assemble.merge_chains = true }
             src
         in
         Alcotest.(check int) "merged has fewer vars" 2
           (Array.length merged.Assemble.symbols_of_var);
         (* Ground states agree on A and C. *)
         let ground a =
           let r = Exact.solve a.Assemble.problem in
           List.map
             (fun s ->
                let assignment = Assemble.assignment_of_spins a s in
                (List.assoc "A" assignment, List.assoc "C" assignment))
             r.Exact.ground_states
           |> List.sort_uniq compare
         in
         Alcotest.(check bool) "same (A, C) ground sets" true
           (ground coupled = ground merged));
    Alcotest.test_case "anti-chain forces opposite values" `Quick (fun () ->
        let a = Qmasm.load "A /= B\nA 0.1\nB 0.1\n" in
        let r = Exact.solve a.Assemble.problem in
        List.iter
          (fun s ->
             let assignment = Assemble.assignment_of_spins a s in
             Alcotest.(check bool) "opposite" true
               (List.assoc "A" assignment <> List.assoc "B" assignment))
          r.Exact.ground_states);
    Alcotest.test_case "pins fix values" `Quick (fun () ->
        let a = Qmasm.load "A B -1\nA := true\nB := false\n" in
        let r = Exact.solve a.Assemble.problem in
        Alcotest.(check int) "unique" 1 (List.length r.Exact.ground_states);
        let assignment = Assemble.assignment_of_spins a (List.hd r.Exact.ground_states) in
        Alcotest.(check bool) "A" true (List.assoc "A" assignment);
        Alcotest.(check bool) "B" false (List.assoc "B" assignment));
    Alcotest.test_case "alias merges symbols" `Quick (fun () ->
        let a = Qmasm.load "!alias A B\nA 1\nB 1\n" in
        Alcotest.(check int) "one var" 1 (Array.length a.Assemble.symbols_of_var);
        Alcotest.(check (float 1e-9)) "summed h" 2.0 a.Assemble.problem.Problem.h.(0));
    Alcotest.test_case "default chain strength is 2x max literal J" `Quick (fun () ->
        let a = Qmasm.load "A B -5\nC = D\n" in
        Alcotest.(check (float 1e-9)) "strength" 10.0 a.Assemble.chain_strength;
        Alcotest.(check (float 1e-9)) "chain coupler" (-10.0)
          (let va = Option.get (Assemble.variable a "C") in
           let vb = Option.get (Assemble.variable a "D") in
           Problem.get_j a.Assemble.problem va vb));
    Alcotest.test_case "visible assignment hides $ symbols" `Quick (fun () ->
        let a = Qmasm.load "A $x -1\n" in
        let spins = [| 1; 1 |] in
        let visible = Assemble.visible_assignment a spins in
        Alcotest.(check (list (pair string bool))) "only A" [ ("A", true) ] visible);
    Alcotest.test_case "assertions evaluate" `Quick (fun () ->
        let a = Qmasm.load "!assert Y = A & B\nA 0\nB 0\nY 0\n" in
        let lookup = function "A" -> true | "B" -> true | "Y" -> true | _ -> false in
        (match Assemble.check_assertions a lookup with
         | [ (_, true) ] -> ()
         | _ -> Alcotest.fail "assertion should hold");
        let lookup = function "A" -> true | "B" -> true | "Y" -> false | _ -> false in
        match Assemble.check_assertions a lookup with
        | [ (_, false) ] -> ()
        | _ -> Alcotest.fail "assertion should fail");
    Alcotest.test_case "range assertion arithmetic" `Quick (fun () ->
        let a = Qmasm.load "!assert C[3:0] = A[1:0] * B[1:0]\nx 0\n" in
        let values =
          [ ("A[1]", true); ("A[0]", true); (* A = 3 *)
            ("B[1]", true); ("B[0]", false); (* B = 2 *)
            ("C[3]", false); ("C[2]", true); ("C[1]", true); ("C[0]", false) (* C = 6 *) ]
        in
        let lookup name = List.assoc name values in
        match Assemble.check_assertions a lookup with
        | [ (_, true) ] -> ()
        | _ -> Alcotest.fail "3 * 2 = 6 should hold");
  ]

let stdcell_tests =
  [ Alcotest.test_case "stdcell library parses and defines 14 macros" `Quick (fun () ->
        let stmts = Parser.parse_string (Qac_cells.Stdcell.contents ()) in
        let macro_count =
          List.length (List.filter (function Ast.Begin_macro _ -> true | _ -> false) stmts)
        in
        Alcotest.(check int) "macros" 14 macro_count);
    Alcotest.test_case "stdcell AND macro solves to AND truth table" `Quick (fun () ->
        let src = "!include \"stdcell.qmasm\"\n!use_macro AND g\n" in
        let a = Qmasm.load ~resolve:E2Q.resolve src in
        let r = Exact.solve a.Assemble.problem in
        List.iter
          (fun s ->
             let assignment = Assemble.assignment_of_spins a s in
             let v n = List.assoc n assignment in
             Alcotest.(check bool) "AND relation" (v "g.A" && v "g.B") (v "g.Y"))
          r.Exact.ground_states;
        Alcotest.(check int) "4 ground states" 4 (List.length r.Exact.ground_states));
    Alcotest.test_case "section 4.3.6: AND3 macro forward and backward" `Quick (fun () ->
        let and3 =
          "!include \"stdcell.qmasm\"\n\
           !begin_macro AND3\n\
           !use_macro AND $and1\n\
           !use_macro AND $and2\n\
           A = $and1.A\nB = $and1.B\nC = $and2.B\nY = $and2.Y\n\
           $and1.Y = $and2.A\n\
           !end_macro AND3\n\
           !use_macro AND3 my_and\n"
        in
        (* Forward: AND(T, F, T) = F. *)
        let fwd =
          Qmasm.load ~resolve:E2Q.resolve
            (and3 ^ "my_and.A := true\nmy_and.B := false\nmy_and.C := true\n")
        in
        let r = Exact.solve fwd.Assemble.problem in
        List.iter
          (fun s ->
             Alcotest.(check bool) "Y false" false
               (List.assoc "my_and.Y" (Assemble.assignment_of_spins fwd s)))
          r.Exact.ground_states;
        (* Backward: Y := true forces A = B = C = true. *)
        let bwd = Qmasm.load ~resolve:E2Q.resolve (and3 ^ "my_and.Y := true\n") in
        let r = Exact.solve bwd.Assemble.problem in
        Alcotest.(check bool) "some ground state" true (r.Exact.ground_states <> []);
        List.iter
          (fun s ->
             let assignment = Assemble.assignment_of_spins bwd s in
             Alcotest.(check bool) "A" true (List.assoc "my_and.A" assignment);
             Alcotest.(check bool) "B" true (List.assoc "my_and.B" assignment);
             Alcotest.(check bool) "C" true (List.assoc "my_and.C" assignment))
          r.Exact.ground_states);
  ]

let e2q_tests =
  [ Alcotest.test_case "AND gate netlist converts and runs backward" `Quick (fun () ->
        let n =
          (Qac_verilog.Synth.compile
             "module t (a, b, y); input a, b; output y; assign y = a & b; endmodule")
            .Qac_verilog.Synth.netlist
        in
        let src = E2Q.convert n ^ "y := true\n" in
        let a = Qmasm.load ~resolve:E2Q.resolve src in
        let r = Exact.solve a.Assemble.problem in
        List.iter
          (fun s ->
             let assignment = Assemble.assignment_of_spins a s in
             Alcotest.(check bool) "a" true (List.assoc "a" assignment);
             Alcotest.(check bool) "b" true (List.assoc "b" assignment))
          r.Exact.ground_states);
    Alcotest.test_case "Figure 2 mux: forward relation in ground states" `Quick (fun () ->
        let n =
          (Qac_verilog.Synth.compile
             "module circuit (s, a, b, c); input s, a, b; output [1:0] c; assign c = s ? a + b : a - b; endmodule")
            .Qac_verilog.Synth.netlist
        in
        let a =
          E2Q.load ~options:{ Assemble.default_options with Assemble.merge_chains = true } n
        in
        let r = Exact.solve a.Assemble.problem in
        (* Every ground state must be a valid (s, a, b, c) relation. *)
        Alcotest.(check int) "8 ground states (one per input combo)" 8
          (List.length (List.sort_uniq compare
                          (List.map
                             (fun s ->
                                let v = Assemble.assignment_of_spins a s in
                                (List.assoc "s" v, List.assoc "a" v, List.assoc "b" v))
                             r.Exact.ground_states)));
        List.iter
          (fun spins ->
             let v = Assemble.assignment_of_spins a spins in
             let b2i x = if x then 1 else 0 in
             let s = b2i (List.assoc "s" v) in
             let av = b2i (List.assoc "a" v) in
             let bv = b2i (List.assoc "b" v) in
             let c = (2 * b2i (List.assoc "c[1]" v)) + b2i (List.assoc "c[0]" v) in
             let expected = if s = 1 then (av + bv) land 3 else (av - bv) land 3 in
             Alcotest.(check int) "relation" expected c)
          r.Exact.ground_states);
    Alcotest.test_case "constants become gnd/vcc weights" `Quick (fun () ->
        let n =
          (Qac_verilog.Synth.compile
             "module t (a, o); input a; output [1:0] o; assign o = {1'b1, a}; endmodule")
            .Qac_verilog.Synth.netlist
        in
        let src = E2Q.convert n in
        Alcotest.(check bool) "has vcc weight" true
          (List.exists
             (function Ast.Weight ("$vcc", w) -> w < 0.0 | _ -> false)
             (Parser.parse_string src)));
    Alcotest.test_case "generated program pins work through ports" `Quick (fun () ->
        (* Multiplier run backward: factor 6 = 2 x 3 with 2-bit inputs. *)
        let n =
          (Qac_verilog.Synth.compile
             "module mult (A, B, C); input [1:0] A, B; output [3:0] C; assign C = A * B; endmodule")
            .Qac_verilog.Synth.netlist
        in
        let src = E2Q.convert n ^ "C[3:0] := 0110\n" in
        let a =
          Qmasm.load ~resolve:E2Q.resolve
            ~options:{ Assemble.default_options with Assemble.merge_chains = true } src
        in
        let r = Exact.solve a.Assemble.problem in
        Alcotest.(check bool) "found solutions" true (r.Exact.ground_states <> []);
        let factors =
          List.map
            (fun spins ->
               let v = Assemble.assignment_of_spins a spins in
               let word name w =
                 let acc = ref 0 in
                 for i = w - 1 downto 0 do
                   acc := (!acc * 2) + if List.assoc (Printf.sprintf "%s[%d]" name i) v then 1 else 0
                 done;
                 !acc
               in
               (word "A" 2, word "B" 2))
            r.Exact.ground_states
          |> List.sort_uniq compare
        in
        Alcotest.(check (list (pair int int))) "factor pairs" [ (2, 3); (3, 2) ] factors);
    Alcotest.test_case "line_count excludes nothing but blanks/comments" `Quick (fun () ->
        let n =
          (Qac_verilog.Synth.compile
             "module t (a, y); input a; output y; assign y = ~a; endmodule")
            .Qac_verilog.Synth.netlist
        in
        let src = E2Q.convert n in
        Alcotest.(check bool) "some lines" true (E2Q.line_count src > 3));
  ]

let minizinc_tests =
  [ Alcotest.test_case "minizinc output contains vars and objective" `Quick (fun () ->
        let a = Qmasm.load "A -1\nA B -2\n" in
        let mzn = Qmasm.to_minizinc a in
        let has needle =
          match Qac_qmasm.Str_split.find_substring mzn needle with
          | Some _ -> true
          | None -> false
        in
        Alcotest.(check bool) "var decl" true (has "var 0..1: vA;");
        Alcotest.(check bool) "objective" true (has "solve minimize energy;");
        Alcotest.(check bool) "scaled coefficient" true (has "-2*"));
  ]

let suite =
  parser_tests @ macro_tests @ assemble_tests @ stdcell_tests @ e2q_tests @ minizinc_tests

(* Round-trip property: printing a flat statement list and re-parsing it
   yields the same statements. *)
let roundtrip_tests =
  let gen_symbol =
    QCheck.Gen.(
      let* base = oneofl [ "A"; "B"; "x"; "node"; "g.Y"; "$anc"; "C[3]" ] in
      return base)
  in
  let gen_stmt =
    QCheck.Gen.(
      let* kind = int_bound 5 in
      let* a = gen_symbol in
      let* b = gen_symbol in
      let* w = float_bound_exclusive 8.0 in
      let w = Float.round (w *. 16.0) /. 16.0 in
      match kind with
      | 0 -> return (Ast.Weight (a, w))
      | 1 -> return (if a = b then Ast.Weight (a, w) else Ast.Coupler (a, b, w))
      | 2 -> return (if a = b then Ast.Weight (a, 1.0) else Ast.Chain (a, b))
      | 3 -> return (if a = b then Ast.Weight (a, 1.0) else Ast.Anti_chain (a, b))
      | 4 -> return (Ast.Alias ("p", "q"))
      | _ -> return (Ast.Pin [ (a, true) ]))
  in
  let print_parse =
    QCheck.Test.make ~name:"print/parse round-trip for flat statements" ~count:100
      (QCheck.make QCheck.Gen.(list_size (int_range 1 15) gen_stmt))
      (fun stmts ->
         let src = Ast.program_to_string stmts in
         Parser.parse_string src = stmts)
  in
  [ QCheck_alcotest.to_alcotest print_parse ]

let suite = suite @ roundtrip_tests

(* Statement order must not matter: the Hamiltonian is a sum. *)
let permutation_tests =
  let invariance =
    QCheck.Test.make ~name:"assembly is invariant under statement permutation" ~count:50
      QCheck.(int_bound 100000)
      (fun seed ->
         let st = Random.State.make [| seed |] in
         let sym i = Printf.sprintf "v%d" i in
         let stmts =
           List.init 12 (fun _ ->
               match Random.State.int st 3 with
               | 0 -> Ast.Weight (sym (Random.State.int st 5), Random.State.float st 2.0 -. 1.0)
               | 1 ->
                 let a = Random.State.int st 5 in
                 let b = (a + 1 + Random.State.int st 4) mod 5 in
                 Ast.Coupler (sym a, sym b, Random.State.float st 2.0 -. 1.0)
               | _ ->
                 let a = Random.State.int st 5 in
                 let b = (a + 1 + Random.State.int st 4) mod 5 in
                 Ast.Chain (sym a, sym b))
           (* Anchor the symbol table so both orders share it. *)
           |> List.append (List.init 5 (fun i -> Ast.Weight (sym i, 0.0)))
         in
         let shuffled =
           let arr = Array.of_list stmts in
           (* Keep the five anchors first so variable numbering agrees. *)
           let anchors = Array.sub arr 0 5 in
           let rest = Array.sub arr 5 (Array.length arr - 5) in
           for i = Array.length rest - 1 downto 1 do
             let j = Random.State.int st (i + 1) in
             let tmp = rest.(i) in
             rest.(i) <- rest.(j);
             rest.(j) <- tmp
           done;
           Array.to_list (Array.append anchors rest)
         in
         let p1 = (Assemble.assemble stmts).Assemble.problem in
         let p2 = (Assemble.assemble shuffled).Assemble.problem in
         p1.Qac_ising.Problem.num_vars = p2.Qac_ising.Problem.num_vars
         && List.for_all
              (fun code ->
                 let spins =
                   Array.init p1.Qac_ising.Problem.num_vars (fun i ->
                       if (code lsr i) land 1 = 1 then 1 else -1)
                 in
                 Float.abs
                   (Qac_ising.Problem.energy p1 spins -. Qac_ising.Problem.energy p2 spins)
                 < 1e-9)
              (List.init (1 lsl p1.Qac_ising.Problem.num_vars) (fun c -> c)))
  in
  [ QCheck_alcotest.to_alcotest invariance ]

let suite = suite @ permutation_tests

(* Every standard cell, exercised through the textual stdcell.qmasm path:
   parse -> expand -> assemble -> exact solve -> visible ground states must
   equal the cell's truth table. *)
let all_cells_via_text =
  List.filter_map
    (fun (cell : Qac_cells.Cells.t) ->
       if cell.Qac_cells.Cells.is_flip_flop then None
       else
         Some
           (Alcotest.test_case
              ("stdcell text path: " ^ cell.Qac_cells.Cells.name)
              `Quick
              (fun () ->
                 let src =
                   Printf.sprintf "!include \"stdcell.qmasm\"\n!use_macro %s g\n"
                     cell.Qac_cells.Cells.name
                 in
                 let a = Qmasm.load ~resolve:E2Q.resolve src in
                 let r = Exact.solve a.Assemble.problem in
                 let num_inputs = List.length cell.Qac_cells.Cells.inputs in
                 let visible_rows =
                   List.map
                     (fun spins ->
                        let v = Assemble.assignment_of_spins a spins in
                        let bit name = if List.assoc ("g." ^ name) v then 1 else 0 in
                        List.map bit cell.Qac_cells.Cells.inputs @ [ bit "Y" ])
                     r.Exact.ground_states
                   |> List.sort_uniq compare
                 in
                 Alcotest.(check int)
                   "one visible row per input combination"
                   (1 lsl num_inputs)
                   (List.length visible_rows);
                 List.iter
                   (fun row ->
                      let inputs = Array.of_list (List.map (fun b -> b = 1) row) in
                      let expected =
                        cell.Qac_cells.Cells.logic (Array.sub inputs 0 num_inputs)
                      in
                      Alcotest.(check bool) "logic" expected
                        (List.nth row num_inputs = 1))
                   visible_rows;
                 (* And the macro's own assertion must hold on every ground
                    state. *)
                 List.iter
                   (fun spins ->
                      let v = Assemble.assignment_of_spins a spins in
                      let lookup name = List.assoc name v in
                      List.iter
                        (fun (_, ok) -> Alcotest.(check bool) "assert" true ok)
                        (Assemble.check_assertions a lookup))
                   r.Exact.ground_states)))
    Qac_cells.Cells.all

let qmasm_edge_tests =
  [ Alcotest.test_case "weight on chained symbol lands on merged variable" `Quick
      (fun () ->
         let a =
           Qmasm.load
             ~options:{ Assemble.default_options with Assemble.merge_chains = true }
             "A = B\nB 1.5\nA 0.5\n"
         in
         Alcotest.(check int) "one var" 1 (Array.length a.Assemble.symbols_of_var);
         Alcotest.(check (float 1e-9)) "summed" 2.0 a.Assemble.problem.Problem.h.(0));
    Alcotest.test_case "coupler between merged symbols becomes offset" `Quick (fun () ->
        let a =
          Qmasm.load
            ~options:{ Assemble.default_options with Assemble.merge_chains = true }
            "A = B\nA B -3\n"
        in
        Alcotest.(check (float 1e-9)) "offset" (-3.0) a.Assemble.problem.Problem.offset);
    Alcotest.test_case "anti-chain between merged symbols rejected" `Quick (fun () ->
        match
          Qmasm.load
            ~options:{ Assemble.default_options with Assemble.merge_chains = true }
            "A = B\nA /= B\n"
        with
        | exception Qac_diag.Diag.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
    Alcotest.test_case "pin of unknown-but-fresh symbol creates it" `Quick (fun () ->
        let a = Qmasm.load "fresh := true\n" in
        Alcotest.(check int) "one var" 1 (Array.length a.Assemble.symbols_of_var);
        let r = Exact.solve a.Assemble.problem in
        List.iter
          (fun s -> Alcotest.(check int) "pinned true" 1 s.(0))
          r.Exact.ground_states);
  ]

let suite = suite @ all_cells_via_text @ qmasm_edge_tests
