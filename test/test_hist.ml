(** Log-bucketed latency histograms: bucketing, quantile accuracy against
    known distributions, merging, and the bounded-relative-error contract. *)

module Hist = Qac_diag.Hist

let bucket_ratio = Hist.bucket_ratio

let basic_tests =
  [ Alcotest.test_case "empty histogram reports zeros" `Quick (fun () ->
        let h = Hist.create () in
        Alcotest.(check int) "count" 0 (Hist.count h);
        Alcotest.(check (float 0.0)) "sum" 0.0 (Hist.sum h);
        Alcotest.(check (float 0.0)) "mean" 0.0 (Hist.mean h);
        Alcotest.(check (float 0.0)) "max" 0.0 (Hist.max_seen h);
        Alcotest.(check (float 0.0)) "p50" 0.0 (Hist.p50 h);
        Alcotest.(check (float 0.0)) "p99" 0.0 (Hist.p99 h);
        Alcotest.(check int) "no buckets" 0 (List.length (Hist.buckets h)));
    Alcotest.test_case "count, sum, mean, max track observations" `Quick
      (fun () ->
         let h = Hist.create () in
         List.iter (Hist.add h) [ 0.001; 0.002; 0.004; 0.1 ];
         Alcotest.(check int) "count" 4 (Hist.count h);
         Alcotest.(check (float 1e-12)) "sum" 0.107 (Hist.sum h);
         Alcotest.(check (float 1e-12)) "mean" (0.107 /. 4.0) (Hist.mean h);
         Alcotest.(check (float 0.0)) "max exact" 0.1 (Hist.max_seen h));
    Alcotest.test_case "quantile rejects q outside [0, 1]" `Quick (fun () ->
        let h = Hist.create () in
        Hist.add h 1.0;
        Alcotest.check_raises "q = -0.1"
          (Invalid_argument "Hist.quantile: q outside [0, 1]") (fun () ->
            ignore (Hist.quantile h (-0.1)));
        Alcotest.check_raises "q = 1.5"
          (Invalid_argument "Hist.quantile: q outside [0, 1]") (fun () ->
            ignore (Hist.quantile h 1.5)));
    Alcotest.test_case "clear resets, copy is independent" `Quick (fun () ->
        let h = Hist.create () in
        List.iter (Hist.add h) [ 0.01; 0.02 ];
        let c = Hist.copy h in
        Hist.clear h;
        Alcotest.(check int) "cleared" 0 (Hist.count h);
        Alcotest.(check int) "copy untouched" 2 (Hist.count c);
        Hist.add c 0.03;
        Alcotest.(check int) "original still empty" 0 (Hist.count h)) ]

(* A reported quantile's bucket representative is within one bucket ratio
   of the true value — the whole point of geometric bucketing. *)
let accuracy_tests =
  [ Alcotest.test_case "quantiles of a uniform grid are within one bucket"
      `Quick (fun () ->
          let h = Hist.create () in
          (* 1..1000 ms as seconds. *)
          for i = 1 to 1000 do
            Hist.add h (float_of_int i /. 1000.0)
          done;
          let ratio = bucket_ratio h in
          List.iter
            (fun q ->
               let true_q = q in  (* uniform on (0, 1]: quantile q = q *)
               let got = Hist.quantile h q in
               Alcotest.(check bool)
                 (Printf.sprintf "q=%g within ratio (got %g, true %g)" q got true_q)
                 true
                 (got >= true_q /. ratio -. 1e-9 && got <= true_q *. ratio +. 1e-9))
            [ 0.25; 0.5; 0.9; 0.99 ]);
    Alcotest.test_case "bimodal distribution: p50 in the fast mode, p99 in the slow"
      `Quick (fun () ->
          let h = Hist.create () in
          (* 98 fast requests at ~1 ms, 2 slow at ~1 s. *)
          for _ = 1 to 98 do Hist.add h 0.001 done;
          for _ = 1 to 2 do Hist.add h 1.0 done;
          let ratio = bucket_ratio h in
          Alcotest.(check bool) "p50 ~ 1 ms" true
            (Hist.p50 h <= 0.001 *. ratio && Hist.p50 h >= 0.001 /. ratio);
          Alcotest.(check bool) "p90 ~ 1 ms" true
            (Hist.p90 h <= 0.001 *. ratio && Hist.p90 h >= 0.001 /. ratio);
          Alcotest.(check bool) "p99 ~ 1 s" true
            (Hist.p99 h <= 1.0 *. ratio && Hist.p99 h >= 1.0 /. ratio));
    Alcotest.test_case "monotone: quantiles never decrease in q" `Quick
      (fun () ->
         let h = Hist.create () in
         let seed = ref 123456789 in
         for _ = 1 to 500 do
           (* xorshift; spread over ~4 decades *)
           seed := !seed lxor (!seed lsl 13);
           seed := !seed lxor (!seed lsr 7);
           seed := !seed lxor (!seed lsl 17);
           seed := !seed land 0x3FFFFFFF;
           Hist.add h (1e-4 *. (1.0 +. float_of_int (!seed mod 9999)))
         done;
         let prev = ref 0.0 in
         for i = 0 to 100 do
           let v = Hist.quantile h (float_of_int i /. 100.0) in
           Alcotest.(check bool)
             (Printf.sprintf "q=%d%% >= q=%d%%" i (i - 1))
             true (v >= !prev);
           prev := v
         done);
    Alcotest.test_case "p0 is the smallest observation's bucket, p100 the largest"
      `Quick (fun () ->
          let h = Hist.create () in
          List.iter (Hist.add h) [ 0.003; 0.03; 0.3 ];
          let ratio = bucket_ratio h in
          Alcotest.(check bool) "p0 near 3 ms" true
            (Hist.quantile h 0.0 <= 0.003 *. ratio);
          Alcotest.(check bool) "p100 near 300 ms" true
            (Hist.quantile h 1.0 >= 0.3 /. ratio)) ]

let range_tests =
  [ Alcotest.test_case "underflow and overflow land in edge buckets" `Quick
      (fun () ->
         let h = Hist.create ~min_value:1e-3 ~max_value:1e3 () in
         Hist.add h 1e-9;
         Hist.add h 1e9;
         Alcotest.(check int) "both counted" 2 (Hist.count h);
         Alcotest.(check (float 0.0)) "max exact despite clamping" 1e9
           (Hist.max_seen h);
         let buckets = Hist.buckets h in
         Alcotest.(check int) "two occupied buckets" 2 (List.length buckets);
         (match buckets with
          | [ (lo0, hi0, n0); (lo1, hi1, n1) ] ->
            (* Edges are reconstructed through exp/log, so compare with
               relative tolerance. *)
            let close a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs b) in
            Alcotest.(check (float 0.0)) "underflow lower edge" 0.0 lo0;
            Alcotest.(check bool) "underflow upper edge ~ 1e-3" true (close hi0 1e-3);
            Alcotest.(check int) "underflow count" 1 n0;
            Alcotest.(check bool) "overflow lower edge ~ 1e3" true (close lo1 1e3);
            Alcotest.(check bool) "overflow upper edge" true (hi1 = infinity);
            Alcotest.(check int) "overflow count" 1 n1
          | _ -> Alcotest.fail "expected exactly the two edge buckets"));
    Alcotest.test_case "occupied buckets partition counts" `Quick (fun () ->
        let h = Hist.create () in
        for i = 1 to 100 do
          Hist.add h (0.0001 *. float_of_int i)
        done;
        let total =
          List.fold_left (fun acc (_, _, n) -> acc + n) 0 (Hist.buckets h)
        in
        Alcotest.(check int) "bucket counts sum to total" 100 total;
        List.iter
          (fun (lo, hi, n) ->
             Alcotest.(check bool) "bucket non-empty" true (n > 0);
             Alcotest.(check bool) "edges ordered" true (lo < hi))
          (Hist.buckets h)) ]

let merge_tests =
  [ Alcotest.test_case "merge equals adding everything to one histogram"
      `Quick (fun () ->
          let a = Hist.create () and b = Hist.create () and all = Hist.create () in
          for i = 1 to 50 do
            let v = 0.001 *. float_of_int i in
            Hist.add (if i mod 2 = 0 then a else b) v;
            Hist.add all v
          done;
          Hist.merge_into a b;
          Alcotest.(check int) "count" (Hist.count all) (Hist.count a);
          Alcotest.(check (float 1e-12)) "sum" (Hist.sum all) (Hist.sum a);
          Alcotest.(check (float 0.0)) "max" (Hist.max_seen all) (Hist.max_seen a);
          List.iter
            (fun q ->
               Alcotest.(check (float 0.0))
                 (Printf.sprintf "quantile %g" q)
                 (Hist.quantile all q) (Hist.quantile a q))
            [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ]);
    Alcotest.test_case "merge rejects mismatched layouts" `Quick (fun () ->
        let a = Hist.create () in
        let b = Hist.create ~buckets_per_decade:5 () in
        Alcotest.check_raises "layout mismatch"
          (Invalid_argument "Hist.merge_into: bucket layouts differ") (fun () ->
            Hist.merge_into a b)) ]

let suite = basic_tests @ accuracy_tests @ range_tests @ merge_tests
