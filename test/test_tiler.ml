(** The tiler's contract: disjoint regions (no cross-tile couplers ever),
    and composition invariance — a job's demuxed response is bit-identical
    whether it is solved alone or packed with any other jobs, at any thread
    count. *)

open Qac_ising
module Chimera = Qac_chimera.Chimera
module Tiler = Qac_embed.Tiler
module Embedding = Qac_embed.Embedding
module Cache = Qac_embed.Cache
module Sampler = Qac_anneal.Sampler
module Sa = Qac_anneal.Sa

(* Fast embedding parameters: these problems are tiny. *)
let params =
  { Tiler.default_params with
    Tiler.embed_params = Some { Qac_embed.Cmr.default_params with tries = 4 } }

(* A deterministic, pure solver closure (fixed seed, small budget). *)
let solver ~deadline p =
  Sa.sample
    ~params:{ Sa.default_params with Sa.num_reads = 6; num_sweeps = 40; seed = 5 }
    ?deadline p

let check_sample (a : Sampler.sample) (b : Sampler.sample) =
  Alcotest.(check (array int)) "spins" a.Sampler.spins b.Sampler.spins;
  Alcotest.(check (float 1e-9)) "energy" a.Sampler.energy b.Sampler.energy;
  Alcotest.(check int) "occurrences" a.Sampler.num_occurrences b.Sampler.num_occurrences

let check_response name (a : Sampler.response) (b : Sampler.response) =
  Alcotest.(check int) (name ^ ": num_reads") a.Sampler.num_reads b.Sampler.num_reads;
  Alcotest.(check int)
    (name ^ ": distinct samples")
    (List.length a.Sampler.samples)
    (List.length b.Sampler.samples);
  List.iter2 check_sample a.Sampler.samples b.Sampler.samples

let placed_exn t i =
  match t.Tiler.outcomes.(i) with
  | Tiler.Placed p -> p
  | Tiler.Deferred -> Alcotest.fail (Printf.sprintf "job %d deferred" i)
  | Tiler.Failed m -> Alcotest.fail (Printf.sprintf "job %d failed: %s" i m)

(* Small pseudo-random problems with varied structure. *)
let chain_problem n =
  Problem.create ~num_vars:n
    ~h:(Array.init n (fun i -> if i mod 2 = 0 then 0.5 else -0.25))
    ~j:(List.init (n - 1) (fun i -> ((i, i + 1), if i mod 3 = 0 then -1.0 else 0.5)))
    ()

let ring_problem n =
  Problem.create ~num_vars:n ~h:(Array.make n 0.1)
    ~j:(List.init n (fun i -> ((min i ((i + 1) mod n), max i ((i + 1) mod n)), 1.0)))
    ()

let dense_problem n =
  let j = ref [] in
  for i = 0 to n - 1 do
    for k = i + 1 to n - 1 do
      j := ((i, k), if (i + k) mod 2 = 0 then 0.5 else -0.5) :: !j
    done
  done;
  Problem.create ~num_vars:n ~h:(Array.init n (fun i -> float_of_int (i - 1) *. 0.2)) ~j:!j ()

let jobs = [| chain_problem 5; ring_problem 4; dense_problem 4; chain_problem 3 |]

(* Couplers of the merged problem must stay inside single regions: build the
   qubit -> job map from the placed regions and check every coupler. *)
let check_isolation t =
  let owner = Array.make t.Tiler.merged.Problem.num_vars (-1) in
  Array.iter
    (function
      | Tiler.Placed p ->
        Array.iter
          (fun q ->
             Alcotest.(check bool) "regions disjoint" true (owner.(q) = -1);
             owner.(q) <- p.Tiler.job)
          p.Tiler.region.Tiler.qubits
      | Tiler.Deferred | Tiler.Failed _ -> ())
    t.Tiler.outcomes;
  Array.iter
    (fun ((i, j), _) ->
       Alcotest.(check bool) "coupler inside one region" true
         (owner.(i) >= 0 && owner.(i) = owner.(j)))
    t.Tiler.merged.Problem.couplers;
  Array.iteri
    (fun q h -> if h <> 0.0 then
        Alcotest.(check bool) "field inside a region" true (owner.(q) >= 0))
    t.Tiler.merged.Problem.h

let tiling_tests =
  [ Alcotest.test_case "all jobs place on C6 with disjoint regions" `Quick (fun () ->
        let graph = Chimera.create 6 in
        let t = Tiler.tile ~params graph jobs in
        let placed, deferred, failed = Tiler.counts t in
        Alcotest.(check int) "all placed" (Array.length jobs) placed;
        Alcotest.(check int) "none deferred" 0 deferred;
        Alcotest.(check int) "none failed" 0 failed;
        check_isolation t;
        Alcotest.(check bool) "occupancy positive" true (Tiler.occupancy t > 0.0);
        Alcotest.(check bool) "occupancy below 1" true (Tiler.occupancy t < 1.0));
    Alcotest.test_case "tiling is identical at 1 and 4 threads" `Quick (fun () ->
        let graph = Chimera.create 6 in
        let t1 = Tiler.tile ~params ~num_threads:1 graph jobs in
        let t4 = Tiler.tile ~params ~num_threads:4 graph jobs in
        Alcotest.(check bool) "merged problems equal" true
          (Problem.equal t1.Tiler.merged t4.Tiler.merged);
        Array.iteri
          (fun i _ ->
             let p1 = placed_exn t1 i and p4 = placed_exn t4 i in
             Alcotest.(check (array int)) "region qubits" p1.Tiler.region.Tiler.qubits
               p4.Tiler.region.Tiler.qubits;
             Alcotest.(check bool) "embedding equal" true
               (p1.Tiler.embedding = p4.Tiler.embedding))
          jobs);
    Alcotest.test_case "broken cells are never used" `Quick (fun () ->
        (* Break one qubit of cell (0,0): the whole cell must leave the pool. *)
        let graph = Chimera.create ~broken:[ 3 ] 6 in
        let t = Tiler.tile ~params graph jobs in
        let placed, _, failed = Tiler.counts t in
        Alcotest.(check int) "all placed" (Array.length jobs) placed;
        Alcotest.(check int) "none failed" 0 failed;
        Array.iter
          (function
            | Tiler.Placed p ->
              Array.iter
                (fun q ->
                   Alcotest.(check bool) "qubit outside cell (0,0)" true (q >= 8))
                p.Tiler.region.Tiler.qubits
            | _ -> ())
          t.Tiler.outcomes;
        check_isolation t);
    Alcotest.test_case "too-large problem fails, batch survives" `Quick (fun () ->
        let graph = Chimera.create 2 in
        (* A 40-variable ring cannot fit a C2 (32 qubits). *)
        let t = Tiler.tile ~params graph [| chain_problem 3; ring_problem 40 |] in
        (match t.Tiler.outcomes.(0) with
         | Tiler.Placed _ -> ()
         | _ -> Alcotest.fail "small job should place");
        (match t.Tiler.outcomes.(1) with
         | Tiler.Failed _ -> ()
         | _ -> Alcotest.fail "oversized job should fail"));
    Alcotest.test_case "floor exhaustion defers, never overlaps" `Quick (fun () ->
        let graph = Chimera.create 2 in
        (* Each dense 8-var job needs a whole C2-sized block; the second
           cannot fit alongside. *)
        let big = dense_problem 8 in
        let t = Tiler.tile ~params graph [| big; big; big |] in
        let placed, deferred, failed = Tiler.counts t in
        Alcotest.(check bool) "at least one placed" true (placed >= 1);
        Alcotest.(check int) "none failed" 0 failed;
        Alcotest.(check bool) "rest deferred" true (deferred = 3 - placed);
        check_isolation t);
    Alcotest.test_case "empty problem places trivially" `Quick (fun () ->
        let graph = Chimera.create 2 in
        let t = Tiler.tile ~params graph [| Problem.empty |] in
        let p = placed_exn t 0 in
        Alcotest.(check int) "no qubits" 0 (Array.length p.Tiler.region.Tiler.qubits);
        match Tiler.solve ~solver t with
        | [ (0, r) ] ->
          Alcotest.(check int) "one read" 1 r.Sampler.num_reads
        | _ -> Alcotest.fail "expected one response");
    Alcotest.test_case "embedding cache is shared across identical jobs" `Quick
      (fun () ->
         let graph = Chimera.create 6 in
         let cache = Cache.create () in
         let same = chain_problem 5 in
         let t = Tiler.tile ~params ~cache graph [| same; same; same; same |] in
         let placed, _, _ = Tiler.counts t in
         Alcotest.(check int) "all placed" 4 placed;
         let { Cache.hits; misses; _ } = Cache.stats cache in
         Alcotest.(check bool) "cache hits from repeated structure" true (hits >= 3);
         Alcotest.(check bool) "few misses" true (misses <= 4)) ]

let solve_tests =
  [ Alcotest.test_case "composition invariance: alone vs batched" `Quick (fun () ->
        let graph = Chimera.create 6 in
        let batch = Tiler.tile ~params graph jobs in
        let batched = Tiler.solve ~solver batch in
        Array.iteri
          (fun i p ->
             let alone = Tiler.tile ~params graph [| p |] in
             match (Tiler.solve ~solver alone, List.assoc_opt i batched) with
             | [ (0, ra) ], Some rb ->
               check_response (Printf.sprintf "job %d" i) ra rb
             | _ -> Alcotest.fail "missing response")
          jobs);
    Alcotest.test_case "solve is identical at 1 and 4 threads" `Quick (fun () ->
        let graph = Chimera.create 6 in
        let t = Tiler.tile ~params graph jobs in
        let r1 = Tiler.solve ~num_threads:1 ~solver t in
        let r4 = Tiler.solve ~num_threads:4 ~solver t in
        Alcotest.(check int) "same job set" (List.length r1) (List.length r4);
        List.iter2
          (fun (i1, a) (i4, b) ->
             Alcotest.(check int) "job order" i1 i4;
             check_response (Printf.sprintf "job %d" i1) a b)
          r1 r4);
    Alcotest.test_case "solved samples hit the true ground state" `Quick (fun () ->
        (* A ferromagnetic chain's ground energy is known; the tiled solve
           must find it through embedding + majority vote. *)
        let n = 4 in
        let ferro =
          Problem.create ~num_vars:n ~h:(Array.make n 0.0)
            ~j:(List.init (n - 1) (fun i -> ((i, i + 1), -1.0)))
            ()
        in
        let graph = Chimera.create 4 in
        let t = Tiler.tile ~params graph [| ferro |] in
        match Tiler.solve ~solver t with
        | [ (0, r) ] ->
          Alcotest.(check (float 1e-9)) "ground energy"
            (-.float_of_int (n - 1))
            (Sampler.best r).Sampler.energy
        | _ -> Alcotest.fail "expected one response");
    Alcotest.test_case "per-job deadline flags only that job" `Quick (fun () ->
        let graph = Chimera.create 6 in
        let t = Tiler.tile ~params graph [| chain_problem 5; chain_problem 4 |] in
        let deadline i = if i = 0 then Some 0.0 else None in
        (match Tiler.solve ~deadline ~solver t with
         | [ (0, r0); (1, r1) ] ->
           Alcotest.(check bool) "job 0 timed out" true r0.Sampler.timed_out;
           Alcotest.(check bool) "job 0 kept partial reads" true
             (r0.Sampler.num_reads >= 1);
           Alcotest.(check bool) "job 1 unaffected" false r1.Sampler.timed_out
         | _ -> Alcotest.fail "expected two responses")) ]

let demux_tests =
  [ Alcotest.test_case "merge then demux returns each job's own reads" `Quick
      (fun () ->
         let graph = Chimera.create 6 in
         let t = Tiler.tile ~params graph jobs in
         (* Solve each job's full local physical problem directly. *)
         let locals =
           List.filter_map
             (fun o ->
                match o with
                | Tiler.Placed p ->
                  Some (p.Tiler.job, solver ~deadline:None p.Tiler.physical)
                | _ -> None)
             (Array.to_list t.Tiler.outcomes)
         in
         let merged = Tiler.merge_responses t locals in
         Alcotest.(check int) "merged read count"
           (match locals with (_, r) :: _ -> r.Sampler.num_reads | [] -> 0)
           merged.Sampler.num_reads;
         let demuxed = Tiler.demux t merged in
         (* Each demuxed response must equal unembedding the job's own local
            reads — the global round-trip adds or loses nothing. *)
         List.iter
           (fun (i, local) ->
              let p = placed_exn t i in
              let expected =
                let reads =
                  List.concat_map
                    (fun (s : Sampler.sample) ->
                       let u = Embedding.unembed p.Tiler.embedding s.Sampler.spins in
                       List.init s.Sampler.num_occurrences (fun _ ->
                           u.Embedding.logical))
                    local.Sampler.samples
                in
                Sampler.response_of_reads t.Tiler.problems.(i) reads
              in
              match List.assoc_opt i demuxed with
              | Some got -> check_response (Printf.sprintf "job %d" i) expected got
              | None -> Alcotest.fail "job missing from demux")
           locals);
    Alcotest.test_case "merge_responses rejects ragged read counts" `Quick (fun () ->
        let graph = Chimera.create 6 in
        let t = Tiler.tile ~params graph [| chain_problem 3; chain_problem 3 |] in
        let p0 = placed_exn t 0 and p1 = placed_exn t 1 in
        let r0 = solver ~deadline:None p0.Tiler.physical in
        let r1 =
          Sa.sample
            ~params:{ Sa.default_params with Sa.num_reads = 2; num_sweeps = 10; seed = 1 }
            p1.Tiler.physical
        in
        Alcotest.check_raises "ragged"
          (Invalid_argument "Tiler.merge_responses: responses have unequal num_reads")
          (fun () -> ignore (Tiler.merge_responses t [ (0, r0); (1, r1) ]))) ]

(* QCheck: for random batches of random problems, regions never overlap and
   no cross-tile coupler is ever emitted, and each job demuxes to exactly
   the solution set it gets when solved alone. *)
let random_problem =
  QCheck.Gen.(
    sized_size (int_range 1 6) (fun n ->
        let n = max 1 n in
        let* hs = array_size (return n) (float_range (-1.0) 1.0) in
        let* edges =
          flatten_l
            (List.concat
               (List.init n (fun i ->
                    List.init (n - i - 1) (fun k ->
                        let j = i + k + 1 in
                        let* keep = bool in
                        let* w = float_range (-1.0) 1.0 in
                        return (if keep && w <> 0.0 then Some ((i, j), w) else None)))))
        in
        return
          (Problem.create ~num_vars:n ~h:hs ~j:(List.filter_map Fun.id edges) ())))

let arbitrary_batch =
  QCheck.make
    ~print:(fun ps ->
      String.concat "\n---\n" (List.map Problem.to_string ps))
    QCheck.Gen.(list_size (int_range 1 5) random_problem)

let qcheck_isolation =
  (* Both families: the isolation and invariance contracts are per-family
     obligations of the carving, not Chimera accidents. *)
  QCheck.Test.make ~name:"random batches: isolation + per-job invariance" ~count:15
    arbitrary_batch (fun problems ->
      List.iter
        (fun graph ->
           let batch = Array.of_list problems in
           let t = Tiler.tile ~params graph batch in
           check_isolation t;
           let batched = Tiler.solve ~solver t in
           Array.iteri
             (fun i p ->
                match t.Tiler.outcomes.(i) with
                | Tiler.Placed _ ->
                  let alone = Tiler.tile ~params graph [| p |] in
                  (match (Tiler.solve ~solver alone, List.assoc_opt i batched) with
                   | [ (0, ra) ], Some rb ->
                     check_response (Printf.sprintf "job %d" i) ra rb
                   | _ -> Alcotest.fail "missing response")
                | Tiler.Deferred | Tiler.Failed _ -> ())
             batch)
        [ Chimera.create 6; Qac_chimera.Pegasus.create 4 ];
      true)

let pegasus_tests =
  let graph = Qac_chimera.Pegasus.create 4 in
  [ Alcotest.test_case "all jobs place on P4 with disjoint regions" `Quick (fun () ->
        let t = Tiler.tile ~params graph jobs in
        let placed, deferred, failed = Tiler.counts t in
        Alcotest.(check int) "all placed" (Array.length jobs) placed;
        Alcotest.(check int) "none deferred" 0 deferred;
        Alcotest.(check int) "none failed" 0 failed;
        check_isolation t);
    Alcotest.test_case "composition invariance on Pegasus" `Quick (fun () ->
        let batch = Tiler.tile ~params graph jobs in
        let batched = Tiler.solve ~solver batch in
        Array.iteri
          (fun i p ->
             let alone = Tiler.tile ~params graph [| p |] in
             match (Tiler.solve ~solver alone, List.assoc_opt i batched) with
             | [ (0, ra) ], Some rb -> check_response (Printf.sprintf "job %d" i) ra rb
             | _ -> Alcotest.fail "missing response")
          jobs);
    Alcotest.test_case "Pegasus tiling is identical at 1 and 4 threads" `Quick
      (fun () ->
         let t1 = Tiler.tile ~params ~num_threads:1 graph jobs in
         let t4 = Tiler.tile ~params ~num_threads:4 graph jobs in
         Alcotest.(check bool) "merged problems equal" true
           (Problem.equal t1.Tiler.merged t4.Tiler.merged);
         Array.iteri
           (fun i _ ->
              let p1 = placed_exn t1 i and p4 = placed_exn t4 i in
              Alcotest.(check (array int)) "region qubits" p1.Tiler.region.Tiler.qubits
                p4.Tiler.region.Tiler.qubits)
           jobs);
  ]

let suite =
  tiling_tests @ solve_tests @ demux_tests @ pegasus_tests
  @ [ QCheck_alcotest.to_alcotest qcheck_isolation ]
