(** The SAT frontend: DIMACS parsing diagnostics, the compiler's exact
    energy == violation-cost contract (checked against brute force and the
    exact sampler), clause chaining, the MaxSAT weight-spread guard, qbsolv
    decomposition of over-chip-size formulas, and the serving tier's SAT
    job path (demux, structure-digest sharing, wire protocol). *)

module Dimacs = Qac_sat.Dimacs
module Compile = Qac_sat.Compile
module Problem = Qac_ising.Problem
module Scale = Qac_ising.Scale
module Exact = Qac_ising.Exact
module Gen = Qac_cellgen.Gen
module Qbsolv = Qac_anneal.Qbsolv
module Sampler = Qac_anneal.Sampler
module Sa = Qac_anneal.Sa
module Chimera = Qac_chimera.Chimera
module Tiler = Qac_embed.Tiler
module Cache = Qac_embed.Cache
module Serve = Qac_serve.Serve
module Shard = Qac_serve.Shard
module Server = Qac_serve.Server
module Protocol = Qac_serve.Protocol
module Diag = Qac_diag.Diag

(* --- helpers ------------------------------------------------------------- *)

let expect_error ~stage ?line f =
  match f () with
  | _ -> Alcotest.failf "expected a %s diagnostic" stage
  | exception Diag.Error d ->
    Alcotest.(check string) "stage" stage d.Diag.stage;
    (match line with
     | None -> ()
     | Some l -> Alcotest.(check (option int)) "line" (Some l) d.Diag.line)

let assignment_of_code n code = Array.init n (fun i -> code land (1 lsl i) <> 0)

let brute_optimum compiled =
  let n = compiled.Compile.num_formula_vars in
  let best = ref infinity in
  for code = 0 to (1 lsl n) - 1 do
    best := Float.min !best (Compile.cost compiled (assignment_of_code n code))
  done;
  !best

(* The central contract: with ancillas at their conditional optimum, the
   compiled Hamiltonian's energy IS the violation cost — for every one of
   the 2^n assignments. *)
let check_invariant compiled =
  let n = compiled.Compile.num_formula_vars in
  for code = 0 to (1 lsl n) - 1 do
    let a = assignment_of_code n code in
    let e = Problem.energy compiled.Compile.problem (Compile.spins_of_assignment compiled a) in
    let c = Compile.cost compiled a in
    if Float.abs (e -. c) > 1e-6 *. Float.max 1.0 (Float.abs c) then
      Alcotest.failf "energy %.9g <> cost %.9g on assignment %d" e c code
  done

(* Exact-sampler cross-check: the compiled ground energy equals the MaxSAT
   optimum, every ground state decodes to an optimal assignment, and every
   optimal assignment lifts to a ground state. *)
let check_exact compiled =
  let p = compiled.Compile.problem in
  if p.Problem.num_vars > Exact.max_vars then
    Alcotest.failf "test instance too large for Exact (%d vars)" p.Problem.num_vars;
  let r = Exact.solve p in
  let opt = brute_optimum compiled in
  Alcotest.(check (float 1e-6)) "ground energy = MaxSAT optimum" opt
    r.Exact.ground_energy;
  List.iter
    (fun gs ->
       let a = Compile.decode compiled gs in
       Alcotest.(check (float 1e-6)) "ground state decodes optimally" opt
         (Compile.cost compiled a))
    r.Exact.ground_states;
  let n = compiled.Compile.num_formula_vars in
  for code = 0 to (1 lsl n) - 1 do
    let a = assignment_of_code n code in
    if Compile.cost compiled a <= opt +. 1e-9 then
      Alcotest.(check (float 1e-6)) "optimal assignment lifts to ground" opt
        (Problem.energy p (Compile.spins_of_assignment compiled a))
  done

let random_formula ~rng ~n ~m ~max_k ~weighted =
  let clause () =
    let k = 1 + Random.State.int rng max_k in
    let lits =
      Array.init k (fun _ ->
          let v = 1 + Random.State.int rng n in
          if Random.State.bool rng then v else -v)
    in
    let weight =
      if weighted && Random.State.bool rng then
        Dimacs.Soft (float_of_int (1 + Random.State.int rng 9))
      else Dimacs.Hard
    in
    { Dimacs.lits; weight }
  in
  { Dimacs.num_vars = n;
    clauses = Array.init m (fun _ -> clause ());
    mode = (if weighted then Dimacs.Wcnf else Dimacs.Cnf);
    top = None }

(* A planted instance: every clause is satisfied by [plant], so the formula
   is satisfiable by construction (optimum 0). *)
let planted_3sat ~rng ~n ~m =
  let plant = Array.init n (fun _ -> Random.State.bool rng) in
  let clause () =
    let vs = Array.init 3 (fun _ -> Random.State.int rng n) in
    vs.(1) <- (vs.(0) + 1 + Random.State.int rng (n - 1)) mod n;
    let rec pick () =
      let v = Random.State.int rng n in
      if v = vs.(0) || v = vs.(1) then pick () else v
    in
    vs.(2) <- pick ();
    let lits =
      Array.map (fun v -> if Random.State.bool rng then v + 1 else -(v + 1)) vs
    in
    let sat = Array.exists (fun l -> if l > 0 then plant.(l - 1) else not plant.(-l - 1)) lits in
    if not sat then begin
      (* flip one literal's polarity so the plant satisfies it *)
      let i = Random.State.int rng 3 in
      lits.(i) <- -lits.(i)
    end;
    { Dimacs.lits; weight = Dimacs.Hard }
  in
  ( plant,
    { Dimacs.num_vars = n;
      clauses = Array.init m (fun _ -> clause ());
      mode = Dimacs.Cnf;
      top = None } )

(* --- parser --------------------------------------------------------------- *)

let parser_tests =
  [ Alcotest.test_case "plain CNF with comments and split clauses" `Quick
      (fun () ->
         let f =
           Dimacs.parse
             "c a comment\nc another\np cnf 3 2\n1 -2\n3 0\n-1 2 -3 0\n"
         in
         Alcotest.(check int) "vars" 3 f.Dimacs.num_vars;
         Alcotest.(check int) "clauses" 2 (Array.length f.Dimacs.clauses);
         Alcotest.(check (array int)) "clause 0 spans lines" [| 1; -2; 3 |]
           f.Dimacs.clauses.(0).Dimacs.lits;
         Alcotest.(check bool) "all hard" true
           (Array.for_all (fun c -> c.Dimacs.weight = Dimacs.Hard) f.Dimacs.clauses);
         Alcotest.(check bool) "mode" true (f.Dimacs.mode = Dimacs.Cnf));
    Alcotest.test_case "WCNF: weights, 'h' marker, TOP threshold" `Quick
      (fun () ->
         let f =
           Dimacs.parse "p wcnf 2 4 50\nh 1 0\n50 2 0\n3.5 -1 0\n1 -2 0\n"
         in
         Alcotest.(check bool) "mode" true (f.Dimacs.mode = Dimacs.Wcnf);
         Alcotest.(check (option (float 0.0))) "top" (Some 50.0) f.Dimacs.top;
         Alcotest.(check int) "hard: h marker + at-top weight" 2 (Dimacs.num_hard f);
         Alcotest.(check int) "soft" 2 (Dimacs.num_soft f);
         Alcotest.(check (float 1e-9)) "soft weight sum" 4.5 (Dimacs.soft_weight_sum f));
    Alcotest.test_case "SATLIB '%' terminator" `Quick (fun () ->
        let f = Dimacs.parse "p cnf 2 1\n1 2 0\n%\n0\n" in
        Alcotest.(check int) "clauses" 1 (Array.length f.Dimacs.clauses));
    Alcotest.test_case "violations accounting" `Quick (fun () ->
        let f = Dimacs.parse "p wcnf 2 3\nh 1 2 0\n2 -1 0\n3 -2 0\n" in
        Alcotest.(check bool) "satisfied" true (Dimacs.satisfied f [| true; false |]);
        let hard, soft = Dimacs.violations f [| true; true |] in
        Alcotest.(check int) "hard" 0 hard;
        Alcotest.(check (float 1e-9)) "soft" 5.0 soft;
        let hard, soft = Dimacs.violations f [| false; false |] in
        Alcotest.(check int) "hard" 1 hard;
        Alcotest.(check (float 1e-9)) "soft" 0.0 soft);
    Alcotest.test_case "malformed input carries stage and line" `Quick
      (fun () ->
         expect_error ~stage:"dimacs" ~line:3 (fun () ->
             Dimacs.parse "c ok\np cnf 2 1\n1 5 0\n");
         expect_error ~stage:"dimacs" ~line:1 (fun () ->
             Dimacs.parse "1 2 0\np cnf 2 1\n");
         expect_error ~stage:"dimacs" ~line:3 (fun () ->
             Dimacs.parse "p cnf 2 2\n1 0\np cnf 2 2\n");
         expect_error ~stage:"dimacs" ~line:2 (fun () ->
             Dimacs.parse "p cnf 2 1\n1 2\n");
         expect_error ~stage:"dimacs" ~line:2 (fun () ->
             Dimacs.parse "p wcnf 2 1\n-3 1 0\n");
         expect_error ~stage:"dimacs" ~line:2 (fun () ->
             Dimacs.parse "p wcnf 2 1\nabc 1 0\n");
         expect_error ~stage:"dimacs" ~line:1 (fun () ->
             Dimacs.parse "p dnf 2 1\n1 0\n");
         expect_error ~stage:"dimacs" (fun () -> Dimacs.parse "c nothing here\n");
         expect_error ~stage:"dimacs" (fun () -> Dimacs.parse "p cnf 2 3\n1 0\n2 0\n"))
  ]

(* --- gadget --------------------------------------------------------------- *)

let gadget_tests =
  [ Alcotest.test_case "OR3 gadget verifies, needs an ancilla, caches" `Quick
      (fun () ->
         let g = Compile.clause_gadget () in
         Alcotest.(check bool) "Gen.verify" true (Gen.verify g.Compile.derived);
         Alcotest.(check bool) "at least one ancilla" true
           (g.Compile.derived.Gen.num_ancillas >= 1);
         Alcotest.(check bool) "effective gap positive" true
           (g.Compile.effective_gap > 0.0);
         Alcotest.(check bool) "effective gap >= LP gap" true
           (g.Compile.effective_gap >= g.Compile.derived.Gen.gap -. 1e-9);
         Array.iteri
           (fun idx anc ->
              Alcotest.(check int)
                (Printf.sprintf "ancilla row %d" idx)
                g.Compile.derived.Gen.num_ancillas (Array.length anc))
           g.Compile.ancilla_for;
         (* one LP solve per range: the second call is the same object *)
         Alcotest.(check bool) "cached" true (Compile.clause_gadget () == g));
    Alcotest.test_case "gadget under the Advantage range" `Quick (fun () ->
        let options = { Compile.default_options with Compile.range = Scale.advantage } in
        let g = Compile.clause_gadget ~options () in
        Alcotest.(check bool) "verifies" true (Gen.verify g.Compile.derived);
        Alcotest.(check bool) "fits range" true
          (Scale.fits Scale.advantage g.Compile.derived.Gen.problem))
  ]

(* --- compiler ------------------------------------------------------------- *)

let compile_text text =
  Compile.compile (Dimacs.parse text)

let compiler_tests =
  [ Alcotest.test_case "1/2/3-literal clauses: energy = violation cost" `Quick
      (fun () ->
         let c =
           compile_text "p cnf 4 6\n1 2 -3 0\n-1 3 4 0\n2 3 -4 0\n-2 -3 4 0\n1 -2 4 0\n-1 -3 -4 0\n"
         in
         check_invariant c;
         check_exact c;
         Alcotest.(check (float 1e-9)) "satisfiable" 0.0 (brute_optimum c));
    Alcotest.test_case "unsatisfiable CNF: ground energy counts clauses" `Quick
      (fun () ->
         (* x1, ~x1, and (x1 v x2)(x1 v ~x2)(~x1 v x2)(~x1 v ~x2): any
            assignment violates exactly 1 + 1 = 2 clauses at best. *)
         let c = compile_text "p cnf 2 6\n1 0\n-1 0\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n" in
         check_invariant c;
         check_exact c;
         Alcotest.(check (float 1e-9)) "optimum" 2.0 (brute_optimum c));
    Alcotest.test_case "normalization: duplicates, tautology, empty soft" `Quick
      (fun () ->
         let c =
           Compile.compile
             (Dimacs.parse "p wcnf 2 3\nh 1 1 2 0\n5 1 -1 0\n2 0\n")
         in
         (* duplicate literal merged *)
         Alcotest.(check int) "clause 0 deduped" 2
           (Array.length c.Compile.clauses.(0).Compile.clits);
         (* tautology compiled away *)
         Alcotest.(check int) "tautology has no literals" 0
           (Array.length c.Compile.clauses.(1).Compile.clits);
         Alcotest.(check int) "tautology has no gadget" 0
           (Array.length c.Compile.clauses.(1).Compile.subs);
         (* empty soft clause: a constant cost, never a variable *)
         Alcotest.(check int) "no ancillas" 0 c.Compile.num_ancillas;
         check_invariant c;
         check_exact c;
         (* optimum pays exactly the empty soft clause *)
         Alcotest.(check (float 1e-9)) "optimum" 2.0 (brute_optimum c));
    Alcotest.test_case "empty hard clause is refused" `Quick (fun () ->
        expect_error ~stage:"sat-compile" (fun () ->
            compile_text "p cnf 2 2\n1 2 0\n0\n"));
    Alcotest.test_case "k > 3 chaining: 5-literal clause" `Quick (fun () ->
        let c = compile_text "p cnf 5 2\n1 2 3 4 5 0\n-1 -2 -3 -4 -5 0\n" in
        let cc = c.Compile.clauses.(0) in
        Alcotest.(check int) "chain ancillas" 2 (Array.length cc.Compile.chain);
        Alcotest.(check int) "sub-clauses" 3 (Array.length cc.Compile.subs);
        check_invariant c;
        check_exact c);
    Alcotest.test_case "weighted MaxSAT: optimum is the cheapest trade" `Quick
      (fun () ->
         (* hard x1 xor x2; prefer both true (impossible): pay the lighter *)
         let c =
           compile_text "p wcnf 2 4\nh 1 2 0\nh -1 -2 0\n2 1 0\n5 2 0\n"
         in
         check_invariant c;
         check_exact c;
         Alcotest.(check (float 1e-9)) "optimum" 2.0 (brute_optimum c));
    Alcotest.test_case "hard clauses dominate any soft trade" `Quick (fun () ->
        (* soft weight sum 9; breaking the hard clause must cost more than
           satisfying every soft clause can recoup *)
        let c = compile_text "p wcnf 1 3\nh 1 0\n4 -1 0\n5 -1 0\n" in
        Alcotest.(check (float 1e-9)) "hard weight" 10.0 c.Compile.hard_weight;
        check_invariant c;
        check_exact c;
        Alcotest.(check (float 1e-9)) "optimum keeps the hard clause" 9.0
          (brute_optimum c));
    Alcotest.test_case "repair resets suboptimal ancillas" `Quick (fun () ->
        let c = compile_text "p cnf 3 1\n1 2 3 0\n" in
        let a = [| true; false; false |] in
        let spins = Compile.spins_of_assignment c a in
        (* corrupt every ancilla *)
        for i = c.Compile.num_formula_vars to Array.length spins - 1 do
          spins.(i) <- -spins.(i)
        done;
        let repaired = Compile.repair c spins in
        Alcotest.(check (float 1e-9)) "repaired energy = cost" (Compile.cost c a)
          (Problem.energy c.Compile.problem repaired);
        Alcotest.(check bool) "decision bits kept" true
          (Compile.decode c repaired = a));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random k-SAT: exact sampler cross-check" ~count:40
         QCheck.(pair (int_bound 1_000_000) (pair (int_range 2 5) (int_range 1 6)))
         (fun (seed, (n, m)) ->
            let rng = Random.State.make [| seed; n; m |] in
            let f = random_formula ~rng ~n ~m ~max_k:3 ~weighted:false in
            let c = Compile.compile f in
            check_invariant c;
            check_exact c;
            true));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random weighted MaxSAT: exact sampler cross-check"
         ~count:30
         QCheck.(pair (int_bound 1_000_000) (pair (int_range 2 5) (int_range 1 6)))
         (fun (seed, (n, m)) ->
            let rng = Random.State.make [| seed; n; m; 7 |] in
            let f = random_formula ~rng ~n ~m ~max_k:3 ~weighted:true in
            let c = Compile.compile f in
            check_invariant c;
            check_exact c;
            true));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random long clauses chain correctly" ~count:15
         QCheck.(pair (int_bound 1_000_000) (int_range 4 6))
         (fun (seed, max_k) ->
            let rng = Random.State.make [| seed; max_k; 13 |] in
            let f = random_formula ~rng ~n:6 ~m:3 ~max_k ~weighted:false in
            let c = Compile.compile f in
            if c.Compile.problem.Problem.num_vars <= Exact.max_vars then begin
              check_invariant c;
              check_exact c
            end
            else check_invariant c;
            true))
  ]

(* --- weight-spread guard --------------------------------------------------- *)

let guard_tests =
  [ Alcotest.test_case "2^40 weight spread is refused, not clipped" `Quick
      (fun () ->
         expect_error ~stage:"sat-compile" (fun () ->
             compile_text "p wcnf 2 2\n1 1 0\n1099511627776 2 0\n"));
    Alcotest.test_case "moderate spread compiles" `Quick (fun () ->
        let c = compile_text "p wcnf 2 2\n1 1 0\n1000 2 0\n" in
        check_invariant c);
    Alcotest.test_case "precision_bits option tightens the budget" `Quick
      (fun () ->
         let options = { Compile.default_options with Compile.precision_bits = 5 } in
         expect_error ~stage:"sat-compile" (fun () ->
             Compile.compile ~options (Dimacs.parse "p wcnf 2 2\n1 1 0\n100 2 0\n"));
         (* the same text passes at the default budget *)
         ignore (compile_text "p wcnf 2 2\n1 1 0\n100 2 0\n"))
  ]

(* --- qbsolv decomposition -------------------------------------------------- *)

let qbsolv_tests =
  [ Alcotest.test_case "over-chip-size CNF through the decomposer" `Slow
      (fun () ->
         let rng = Random.State.make [| 2024 |] in
         let _plant, f = planted_3sat ~rng ~n:20 ~m:70 in
         let c = Compile.compile f in
         (* far beyond both Exact.max_vars and a C2 chip's 32 qubits *)
         Alcotest.(check bool) "over chip size" true
           (c.Compile.problem.Problem.num_vars > 32);
         let r =
           Qbsolv.sample
             ~params:{ Qbsolv.sub_size = 18; num_repeats = 12; max_rounds = 200;
                       seed = 11 }
             c.Compile.problem
         in
         let best =
           List.fold_left
             (fun acc (s : Sampler.sample) ->
                match acc with
                | Some (b : Sampler.sample) when b.Sampler.energy <= s.Sampler.energy -> acc
                | _ -> Some s)
             None r.Sampler.samples
         in
         let s = Option.get best in
         let a = Compile.decode c s.Sampler.spins in
         let hard, _ = Dimacs.violations f a in
         (* penalty-gap accounting: after ancilla repair, the energy IS the
            violated-clause count *)
         let repaired = Compile.repair c s.Sampler.spins in
         Alcotest.(check (float 1e-6)) "repaired energy = violation count"
           (float_of_int hard)
           (Problem.energy c.Compile.problem repaired);
         (* the sampler's raw energy can only over-report (suboptimal
            ancillas), never under-report *)
         Alcotest.(check bool) "reported energy >= violation count" true
           (s.Sampler.energy >= float_of_int hard -. 1e-6);
         (* a planted instance is satisfiable; the decomposer must do real
            optimization work (a random assignment violates ~m/8 = 9 of 70
            clauses in expectation), though its local optimum need not be
            the plant *)
         Alcotest.(check bool) "decomposer optimizes" true (hard <= 8))
  ]

(* --- serving tier ---------------------------------------------------------- *)

let tiler_params =
  { Tiler.default_params with
    Tiler.embed_params = Some { Qac_embed.Cmr.default_params with tries = 4 } }

let serve_solver ~deadline p =
  Sa.sample
    ~params:{ Sa.default_params with Sa.num_reads = 8; num_sweeps = 60; seed = 5 }
    ?deadline p

let chain_problem n =
  Problem.create ~num_vars:n
    ~h:(Array.init n (fun i -> if i mod 2 = 0 then 0.5 else -0.25))
    ~j:(List.init (n - 1) (fun i -> ((i, i + 1), if i mod 3 = 0 then -1.0 else 0.5)))
    ()

let serve_tests =
  [ Alcotest.test_case "mixed circuit + SAT batch drains Done with demux" `Quick
      (fun () ->
         (* Same clause structure, different weights: downstream the two SAT
            problems must share an embedding-cache entry. *)
         let sat_a =
           Compile.compile (Dimacs.parse "p wcnf 4 4\nh 1 2 -3 0\nh -2 3 4 0\n2 -1 0\n3 -4 0\n")
         in
         let sat_b =
           Compile.compile (Dimacs.parse "p wcnf 4 4\nh 1 2 -3 0\nh -2 3 4 0\n5 -1 0\n7 -4 0\n")
         in
         Alcotest.(check bool) "same structure digest" true
           (Cache.structure_digest sat_a.Compile.problem
            = Cache.structure_digest sat_b.Compile.problem);
         Alcotest.(check bool) "different content" false
           (Problem.equal sat_a.Compile.problem sat_b.Compile.problem);
         let embed_cache = Cache.create () in
         let t =
           Serve.create ~embed_cache ~tiler_params ~solver:serve_solver
             ~graph:(Chimera.create 6) ()
         in
         let jobs =
           [ { Serve.id = "circuit-0"; problem = chain_problem 5; timeout_ms = None };
             { Serve.id = "sat-a"; problem = sat_a.Compile.problem; timeout_ms = None };
             { Serve.id = "circuit-1"; problem = chain_problem 7; timeout_ms = None };
             { Serve.id = "sat-b"; problem = sat_b.Compile.problem; timeout_ms = None } ]
         in
         List.iter (Serve.submit t) jobs;
         let results = Serve.drain t in
         Alcotest.(check int) "all four served" 4 (List.length results);
         List.iter2
           (fun (j : Serve.job) (r : Serve.result) ->
              Alcotest.(check string) "demux order" j.Serve.id r.Serve.id;
              (match r.Serve.status with
               | Serve.Done -> ()
               | _ -> Alcotest.failf "%s: not Done" r.Serve.id);
              let resp = Option.get r.Serve.response in
              List.iter
                (fun (s : Sampler.sample) ->
                   Alcotest.(check int) (j.Serve.id ^ ": logical width")
                     j.Serve.problem.Problem.num_vars
                     (Array.length s.Sampler.spins))
                resp.Sampler.samples)
           jobs results;
         (* the SAT results decode and account exactly *)
         List.iter
           (fun (compiled, id) ->
              let r = List.find (fun (r : Serve.result) -> r.Serve.id = id) results in
              let resp = Option.get r.Serve.response in
              List.iter
                (fun (s : Sampler.sample) ->
                   let a = Compile.decode compiled s.Sampler.spins in
                   let repaired = Compile.repair compiled s.Sampler.spins in
                   Alcotest.(check (float 1e-6)) (id ^ ": repaired accounting")
                     (Compile.cost compiled a)
                     (Problem.energy compiled.Compile.problem repaired))
                resp.Sampler.samples)
           [ (sat_a, "sat-a"); (sat_b, "sat-b") ];
         (* structure sharing showed up as an embed-cache hit *)
         let stats = Cache.stats embed_cache in
         Alcotest.(check bool) "embed-cache hit across SAT jobs" true
           (stats.Cache.hits >= 1));
    Alcotest.test_case "submit_sat over the wire: compile server-side" `Quick
      (fun () ->
         let dimacs = "p cnf 3 2\n1 -2 3 0\n-1 2 0\n" in
         let compiled = Compile.compile (Dimacs.parse dimacs) in
         let pool =
           Shard.create ~num_shards:1 ~tiler_params ~solver:serve_solver
             ~graph:(Chimera.create 6) ()
         in
         let sock_path = Filename.temp_file "qac_test_sat" ".sock" in
         let server = Server.create ~pool ~sockaddr:(Unix.ADDR_UNIX sock_path) () in
         let server_domain = Domain.spawn (fun () -> Server.run server) in
         let fd = Protocol.connect (Unix.ADDR_UNIX sock_path) in
         let ticket =
           match
             Protocol.call fd
               (Protocol.Submit_sat { id = "wire-sat"; dimacs; timeout_ms = None })
           with
           | Protocol.Submitted { ticket; _ } -> ticket
           | _ -> Alcotest.fail "submit_sat not accepted"
         in
         (* malformed DIMACS answers a structured error, same connection *)
         (match
            Protocol.call fd
              (Protocol.Submit_sat { id = "bad"; dimacs = "p cnf 1 1\n5 0\n";
                                     timeout_ms = None })
          with
          | Protocol.Error msg ->
            Alcotest.(check bool) "diagnostic names the stage" true
              (String.length msg >= 6 && String.sub msg 0 6 = "dimacs")
          | _ -> Alcotest.fail "expected Error for malformed DIMACS");
         let rec poll () =
           match Protocol.call fd (Protocol.Poll ticket) with
           | Protocol.Completed r -> r
           | Protocol.Pending ->
             Unix.sleepf 0.002;
             poll ()
           | _ -> Alcotest.fail "unexpected poll reply"
         in
         let r = poll () in
         (match Protocol.call fd Protocol.Shutdown with
          | Protocol.Shutdown_ok -> ()
          | _ -> Alcotest.fail "unexpected shutdown reply");
         Unix.close fd;
         ignore (Domain.join server_domain);
         Alcotest.(check string) "id" "wire-sat" r.Serve.id;
         (match r.Serve.status with
          | Serve.Done -> ()
          | _ -> Alcotest.fail "not Done");
         let resp = Option.get r.Serve.response in
         List.iter
           (fun (s : Sampler.sample) ->
              Alcotest.(check int) "compiled width"
                compiled.Compile.problem.Problem.num_vars
                (Array.length s.Sampler.spins);
              ignore (Compile.decode compiled s.Sampler.spins))
           resp.Sampler.samples);
    Alcotest.test_case "submit_sat JSON codec round-trips" `Quick (fun () ->
        let check r =
          Alcotest.(check bool) "round-trip" true
            (Protocol.request_of_json (Protocol.request_to_json r) = r)
        in
        check (Protocol.Submit_sat { id = "a"; dimacs = "p cnf 1 1\n1 0\n";
                                     timeout_ms = None });
        check (Protocol.Submit_sat { id = "b"; dimacs = "p wcnf 1 1\n2 -1 0\n";
                                     timeout_ms = Some 125.0 }))
  ]

let suite =
  parser_tests @ gadget_tests @ compiler_tests @ guard_tests @ qbsolv_tests
  @ serve_tests
