open Qac_verilog
module Sim = Qac_netlist.Sim

let bits_of_int width v = Array.init width (fun i -> (v lsr i) land 1 = 1)

let int_of_bits = Verilog.int_of_bits

(* The paper's Figure 2(a). *)
let fig2_src =
  {|
module circuit (s, a, b, c);
  input s;
  input a;
  input b;
  output [1:0] c;
  assign c = s ? a + b : a - b;
endmodule
|}

(* The paper's Listing 5 (circuit satisfiability, Figure 4). *)
let circsat_src =
  {|
module circsat (a, b, c, y);
  input a, b, c;
  output y;
  wire [1:10] x;
  assign x[1] = a;
  assign x[2] = b;
  assign x[3] = c;
  assign x[4] = ~x[3];
  assign x[5] = x[1] | x[2];
  assign x[6] = ~x[4];
  assign x[7] = x[1] & x[2] & x[4];
  assign x[8] = x[5] | x[6];
  assign x[9] = x[6] | x[7];
  assign x[10] = x[8] & x[9] & x[7];
  assign y = x[10];
endmodule
|}

(* The paper's Listing 6 (multiplier). *)
let mult_src =
  {|
module mult (A, B, C);
  input [3:0] A;
  input [3:0] B;
  output [7:0] C;
  assign C = A * B;
endmodule
|}

(* The paper's Listing 7 (map of Australia). *)
let australia_src =
  {|
module australia (NSW, QLD, SA, VIC, WA, NT, ACT, valid);
  input [1:0] NSW, QLD, SA, VIC, WA, NT, ACT;
  output valid;
  assign valid = WA != NT && WA != SA && NT != SA && NT != QLD && SA != QLD
              && SA != NSW && SA != VIC && QLD != NSW && NSW != VIC && NSW != ACT;
endmodule
|}

(* The paper's Listing 3 (sequential counter). *)
let counter_src =
  {|
module count (clk, inc, reset, out);
  input clk;
  input inc;
  input reset;
  output [5:0] out;
  reg [5:0] var;
  always @(posedge clk)
    if (reset)
      var <= 0;
    else
      if (inc)
        var <= var + 1;
  assign out = var;
endmodule
|}

let parser_tests =
  [ Alcotest.test_case "fig2 parses" `Quick (fun () ->
        match Verilog.parse fig2_src with
        | [ m ] ->
          Alcotest.(check string) "name" "circuit" m.Ast.module_name;
          Alcotest.(check (list string)) "ports" [ "s"; "a"; "b"; "c" ] m.Ast.ports
        | _ -> Alcotest.fail "expected one module");
    Alcotest.test_case "numbers" `Quick (fun () ->
        let src = "module t (o); output [31:0] o; assign o = 4'b1010 + 8'hff + 'd7 + 12; endmodule" in
        match Verilog.parse src with
        | [ _ ] -> ()
        | _ -> Alcotest.fail "parse failed");
    Alcotest.test_case "ANSI ports" `Quick (fun () ->
        let src = "module t (input [3:0] a, output [3:0] b); assign b = a; endmodule" in
        let m = Verilog.elaborate src in
        Alcotest.(check int) "ports" 2 (List.length m.Elab.ports));
    Alcotest.test_case "operator precedence" `Quick (fun () ->
        (* 1 + 2 * 3 == 7 must hold *)
        let src = "module t (o); output o; assign o = (1 + 2 * 3) == 7; endmodule" in
        let ev = Verilog.interpreter src in
        Alcotest.(check (list (pair string int))) "out" [ ("o", 1) ]
          (Eval.comb_outputs ev ~inputs:[]));
    Alcotest.test_case "parse error reported with line" `Quick (fun () ->
        match Verilog.parse "module t (a);\n input a;\n garbage !;\nendmodule" with
        | exception Qac_diag.Diag.Error d ->
          let msg = d.Qac_diag.Diag.message in
          Alcotest.(check bool) "mentions line" true
            (String.length msg > 4 && String.sub msg 0 4 = "line")
        | _ -> Alcotest.fail "expected parse error");
    Alcotest.test_case "block comments and directives skipped" `Quick (fun () ->
        let src = "`timescale 1ns/1ps\nmodule t (o); /* multi\nline */ output o; assign o = 1; // eol\nendmodule" in
        match Verilog.parse src with
        | [ _ ] -> ()
        | _ -> Alcotest.fail "parse failed");
  ]

let eval_tests =
  [ Alcotest.test_case "fig2 interpreter: mux of add/sub" `Quick (fun () ->
        let ev = Verilog.interpreter fig2_src in
        let run s a b =
          List.assoc "c" (Eval.comb_outputs ev ~inputs:[ ("s", s); ("a", a); ("b", b) ])
        in
        Alcotest.(check int) "1+1 (s=1)" 2 (run 1 1 1);
        Alcotest.(check int) "1-0 (s=0)" 1 (run 0 1 0);
        Alcotest.(check int) "1-1 (s=0)" 0 (run 0 1 1);
        (* 0 - 1 wraps to 2'b11 = 3 *)
        Alcotest.(check int) "0-1 wraps" 3 (run 0 0 1));
    Alcotest.test_case "circsat evaluates like Figure 4" `Quick (fun () ->
        let ev = Verilog.interpreter circsat_src in
        let y a b c =
          List.assoc "y" (Eval.comb_outputs ev ~inputs:[ ("a", a); ("b", b); ("c", c) ])
        in
        (* The paper states (1,1,0) satisfies the circuit. *)
        Alcotest.(check int) "110 satisfies" 1 (y 1 1 0);
        (* Exhaustive check: exactly the satisfying assignments output 1. *)
        let count = ref 0 in
        for a = 0 to 1 do
          for b = 0 to 1 do
            for c = 0 to 1 do
              if y a b c = 1 then incr count
            done
          done
        done;
        Alcotest.(check int) "exactly one satisfying assignment" 1 !count);
    Alcotest.test_case "multiplier" `Quick (fun () ->
        let ev = Verilog.interpreter mult_src in
        for a = 0 to 15 do
          for b = 0 to 15 do
            Alcotest.(check int) "product" (a * b)
              (List.assoc "C" (Eval.comb_outputs ev ~inputs:[ ("A", a); ("B", b) ]))
          done
        done);
    Alcotest.test_case "australia checker accepts/rejects colorings" `Quick (fun () ->
        let ev = Verilog.interpreter australia_src in
        let valid assignment = List.assoc "valid" (Eval.comb_outputs ev ~inputs:assignment) in
        (* One of the paper's returned colorings:
           ACT=2 NSW=0 NT=1 QLD=3 SA=2 VIC=3 WA=3 *)
        Alcotest.(check int) "paper coloring valid" 1
          (valid
             [ ("ACT", 2); ("NSW", 0); ("NT", 1); ("QLD", 3); ("SA", 2); ("VIC", 3);
               ("WA", 3) ]);
        Alcotest.(check int) "all-same invalid" 0
          (valid
             [ ("ACT", 1); ("NSW", 1); ("NT", 1); ("QLD", 1); ("SA", 1); ("VIC", 1);
               ("WA", 1) ]));
    Alcotest.test_case "counter sequential behaviour (Listing 3)" `Quick (fun () ->
        let ev = Verilog.interpreter counter_src in
        let inputs inc reset = [ ("clk", 0); ("inc", inc); ("reset", reset) ] in
        let outs =
          Eval.run ev
            ~inputs:
              [ inputs 1 0; inputs 1 0; inputs 0 0; inputs 1 0; inputs 1 1; inputs 1 0 ]
        in
        let values = List.map (List.assoc "out") outs in
        (* out reflects the state *before* each edge *)
        Alcotest.(check (list int)) "trace" [ 0; 1; 2; 2; 3; 0 ] values);
    Alcotest.test_case "blocking vs nonblocking in clocked block" `Quick (fun () ->
        let src =
          {|
module t (clk, o1, o2);
  input clk;
  output [3:0] o1, o2;
  reg [3:0] r1, r2;
  always @(posedge clk) begin
    r1 = r1 + 1;
    r2 <= r1;
  end
  assign o1 = r1;
  assign o2 = r2;
endmodule
|}
        in
        let ev = Verilog.interpreter src in
        let outs = Eval.run ev ~inputs:[ [ ("clk", 0) ]; [ ("clk", 0) ] ] in
        (* After one edge: r1=1 (blocking), r2 sees updated r1 = 1. *)
        let second = List.nth outs 1 in
        Alcotest.(check int) "r1" 1 (List.assoc "o1" second);
        Alcotest.(check int) "r2 saw blocking update" 1 (List.assoc "o2" second));
    Alcotest.test_case "combinational always block with case" `Quick (fun () ->
        let src =
          {|
module t (sel, o);
  input [1:0] sel;
  output [3:0] o;
  reg [3:0] o;
  always @* begin
    case (sel)
      0: o = 4'd1;
      1: o = 4'd2;
      2, 3: o = 4'd9;
    endcase
  end
endmodule
|}
        in
        let ev = Verilog.interpreter src in
        let o sel = List.assoc "o" (Eval.comb_outputs ev ~inputs:[ ("sel", sel) ]) in
        Alcotest.(check (list int)) "cases" [ 1; 2; 9; 9 ] (List.map o [ 0; 1; 2; 3 ]));
    Alcotest.test_case "latch detected" `Quick (fun () ->
        let src =
          {|
module t (c, o);
  input c;
  output o;
  reg o;
  always @* if (c) o = 1;
endmodule
|}
        in
        let ev = Verilog.interpreter src in
        match Eval.comb_outputs ev ~inputs:[ ("c", 0) ] with
        | exception Qac_diag.Diag.Error _ -> ()
        | _ -> Alcotest.fail "expected latch error");
    Alcotest.test_case "combinational cycle detected" `Quick (fun () ->
        let src = "module t (o); output o; wire w; assign w = ~w; assign o = w; endmodule" in
        let ev = Verilog.interpreter src in
        match Eval.comb_outputs ev ~inputs:[] with
        | exception Qac_diag.Diag.Error _ -> ()
        | _ -> Alcotest.fail "expected cycle error");
    Alcotest.test_case "concat and replicate" `Quick (fun () ->
        let src =
          "module t (a, o); input [1:0] a; output [5:0] o; assign o = {a, {2{1'b1}}, a[0]}; endmodule"
        in
        let ev = Verilog.interpreter src in
        (* a=2'b10 -> {10, 11, 0} = 5'b10110 -> 6'b010110 = 22 *)
        Alcotest.(check int) "concat" 22
          (List.assoc "o" (Eval.comb_outputs ev ~inputs:[ ("a", 2) ])));
    Alcotest.test_case "shift operators" `Quick (fun () ->
        let src =
          "module t (a, s, l, r); input [7:0] a; input [2:0] s; output [7:0] l, r; assign l = a << s; assign r = a >> s; endmodule"
        in
        let ev = Verilog.interpreter src in
        let run a s =
          let outs = Eval.comb_outputs ev ~inputs:[ ("a", a); ("s", s) ] in
          (List.assoc "l" outs, List.assoc "r" outs)
        in
        Alcotest.(check (pair int int)) "shift 3" ((0b10110000, 0b00000010)) (run 0b10110 3);
        Alcotest.(check (pair int int)) "shift 0" ((0b10110, 0b10110)) (run 0b10110 0));
    Alcotest.test_case "division and modulo" `Quick (fun () ->
        let src =
          "module t (a, b, q, r); input [7:0] a, b; output [7:0] q, r; assign q = a / b; assign r = a % b; endmodule"
        in
        let ev = Verilog.interpreter src in
        let run a b =
          let outs = Eval.comb_outputs ev ~inputs:[ ("a", a); ("b", b) ] in
          (List.assoc "q" outs, List.assoc "r" outs)
        in
        Alcotest.(check (pair int int)) "17/5" ((3, 2)) (run 17 5);
        Alcotest.(check (pair int int)) "by zero" ((255, 9)) (run 9 0));
  ]

let elab_tests =
  [ Alcotest.test_case "parameters resolve widths" `Quick (fun () ->
        let src =
          "module t (a, o); parameter W = 8; input [W-1:0] a; output [W-1:0] o; assign o = a + 1; endmodule"
        in
        let m = Verilog.elaborate src in
        Alcotest.(check int) "width" 8 (Elab.net_width m "a"));
    Alcotest.test_case "hierarchical flattening" `Quick (fun () ->
        let src =
          {|
module half_add (a, b, s, c);
  input a, b;
  output s, c;
  assign s = a ^ b;
  assign c = a & b;
endmodule

module full_add (a, b, cin, s, cout);
  input a, b, cin;
  output s, cout;
  wire s1, c1, c2;
  half_add h1 (.a(a), .b(b), .s(s1), .c(c1));
  half_add h2 (.a(s1), .b(cin), .s(s), .c(c2));
  assign cout = c1 | c2;
endmodule
|}
        in
        let ev = Verilog.interpreter src in
        for code = 0 to 7 do
          let a = code land 1 and b = (code lsr 1) land 1 and cin = (code lsr 2) land 1 in
          let outs = Eval.comb_outputs ev ~inputs:[ ("a", a); ("b", b); ("cin", cin) ] in
          let total = a + b + cin in
          Alcotest.(check int) "s" (total land 1) (List.assoc "s" outs);
          Alcotest.(check int) "cout" (total lsr 1) (List.assoc "cout" outs)
        done);
    Alcotest.test_case "positional connections and parameter override" `Quick (fun () ->
        let src =
          {|
module add (a, b, o);
  parameter W = 2;
  input [W-1:0] a, b;
  output [W-1:0] o;
  assign o = a + b;
endmodule

module top (x, y, o);
  input [3:0] x, y;
  output [3:0] o;
  add #(.W(4)) u (x, y, o);
endmodule
|}
        in
        let ev = Verilog.interpreter ~top:"top" src in
        Alcotest.(check int) "sum" 11
          (List.assoc "o" (Eval.comb_outputs ev ~inputs:[ ("x", 5); ("y", 6) ])));
    Alcotest.test_case "for loop unrolls" `Quick (fun () ->
        let src =
          {|
module t (a, o);
  input [7:0] a;
  output [7:0] o;
  reg [7:0] o;
  integer i;
  always @* begin
    for (i = 0; i < 8; i = i + 1)
      o[i] = a[7 - i];
  end
endmodule
|}
        in
        let ev = Verilog.interpreter src in
        Alcotest.(check int) "bit reverse" 0b00001101
          (List.assoc "o" (Eval.comb_outputs ev ~inputs:[ ("a", 0b10110000) ])));
    Alcotest.test_case "recursive instantiation rejected" `Quick (fun () ->
        let src = "module t (o); output o; t inner (.o(o)); endmodule" in
        match Verilog.elaborate src with
        | exception Qac_diag.Diag.Error _ -> ()
        | _ -> Alcotest.fail "expected recursion error");
    Alcotest.test_case "width limit enforced" `Quick (fun () ->
        let src = "module t (o); output [63:0] o; assign o = 0; endmodule" in
        match Verilog.elaborate src with
        | exception Qac_diag.Diag.Error _ -> ()
        | _ -> Alcotest.fail "expected width error");
    Alcotest.test_case "wire [1:10] ascending range rejected" `Quick (fun () ->
        (* Listing 5 uses wire [1:10]; we require msb >= lsb... except the
           paper's listing!  Accept descending only: [1:10] has msb < lsb. *)
        match Verilog.elaborate "module t (o); output o; wire [1:10] x; assign o = x[1]; endmodule" with
        | exception Qac_diag.Diag.Error _ -> Alcotest.fail "ascending [1:10] must be supported (Listing 5)"
        | _ -> ());
  ]

(* Differential testing: the synthesized netlist must agree with the
   interpreter on every module and input. *)
let check_equivalence ?(inputs_per_module = 64) src =
  let m = Verilog.elaborate src in
  let ev = Eval.create m in
  let result = Synth.synthesize m in
  let n = result.Synth.netlist in
  let input_ports =
    List.filter_map
      (fun (name, dir, w) -> if dir = Ast.Input then Some (name, w) else None)
      m.Elab.ports
  in
  let total_bits = List.fold_left (fun acc (_, w) -> acc + w) 0 input_ports in
  let cases =
    if total_bits <= 10 then List.init (1 lsl total_bits) (fun c -> c)
    else
      let st = Random.State.make [| Hashtbl.hash src |] in
      List.init inputs_per_module (fun _ -> Random.State.int st (1 lsl (min total_bits 30)))
  in
  List.iter
    (fun code ->
       let _, assignment =
         List.fold_left
           (fun (shift, acc) (name, w) ->
              (shift + w, (name, (code lsr shift) land ((1 lsl w) - 1)) :: acc))
           (0, []) input_ports
       in
       let expected = Eval.comb_outputs ev ~inputs:assignment in
       let got =
         Sim.comb n
           ~inputs:(List.map (fun (name, v) -> (name, bits_of_int (Eval.width ev name) v)) assignment)
       in
       List.iter
         (fun (name, v) ->
            Alcotest.(check int)
              (Printf.sprintf "%s (inputs %d)" name code)
              v
              (int_of_bits (List.assoc name got)))
         expected)
    cases

let synth_tests =
  [ Alcotest.test_case "fig2 synthesizes and matches interpreter" `Quick (fun () ->
        check_equivalence fig2_src);
    Alcotest.test_case "circsat synthesizes and matches" `Quick (fun () ->
        check_equivalence circsat_src);
    Alcotest.test_case "multiplier synthesizes and matches" `Quick (fun () ->
        check_equivalence mult_src);
    Alcotest.test_case "australia synthesizes and matches" `Quick (fun () ->
        check_equivalence australia_src);
    Alcotest.test_case "division synthesizes and matches" `Quick (fun () ->
        check_equivalence
          "module t (a, b, q, r); input [3:0] a, b; output [3:0] q, r; assign q = a / b; assign r = a % b; endmodule");
    Alcotest.test_case "shifts synthesize and match" `Quick (fun () ->
        check_equivalence
          "module t (a, s, l, r); input [3:0] a; input [1:0] s; output [3:0] l, r; assign l = a << s; assign r = a >> s; endmodule");
    Alcotest.test_case "comparisons synthesize and match" `Quick (fun () ->
        check_equivalence
          "module t (a, b, o); input [2:0] a, b; output [5:0] o; assign o = {a < b, a <= b, a > b, a >= b, a == b, a != b}; endmodule");
    Alcotest.test_case "ternary and logical ops match" `Quick (fun () ->
        check_equivalence
          "module t (a, b, c, o); input [1:0] a, b; input c; output [1:0] o; assign o = c && (a || b) ? a : ~b; endmodule");
    Alcotest.test_case "reductions match" `Quick (fun () ->
        check_equivalence
          "module t (a, o); input [3:0] a; output [5:0] o; assign o = {&a, |a, ^a, ~&a, ~|a, ~^a}; endmodule");
    Alcotest.test_case "counter synthesizes: sequential equivalence" `Quick (fun () ->
        let m = Verilog.elaborate counter_src in
        let ev = Eval.create m in
        let result = Synth.synthesize m in
        let n = result.Synth.netlist in
        Alcotest.(check int) "6 flip-flops" 6 (Qac_netlist.Netlist.num_flip_flops n);
        (* Drive both with the same random input sequence. *)
        let st = Random.State.make [| 7 |] in
        let seq =
          List.init 20 (fun _ -> (Random.State.int st 2, Random.State.int st 4 = 0))
        in
        let ev_outs =
          Eval.run ev
            ~inputs:
              (List.map
                 (fun (inc, reset) ->
                    [ ("clk", 0); ("inc", inc); ("reset", if reset then 1 else 0) ])
                 seq)
        in
        let sim_outs =
          Sim.run n
            ~inputs:
              (List.map
                 (fun (inc, reset) ->
                    [ ("clk", [| false |]);
                      ("inc", [| inc = 1 |]);
                      ("reset", [| reset |]) ])
                 seq)
        in
        List.iter2
          (fun e s ->
             Alcotest.(check int) "out" (List.assoc "out" e)
               (int_of_bits (List.assoc "out" s)))
          ev_outs sim_outs);
  ]

(* Random Verilog expression programs for property-based equivalence. *)
let random_module_gen =
  QCheck.Gen.(
    let* seed = int_bound 1_000_000 in
    return seed)

let generate_random_module seed =
  let st = Random.State.make [| seed |] in
  let widths = [ 1; 2; 3; 4 ] in
  let w_in = List.nth widths (Random.State.int st 4) in
  let num_ops = 1 + Random.State.int st 8 in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "module r (a, b, o);\n";
  Buffer.add_string buf (Printf.sprintf "  input [%d:0] a, b;\n" (w_in - 1));
  Buffer.add_string buf (Printf.sprintf "  output [%d:0] o;\n" (w_in - 1));
  let terms = ref [ "a"; "b" ] in
  for i = 0 to num_ops - 1 do
    let pick () = List.nth !terms (Random.State.int st (List.length !terms)) in
    let ops = [| "+"; "-"; "*"; "&"; "|"; "^"; "<<"; ">>" |] in
    let op = ops.(Random.State.int st (Array.length ops)) in
    let name = Printf.sprintf "w%d" i in
    Buffer.add_string buf
      (Printf.sprintf "  wire [%d:0] %s;\n  assign %s = %s %s %s;\n" (w_in - 1) name name
         (pick ()) op (pick ()));
    terms := name :: !terms
  done;
  Buffer.add_string buf
    (Printf.sprintf "  assign o = %s;\n" (List.hd !terms));
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let property_tests =
  let equivalence =
    QCheck.Test.make ~name:"random Verilog: synth matches interpreter" ~count:60
      (QCheck.make random_module_gen) (fun seed ->
        let src = generate_random_module seed in
        check_equivalence ~inputs_per_module:16 src;
        true)
  in
  [ QCheck_alcotest.to_alcotest equivalence ]

let suite = parser_tests @ eval_tests @ elab_tests @ synth_tests @ property_tests
