(** The batch solver service: ordering, batching, deadlines, retries,
    backpressure, and reproducibility across thread counts. *)

open Qac_ising
module Chimera = Qac_chimera.Chimera
module Tiler = Qac_embed.Tiler
module Serve = Qac_serve.Serve
module Sampler = Qac_anneal.Sampler
module Sa = Qac_anneal.Sa
module Trace = Qac_diag.Trace

let tiler_params =
  { Tiler.default_params with
    Tiler.embed_params = Some { Qac_embed.Cmr.default_params with tries = 4 } }

let solver ~deadline p =
  Sa.sample
    ~params:{ Sa.default_params with Sa.num_reads = 6; num_sweeps = 40; seed = 5 }
    ?deadline p

let chain_problem n =
  Problem.create ~num_vars:n
    ~h:(Array.init n (fun i -> if i mod 2 = 0 then 0.5 else -0.25))
    ~j:(List.init (n - 1) (fun i -> ((i, i + 1), if i mod 3 = 0 then -1.0 else 0.5)))
    ()

(* [bias] varies the fields without touching the interaction structure:
   same embedding footprint, but distinct problem content — such jobs are
   not coalescible duplicates of each other. *)
let dense_problem ?(bias = 0.1) n =
  let j = ref [] in
  for i = 0 to n - 1 do
    for k = i + 1 to n - 1 do
      j := ((i, k), if (i + k) mod 2 = 0 then 0.5 else -0.5) :: !j
    done
  done;
  Problem.create ~num_vars:n ~h:(Array.make n bias) ~j:!j ()

let job ?timeout_ms id problem = { Serve.id; problem; timeout_ms }

let check_sample (a : Sampler.sample) (b : Sampler.sample) =
  Alcotest.(check (array int)) "spins" a.Sampler.spins b.Sampler.spins;
  Alcotest.(check (float 1e-9)) "energy" a.Sampler.energy b.Sampler.energy;
  Alcotest.(check int) "occurrences" a.Sampler.num_occurrences b.Sampler.num_occurrences

let check_response name (a : Sampler.response) (b : Sampler.response) =
  Alcotest.(check int) (name ^ ": num_reads") a.Sampler.num_reads b.Sampler.num_reads;
  Alcotest.(check int)
    (name ^ ": distinct")
    (List.length a.Sampler.samples)
    (List.length b.Sampler.samples);
  List.iter2 check_sample a.Sampler.samples b.Sampler.samples

let response_exn (r : Serve.result) =
  match r.Serve.response with
  | Some resp -> resp
  | None -> Alcotest.fail (r.Serve.id ^ ": no response")

let serve_all ?num_threads ?batch_jobs ?queue_capacity ?trace graph jobs =
  let t =
    Serve.create ?num_threads ?batch_jobs ?queue_capacity ?trace
      ~tiler_params ~solver ~graph ()
  in
  List.iter (Serve.submit t) jobs;
  let results = Serve.drain t in
  (results, Serve.stats t)

let basic_tests =
  [ Alcotest.test_case "drain returns every job in submission order" `Quick
      (fun () ->
         let graph = Chimera.create 6 in
         let jobs =
           List.init 5 (fun i -> job (Printf.sprintf "j%d" i) (chain_problem (3 + i)))
         in
         let results, stats = serve_all graph jobs in
         Alcotest.(check int) "result count" 5 (List.length results);
         List.iteri
           (fun i (r : Serve.result) ->
              Alcotest.(check string) "order" (Printf.sprintf "j%d" i) r.Serve.id;
              (match r.Serve.status with
               | Serve.Done -> ()
               | _ -> Alcotest.fail (r.Serve.id ^ ": not done"));
              Alcotest.(check bool) "has response" true (r.Serve.response <> None);
              Alcotest.(check bool) "batch assigned" true (r.Serve.batch >= 0);
              Alcotest.(check bool) "wait non-negative" true (r.Serve.wait_seconds >= 0.0))
           results;
         Alcotest.(check int) "all placed" 5 stats.Serve.placed;
         Alcotest.(check bool) "throughput measured" true
           (stats.Serve.jobs_per_second > 0.0);
         Alcotest.(check bool) "occupancy measured" true
           (stats.Serve.mean_occupancy > 0.0));
    Alcotest.test_case "served responses equal standalone tiled solves" `Quick
      (fun () ->
         let graph = Chimera.create 6 in
         let problems = [ chain_problem 5; dense_problem 4; chain_problem 3 ] in
         let results, _ =
           serve_all graph (List.mapi (fun i p -> job (string_of_int i) p) problems)
         in
         List.iteri
           (fun i p ->
              let alone = Tiler.tile ~params:tiler_params graph [| p |] in
              match Tiler.solve ~solver alone with
              | [ (0, expected) ] ->
                check_response (string_of_int i) expected
                  (response_exn (List.nth results i))
              | _ -> Alcotest.fail "standalone solve failed")
           problems);
    Alcotest.test_case "responses are identical at 1 and 4 threads" `Quick
      (fun () ->
         let graph = Chimera.create 6 in
         let jobs () =
           List.init 6 (fun i -> job (string_of_int i) (chain_problem (3 + (i mod 3))))
         in
         let r1, _ = serve_all ~num_threads:1 graph (jobs ()) in
         let r4, _ = serve_all ~num_threads:4 graph (jobs ()) in
         List.iter2
           (fun (a : Serve.result) (b : Serve.result) ->
              check_response a.Serve.id (response_exn a) (response_exn b))
           r1 r4);
    Alcotest.test_case "small batch limit splits the load" `Quick (fun () ->
        let graph = Chimera.create 6 in
        (* Distinct lengths: identical jobs would coalesce onto one leader
           and leave nothing to split into batches. *)
        let jobs =
          List.init 6 (fun i -> job (string_of_int i) (chain_problem (3 + i)))
        in
        let results, stats = serve_all ~batch_jobs:2 graph jobs in
        Alcotest.(check int) "all served" 6 (List.length results);
        Alcotest.(check bool) "several batches" true (stats.Serve.batches >= 3));
    Alcotest.test_case "backpressure: tiny queue still serves everything" `Quick
      (fun () ->
         let graph = Chimera.create 6 in
         let jobs = List.init 8 (fun i -> job (string_of_int i) (chain_problem 3)) in
         let results, _ = serve_all ~queue_capacity:1 graph jobs in
         Alcotest.(check int) "all served" 8 (List.length results));
    Alcotest.test_case "submit after drain raises" `Quick (fun () ->
        let graph = Chimera.create 4 in
        let t = Serve.create ~tiler_params ~solver ~graph () in
        ignore (Serve.drain t);
        Alcotest.check_raises "submit after drain"
          (Invalid_argument "Serve.submit: service is draining") (fun () ->
            Serve.submit t (job "late" (chain_problem 3))));
    Alcotest.test_case "drain is idempotent" `Quick (fun () ->
        let graph = Chimera.create 4 in
        let t = Serve.create ~tiler_params ~solver ~graph () in
        Serve.submit t (job "a" (chain_problem 3));
        let first = Serve.drain t in
        let second = Serve.drain t in
        Alcotest.(check int) "same count" (List.length first) (List.length second)) ]

let deadline_tests =
  [ Alcotest.test_case "queue-expired job fails fast without solving" `Quick
      (fun () ->
         let graph = Chimera.create 6 in
         let results, stats =
           serve_all graph
             [ job ~timeout_ms:0.0 "doomed" (chain_problem 4);
               job "fine" (chain_problem 4) ]
         in
         (match (List.nth results 0).Serve.status with
          | Serve.Timed_out -> ()
          | _ -> Alcotest.fail "expected queue timeout");
         Alcotest.(check bool) "no response for expired job" true
           ((List.nth results 0).Serve.response = None);
         (match (List.nth results 1).Serve.status with
          | Serve.Done -> ()
          | _ -> Alcotest.fail "unexpired job should finish");
         Alcotest.(check bool) "timeout counted" true (stats.Serve.timeouts >= 1));
    Alcotest.test_case "solver deadline yields best-effort partial result" `Quick
      (fun () ->
         let graph = Chimera.create 6 in
         (* A solver that always overruns its deadline but returns partial
            reads, as the real samplers do. *)
         let slow ~deadline p =
           (match deadline with
            | Some d ->
              let remaining = d -. Unix.gettimeofday () in
              if remaining > 0.0 then Unix.sleepf (min 0.2 (remaining +. 0.01))
            | None -> ());
           solver ~deadline p
         in
         let t =
           Serve.create ~tiler_params ~solver:slow ~graph ()
         in
         Serve.submit t (job ~timeout_ms:120.0 "slow" (chain_problem 4));
         let results = Serve.drain t in
         match List.nth results 0 with
         | { Serve.status = Serve.Timed_out; response = Some r; _ } ->
           Alcotest.(check bool) "flagged" true r.Sampler.timed_out;
           Alcotest.(check bool) "partial reads kept" true (r.Sampler.num_reads >= 1)
         | _ -> Alcotest.fail "expected a timed-out partial result") ]

let failure_tests =
  [ Alcotest.test_case "unembeddable job fails after fresh-seed retries" `Quick
      (fun () ->
         let graph = Chimera.create 2 in
         let huge = chain_problem 40 in
         let results, stats =
           serve_all graph [ job "huge" huge; job "ok" (chain_problem 3) ]
         in
         (match (List.nth results 0).Serve.status with
          | Serve.Failed _ -> ()
          | _ -> Alcotest.fail "oversized job should fail");
         (match (List.nth results 1).Serve.status with
          | Serve.Done -> ()
          | _ -> Alcotest.fail "small job should finish");
         Alcotest.(check bool) "retried with fresh seeds" true
           (stats.Serve.retries >= 1);
         Alcotest.(check int) "one failure" 1 stats.Serve.failures);
    Alcotest.test_case "deferred jobs requeue and complete" `Quick (fun () ->
        let graph = Chimera.create 2 in
        (* Each 8-var dense job takes the whole C2, so they must serialize
           across batches via deferral.  Distinct biases keep the three
           jobs from coalescing into one solve. *)
        let big i = dense_problem ~bias:(0.1 +. (0.01 *. float_of_int i)) 8 in
        let results, stats =
          serve_all graph (List.init 3 (fun i -> job (string_of_int i) (big i)))
        in
        List.iter
          (fun (r : Serve.result) ->
             match r.Serve.status with
             | Serve.Done -> ()
             | _ -> Alcotest.fail (r.Serve.id ^ " should finish"))
          results;
        Alcotest.(check bool) "deferrals happened" true (stats.Serve.deferrals >= 1);
        Alcotest.(check int) "all placed eventually" 3 stats.Serve.placed) ]

let trace_tests =
  [ Alcotest.test_case "batch spans and service summary reach the trace" `Quick
      (fun () ->
         let graph = Chimera.create 6 in
         let trace = Trace.create () in
         let jobs = List.init 3 (fun i -> job (string_of_int i) (chain_problem 4)) in
         let _, _ = serve_all ~trace graph jobs in
         (match Trace.find_span trace "batch" with
          | Some span ->
            Alcotest.(check bool) "jobs counter" true
              (List.mem_assoc "jobs" span.Trace.counters);
            Alcotest.(check bool) "occupancy counter" true
              (List.mem_assoc "occupancy-pct" span.Trace.counters);
            Alcotest.(check bool) "queue depth counter" true
              (List.mem_assoc "queue-depth" span.Trace.counters)
          | None -> Alcotest.fail "no batch span");
         Alcotest.(check (option int)) "summary jobs" (Some 3)
           (Trace.find_summary trace "serve-jobs");
         (match Trace.find_summary trace "serve-jobs-per-sec-x1000" with
          | Some v -> Alcotest.(check bool) "throughput summary positive" true (v > 0)
          | None -> Alcotest.fail "no throughput summary")) ]

let pegasus_tests =
  [ Alcotest.test_case "multi-job batch drains Done on Pegasus" `Quick (fun () ->
        let graph = Qac_chimera.Pegasus.create 4 in
        let problems =
          [ chain_problem 5; dense_problem 4; chain_problem 3; dense_problem 3 ]
        in
        let results, stats =
          serve_all ~batch_jobs:(List.length problems) graph
            (List.mapi (fun i p -> job (string_of_int i) p) problems)
        in
        Alcotest.(check int) "result count" (List.length problems)
          (List.length results);
        List.iter
          (fun (r : Serve.result) ->
             match r.Serve.status with
             | Serve.Done -> ()
             | _ -> Alcotest.fail (r.Serve.id ^ ": not done on Pegasus"))
          results;
        Alcotest.(check int) "no failures" 0 stats.Serve.failures;
        (* And served responses stay equal to standalone tiled solves —
           the reproducibility contract is family-independent. *)
        List.iteri
          (fun i p ->
             let alone = Tiler.tile ~params:tiler_params graph [| p |] in
             match Tiler.solve ~solver alone with
             | [ (0, expected) ] ->
               check_response (string_of_int i) expected
                 (response_exn (List.nth results i))
             | _ -> Alcotest.fail "standalone solve failed")
          problems);
  ]

let ticket_tests =
  [ Alcotest.test_case "tickets: peek is None until served, result after" `Quick
      (fun () ->
         let graph = Chimera.create 6 in
         let t = Serve.create ~tiler_params ~solver ~graph () in
         let ticket = Serve.submit_ticket t (job "a" (chain_problem 4)) in
         ignore (Serve.drain t);
         match Serve.peek t ticket with
         | Some { Serve.status = Serve.Done; id = "a"; _ } -> ()
         | Some _ -> Alcotest.fail "wrong result"
         | None -> Alcotest.fail "peek after drain should see the result");
    Alcotest.test_case "cancel removes a queued job, not a served one" `Quick
      (fun () ->
         let graph = Chimera.create 6 in
         (* Huge batch limit + window: jobs stay queued until drain. *)
         let t =
           Serve.create ~batch_jobs:100 ~batch_window_s:60.0 ~tiler_params
             ~solver ~graph ()
         in
         let keep = Serve.submit_ticket t (job "keep" (chain_problem 4)) in
         let kill = Serve.submit_ticket t (job "kill" (chain_problem 4)) in
         Alcotest.(check bool) "queued job cancels" true (Serve.cancel t kill);
         Alcotest.(check bool) "unknown ticket doesn't" false (Serve.cancel t 99);
         ignore (Serve.drain t);
         Alcotest.(check bool) "served job doesn't cancel" false
           (Serve.cancel t keep);
         (match Serve.peek t kill with
          | Some { Serve.status = Serve.Canceled; response = None; batch = -1; _ } -> ()
          | _ -> Alcotest.fail "canceled job should report Canceled, no batch");
         let stats = Serve.stats t in
         Alcotest.(check int) "canceled counted" 1 stats.Serve.canceled;
         Alcotest.(check int) "canceled jobs are not solved" 1 stats.Serve.placed);
    Alcotest.test_case "try_submit rejects only when the queue is full" `Quick
      (fun () ->
         let graph = Chimera.create 6 in
         let t =
           Serve.create ~queue_capacity:2 ~batch_jobs:100 ~batch_window_s:60.0
             ~tiler_params ~solver ~graph ()
         in
         Alcotest.(check bool) "first fits" true
           (Serve.try_submit t (job "a" (chain_problem 3)) <> None);
         Alcotest.(check bool) "second fits" true
           (Serve.try_submit t (job "b" (chain_problem 4)) <> None);
         Alcotest.(check (option int)) "third sheds" None
           (Serve.try_submit t (job "c" (chain_problem 5)));
         Alcotest.(check int) "queue depth visible" 2 (Serve.queue_depth t);
         ignore (Serve.drain t));
    Alcotest.test_case "latency histogram counts every finished job" `Quick
      (fun () ->
         let graph = Chimera.create 6 in
         let t = Serve.create ~tiler_params ~solver ~graph () in
         List.iter
           (fun i -> Serve.submit t (job (string_of_int i) (chain_problem (3 + i))))
           [ 0; 1; 2 ];
         ignore (Serve.drain t);
         let lat = Serve.latency t in
         Alcotest.(check int) "one observation per job" 3 (Qac_diag.Hist.count lat);
         Alcotest.(check bool) "positive p50" true (Qac_diag.Hist.p50 lat > 0.0)) ]

let coalesce_tests =
  [ Alcotest.test_case "identical jobs coalesce onto one solve" `Quick (fun () ->
        let graph = Chimera.create 6 in
        (* A huge batch window keeps everything queued until drain forces
           the flush, so all three duplicates attach before any solve. *)
        let t =
          Serve.create ~batch_jobs:100 ~batch_window_s:60.0 ~tiler_params
            ~solver ~graph ()
        in
        let p = chain_problem 4 in
        List.iter (Serve.submit t)
          [ job "a0" p; job "a1" p; job "a2" p; job "b" (chain_problem 5) ];
        let results = Serve.drain t in
        let stats = Serve.stats t in
        Alcotest.(check int) "four results" 4 (List.length results);
        Alcotest.(check int) "one solve per unique problem" 2 stats.Serve.placed;
        Alcotest.(check int) "followers counted" 2 stats.Serve.coalesced;
        List.iter
          (fun (r : Serve.result) ->
             match r.Serve.status with
             | Serve.Done -> ()
             | _ -> Alcotest.fail (r.Serve.id ^ ": not done"))
          results;
        let by_id id =
          List.find (fun (r : Serve.result) -> r.Serve.id = id) results
        in
        let leader = response_exn (by_id "a0") in
        check_response "a1" leader (response_exn (by_id "a1"));
        check_response "a2" leader (response_exn (by_id "a2")));
    Alcotest.test_case "canceling a follower leaves the leader solving" `Quick
      (fun () ->
         let graph = Chimera.create 6 in
         let t =
           Serve.create ~batch_jobs:100 ~batch_window_s:60.0 ~tiler_params
             ~solver ~graph ()
         in
         let p = chain_problem 4 in
         let lead = Serve.submit_ticket t (job "lead" p) in
         let dup = Serve.submit_ticket t (job "dup" p) in
         Alcotest.(check bool) "follower cancels" true (Serve.cancel t dup);
         ignore (Serve.drain t);
         (match Serve.peek t lead with
          | Some { Serve.status = Serve.Done; response = Some _; _ } -> ()
          | _ -> Alcotest.fail "leader should still finish");
         (match Serve.peek t dup with
          | Some { Serve.status = Serve.Canceled; response = None; _ } -> ()
          | _ -> Alcotest.fail "follower should report Canceled");
         let stats = Serve.stats t in
         Alcotest.(check int) "one cancel" 1 stats.Serve.canceled;
         Alcotest.(check int) "one solve" 1 stats.Serve.placed);
    Alcotest.test_case "canceling the leader keeps followers served" `Quick
      (fun () ->
         let graph = Chimera.create 6 in
         let t =
           Serve.create ~batch_jobs:100 ~batch_window_s:60.0 ~tiler_params
             ~solver ~graph ()
         in
         let p = chain_problem 4 in
         let lead = Serve.submit_ticket t (job "lead" p) in
         let dup = Serve.submit_ticket t (job "dup" p) in
         Alcotest.(check bool) "leader delivery cancels" true (Serve.cancel t lead);
         ignore (Serve.drain t);
         (match Serve.peek t lead with
          | Some { Serve.status = Serve.Canceled; response = None; _ } -> ()
          | _ -> Alcotest.fail "canceled leader delivery should stay Canceled");
         (match Serve.peek t dup with
          | Some { Serve.status = Serve.Done; response = Some _; _ } -> ()
          | _ -> Alcotest.fail "follower should be served anyway");
         Alcotest.(check int) "solved once" 1 (Serve.stats t).Serve.placed);
    Alcotest.test_case "canceling every subscriber releases the queue slot"
      `Quick (fun () ->
        let graph = Chimera.create 6 in
        let t =
          Serve.create ~queue_capacity:1 ~batch_jobs:100 ~batch_window_s:60.0
            ~tiler_params ~solver ~graph ()
        in
        let p = chain_problem 4 in
        let a = Serve.submit_ticket t (job "a" p) in
        let b = Serve.submit_ticket t (job "b" p) in
        Alcotest.(check bool) "leader cancels" true (Serve.cancel t a);
        Alcotest.(check bool) "last follower cancels" true (Serve.cancel t b);
        Alcotest.(check int) "slot released" 0 (Serve.queue_depth t);
        Alcotest.(check bool) "a fresh job fits" true
          (Serve.try_submit t (job "c" (chain_problem 5)) <> None);
        ignore (Serve.drain t));
    Alcotest.test_case "try_submit admits a duplicate at capacity" `Quick
      (fun () ->
         let graph = Chimera.create 6 in
         let t =
           Serve.create ~queue_capacity:1 ~batch_jobs:100 ~batch_window_s:60.0
             ~tiler_params ~solver ~graph ()
         in
         let p = chain_problem 4 in
         Alcotest.(check bool) "leader fits" true
           (Serve.try_submit t (job "a" p) <> None);
         (* The queue is now full, but a duplicate consumes no slot. *)
         Alcotest.(check bool) "duplicate attaches" true
           (Serve.try_submit t (job "a2" p) <> None);
         Alcotest.(check (option int)) "distinct job sheds" None
           (Serve.try_submit t (job "b" (chain_problem 5)));
         let results = Serve.drain t in
         Alcotest.(check int) "both answered" 2 (List.length results);
         let by_id id =
           List.find (fun (r : Serve.result) -> r.Serve.id = id) results
         in
         check_response "a2" (response_exn (by_id "a"))
           (response_exn (by_id "a2"))) ]

let suite =
  basic_tests @ deadline_tests @ failure_tests @ trace_tests @ pegasus_tests
  @ ticket_tests @ coalesce_tests
