(** Properties of the CSR adjacency and the incremental annealing state:
    O(1) deltas and O(degree) flips must agree with full Hamiltonian
    re-evaluation, and the field/energy caches must survive arbitrary flip
    sequences. *)

open Qac_ising
open Qac_anneal

(* Deterministic random problem from an integer seed: up to 12 vars so the
   checks stay cheap, density varied by the seed. *)
let problem_of_seed seed =
  let rng = Rng.create (seed + 1) in
  let n = 1 + Rng.int rng 12 in
  let density = 0.15 +. (0.7 *. Rng.float rng) in
  let h = Array.init n (fun _ -> (Rng.float rng *. 4.0) -. 2.0) in
  let j = ref [] in
  for i = 0 to n - 1 do
    for k = i + 1 to n - 1 do
      if Rng.float rng < density then
        j := ((i, k), (Rng.float rng *. 4.0) -. 2.0) :: !j
    done
  done;
  (Problem.create ~num_vars:n ~h ~j:!j (), rng)

let csr_tests =
  [ Alcotest.test_case "CSR mirrors the coupler list" `Quick (fun () ->
        for seed = 0 to 20 do
          let p, _ = problem_of_seed seed in
          let n = p.Problem.num_vars in
          Alcotest.(check int) "row_start length" (n + 1) (Array.length p.Problem.row_start);
          Alcotest.(check int) "nnz = 2 * couplers"
            (2 * Problem.num_interactions p)
            (Array.length p.Problem.col);
          Alcotest.(check int) "weights parallel to cols"
            (Array.length p.Problem.col) (Array.length p.Problem.weight);
          (* Every CSR entry is the coupler the pair-list records. *)
          for i = 0 to n - 1 do
            Alcotest.(check int) "degree" (p.Problem.row_start.(i + 1) - p.Problem.row_start.(i))
              (Problem.degree p i);
            let prev = ref (-1) in
            Problem.iter_neighbors p i (fun j v ->
                Alcotest.(check bool) "neighbors ascending" true (j > !prev);
                prev := j;
                Alcotest.(check (float 0.0)) "weight = get_j" (Problem.get_j p i j) v)
          done;
          (* And every coupler appears in both endpoint rows. *)
          Array.iter
            (fun ((i, j), v) ->
               let found_in row other =
                 let hit = ref false in
                 Problem.iter_neighbors p row (fun k w ->
                     if k = other then begin
                       hit := true;
                       Alcotest.(check (float 0.0)) "row weight" v w
                     end);
                 !hit
               in
               Alcotest.(check bool) "coupler in row i" true (found_in i j);
               Alcotest.(check bool) "coupler in row j" true (found_in j i))
            p.Problem.couplers
        done);
    Alcotest.test_case "max_j/min_j on an all-negative problem" `Quick (fun () ->
        let p =
          Problem.create ~num_vars:3 ~h:[| 0.0; 0.0; 0.0 |]
            ~j:[ ((0, 1), -0.5); ((1, 2), -2.0) ]
            ()
        in
        Alcotest.(check (float 0.0)) "max_j" (-0.5) (Problem.max_j p);
        Alcotest.(check (float 0.0)) "min_j" (-2.0) (Problem.min_j p);
        let q =
          Problem.create ~num_vars:3 ~h:[| 0.0; 0.0; 0.0 |]
            ~j:[ ((0, 1), 0.25); ((1, 2), 1.5) ]
            ()
        in
        Alcotest.(check (float 0.0)) "max_j positive" 1.5 (Problem.max_j q);
        Alcotest.(check (float 0.0)) "min_j positive" 0.25 (Problem.min_j q);
        Alcotest.(check (float 0.0)) "empty max_j" 0.0 (Problem.max_j Problem.empty);
        Alcotest.(check (float 0.0)) "empty min_j" 0.0 (Problem.min_j Problem.empty));
  ]

let delta_matches_energy =
  QCheck.Test.make ~name:"State.delta = energy(flip i) - energy" ~count:200
    QCheck.(pair (int_bound 10_000) (int_bound 10_000))
    (fun (pseed, sseed) ->
       let p, _ = problem_of_seed pseed in
       let n = p.Problem.num_vars in
       let rng = Rng.create (sseed + 7) in
       let spins = Rng.spins rng n in
       let st = State.make p (Array.copy spins) in
       let ok = ref true in
       for i = 0 to n - 1 do
         let flipped = Array.copy spins in
         flipped.(i) <- -flipped.(i);
         let expected = Problem.energy p flipped -. Problem.energy p spins in
         if Float.abs (State.delta st i -. expected) > 1e-9 then ok := false;
         (* And against the problem-level O(degree) delta. *)
         if Float.abs (Problem.energy_delta p spins i -. expected) > 1e-9 then ok := false
       done;
       !ok)

let invariants_after_flips =
  QCheck.Test.make ~name:"fields/energy invariants survive flip sequences" ~count:200
    QCheck.(pair (int_bound 10_000) (int_bound 10_000))
    (fun (pseed, fseed) ->
       let p, _ = problem_of_seed pseed in
       let n = p.Problem.num_vars in
       let rng = Rng.create (fseed + 3) in
       let st = State.random p rng in
       (* Arbitrary flips, some repeated, interleaved with invariant checks. *)
       let ok = ref true in
       for step = 1 to 60 do
         State.flip st (Rng.int rng n);
         if step mod 15 = 0 then begin
           let spins = State.spins st in
           if Float.abs (State.energy st -. Problem.energy p spins) > 1e-6 then ok := false;
           for i = 0 to n - 1 do
             if Float.abs (State.field st i -. Problem.local_field p spins i) > 1e-6 then
               ok := false
           done
         end
       done;
       !ok)

let sweep_preserves_invariants =
  QCheck.Test.make ~name:"metropolis_sweep preserves fields + lazy energy" ~count:100
    QCheck.(int_bound 10_000)
    (fun seed ->
       let p, rng = problem_of_seed seed in
       let n = p.Problem.num_vars in
       let st = State.random p rng in
       let order = Array.init n (fun i -> i) in
       Rng.shuffle rng order;
       for step = 0 to 19 do
         let beta = 0.05 *. float_of_int (step + 1) in
         State.metropolis_sweep st ~beta ~rng ~order
       done;
       let spins = State.spins st in
       let ok = ref (Float.abs (State.energy st -. Problem.energy p spins) <= 1e-6) in
       for i = 0 to n - 1 do
         if Float.abs (State.field st i -. Problem.local_field p spins i) > 1e-6 then
           ok := false
       done;
       !ok)

let descent_tests =
  [ Alcotest.test_case "descend_state tracks energy through a descent" `Quick (fun () ->
        let p, rng = problem_of_seed 77 in
        let st = State.random p rng in
        let flips = Greedy.descend_state st in
        Alcotest.(check bool) "flips non-negative" true (flips >= 0);
        Alcotest.(check (float 1e-9)) "tracked = recomputed"
          (Problem.energy p (State.spins st))
          (State.energy st);
        for i = 0 to State.num_vars st - 1 do
          Alcotest.(check bool) "local minimum" true (State.delta st i >= -1e-9)
        done);
    Alcotest.test_case "copy is independent" `Quick (fun () ->
        let p, rng = problem_of_seed 5 in
        let st = State.random p rng in
        let dup = State.copy st in
        State.flip st 0;
        Alcotest.(check bool) "spins diverge" true
          (State.spins st <> State.spins dup);
        Alcotest.(check (float 1e-9)) "copy energy still exact"
          (Problem.energy p (State.spins dup))
          (State.energy dup));
    Alcotest.test_case "resync discards drift" `Quick (fun () ->
        let p, rng = problem_of_seed 13 in
        let st = State.random p rng in
        for _ = 1 to 100 do
          State.flip st (Rng.int rng (State.num_vars st))
        done;
        State.resync st;
        Alcotest.(check (float 0.0)) "exact after resync"
          (Problem.energy p (State.spins st))
          (State.energy st));
  ]

let suite =
  csr_tests
  @ [ QCheck_alcotest.to_alcotest delta_matches_energy;
      QCheck_alcotest.to_alcotest invariants_after_flips;
      QCheck_alcotest.to_alcotest sweep_preserves_invariants ]
  @ descent_tests
