(* Second Verilog battery: feature corners, error cases, and additional
   differential checks between the interpreter and the synthesizer. *)

open Qac_verilog
module Sim = Qac_netlist.Sim

let int_of_bits = Verilog.int_of_bits
let bits_of_int width v = Array.init width (fun i -> (v lsr i) land 1 = 1)

let eval_outputs src inputs =
  Eval.comb_outputs (Verilog.interpreter src) ~inputs

let check_equiv ?(cases = 64) src =
  let m = Verilog.elaborate src in
  let ev = Eval.create m in
  let n = (Synth.synthesize m).Synth.netlist in
  let input_ports =
    List.filter_map
      (fun (name, dir, w) -> if dir = Ast.Input then Some (name, w) else None)
      m.Elab.ports
  in
  let total_bits = List.fold_left (fun acc (_, w) -> acc + w) 0 input_ports in
  let codes =
    if total_bits <= 10 then List.init (1 lsl total_bits) (fun c -> c)
    else
      let st = Random.State.make [| Hashtbl.hash src |] in
      List.init cases (fun _ -> Random.State.int st (1 lsl (min total_bits 30)))
  in
  List.iter
    (fun code ->
       let _, assignment =
         List.fold_left
           (fun (shift, acc) (name, w) ->
              (shift + w, (name, (code lsr shift) land ((1 lsl w) - 1)) :: acc))
           (0, []) input_ports
       in
       let expected = Eval.comb_outputs ev ~inputs:assignment in
       let got =
         Sim.comb n
           ~inputs:
             (List.map (fun (name, v) -> (name, bits_of_int (Eval.width ev name) v)) assignment)
       in
       List.iter
         (fun (name, v) ->
            Alcotest.(check int) (Printf.sprintf "%s@%d" name code) v
              (int_of_bits (List.assoc name got)))
         expected)
    codes

let operator_tests =
  [ Alcotest.test_case "bit-xnor operator" `Quick (fun () ->
        check_equiv "module t (a, b, o); input [2:0] a, b; output [2:0] o; assign o = a ~^ b; endmodule");
    Alcotest.test_case "nested ternaries" `Quick (fun () ->
        check_equiv
          "module t (s, o); input [1:0] s; output [1:0] o; assign o = s == 0 ? 1 : s == 1 ? 2 : s == 2 ? 3 : 0; endmodule");
    Alcotest.test_case "negate operator" `Quick (fun () ->
        check_equiv "module t (a, o); input [3:0] a; output [3:0] o; assign o = -a; endmodule");
    Alcotest.test_case "modulo by nonzero constant" `Quick (fun () ->
        check_equiv "module t (a, o); input [4:0] a; output [4:0] o; assign o = a % 5; endmodule");
    Alcotest.test_case "mixed widths extend with zeros" `Quick (fun () ->
        let outs = eval_outputs
            "module t (a, o); input [1:0] a; output [4:0] o; assign o = a + 5'b10000; endmodule"
            [ ("a", 3) ]
        in
        Alcotest.(check int) "o" 19 (List.assoc "o" outs));
    Alcotest.test_case "comparison width uses both operands" `Quick (fun () ->
        (* 2-bit 3 vs 4-bit 12: must compare as unsigned 4-bit. *)
        let outs = eval_outputs
            "module t (a, o); input [1:0] a; output o; assign o = a < 4'd12; endmodule"
            [ ("a", 3) ]
        in
        Alcotest.(check int) "o" 1 (List.assoc "o" outs));
    Alcotest.test_case "shift beyond width yields zero" `Quick (fun () ->
        let outs = eval_outputs
            "module t (a, s, o); input [3:0] a; input [2:0] s; output [3:0] o; assign o = a << s; endmodule"
            [ ("a", 15); ("s", 6) ]
        in
        Alcotest.(check int) "o" 0 (List.assoc "o" outs));
    Alcotest.test_case "logical vs bitwise on multibit" `Quick (fun () ->
        (* 2 && 1 is true (both nonzero); 2 & 1 is 0. *)
        let outs = eval_outputs
            "module t (o1, o2); output o1; output [1:0] o2; assign o1 = 2'd2 && 2'd1; assign o2 = 2'd2 & 2'd1; endmodule"
            []
        in
        Alcotest.(check int) "&&" 1 (List.assoc "o1" outs);
        Alcotest.(check int) "&" 0 (List.assoc "o2" outs));
    Alcotest.test_case "replicated concat as operand" `Quick (fun () ->
        check_equiv
          "module t (a, o); input a; output [3:0] o; assign o = {4{a}} ^ 4'b0101; endmodule");
    Alcotest.test_case "hex and octal literals" `Quick (fun () ->
        let outs = eval_outputs
            "module t (o); output [7:0] o; assign o = 8'hA5 ^ 8'o17; endmodule" []
        in
        Alcotest.(check int) "o" (0xA5 lxor 0o17) (List.assoc "o" outs));
    Alcotest.test_case "underscores in literals" `Quick (fun () ->
        let outs = eval_outputs
            "module t (o); output [7:0] o; assign o = 8'b1010_0101; endmodule" []
        in
        Alcotest.(check int) "o" 0xA5 (List.assoc "o" outs));
  ]

let statement_tests =
  [ Alcotest.test_case "case with multiple labels synthesizes" `Quick (fun () ->
        check_equiv
          {|module t (s, o);
             input [2:0] s;
             output [1:0] o;
             reg [1:0] o;
             always @* begin
               case (s)
                 0, 1, 2: o = 0;
                 3, 4: o = 1;
                 default: o = 2;
               endcase
             end
           endmodule|});
    Alcotest.test_case "nested ifs in comb block" `Quick (fun () ->
        check_equiv
          {|module t (a, b, o);
             input [1:0] a, b;
             output [1:0] o;
             reg [1:0] o;
             always @* begin
               o = 0;
               if (a > b) begin
                 if (a == 3) o = 3; else o = 1;
               end else if (a < b) o = 2;
             end
           endmodule|});
    Alcotest.test_case "blocking assignment sequencing in comb block" `Quick (fun () ->
        let outs = eval_outputs
            {|module t (a, o);
               input [3:0] a;
               output [3:0] o;
               reg [3:0] tmp, o;
               always @* begin
                 tmp = a + 1;
                 tmp = tmp + 1;
                 o = tmp;
               end
             endmodule|}
            [ ("a", 5) ]
        in
        Alcotest.(check int) "o" 7 (List.assoc "o" outs));
    Alcotest.test_case "partial bit assignment covering all bits" `Quick (fun () ->
        check_equiv
          {|module t (a, o);
             input [3:0] a;
             output [3:0] o;
             reg [3:0] o;
             always @* begin
               o[1:0] = a[3:2];
               o[3:2] = a[1:0];
             end
           endmodule|});
    Alcotest.test_case "lvalue concatenation" `Quick (fun () ->
        check_equiv
          {|module t (a, hi, lo);
             input [5:0] a;
             output [2:0] hi, lo;
             assign {hi, lo} = a + 1;
           endmodule|});
    Alcotest.test_case "negedge blocks clock like posedge (discrete time)" `Quick
      (fun () ->
         let src =
           "module t (clk, o); input clk; output [1:0] o; reg [1:0] q; always @(negedge clk) q <= q + 1; assign o = q; endmodule"
         in
         let ev = Verilog.interpreter src in
         let outs = Eval.run ev ~inputs:[ [ ("clk", 0) ]; [ ("clk", 0) ]; [ ("clk", 0) ] ] in
         Alcotest.(check (list int)) "counts" [ 0; 1; 2 ]
           (List.map (List.assoc "o") outs));
    Alcotest.test_case "multiple clocked blocks over disjoint regs" `Quick (fun () ->
        let src =
          {|module t (clk, o1, o2);
             input clk;
             output [1:0] o1, o2;
             reg [1:0] q1, q2;
             always @(posedge clk) q1 <= q1 + 1;
             always @(posedge clk) q2 <= q2 + 2;
             assign o1 = q1;
             assign o2 = q2;
           endmodule|}
        in
        let ev = Verilog.interpreter src in
        let outs = Eval.run ev ~inputs:[ [ ("clk", 0) ]; [ ("clk", 0) ] ] in
        let last = List.nth outs 1 in
        Alcotest.(check int) "q1" 1 (List.assoc "o1" last);
        Alcotest.(check int) "q2" 2 (List.assoc "o2" last));
  ]

let error_tests =
  let expect_elab_error name src =
    Alcotest.test_case name `Quick (fun () ->
        match Verilog.elaborate src with
        | exception Qac_diag.Diag.Error _ -> ()
        | _ -> Alcotest.fail "expected elaboration error")
  in
  let expect_front_error name src =
    Alcotest.test_case name `Quick (fun () ->
        match Eval.comb_outputs (Verilog.interpreter src) ~inputs:[] with
        | exception Qac_diag.Diag.Error _ -> ()
        | _ -> Alcotest.fail "expected an error")
  in
  [ expect_elab_error "unknown module instantiated"
      "module t (o); output o; nosuch u (.o(o)); endmodule";
    expect_elab_error "port without direction"
      "module t (a); wire a; endmodule";
    expect_front_error "multiple continuous drivers"
      "module t (o); output o; assign o = 0; assign o = 1; endmodule";
    expect_front_error "assign to input"
      "module t (a); input a; assign a = 1; endmodule";
    expect_front_error "undeclared identifier"
      "module t (o); output o; assign o = ghost; endmodule";
    expect_elab_error "for loop with non-loop step"
      {|module t (o); output o; reg o; integer i;
        always @* begin for (i = 0; i < 2; o = o + 1) o = 1; end endmodule|};
    Alcotest.test_case "out-of-range bit select rejected" `Quick (fun () ->
        let src = "module t (a, o); input [1:0] a; output o; assign o = a[5]; endmodule" in
        match Eval.comb_outputs (Verilog.interpreter src) ~inputs:[ ("a", 0) ] with
        | exception Qac_diag.Diag.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
    Alcotest.test_case "part-select direction mismatch rejected" `Quick (fun () ->
        let src = "module t (a, o); input [3:0] a; output [1:0] o; assign o = a[0:1]; endmodule" in
        match Eval.comb_outputs (Verilog.interpreter src) ~inputs:[ ("a", 0) ] with
        | exception Qac_diag.Diag.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
  ]

let structure_tests =
  [ Alcotest.test_case "two instances of the same child" `Quick (fun () ->
        check_equiv
          {|module inv (a, y); input a; output y; assign y = ~a; endmodule
            module t (a, b, o); input a, b; output [1:0] o;
              inv i1 (.a(a), .y(o[0]));
              inv i2 (.a(b), .y(o[1]));
            endmodule|});
    Alcotest.test_case "three-level hierarchy" `Quick (fun () ->
        check_equiv
          {|module leaf (a, y); input a; output y; assign y = ~a; endmodule
            module mid (a, y); input a; output y; leaf l (.a(a), .y(y)); endmodule
            module t (a, y); input a; output y; mid m (.a(a), .y(y)); endmodule|});
    Alcotest.test_case "parameter arithmetic in ranges" `Quick (fun () ->
        let m =
          Verilog.elaborate
            "module t (o); parameter W = 3; parameter D = W * 2 + 1; output [D-1:0] o; assign o = 0; endmodule"
        in
        Alcotest.(check int) "width" 7 (Elab.net_width m "o"));
    Alcotest.test_case "localparam behaves like parameter" `Quick (fun () ->
        let outs = eval_outputs
            "module t (o); localparam K = 42; output [5:0] o; assign o = K; endmodule" []
        in
        Alcotest.(check int) "o" 42 (List.assoc "o" outs));
    Alcotest.test_case "top selection by name" `Quick (fun () ->
        let src =
          "module a (o); output o; assign o = 0; endmodule\nmodule b (o); output o; assign o = 1; endmodule"
        in
        let ev = Verilog.interpreter ~top:"a" src in
        Alcotest.(check int) "top a" 0
          (List.assoc "o" (Eval.comb_outputs ev ~inputs:[])));
    Alcotest.test_case "unconnected output port tolerated" `Quick (fun () ->
        check_equiv
          {|module full (a, s, c); input a; output s, c; assign s = a; assign c = ~a; endmodule
            module t (a, o); input a; output o; full f (.a(a), .s(o), .c()); endmodule|});
    Alcotest.test_case "peek reads internal wires" `Quick (fun () ->
        let ev =
          Verilog.interpreter
            "module t (a, o); input [1:0] a; output o; wire [1:0] w; assign w = a ^ 2'b11; assign o = w[0]; endmodule"
        in
        Alcotest.(check int) "w" 1 (Eval.peek ev ~inputs:[ ("a", 2) ] "w"));
    Alcotest.test_case "estimated_logical_vars counts ancillas" `Quick (fun () ->
        let n =
          (Synth.compile "module t (a, b, o); input a, b; output o; assign o = a ^ b; endmodule")
            .Synth.netlist
        in
        (* One XOR cell: 2 inputs + 1 output + 1 ancilla = 4. *)
        Alcotest.(check int) "vars" 4 (Qac_netlist.Netlist.estimated_logical_vars n));
  ]

let suite = operator_tests @ statement_tests @ error_tests @ structure_tests

let generate_tests =
  [ Alcotest.test_case "generate-for over assigns (bit reversal)" `Quick (fun () ->
        check_equiv
          {|module t (a, o);
             input [5:0] a;
             output [5:0] o;
             genvar i;
             generate
               for (i = 0; i < 6; i = i + 1) begin : rev
                 assign o[i] = a[5 - i];
               end
             endgenerate
           endmodule|});
    Alcotest.test_case "generate-for instantiating modules" `Quick (fun () ->
        check_equiv
          {|module inv (a, y); input a; output y; assign y = ~a; endmodule
            module t (a, o);
              input [3:0] a;
              output [3:0] o;
              genvar i;
              generate
                for (i = 0; i < 4; i = i + 1) begin : bits
                  inv u (.a(a[i]), .y(o[i]));
                end
              endgenerate
            endmodule|});
    Alcotest.test_case "generate bound from parameter" `Quick (fun () ->
        let m =
          Verilog.elaborate
            {|module t (a, o);
               parameter W = 5;
               input [W-1:0] a;
               output [W-1:0] o;
               genvar g;
               generate
                 for (g = 0; g < W; g = g + 1) begin : blk
                   assign o[g] = ~a[g];
                 end
               endgenerate
             endmodule|}
        in
        let ev = Eval.create m in
        Alcotest.(check int) "complement" 0b10101
          (List.assoc "o" (Eval.comb_outputs ev ~inputs:[ ("a", 0b01010) ])));
    Alcotest.test_case "nested generate-for" `Quick (fun () ->
        check_equiv
          {|module t (a, o);
             input [3:0] a;
             output [3:0] o;
             wire [3:0] w;
             genvar i, j;
             generate
               for (i = 0; i < 2; i = i + 1) begin : outer
                 for (j = 0; j < 2; j = j + 1) begin : inner
                   assign w[i * 2 + j] = a[j * 2 + i];
                 end
               end
             endgenerate
             assign o = w;
           endmodule|});
    Alcotest.test_case "ripple-carry adder built by generate" `Quick (fun () ->
        check_equiv
          {|module fa (a, b, cin, s, cout);
              input a, b, cin; output s, cout;
              assign s = a ^ b ^ cin;
              assign cout = (a & b) | (cin & (a ^ b));
            endmodule
            module t (x, y, sum);
              input [3:0] x, y;
              output [4:0] sum;
              wire [4:0] carry;
              assign carry[0] = 0;
              genvar i;
              generate
                for (i = 0; i < 4; i = i + 1) begin : stage
                  fa f (.a(x[i]), .b(y[i]), .cin(carry[i]), .s(sum[i]), .cout(carry[i+1]));
                end
              endgenerate
              assign sum[4] = carry[4];
            endmodule|});
    Alcotest.test_case "declaration inside generate rejected" `Quick (fun () ->
        match
          Verilog.elaborate
            {|module t (o); output o;
               genvar i;
               generate
                 for (i = 0; i < 2; i = i + 1) begin : b
                   wire w;
                 end
               endgenerate
               assign o = 0;
             endmodule|}
        with
        | exception Qac_diag.Diag.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
    Alcotest.test_case "generate unroll limit enforced" `Quick (fun () ->
        match
          Verilog.elaborate
            {|module t (o); output o;
               genvar i;
               generate
                 for (i = 0; i >= 0; i = i + 1) begin : b
                   assign o = 0;
                 end
               endgenerate
             endmodule|}
        with
        | exception Qac_diag.Diag.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
  ]

let suite = suite @ generate_tests
