(** Unified diagnostics: stage provenance, line attachment, and the
    result-capture API, end to end through the pipeline. *)

module Diag = Qac_diag.Diag
module P = Qac_core.Pipeline

let diag_of f =
  match f () with
  | _ -> Alcotest.fail "expected a diagnostic"
  | exception Diag.Error d -> d

let suite =
  [ Alcotest.test_case "error carries stage and message" `Quick (fun () ->
        let d = diag_of (fun () -> Diag.error ~stage:"synth" "bad %s #%d" "gate" 3) in
        Alcotest.(check string) "stage" "synth" d.Diag.stage;
        Alcotest.(check string) "message" "bad gate #3" d.Diag.message;
        Alcotest.(check string) "rendered" "synth: bad gate #3" (Diag.to_string d));
    Alcotest.test_case "to_string includes the line when present" `Quick (fun () ->
        let d = Diag.make ~line:12 ~stage:"qmasm-parse" "bad weight" in
        Alcotest.(check string) "rendered" "qmasm-parse: line 12: bad weight"
          (Diag.to_string d));
    Alcotest.test_case "locate attaches a line, inner line wins" `Quick (fun () ->
        let d =
          diag_of (fun () ->
              Diag.locate ~line:7 (fun () -> Diag.error ~stage:"s" "oops"))
        in
        Alcotest.(check (option int)) "attached" (Some 7) d.Diag.line;
        let d =
          diag_of (fun () ->
              Diag.locate ~line:7 (fun () -> Diag.error ~line:3 ~stage:"s" "oops"))
        in
        Alcotest.(check (option int)) "inner wins" (Some 3) d.Diag.line);
    Alcotest.test_case "protect captures, get re-raises" `Quick (fun () ->
        (match Diag.protect (fun () -> 41 + 1) with
         | Ok v -> Alcotest.(check int) "value" 42 v
         | Error _ -> Alcotest.fail "unexpected diagnostic");
        let r = Diag.protect (fun () -> Diag.error ~stage:"s" "no") in
        (match r with
         | Ok _ -> Alcotest.fail "expected a diagnostic"
         | Error d -> Alcotest.(check string) "stage" "s" d.Diag.stage);
        match Diag.get r with
        | _ -> Alcotest.fail "expected re-raise"
        | exception Diag.Error d -> Alcotest.(check string) "stage" "s" d.Diag.stage);
    Alcotest.test_case "parse failure tagged verilog-parse" `Quick (fun () ->
        let d = diag_of (fun () -> P.compile "module t (o; endmodule") in
        Alcotest.(check string) "stage" "verilog-parse" d.Diag.stage);
    Alcotest.test_case "elaboration failure tagged verilog-elab" `Quick (fun () ->
        let d =
          diag_of (fun () ->
              P.compile "module t (o); output o; assign o = ghost; endmodule")
        in
        Alcotest.(check string) "stage" "verilog-elab" d.Diag.stage);
    Alcotest.test_case "missing ~steps tagged pipeline" `Quick (fun () ->
        let d =
          diag_of (fun () ->
              P.compile
                "module t (c, q); input c; output q; reg q; \
                 always @(posedge c) q <= ~q; endmodule")
        in
        Alcotest.(check string) "stage" "pipeline" d.Diag.stage);
    Alcotest.test_case "qmasm parse failure carries the line" `Quick (fun () ->
        let d =
          diag_of (fun () -> Qac_qmasm.Parser.parse_string "A B 1.0\nA bogus\n")
        in
        Alcotest.(check string) "stage" "qmasm-parse" d.Diag.stage;
        Alcotest.(check (option int)) "line" (Some 2) d.Diag.line);
    Alcotest.test_case "bad pin value range check (wide ports)" `Quick (fun () ->
        let t =
          P.compile
            "module t (a, o); input [2:0] a; output [2:0] o; assign o = a; endmodule"
        in
        (* 8 does not fit in 3 bits. *)
        (match P.run t ~pins:[ ("a", 8) ] ~solver:P.Exact_solver ~target:P.Logical with
         | _ -> Alcotest.fail "expected a pin range diagnostic"
         | exception Diag.Error d ->
           Alcotest.(check string) "stage" "pipeline" d.Diag.stage);
        (* 7 does. *)
        let r = P.run t ~pins:[ ("a", 7) ] ~solver:P.Exact_solver ~target:P.Logical in
        match P.valid_solutions r with
        | { P.ports; _ } :: _ ->
          Alcotest.(check (option int)) "o" (Some 7) (List.assoc_opt "o" ports)
        | [] -> Alcotest.fail "no valid solution");
  ]
