let () =
  Alcotest.run "qac"
    [ ("sexp", Test_sexp.suite);
      ("ising", Test_ising.suite);
      ("cellgen", Test_cellgen.suite);
      ("cells", Test_cells.suite);
      ("netlist", Test_netlist.suite);
      ("verilog", Test_verilog.suite);
      ("verilog2", Test_verilog2.suite);
      ("edif", Test_edif.suite);
      ("qmasm", Test_qmasm.suite);
      ("chimera", Test_chimera.suite);
      ("embed", Test_embed.suite);
      ("anneal", Test_anneal.suite);
      ("state", Test_state.suite);
      ("bitpar", Test_bitpar.suite);
      ("roofdual", Test_roofdual.suite);
      ("csp", Test_csp.suite);
      ("pipeline", Test_pipeline.suite);
      ("pipeline2", Test_pipeline2.suite);
      ("misc", Test_misc.suite);
      ("diag", Test_diag.suite);
      ("trace", Test_trace.suite);
      ("parallel", Test_parallel.suite);
      ("tiler", Test_tiler.suite);
      ("store", Test_store.suite);
      ("serve", Test_serve.suite);
      ("hist", Test_hist.suite);
      ("protocol", Test_protocol.suite);
      ("shard", Test_shard.suite);
      ("sat", Test_sat.suite);
    ]
