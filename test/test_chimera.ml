module Chimera = Qac_chimera.Chimera

let suite =
  [ Alcotest.test_case "C16 has 2048 qubits and 6016 couplers" `Quick (fun () ->
        let g = Chimera.dwave_2000q in
        Alcotest.(check int) "qubits" 2048 (Chimera.num_qubits g);
        Alcotest.(check int) "couplers" 6016 (Chimera.num_edges g));
    Alcotest.test_case "C1 is a K4,4" `Quick (fun () ->
        let g = Chimera.create 1 in
        Alcotest.(check int) "qubits" 8 (Chimera.num_qubits g);
        Alcotest.(check int) "couplers" 16 (Chimera.num_edges g);
        for q = 0 to 7 do
          Alcotest.(check int) "degree" 4 (Chimera.degree g q)
        done);
    Alcotest.test_case "coords round-trip" `Quick (fun () ->
        let g = Chimera.create 4 in
        for q = 0 to Chimera.num_qubits g - 1 do
          Alcotest.(check int) "roundtrip" q (Chimera.qubit g (Chimera.coords g q))
        done);
    Alcotest.test_case "adjacency is symmetric" `Quick (fun () ->
        let g = Chimera.create 3 in
        for q = 0 to Chimera.num_qubits g - 1 do
          List.iter
            (fun p ->
               Alcotest.(check bool) "sym" true (List.mem q (Chimera.neighbors g p)))
            (Chimera.neighbors g q)
        done);
    Alcotest.test_case "unit cell is complete bipartite" `Quick (fun () ->
        let g = Chimera.create 2 in
        (* Qubits 0-3 (horizontal) each adjacent to 4-7 (vertical) in cell 0. *)
        for h = 0 to 3 do
          for v = 4 to 7 do
            Alcotest.(check bool) "k44" true (Chimera.adjacent g h v)
          done;
          for h2 = 0 to 3 do
            if h <> h2 then
              Alcotest.(check bool) "no intra-partition" false (Chimera.adjacent g h h2)
          done
        done);
    Alcotest.test_case "inter-cell couplers follow Figure 1" `Quick (fun () ->
        let g = Chimera.create 2 in
        (* Horizontal-partition qubit 0 of cell (0,0) couples to its peer in
           the cell south: cell (1,0) = qubits 16-23, peer = 16. *)
        Alcotest.(check bool) "north-south" true (Chimera.adjacent g 0 16);
        (* Vertical-partition qubit 4 of cell (0,0) couples east to cell
           (0,1) = qubits 8-15, peer = 12. *)
        Alcotest.(check bool) "east-west" true (Chimera.adjacent g 4 12);
        (* But horizontal qubits do not couple east. *)
        Alcotest.(check bool) "no horizontal-east" false (Chimera.adjacent g 0 8));
    Alcotest.test_case "broken qubits drop out" `Quick (fun () ->
        let g = Chimera.create 2 ~broken:[ 0; 5 ] in
        Alcotest.(check int) "working" 30 (Chimera.num_working_qubits g);
        Alcotest.(check bool) "not working" false (Chimera.is_working g 0);
        Alcotest.(check (list int)) "no neighbors" [] (Chimera.neighbors g 0);
        Alcotest.(check bool) "neighbor lists exclude broken" true
          (not (List.mem 5 (Chimera.neighbors g 1))));
    Alcotest.test_case "max degree is 6" `Quick (fun () ->
        let g = Chimera.create 4 in
        let max_deg = ref 0 in
        for q = 0 to Chimera.num_qubits g - 1 do
          max_deg := max !max_deg (Chimera.degree g q)
        done;
        Alcotest.(check int) "degree" 6 !max_deg);
    Alcotest.test_case "bipartite: no odd cycles" `Quick (fun () ->
        (* 2-color by partition: every edge crosses partitions or links same
           partition across cells... verify properly with BFS 2-coloring. *)
        let g = Chimera.create 3 in
        let color = Array.make (Chimera.num_qubits g) (-1) in
        let ok = ref true in
        for start = 0 to Chimera.num_qubits g - 1 do
          if color.(start) < 0 then begin
            color.(start) <- 0;
            let queue = Queue.create () in
            Queue.add start queue;
            while not (Queue.is_empty queue) do
              let q = Queue.pop queue in
              List.iter
                (fun n ->
                   if color.(n) < 0 then begin
                     color.(n) <- 1 - color.(q);
                     Queue.add n queue
                   end
                   else if color.(n) = color.(q) then ok := false)
                (Chimera.neighbors g q)
            done
          end
        done;
        Alcotest.(check bool) "2-colorable" true !ok;
        Alcotest.(check bool) "has_odd_cycles" false (Chimera.has_odd_cycles g));
  ]

module Topology = Qac_chimera.Topology
module Pegasus = Qac_chimera.Pegasus

let topology_tests =
  [ Alcotest.test_case "generic topology from edge list" `Quick (fun () ->
        let g =
          Topology.create ~name:"path" ~params:[] ~num_qubits:4
            ~edges:[ (0, 1); (1, 2); (2, 3) ] ()
        in
        Alcotest.(check int) "edges" 3 (Topology.num_edges g);
        Alcotest.(check bool) "bipartite" true (Topology.is_bipartite g);
        Alcotest.(check int) "deg 1" 2 (Topology.degree g 1));
    Alcotest.test_case "duplicate edges collapse" `Quick (fun () ->
        let g =
          Topology.create ~name:"dup" ~params:[] ~num_qubits:2
            ~edges:[ (0, 1); (1, 0); (0, 1) ] ()
        in
        Alcotest.(check int) "one edge" 1 (Topology.num_edges g));
    Alcotest.test_case "self loop rejected" `Quick (fun () ->
        match Topology.create ~name:"x" ~params:[] ~num_qubits:2 ~edges:[ (1, 1) ] () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected rejection");
    Alcotest.test_case "odd cycle detected" `Quick (fun () ->
        let g =
          Topology.create ~name:"tri" ~params:[] ~num_qubits:3
            ~edges:[ (0, 1); (1, 2); (0, 2) ] ()
        in
        Alcotest.(check bool) "not bipartite" false (Topology.is_bipartite g));
    Alcotest.test_case "shore-6 chimera has degree 8" `Quick (fun () ->
        let g = Chimera.create ~shore:6 3 in
        Alcotest.(check int) "qubits" (2 * 6 * 9) (Chimera.num_qubits g);
        Alcotest.(check int) "max degree" 8 (Topology.max_degree g);
        Alcotest.(check int) "shore" 6 (Chimera.shore g));
    Alcotest.test_case "CSR invariants on a broken Chimera" `Quick (fun () ->
        (* The embedder walks row_start/col directly, so the representation
           is a contract: rows sorted ascending, symmetric, broken rows
           empty, and num_edges = |col| / 2. *)
        let g = Chimera.create 3 ~broken:[ 0; 17; 40 ] in
        let n = Topology.num_qubits g in
        Alcotest.(check int) "row table spans col" (Array.length g.Topology.col)
          g.Topology.row_start.(n);
        for q = 0 to n - 1 do
          let lo = g.Topology.row_start.(q) and hi = g.Topology.row_start.(q + 1) in
          Alcotest.(check bool) "monotone" true (lo <= hi);
          if not (Topology.is_working g q) then
            Alcotest.(check int) "broken row empty" lo hi;
          for k = lo to hi - 1 do
            let p = g.Topology.col.(k) in
            if k > lo then
              Alcotest.(check bool) "sorted strictly" true (g.Topology.col.(k - 1) < p);
            Alcotest.(check bool) "symmetric" true (Topology.adjacent g p q)
          done
        done;
        Alcotest.(check int) "each edge stored twice"
          (2 * Topology.num_edges g) (Array.length g.Topology.col));
    Alcotest.test_case "num_edges memo matches a recount" `Quick (fun () ->
        let g = Chimera.create 2 ~broken:[ 5 ] in
        Alcotest.(check int) "recount" (List.length (Topology.edges g))
          (Topology.num_edges g));
  ]

let pegasus_tests =
  [ Alcotest.test_case "P_m has 24 m (m-1) qubits" `Quick (fun () ->
        List.iter
          (fun m ->
             Alcotest.(check int)
               (Printf.sprintf "P%d" m)
               (24 * m * (m - 1))
               (Topology.num_qubits (Pegasus.create m)))
          [ 2; 3; 4 ]);
    Alcotest.test_case "coords round-trip" `Quick (fun () ->
        let g = Pegasus.create 3 in
        for q = 0 to Topology.num_qubits g - 1 do
          Alcotest.(check int) "roundtrip" q (Pegasus.qubit g (Pegasus.coords g q))
        done);
    Alcotest.test_case "max degree 15 (12 internal + 2 external + 1 odd)" `Quick (fun () ->
        Alcotest.(check int) "degree" 15 (Topology.max_degree (Pegasus.create 4)));
    Alcotest.test_case "contains odd cycles (unlike Chimera)" `Quick (fun () ->
        Alcotest.(check bool) "not bipartite" false
          (Topology.is_bipartite (Pegasus.create 2)));
    Alcotest.test_case "adjacency symmetric" `Quick (fun () ->
        let g = Pegasus.create 2 in
        for q = 0 to Topology.num_qubits g - 1 do
          List.iter
            (fun p -> Alcotest.(check bool) "sym" true (List.mem q (Topology.neighbors g p)))
            (Topology.neighbors g q)
        done);
    Alcotest.test_case "K4 embeds without chains" `Quick (fun () ->
        let k4 =
          Qac_ising.Problem.create ~num_vars:4 ~h:(Array.make 4 0.1)
            ~j:[ ((0, 1), 1.0); ((0, 2), 1.0); ((0, 3), 1.0); ((1, 2), 1.0);
                 ((1, 3), 1.0); ((2, 3), 1.0) ]
            ()
        in
        let g = Pegasus.create 2 in
        match Qac_embed.Cmr.find g k4 with
        | Some e ->
          Alcotest.(check int) "4 qubits" 4 (Qac_embed.Embedding.num_physical_qubits e);
          Alcotest.(check bool) "verifies" true
            (Qac_embed.Embedding.verify g k4 e = Ok ())
        | None -> Alcotest.fail "no embedding");
    Alcotest.test_case "fabric trimming: P2 keeps a 40-qubit main fabric" `Quick
      (fun () ->
         (* The idealized 24m(m-1) node set includes boundary segments that
            cross nothing; they are marked broken like on real chips
            (P16: 5760 -> 5640). *)
         Alcotest.(check int) "working" 40
           (Topology.num_working_qubits (Pegasus.create 2)));
    Alcotest.test_case "broken qubits respected" `Quick (fun () ->
        let baseline = Topology.num_working_qubits (Pegasus.create 2) in
        let g = Pegasus.create 2 ~broken:[ 0; 1; 2 ] in
        Alcotest.(check bool) "fewer working" true
          (Topology.num_working_qubits g < baseline);
        Alcotest.(check bool) "0 broken" false (Topology.is_working g 0);
        Alcotest.(check (list int)) "no neighbors" [] (Topology.neighbors g 0));
  ]

(* --- Pegasus structural properties (QCheck) ---------------------------------- *)

(* Edge classes per the geometric construction.  [`Bad] means the edge fits
   no class — a construction bug. *)
let classify g q p =
  let a = Pegasus.coords g q and b = Pegasus.coords g p in
  if a.Pegasus.orientation <> b.Pegasus.orientation then `Internal
  else if
    a.Pegasus.offset = b.Pegasus.offset
    && a.Pegasus.track = b.Pegasus.track
    && abs (a.Pegasus.position - b.Pegasus.position) = 1
  then `External
  else if
    a.Pegasus.offset = b.Pegasus.offset
    && a.Pegasus.position = b.Pegasus.position
    && a.Pegasus.track / 2 = b.Pegasus.track / 2
    && a.Pegasus.track <> b.Pegasus.track
  then `Odd
  else `Bad

(* Whether a vertical and a horizontal segment cross, from the raw
   plane geometry (the construction's source of truth for internal
   couplers). *)
let crosses ~vs ~hs v h =
  let x = (12 * v.Pegasus.offset) + v.Pegasus.track in
  let y0 = (12 * v.Pegasus.position) + vs.(v.Pegasus.track) in
  let y = (12 * h.Pegasus.offset) + h.Pegasus.track in
  let x0 = (12 * h.Pegasus.position) + hs.(h.Pegasus.track) in
  y >= y0 && y < y0 + 12 && x >= x0 && x < x0 + 12

(* Independent recount of each coupler class, restricted to working qubits
   (closed-form counts do not survive fabric trimming, so the test recounts
   geometrically instead of trusting a formula). *)
let expected_class_counts g m =
  let vs = Pegasus.vertical_shifts g and hs = Pegasus.horizontal_shifts g in
  let working c = Topology.is_working g (Pegasus.qubit g c) in
  let ext = ref 0 and odd = ref 0 and internal = ref 0 in
  for u = 0 to 1 do
    for w = 0 to m - 1 do
      for k = 0 to 11 do
        for z = 0 to m - 2 do
          let c = { Pegasus.orientation = u; offset = w; track = k; position = z } in
          if working c then begin
            if z + 1 <= m - 2 && working { c with Pegasus.position = z + 1 } then incr ext;
            if k mod 2 = 0 && working { c with Pegasus.track = k + 1 } then incr odd
          end
        done
      done
    done
  done;
  for w = 0 to m - 1 do
    for k = 0 to 11 do
      for z = 0 to m - 2 do
        let v = { Pegasus.orientation = 0; offset = w; track = k; position = z } in
        if working v then
          for w' = 0 to m - 1 do
            for k' = 0 to 11 do
              for z' = 0 to m - 2 do
                let h = { Pegasus.orientation = 1; offset = w'; track = k'; position = z' } in
                if working h && crosses ~vs ~hs v h then incr internal
              done
            done
          done
      done
    done
  done;
  (!ext, !odd, !internal)

let pegasus_structural =
  QCheck.Test.make
    ~name:"Pegasus structure: counts, degree caps, coupler classes, round-trip"
    ~count:12
    QCheck.(pair (int_range 2 5) (int_bound 10_000))
    (fun (m, seed) ->
       let module Rng = Qac_anneal.Rng in
       let pristine = Pegasus.create m in
       let n = Topology.num_qubits pristine in
       if n <> 24 * m * (m - 1) then
         QCheck.Test.fail_reportf "P%d has %d qubits, want %d" m n (24 * m * (m - 1));
       (* Working count after fabric trimming: 8(m-1)(3m-1), the idealized
          node set minus the 8(m-1) boundary segments that cross nothing. *)
       let want_working = 8 * (m - 1) * ((3 * m) - 1) in
       if Topology.num_working_qubits pristine <> want_working then
         QCheck.Test.fail_reportf "P%d working %d, want %d" m
           (Topology.num_working_qubits pristine) want_working;
       for q = 0 to n - 1 do
         if Pegasus.qubit pristine (Pegasus.coords pristine q) <> q then
           QCheck.Test.fail_reportf "coords round-trip broke at %d" q
       done;
       (* Now knock out random qubits on top of the trimming and recheck the
          structural invariants on the damaged graph. *)
       let rng = Rng.create seed in
       let broken = List.init (Rng.int rng 6) (fun _ -> Rng.int rng n) in
       let g = Pegasus.create ~broken m in
       let ext = ref 0 and odd = ref 0 and internal = ref 0 in
       List.iter
         (fun (q, p) ->
            match classify g q p with
            | `External -> incr ext
            | `Odd -> incr odd
            | `Internal -> incr internal
            | `Bad -> QCheck.Test.fail_reportf "edge (%d, %d) fits no coupler class" q p)
         (Topology.edges g);
       let want_ext, want_odd, want_internal = expected_class_counts g m in
       if (!ext, !odd, !internal) <> (want_ext, want_odd, want_internal) then
         QCheck.Test.fail_reportf
           "coupler classes (ext %d, odd %d, int %d) disagree with geometric recount \
            (%d, %d, %d)"
           !ext !odd !internal want_ext want_odd want_internal;
       (* Degree cap 15 = 12 internal + 2 external + 1 odd, per class. *)
       for q = 0 to n - 1 do
         let e = ref 0 and o = ref 0 and i = ref 0 in
         List.iter
           (fun p ->
              match classify g q p with
              | `External -> incr e
              | `Odd -> incr o
              | `Internal -> incr i
              | `Bad -> ())
           (Topology.neighbors g q);
         if !e > 2 || !o > 1 || !i > 12 then
           QCheck.Test.fail_reportf "qubit %d class degrees (ext %d, odd %d, int %d)" q !e
             !o !i;
         if Topology.degree g q > 15 then
           QCheck.Test.fail_reportf "qubit %d degree %d > 15" q (Topology.degree g q)
       done;
       true)

(* --- Topology families -------------------------------------------------------- *)

module Family = Qac_chimera.Family

(* The tiler's soundness rests on this: every edge of the local fabric maps
   through [block_qubits] onto a real coupler of the chip, and every working
   local qubit onto a working global qubit. *)
let check_block_isomorphism fam ~k ~origins =
  let local = fam.Family.build_local k in
  List.iter
    (fun (r0, c0) ->
       let qubits = fam.Family.block_qubits ~r0 ~c0 ~block:k in
       Alcotest.(check int)
         "block indexes the whole local fabric"
         (Topology.num_qubits local) (Array.length qubits);
       for l = 0 to Topology.num_qubits local - 1 do
         if Topology.is_working local l then
           Alcotest.(check bool)
             (Printf.sprintf "local qubit %d maps to a working qubit" l)
             true
             (Topology.is_working fam.Family.graph qubits.(l))
       done;
       List.iter
         (fun (a, b) ->
            Alcotest.(check bool)
              (Printf.sprintf "local edge (%d, %d) maps to a coupler" a b)
              true
              (Topology.adjacent fam.Family.graph qubits.(a) qubits.(b)))
         (Topology.edges local))
    origins

let family_tests =
  [ Alcotest.test_case "of_topology dispatches on family identity" `Quick (fun () ->
        Alcotest.(check string) "chimera" "chimera"
          (Family.of_topology (Chimera.create 2)).Family.family;
        Alcotest.(check string) "pegasus" "pegasus"
          (Family.of_topology (Pegasus.create 2)).Family.family;
        let alien =
          Topology.create ~name:"ring" ~params:[] ~num_qubits:3
            ~edges:[ (0, 1); (1, 2); (0, 2) ] ()
        in
        match Family.of_topology alien with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected rejection of an unknown family");
    Alcotest.test_case "tiles partition the qubits (both families)" `Quick (fun () ->
        List.iter
          (fun fam ->
             let seen = Array.make (Topology.num_qubits fam.Family.graph) false in
             for q = 0 to Topology.num_qubits fam.Family.graph - 1 do
               let r, c = fam.Family.tile_of_qubit q in
               Alcotest.(check bool) "row in range" true (r >= 0 && r < fam.Family.rows);
               Alcotest.(check bool) "col in range" true (c >= 0 && c < fam.Family.cols);
               Alcotest.(check bool) "each qubit in one tile" false seen.(q);
               seen.(q) <- true
             done;
             Alcotest.(check bool) "all qubits covered" true (Array.for_all Fun.id seen))
          [ Family.chimera (Chimera.create 3); Family.pegasus (Pegasus.create 3) ]);
    Alcotest.test_case "blocks are isomorphic to the local fabric (Chimera)" `Quick
      (fun () ->
         let fam = Family.chimera (Chimera.create 6) in
         check_block_isomorphism fam ~k:2 ~origins:[ (0, 0); (1, 2); (4, 4) ]);
    Alcotest.test_case "blocks are isomorphic to the local fabric (Pegasus)" `Quick
      (fun () ->
         let fam = Family.pegasus (Pegasus.create 4) in
         check_block_isomorphism fam ~k:1 ~origins:[ (0, 0); (1, 1); (2, 0) ];
         check_block_isomorphism fam ~k:2 ~origins:[ (0, 0); (1, 1) ]);
    Alcotest.test_case "pegasus clean tiles tolerate fabric trimming only" `Quick
      (fun () ->
         let pristine = Family.pegasus (Pegasus.create 3) in
         Alcotest.(check bool) "pristine fabric is all clean" true
           (Array.for_all (Array.for_all Fun.id) pristine.Family.clean);
         (* Breaking one pristine-working qubit dirties exactly its tile. *)
         let victim = ref (-1) in
         (try
            for q = 0 to Topology.num_qubits pristine.Family.graph - 1 do
              if Topology.is_working pristine.Family.graph q then begin
                victim := q;
                raise Exit
              end
            done
          with Exit -> ());
         let vr, vc = pristine.Family.tile_of_qubit !victim in
         let damaged = Family.pegasus (Pegasus.create ~broken:[ !victim ] 3) in
         Alcotest.(check bool) "victim tile dirty" false damaged.Family.clean.(vr).(vc);
         let others_clean = ref true in
         Array.iteri
           (fun r row ->
              Array.iteri
                (fun c ok -> if (r, c) <> (vr, vc) && not ok then others_clean := false)
                row)
           damaged.Family.clean;
         Alcotest.(check bool) "other tiles stay clean" true !others_clean);
    Alcotest.test_case "max_feasible_block accounts for footprints" `Quick (fun () ->
        Alcotest.(check int) "C6 hosts a 6-block" 6
          (Family.max_feasible_block (Family.chimera (Chimera.create 6)));
        (* P4's 4x4 tile grid fits the (k+1)-tile footprint of k=3 exactly. *)
        Alcotest.(check int) "P4 hosts a 3-block" 3
          (Family.max_feasible_block (Family.pegasus (Pegasus.create 4))));
  ]

let suite =
  suite @ topology_tests @ pegasus_tests
  @ [ QCheck_alcotest.to_alcotest pegasus_structural ]
  @ family_tests
