(** The bit-parallel kernel's lane contract: a packed lane is bit-identical
    to the scalar reference lane with the same derived seed, block width
    never changes a lane's trajectory, and the quantization + threshold
    tables behave as specified.  Composite post-processors must preserve
    the [Sampler.response] invariants. *)

open Qac_ising
open Qac_anneal

let spin_list a = Array.to_list a

(* Random dense-ish problem, as in the other anneal suites. *)
let random_problem ~seed ~n ~density =
  let rng = Rng.create seed in
  let h = Array.init n (fun _ -> (Rng.float rng *. 2.0) -. 1.0) in
  let j = ref [] in
  for i = 0 to n - 1 do
    for k = i + 1 to n - 1 do
      if Rng.float rng < density then
        j := ((i, k), (Rng.float rng *. 2.0) -. 1.0) :: !j
    done
  done;
  Problem.create ~num_vars:n ~h ~j:!j ()

(* Spin glass on a family topology (Chimera or Pegasus): the structured
   graphs the kernel actually serves. *)
let family_glass ~pegasus ~size ~seed =
  let module Chimera = Qac_chimera.Chimera in
  let g =
    if pegasus then Qac_chimera.Pegasus.create size else Chimera.create size
  in
  let n = Chimera.num_qubits g in
  let rng = Rng.create seed in
  let h = Array.init n (fun _ -> (Rng.float rng *. 2.0) -. 1.0) in
  let j =
    List.map (fun (a, b) -> ((a, b), (Rng.float rng *. 2.0) -. 1.0)) (Chimera.edges g)
  in
  Problem.create ~num_vars:n ~h ~j ()

let quantize_tests =
  [ Alcotest.test_case "quantized coefficients round within eps/2" `Quick (fun () ->
        for seed = 0 to 10 do
          let p = random_problem ~seed ~n:8 ~density:0.5 in
          let q = Bitpar.quantize p in
          Array.iteri
            (fun i qh ->
               Alcotest.(check bool) "h rounds" true
                 (Float.abs ((float_of_int qh *. q.Bitpar.eps) -. p.Problem.h.(i))
                  <= q.Bitpar.eps /. 2.0 +. 1e-12))
            q.Bitpar.qh;
          Array.iteri
            (fun k qw ->
               Alcotest.(check bool) "weight rounds" true
                 (Float.abs ((float_of_int qw *. q.Bitpar.eps) -. p.Problem.weight.(k))
                  <= q.Bitpar.eps /. 2.0 +. 1e-12))
            q.Bitpar.qweight
        done);
    Alcotest.test_case "max_level bounds every reachable field" `Quick (fun () ->
        for seed = 0 to 10 do
          let p = random_problem ~seed ~n:10 ~density:0.4 in
          let q = Bitpar.quantize p in
          for i = 0 to p.Problem.num_vars - 1 do
            let worst = ref (abs q.Bitpar.qh.(i)) in
            for k = p.Problem.row_start.(i) to p.Problem.row_start.(i + 1) - 1 do
              worst := !worst + abs q.Bitpar.qweight.(k)
            done;
            Alcotest.(check bool) "bounded" true (!worst <= q.Bitpar.max_level)
          done
        done);
    Alcotest.test_case "all-zero problem quantizes safely" `Quick (fun () ->
        let p = Problem.create ~num_vars:4 ~h:(Array.make 4 0.0) ~j:[] () in
        let q = Bitpar.quantize p in
        Alcotest.(check (float 0.0)) "eps" 1.0 q.Bitpar.eps;
        Alcotest.(check bool) "levels" true (q.Bitpar.max_level >= 1));
  ]

let table_tests =
  [ Alcotest.test_case "thresholds decrease in k and match exp" `Quick (fun () ->
        let p = random_problem ~seed:3 ~n:8 ~density:0.5 in
        let s = Schedule.create ~beta_min:0.2 ~beta_max:4.0 p in
        let a = Schedule.acceptance_tables s ~num_steps:10 ~delta_unit:0.5 ~max_level:40 in
        Alcotest.(check int) "one table per sweep" 10 (Array.length a.Schedule.thresholds);
        Array.iteri
          (fun step table ->
             let beta = Schedule.beta s ~step ~num_steps:10 in
             Alcotest.(check int) "k=0 sentinel" Schedule.acceptance_scale table.(0);
             for k = 1 to Array.length table - 1 do
               Alcotest.(check bool) "monotone" true (table.(k) <= table.(k - 1));
               let exact =
                 exp (-.beta *. 0.5 *. float_of_int k)
                 *. float_of_int Schedule.acceptance_scale
               in
               Alcotest.(check bool) "within rounding of exp" true
                 (Float.abs (float_of_int table.(k) -. exact) <= 1.0 +. exact *. 1e-9)
             done)
          a.Schedule.thresholds);
    Alcotest.test_case "colder sweeps have shorter horizons" `Quick (fun () ->
        let p = random_problem ~seed:4 ~n:8 ~density:0.5 in
        let s = Schedule.create ~beta_min:0.1 ~beta_max:50.0 p in
        let a =
          Schedule.acceptance_tables s ~num_steps:20 ~delta_unit:1.0 ~max_level:10_000
        in
        let first = Array.length a.Schedule.thresholds.(0) in
        let last = Array.length a.Schedule.thresholds.(19) in
        Alcotest.(check bool) "horizon shrinks" true (last < first));
  ]

(* --- Packed vs scalar lane equivalence -------------------------------------- *)

let check_block_equivalence p ~lanes ~block_seed ~num_sweeps =
  let q = Bitpar.quantize p in
  let schedule = Schedule.create p in
  let acceptance = Bitpar.acceptance q schedule ~num_sweeps in
  let r = Bitpar.anneal_block q ~acceptance ~lanes ~block_seed in
  Alcotest.(check bool) "block completed" false r.Bitpar.timed_out;
  Alcotest.(check int) "lane count" lanes (Array.length r.Bitpar.reads);
  let order, lane_seeds =
    Bitpar.block_plan ~num_vars:p.Problem.num_vars ~lanes ~block_seed
  in
  Array.iteri
    (fun l lane_seed ->
       let scalar = Bitpar.anneal_lane q ~acceptance ~order ~lane_seed in
       Alcotest.(check (list int))
         (Printf.sprintf "lane %d bit-identical" l)
         (spin_list scalar)
         (spin_list r.Bitpar.reads.(l)))
    lane_seeds

let equivalence_tests =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:20 ~name:"packed lanes == scalar lanes (random problems)"
         QCheck.(pair (int_bound 1000) (int_range 1 64))
         (fun (seed, lanes) ->
            let n = 4 + (seed mod 9) in
            let p = random_problem ~seed ~n ~density:0.5 in
            check_block_equivalence p ~lanes ~block_seed:(seed * 7 + 1) ~num_sweeps:30;
            true));
    Alcotest.test_case "packed lanes == scalar lanes (Chimera glass)" `Quick (fun () ->
        let p = family_glass ~pegasus:false ~size:2 ~seed:11 in
        check_block_equivalence p ~lanes:64 ~block_seed:5 ~num_sweeps:25);
    Alcotest.test_case "packed lanes == scalar lanes (Pegasus glass)" `Quick (fun () ->
        let p = family_glass ~pegasus:true ~size:2 ~seed:12 in
        check_block_equivalence p ~lanes:37 ~block_seed:6 ~num_sweeps:25);
    Alcotest.test_case "narrow block is a prefix of a wide block" `Quick (fun () ->
        let p = random_problem ~seed:21 ~n:10 ~density:0.4 in
        let q = Bitpar.quantize p in
        let schedule = Schedule.create p in
        let acceptance = Bitpar.acceptance q schedule ~num_sweeps:40 in
        let wide = Bitpar.anneal_block q ~acceptance ~lanes:64 ~block_seed:9 in
        let narrow = Bitpar.anneal_block q ~acceptance ~lanes:17 ~block_seed:9 in
        Array.iteri
          (fun l spins ->
             Alcotest.(check (list int)) "prefix lane" (spin_list wide.Bitpar.reads.(l))
               (spin_list spins))
          narrow.Bitpar.reads);
    Alcotest.test_case "block anneal is deterministic" `Quick (fun () ->
        let p = family_glass ~pegasus:false ~size:2 ~seed:13 in
        let q = Bitpar.quantize p in
        let schedule = Schedule.create p in
        let acceptance = Bitpar.acceptance q schedule ~num_sweeps:30 in
        let a = Bitpar.anneal_block q ~acceptance ~lanes:64 ~block_seed:3 in
        let b = Bitpar.anneal_block q ~acceptance ~lanes:64 ~block_seed:3 in
        Array.iteri
          (fun l spins ->
             Alcotest.(check (list int)) "same" (spin_list spins)
               (spin_list b.Bitpar.reads.(l)))
          a.Bitpar.reads);
    Alcotest.test_case "expired deadline returns one partial read" `Quick (fun () ->
        let p = random_problem ~seed:22 ~n:10 ~density:0.4 in
        let q = Bitpar.quantize p in
        let schedule = Schedule.create p in
        let acceptance = Bitpar.acceptance q schedule ~num_sweeps:50 in
        let r = Bitpar.anneal_block ~deadline:0.0 q ~acceptance ~lanes:64 ~block_seed:2 in
        Alcotest.(check bool) "flagged" true r.Bitpar.timed_out;
        Alcotest.(check int) "single read" 1 (Array.length r.Bitpar.reads));
  ]

(* --- Composite post-processors --------------------------------------------- *)

let sample_response ?(num_reads = 40) ?(num_sweeps = 60) ~seed p =
  Sa.sample
    ~params:{ Sa.default_params with Sa.num_reads; num_sweeps; seed;
              greedy_postprocess = false }
    p

let check_invariants name p (r : Sampler.response) =
  let total =
    List.fold_left (fun acc (s : Sampler.sample) -> acc + s.Sampler.num_occurrences) 0
      r.Sampler.samples
  in
  Alcotest.(check int) (name ^ ": occurrences sum to num_reads") r.Sampler.num_reads
    total;
  let rec sorted = function
    | (a : Sampler.sample) :: (b : Sampler.sample) :: rest ->
      (a.Sampler.energy < b.Sampler.energy
       || (a.Sampler.energy = b.Sampler.energy && a.Sampler.spins <= b.Sampler.spins))
      && sorted (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) (name ^ ": sorted and distinct") true (sorted r.Sampler.samples);
  List.iter
    (fun (s : Sampler.sample) ->
       Alcotest.(check (float 1e-9)) (name ^ ": energy matches spins")
         (Problem.energy p s.Sampler.spins) s.Sampler.energy)
    r.Sampler.samples

let composite_tests =
  [ Alcotest.test_case "polish lowers or keeps every energy" `Quick (fun () ->
        for seed = 0 to 4 do
          let p = random_problem ~seed ~n:14 ~density:0.4 in
          let r = sample_response ~seed:(100 + seed) p in
          let polished = Composite.polish p r in
          check_invariants "polish" p polished;
          Alcotest.(check int) "num_reads conserved" r.Sampler.num_reads
            polished.Sampler.num_reads;
          let best l =
            List.fold_left
              (fun acc (s : Sampler.sample) -> Float.min acc s.Sampler.energy)
              infinity l
          in
          Alcotest.(check bool) "best energy no worse" true
            (best polished.Sampler.samples <= best r.Sampler.samples +. 1e-12)
        done);
    Alcotest.test_case "polish under an expired deadline passes through" `Quick
      (fun () ->
         let p = random_problem ~seed:3 ~n:12 ~density:0.4 in
         let r = sample_response ~seed:7 p in
         let passed = Composite.polish ~deadline:0.0 p r in
         Alcotest.(check int) "same reads" r.Sampler.num_reads passed.Sampler.num_reads;
         List.iter2
           (fun (a : Sampler.sample) (b : Sampler.sample) ->
              Alcotest.(check (list int)) "same spins" (spin_list a.Sampler.spins)
                (spin_list b.Sampler.spins))
           r.Sampler.samples passed.Sampler.samples);
    Alcotest.test_case "gauge transform preserves energies exactly" `Quick (fun () ->
        for seed = 0 to 4 do
          let p = random_problem ~seed ~n:14 ~density:0.4 in
          let g, gp = Composite.gauge_transform ~seed:(50 + seed) p in
          let rng = Rng.create (900 + seed) in
          for _ = 1 to 10 do
            let s = Rng.spins rng p.Problem.num_vars in
            let gs = Array.mapi (fun i si -> g.(i) * si) s in
            (* Bit-identical, not approximately equal: every factor is +-1. *)
            Alcotest.(check bool) "E'(s) = E(g.s)" true
              (Problem.energy gp s = Problem.energy p gs)
          done
        done);
    Alcotest.test_case "gauge composite returns valid original-space response" `Quick
      (fun () ->
         let p = random_problem ~seed:9 ~n:14 ~density:0.4 in
         let r =
           Composite.gauge p ~solve:(fun gp -> sample_response ~seed:11 gp)
         in
         check_invariants "gauge" p r;
         Alcotest.(check int) "num_reads conserved" 40 r.Sampler.num_reads);
    Alcotest.test_case "wrap `None is the identity" `Quick (fun () ->
        let p = random_problem ~seed:5 ~n:10 ~density:0.4 in
        let direct = sample_response ~seed:13 p in
        let wrapped =
          Composite.wrap ~postprocess:`None p ~solve:(fun q -> sample_response ~seed:13 q)
        in
        Alcotest.(check bool) "same samples" true
          (direct.Sampler.samples = wrapped.Sampler.samples));
    Alcotest.test_case "wrap `Polish == polish of the base response" `Quick (fun () ->
        let p = random_problem ~seed:6 ~n:12 ~density:0.4 in
        let base = sample_response ~seed:17 p in
        let wrapped =
          Composite.wrap ~postprocess:`Polish p
            ~solve:(fun q -> sample_response ~seed:17 q)
        in
        Alcotest.(check bool) "same samples" true
          ((Composite.polish p base).Sampler.samples = wrapped.Sampler.samples));
    Alcotest.test_case "postprocess string round-trips" `Quick (fun () ->
        List.iter
          (fun m ->
             Alcotest.(check bool) "round trip" true
               (Composite.postprocess_of_string (Composite.string_of_postprocess m)
                = Some m))
          [ `None; `Polish; `Gauge ];
        Alcotest.(check bool) "unknown rejected" true
          (Composite.postprocess_of_string "frobnicate" = None));
  ]

let suite = quantize_tests @ table_tests @ equivalence_tests @ composite_tests
