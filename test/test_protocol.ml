(** The wire protocol: JSON round-trips (bit-exact floats included),
    framing over a real socketpair, and rejection of oversized or garbage
    frames. *)

open Qac_ising
module Serve = Qac_serve.Serve
module Protocol = Qac_serve.Protocol
module Sampler = Qac_anneal.Sampler

let problem () =
  Problem.create ~num_vars:4
    ~h:[| 0.1; -0.25; 0.0; 1.0 /. 3.0 |]
    ~j:[ ((0, 1), -1.0); ((1, 2), 0.75); ((0, 3), 1e-17) ]
    ~offset:2.5 ()

let response () =
  { Sampler.samples =
      [ { Sampler.spins = [| 1; -1; 1; -1 |];
          energy = -3.0625 +. 1e-13;
          num_occurrences = 7 };
        { Sampler.spins = [| -1; -1; 1; 1 |]; energy = 0.125; num_occurrences = 1 } ];
    num_reads = 8;
    elapsed_seconds = 0.123456789012345678;
    timed_out = false }

let result () =
  { Serve.id = "job \"quoted\" \\ with\nnewline";
    status = Serve.Done;
    response = Some (response ());
    batch = 3;
    wait_seconds = 0.001;
    solve_seconds = 0.25 }

let check_problem (a : Problem.t) (b : Problem.t) =
  Alcotest.(check int) "num_vars" a.Problem.num_vars b.Problem.num_vars;
  Alcotest.(check (float 0.0)) "offset" a.Problem.offset b.Problem.offset;
  Alcotest.(check (array (float 0.0))) "h" a.Problem.h b.Problem.h;
  Alcotest.(check int) "coupler count"
    (Array.length a.Problem.couplers) (Array.length b.Problem.couplers);
  Array.iter2
    (fun ((i, j), v) ((i', j'), v') ->
       Alcotest.(check (pair int int)) "coupler pair" (i, j) (i', j');
       Alcotest.(check (float 0.0)) "coupler value (bit-exact)" v v')
    a.Problem.couplers b.Problem.couplers

let check_response (a : Sampler.response) (b : Sampler.response) =
  Alcotest.(check int) "num_reads" a.Sampler.num_reads b.Sampler.num_reads;
  Alcotest.(check (float 0.0)) "elapsed (bit-exact)" a.Sampler.elapsed_seconds
    b.Sampler.elapsed_seconds;
  Alcotest.(check bool) "timed_out" a.Sampler.timed_out b.Sampler.timed_out;
  List.iter2
    (fun (x : Sampler.sample) (y : Sampler.sample) ->
       Alcotest.(check (array int)) "spins" x.Sampler.spins y.Sampler.spins;
       Alcotest.(check (float 0.0)) "energy (bit-exact)" x.Sampler.energy
         y.Sampler.energy;
       Alcotest.(check int) "occurrences" x.Sampler.num_occurrences
         y.Sampler.num_occurrences)
    a.Sampler.samples b.Sampler.samples

let roundtrip_json j =
  Protocol.json_of_string (Protocol.json_to_string j)

let json_tests =
  [ Alcotest.test_case "scalar and container values round-trip" `Quick
      (fun () ->
         let open Protocol in
         List.iter
           (fun j -> Alcotest.(check bool) "round-trip" true (roundtrip_json j = j))
           [ Null; Bool true; Bool false; Num 0.0; Num (-17.0); Num 6.02e23;
             Str ""; Str "plain"; Str "esc \" \\ \n \t \r";
             Arr []; Arr [ Num 1.0; Str "two"; Null ];
             Obj []; Obj [ ("a", Num 1.0); ("b", Arr [ Bool false ]) ] ]);
    Alcotest.test_case "awkward floats survive bit-exactly" `Quick (fun () ->
        List.iter
          (fun f ->
             match roundtrip_json (Protocol.Num f) with
             | Protocol.Num f' ->
               Alcotest.(check bool)
                 (Printf.sprintf "%h round-trips" f)
                 true
                 (Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float f'))
             | _ -> Alcotest.fail "not a number")
          [ 0.1; 1.0 /. 3.0; 1e-300; 1.7976931348623157e308; 5e-324;
            -0.0; 0.123456789012345678 ]);
    Alcotest.test_case "unicode escapes decode to UTF-8" `Quick (fun () ->
        match Protocol.json_of_string "\"a\\u00e9\\u4e2d\\ud83d\\ude00b\"" with
        | Protocol.Str s ->
          Alcotest.(check string) "decoded" "a\xc3\xa9\xe4\xb8\xad\xf0\x9f\x98\x80b" s
        | _ -> Alcotest.fail "not a string");
    Alcotest.test_case "garbage JSON raises Protocol_error" `Quick (fun () ->
        List.iter
          (fun s ->
             match Protocol.json_of_string s with
             | exception Protocol.Protocol_error _ -> ()
             | _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s))
          [ ""; "{"; "[1,"; "tru"; "\"unterminated"; "{\"a\" 1}"; "1 2";
            "{\"a\":}"; "nul"; "\xff\xfe" ]) ]

let codec_tests =
  [ Alcotest.test_case "problem round-trips through JSON" `Quick (fun () ->
        let p = problem () in
        check_problem p (Protocol.problem_of_json (roundtrip_json (Protocol.problem_to_json p))));
    Alcotest.test_case "result round-trips, every status arm" `Quick (fun () ->
        List.iter
          (fun status ->
             let r = { (result ()) with Serve.status } in
             let r' = Protocol.result_of_json (roundtrip_json (Protocol.result_to_json r)) in
             Alcotest.(check string) "id" r.Serve.id r'.Serve.id;
             Alcotest.(check bool) "status" true (r.Serve.status = r'.Serve.status);
             Alcotest.(check int) "batch" r.Serve.batch r'.Serve.batch;
             match (r.Serve.response, r'.Serve.response) with
             | Some a, Some b -> check_response a b
             | None, None -> ()
             | _ -> Alcotest.fail "response presence changed")
          [ Serve.Done; Serve.Timed_out; Serve.Canceled;
            Serve.Failed "chain broke" ]);
    Alcotest.test_case "queue-expired result (no response) round-trips" `Quick
      (fun () ->
         let r =
           { (result ()) with Serve.status = Serve.Timed_out; response = None }
         in
         let r' = Protocol.result_of_json (roundtrip_json (Protocol.result_to_json r)) in
         Alcotest.(check bool) "no response" true (r'.Serve.response = None));
    Alcotest.test_case "every request arm round-trips" `Quick (fun () ->
        let job =
          { Serve.id = "r1"; problem = problem (); timeout_ms = Some 250.0 }
        in
        List.iter
          (fun req ->
             let req' =
               Protocol.request_of_json (roundtrip_json (Protocol.request_to_json req))
             in
             match (req, req') with
             | Protocol.Submit a, Protocol.Submit b ->
               Alcotest.(check string) "job id" a.Serve.id b.Serve.id;
               Alcotest.(check (option (float 0.0))) "timeout" a.Serve.timeout_ms
                 b.Serve.timeout_ms;
               check_problem a.Serve.problem b.Serve.problem
             | Protocol.Poll a, Protocol.Poll b | Protocol.Cancel a, Protocol.Cancel b ->
               Alcotest.(check int) "ticket" a b
             | Protocol.Stats, Protocol.Stats
             | Protocol.Metrics, Protocol.Metrics
             | Protocol.Shutdown, Protocol.Shutdown -> ()
             | _ -> Alcotest.fail "request arm changed")
          [ Protocol.Submit job;
            Protocol.Submit { job with Serve.timeout_ms = None };
            Protocol.Poll 42; Protocol.Cancel 0; Protocol.Stats;
            Protocol.Metrics; Protocol.Shutdown ]);
    Alcotest.test_case "every reply arm round-trips" `Quick (fun () ->
        List.iter
          (fun rep ->
             let rep' =
               Protocol.reply_of_json (roundtrip_json (Protocol.reply_to_json rep))
             in
             match (rep, rep') with
             | Protocol.Submitted a, Protocol.Submitted b ->
               Alcotest.(check int) "ticket" a.ticket b.ticket;
               Alcotest.(check int) "shard" a.shard b.shard
             | Protocol.Busy a, Protocol.Busy b ->
               Alcotest.(check (float 0.0)) "retry" a.retry_after_ms b.retry_after_ms
             | Protocol.Pending, Protocol.Pending
             | Protocol.Shutdown_ok, Protocol.Shutdown_ok -> ()
             | Protocol.Completed a, Protocol.Completed b ->
               Alcotest.(check string) "id" a.Serve.id b.Serve.id
             | Protocol.Cancel_ok a, Protocol.Cancel_ok b ->
               Alcotest.(check bool) "flag" a b
             | Protocol.Stats_json a, Protocol.Stats_json b ->
               Alcotest.(check bool) "stats json" true (a = b)
             | Protocol.Metrics_text a, Protocol.Metrics_text b ->
               Alcotest.(check string) "metrics" a b
             | Protocol.Error a, Protocol.Error b ->
               Alcotest.(check string) "error" a b
             | _ -> Alcotest.fail "reply arm changed")
          [ Protocol.Submitted { ticket = 7; shard = 2 };
            Protocol.Busy { retry_after_ms = 12.5 };
            Protocol.Pending;
            Protocol.Completed (result ());
            Protocol.Cancel_ok true;
            Protocol.Stats_json (Protocol.Arr [ Protocol.Num 1.0 ]);
            Protocol.Metrics_text "qac_serve_jobs_done{shard=\"0\"} 3\n";
            Protocol.Shutdown_ok;
            Protocol.Error "unknown ticket" ]) ]

let with_socketpair f =
  let a, b = Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
        List.iter
          (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
          [ a; b ])
    (fun () -> f a b)

let framing_tests =
  [ Alcotest.test_case "frames round-trip over a socketpair" `Quick (fun () ->
        with_socketpair (fun a b ->
            List.iter
              (fun payload ->
                 Protocol.write_frame a payload;
                 match Protocol.read_frame b with
                 | Some got -> Alcotest.(check string) "payload" payload got
                 | None -> Alcotest.fail "unexpected EOF")
              [ ""; "x"; String.make 70000 'q'; "{\"op\":\"stats\"}" ]));
    Alcotest.test_case "clean EOF at a frame boundary reads as None" `Quick
      (fun () ->
         with_socketpair (fun a b ->
             Protocol.write_frame a "last";
             Unix.close a;
             Alcotest.(check (option string)) "frame" (Some "last")
               (Protocol.read_frame b);
             Alcotest.(check (option string)) "eof" None (Protocol.read_frame b)));
    Alcotest.test_case "EOF mid-frame raises" `Quick (fun () ->
        with_socketpair (fun a b ->
            (* A 100-byte header with only 3 payload bytes behind it. *)
            let header = Bytes.create 4 in
            Bytes.set_int32_be header 0 100l;
            ignore (Unix.write a header 0 4);
            ignore (Unix.write_substring a "abc" 0 3);
            Unix.close a;
            match Protocol.read_frame b with
            | exception Protocol.Protocol_error _ -> ()
            | _ -> Alcotest.fail "truncated frame must not parse"));
    Alcotest.test_case "oversized declared length is rejected unread" `Quick
      (fun () ->
         with_socketpair (fun a b ->
             let header = Bytes.create 4 in
             Bytes.set_int32_be header 0 (Int32.of_int (Protocol.max_frame_len + 1));
             ignore (Unix.write a header 0 4);
             (match Protocol.read_frame b with
              | exception Protocol.Protocol_error _ -> ()
              | _ -> Alcotest.fail "oversized frame must be rejected");
             (* Negative length (high bit set) is oversized too. *)
             Bytes.set_int32_be header 0 0xdeadbeefl;
             ignore (Unix.write a header 0 4);
             match Protocol.read_frame b with
             | exception Protocol.Protocol_error _ -> ()
             | _ -> Alcotest.fail "negative frame length must be rejected"));
    Alcotest.test_case "write_frame refuses oversized payloads" `Quick
      (fun () ->
         (* The check precedes any write, so a bogus fd never gets touched. *)
         match Protocol.write_frame Unix.stdout (String.make (Protocol.max_frame_len + 1) ' ')
         with
         | exception Protocol.Protocol_error _ -> ()
         | _ -> Alcotest.fail "oversized write must be rejected") ]

let suite = json_tests @ codec_tests @ framing_tests
