(* Second battery of pipeline tests: alternate solvers, topologies, pin
   syntaxes and failure modes. *)

module P = Qac_core.Pipeline
module Sampler = Qac_anneal.Sampler

let fig2_src =
  "module circuit (s, a, b, c); input s, a, b; output [1:0] c; assign c = s ? a + b : a - b; endmodule"

let parity_src =
  "module parity (x, p); input [4:0] x; output p; assign p = ^x; endmodule"

let eq_src =
  "module eq (a, b, y); input [2:0] a, b; output y; assign y = a == b; endmodule"

let suite =
  [ Alcotest.test_case "pin_source with binary vector" `Quick (fun () ->
        let t = P.compile fig2_src in
        let result =
          P.run t ~pin_source:"c[1:0] := 10\ns := 1\n" ~solver:P.Exact_solver
            ~target:P.Logical
        in
        List.iter
          (fun s ->
             Alcotest.(check int) "a + b = 2" 2
               (List.assoc "a" s.P.ports + List.assoc "b" s.P.ports))
          (P.valid_solutions result));
    Alcotest.test_case "bad pin_source reported" `Quick (fun () ->
        let t = P.compile fig2_src in
        match P.run t ~pin_source:"!garbage x" ~solver:P.Exact_solver ~target:P.Logical with
        | exception Qac_diag.Diag.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
    Alcotest.test_case "out-of-range integer pin rejected" `Quick (fun () ->
        let t = P.compile fig2_src in
        match P.run t ~pins:[ ("c", 4) ] ~solver:P.Exact_solver ~target:P.Logical with
        | exception Qac_diag.Diag.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
    Alcotest.test_case "SQA solver through the pipeline" `Quick (fun () ->
        let t = P.compile fig2_src in
        let solver =
          P.Sqa { Qac_anneal.Sqa.default_params with Qac_anneal.Sqa.num_reads = 20 }
        in
        let result = P.run t ~pins:[ ("s", 1); ("a", 1); ("b", 0) ] ~solver ~target:P.Logical in
        match P.valid_solutions result with
        | s :: _ -> Alcotest.(check int) "c" 1 (List.assoc "c" s.P.ports)
        | [] -> Alcotest.fail "SQA found no valid solution");
    Alcotest.test_case "tabu solver through the pipeline" `Quick (fun () ->
        let t = P.compile eq_src in
        let solver =
          P.Tabu { Qac_anneal.Tabu.default_params with Qac_anneal.Tabu.num_restarts = 30 }
        in
        let result = P.run t ~pins:[ ("y", 1); ("a", 5) ] ~solver ~target:P.Logical in
        match P.valid_solutions result with
        | s :: _ -> Alcotest.(check int) "b" 5 (List.assoc "b" s.P.ports)
        | [] -> Alcotest.fail "tabu found no valid solution");
    Alcotest.test_case "Pegasus target end-to-end" `Quick (fun () ->
        let t = P.compile fig2_src in
        let target =
          P.Physical
            { graph = Qac_chimera.Pegasus.create 3;
              embed_params = None;
              chain_strength = None;
              roof_duality = false }
        in
        let solver =
          P.Sa { Qac_anneal.Sa.default_params with Qac_anneal.Sa.num_reads = 80; num_sweeps = 600 }
        in
        let result = P.run t ~pins:[ ("s", 1); ("a", 1); ("b", 1) ] ~solver ~target in
        (match result.P.num_physical_qubits with
         | Some q ->
           Alcotest.(check bool) "pegasus needs fewer extra qubits" true
             (q < 2 * result.P.num_logical_vars)
         | None -> Alcotest.fail "no qubit count");
        match P.valid_solutions result with
        | s :: _ -> Alcotest.(check int) "c" 2 (List.assoc "c" s.P.ports)
        | [] -> Alcotest.fail "no valid solution on Pegasus");
    Alcotest.test_case "parity circuit backward (odd parity demanded)" `Quick (fun () ->
        let t = P.compile parity_src in
        let result = P.run t ~pins:[ ("p", 1) ] ~solver:P.Exact_solver ~target:P.Logical in
        let valid = P.valid_solutions result in
        Alcotest.(check int) "16 odd-parity inputs" 16 (List.length valid);
        List.iter
          (fun s ->
             let x = List.assoc "x" s.P.ports in
             let rec popcount v = if v = 0 then 0 else (v land 1) + popcount (v lsr 1) in
             Alcotest.(check int) "odd parity" 1 (popcount x mod 2))
          valid);
    Alcotest.test_case "assertion failures counted separately from validity" `Quick
      (fun () ->
         let t = P.compile fig2_src in
         (* Weak SA on the physical problem can produce port-valid samples
            with internal cells excited; the counters must be consistent. *)
         let solver =
           P.Sa { Qac_anneal.Sa.default_params with Qac_anneal.Sa.num_reads = 30; num_sweeps = 30 }
         in
         let result = P.run t ~solver ~target:P.Logical in
         let failures =
           List.length (List.filter (fun s -> not s.P.assertions_ok) result.P.solutions)
         in
         Alcotest.(check int) "counter matches" failures result.P.assertion_failures);
    Alcotest.test_case "time-to-solution metric" `Quick (fun () ->
        let p =
          Qac_ising.Problem.create ~num_vars:2 ~h:[| 0.0; 0.0 |] ~j:[ ((0, 1), -1.0) ] ()
        in
        let r =
          Qac_anneal.Sa.sample
            ~params:{ Qac_anneal.Sa.default_params with Qac_anneal.Sa.num_reads = 10 } p
        in
        Alcotest.(check (float 1e-9)) "all reads succeed" 1.0
          (Sampler.success_probability r ~target_energy:(-1.0));
        (match Sampler.time_to_solution r ~target_energy:(-1.0) with
         | Some t -> Alcotest.(check bool) "finite" true (t >= 0.0)
         | None -> Alcotest.fail "expected a TTS");
        Alcotest.(check (option (float 0.0))) "unreachable target" None
          (Sampler.time_to_solution r ~target_energy:(-100.0)));
    Alcotest.test_case "clique-template fallback in the pipeline" `Quick (fun () ->
        (* A dense module whose interaction graph defeats the path heuristic
           on a small graph: equality over 3-bit words compiled and embedded
           into a C4 with few CMR tries. *)
        let t = P.compile eq_src in
        let target =
          P.Physical
            { graph = Qac_chimera.Chimera.create 4;
              embed_params =
                Some { Qac_embed.Cmr.default_params with Qac_embed.Cmr.tries = 1; max_passes = 1 };
              chain_strength = None;
              roof_duality = false }
        in
        let solver =
          P.Sa { Qac_anneal.Sa.default_params with Qac_anneal.Sa.num_reads = 60; num_sweeps = 500 }
        in
        (* Either the heuristic succeeds in its single try or the clique
           template catches it; both must produce a working run. *)
        let result = P.run t ~pins:[ ("a", 3); ("b", 3) ] ~solver ~target in
        match P.valid_solutions result with
        | s :: _ -> Alcotest.(check int) "y" 1 (List.assoc "y" s.P.ports)
        | [] -> Alcotest.fail "no valid solution");
  ]
