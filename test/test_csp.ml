open Qac_csp

(* Listing 8 of the paper, verbatim. *)
let listing8 =
  {|
var 1..4: NSW;
var 1..4: QLD;
var 1..4: SA;
var 1..4: VIC;
var 1..4: WA;
var 1..4: NT;
var 1..4: ACT;
constraint WA != NT;
constraint WA != SA;
constraint NT != SA;
constraint NT != QLD;
constraint SA != QLD;
constraint SA != NSW;
constraint SA != VIC;
constraint QLD != NSW;
constraint NSW != VIC;
constraint NSW != ACT;
solve satisfy;
|}

let adjacency =
  [ ("WA", "NT"); ("WA", "SA"); ("NT", "SA"); ("NT", "QLD"); ("SA", "QLD");
    ("SA", "NSW"); ("SA", "VIC"); ("QLD", "NSW"); ("NSW", "VIC"); ("NSW", "ACT") ]

let csp_tests =
  [ Alcotest.test_case "trivial satisfiable" `Quick (fun () ->
        let t = Csp.create () in
        let a = Csp.add_var t ~name:"a" ~lo:0 ~hi:1 () in
        let b = Csp.add_var t ~name:"b" ~lo:0 ~hi:1 () in
        Csp.add_constraint t Csp.Ne a b;
        match Csp.solve t with
        | Some s ->
          Alcotest.(check bool) "different" true (List.assoc "a" s <> List.assoc "b" s)
        | None -> Alcotest.fail "should be satisfiable");
    Alcotest.test_case "unsatisfiable detected" `Quick (fun () ->
        (* 3 mutually-different variables over a 2-value domain. *)
        let t = Csp.create () in
        let vars = List.init 3 (fun i -> Csp.add_var t ~name:(string_of_int i) ~lo:0 ~hi:1 ()) in
        List.iteri
          (fun i a -> List.iteri (fun k b -> if i < k then Csp.add_constraint t Csp.Ne a b) vars)
          vars;
        Alcotest.(check bool) "unsat" true (Csp.solve t = None));
    Alcotest.test_case "solve_all enumerates" `Quick (fun () ->
        let t = Csp.create () in
        let a = Csp.add_var t ~name:"a" ~lo:0 ~hi:2 () in
        let b = Csp.add_var t ~name:"b" ~lo:0 ~hi:2 () in
        Csp.add_constraint t Csp.Lt a b;
        (* pairs with a < b over 0..2: (0,1) (0,2) (1,2) *)
        Alcotest.(check int) "three" 3 (List.length (Csp.solve_all t)));
    Alcotest.test_case "unary constraints restrict domains" `Quick (fun () ->
        let t = Csp.create () in
        let a = Csp.add_var t ~name:"a" ~lo:0 ~hi:9 () in
        Csp.add_unary t a (fun v -> v mod 3 = 0);
        Alcotest.(check int) "multiples of 3" 4 (Csp.count_solutions t));
    Alcotest.test_case "custom relations" `Quick (fun () ->
        let t = Csp.create () in
        let a = Csp.add_var t ~name:"a" ~lo:1 ~hi:5 () in
        let b = Csp.add_var t ~name:"b" ~lo:1 ~hi:5 () in
        Csp.add_constraint t (Csp.Custom ("sum7", fun x y -> x + y = 7)) a b;
        Alcotest.(check int) "pairs summing to 7" 4 (Csp.count_solutions t));
    Alcotest.test_case "check validates solutions" `Quick (fun () ->
        let t = Csp.create () in
        let a = Csp.add_var t ~name:"a" ~lo:0 ~hi:1 () in
        let b = Csp.add_var t ~name:"b" ~lo:0 ~hi:1 () in
        Csp.add_constraint t Csp.Ne a b;
        Alcotest.(check bool) "good" true (Csp.check t [ ("a", 0); ("b", 1) ]);
        Alcotest.(check bool) "bad" false (Csp.check t [ ("a", 1); ("b", 1) ]));
    Alcotest.test_case "seeded solve samples different solutions" `Quick (fun () ->
        let make () =
          let t = Csp.create () in
          let a = Csp.add_var t ~name:"a" ~lo:0 ~hi:9 () in
          let b = Csp.add_var t ~name:"b" ~lo:0 ~hi:9 () in
          Csp.add_constraint t Csp.Ne a b;
          t
        in
        let solutions =
          List.init 10 (fun seed -> Csp.solve ~seed (make ()))
          |> List.filter_map (fun s -> s)
          |> List.sort_uniq compare
        in
        Alcotest.(check bool) "more than one distinct" true (List.length solutions > 1));
  ]

let mzn_tests =
  [ Alcotest.test_case "Listing 8 parses" `Quick (fun () ->
        let t = Mzn.parse listing8 in
        Alcotest.(check int) "7 vars" 7 (Csp.num_vars t);
        Alcotest.(check int) "10 constraints" 10 (Csp.num_constraints t));
    Alcotest.test_case "Listing 8 solves to a valid four-coloring" `Quick (fun () ->
        let t = Mzn.parse listing8 in
        match Csp.solve t with
        | None -> Alcotest.fail "Australia is four-colorable"
        | Some coloring ->
          List.iter
            (fun (a, b) ->
               Alcotest.(check bool)
                 (Printf.sprintf "%s != %s" a b)
                 true
                 (List.assoc a coloring <> List.assoc b coloring))
            adjacency);
    Alcotest.test_case "Australia has 576 four-colorings" `Quick (fun () ->
        (* Chromatic polynomial: the adjacency graph factors as a WA-NT-SA
           triangle with QLD, NSW, VIC each attached to two colored regions
           and ACT to one, giving k(k-1)^2 (k-2)^4 = 576 at k = 4. *)
        let t = Mzn.parse listing8 in
        Alcotest.(check int) "count" 576 (Csp.count_solutions t));
    Alcotest.test_case "recolored domains: 3 colors give 12, 2 give none" `Quick (fun () ->
        let with_colors k =
          let buf = Buffer.create 512 in
          String.split_on_char '\n' listing8
          |> List.iter (fun line ->
              let line =
                if String.length line >= 10 && String.sub line 0 4 = "var " then
                  Printf.sprintf "var 1..%d: %s" k (String.sub line 10 (String.length line - 10))
                else line
              in
              Buffer.add_string buf line;
              Buffer.add_char buf '\n');
          Mzn.parse (Buffer.contents buf)
        in
        Alcotest.(check int) "3 colors" 12 (Csp.count_solutions (with_colors 3));
        Alcotest.(check bool) "2 colors unsat" true (Csp.solve (with_colors 2) = None));
    Alcotest.test_case "comments and conjunctions" `Quick (fun () ->
        let src =
          "% a comment\nvar 1..2: A;\nvar 1..2: B; var 1..2: C;\nconstraint A != B /\\ B != C;\nsolve satisfy;\n"
        in
        let t = Mzn.parse src in
        Alcotest.(check int) "two constraints" 2 (Csp.num_constraints t);
        Alcotest.(check bool) "sat" true (Csp.solve t <> None));
    Alcotest.test_case "constant comparisons" `Quick (fun () ->
        let t = Mzn.parse "var 1..5: X;\nconstraint X >= 3;\nconstraint X != 4;\nsolve satisfy;\n" in
        Alcotest.(check int) "two values" 2 (Csp.count_solutions t));
    Alcotest.test_case "unsupported items rejected" `Quick (fun () ->
        match Mzn.parse "array[1..3] of var int: xs;\nsolve satisfy;" with
        | exception Qac_diag.Diag.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
    Alcotest.test_case "missing solve rejected" `Quick (fun () ->
        match Mzn.parse "var 1..2: A;" with
        | exception Qac_diag.Diag.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
  ]

let suite = csp_tests @ mzn_tests
