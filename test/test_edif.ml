open Qac_netlist
module Edif = Qac_edif.Edif
module B = Netlist.Builder

let bits_of_int width v = Array.init width (fun i -> (v lsr i) land 1 = 1)

let int_of_bits bits =
  let v = ref 0 in
  Array.iteri (fun i b -> if b then v := !v lor (1 lsl i)) bits;
  !v

(* Behavioural round-trip: the parsed netlist must compute the same function
   as the original on all (or sampled) inputs. *)
let check_roundtrip ?(max_exhaustive = 10) (n : Netlist.t) =
  let text = Edif.to_string n in
  let n' = Edif.of_string text in
  let total_bits =
    List.fold_left (fun acc (_, nets) -> acc + Array.length nets) 0 n.Netlist.inputs
  in
  let cases =
    if total_bits <= max_exhaustive then List.init (1 lsl total_bits) (fun c -> c)
    else
      let st = Random.State.make [| 99 |] in
      List.init 50 (fun _ -> Random.State.int st (1 lsl (min total_bits 30)))
  in
  List.iter
    (fun code ->
       let _, inputs =
         List.fold_left
           (fun (shift, acc) (name, nets) ->
              let w = Array.length nets in
              (shift + w, (name, bits_of_int w ((code lsr shift) land ((1 lsl w) - 1))) :: acc))
           (0, []) n.Netlist.inputs
       in
       let expected = Sim.comb n ~inputs in
       let got = Sim.comb n' ~inputs in
       List.iter
         (fun (name, bits) ->
            Alcotest.(check int) (Printf.sprintf "%s @%d" name code)
              (int_of_bits bits)
              (int_of_bits (List.assoc name got)))
         expected)
    cases

let verilog_netlist src = (Qac_verilog.Synth.compile src).Qac_verilog.Synth.netlist

let suite =
  [ Alcotest.test_case "structure: version, libraries, design" `Quick (fun () ->
        let n = verilog_netlist "module t (a, b, o); input a, b; output o; assign o = a & b; endmodule" in
        let sexp = Edif.to_sexp n in
        Alcotest.(check bool) "has edifVersion" true
          (Qac_sexp.Sexp.find ~tag:"edifVersion" sexp <> None);
        Alcotest.(check int) "two libraries" 2
          (List.length (Qac_sexp.Sexp.find_all ~tag:"library" sexp));
        Alcotest.(check bool) "has design" true
          (Qac_sexp.Sexp.find ~tag:"design" sexp <> None));
    Alcotest.test_case "round-trip simple AND" `Quick (fun () ->
        check_roundtrip
          (verilog_netlist
             "module t (a, b, o); input a, b; output o; assign o = a & b; endmodule"));
    Alcotest.test_case "round-trip Figure 2 mux" `Quick (fun () ->
        check_roundtrip
          (verilog_netlist
             "module circuit (s, a, b, c); input s, a, b; output [1:0] c; assign c = s ? a + b : a - b; endmodule"));
    Alcotest.test_case "round-trip multiplier (multi-bit ports)" `Quick (fun () ->
        check_roundtrip
          (verilog_netlist
             "module mult (A, B, C); input [3:0] A; input [3:0] B; output [7:0] C; assign C = A * B; endmodule"));
    Alcotest.test_case "round-trip with constants" `Quick (fun () ->
        check_roundtrip
          (verilog_netlist
             "module t (a, o); input [2:0] a; output [2:0] o; assign o = a + 3'b101; endmodule"));
    Alcotest.test_case "round-trip constant output" `Quick (fun () ->
        check_roundtrip
          (verilog_netlist
             "module t (a, o); input a; output [1:0] o; assign o = 2'b10; endmodule"));
    Alcotest.test_case "round-trip passthrough" `Quick (fun () ->
        check_roundtrip
          (verilog_netlist "module t (a, o); input [1:0] a; output [1:0] o; assign o = a; endmodule"));
    Alcotest.test_case "sequential netlist round-trips" `Quick (fun () ->
        let src =
          "module c (clk, o); input clk; output [1:0] o; reg [1:0] q; always @(posedge clk) q <= q + 1; assign o = q; endmodule"
        in
        let n = verilog_netlist src in
        let n' = Edif.of_string (Edif.to_string n) in
        Alcotest.(check int) "flip-flops preserved" (Netlist.num_flip_flops n)
          (Netlist.num_flip_flops n');
        let steps = [ [ ("clk", [| false |]) ]; [ ("clk", [| false |]) ]; [ ("clk", [| false |]) ] ] in
        let trace netlist =
          List.map (fun o -> int_of_bits (List.assoc "o" o)) (Sim.run netlist ~inputs:steps)
        in
        Alcotest.(check (list int)) "same trace" (trace n) (trace n'));
    Alcotest.test_case "line_count counts lines" `Quick (fun () ->
        Alcotest.(check int) "3 lines" 3 (Edif.line_count "a\nb\nc\n");
        Alcotest.(check int) "no trailing newline" 2 (Edif.line_count "a\nb"));
    Alcotest.test_case "parse rejects non-EDIF" `Quick (fun () ->
        match Edif.of_string "(not_edif)" with
        | exception Qac_diag.Diag.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
    Alcotest.test_case "paper-style excerpt parses (Figure 3b shape)" `Quick (fun () ->
        (* A handwritten minimal EDIF in the shape of Figure 3(b). *)
        let src =
          {|
(edif top
  (edifVersion 2 0 0)
  (edifLevel 0)
  (keywordMap (keywordLevel 0))
  (library cells (edifLevel 0) (technology (numberDefinition))
    (cell XOR (cellType GENERIC)
      (view netlist (viewType NETLIST)
        (interface (port A (direction INPUT))
                   (port B (direction INPUT))
                   (port Y (direction OUTPUT))))))
  (library DESIGN (edifLevel 0) (technology (numberDefinition))
    (cell top (cellType GENERIC)
      (view netlist (viewType NETLIST)
        (interface (port a (direction INPUT))
                   (port b (direction INPUT))
                   (port y (direction OUTPUT)))
        (contents
          (instance id00004 (viewRef netlist (cellRef XOR (libraryRef cells))))
          (net a (joined (portRef A (instanceRef id00004)) (portRef a)))
          (net b (joined (portRef B (instanceRef id00004)) (portRef b)))
          (net y (joined (portRef Y (instanceRef id00004)) (portRef y)))))))
  (design top (cellRef top (libraryRef DESIGN))))
|}
        in
        let n = Edif.of_string src in
        let out a b =
          (List.assoc "y" (Sim.comb n ~inputs:[ ("a", [| a |]); ("b", [| b |]) ])).(0)
        in
        Alcotest.(check bool) "xor tt" true
          (out false false = false && out true false = true && out false true = true
           && out true true = false));
    Alcotest.test_case "techmapped netlist with AOI round-trips" `Quick (fun () ->
        check_roundtrip
          (verilog_netlist
             "module t (a, b, c, d, o); input a, b, c, d; output o; assign o = ~((a & b) | (c & d)); endmodule"));
  ]

(* Property: EDIF round-trips preserve behaviour on random netlists (the
   generator lives in Test_netlist). *)
let property_suite =
  let roundtrip =
    QCheck.Test.make ~name:"EDIF round-trip preserves random netlist behaviour" ~count:40
      (QCheck.make Test_netlist.random_netlist_gen)
      (fun spec ->
         let n = Test_netlist.build_random spec in
         let n' = Edif.of_string (Edif.to_string n) in
         let num_inputs = List.length n.Netlist.inputs in
         List.for_all
           (fun code ->
              let inputs =
                List.mapi
                  (fun i (name, _) -> (name, [| (code lsr i) land 1 = 1 |]))
                  n.Netlist.inputs
              in
              Sim.comb n ~inputs = Sim.comb n' ~inputs)
           (List.init (1 lsl num_inputs) (fun c -> c)))
  in
  [ QCheck_alcotest.to_alcotest roundtrip ]

let suite = suite @ property_suite
