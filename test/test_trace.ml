(** Span tracing: the mechanism itself, plus the per-stage spans and size
    counters recorded by [Pipeline.compile] and [Pipeline.run]. *)

module Trace = Qac_diag.Trace
module Diag = Qac_diag.Diag
module P = Qac_core.Pipeline

let span_names t = List.map (fun s -> s.Trace.name) (Trace.spans t)

let counter_exn t span key =
  match Trace.find_counter t span key with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "no counter %s on span %s" key span)

let mult_src =
  "module mult (a, b, p); input [2:0] a; input [2:0] b; output [5:0] p; \
   assign p = a * b; endmodule"

let suite =
  [ Alcotest.test_case "spans record order, nesting and counters" `Quick (fun () ->
        let t = Trace.create () in
        let v =
          Trace.with_span t "outer" (fun () ->
              Trace.counter t "a" 1;
              Trace.with_span t "inner" (fun () -> Trace.counter t "b" 2);
              Trace.counter t "a" 3;
              17)
        in
        Alcotest.(check int) "value" 17 v;
        (* Inner completes first; counters attach to the open span. *)
        Alcotest.(check (list string)) "order" [ "inner"; "outer" ] (span_names t);
        Alcotest.(check int) "inner counter" 2 (counter_exn t "inner" "b");
        Alcotest.(check int) "overwritten" 3 (counter_exn t "outer" "a");
        List.iter
          (fun s ->
             Alcotest.(check bool) "non-negative time" true (s.Trace.elapsed_seconds >= 0.0))
          (Trace.spans t));
    Alcotest.test_case "span recorded when the callback raises" `Quick (fun () ->
        let t = Trace.create () in
        (match Trace.with_span t "failing" (fun () -> Diag.error ~stage:"s" "no") with
         | _ -> Alcotest.fail "expected raise"
         | exception Diag.Error _ -> ());
        Alcotest.(check (list string)) "recorded" [ "failing" ] (span_names t));
    Alcotest.test_case "compile records every stage with counters" `Quick (fun () ->
        let trace = Trace.create () in
        let t = P.compile ~trace mult_src in
        Alcotest.(check (list string)) "stages"
          [ "parse"; "elab"; "synth"; "unroll"; "edif-roundtrip"; "e2q"; "expand";
            "assemble" ]
          (span_names trace);
        Alcotest.(check bool) "gates" true (counter_exn trace "synth" "gates" > 0);
        Alcotest.(check bool) "nets" true (counter_exn trace "synth" "nets" > 0);
        Alcotest.(check bool) "edif lines" true
          (counter_exn trace "edif-roundtrip" "edif-lines" > 0);
        Alcotest.(check bool) "statements" true
          (counter_exn trace "expand" "statements" > 0);
        Alcotest.(check int) "logical vars counter matches program"
          t.P.program.Qac_qmasm.Assemble.problem.Qac_ising.Problem.num_vars
          (counter_exn trace "assemble" "logical-vars"));
    Alcotest.test_case "sequential compile records the unroll depth" `Quick (fun () ->
        let trace = Trace.create () in
        let (_ : P.t) =
          P.compile ~trace ~steps:2
            "module c (clk, q); input clk; output q; reg q; \
             always @(posedge clk) q <= ~q; endmodule"
        in
        Alcotest.(check int) "steps" 2 (counter_exn trace "unroll" "steps"));
    Alcotest.test_case "logical run records assemble/solve/verify" `Quick (fun () ->
        let t = P.compile mult_src in
        let trace = Trace.create () in
        let params =
          { Qac_anneal.Sa.default_params with Qac_anneal.Sa.num_reads = 20; num_sweeps = 50 }
        in
        let (_ : P.run_result) =
          P.run t ~pins:[ ("a", 3); ("b", 5) ] ~trace ~solver:(P.Sa params)
            ~target:P.Logical
        in
        Alcotest.(check (list string)) "stages" [ "assemble"; "solve"; "verify" ]
          (span_names trace);
        Alcotest.(check int) "reads" 20 (counter_exn trace "solve" "reads");
        Alcotest.(check bool) "solutions counted" true
          (counter_exn trace "verify" "distinct-solutions" > 0));
    Alcotest.test_case "physical run records qpbo/embed/unembed with counters" `Quick
      (fun () ->
         let t =
           P.compile
             "module t (a, b, o); input a, b; output o; assign o = a & b; endmodule"
         in
         let trace = Trace.create () in
         let target =
           P.Physical
             { graph = Qac_chimera.Chimera.create 4;
               embed_params = None;
               chain_strength = None;
               roof_duality = false }
         in
         (* A private cache keeps the embed span present whatever ran before. *)
         let r =
           P.run t ~trace ~embed_cache:(Qac_embed.Cache.create ()) ~solver:P.Exact_solver
             ~target
         in
         Alcotest.(check (list string)) "stages"
           [ "assemble"; "qpbo"; "embed"; "solve"; "unembed"; "verify" ]
           (span_names trace);
         Alcotest.(check int) "cold run misses the cache" 1
           (counter_exn trace "embed" "embed-cache-miss");
         let qubits = counter_exn trace "embed" "physical-qubits" in
         Alcotest.(check bool) "qubits >= logical vars" true
           (qubits >= r.P.num_logical_vars);
         Alcotest.(check (option int)) "matches run_result" (Some qubits)
           r.P.num_physical_qubits;
         Alcotest.(check bool) "max chain length" true
           (counter_exn trace "embed" "max-chain-length" >= 1));
    Alcotest.test_case "warm embed cache skips the embed span" `Quick (fun () ->
        let t =
          P.compile
            "module t (a, b, o); input a, b; output o; assign o = a | b; endmodule"
        in
        let target =
          P.Physical
            { graph = Qac_chimera.Chimera.create 4;
              embed_params = None;
              chain_strength = None;
              roof_duality = false }
        in
        let cache = Qac_embed.Cache.create () in
        let run () =
          let trace = Trace.create () in
          let r = P.run t ~trace ~embed_cache:cache ~solver:P.Exact_solver ~target in
          (trace, r)
        in
        let cold_trace, cold = run () in
        let warm_trace, warm = run () in
        Alcotest.(check int) "cold miss" 1
          (counter_exn cold_trace "embed" "embed-cache-miss");
        Alcotest.(check bool) "warm run has no embed span" true
          (not (List.mem "embed" (span_names warm_trace)));
        (* The hit counter lands outside any stage span (recorded as its own
           zero-duration mark). *)
        Alcotest.(check int) "warm hit" 1
          (counter_exn warm_trace "embed-cache-hit" "embed-cache-hit");
        Alcotest.(check (option int)) "same qubit count" cold.P.num_physical_qubits
          warm.P.num_physical_qubits;
        Alcotest.(check bool) "same solutions" true
          (cold.P.solutions = warm.P.solutions));
    Alcotest.test_case "json export" `Quick (fun () ->
        let trace = Trace.create () in
        let (_ : P.t) = P.compile ~trace mult_src in
        let json = Trace.to_json trace in
        let contains needle =
          Qac_qmasm.Str_split.find_substring json needle <> None
        in
        Alcotest.(check bool) "has spans" true (contains "\"spans\":[");
        Alcotest.(check bool) "has total" true (contains "\"total_seconds\":");
        Alcotest.(check bool) "has a stage" true (contains "\"name\":\"synth\"");
        Alcotest.(check bool) "has a counter" true (contains "\"gates\":"));
    Alcotest.test_case "summary values overwrite, export and pretty-print" `Quick
      (fun () ->
         let t = Trace.create () in
         Trace.set_summary t "embed-cache-hits" 2;
         Trace.set_summary t "occupancy-pct" 40;
         Trace.set_summary t "embed-cache-hits" 5;
         Alcotest.(check (list (pair string int))) "ordered, overwritten"
           [ ("embed-cache-hits", 5); ("occupancy-pct", 40) ]
           (Trace.summary t);
         Alcotest.(check (option int)) "lookup" (Some 40)
           (Trace.find_summary t "occupancy-pct");
         Alcotest.(check (option int)) "missing" None (Trace.find_summary t "nope");
         let json = Trace.to_json t in
         let contains haystack needle =
           Qac_qmasm.Str_split.find_substring haystack needle <> None
         in
         Alcotest.(check bool) "summary object in json" true
           (contains json "\"summary\":{\"embed-cache-hits\":5,\"occupancy-pct\":40}");
         Alcotest.(check bool) "summary line in text" true
           (contains (Trace.to_text t) "summary: embed-cache-hits=5 occupancy-pct=40"));
    Alcotest.test_case "empty summary exports an empty object, no text line" `Quick
      (fun () ->
         let t = Trace.create () in
         let contains haystack needle =
           Qac_qmasm.Str_split.find_substring haystack needle <> None
         in
         Alcotest.(check bool) "empty object" true
           (contains (Trace.to_json t) "\"summary\":{}");
         Alcotest.(check bool) "no text line" false
           (contains (Trace.to_text t) "summary:"));
    Alcotest.test_case "run with timeout_ms flags the result and the trace" `Quick
      (fun () ->
         let t = P.compile mult_src in
         let trace = Trace.create () in
         let params =
           { Qac_anneal.Sa.default_params with
             Qac_anneal.Sa.num_reads = 50;
             num_sweeps = 2000 }
         in
         let r =
           P.run t ~trace ~timeout_ms:0.0 ~solver:(P.Sa params) ~target:P.Logical
         in
         Alcotest.(check bool) "result flagged" true r.P.timed_out;
         Alcotest.(check int) "trace counter" 1 (counter_exn trace "solve" "timed-out");
         Alcotest.(check bool) "best-so-far solutions kept" true
           (r.P.solutions <> []));
    Alcotest.test_case "run without timeout stays unflagged" `Quick (fun () ->
        let t = P.compile mult_src in
        let trace = Trace.create () in
        let params =
          { Qac_anneal.Sa.default_params with
            Qac_anneal.Sa.num_reads = 10;
            num_sweeps = 30 }
        in
        let r = P.run t ~trace ~solver:(P.Sa params) ~target:P.Logical in
        Alcotest.(check bool) "not flagged" false r.P.timed_out;
        Alcotest.(check int) "trace counter" 0 (counter_exn trace "solve" "timed-out"));
  ]
