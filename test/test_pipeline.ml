module P = Qac_core.Pipeline

let fig2_src =
  {|
module circuit (s, a, b, c);
  input s;
  input a;
  input b;
  output [1:0] c;
  assign c = s ? a + b : a - b;
endmodule
|}

let circsat_src =
  {|
module circsat (a, b, c, y);
  input a, b, c;
  output y;
  wire [1:10] x;
  assign x[1] = a;
  assign x[2] = b;
  assign x[3] = c;
  assign x[4] = ~x[3];
  assign x[5] = x[1] | x[2];
  assign x[6] = ~x[4];
  assign x[7] = x[1] & x[2] & x[4];
  assign x[8] = x[5] | x[6];
  assign x[9] = x[6] | x[7];
  assign x[10] = x[8] & x[9] & x[7];
  assign y = x[10];
endmodule
|}

let mult_src w =
  Printf.sprintf
    "module mult (A, B, C);\n  input [%d:0] A;\n  input [%d:0] B;\n  output [%d:0] C;\n  assign C = A * B;\nendmodule\n"
    (w - 1) (w - 1) ((2 * w) - 1)

let australia_src =
  {|
module australia (NSW, QLD, SA, VIC, WA, NT, ACT, valid);
  input [1:0] NSW, QLD, SA, VIC, WA, NT, ACT;
  output valid;
  assign valid = WA != NT && WA != SA && NT != SA && NT != QLD && SA != QLD
              && SA != NSW && SA != VIC && QLD != NSW && NSW != VIC && NSW != ACT;
endmodule
|}

let counter_src =
  {|
module count (clk, inc, reset, out);
  input clk;
  input inc;
  input reset;
  output [1:0] out;
  reg [1:0] var;
  always @(posedge clk)
    if (reset)
      var <= 0;
    else
      if (inc)
        var <= var + 1;
  assign out = var;
endmodule
|}

let sa_params ~reads ~sweeps ~seed =
  { Qac_anneal.Sa.default_params with Qac_anneal.Sa.num_reads = reads; num_sweeps = sweeps; seed }

let compile_tests =
  [ Alcotest.test_case "fig2 compiles through every stage" `Quick (fun () ->
        let t = P.compile fig2_src in
        let props = P.static_properties t in
        Alcotest.(check bool) "verilog lines" true (props.P.verilog_lines >= 7);
        Alcotest.(check bool) "edif bigger than verilog" true
          (props.P.edif_lines > props.P.verilog_lines);
        Alcotest.(check bool) "qmasm nonempty" true (props.P.qmasm_lines > 10);
        Alcotest.(check bool) "has logical vars" true (props.P.logical_vars > 5));
    Alcotest.test_case "sequential module without steps is rejected" `Quick (fun () ->
        match P.compile counter_src with
        | exception Qac_diag.Diag.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
    Alcotest.test_case "port widths known" `Quick (fun () ->
        let t = P.compile fig2_src in
        Alcotest.(check (option int)) "c" (Some 2) (P.port_width t "c");
        Alcotest.(check (option int)) "s" (Some 1) (P.port_width t "s");
        Alcotest.(check (option int)) "nope" None (P.port_width t "zz"));
  ]

let forward_backward_tests =
  [ Alcotest.test_case "fig2 forward: s=1 a=1 b=1 gives c=2" `Quick (fun () ->
        let t = P.compile fig2_src in
        let result =
          P.run t ~pins:[ ("s", 1); ("a", 1); ("b", 1) ] ~solver:P.Exact_solver
            ~target:P.Logical
        in
        match P.valid_solutions result with
        | [ s ] -> Alcotest.(check int) "c" 2 (List.assoc "c" s.P.ports)
        | other -> Alcotest.failf "expected one solution, got %d" (List.length other));
    Alcotest.test_case "fig2 forward: s=0 a=0 b=1 wraps to c=3" `Quick (fun () ->
        let t = P.compile fig2_src in
        let result =
          P.run t ~pins:[ ("s", 0); ("a", 0); ("b", 1) ] ~solver:P.Exact_solver
            ~target:P.Logical
        in
        match P.valid_solutions result with
        | [ s ] -> Alcotest.(check int) "c" 3 (List.assoc "c" s.P.ports)
        | _ -> Alcotest.fail "expected exactly one solution");
    Alcotest.test_case "fig2 backward: c=2, s=1 implies a+b=2" `Quick (fun () ->
        let t = P.compile fig2_src in
        let result =
          P.run t ~pins:[ ("c", 2); ("s", 1) ] ~solver:P.Exact_solver ~target:P.Logical
        in
        let valid = P.valid_solutions result in
        Alcotest.(check bool) "found" true (valid <> []);
        List.iter
          (fun s ->
             Alcotest.(check int) "a+b" 2
               (List.assoc "a" s.P.ports + List.assoc "b" s.P.ports))
          valid);
    Alcotest.test_case "unpinned fig2: every ground state is a valid relation" `Quick
      (fun () ->
         let t = P.compile fig2_src in
         let result = P.run t ~solver:P.Exact_solver ~target:P.Logical in
         Alcotest.(check int) "8 solutions (one per input combo)" 8
           (List.length result.P.solutions);
         List.iter
           (fun s -> Alcotest.(check bool) "valid" true s.P.valid)
           result.P.solutions);
    Alcotest.test_case "circsat backward finds (1,1,0) — the paper's answer" `Quick
      (fun () ->
         let t = P.compile circsat_src in
         let result = P.run t ~pins:[ ("y", 1) ] ~solver:P.Exact_solver ~target:P.Logical in
         match P.valid_solutions result with
         | [ s ] ->
           Alcotest.(check int) "a" 1 (List.assoc "a" s.P.ports);
           Alcotest.(check int) "b" 1 (List.assoc "b" s.P.ports);
           Alcotest.(check int) "c" 0 (List.assoc "c" s.P.ports)
         | other -> Alcotest.failf "expected the unique satisfying assignment, got %d" (List.length other));
    Alcotest.test_case "factoring 2-bit: C=6 gives {2,3} (exact)" `Quick (fun () ->
        let t = P.compile (mult_src 2) in
        let result = P.run t ~pins:[ ("C", 6) ] ~solver:P.Exact_solver ~target:P.Logical in
        let factors =
          List.map
            (fun s -> (List.assoc "A" s.P.ports, List.assoc "B" s.P.ports))
            (P.valid_solutions result)
          |> List.sort_uniq compare
        in
        Alcotest.(check (list (pair int int))) "factors" [ (2, 3); (3, 2) ] factors);
    Alcotest.test_case "multiplication forward: 3 x 2 = 6 (2-bit, exact)" `Quick (fun () ->
        let t = P.compile (mult_src 2) in
        let result =
          P.run t ~pins:[ ("A", 3); ("B", 2) ] ~solver:P.Exact_solver ~target:P.Logical
        in
        match P.valid_solutions result with
        | [ s ] -> Alcotest.(check int) "C" 6 (List.assoc "C" s.P.ports)
        | _ -> Alcotest.fail "expected one solution");
    Alcotest.test_case "division sideways: C=6, A=3 gives B=2 (paper section 5.3)" `Quick
      (fun () ->
         let t = P.compile (mult_src 2) in
         let result =
           P.run t ~pins:[ ("C", 6); ("A", 3) ] ~solver:P.Exact_solver ~target:P.Logical
         in
         match P.valid_solutions result with
         | [ s ] -> Alcotest.(check int) "B" 2 (List.assoc "B" s.P.ports)
         | _ -> Alcotest.fail "expected one solution");
    Alcotest.test_case "factoring 4-bit: C=143 gives {11,13} (SA, section 5.3)" `Slow
      (fun () ->
         let t = P.compile (mult_src 4) in
         let solver = P.Sa (sa_params ~reads:500 ~sweeps:2000 ~seed:5) in
         let result = P.run t ~pins:[ ("C", 143) ] ~solver ~target:P.Logical in
         let factors =
           List.map
             (fun s -> (List.assoc "A" s.P.ports, List.assoc "B" s.P.ports))
             (P.valid_solutions result)
           |> List.sort_uniq compare
         in
         (* The paper: "returns two unique solutions: {A=11, B=13} and
            {A=13, B=11}". *)
         Alcotest.(check (list (pair int int))) "both factorizations"
           [ (11, 13); (13, 11) ] factors);
    Alcotest.test_case "map coloring backward finds a valid coloring (SA)" `Slow (fun () ->
        let t = P.compile australia_src in
        let solver = P.Sa (sa_params ~reads:200 ~sweeps:500 ~seed:3) in
        let result = P.run t ~pins:[ ("valid", 1) ] ~solver ~target:P.Logical in
        let valid = P.valid_solutions result in
        Alcotest.(check bool) "found colorings" true (valid <> []);
        (* Cross-check one against the adjacency requirements. *)
        let s = List.hd valid in
        let color r = List.assoc r s.P.ports in
        List.iter
          (fun (x, y) ->
             Alcotest.(check bool) (x ^ "!=" ^ y) true (color x <> color y))
          [ ("WA", "NT"); ("WA", "SA"); ("NT", "SA"); ("NT", "QLD"); ("SA", "QLD");
            ("SA", "NSW"); ("SA", "VIC"); ("QLD", "NSW"); ("NSW", "VIC"); ("NSW", "ACT") ]);
    Alcotest.test_case "counter unrolled 3 steps counts (exact)" `Quick (fun () ->
        let t = P.compile counter_src ~steps:3 in
        let pins =
          [ ("var[0]@init", 0); ("var[1]@init", 0);
            ("inc@0", 1); ("reset@0", 0); ("clk@0", 0);
            ("inc@1", 1); ("reset@1", 0); ("clk@1", 0);
            ("inc@2", 1); ("reset@2", 0); ("clk@2", 0) ]
        in
        let solver = P.Qbsolv Qac_anneal.Qbsolv.default_params in
        let result = P.run t ~pins ~solver ~target:P.Logical in
        match P.valid_solutions result with
        | [ s ] ->
          Alcotest.(check int) "out@0" 0 (List.assoc "out@0" s.P.ports);
          Alcotest.(check int) "out@1" 1 (List.assoc "out@1" s.P.ports);
          Alcotest.(check int) "out@2" 2 (List.assoc "out@2" s.P.ports);
          Alcotest.(check int) "final" 3
            ((2 * List.assoc "var[1]@final" s.P.ports) + List.assoc "var[0]@final" s.P.ports)
        | other -> Alcotest.failf "expected one solution, got %d" (List.length other));
    Alcotest.test_case "counter run backward: what input reaches 2 in 2 steps?" `Quick
      (fun () ->
         let t = P.compile counter_src ~steps:2 in
         let pins =
           [ ("var[0]@init", 0); ("var[1]@init", 0);
             ("reset@0", 0); ("reset@1", 0); ("clk@0", 0); ("clk@1", 0);
             ("var[0]@final", 0); ("var[1]@final", 1) ]
         in
         let result = P.run t ~pins ~solver:P.Exact_solver ~target:P.Logical in
         match P.valid_solutions result with
         | [ s ] ->
           (* Reaching 2 from 0 in two steps requires inc on both. *)
           Alcotest.(check int) "inc@0" 1 (List.assoc "inc@0" s.P.ports);
           Alcotest.(check int) "inc@1" 1 (List.assoc "inc@1" s.P.ports)
         | other -> Alcotest.failf "expected unique solution, got %d" (List.length other));
  ]

let physical_tests =
  [ Alcotest.test_case "fig2 on a C16 Chimera via SA" `Slow (fun () ->
        let t = P.compile fig2_src in
        let solver = P.Sa (sa_params ~reads:60 ~sweeps:400 ~seed:1) in
        let result =
          P.run t ~pins:[ ("s", 1); ("a", 1); ("b", 1) ] ~solver ~target:P.dwave_target
        in
        (match result.P.num_physical_qubits with
         | Some q ->
           Alcotest.(check bool) "physical qubits >= logical vars" true
             (q >= result.P.num_logical_vars)
         | None -> Alcotest.fail "expected physical qubit count");
        let valid = P.valid_solutions result in
        Alcotest.(check bool) "found valid" true (valid <> []);
        Alcotest.(check int) "c = 2" 2 (List.assoc "c" (List.hd valid).P.ports));
    Alcotest.test_case "roof duality fixes strongly pinned variables" `Quick (fun () ->
        let t = P.compile fig2_src in
        (* Pins are biases; with a strong pin weight, roof duality provably
           fixes at least the pinned variables themselves. *)
        let statements =
          t.P.statements
          @ [ Qac_qmasm.Ast.Pin [ ("s", true) ];
              Qac_qmasm.Ast.Pin [ ("a", true) ];
              Qac_qmasm.Ast.Pin [ ("b", true) ] ]
        in
        let options =
          { P.default_options with Qac_qmasm.Assemble.pin_strength = Some 16.0 }
        in
        let program = Qac_qmasm.Assemble.assemble ~options statements in
        let s = Qac_roofdual.Qpbo.simplify program.Qac_qmasm.Assemble.problem in
        Alcotest.(check bool) "fixes at least the pinned variables" true
          (List.length s.Qac_roofdual.Qpbo.fixed >= 3);
        (* And the reduced problem still has the same optimum. *)
        let exact_full = Qac_ising.Exact.solve program.Qac_qmasm.Assemble.problem in
        let exact_reduced = Qac_ising.Exact.solve s.Qac_roofdual.Qpbo.reduced in
        Alcotest.(check (float 1e-6)) "optimum preserved"
          exact_full.Qac_ising.Exact.ground_energy
          exact_reduced.Qac_ising.Exact.ground_energy);
    Alcotest.test_case "physical run with roof duality enabled" `Slow (fun () ->
        let t = P.compile fig2_src in
        let solver = P.Sa (sa_params ~reads:40 ~sweeps:300 ~seed:2) in
        let target =
          P.Physical
            { graph = Qac_chimera.Chimera.create 8;
              embed_params = None;
              chain_strength = None;
              roof_duality = true }
        in
        let result = P.run t ~pins:[ ("s", 0); ("a", 1); ("b", 1) ] ~solver ~target in
        let valid = P.valid_solutions result in
        Alcotest.(check bool) "found valid" true (valid <> []);
        Alcotest.(check int) "c = 0" 0 (List.assoc "c" (List.hd valid).P.ports));
  ]

let suite = compile_tests @ forward_backward_tests @ physical_tests
