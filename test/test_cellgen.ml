open Qac_ising
open Qac_cellgen

(* Gate logic functions over input rows (output appended by of_function). *)
let and_fn v = v.(0) && v.(1)
let or_fn v = v.(0) || v.(1)
let xor_fn v = v.(0) <> v.(1)
let not_fn v = not v.(0)

let lp_tests =
  [ Alcotest.test_case "maximize on a box" `Quick (fun () ->
        (* max x + y st x + y <= 3, x,y in [0,2] *)
        let c = { Lp.coeffs = [| 1.0; 1.0 |]; relation = Lp.Le; rhs = 3.0 } in
        match
          Lp.solve Lp.Maximize [| 1.0; 1.0 |] [ c ] ~bounds:[| (0.0, 2.0); (0.0, 2.0) |]
        with
        | Lp.Optimal { value; _ } -> Alcotest.(check (float 1e-6)) "value" 3.0 value
        | _ -> Alcotest.fail "expected optimum");
    Alcotest.test_case "minimize with equality" `Quick (fun () ->
        (* min x - y st x + y = 1, x,y >= 0 -> x=0, y=1, value -1 *)
        let c = { Lp.coeffs = [| 1.0; 1.0 |]; relation = Lp.Eq; rhs = 1.0 } in
        match
          Lp.solve Lp.Minimize [| 1.0; -1.0 |] [ c ]
            ~bounds:[| (0.0, infinity); (0.0, infinity) |]
        with
        | Lp.Optimal { value; solution } ->
          Alcotest.(check (float 1e-6)) "value" (-1.0) value;
          Alcotest.(check (float 1e-6)) "x" 0.0 solution.(0);
          Alcotest.(check (float 1e-6)) "y" 1.0 solution.(1)
        | _ -> Alcotest.fail "expected optimum");
    Alcotest.test_case "infeasible detected" `Quick (fun () ->
        let cs =
          [ { Lp.coeffs = [| 1.0 |]; relation = Lp.Ge; rhs = 2.0 };
            { Lp.coeffs = [| 1.0 |]; relation = Lp.Le; rhs = 1.0 } ]
        in
        match Lp.solve Lp.Maximize [| 1.0 |] cs ~bounds:[| (neg_infinity, infinity) |] with
        | Lp.Infeasible -> ()
        | _ -> Alcotest.fail "expected infeasible");
    Alcotest.test_case "unbounded detected" `Quick (fun () ->
        match Lp.solve Lp.Maximize [| 1.0 |] [] ~bounds:[| (neg_infinity, infinity) |] with
        | Lp.Unbounded -> ()
        | _ -> Alcotest.fail "expected unbounded");
    Alcotest.test_case "free variables can go negative" `Quick (fun () ->
        let c = { Lp.coeffs = [| 1.0 |]; relation = Lp.Ge; rhs = -5.0 } in
        match Lp.solve Lp.Minimize [| 1.0 |] [ c ] ~bounds:[| (neg_infinity, infinity) |] with
        | Lp.Optimal { value; _ } -> Alcotest.(check (float 1e-6)) "value" (-5.0) value
        | _ -> Alcotest.fail "expected optimum");
    Alcotest.test_case "degenerate system terminates (Bland)" `Quick (fun () ->
        (* A classic cycling-prone instance; Bland's rule must terminate. *)
        let cs =
          [ { Lp.coeffs = [| 0.5; -5.5; -2.5; 9.0 |]; relation = Lp.Le; rhs = 0.0 };
            { Lp.coeffs = [| 0.5; -1.5; -0.5; 1.0 |]; relation = Lp.Le; rhs = 0.0 };
            { Lp.coeffs = [| 1.0; 0.0; 0.0; 0.0 |]; relation = Lp.Le; rhs = 1.0 } ]
        in
        let bounds = Array.make 4 (0.0, infinity) in
        match Lp.solve Lp.Maximize [| 10.0; -57.0; -9.0; -24.0 |] cs ~bounds with
        | Lp.Optimal { value; _ } -> Alcotest.(check (float 1e-6)) "value" 1.0 value
        | _ -> Alcotest.fail "expected optimum");
  ]

let truthtab_tests =
  [ Alcotest.test_case "of_function AND" `Quick (fun () ->
        let t = Truthtab.of_function ~num_inputs:2 and_fn in
        Alcotest.(check int) "vars" 3 t.Truthtab.num_vars;
        Alcotest.(check int) "rows" 4 (List.length t.Truthtab.valid);
        Alcotest.(check bool) "TTT valid" true (Truthtab.is_valid t [| true; true; true |]);
        Alcotest.(check bool) "TTF invalid" false
          (Truthtab.is_valid t [| true; true; false |]));
    Alcotest.test_case "augment appends columns" `Quick (fun () ->
        let t = Truthtab.of_function ~num_inputs:1 not_fn in
        let t2 = Truthtab.augment t ~ancillas:[ [| true |]; [| false |] ] in
        Alcotest.(check int) "vars" 3 t2.Truthtab.num_vars;
        Alcotest.(check bool) "first row" true
          (Truthtab.is_valid t2 [| false; true; true |]));
    Alcotest.test_case "all_rows order matches Table 2" `Quick (fun () ->
        match Truthtab.all_rows ~num_vars:2 with
        | [ [| false; false |]; [| false; true |]; [| true; false |]; [| true; true |] ] ->
          ()
        | _ -> Alcotest.fail "row order");
    Alcotest.test_case "duplicate rows rejected" `Quick (fun () ->
        match Truthtab.create ~num_vars:1 [ [| true |]; [| true |] ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected rejection");
  ]

let check_derives name fn ~num_inputs ~expect_ancillas =
  Alcotest.test_case name `Quick (fun () ->
      let t = Truthtab.of_function ~num_inputs fn in
      match Gen.derive ~seed:42 t with
      | None -> Alcotest.fail "no derivation found"
      | Some d ->
        Alcotest.(check int) "ancillas" expect_ancillas d.Gen.num_ancillas;
        Alcotest.(check bool) "verifies" true (Gen.verify d);
        Alcotest.(check bool) "fits hardware range" true
          (Scale.fits Scale.dwave_2000q d.Gen.problem))

let derive_tests =
  [ check_derives "derive NOT (no ancilla)" not_fn ~num_inputs:1 ~expect_ancillas:0;
    check_derives "derive AND (no ancilla)" and_fn ~num_inputs:2 ~expect_ancillas:0;
    check_derives "derive OR (no ancilla)" or_fn ~num_inputs:2 ~expect_ancillas:0;
    check_derives "derive NAND" (fun v -> not (and_fn v)) ~num_inputs:2 ~expect_ancillas:0;
    check_derives "derive NOR" (fun v -> not (or_fn v)) ~num_inputs:2 ~expect_ancillas:0;
    check_derives "derive XOR needs exactly one ancilla" xor_fn ~num_inputs:2
      ~expect_ancillas:1;
    check_derives "derive XNOR needs exactly one ancilla" (fun v -> not (xor_fn v))
      ~num_inputs:2 ~expect_ancillas:1;
    check_derives "derive 2:1 MUX" (fun v -> if v.(2) then v.(1) else v.(0)) ~num_inputs:3
      ~expect_ancillas:1;
    (* A 3-input AND has no direct quadratic realization (the LP's maximum
       gap is 0); the paper likewise builds AND3 from two AND2 cells plus an
       intermediate variable (Listing 4), i.e. one extra qubit. *)
    check_derives "derive AND3 needs one ancilla"
      (fun v -> v.(0) && v.(1) && v.(2))
      ~num_inputs:3 ~expect_ancillas:1;
    Alcotest.test_case "derive_exact refuses XOR without ancilla" `Quick (fun () ->
        let t = Truthtab.of_function ~num_inputs:2 xor_fn in
        match Gen.derive_exact t with
        | None -> ()
        | Some _ -> Alcotest.fail "XOR should be underivable without ancillas");
    Alcotest.test_case "AND gap is maximal-ish (>= 1 on hardware range)" `Quick (fun () ->
        let t = Truthtab.of_function ~num_inputs:2 and_fn in
        match Gen.derive_exact t with
        | None -> Alcotest.fail "no AND derivation"
        | Some d -> Alcotest.(check bool) "gap >= 1" true (d.Gen.gap >= 1.0));
    Alcotest.test_case "row_energy_coeffs layout" `Quick (fun () ->
        let coeffs = Gen.row_energy_coeffs ~num_vars:3 [| 1; -1; 1 |] in
        (* h_0 h_1 h_2 J01 J02 J12 *)
        Alcotest.(check (array (float 1e-12))) "layout"
          [| 1.0; -1.0; 1.0; -1.0; 1.0; -1.0 |] coeffs);
    Alcotest.test_case "coeff_names layout" `Quick (fun () ->
        Alcotest.(check (array string)) "names"
          [| "h_0"; "h_1"; "J_0,1" |] (Gen.coeff_names ~num_vars:2));
    Alcotest.test_case "paper Table 3 ancilla column solves XOR" `Quick (fun () ->
        (* Table 3: (Y,A,B,a) valid rows FFFF, TFTT, TTFF, FTTF;
           our column order is A,B,Y,a. *)
        let rows =
          [ [| false; false; false; false |];
            [| false; true; true; true |];
            [| true; false; true; false |];
            [| true; true; false; false |] ]
        in
        let t = Truthtab.create ~num_vars:4 rows in
        match Gen.derive_exact t with
        | None -> Alcotest.fail "Table 3 augmentation should be solvable"
        | Some d -> Alcotest.(check bool) "verifies" true (Gen.verify d));
  ]

let qcheck_tests =
  let random_function_derives =
    QCheck.Test.make ~name:"random 2-input functions derive with <= 1 ancilla" ~count:16
      QCheck.(int_bound 15)
      (fun code ->
         let f v =
           let idx = ((if v.(0) then 2 else 0) lor if v.(1) then 1 else 0) in
           (code lsr idx) land 1 = 1
         in
         let t = Truthtab.of_function ~num_inputs:2 f in
         match Gen.derive ~seed:7 t with
         | None -> false
         | Some d -> d.Gen.num_ancillas <= 1 && Gen.verify d)
  in
  [ QCheck_alcotest.to_alcotest random_function_derives ]

let adjacency_range_tests =
  [ Alcotest.test_case "cells rederive inside the Advantage box" `Quick (fun () ->
        List.iter
          (fun (name, fn, num_inputs) ->
             let t = Truthtab.of_function ~num_inputs fn in
             match Gen.derive ~range:Scale.advantage ~seed:42 t with
             | None -> Alcotest.fail (name ^ ": no derivation in Advantage range")
             | Some d ->
               Alcotest.(check bool) (name ^ " verifies") true (Gen.verify d);
               Alcotest.(check bool) (name ^ " fits the box") true
                 (Scale.fits Scale.advantage d.Gen.problem);
               Alcotest.(check bool) (name ^ " gap positive") true
                 (d.Gen.gap >= 1.0))
          [ ("AND", and_fn, 2); ("OR", or_fn, 2); ("XOR", xor_fn, 2);
            ("MUX", (fun v -> if v.(2) then v.(1) else v.(0)), 3) ]);
    Alcotest.test_case "adjacency: NOT without its coupler is underivable" `Quick
      (fun () ->
         (* With J pinned to zero the rows FT/TF can never sit strictly below
            FF/TT — the fields alone cannot separate them. *)
         let t = Truthtab.of_function ~num_inputs:1 not_fn in
         match Gen.derive_exact ~adjacency:(fun _ _ -> false) t with
         | None -> ()
         | Some _ -> Alcotest.fail "h-only NOT cell cannot separate its rows");
    Alcotest.test_case "adjacency: forbidden pairs carry zero coupling" `Quick
      (fun () ->
         (* Forbid the input-input coupler on OR; the LP must route around it
            (possibly via an ancilla) or give up — never emit it. *)
         let t = Truthtab.of_function ~num_inputs:2 or_fn in
         let adjacency i j = not ((i, j) = (0, 1) || (i, j) = (1, 0)) in
         match Gen.derive ~seed:42 ~adjacency t with
         | None -> ()
         | Some d ->
           Alcotest.(check bool) "verifies" true (Gen.verify d);
           Alcotest.(check (float 1e-9)) "J01 pinned to zero" 0.0
             (Problem.get_j d.Gen.problem 0 1));
  ]

let suite = lp_tests @ truthtab_tests @ derive_tests @ qcheck_tests @ adjacency_range_tests
