open Qac_ising
module Chimera = Qac_chimera.Chimera
module Embedding = Qac_embed.Embedding
module Cmr = Qac_embed.Cmr

let triangle =
  (* The section 4.4 example: H_log over a 3-cycle, which no bipartite
     Chimera subgraph can host directly. *)
  Problem.create ~num_vars:3 ~h:[| 0.5; 0.5; 0.5 |]
    ~j:[ ((0, 1), 1.0); ((1, 2), 1.0); ((0, 2), 1.0) ]
    ()

let find_exn ?params graph p =
  match Cmr.find ?params graph p with
  | Some e -> e
  | None -> Alcotest.fail "no embedding found"

let check_verified graph p e =
  match Embedding.verify graph p e with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

(* Ground-state preservation: unembedding each physical ground state gives a
   logical ground state, and every logical ground state is represented. *)
let check_ground_preservation graph p e =
  let physical = Embedding.apply graph p e in
  let compacted, old_of_new = Embedding.compact physical in
  Alcotest.(check bool) "compact small enough" true
    (compacted.Problem.num_vars <= Exact.max_vars);
  let logical_result = Exact.solve p in
  let physical_result = Exact.solve compacted in
  let to_full spins =
    let full = Array.make physical.Problem.num_vars 1 in
    Array.iteri (fun k old -> full.(old) <- spins.(k)) old_of_new;
    full
  in
  let unembedded =
    List.map
      (fun s ->
         let u = Embedding.unembed e (to_full s) in
         Alcotest.(check int) "no broken chains in ground state" 0 u.Embedding.broken_chains;
         Array.to_list u.Embedding.logical)
      physical_result.Exact.ground_states
    |> List.sort_uniq compare
  in
  let logical_grounds =
    List.map Array.to_list logical_result.Exact.ground_states |> List.sort compare
  in
  Alcotest.(check bool) "ground sets equal" true (unembedded = logical_grounds)

let embedding_tests =
  [ Alcotest.test_case "triangle embeds into C2 (needs a chain)" `Quick (fun () ->
        let graph = Chimera.create 2 in
        let e = find_exn graph triangle in
        check_verified graph triangle e;
        Alcotest.(check bool) "at least 4 qubits (3-cycle needs a chain)" true
          (Embedding.num_physical_qubits e >= 4);
        check_ground_preservation graph triangle e);
    Alcotest.test_case "section 4.4 hand example is a valid embedding" `Quick (fun () ->
        (* sigma_A -> qubit 0, sigma_C -> qubit 5, sigma_B -> qubits {2, 4}:
           wait, 2 and 4 must be adjacent (they are: K4,4 cell), and the
           couplers (0,4), (0,5), (2,5) must exist. *)
        let graph = Chimera.create 2 in
        let e = { Embedding.chains = [| [| 0 |]; [| 2; 4 |]; [| 5 |] |] } in
        check_verified graph triangle e;
        check_ground_preservation graph triangle e);
    Alcotest.test_case "apply splits coefficients like section 4.4" `Quick (fun () ->
        let graph = Chimera.create 2 in
        let e = { Embedding.chains = [| [| 0 |]; [| 2; 4 |]; [| 5 |] |] } in
        let phys = Embedding.apply graph triangle e ~chain_strength:1.0 in
        (* h_B = 1/2 split over qubits 2 and 4. *)
        Alcotest.(check (float 1e-9)) "h2" 0.25 phys.Problem.h.(2);
        Alcotest.(check (float 1e-9)) "h4" 0.25 phys.Problem.h.(4);
        Alcotest.(check (float 1e-9)) "h0" 0.5 phys.Problem.h.(0);
        (* Chain coupler. *)
        Alcotest.(check (float 1e-9)) "chain J24" (-1.0) (Problem.get_j phys 2 4);
        (* Logical coupler (A,B): edges (0,4) only (0-2 not adjacent? 0 and 2
           are both horizontal partition - not adjacent). *)
        Alcotest.(check (float 1e-9)) "J04" 1.0 (Problem.get_j phys 0 4));
    Alcotest.test_case "K4 embeds into C2" `Quick (fun () ->
        let k4 =
          Problem.create ~num_vars:4 ~h:(Array.make 4 0.1)
            ~j:[ ((0, 1), 1.0); ((0, 2), 1.0); ((0, 3), 1.0);
                 ((1, 2), 1.0); ((1, 3), 1.0); ((2, 3), 1.0) ]
            ()
        in
        let graph = Chimera.create 2 in
        let e = find_exn graph k4 in
        check_verified graph k4 e;
        check_ground_preservation graph k4 e);
    Alcotest.test_case "K6 embeds into C3" `Quick (fun () ->
        let j = ref [] in
        for i = 0 to 5 do
          for k = i + 1 to 5 do
            j := ((i, k), if (i + k) mod 2 = 0 then 1.0 else -1.0) :: !j
          done
        done;
        let k6 = Problem.create ~num_vars:6 ~h:(Array.make 6 0.0) ~j:!j () in
        let graph = Chimera.create 3 in
        let e = find_exn graph k6 in
        check_verified graph k6 e);
    Alcotest.test_case "embedding avoids broken qubits" `Quick (fun () ->
        let graph = Chimera.create 2 ~broken:[ 0; 1; 8 ] in
        let e = find_exn graph triangle in
        check_verified graph triangle e;
        Array.iter
          (fun chain ->
             Array.iter
               (fun q -> Alcotest.(check bool) "working" true (Chimera.is_working graph q))
               chain)
          e.Embedding.chains);
    Alcotest.test_case "verify rejects bad embeddings" `Quick (fun () ->
        let graph = Chimera.create 2 in
        let disconnected = { Embedding.chains = [| [| 0 |]; [| 1 |]; [| 2; 3 |] |] } in
        (match Embedding.verify graph triangle disconnected with
         | Error _ -> ()
         | Ok () -> Alcotest.fail "chain {2,3} is disconnected and 0-1 not adjacent");
        let overlapping = { Embedding.chains = [| [| 0 |]; [| 0 |]; [| 4 |] |] } in
        match Embedding.verify graph triangle overlapping with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "overlap must be rejected");
    Alcotest.test_case "unembed majority vote and broken chains" `Quick (fun () ->
        let e = { Embedding.chains = [| [| 0; 1; 2 |]; [| 3 |] |] } in
        let u = Embedding.unembed e [| 1; 1; -1; -1 |] in
        Alcotest.(check int) "majority" 1 u.Embedding.logical.(0);
        Alcotest.(check int) "one broken" 1 u.Embedding.broken_chains;
        let u2 = Embedding.unembed e [| 1; 1; 1; -1 |] in
        Alcotest.(check int) "intact" 0 u2.Embedding.broken_chains);
    Alcotest.test_case "chain-break polish repairs before voting" `Quick (fun () ->
        let e = { Embedding.chains = [| [| 0; 1; 2 |]; [| 3 |] |] } in
        (* Strong ferromagnetic chain couplers: the greedy repair pulls the
           lone dissenting qubit 2 back to +1 before the vote. *)
        let physical =
          Problem.create ~num_vars:4
            ~h:[| 0.0; 0.0; 0.0; 0.5 |]
            ~j:[ ((0, 1), -2.0); ((1, 2), -2.0); ((2, 3), 0.1) ]
            ()
        in
        let broken_read = [| 1; 1; -1; -1 |] in
        let u =
          Embedding.unembed ~policy:Embedding.Polish ~problem:physical e broken_read
        in
        Alcotest.(check int) "repaired majority" 1 u.Embedding.logical.(0);
        (* The diagnostic still reports the raw read's break. *)
        Alcotest.(check int) "raw break reported" 1 u.Embedding.broken_chains;
        (* Without the physical problem the policy degrades to plain voting. *)
        let v = Embedding.unembed ~policy:Embedding.Polish e broken_read in
        Alcotest.(check bool) "no problem -> vote" true
          (v = Embedding.unembed e broken_read));
    Alcotest.test_case "chain-break discard resolves like vote at unembed level"
      `Quick (fun () ->
        let e = { Embedding.chains = [| [| 0; 1; 2 |]; [| 3 |] |] } in
        let read = [| 1; -1; 1; -1 |] in
        Alcotest.(check bool) "same resolution" true
          (Embedding.unembed ~policy:Embedding.Discard e read
           = Embedding.unembed e read));
    Alcotest.test_case "chain-break strings round-trip" `Quick (fun () ->
        List.iter
          (fun p ->
             Alcotest.(check bool) "round trip" true
               (Embedding.chain_break_of_string (Embedding.string_of_chain_break p)
                = Some p))
          [ Embedding.Vote; Embedding.Discard; Embedding.Polish ];
        Alcotest.(check bool) "unknown rejected" true
          (Embedding.chain_break_of_string "majority" = None));
    Alcotest.test_case "embedder is randomized but deterministic per seed" `Quick
      (fun () ->
         let graph = Chimera.create 3 in
         let e1 = find_exn ~params:{ Cmr.default_params with Cmr.seed = 5 } graph triangle in
         let e2 = find_exn ~params:{ Cmr.default_params with Cmr.seed = 5 } graph triangle in
         Alcotest.(check bool) "same result" true (e1 = e2));
    Alcotest.test_case "compact drops untouched variables" `Quick (fun () ->
        let p =
          Problem.create ~num_vars:10 ~h:(Array.init 10 (fun i -> if i = 3 then 1.0 else 0.0))
            ~j:[ ((3, 7), -1.0) ] ()
        in
        let compacted, old_of_new = Embedding.compact p in
        Alcotest.(check int) "two vars" 2 compacted.Problem.num_vars;
        Alcotest.(check (array int)) "map" [| 3; 7 |] old_of_new);
  ]

let random_problem st =
  let n = 4 + Random.State.int st 5 in
  let j = ref [] in
  for i = 0 to n - 1 do
    for k = i + 1 to n - 1 do
      if Random.State.int st 3 = 0 then
        j := ((i, k), float_of_int (1 + Random.State.int st 3) /. 2.0) :: !j
    done
  done;
  (* Ensure connectivity-ish: chain all consecutive. *)
  for i = 0 to n - 2 do
    j := ((i, i + 1), -1.0) :: !j
  done;
  Problem.create ~num_vars:n ~h:(Array.make n 0.25) ~j:!j ()

let property_tests =
  let random_embeds =
    QCheck.Test.make ~name:"random sparse graphs embed into C4 and verify" ~count:10
      QCheck.(int_bound 10000)
      (fun seed ->
         let st = Random.State.make [| seed |] in
         let p = random_problem st in
         let graph = Chimera.create 4 in
         match Cmr.find ~params:{ Cmr.default_params with Cmr.seed = seed } graph p with
         | None -> false
         | Some e ->
           (match Embedding.verify graph p e with
            | Ok () -> true
            | Error _ -> false))
  in
  let random_embeds_broken =
    (* Same property on a degraded chip: chains must verify AND avoid every
       broken qubit (verify checks this, but assert it independently too). *)
    QCheck.Test.make
      ~name:"random graphs embed into C4 with broken qubits and verify" ~count:10
      QCheck.(int_bound 10000)
      (fun seed ->
         let st = Random.State.make [| seed + 7919 |] in
         let p = random_problem st in
         let broken =
           List.init (1 + Random.State.int st 6) (fun _ -> Random.State.int st 128)
           |> List.sort_uniq compare
         in
         let graph = Chimera.create 4 ~broken in
         match Cmr.find ~params:{ Cmr.default_params with Cmr.seed = seed } graph p with
         | None -> true (* a degraded chip may genuinely lack room *)
         | Some e ->
           let ok = Embedding.verify graph p e = Ok () in
           let avoids =
             Array.for_all
               (fun chain -> Array.for_all (fun q -> not (List.mem q broken)) chain)
               e.Embedding.chains
           in
           ok && avoids)
  in
  [ QCheck_alcotest.to_alcotest random_embeds;
    QCheck_alcotest.to_alcotest random_embeds_broken ]

let parallel_tests =
  [ Alcotest.test_case "tries are thread-count invariant" `Quick (fun () ->
        (* The contract behind [Cache.key] ignoring [num_threads]: any domain
           count must return the identical embedding. *)
        let st = Random.State.make [| 42 |] in
        let graph = Chimera.create 4 ~broken:[ 3; 77 ] in
        for _ = 1 to 3 do
          let p = random_problem st in
          let find threads =
            Cmr.find
              ~params:{ Cmr.default_params with Cmr.tries = 4; seed = 9; num_threads = threads }
              graph p
          in
          Alcotest.(check bool) "1 thread = 4 threads" true (find 1 = find 4)
        done);
  ]

module Cache = Qac_embed.Cache

let cache_tests =
  let graph = Chimera.create 4 in
  let params = { Cmr.default_params with Cmr.seed = 3 } in
  [ Alcotest.test_case "hit returns the identical embedding" `Quick (fun () ->
        let cache = Cache.create () in
        let p = random_problem (Random.State.make [| 1 |]) in
        let key = Cache.key graph p ~params in
        Alcotest.(check bool) "cold miss" true (Cache.find cache key = None);
        let e = find_exn ~params graph p in
        Cache.add cache key e;
        (match Cache.find cache key with
         | Some e' -> Alcotest.(check bool) "same embedding" true (e = e')
         | None -> Alcotest.fail "expected a hit");
        let st = Cache.stats cache in
        Alcotest.(check int) "one hit" 1 st.Cache.hits;
        Alcotest.(check int) "one miss" 1 st.Cache.misses;
        Alcotest.(check int) "one entry" 1 st.Cache.entries);
    Alcotest.test_case "key reads structure, not coefficients" `Quick (fun () ->
        let p1 =
          Problem.create ~num_vars:3 ~h:[| 0.5; 0.0; -0.5 |]
            ~j:[ ((0, 1), 1.0); ((1, 2), -1.0) ] ()
        in
        let p2 =
          Problem.create ~num_vars:3 ~h:[| 0.0; 0.0; 0.0 |]
            ~j:[ ((0, 1), 0.25); ((1, 2), 0.75) ] ()
        in
        let p3 =
          Problem.create ~num_vars:3 ~h:[| 0.0; 0.0; 0.0 |]
            ~j:[ ((0, 1), 0.25); ((0, 2), 0.75) ] ()
        in
        Alcotest.(check bool) "values ignored" true
          (Cache.key graph p1 ~params = Cache.key graph p2 ~params);
        Alcotest.(check bool) "couplers matter" false
          (Cache.key graph p1 ~params = Cache.key graph p3 ~params));
    Alcotest.test_case "key separates topology, params, and broken sets" `Quick
      (fun () ->
         let p = random_problem (Random.State.make [| 2 |]) in
         let k = Cache.key graph p ~params in
         Alcotest.(check bool) "other grid" false
           (k = Cache.key (Chimera.create 8) p ~params);
         Alcotest.(check bool) "broken qubit" false
           (k = Cache.key (Chimera.create 4 ~broken:[ 0 ]) p ~params);
         Alcotest.(check bool) "other seed" false
           (k = Cache.key graph p ~params:{ params with Cmr.seed = 4 });
         Alcotest.(check bool) "num_threads cannot matter" true
           (k = Cache.key graph p ~params:{ params with Cmr.num_threads = 4 }));
    Alcotest.test_case "LRU evicts the coldest entry" `Quick (fun () ->
        let cache = Cache.create ~capacity:2 () in
        let e = { Embedding.chains = [| [| 0 |] |] } in
        let key i =
          Cache.key graph
            (Problem.create ~num_vars:(i + 1) ~h:(Array.make (i + 1) 0.0) ~j:[] ())
            ~params
        in
        Cache.add cache (key 0) e;
        Cache.add cache (key 1) e;
        ignore (Cache.find cache (key 0));  (* refresh 0: now 1 is coldest *)
        Cache.add cache (key 2) e;
        Alcotest.(check int) "capacity" 2 (Cache.length cache);
        Alcotest.(check bool) "0 kept" true (Cache.find cache (key 0) <> None);
        Alcotest.(check bool) "1 evicted" true (Cache.find cache (key 1) = None);
        Alcotest.(check bool) "2 kept" true (Cache.find cache (key 2) <> None);
        Alcotest.(check int) "eviction counted" 1 (Cache.stats cache).Cache.evictions);
    Alcotest.test_case "structure_digest tracks the key's problem part" `Quick
      (fun () ->
         let p1 =
           Problem.create ~num_vars:3 ~h:[| 0.5; 0.0; -0.5 |]
             ~j:[ ((0, 1), 1.0); ((1, 2), -1.0) ] ()
         in
         let p2 =
           Problem.create ~num_vars:3 ~h:[| 0.0; 0.0; 0.0 |]
             ~j:[ ((0, 1), 0.25); ((1, 2), 0.75) ] ()
         in
         let p3 =
           Problem.create ~num_vars:3 ~h:[| 0.0; 0.0; 0.0 |]
             ~j:[ ((0, 1), 0.25); ((0, 2), 0.75) ] ()
         in
         Alcotest.(check bool) "coefficients ignored" true
           (Cache.structure_digest p1 = Cache.structure_digest p2);
         Alcotest.(check bool) "coupler pairs matter" false
           (Cache.structure_digest p1 = Cache.structure_digest p3);
         (* Same-digest problems must share cache keys on any one graph —
            the property the shard router relies on. *)
         Alcotest.(check bool) "digest equality implies key equality" true
           (Cache.key graph p1 ~params = Cache.key graph p2 ~params));
  ]

let suite = embedding_tests @ property_tests @ parallel_tests @ cache_tests

module Clique = Qac_embed.Clique

let clique_tests =
  [ Alcotest.test_case "clique template: K8 into C4" `Quick (fun () ->
        let j = ref [] in
        for i = 0 to 7 do
          for k = i + 1 to 7 do
            j := ((i, k), 0.5) :: !j
          done
        done;
        let k8 = Problem.create ~num_vars:8 ~h:(Array.make 8 0.1) ~j:!j () in
        let graph = Chimera.create 4 in
        match Clique.find graph k8 with
        | None -> Alcotest.fail "template failed"
        | Some e ->
          check_verified graph k8 e;
          Alcotest.(check bool) "short chains" true (Embedding.max_chain_length e <= 4));
    Alcotest.test_case "clique template: K16 into C4 (full capacity)" `Quick (fun () ->
        let n = 16 in
        let j = ref [] in
        for i = 0 to n - 1 do
          for k = i + 1 to n - 1 do
            j := ((i, k), 0.5) :: !j
          done
        done;
        let kn = Problem.create ~num_vars:n ~h:(Array.make n 0.1) ~j:!j () in
        let graph = Chimera.create 4 in
        match Clique.find graph kn with
        | None -> Alcotest.fail "template failed"
        | Some e -> check_verified graph kn e);
    Alcotest.test_case "oversized clique rejected" `Quick (fun () ->
        Alcotest.(check bool) "none" true (Clique.embed (Chimera.create 2) ~n:9 = None));
    Alcotest.test_case "broken qubit on the template fails cleanly" `Quick (fun () ->
        (* Qubit 0 = row 0, col 0, partition 0, index 0: used by variable 0. *)
        let graph = Chimera.create 4 ~broken:[ 0 ] in
        Alcotest.(check bool) "none" true (Clique.embed graph ~n:4 = None));
    Alcotest.test_case "ground preservation through the template" `Quick (fun () ->
        let k5 =
          Problem.create ~num_vars:5 ~h:[| 0.2; -0.3; 0.1; 0.4; -0.1 |]
            ~j:[ ((0, 1), 1.0); ((0, 2), -0.5); ((1, 3), 0.75); ((2, 4), -1.0);
                 ((3, 4), 0.5); ((0, 4), 0.25) ]
            ()
        in
        let graph = Chimera.create 2 in
        match Clique.find graph k5 with
        | None -> Alcotest.fail "template failed"
        | Some e -> check_ground_preservation graph k5 e);
  ]

module Pegasus = Qac_chimera.Pegasus

let pegasus_clique_tests =
  let k4 =
    Problem.create ~num_vars:4 ~h:(Array.make 4 0.1)
      ~j:[ ((0, 1), 1.0); ((0, 2), 1.0); ((0, 3), 1.0);
           ((1, 2), 1.0); ((1, 3), 1.0); ((2, 3), 1.0) ]
      ()
  in
  [ Alcotest.test_case "Pegasus native K4 uses unit chains" `Quick (fun () ->
        (* The payoff of the odd couplers: K4 without any chaining, where the
           Chimera template needs length-2 chains. *)
        let graph = Pegasus.create 2 in
        match Clique.find graph k4 with
        | None -> Alcotest.fail "native K4 not found on pristine P2"
        | Some e ->
          check_verified graph k4 e;
          Alcotest.(check int) "unit chains" 1 (Embedding.max_chain_length e);
          check_ground_preservation graph k4 e);
    Alcotest.test_case "Pegasus template caps at K4" `Quick (fun () ->
        let graph = Pegasus.create 3 in
        Alcotest.(check bool) "K5 declined" true (Clique.embed graph ~n:5 = None);
        Alcotest.(check bool) "K3 found" true (Clique.embed graph ~n:3 <> None));
    Alcotest.test_case "Pegasus template is total on damaged fabrics" `Quick (fun () ->
        (* Any broken set must yield either None or a verified embedding —
           never an exception (the tiler calls this unguarded). *)
        let n = 24 * 2 * 1 in
        let st = Random.State.make [| 11 |] in
        for _ = 1 to 20 do
          let broken = List.init (Random.State.int st n) (fun _ -> Random.State.int st n) in
          let graph = Pegasus.create ~broken 2 in
          match Clique.find graph k4 with
          | None -> ()
          | Some e -> check_verified graph k4 e
        done);
  ]

let family_key_tests =
  let params = { Cmr.default_params with Cmr.seed = 3 } in
  [ Alcotest.test_case "key separates topology families and geometries" `Quick
      (fun () ->
         (* C2 with shore 6 and P2 both have 48 qubits; only the family
            identity in the key tells them apart. *)
         let p = random_problem (Random.State.make [| 4 |]) in
         let c = Chimera.create ~shore:6 2 and pg = Pegasus.create 2 in
         Alcotest.(check int) "same qubit budget"
           (Qac_chimera.Topology.num_qubits c)
           (Qac_chimera.Topology.num_qubits pg);
         Alcotest.(check bool) "families never collide" false
           (Cache.key c p ~params = Cache.key pg p ~params);
         let victim =
           let q = ref 0 in
           while not (Qac_chimera.Topology.is_working pg !q) do incr q done;
           !q
         in
         Alcotest.(check bool) "broken Pegasus qubit" false
           (Cache.key pg p ~params = Cache.key (Pegasus.create ~broken:[ victim ] 2) p ~params);
         let shifted =
           Pegasus.create
             ~vertical_shifts:Pegasus.default_horizontal_shifts
             ~horizontal_shifts:Pegasus.default_vertical_shifts 2
         in
         (* Same m, same qubit count, different crossing geometry. *)
         Alcotest.(check bool) "shift lists are part of the identity" false
           (Cache.key pg p ~params = Cache.key shifted p ~params));
  ]

let suite = suite @ clique_tests @ pegasus_clique_tests @ family_key_tests
