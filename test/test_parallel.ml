(** Domain-parallel sampling: the chunk decomposition is a deterministic
    function of the seed alone, so any thread count must return the exact
    same sample set as the sequential (num_threads:1) path. *)

module Parallel = Qac_anneal.Parallel
module Sampler = Qac_anneal.Sampler
module Rng = Qac_anneal.Rng

(* A random spin glass: ring + random chords, [n] variables. *)
let spin_glass ?(seed = 1) n =
  let rng = Rng.create seed in
  let h = Array.init n (fun _ -> (Rng.float rng *. 2.0) -. 1.0) in
  let seen = Hashtbl.create 1024 in
  let j = ref [] in
  for i = 0 to n - 1 do
    Hashtbl.replace seen (min i ((i + 1) mod n), max i ((i + 1) mod n)) ();
    j := ((i, (i + 1) mod n), (Rng.float rng *. 2.0) -. 1.0) :: !j
  done;
  let added = ref 0 in
  while !added < 2 * n do
    let a = Rng.int rng n and b = Rng.int rng n in
    let key = (min a b, max a b) in
    if a <> b && not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      j := (key, (Rng.float rng *. 2.0) -. 1.0) :: !j;
      incr added
    end
  done;
  Qac_ising.Problem.create ~num_vars:n ~h ~j:!j ()

let check_same_samples what (a : Sampler.response) (b : Sampler.response) =
  Alcotest.(check int) (what ^ ": num_reads") a.Sampler.num_reads b.Sampler.num_reads;
  Alcotest.(check int)
    (what ^ ": distinct")
    (Sampler.num_distinct a) (Sampler.num_distinct b);
  List.iter2
    (fun (x : Sampler.sample) (y : Sampler.sample) ->
       Alcotest.(check bool) (what ^ ": spins") true (x.Sampler.spins = y.Sampler.spins);
       Alcotest.(check (float 0.0)) (what ^ ": energy") x.Sampler.energy y.Sampler.energy;
       Alcotest.(check int)
         (what ^ ": occurrences")
         x.Sampler.num_occurrences y.Sampler.num_occurrences)
    a.Sampler.samples b.Sampler.samples

let suite =
  [ Alcotest.test_case "chunk decomposition is deterministic and complete" `Quick
      (fun () ->
         let cs = Parallel.chunks ~chunk_size:16 ~seed:42 ~num_reads:100 () in
         Alcotest.(check int) "chunk count" 7 (List.length cs);
         Alcotest.(check int) "reads total" 100
           (List.fold_left (fun acc c -> acc + c.Parallel.chunk_reads) 0 cs);
         let cs' = Parallel.chunks ~chunk_size:16 ~seed:42 ~num_reads:100 () in
         Alcotest.(check bool) "reproducible" true (cs = cs');
         List.iter
           (fun c -> Alcotest.(check bool) "seed non-negative" true (c.Parallel.chunk_seed >= 0))
           cs;
         let seeds = List.map (fun c -> c.Parallel.chunk_seed) cs in
         Alcotest.(check int) "distinct seeds" (List.length seeds)
           (List.length (List.sort_uniq compare seeds)));
    Alcotest.test_case "SA: 4 threads = sequential on a 200-var glass" `Slow (fun () ->
        let problem = spin_glass 200 in
        let params =
          { Qac_anneal.Sa.default_params with
            Qac_anneal.Sa.num_reads = 64;
            num_sweeps = 60;
            seed = 99 }
        in
        let sequential = Parallel.sample_sa ~num_threads:1 ~params problem in
        let parallel = Parallel.sample_sa ~num_threads:4 ~params problem in
        Alcotest.(check bool) "enough vars" true
          (problem.Qac_ising.Problem.num_vars >= 200);
        check_same_samples "sa" sequential parallel);
    Alcotest.test_case "tabu: thread count does not change the sample set" `Quick
      (fun () ->
         let problem = spin_glass ~seed:5 60 in
         let params =
           { Qac_anneal.Tabu.default_params with
             Qac_anneal.Tabu.num_restarts = 12;
             max_iterations = 80;
             seed = 3 }
         in
         check_same_samples "tabu"
           (Parallel.sample_tabu ~num_threads:1 ~params problem)
           (Parallel.sample_tabu ~num_threads:4 ~params problem));
    Alcotest.test_case
      "incremental-state kernels keep the chunked-seed determinism contract" `Quick
      (fun () ->
         (* Regression for the CSR/state rewrite: each solver's incremental
            inner loop must stay a pure function of its chunk seed, so a
            fixed base seed gives identical sample sets at any thread
            count. *)
         let problem = spin_glass ~seed:14 80 in
         let sa =
           { Qac_anneal.Sa.default_params with
             Qac_anneal.Sa.num_reads = 24; num_sweeps = 40; seed = 123 }
         in
         check_same_samples "sa/state"
           (Parallel.sample_sa ~num_threads:1 ~params:sa problem)
           (Parallel.sample_sa ~num_threads:4 ~params:sa problem);
         let sqa =
           { Qac_anneal.Sqa.default_params with
             Qac_anneal.Sqa.num_reads = 6; num_sweeps = 20; num_slices = 4; seed = 123 }
         in
         check_same_samples "sqa/state"
           (Parallel.sample_sqa ~num_threads:1 ~params:sqa problem)
           (Parallel.sample_sqa ~num_threads:4 ~params:sqa problem);
         let tabu =
           { Qac_anneal.Tabu.default_params with
             Qac_anneal.Tabu.num_restarts = 8; max_iterations = 60; seed = 123 }
         in
         check_same_samples "tabu/state"
           (Parallel.sample_tabu ~num_threads:1 ~params:tabu problem)
           (Parallel.sample_tabu ~num_threads:4 ~params:tabu problem));
    Alcotest.test_case "sqa: thread count does not change the sample set" `Quick
      (fun () ->
         let problem = spin_glass ~seed:8 40 in
         let params =
           { Qac_anneal.Sqa.default_params with
             Qac_anneal.Sqa.num_reads = 8;
             num_sweeps = 30;
             num_slices = 6;
             seed = 11 }
         in
         check_same_samples "sqa"
           (Parallel.sample_sqa ~num_threads:1 ~params problem)
           (Parallel.sample_sqa ~num_threads:4 ~params problem));
    Alcotest.test_case "generic runner respects chunk seeds" `Quick (fun () ->
        let problem = spin_glass ~seed:2 10 in
        (* A fake sampler that encodes its seed in the read count: merging
           must still count every read exactly once. *)
        let recorded = Atomic.make [] in
        let sampler ~seed ~num_reads =
          let rec add () =
            let old = Atomic.get recorded in
            if not (Atomic.compare_and_set recorded old (seed :: old)) then add ()
          in
          add ();
          let rng = Rng.create seed in
          Sampler.response_of_reads problem
            (List.init num_reads (fun _ -> Rng.spins rng 10))
        in
        let r = Parallel.sample ~num_threads:2 ~chunk_size:4 ~seed:7 ~num_reads:10 sampler problem in
        Alcotest.(check int) "all reads merged" 10 r.Sampler.num_reads;
        let expected =
          Parallel.chunks ~chunk_size:4 ~seed:7 ~num_reads:10 ()
          |> List.map (fun c -> c.Parallel.chunk_seed)
        in
        Alcotest.(check bool) "chunk seeds used" true
          (List.sort compare (Atomic.get recorded) = List.sort compare expected));
    Alcotest.test_case "zero reads" `Quick (fun () ->
        let problem = spin_glass ~seed:3 10 in
        let params = { Qac_anneal.Sa.default_params with Qac_anneal.Sa.num_reads = 0 } in
        let r = Parallel.sample_sa ~num_threads:4 ~params problem in
        Alcotest.(check int) "no reads" 0 r.Sampler.num_reads;
        Alcotest.(check int) "no samples" 0 (Sampler.num_distinct r));
    Alcotest.test_case "pipeline dispatch: threaded solve still verifies" `Quick
      (fun () ->
         let module P = Qac_core.Pipeline in
         let t =
           P.compile
             "module add (a, b, s); input [1:0] a; input [1:0] b; output [2:0] s; \
              assign s = a + b; endmodule"
         in
         let params =
           { Qac_anneal.Sa.default_params with
             Qac_anneal.Sa.num_reads = 48;
             num_sweeps = 150;
             seed = 17 }
         in
         let r =
           P.run t ~pins:[ ("a", 2); ("b", 3) ] ~num_threads:4 ~solver:(P.Sa params)
             ~target:P.Logical
         in
         match P.valid_solutions r with
         | { P.ports; _ } :: _ ->
           Alcotest.(check (option int)) "sum" (Some 5) (List.assoc_opt "s" ports)
         | [] -> Alcotest.fail "no valid solution from threaded solve");
  ]
