(** qmasm_cli — assemble and run standalone QMASM programs, in the spirit of
    the paper's qmasm tool: accepts [--pin], chooses a solver, can emit
    MiniZinc, and reports solutions by symbolic name with run statistics. *)

open Cmdliner
open Qac_ising
module Qmasm = Qac_qmasm

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let src_arg =
  let doc = "QMASM source file." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let pin_arg =
  let doc = "Pin variables, QMASM syntax: --pin 'C[7:0] := 10001111'.  Repeatable." in
  Arg.(value & opt_all string [] & info [ "pin" ] ~docv:"PIN" ~doc)

let solver_arg =
  let doc = "Solver: exact, sa, sqa, tabu or qbsolv." in
  Arg.(value & opt (enum [ ("exact", `Exact); ("sa", `Sa); ("sqa", `Sqa); ("tabu", `Tabu);
                           ("qbsolv", `Qbsolv) ]) `Sa
       & info [ "solver" ] ~docv:"SOLVER" ~doc)

let reads_arg =
  let doc = "Annealing reads." in
  Arg.(value & opt int 100 & info [ "reads" ] ~docv:"N" ~doc)

let minizinc_arg =
  let doc = "Emit the problem as MiniZinc instead of solving." in
  Arg.(value & flag & info [ "minizinc" ] ~doc)

let merge_arg =
  let doc = "Merge chained variables into one (qmasm's optimization)." in
  Arg.(value & flag & info [ "merge-chains" ] ~doc)

let threads_arg =
  let doc = "Split annealing reads across $(docv) OCaml domains (SA/SQA/tabu)." in
  Arg.(value & opt int 1 & info [ "threads" ] ~docv:"N" ~doc)

let timeout_arg =
  let doc =
    "Solve deadline in milliseconds; annealers check it between sweeps and \
     return best-so-far partial results (flagged on the output)."
  in
  Arg.(value & opt (some float) None & info [ "timeout-ms" ] ~docv:"MS" ~doc)

let main src pins solver reads minizinc merge threads timeout_ms =
  try
    let pin_lines = String.concat "\n" pins in
    let source = read_file src ^ "\n" ^ pin_lines ^ "\n" in
    let options = { Qmasm.Assemble.default_options with Qmasm.Assemble.merge_chains = merge } in
    let program =
      Qmasm.Qmasm.load ~options ~resolve:Qac_edif2qmasm.Edif2qmasm.resolve source
    in
    if minizinc then begin
      print_string (Qmasm.Qmasm.to_minizinc program);
      `Ok ()
    end
    else begin
      let problem = program.Qmasm.Assemble.problem in
      Printf.printf "# %d variables, %d couplers\n" problem.Problem.num_vars
        (Problem.num_interactions problem);
      let sa_params =
        { Qac_anneal.Sa.default_params with Qac_anneal.Sa.num_reads = reads }
      in
      let sqa_params =
        { Qac_anneal.Sqa.default_params with Qac_anneal.Sqa.num_reads = reads }
      in
      (* The deadline is absolute, fixed when solving starts; the exact
         solver ignores it (its size cap already bounds runtime). *)
      let deadline =
        Option.map (fun ms -> Unix.gettimeofday () +. (ms /. 1000.0)) timeout_ms
      in
      let response =
        match solver with
        | `Exact -> Qac_anneal.Exact_sampler.sample problem
        | `Sa ->
          Qac_anneal.Parallel.sample_sa ~num_threads:threads ?deadline ~params:sa_params
            problem
        | `Sqa ->
          Qac_anneal.Parallel.sample_sqa ~num_threads:threads ?deadline ~params:sqa_params
            problem
        | `Tabu ->
          Qac_anneal.Parallel.sample_tabu ~num_threads:threads ?deadline
            ~params:Qac_anneal.Tabu.default_params problem
        | `Qbsolv -> Qac_anneal.Qbsolv.sample ?deadline problem
      in
      Printf.printf "# %d reads in %.3fs\n" response.Qac_anneal.Sampler.num_reads
        response.Qac_anneal.Sampler.elapsed_seconds;
      if response.Qac_anneal.Sampler.timed_out then
        print_endline "# timed out: solutions are best-so-far";
      Format.printf "%a" (Qac_anneal.Sampler.pp_histogram ?buckets:None) response;
      List.iteri
        (fun i sample ->
           if i < 10 then begin
             Printf.printf "solution %d: energy %g, %d occurrence(s)\n" (i + 1)
               sample.Qac_anneal.Sampler.energy sample.Qac_anneal.Sampler.num_occurrences;
             let assignment, checks =
               Qmasm.Qmasm.report program sample.Qac_anneal.Sampler.spins
             in
             List.iter
               (fun (name, v) -> Printf.printf "  %s = %s\n" name (if v then "True" else "False"))
               assignment;
             List.iter
               (fun (expr, ok) ->
                  if not ok then
                    Format.printf "  assertion FAILED: %a@." Qmasm.Ast.pp_bexpr expr)
               checks
           end)
        response.Qac_anneal.Sampler.samples;
      `Ok ()
    end
  with
  | Qac_diag.Diag.Error d -> `Error (false, Qac_diag.Diag.to_string d)
  | Sys_error msg -> `Error (false, msg)

let () =
  let doc = "a quantum macro assembler (classical-substrate reproduction)" in
  let info = Cmd.info "qmasm_cli" ~version:"1.0.0" ~doc in
  let term =
    Term.(ret (const main $ src_arg $ pin_arg $ solver_arg $ reads_arg $ minizinc_arg $ merge_arg
               $ threads_arg $ timeout_arg))
  in
  exit (Cmd.eval (Cmd.v info term))
