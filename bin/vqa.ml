(** vqa — "Verilog to quantum annealer", the end-to-end compiler/runner CLI.

    Subcommands:
    - [compile]: Verilog -> EDIF / QMASM / MiniZinc on stdout;
    - [run]: compile and execute, forward or backward, with [--pin];
    - [cells]: print the Table 5 standard-cell library with verification;
    - [stats]: the section 6.1 static properties of a module. *)

open Cmdliner
module P = Qac_core.Pipeline
module Trace = Qac_diag.Trace

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --- Shared arguments --------------------------------------------------- *)

let src_arg =
  let doc = "Verilog source file." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let top_arg =
  let doc = "Top module name (default: the last module in the file)." in
  Arg.(value & opt (some string) None & info [ "top" ] ~docv:"MODULE" ~doc)

let steps_arg =
  let doc = "Unroll depth for sequential designs (section 4.3.3)." in
  Arg.(value & opt (some int) None & info [ "steps" ] ~docv:"N" ~doc)

let no_optimize_arg =
  let doc = "Skip netlist optimization (dead-gate elimination, tech mapping)." in
  Arg.(value & flag & info [ "no-optimize" ] ~doc)

let compile ?top ?steps ~optimize ?trace path =
  P.compile ?top ?steps ~optimize ?trace (read_file path)

(* --- Tracing -------------------------------------------------------------- *)

let trace_arg =
  let doc = "Print one timed span per pipeline stage (with size counters) to stderr." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let trace_json_arg =
  let doc = "Like --trace, but emit machine-readable JSON." in
  Arg.(value & flag & info [ "trace-json" ] ~doc)

let make_trace ~trace ~trace_json =
  if trace || trace_json then Some (Trace.create ()) else None

let emit_trace ~trace_json = function
  | None -> ()
  | Some tr ->
    if trace_json then prerr_endline (Trace.to_json tr)
    else prerr_string (Trace.to_text tr)

(* --- compile ------------------------------------------------------------- *)

let format_arg =
  let doc = "Output format: qmasm (default), edif, minizinc, or stdcell." in
  Arg.(value & opt (enum [ ("qmasm", `Qmasm); ("edif", `Edif); ("minizinc", `Minizinc);
                           ("stdcell", `Stdcell) ]) `Qmasm
       & info [ "f"; "format" ] ~docv:"FORMAT" ~doc)

let compile_cmd =
  let run src top steps no_optimize format trace trace_json =
    try
      (match format with
       | `Stdcell -> print_string (Qac_cells.Stdcell.contents ())
       | _ ->
         let tr = make_trace ~trace ~trace_json in
         let t = compile ?top ?steps ~optimize:(not no_optimize) ?trace:tr src in
         (match format with
          | `Qmasm -> print_string t.P.qmasm_src
          | `Edif -> print_string t.P.edif
          | `Minizinc -> print_string (Qac_qmasm.Qmasm.to_minizinc t.P.program)
          | `Stdcell -> assert false);
         emit_trace ~trace_json tr);
      `Ok ()
    with Qac_diag.Diag.Error d -> `Error (false, Qac_diag.Diag.to_string d)
  in
  let doc = "compile Verilog to EDIF, QMASM or MiniZinc" in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(ret (const run $ src_arg $ top_arg $ steps_arg $ no_optimize_arg $ format_arg
               $ trace_arg $ trace_json_arg))

(* --- run ------------------------------------------------------------------ *)

let pins_arg =
  let doc =
    "Pin a port to a value, e.g. --pin 'C[7:0] := 10001111' or --pin 'valid := true' \
     or the shorthand --pin C=143.  Repeatable.  Pin outputs to run backward \
     (section 4.3.6)."
  in
  Arg.(value & opt_all string [] & info [ "pin" ] ~docv:"PIN" ~doc)

let solver_arg =
  let doc = "Solver: exact, sa, sqa, tabu or qbsolv." in
  Arg.(value & opt (enum [ ("exact", `Exact); ("sa", `Sa); ("sqa", `Sqa); ("tabu", `Tabu);
                           ("qbsolv", `Qbsolv) ]) `Sa
       & info [ "solver" ] ~docv:"SOLVER" ~doc)

let reads_arg =
  let doc = "Number of annealing reads (SA)." in
  Arg.(value & opt int 200 & info [ "reads" ] ~docv:"N" ~doc)

let sweeps_arg =
  let doc = "Sweeps per read (SA)." in
  Arg.(value & opt int 1000 & info [ "sweeps" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)

let physical_arg =
  let doc =
    "Minor-embed into a Chimera C$(docv) topology before solving (0 = solve the \
     logical problem directly)."
  in
  Arg.(value & opt int 0 & info [ "physical" ] ~docv:"M" ~doc)

let pegasus_arg =
  let doc = "Use a Pegasus topology for --physical instead of Chimera." in
  Arg.(value & flag & info [ "pegasus" ] ~doc)

let roof_arg =
  let doc = "Apply roof duality to elide determined qubits before embedding." in
  Arg.(value & flag & info [ "roof-duality" ] ~doc)

let all_arg =
  let doc = "Show every distinct sample, not just valid solutions." in
  Arg.(value & flag & info [ "all" ] ~doc)

let threads_arg =
  let doc =
    "Split annealing reads (SA/SQA/tabu) and minor-embedding tries \
     (--physical) across $(docv) OCaml domains.  Results are deterministic \
     for a given seed, whatever the thread count."
  in
  Arg.(value & opt int 1 & info [ "threads" ] ~docv:"N" ~doc)

(* Pins in QMASM syntax ("C[7:0] := 10001111") go to the QMASM parser
   verbatim; the "name=value" shorthand becomes an integer port pin. *)
let split_pins specs =
  List.partition_map
    (fun spec ->
       let spec = String.trim spec in
       match Qac_qmasm.Str_split.find_substring spec ":=" with
       | Some _ -> Left spec
       | None ->
         (match String.index_opt spec '=' with
          | Some i ->
            let name = String.trim (String.sub spec 0 i) in
            let value = String.trim (String.sub spec (i + 1) (String.length spec - i - 1)) in
            (match int_of_string_opt value with
             | Some v -> Right (name, v)
             | None ->
               failwith
                 (Printf.sprintf "bad pin value %S for port %s (not an integer)"
                    value name))
          | None -> failwith ("bad pin syntax: " ^ spec)))
    specs

let run_cmd =
  let run src top steps no_optimize pins solver reads sweeps seed physical pegasus roof all
      threads trace trace_json =
    try
      let tr = make_trace ~trace ~trace_json in
      let t = compile ?top ?steps ~optimize:(not no_optimize) ?trace:tr src in
      let qmasm_pins, int_pins = split_pins pins in
      let pin_source = String.concat "\n" qmasm_pins in
      let pins = int_pins in
      let solver =
        match solver with
        | `Exact -> P.Exact_solver
        | `Sa ->
          P.Sa { Qac_anneal.Sa.default_params with
                 Qac_anneal.Sa.num_reads = reads; num_sweeps = sweeps; seed }
        | `Sqa ->
          P.Sqa { Qac_anneal.Sqa.default_params with
                  Qac_anneal.Sqa.num_reads = reads; num_sweeps = sweeps; seed }
        | `Tabu -> P.Tabu { Qac_anneal.Tabu.default_params with Qac_anneal.Tabu.seed }
        | `Qbsolv -> P.Qbsolv { Qac_anneal.Qbsolv.default_params with Qac_anneal.Qbsolv.seed }
      in
      let target =
        if physical = 0 then P.Logical
        else
          P.Physical
            { graph =
                (if pegasus then Qac_chimera.Pegasus.create physical
                 else Qac_chimera.Chimera.create physical);
              embed_params = None;
              chain_strength = None;
              roof_duality = roof }
      in
      let result = P.run t ~pins ~pin_source ?trace:tr ~num_threads:threads ~solver ~target in
      Printf.printf "# logical variables: %d\n" result.P.num_logical_vars;
      (match result.P.num_physical_qubits with
       | Some q -> Printf.printf "# physical qubits:  %d\n" q
       | None -> ());
      Printf.printf "# reads: %d  elapsed: %.3fs\n" result.P.num_reads result.P.elapsed_seconds;
      let shown = if all then result.P.solutions else P.valid_solutions result in
      if shown = [] then print_endline "no valid solutions found (try more reads/sweeps)"
      else
        List.iteri
          (fun i s ->
             Printf.printf "solution %d: energy %g, %d occurrence(s)%s%s\n" (i + 1)
               s.P.energy s.P.num_occurrences
               (if s.P.valid then "" else " [INVALID]")
               (if s.P.broken_chains > 0 then
                  Printf.sprintf " [%d broken chains]" s.P.broken_chains
                else "");
             List.iter (fun (name, v) -> Printf.printf "  %s = %d\n" name v) s.P.ports)
          shown;
      emit_trace ~trace_json tr;
      `Ok ()
    with
    | Qac_diag.Diag.Error d -> `Error (false, Qac_diag.Diag.to_string d)
    | Failure msg -> `Error (false, msg)
  in
  let doc = "compile and execute a Verilog module on the annealing substrate" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(ret
            (const run $ src_arg $ top_arg $ steps_arg $ no_optimize_arg $ pins_arg
             $ solver_arg $ reads_arg $ sweeps_arg $ seed_arg $ physical_arg $ pegasus_arg
             $ roof_arg $ all_arg $ threads_arg $ trace_arg $ trace_json_arg))

(* --- cells ----------------------------------------------------------------- *)

let cells_cmd =
  let run () =
    Printf.printf "%-6s %-28s %-9s %-5s %s\n" "cell" "logic" "ancillas" "gap" "status";
    List.iter
      (fun (c : Qac_cells.Cells.t) ->
         let logic =
           match c.Qac_cells.Cells.name with
           | "NOT" -> "Y = ~A"
           | "AND" -> "Y = A & B"
           | "OR" -> "Y = A | B"
           | "NAND" -> "Y = ~(A & B)"
           | "NOR" -> "Y = ~(A | B)"
           | "XOR" -> "Y = A ^ B"
           | "XNOR" -> "Y = ~(A ^ B)"
           | "MUX" -> "Y = S ? B : A"
           | "AOI3" -> "Y = ~((A & B) | C)"
           | "OAI3" -> "Y = ~((A | B) & C)"
           | "AOI4" -> "Y = ~((A & B) | (C & D))"
           | "OAI4" -> "Y = ~((A | B) & (C | D))"
           | _ -> "Q = D"
         in
         match Qac_cells.Cells.verify c with
         | Ok gap ->
           Printf.printf "%-6s %-28s %-9d %-5g verified\n" c.Qac_cells.Cells.name logic
             c.Qac_cells.Cells.num_ancillas gap
         | Error msg ->
           Printf.printf "%-6s %-28s %-9d %-5s FAILED: %s\n" c.Qac_cells.Cells.name logic
             c.Qac_cells.Cells.num_ancillas "-" msg)
      Qac_cells.Cells.all;
    `Ok ()
  in
  let doc = "print and verify the Table 5 standard-cell library" in
  Cmd.v (Cmd.info "cells" ~doc) Term.(ret (const run $ const ()))

(* --- stats ------------------------------------------------------------------ *)

let stats_cmd =
  let run src top steps no_optimize physical =
    try
      let t = compile ?top ?steps ~optimize:(not no_optimize) src in
      let props = P.static_properties t in
      Printf.printf "verilog lines:        %d\n" props.P.verilog_lines;
      Printf.printf "edif lines:           %d\n" props.P.edif_lines;
      Printf.printf "qmasm lines:          %d (+ %d in stdcell.qmasm)\n" props.P.qmasm_lines
        props.P.stdcell_lines;
      Printf.printf "logical variables:    %d\n" props.P.logical_vars;
      Printf.printf "logical terms:        %d\n" props.P.logical_terms;
      if physical > 0 then begin
        let graph = Qac_chimera.Chimera.create physical in
        let problem = t.P.program.Qac_qmasm.Assemble.problem in
        match Qac_embed.Cmr.find graph problem with
        | Some e ->
          let phys = Qac_embed.Embedding.apply graph problem e in
          Printf.printf "physical qubits:      %d (C%d)\n"
            (Qac_embed.Embedding.num_physical_qubits e)
            physical;
          Printf.printf "physical terms:       %d\n" (Qac_ising.Problem.num_terms phys);
          Printf.printf "max chain length:     %d\n" (Qac_embed.Embedding.max_chain_length e)
        | None -> Printf.printf "physical: no embedding found on C%d\n" physical
      end;
      `Ok ()
    with Qac_diag.Diag.Error d -> `Error (false, Qac_diag.Diag.to_string d)
  in
  let doc = "print the section 6.1 static properties of a module" in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(ret (const run $ src_arg $ top_arg $ steps_arg $ no_optimize_arg $ physical_arg))

let () =
  let doc = "compile classical Verilog code to a quantum annealer (ASPLOS'19 reproduction)" in
  let info = Cmd.info "vqa" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ compile_cmd; run_cmd; cells_cmd; stats_cmd ]))
