(** vqa — "Verilog to quantum annealer", the end-to-end compiler/runner CLI.

    Subcommands:
    - [compile]: Verilog -> EDIF / QMASM / MiniZinc on stdout;
    - [run]: compile and execute, forward or backward, with [--pin];
    - [serve]: batch-serve a job file, tiling jobs together onto one graph;
    - [cells]: print the Table 5 standard-cell library with verification;
    - [stats]: the section 6.1 static properties of a module. *)

open Cmdliner
module P = Qac_core.Pipeline
module Trace = Qac_diag.Trace

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --- Shared arguments --------------------------------------------------- *)

let src_arg =
  let doc = "Verilog source file." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let top_arg =
  let doc = "Top module name (default: the last module in the file)." in
  Arg.(value & opt (some string) None & info [ "top" ] ~docv:"MODULE" ~doc)

let steps_arg =
  let doc = "Unroll depth for sequential designs (section 4.3.3)." in
  Arg.(value & opt (some int) None & info [ "steps" ] ~docv:"N" ~doc)

let no_optimize_arg =
  let doc = "Skip netlist optimization (dead-gate elimination, tech mapping)." in
  Arg.(value & flag & info [ "no-optimize" ] ~doc)

(* Memoized: repeated compiles of one source (many jobs, one design) hit
   the process-wide compile cache. *)
let compile ?top ?steps ~optimize ?trace path =
  P.compile_cached ?top ?steps ~optimize ?trace (read_file path)

let store_arg =
  let doc =
    "Persistent artifact store: compiled problems and minor embeddings are \
     snapshotted into $(docv) as content-addressed, versioned binary \
     records and reloaded by later runs — a restarted server starts warm.  \
     Created if missing; corrupt or version-mismatched records are \
     ignored, never fatal."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

(* --- Tracing -------------------------------------------------------------- *)

let trace_arg =
  let doc = "Print one timed span per pipeline stage (with size counters) to stderr." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let trace_json_arg =
  let doc = "Like --trace, but emit machine-readable JSON." in
  Arg.(value & flag & info [ "trace-json" ] ~doc)

let make_trace ~trace ~trace_json =
  if trace || trace_json then Some (Trace.create ()) else None

let emit_trace ~trace_json = function
  | None -> ()
  | Some tr ->
    if trace_json then prerr_endline (Trace.to_json tr)
    else prerr_string (Trace.to_text tr)

(* --- compile ------------------------------------------------------------- *)

let format_arg =
  let doc = "Output format: qmasm (default), edif, minizinc, or stdcell." in
  Arg.(value & opt (enum [ ("qmasm", `Qmasm); ("edif", `Edif); ("minizinc", `Minizinc);
                           ("stdcell", `Stdcell) ]) `Qmasm
       & info [ "f"; "format" ] ~docv:"FORMAT" ~doc)

let compile_cmd =
  let run src top steps no_optimize format trace trace_json =
    try
      (match format with
       | `Stdcell -> print_string (Qac_cells.Stdcell.contents ())
       | _ ->
         let tr = make_trace ~trace ~trace_json in
         let t = compile ?top ?steps ~optimize:(not no_optimize) ?trace:tr src in
         (match format with
          | `Qmasm -> print_string t.P.qmasm_src
          | `Edif -> print_string t.P.edif
          | `Minizinc -> print_string (Qac_qmasm.Qmasm.to_minizinc t.P.program)
          | `Stdcell -> assert false);
         emit_trace ~trace_json tr);
      `Ok ()
    with Qac_diag.Diag.Error d -> `Error (false, Qac_diag.Diag.to_string d)
  in
  let doc = "compile Verilog to EDIF, QMASM or MiniZinc" in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(ret (const run $ src_arg $ top_arg $ steps_arg $ no_optimize_arg $ format_arg
               $ trace_arg $ trace_json_arg))

(* --- run ------------------------------------------------------------------ *)

let pins_arg =
  let doc =
    "Pin a port to a value, e.g. --pin 'C[7:0] := 10001111' or --pin 'valid := true' \
     or the shorthand --pin C=143.  Repeatable.  Pin outputs to run backward \
     (section 4.3.6)."
  in
  Arg.(value & opt_all string [] & info [ "pin" ] ~docv:"PIN" ~doc)

let solver_arg =
  let doc = "Solver: exact, sa, sqa, tabu or qbsolv." in
  Arg.(value & opt (enum [ ("exact", `Exact); ("sa", `Sa); ("sqa", `Sqa); ("tabu", `Tabu);
                           ("qbsolv", `Qbsolv) ]) `Sa
       & info [ "solver" ] ~docv:"SOLVER" ~doc)

let reads_arg =
  let doc = "Number of annealing reads (SA)." in
  Arg.(value & opt int 200 & info [ "reads" ] ~docv:"N" ~doc)

let sweeps_arg =
  let doc = "Sweeps per read (SA)." in
  Arg.(value & opt int 1000 & info [ "sweeps" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)

let timeout_arg =
  let doc =
    "Deadline for the solve stage, in milliseconds.  Samplers check it \
     between sweeps and return best-so-far partial results; a hit is \
     reported on the output and in the trace."
  in
  Arg.(value & opt (some float) None & info [ "timeout-ms" ] ~docv:"MS" ~doc)

let physical_arg =
  let doc =
    "Minor-embed into a size-$(docv) hardware graph before solving (0 = solve \
     the logical problem directly).  The graph family comes from --topology: \
     Chimera C$(docv) or Pegasus P$(docv)."
  in
  Arg.(value & opt int 0 & info [ "physical" ] ~docv:"M" ~doc)

let topology_arg =
  let doc = "Hardware graph family for --physical: $(b,chimera) or $(b,pegasus)." in
  Arg.(value
       & opt (enum [ ("chimera", `Chimera); ("pegasus", `Pegasus) ]) `Chimera
       & info [ "topology" ] ~docv:"FAMILY" ~doc)

let broken_arg =
  let doc =
    "Comma-separated broken qubit ids, excluded from embedding and tiling \
     (models hardware drop-out; honored by every --topology)."
  in
  Arg.(value & opt (list int) [] & info [ "broken" ] ~docv:"QUBITS" ~doc)

let make_graph ~topology ~broken m =
  match topology with
  | `Chimera -> Qac_chimera.Chimera.create ~broken m
  | `Pegasus -> Qac_chimera.Pegasus.create ~broken m

let graph_label ~topology m =
  match topology with
  | `Chimera -> Printf.sprintf "C%d" m
  | `Pegasus -> Printf.sprintf "P%d" m

let roof_arg =
  let doc = "Apply roof duality to elide determined qubits before embedding." in
  Arg.(value & flag & info [ "roof-duality" ] ~doc)

let all_arg =
  let doc = "Show every distinct sample, not just valid solutions." in
  Arg.(value & flag & info [ "all" ] ~doc)

let threads_arg =
  let doc =
    "Split annealing reads (SA/SQA/tabu) and minor-embedding tries \
     (--physical) across $(docv) OCaml domains.  Results are deterministic \
     for a given seed, whatever the thread count."
  in
  Arg.(value & opt int 1 & info [ "threads" ] ~docv:"N" ~doc)

let postprocess_arg =
  let doc =
    "Post-process samples: $(b,none), $(b,polish) (steepest-descend every \
     sample to its local minimum; the --timeout-ms deadline bounds the \
     polish loop too) or $(b,gauge) (solve under a spin-reversal transform \
     to decorrelate solver bias from the problem's sign structure)."
  in
  Arg.(value
       & opt (enum [ ("none", `None); ("polish", `Polish); ("gauge", `Gauge) ]) `None
       & info [ "postprocess" ] ~docv:"MODE" ~doc)

let chain_break_arg =
  let doc =
    "Chain-break resolution for embedded runs: $(b,vote) (majority per \
     chain), $(b,discard) (drop reads with broken chains, falling back to \
     voting when every read breaks) or $(b,polish) (greedy-repair the \
     physical sample before voting)."
  in
  Arg.(value
       & opt (enum [ ("vote", Qac_embed.Embedding.Vote);
                     ("discard", Qac_embed.Embedding.Discard);
                     ("polish", Qac_embed.Embedding.Polish) ])
           Qac_embed.Embedding.Vote
       & info [ "chain-break" ] ~docv:"POLICY" ~doc)

let make_solver solver ~reads ~sweeps ~seed =
  match solver with
  | `Exact -> P.Exact_solver
  | `Sa ->
    P.Sa { Qac_anneal.Sa.default_params with
           Qac_anneal.Sa.num_reads = reads; num_sweeps = sweeps; seed }
  | `Sqa ->
    P.Sqa { Qac_anneal.Sqa.default_params with
            Qac_anneal.Sqa.num_reads = reads; num_sweeps = sweeps; seed }
  | `Tabu -> P.Tabu { Qac_anneal.Tabu.default_params with Qac_anneal.Tabu.seed }
  | `Qbsolv -> P.Qbsolv { Qac_anneal.Qbsolv.default_params with Qac_anneal.Qbsolv.seed }

(* Pins in QMASM syntax ("C[7:0] := 10001111") go to the QMASM parser
   verbatim; the "name=value" shorthand becomes an integer port pin. *)
let split_pins specs =
  List.partition_map
    (fun spec ->
       let spec = String.trim spec in
       match Qac_qmasm.Str_split.find_substring spec ":=" with
       | Some _ -> Left spec
       | None ->
         (match String.index_opt spec '=' with
          | Some i ->
            let name = String.trim (String.sub spec 0 i) in
            let value = String.trim (String.sub spec (i + 1) (String.length spec - i - 1)) in
            (match int_of_string_opt value with
             | Some v -> Right (name, v)
             | None ->
               failwith
                 (Printf.sprintf "bad pin value %S for port %s (not an integer)"
                    value name))
          | None -> failwith ("bad pin syntax: " ^ spec)))
    specs

let run_cmd =
  let run src top steps no_optimize pins solver reads sweeps seed physical topology broken
      roof all threads timeout_ms store_dir postprocess chain_break trace trace_json =
    try
      let tr = make_trace ~trace ~trace_json in
      let store = Option.map Qac_embed.Store.open_dir store_dir in
      let t = compile ?top ?steps ~optimize:(not no_optimize) ?trace:tr src in
      let qmasm_pins, int_pins = split_pins pins in
      let pin_source = String.concat "\n" qmasm_pins in
      let pins = int_pins in
      let solver = make_solver solver ~reads ~sweeps ~seed in
      let target =
        if physical = 0 then P.Logical
        else
          P.Physical
            { graph = make_graph ~topology ~broken physical;
              embed_params = None;
              chain_strength = None;
              roof_duality = roof }
      in
      let cache =
        (* With a store, use a dedicated store-backed cache: the embedding
           persists across process restarts, not just within this one. *)
        match store with
        | Some _ -> Qac_embed.Cache.create ?store ()
        | None -> Qac_embed.Cache.shared ()
      in
      let stats0 = Qac_embed.Cache.stats cache in
      let result =
        P.run t ~pins ~pin_source ?trace:tr ~num_threads:threads ~embed_cache:cache
          ?timeout_ms ~postprocess ~chain_break ~solver ~target
      in
      (match tr with
       | None -> ()
       | Some trace ->
         let stats = Qac_embed.Cache.stats cache in
         Trace.set_summary trace "embed-cache-hits"
           (stats.Qac_embed.Cache.hits - stats0.Qac_embed.Cache.hits);
         Trace.set_summary trace "embed-cache-misses"
           (stats.Qac_embed.Cache.misses - stats0.Qac_embed.Cache.misses);
         (match target, result.P.num_physical_qubits with
          | P.Physical { graph; _ }, Some q ->
            let working = Qac_chimera.Topology.num_working_qubits graph in
            if working > 0 then
              Trace.set_summary trace "occupancy-pct" (100 * q / working)
          | _ -> ()));
      Printf.printf "# logical variables: %d\n" result.P.num_logical_vars;
      (match result.P.num_physical_qubits with
       | Some q -> Printf.printf "# physical qubits:  %d\n" q
       | None -> ());
      Printf.printf "# reads: %d  elapsed: %.3fs\n" result.P.num_reads result.P.elapsed_seconds;
      if result.P.timed_out then
        print_endline "# timed out: solutions are the sampler's best-so-far";
      let shown = if all then result.P.solutions else P.valid_solutions result in
      if shown = [] then print_endline "no valid solutions found (try more reads/sweeps)"
      else
        List.iteri
          (fun i s ->
             Printf.printf "solution %d: energy %g, %d occurrence(s)%s%s\n" (i + 1)
               s.P.energy s.P.num_occurrences
               (if s.P.valid then "" else " [INVALID]")
               (if s.P.broken_chains > 0 then
                  Printf.sprintf " [%d broken chains]" s.P.broken_chains
                else "");
             List.iter (fun (name, v) -> Printf.printf "  %s = %d\n" name v) s.P.ports)
          shown;
      emit_trace ~trace_json tr;
      `Ok ()
    with
    | Qac_diag.Diag.Error d -> `Error (false, Qac_diag.Diag.to_string d)
    | Failure msg -> `Error (false, msg)
  in
  let doc = "compile and execute a Verilog module on the annealing substrate" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(ret
            (const run $ src_arg $ top_arg $ steps_arg $ no_optimize_arg $ pins_arg
             $ solver_arg $ reads_arg $ sweeps_arg $ seed_arg $ physical_arg $ topology_arg
             $ broken_arg $ roof_arg $ all_arg $ threads_arg $ timeout_arg $ store_arg
             $ postprocess_arg $ chain_break_arg $ trace_arg $ trace_json_arg))

(* --- sat ------------------------------------------------------------------ *)

module Sat = Qac_sat.Compile
module Dimacs = Qac_sat.Dimacs

let sat_file_arg =
  let doc = "DIMACS CNF or WCNF file (the header picks the mode)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let maxsat_arg =
  let doc =
    "Treat a plain CNF as MaxSAT: report the best assignment found and its \
     violated-clause count ($(b,o) line) even when the formula was not fully \
     satisfied.  WCNF inputs always run as (weighted) MaxSAT."
  in
  Arg.(value & flag & info [ "maxsat" ] ~doc)

(* Minor-embed a compiled SAT problem, solve on the hardware graph, and
   unembed — the single-job version of the pipeline's physical target. *)
let sat_solve_physical ~graph ~chain_break ~threads ?deadline solver p =
  let eparams =
    { (Qac_embed.Cmr.params_for graph) with Qac_embed.Cmr.num_threads = threads }
  in
  let cache = Qac_embed.Cache.shared () in
  let key = Qac_embed.Cache.key graph p ~params:eparams in
  let embedding =
    match Qac_embed.Cache.find cache key with
    | Some e -> e
    | None ->
      let e =
        match Qac_embed.Cmr.find ~params:eparams graph p with
        | Some e -> e
        | None ->
          (match Qac_embed.Clique.find graph p with
           | Some e -> e
           | None ->
             Qac_diag.Diag.error ~stage:"sat"
               "no minor embedding found (formula too large for the topology?)")
      in
      Qac_embed.Cache.add cache key e;
      e
  in
  let physical = Qac_embed.Embedding.apply graph p embedding in
  let compacted, old_of_new = Qac_embed.Embedding.compact physical in
  let response = P.dispatch_solver ~num_threads:threads ?deadline solver compacted in
  let logical_samples =
    List.map
      (fun (s : Qac_anneal.Sampler.sample) ->
         let full = Array.make physical.Qac_ising.Problem.num_vars 1 in
         Array.iteri
           (fun k old -> full.(old) <- s.Qac_anneal.Sampler.spins.(k))
           old_of_new;
         let u =
           Qac_embed.Embedding.unembed ~policy:chain_break ~problem:physical
             embedding full
         in
         (u.Qac_embed.Embedding.logical, s.Qac_anneal.Sampler.num_occurrences))
      response.Qac_anneal.Sampler.samples
  in
  (logical_samples, Some (Qac_embed.Embedding.num_physical_qubits embedding), response)

let sat_cmd =
  let run file maxsat solver reads sweeps seed physical topology broken threads
      timeout_ms chain_break =
    try
      let formula = Dimacs.parse_file file in
      let compiled = Sat.compile formula in
      let p = compiled.Sat.problem in
      let exact = solver = `Exact in
      let solver = make_solver solver ~reads ~sweeps ~seed in
      let deadline =
        Option.map (fun ms -> Unix.gettimeofday () +. (ms /. 1000.0)) timeout_ms
      in
      let samples, physical_qubits, (response : Qac_anneal.Sampler.response) =
        if physical = 0 then
          let response = P.dispatch_solver ~num_threads:threads ?deadline solver p in
          ( List.map
              (fun (s : Qac_anneal.Sampler.sample) ->
                 (s.Qac_anneal.Sampler.spins, s.Qac_anneal.Sampler.num_occurrences))
              response.Qac_anneal.Sampler.samples,
            None, response )
        else
          let graph = make_graph ~topology ~broken physical in
          sat_solve_physical ~graph ~chain_break ~threads ?deadline solver p
      in
      (* Decode every read and keep the cheapest assignment; [cost] ranks by
         the same objective the Hamiltonian encodes, so a read whose
         ancillas (or chains) came back suboptimal still scores by what its
         decision bits actually violate. *)
      let best =
        List.fold_left
          (fun acc (spins, _) ->
             let a = Sat.decode compiled spins in
             let c = Sat.cost compiled a in
             match acc with
             | Some (_, best_c) when best_c <= c -> acc
             | _ -> Some (a, c))
          None samples
      in
      Printf.printf "c %d variables, %d clauses -> %d spins (%d ancillas), %d couplers\n"
        formula.Dimacs.num_vars
        (Array.length formula.Dimacs.clauses)
        p.Qac_ising.Problem.num_vars compiled.Sat.num_ancillas
        (Array.length p.Qac_ising.Problem.couplers);
      (match physical_qubits with
       | Some q -> Printf.printf "c physical qubits: %d\n" q
       | None -> ());
      Printf.printf "c reads: %d  elapsed: %.3fs\n"
        response.Qac_anneal.Sampler.num_reads
        response.Qac_anneal.Sampler.elapsed_seconds;
      if response.Qac_anneal.Sampler.timed_out then
        print_endline "c timed out: best-so-far";
      let print_v a =
        let buf = Buffer.create (4 * Array.length a) in
        Buffer.add_char buf 'v';
        Array.iteri
          (fun i v ->
             Buffer.add_char buf ' ';
             Buffer.add_string buf (string_of_int (if v then i + 1 else -(i + 1))))
          a;
        Buffer.add_string buf " 0";
        print_endline (Buffer.contents buf)
      in
      (match best with
       | None -> print_endline "s UNKNOWN"
       | Some (a, _) ->
         let hard, soft = Dimacs.violations formula a in
         let pure = Dimacs.num_soft formula = 0 in
         if pure && not maxsat then begin
           (* Decision mode.  Exact enumeration proves UNSAT: the compiled
              ground energy is the minimum violated-clause count. *)
           if hard = 0 then begin
             print_endline "s SATISFIABLE";
             print_v a
           end
           else if exact then print_endline "s UNSATISFIABLE"
           else begin
             Printf.printf "c best read violates %d clause(s)\n" hard;
             print_endline "s UNKNOWN"
           end
         end
         else if pure then begin
           (* --maxsat on a plain CNF: minimize the violated-clause count. *)
           Printf.printf "o %d\n" hard;
           print_endline (if exact then "s OPTIMUM FOUND" else "s UNKNOWN");
           print_v a
         end
         else if hard = 0 then begin
           Printf.printf "o %g\n" soft;
           print_endline (if exact then "s OPTIMUM FOUND" else "s SATISFIABLE");
           print_v a
         end
         else if exact then print_endline "s UNSATISFIABLE"
         else begin
           Printf.printf "c best read violates %d hard clause(s)\n" hard;
           print_endline "s UNKNOWN"
         end);
      `Ok ()
    with
    | Qac_diag.Diag.Error d -> `Error (false, Qac_diag.Diag.to_string d)
    | Failure msg -> `Error (false, msg)
  in
  let doc = "solve a DIMACS CNF/WCNF formula on the annealing substrate" in
  Cmd.v (Cmd.info "sat" ~doc)
    Term.(ret
            (const run $ sat_file_arg $ maxsat_arg $ solver_arg $ reads_arg $ sweeps_arg
             $ seed_arg $ physical_arg $ topology_arg $ broken_arg $ threads_arg
             $ timeout_arg $ chain_break_arg))

(* --- serve ----------------------------------------------------------------- *)

module Serve = Qac_serve.Serve
module Shard = Qac_serve.Shard
module Server = Qac_serve.Server
module Protocol = Qac_serve.Protocol

let jobs_arg =
  let doc =
    "Job file: one job per line, $(i,FILE.v) followed by optional \
     $(i,key=value) tokens.  $(i,port=int) pins a port; the reserved keys \
     $(i,top=), $(i,steps=) and $(i,deadline_ms=) select the top module, \
     the unroll depth and a per-job deadline.  Blank lines and lines \
     starting with # are skipped.  Job ids are $(i,basename#lineno).  \
     Required unless --listen is given (a server takes jobs over the \
     socket)."
  in
  Arg.(value & opt (some file) None & info [ "jobs" ] ~docv:"FILE" ~doc)

let serve_physical_arg =
  let doc = "Tile jobs onto a size-$(docv) hardware graph (family from --topology)." in
  Arg.(value & opt int 16 & info [ "physical" ] ~docv:"M" ~doc)

let batch_jobs_arg =
  let doc = "Flush a batch once $(docv) jobs are pending." in
  Arg.(value & opt int 16 & info [ "batch-jobs" ] ~docv:"K" ~doc)

let batch_window_arg =
  let doc = "Flush a batch once the oldest pending job has waited $(docv) ms." in
  Arg.(value & opt float 10.0 & info [ "batch-window-ms" ] ~docv:"MS" ~doc)

let queue_capacity_arg =
  let doc = "Submission-queue bound; submission blocks (backpressure) beyond it." in
  Arg.(value & opt int 256 & info [ "queue-capacity" ] ~docv:"N" ~doc)

let listen_arg =
  let doc =
    "Run as a long-lived server on $(docv) — $(i,HOST:PORT) for TCP \
     (port 0 picks an ephemeral port, printed at startup) or a filesystem \
     path for a Unix-domain socket.  Jobs then arrive over the wire (see \
     the $(b,client) command) instead of from --jobs."
  in
  Arg.(value & opt (some string) None & info [ "listen" ] ~docv:"ADDR" ~doc)

let shards_arg =
  let doc =
    "Number of scheduler shards: each runs on its own domain with its own \
     embedding cache and batch queue."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let routing_arg =
  let doc =
    "Shard routing: $(b,affinity) (rendezvous-hash the problem structure, \
     so same-shaped jobs share a warm embedding cache) or \
     $(b,round-robin)."
  in
  Arg.(value
       & opt (enum [ ("affinity", Shard.Affinity); ("round-robin", Shard.Round_robin) ])
           Shard.Affinity
       & info [ "routing" ] ~docv:"POLICY" ~doc)

(* "HOST:PORT" (TCP) or a filesystem path (Unix-domain). *)
let parse_addr s =
  match String.rindex_opt s ':' with
  | Some i ->
    (match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
     | Some port ->
       let host = if i = 0 then "127.0.0.1" else String.sub s 0 i in
       let ip =
         try Unix.inet_addr_of_string host
         with Failure _ ->
           (try (Unix.gethostbyname host).Unix.h_addr_list.(0)
            with Not_found -> failwith ("cannot resolve host " ^ host))
       in
       Unix.ADDR_INET (ip, port)
     | None -> Unix.ADDR_UNIX s)
  | None -> Unix.ADDR_UNIX s

let string_of_addr = function
  | Unix.ADDR_INET (ip, port) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port
  | Unix.ADDR_UNIX path -> path

type parsed_job = {
  line_no : int;
  path : string;
  job_top : string option;
  job_steps : int option;
  deadline_ms : float option;
  job_pins : (string * int) list;
}

let parse_job_line line_no line =
  match
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  with
  | [] -> None
  | path :: rest ->
    let top = ref None and steps = ref None and deadline = ref None in
    let pins = ref [] in
    let bad tok what =
      failwith (Printf.sprintf "jobs line %d: %s in %S" line_no what tok)
    in
    List.iter
      (fun tok ->
         match String.index_opt tok '=' with
         | None -> bad tok "expected key=value"
         | Some i ->
           let k = String.sub tok 0 i in
           let v = String.sub tok (i + 1) (String.length tok - i - 1) in
           let as_int () =
             match int_of_string_opt v with
             | Some n -> n
             | None -> bad tok "expected an integer value"
           in
           (match k with
            | "top" -> top := Some v
            | "steps" -> steps := Some (as_int ())
            | "deadline_ms" ->
              (match float_of_string_opt v with
               | Some f -> deadline := Some f
               | None -> bad tok "expected a float value")
            | _ -> pins := (k, as_int ()) :: !pins))
      rest;
    Some { line_no; path; job_top = !top; job_steps = !steps;
           deadline_ms = !deadline; job_pins = List.rev !pins }

(* A compiled-problem snapshot is keyed by everything that determines the
   assembled problem: the source text, top/steps selection, and the pins. *)
let problem_snapshot_key ~src ~top ~steps ~pins =
  let b = Buffer.create 1024 in
  let str s =
    Buffer.add_string b s;
    Buffer.add_char b '\000'
  in
  str src;
  str (Option.value ~default:"" top);
  str (match steps with Some s -> string_of_int s | None -> "");
  List.iter
    (fun (k, v) ->
       str k;
       str (string_of_int v))
    pins;
  Digest.string (Buffer.contents b)

(* Parse a job file, compile each referenced design once per (path, top,
   steps), and assemble.  Returns [(compiled option, job)] in file order.
   With [?store], each job's assembled problem is snapshotted: a snapshot
   hit skips parse->assemble entirely and carries no compiled artifacts
   ([None]) — results then print energies without port decoding. *)
let build_jobs ?store ?trace jobs_file =
  let parsed =
    String.split_on_char '\n' (read_file jobs_file)
    |> List.mapi (fun i line -> (i + 1, String.trim line))
    |> List.concat_map (fun (n, line) ->
        if line = "" || line.[0] = '#' then []
        else match parse_job_line n line with Some j -> [ j ] | None -> [])
  in
  if parsed = [] then failwith "no jobs in file";
  List.map
    (fun pj ->
       let id = Printf.sprintf "%s#%d" (Filename.basename pj.path) pj.line_no in
       let src = read_file pj.path in
       let key =
         Option.map
           (fun _ ->
              problem_snapshot_key ~src ~top:pj.job_top ~steps:pj.job_steps
                ~pins:pj.job_pins)
           store
       in
       let snapshot =
         match store, key with
         | Some s, Some k -> Qac_embed.Store.find_problem s k
         | _ -> None
       in
       match snapshot with
       | Some problem ->
         (None, { Serve.id; problem; timeout_ms = pj.deadline_ms })
       | None ->
         let t =
           P.compile_cached ?top:pj.job_top ?steps:pj.job_steps ~optimize:true
             ?trace src
         in
         let program = P.assemble_with_pins ~pins:pj.job_pins t in
         let problem = program.Qac_qmasm.Assemble.problem in
         (match store, key with
          | Some s, Some k -> Qac_embed.Store.put_problem s k problem
          | _ -> ());
         (Some (t, program), { Serve.id; problem; timeout_ms = pj.deadline_ms }))
    parsed

let print_serve_result tp (r : Serve.result) =
  let status =
    match r.Serve.status with
    | Serve.Done -> "done"
    | Serve.Timed_out -> "TIMED OUT (best-so-far below, if any)"
    | Serve.Canceled -> "CANCELED"
    | Serve.Failed msg -> "FAILED: " ^ msg
  in
  Printf.printf "job %s: %s (batch %d, wait %.3fs, solve %.3fs)\n" r.Serve.id
    status r.Serve.batch r.Serve.wait_seconds r.Serve.solve_seconds;
  match r.Serve.response with
  | None -> ()
  | Some resp ->
    (match resp.Qac_anneal.Sampler.samples with
     | [] -> ()
     | best :: _ ->
       (match tp with
        | Some (t, program) ->
          let s =
            P.solution_of_spins t ~program
              ~num_occurrences:best.Qac_anneal.Sampler.num_occurrences
              best.Qac_anneal.Sampler.spins
          in
          Printf.printf "  best: energy %g, %d occurrence(s)%s\n" s.P.energy
            s.P.num_occurrences
            (if s.P.valid then "" else " [INVALID]");
          List.iter (fun (name, v) -> Printf.printf "    %s = %d\n" name v) s.P.ports
        | None ->
          (* Problem restored from the artifact store: the symbol table was
             never rebuilt, so report the raw sample without port names. *)
          Printf.printf "  best: energy %g, %d occurrence(s) [from store snapshot]\n"
            best.Qac_anneal.Sampler.energy best.Qac_anneal.Sampler.num_occurrences))

let print_store_summary = function
  | None -> ()
  | Some store ->
    let st = Qac_embed.Store.stats store in
    Printf.printf
      "# store %s: %d embeddings, %d problems, embed %d/%d hits, problem %d/%d hits, \
       %d writes, %d load failures\n"
      (Qac_embed.Store.dir store) st.Qac_embed.Store.embeddings
      st.Qac_embed.Store.problems st.Qac_embed.Store.embed_hits
      (st.Qac_embed.Store.embed_hits + st.Qac_embed.Store.embed_misses)
      st.Qac_embed.Store.problem_hits
      (st.Qac_embed.Store.problem_hits + st.Qac_embed.Store.problem_misses)
      st.Qac_embed.Store.writes st.Qac_embed.Store.load_failures

let print_pool_summary pool =
  let stats = Shard.stats pool in
  Array.iter
    (fun (s : Shard.shard_stats) ->
       let sv = s.Shard.serve and c = s.Shard.cache in
       let lookups = c.Qac_embed.Cache.hits + c.Qac_embed.Cache.misses in
       Printf.printf
         "# shard %d: %d jobs in %d batches, occupancy %.1f%%, cache %d/%d hits\n"
         s.Shard.shard sv.Serve.jobs_done sv.Serve.batches
         (100.0 *. sv.Serve.mean_occupancy) c.Qac_embed.Cache.hits lookups)
    stats;
  let lat = Shard.latency pool in
  if Qac_diag.Hist.count lat > 0 then
    Printf.printf "# latency p50 %.1f ms  p99 %.1f ms\n"
      (1000.0 *. Qac_diag.Hist.p50 lat) (1000.0 *. Qac_diag.Hist.p99 lat)

let serve_cmd =
  let run jobs_file physical topology broken solver reads sweeps seed threads batch_jobs
      batch_window_ms queue_capacity listen shards routing store_dir postprocess
      chain_break trace trace_json =
    try
      if shards < 1 then failwith "--shards must be >= 1";
      let store = Option.map Qac_embed.Store.open_dir store_dir in
      let solver_variant = make_solver solver ~reads ~sweeps ~seed in
      (* Per-job solves already run concurrently across the service's
         domains, so each individual solve stays single-threaded.  The
         composite wrapper honors each job's own deadline inside the
         polish loop. *)
      let solver ~deadline p =
        Qac_anneal.Composite.wrap ~postprocess ?deadline p
          ~solve:(fun p -> P.dispatch_solver ~num_threads:1 ?deadline solver_variant p)
      in
      let graph = make_graph ~topology ~broken physical in
      let batch_window_s = batch_window_ms /. 1000.0 in
      (match listen with
       | Some addr ->
         let pool =
           Shard.create ~num_shards:shards ~routing ~queue_capacity ~batch_jobs
             ~batch_window_s ~num_threads:threads ~chain_break ?store ~solver ~graph ()
         in
         let server = Server.create ~pool ~sockaddr:(parse_addr addr) () in
         Printf.printf "listening on %s (%d shard%s, %s routing)\n%!"
           (string_of_addr (Server.sockaddr server))
           shards (if shards = 1 then "" else "s")
           (match routing with Shard.Affinity -> "affinity" | Shard.Round_robin -> "round-robin");
         let results = Server.run server in
         Printf.printf "# served %d job(s)\n" (List.length results);
         print_pool_summary pool;
         print_store_summary store
       | None ->
         let jobs_file =
           match jobs_file with
           | Some f -> f
           | None -> failwith "--jobs is required (or --listen to run as a server)"
         in
         (* The trace is created before job building so the compile-cache
            hit/miss summaries land on it alongside the serve counters
            (multi-shard pools write no trace, as before). *)
         let tr = if shards > 1 then None else make_trace ~trace ~trace_json in
         let jobs = build_jobs ?store ?trace:tr jobs_file in
         if shards > 1 then begin
           let pool =
             Shard.create ~num_shards:shards ~routing ~queue_capacity ~batch_jobs
               ~batch_window_s ~num_threads:threads ~chain_break ?store ~solver ~graph ()
           in
           List.iter (fun (_, job) -> ignore (Shard.submit pool job)) jobs;
           let results = Shard.drain pool in
           (* Tickets are assigned in submission order, so drain's ticket
              order matches the job-file order. *)
           List.iter2 (fun (tp, _) (_, r) -> print_serve_result tp r) jobs results;
           print_pool_summary pool;
           print_store_summary store
         end
         else begin
           let cache = Qac_embed.Cache.create ?store () in
           let service =
             Serve.create ~queue_capacity ~batch_jobs ~batch_window_s
               ~num_threads:threads ~chain_break ~embed_cache:cache ?trace:tr
               ~solver ~graph ()
           in
           List.iter (fun (_, job) -> Serve.submit service job) jobs;
           let results = Serve.drain service in
           (match tr with
            | None -> ()
            | Some trace ->
              let stats = Qac_embed.Cache.stats cache in
              Trace.set_summary trace "embed-cache-hits" stats.Qac_embed.Cache.hits;
              Trace.set_summary trace "embed-cache-misses" stats.Qac_embed.Cache.misses);
           List.iter2 (fun (tp, _) r -> print_serve_result tp r) jobs results;
           let st = Serve.stats service in
           Printf.printf
             "# %d jobs in %d batches: %d placed, %d deferrals, %d retries, %d failures, \
              %d timeouts\n"
             st.Serve.jobs_done st.Serve.batches st.Serve.placed st.Serve.deferrals
             st.Serve.retries st.Serve.failures st.Serve.timeouts;
           Printf.printf "# mean occupancy %.1f%%  throughput %.1f jobs/s\n"
             (100.0 *. st.Serve.mean_occupancy) st.Serve.jobs_per_second;
           print_store_summary store;
           emit_trace ~trace_json tr
         end);
      `Ok ()
    with
    | Qac_diag.Diag.Error d -> `Error (false, Qac_diag.Diag.to_string d)
    | Failure msg -> `Error (false, msg)
    | Sys_error msg -> `Error (false, msg)
    | Unix.Unix_error (e, fn, _) ->
      `Error (false, Printf.sprintf "%s: %s" fn (Unix.error_message e))
  in
  let doc =
    "serve jobs tiled onto one annealer graph — from a job file, or as a \
     long-lived sharded server (--listen)"
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(ret
            (const run $ jobs_arg $ serve_physical_arg $ topology_arg $ broken_arg
             $ solver_arg $ reads_arg $ sweeps_arg $ seed_arg $ threads_arg
             $ batch_jobs_arg $ batch_window_arg $ queue_capacity_arg
             $ listen_arg $ shards_arg $ routing_arg $ store_arg
             $ postprocess_arg $ chain_break_arg $ trace_arg $ trace_json_arg))

(* --- client ---------------------------------------------------------------- *)

let connect_arg =
  let doc = "Server address: $(i,HOST:PORT) or a Unix-domain socket path." in
  Arg.(required & opt (some string) None & info [ "connect" ] ~docv:"ADDR" ~doc)

let poll_ms_arg =
  let doc = "Poll interval while waiting for results, in milliseconds." in
  Arg.(value & opt float 5.0 & info [ "poll-ms" ] ~docv:"MS" ~doc)

let client_stats_arg =
  let doc = "Print the server's per-shard stats (JSON) after any jobs finish." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let client_metrics_arg =
  let doc = "Print the server's metrics exposition (Prometheus text format)." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let client_shutdown_arg =
  let doc = "Ask the server to drain and shut down (sent last)." in
  Arg.(value & flag & info [ "shutdown" ] ~doc)

let client_cmd =
  let run connect_addr jobs_file poll_ms want_stats want_metrics want_shutdown =
    try
      let fd = Protocol.connect (parse_addr connect_addr) in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
           (match jobs_file with
            | None -> ()
            | Some file ->
              let jobs = build_jobs file in
              let tickets =
                List.map
                  (fun (_, job) ->
                     let rec submit () =
                       match Protocol.call fd (Protocol.Submit job) with
                       | Protocol.Submitted { ticket; shard } ->
                         Printf.printf "job %s -> ticket %d (shard %d)\n%!"
                           job.Serve.id ticket shard;
                         ticket
                       | Protocol.Busy { retry_after_ms } ->
                         Unix.sleepf (retry_after_ms /. 1000.0);
                         submit ()
                       | Protocol.Error msg -> failwith msg
                       | _ -> failwith "unexpected reply to submit"
                     in
                     submit ())
                  jobs
              in
              List.iter2
                (fun (tp, _) ticket ->
                   let rec poll () =
                     match Protocol.call fd (Protocol.Poll ticket) with
                     | Protocol.Completed r -> print_serve_result tp r
                     | Protocol.Pending ->
                       Unix.sleepf (poll_ms /. 1000.0);
                       poll ()
                     | Protocol.Error msg -> failwith msg
                     | _ -> failwith "unexpected reply to poll"
                   in
                   poll ())
                jobs tickets);
           if want_stats then
             (match Protocol.call fd Protocol.Stats with
              | Protocol.Stats_json s -> print_endline (Protocol.json_to_string s)
              | _ -> failwith "unexpected reply to stats");
           if want_metrics then
             (match Protocol.call fd Protocol.Metrics with
              | Protocol.Metrics_text m -> print_string m
              | _ -> failwith "unexpected reply to metrics");
           if want_shutdown then
             (match Protocol.call fd Protocol.Shutdown with
              | Protocol.Shutdown_ok -> print_endline "# server shutting down"
              | _ -> failwith "unexpected reply to shutdown"));
      `Ok ()
    with
    | Qac_diag.Diag.Error d -> `Error (false, Qac_diag.Diag.to_string d)
    | Protocol.Protocol_error msg -> `Error (false, "protocol: " ^ msg)
    | Failure msg -> `Error (false, msg)
    | Sys_error msg -> `Error (false, msg)
    | Unix.Unix_error (e, fn, _) ->
      `Error (false, Printf.sprintf "%s: %s" fn (Unix.error_message e))
  in
  let doc = "submit jobs to a running $(b,vqa serve --listen) server" in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(ret
            (const run $ connect_arg $ jobs_arg $ poll_ms_arg $ client_stats_arg
             $ client_metrics_arg $ client_shutdown_arg))

(* --- cells ----------------------------------------------------------------- *)

let cells_cmd =
  let run () =
    Printf.printf "%-6s %-28s %-9s %-5s %s\n" "cell" "logic" "ancillas" "gap" "status";
    List.iter
      (fun (c : Qac_cells.Cells.t) ->
         let logic =
           match c.Qac_cells.Cells.name with
           | "NOT" -> "Y = ~A"
           | "AND" -> "Y = A & B"
           | "OR" -> "Y = A | B"
           | "NAND" -> "Y = ~(A & B)"
           | "NOR" -> "Y = ~(A | B)"
           | "XOR" -> "Y = A ^ B"
           | "XNOR" -> "Y = ~(A ^ B)"
           | "MUX" -> "Y = S ? B : A"
           | "AOI3" -> "Y = ~((A & B) | C)"
           | "OAI3" -> "Y = ~((A | B) & C)"
           | "AOI4" -> "Y = ~((A & B) | (C & D))"
           | "OAI4" -> "Y = ~((A | B) & (C | D))"
           | _ -> "Q = D"
         in
         match Qac_cells.Cells.verify c with
         | Ok gap ->
           Printf.printf "%-6s %-28s %-9d %-5g verified\n" c.Qac_cells.Cells.name logic
             c.Qac_cells.Cells.num_ancillas gap
         | Error msg ->
           Printf.printf "%-6s %-28s %-9d %-5s FAILED: %s\n" c.Qac_cells.Cells.name logic
             c.Qac_cells.Cells.num_ancillas "-" msg)
      Qac_cells.Cells.all;
    `Ok ()
  in
  let doc = "print and verify the Table 5 standard-cell library" in
  Cmd.v (Cmd.info "cells" ~doc) Term.(ret (const run $ const ()))

(* --- stats ------------------------------------------------------------------ *)

let stats_cmd =
  let run src top steps no_optimize physical topology broken =
    try
      let t = compile ?top ?steps ~optimize:(not no_optimize) src in
      let props = P.static_properties t in
      Printf.printf "verilog lines:        %d\n" props.P.verilog_lines;
      Printf.printf "edif lines:           %d\n" props.P.edif_lines;
      Printf.printf "qmasm lines:          %d (+ %d in stdcell.qmasm)\n" props.P.qmasm_lines
        props.P.stdcell_lines;
      Printf.printf "logical variables:    %d\n" props.P.logical_vars;
      Printf.printf "logical terms:        %d\n" props.P.logical_terms;
      if physical > 0 then begin
        let graph = make_graph ~topology ~broken physical in
        let label = graph_label ~topology physical in
        let problem = t.P.program.Qac_qmasm.Assemble.problem in
        match
          Qac_embed.Cmr.find ~params:(Qac_embed.Cmr.params_for graph) graph problem
        with
        | Some e ->
          let phys = Qac_embed.Embedding.apply graph problem e in
          Printf.printf "physical qubits:      %d (%s)\n"
            (Qac_embed.Embedding.num_physical_qubits e)
            label;
          Printf.printf "physical terms:       %d\n" (Qac_ising.Problem.num_terms phys);
          Printf.printf "max chain length:     %d\n" (Qac_embed.Embedding.max_chain_length e)
        | None -> Printf.printf "physical: no embedding found on %s\n" label
      end;
      `Ok ()
    with Qac_diag.Diag.Error d -> `Error (false, Qac_diag.Diag.to_string d)
  in
  let doc = "print the section 6.1 static properties of a module" in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(ret (const run $ src_arg $ top_arg $ steps_arg $ no_optimize_arg $ physical_arg
               $ topology_arg $ broken_arg))

let () =
  let doc = "compile classical Verilog code to a quantum annealer (ASPLOS'19 reproduction)" in
  let info = Cmd.info "vqa" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ compile_cmd; run_cmd; sat_cmd; serve_cmd; client_cmd; cells_cmd; stats_cmd ]))
