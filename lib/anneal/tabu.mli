(** Single-flip tabu search, in the style of the solver inside D-Wave's
    qbsolv (section 3).  Each restart walks from a random configuration,
    always taking the best non-tabu flip, with aspiration (a tabu flip is
    allowed when it beats the best energy seen). *)

type params = {
  num_restarts : int;
  max_iterations : int;  (** per restart *)
  tenure : int option;  (** [None]: min(20, n/4 + 1) *)
  seed : int;
}

val default_params : params
(** 10 restarts x 500 iterations. *)

val sample : ?params:params -> ?deadline:float -> Qac_ising.Problem.t -> Sampler.response
(** [deadline] (absolute [Unix.gettimeofday] instant) is checked between
    iterations and restarts; hitting it returns best-so-far with
    [Sampler.response.timed_out] set. *)
