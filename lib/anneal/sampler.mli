(** Common sampler types: every solver returns a [response], mirroring how
    qmasm "can run a program arbitrarily many times and report statistics on
    the results" (section 4.3). *)

type sample = {
  spins : Qac_ising.Problem.spin array;
  energy : float;
  num_occurrences : int;
}

type response = {
  samples : sample list;  (** distinct configurations, ascending energy *)
  num_reads : int;
  elapsed_seconds : float;
  timed_out : bool;
      (** the solver hit its deadline and returned best-so-far partial
          results (see the [?deadline] argument of the samplers) *)
}

(** Aggregate raw reads: duplicates merge with occurrence counts (keyed on a
    packed byte string of the configuration); samples sort by energy, then
    configuration. *)
val response_of_reads :
  Qac_ising.Problem.t ->
  ?elapsed_seconds:float ->
  ?timed_out:bool ->
  Qac_ising.Problem.spin array list ->
  response

(** Same aggregation for [(spins, energy)] pairs whose energies the solver
    already tracked incrementally (see {!State.energy}) — the Hamiltonian is
    never re-evaluated. *)
val response_of_evaluated_reads :
  ?elapsed_seconds:float ->
  ?timed_out:bool ->
  (Qac_ising.Problem.spin array * float) list ->
  response

(** Aggregation for reads that already carry occurrence counts (bit-packed
    blocks, composite post-processors, the tiler's demux): counts for equal
    configurations sum {e before} the energy sort, so near-identical
    multi-lane blocks collapse into single samples instead of inflating
    the response.  Raises [Invalid_argument] on a count below 1. *)
val response_of_counted_reads :
  ?elapsed_seconds:float ->
  ?timed_out:bool ->
  (Qac_ising.Problem.spin array * float * int) list ->
  response

val best : response -> sample
(** Raises [Invalid_argument] on an empty response. *)

val num_distinct : response -> int

val ground_samples : ?tolerance:float -> response -> sample list
(** Samples within [tolerance] (default 1e-9) of the best energy. *)

val merge : Qac_ising.Problem.t -> response list -> response
(** Combine responses from several invocations: occurrence counts aggregate
    directly, elapsed times add, [timed_out] is the disjunction.  The result
    is independent of the list order (samples re-sort by energy, then
    configuration). *)

val success_probability : response -> target_energy:float -> float
(** Fraction of reads at or below [target_energy] (+1e-9 tolerance). *)

(** [time_to_solution response ~target_energy ~confidence] — the standard
    annealing-literature TTS metric: expected wall time to observe at least
    one read at the target energy with the given confidence (default 0.99),
    extrapolated from this response's per-read time and success rate.
    [None] when no read succeeded. *)
val time_to_solution :
  ?confidence:float -> response -> target_energy:float -> float option

(** [pp_histogram fmt response] prints an ASCII energy histogram (up to
    [buckets], default 10) with read counts — the "statistics on the
    results" view qmasm offers. *)
val pp_histogram : ?buckets:int -> Format.formatter -> response -> unit
