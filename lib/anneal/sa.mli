(** Simulated annealing — the classical stand-in for the D-Wave quantum
    annealer (section 2 notes the generated Hamiltonians "can be minimized
    in software on conventional computers using, e.g., simulated
    annealing").

    Each read starts from a fresh random spin configuration and Metropolis
    sweeps through every spin while the inverse temperature ramps from hot
    to cold.  Reads are independent and deterministic given [seed]. *)

type params = {
  num_reads : int;
  num_sweeps : int;  (** full passes over all spins per read *)
  beta_min : float option;  (** [None]: derived from the problem *)
  beta_max : float option;
  schedule : [ `Geometric | `Linear ];
  greedy_postprocess : bool;  (** descend to a local minimum after the ramp *)
  seed : int;
  kernel : [ `Bitpar | `Scalar ];
      (** [`Bitpar] (default) packs up to 64 reads per {!Bitpar} block —
          integer quantized dynamics, one CSR walk advancing all lanes;
          [`Scalar] keeps the float {!State} kernel read-by-read. *)
}

val default_params : params
(** 100 reads, 200 sweeps, geometric auto schedule, postprocessing on,
    seed 42, bit-parallel kernel. *)

(** [sample ?params ?deadline p] — [deadline] is an absolute
    [Unix.gettimeofday] instant; the sampler checks it between sweeps and
    between reads, and a run that hits it returns the reads finished so far
    (plus the in-flight read's current state) with
    [Sampler.response.timed_out] set.  Responses without a deadline are
    bit-identical to previous behaviour. *)
val sample : ?params:params -> ?deadline:float -> Qac_ising.Problem.t -> Sampler.response

(** [anneal_one p ~rng ~num_sweeps ~schedule] runs a single read and returns
    the final annealing state (configuration + tracked energy).  A read that
    hits [deadline] stops after the current sweep. *)
val anneal_one :
  ?deadline:float ->
  Qac_ising.Problem.t ->
  rng:Rng.t ->
  num_sweeps:int ->
  schedule:Schedule.t ->
  State.t
