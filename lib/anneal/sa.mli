(** Simulated annealing — the classical stand-in for the D-Wave quantum
    annealer (section 2 notes the generated Hamiltonians "can be minimized
    in software on conventional computers using, e.g., simulated
    annealing").

    Each read starts from a fresh random spin configuration and Metropolis
    sweeps through every spin while the inverse temperature ramps from hot
    to cold.  Reads are independent and deterministic given [seed]. *)

type params = {
  num_reads : int;
  num_sweeps : int;  (** full passes over all spins per read *)
  beta_min : float option;  (** [None]: derived from the problem *)
  beta_max : float option;
  schedule : [ `Geometric | `Linear ];
  greedy_postprocess : bool;  (** descend to a local minimum after the ramp *)
  seed : int;
}

val default_params : params
(** 100 reads, 200 sweeps, geometric auto schedule, postprocessing on,
    seed 42. *)

val sample : ?params:params -> Qac_ising.Problem.t -> Sampler.response

(** [anneal_one p ~rng ~num_sweeps ~schedule] runs a single read and returns
    the final annealing state (configuration + tracked energy). *)
val anneal_one :
  Qac_ising.Problem.t ->
  rng:Rng.t ->
  num_sweeps:int ->
  schedule:Schedule.t ->
  State.t
