(** Domain-parallel sampling: split a read batch across OCaml 5 domains.

    Reads are partitioned into fixed-size chunks whose seeds derive from
    the base seed by chunk position, so the response is a deterministic
    function of [(seed, num_reads, chunk_size)] alone: any thread count
    returns the identical sample set (only wall time varies). *)

val default_chunk_size : int

type chunk = { chunk_seed : int; chunk_reads : int }

val chunks : ?chunk_size:int -> seed:int -> num_reads:int -> unit -> chunk list
(** The deterministic chunk decomposition. *)

(** [run_tasks ~num_workers n f] runs [f 0 .. f (n-1)] across at most
    [num_workers] OCaml domains (the caller included), pulling task indices
    off a shared atomic counter.  [f] must be safe to run concurrently for
    distinct indices and must write its result somewhere index-addressed:
    which domain runs which index is nondeterministic, so determinism must
    come from the index, never from execution order.  [num_workers <= 1]
    degrades to a plain sequential loop with no domain spawns. *)
val run_tasks : ?num_workers:int -> int -> (int -> unit) -> unit

(** [sample ~num_threads ~seed ~num_reads f problem] calls
    [f ~seed:chunk_seed ~num_reads:chunk_reads] once per chunk, across
    [num_threads] domains, and merges the responses ({!Sampler.merge}).
    [elapsed_seconds] of the result is the wall time of the whole batch.
    [f] must be pure up to its seed (no shared mutable state): it runs
    concurrently on multiple domains. *)
val sample :
  ?num_threads:int ->
  ?chunk_size:int ->
  seed:int ->
  num_reads:int ->
  (seed:int -> num_reads:int -> Sampler.response) ->
  Qac_ising.Problem.t ->
  Sampler.response

(** Per-solver wrappers: the params' own [seed] and [num_reads]
    (resp. [num_restarts] for tabu) define the batch.  [deadline] is one
    absolute [Unix.gettimeofday] instant shared by every chunk — a
    timed-out batch merges whatever partial reads the chunks produced and
    sets [Sampler.response.timed_out]. *)

val sample_sa :
  ?num_threads:int -> ?chunk_size:int -> ?deadline:float -> params:Sa.params ->
  Qac_ising.Problem.t -> Sampler.response
(** SA's [chunk_size] defaults to {!Bitpar.max_lanes} (not
    {!default_chunk_size}) so each chunk is exactly one packed block. *)

val sample_sqa :
  ?num_threads:int -> ?chunk_size:int -> ?deadline:float -> params:Sqa.params ->
  Qac_ising.Problem.t -> Sampler.response

val sample_tabu :
  ?num_threads:int -> ?chunk_size:int -> ?deadline:float -> params:Tabu.params ->
  Qac_ising.Problem.t -> Sampler.response
