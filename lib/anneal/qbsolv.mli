(** qbsolv-style large-problem decomposition (section 3; Booth et al.).

    Problems beyond the sub-solver's size are attacked iteratively: select a
    subset of variables (by energy impact, by contiguity, or at random),
    freeze the rest — their couplings fold into the subproblem's fields —
    solve the subproblem exactly, splice the improvement back, and repeat
    until no improvement persists.  Returns one polished configuration. *)

type params = {
  sub_size : int;  (** exactly-solvable subproblem size *)
  num_repeats : int;  (** rounds without improvement before stopping *)
  max_rounds : int;
  seed : int;
}

val default_params : params
(** sub_size 20, 15 stall rounds, 400 round cap. *)

(** [sample ?params ?sub_solver p] decomposes [p].  [sub_solver] minimizes
    each subproblem; the default enumerates exactly (so [sub_size] must stay
    within [Exact.max_vars]).  Passing an annealer-backed solver — e.g.
    minor-embed into a small Chimera and sample — reproduces qbsolv's real
    role: "split large problems into sub-problems that fit on the D-Wave
    hardware" (section 4.3). *)
val sample :
  ?params:params ->
  ?sub_solver:(Qac_ising.Problem.t -> Sampler.response) ->
  ?deadline:float ->
  Qac_ising.Problem.t ->
  Sampler.response
(** [deadline] (absolute [Unix.gettimeofday] instant) is checked between
    decomposition rounds; hitting it returns the current polished
    configuration with [Sampler.response.timed_out] set. *)
