open Qac_ising

type params = {
  num_reads : int;
  num_sweeps : int;
  num_slices : int;
  gamma_initial : float;
  gamma_final : float;
  temperature : float;
  global_move_probability : float;
  seed : int;
}

let default_params =
  { num_reads = 50;
    num_sweeps = 200;
    num_slices = 20;
    gamma_initial = 3.0;
    gamma_final = 0.01;
    temperature = 0.1;
    global_move_probability = 0.1;
    seed = 23 }

(* Inter-slice coupling for transverse field gamma at temperature t with p
   slices.  Positive (ferromagnetic, aligning copies) and growing as gamma
   shrinks. *)
let j_perp ~gamma ~temperature ~num_slices =
  let pt = float_of_int num_slices *. temperature in
  let x = tanh (gamma /. pt) in
  (* Guard against underflow at tiny gamma. *)
  let x = Float.max x 1e-300 in
  -.(pt /. 2.0) *. log x

let expired deadline =
  match deadline with
  | None -> false
  | Some d -> Unix.gettimeofday () > d

let anneal_one ?deadline (p : Problem.t) ~params ~rng =
  let n = p.Problem.num_vars in
  let slices = params.num_slices in
  let beta = 1.0 /. params.temperature in
  (* One incremental state per Trotter slice. *)
  let replicas = Array.init slices (fun _ -> State.random p rng) in
  let step = ref 0 in
  while !step < params.num_sweeps && not (expired deadline) do
    let sweep = !step in
    incr step;
    let fraction =
      if params.num_sweeps <= 1 then 1.0
      else float_of_int sweep /. float_of_int (params.num_sweeps - 1)
    in
    let gamma =
      params.gamma_initial
      +. (fraction *. (params.gamma_final -. params.gamma_initial))
    in
    let coupling = j_perp ~gamma ~temperature:params.temperature ~num_slices:slices in
    let slice_weight = 1.0 /. float_of_int slices in
    (* Local moves. *)
    for k = 0 to slices - 1 do
      let st = replicas.(k) in
      let sigma = State.spins st in
      let up = State.spins replicas.((k + 1) mod slices) in
      let down = State.spins replicas.((k + slices - 1) mod slices) in
      for i = 0 to n - 1 do
        let classical = slice_weight *. State.delta st i in
        let quantum =
          2.0 *. coupling *. float_of_int sigma.(i)
          *. float_of_int (up.(i) + down.(i))
        in
        let delta = classical +. quantum in
        if delta <= 0.0 || Rng.float rng < exp (-.beta *. delta) then
          State.flip st i
      done
    done;
    (* Global (all-slice) moves: the inter-slice term cancels, so the
       acceptance test uses the mean classical delta — O(slices) from the
       cached fields. *)
    for i = 0 to n - 1 do
      if Rng.float rng < params.global_move_probability then begin
        let delta =
          slice_weight
          *. Array.fold_left (fun acc st -> acc +. State.delta st i) 0.0 replicas
        in
        if delta <= 0.0 || Rng.float rng < exp (-.beta *. delta) then
          Array.iter (fun st -> State.flip st i) replicas
      end
    done
  done;
  (* Read out the best slice (tracked energies; no re-evaluation). *)
  let best = ref replicas.(0) in
  Array.iter
    (fun st -> if State.energy st < State.energy !best then best := st)
    replicas;
  let result = State.copy !best in
  ignore (Greedy.descend_state result);
  result

let sample ?(params = default_params) ?deadline (p : Problem.t) =
  if p.Problem.num_vars = 0 then
    Sampler.response_of_reads p (List.init params.num_reads (fun _ -> [||]))
  else begin
    let rng = Rng.create params.seed in
    let start = Unix.gettimeofday () in
    (* Best-effort under a deadline: stop the read loop once it passes,
       keeping the in-flight read's (partial) result. *)
    let timed_out = ref false in
    let rec reads_from k =
      if k >= params.num_reads then []
      else begin
        let st = anneal_one ?deadline p ~params ~rng in
        let read = (State.spins st, State.energy st) in
        if expired deadline then begin
          timed_out := true;
          [ read ]
        end
        else read :: reads_from (k + 1)
      end
    in
    let reads = reads_from 0 in
    let elapsed_seconds = Unix.gettimeofday () -. start in
    Sampler.response_of_evaluated_reads ~elapsed_seconds ~timed_out:!timed_out reads
  end
