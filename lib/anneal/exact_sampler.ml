(** Exhaustive enumeration presented through the sampler interface, for
    problems small enough ([<= Exact.max_vars]).  Returns every ground state
    once. *)

open Qac_ising

let sample (p : Problem.t) =
  let start = Unix.gettimeofday () in
  let result = Exact.solve p in
  let elapsed_seconds = Unix.gettimeofday () -. start in
  Sampler.response_of_evaluated_reads ~elapsed_seconds
    (List.map
       (fun spins -> (spins, result.Exact.ground_energy))
       result.Exact.ground_states)
