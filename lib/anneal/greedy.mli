(** Greedy single-spin descent, used standalone and as post-processing for
    stochastic samplers (qmasm-style sample polishing). *)

val descend_state : State.t -> int
(** Drive an existing incremental state to a single-flip local minimum;
    returns the number of flips performed.  The state's tracked energy is
    current afterwards — no re-evaluation needed. *)

val descend : Qac_ising.Problem.t -> Qac_ising.Problem.spin array -> int
(** Mutates the configuration to a single-flip local minimum; returns the
    number of flips performed. *)

val local_minimum :
  Qac_ising.Problem.t -> Qac_ising.Problem.spin array -> Qac_ising.Problem.spin array
(** Non-mutating variant. *)
