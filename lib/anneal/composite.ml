(** Composable sample post-processors (dwave-ocean "composite" idiom): each
    takes a base solve and improves the response without touching the
    solver itself.  [polish] steepest-descends every returned configuration
    to its local minimum; [gauge] runs the solve under a spin-reversal
    transform, which decorrelates solver bias from the problem's sign
    structure.  Both preserve the {!Sampler.response} invariants: samples
    stay aggregated (equal configurations merge, counts sum), sorted by
    (energy, configuration), with [num_reads] conserved. *)

open Qac_ising

type postprocess = [ `None | `Polish | `Gauge ]

let postprocess_of_string = function
  | "none" -> Some `None
  | "polish" -> Some `Polish
  | "gauge" -> Some `Gauge
  | _ -> None

let string_of_postprocess = function
  | `None -> "none"
  | `Polish -> "polish"
  | `Gauge -> "gauge"

let expired deadline =
  match deadline with
  | None -> false
  | Some d -> Unix.gettimeofday () > d

(* Descend every distinct sample to its local minimum.  Counts follow their
   configuration, so distinct reads that polish into the same minimum merge
   into one sample with the summed occurrences.  The deadline is checked
   before each sample's descent: a response polished under time pressure
   keeps its remaining samples as-is rather than dropping them. *)
let polish ?deadline (p : Problem.t) (r : Sampler.response) =
  if r.Sampler.samples = [] then r
  else begin
    let counted =
      List.map
        (fun (s : Sampler.sample) ->
           if expired deadline then (s.Sampler.spins, s.energy, s.num_occurrences)
           else begin
             let st = State.make p (Array.copy s.Sampler.spins) in
             ignore (Greedy.descend_state st);
             (State.spins st, State.energy st, s.num_occurrences)
           end)
        r.Sampler.samples
    in
    Sampler.response_of_counted_reads ~elapsed_seconds:r.Sampler.elapsed_seconds
      ~timed_out:r.Sampler.timed_out counted
  end

(* The spin-reversal (gauge) transform for [seed]: a +-1 vector [g] with
   [h' = g_i h_i] and [J' = g_i g_j J_ij].  Flipping variable signs this
   way relabels the state space without changing the energy landscape:
   E'(s) = E(g . s) exactly (every factor is a +-1 multiply, so even float
   energies are bit-identical). *)
let gauge_transform ~seed (p : Problem.t) =
  let rng = Rng.create seed in
  let g = Rng.spins rng p.Problem.num_vars in
  let h = Array.mapi (fun i hi -> hi *. float_of_int g.(i)) p.Problem.h in
  let j =
    Array.to_list
      (Array.map
         (fun ((u, v), jv) -> ((u, v), jv *. float_of_int (g.(u) * g.(v))))
         p.Problem.couplers)
  in
  (g, Problem.create ~num_vars:p.Problem.num_vars ~h ~j ())

let default_gauge_seed = 271828

let gauge ?(seed = default_gauge_seed) (p : Problem.t) ~solve =
  if p.Problem.num_vars = 0 then solve p
  else begin
    let g, gp = gauge_transform ~seed p in
    let r = solve gp in
    let counted =
      List.map
        (fun (s : Sampler.sample) ->
           ( Array.mapi (fun i si -> g.(i) * si) s.Sampler.spins,
             s.Sampler.energy,
             s.Sampler.num_occurrences ))
        r.Sampler.samples
    in
    (* Re-aggregate so the (energy, configuration) sort holds for the
       gauge-restored spins. *)
    let restored =
      Sampler.response_of_counted_reads ~elapsed_seconds:r.Sampler.elapsed_seconds
        ~timed_out:r.Sampler.timed_out counted
    in
    if r.Sampler.samples = [] then r else restored
  end

(* Wire a post-processing choice around a base solve.  [`Gauge] transforms
   the problem before solving; [`Polish] descends the response after. *)
let wrap ~(postprocess : postprocess) ?gauge_seed ?deadline (p : Problem.t) ~solve =
  match postprocess with
  | `None -> solve p
  | `Polish -> polish ?deadline p (solve p)
  | `Gauge -> gauge ?seed:gauge_seed p ~solve
