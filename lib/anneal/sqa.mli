(** Simulated *quantum* annealing: path-integral Monte Carlo over a
    transverse-field Ising model.

    Section 2 of the paper lists Hitachi's "simulated quantum annealer" as a
    classical target for the same compiled Hamiltonians.  This module
    implements the standard Suzuki–Trotter construction: the quantum system
    is replicated into [num_slices] coupled classical replicas; the
    transverse field Gamma ramps down during the anneal, which maps to a
    growing ferromagnetic coupling [J_perp] between a spin's copies in
    adjacent slices:

    {v J_perp = -(P T / 2) ln tanh(Gamma / (P T)) v}

    Monte Carlo moves are single-site flips within a slice plus occasional
    global moves flipping one spin across every slice (a crude analogue of
    tunneling). *)

type params = {
  num_reads : int;
  num_sweeps : int;
  num_slices : int;  (** Trotter slices P *)
  gamma_initial : float;  (** transverse field at the start of the ramp *)
  gamma_final : float;
  temperature : float;  (** fixed classical temperature T *)
  global_move_probability : float;
      (** chance per (sweep, spin) of proposing an all-slice flip *)
  seed : int;
}

val default_params : params
(** 50 reads, 200 sweeps, 20 slices, Gamma 3.0 -> 0.01, T = 0.1. *)

val sample : ?params:params -> ?deadline:float -> Qac_ising.Problem.t -> Sampler.response
(** Each read contributes its best slice (by classical energy) after the
    ramp, polished by greedy descent.  [deadline] (absolute
    [Unix.gettimeofday] instant) is checked between sweeps and between
    reads: a run that hits it returns best-so-far with
    [Sampler.response.timed_out] set. *)
