(** qbsolv-style large-problem decomposition (section 3; Booth et al.).

    Problems beyond the sub-solver's size are attacked iteratively: pick the
    [sub_size] variables with the highest energy impact in the current
    configuration, freeze the rest (their couplings fold into the
    subproblem's fields), solve the subproblem exactly, splice the result
    back, and repeat (with occasional random subsets for diversification)
    until no improvement persists. *)

open Qac_ising

type params = {
  sub_size : int;  (** exact-solvable subproblem size *)
  num_repeats : int;  (** rounds without improvement before stopping *)
  max_rounds : int;
  seed : int;
}

let default_params = { sub_size = 20; num_repeats = 15; max_rounds = 400; seed = 11 }

(* Extract the subproblem over [vars] given frozen spins elsewhere.
   Returns the subproblem; index [k] of the subproblem is variable
   [vars.(k)] of [p]. *)
let subproblem (p : Problem.t) spins vars =
  let position = Hashtbl.create (Array.length vars) in
  Array.iteri (fun k v -> Hashtbl.replace position v k) vars;
  let b = Problem.Builder.create ~num_vars:(Array.length vars) () in
  Array.iteri
    (fun k v ->
       Problem.Builder.add_h b k p.Problem.h.(v);
       Problem.iter_neighbors p v (fun j coupling ->
           match Hashtbl.find_opt position j with
           | Some kj ->
             (* Internal coupler; add once (when k < kj). *)
             if k < kj then Problem.Builder.add_j b k kj coupling
           | None ->
             (* Frozen neighbor: folds into the field. *)
             Problem.Builder.add_h b k (coupling *. float_of_int spins.(j))))
    vars;
  Problem.Builder.build b

(* Splice the sub-solver's best configuration into the running state.  The
   tracked energy prices the change in O(flipped vars * degree) — no full
   Hamiltonian re-evaluation per round. *)
let improve_with_subset ~sub_solver (p : Problem.t) st vars =
  let spins = State.spins st in
  let sub = subproblem p spins vars in
  if sub.Problem.num_vars = 0 then false
  else begin
    let response = sub_solver sub in
    match response.Sampler.samples with
    | [] -> false
    | best :: _ ->
      let best = best.Sampler.spins in
      let before = State.energy st in
      let flipped =
        Array.to_list vars
        |> List.filteri (fun k v ->
            if spins.(v) <> best.(k) then begin
              State.flip st v;
              true
            end
            else false)
      in
      if State.energy st < before -. 1e-12 then true
      else begin
        List.iter (State.flip st) flipped;
        false
      end
  end

let impact_order st =
  let n = State.num_vars st in
  let impacts = Array.init n (fun i -> (Float.abs (State.delta st i), i)) in
  Array.sort (fun (a, _) (b, _) -> compare b a) impacts;
  Array.map snd impacts

let exact_sub_solver sub =
  let result = Exact.solve ~limit:1 sub in
  Sampler.response_of_evaluated_reads
    (List.map (fun s -> (s, result.Exact.ground_energy)) result.Exact.ground_states)

let expired deadline =
  match deadline with
  | None -> false
  | Some d -> Unix.gettimeofday () > d

let sample ?(params = default_params) ?(sub_solver = exact_sub_solver) ?deadline
    (p : Problem.t) =
  let n = p.Problem.num_vars in
  let start = Unix.gettimeofday () in
  if n = 0 then Sampler.response_of_reads p [ [||] ]
  else if n <= params.sub_size then begin
    (* Fits the sub-solver: solve directly. *)
    let response = sub_solver p in
    let reads =
      List.map (fun s -> (s.Sampler.spins, s.Sampler.energy)) response.Sampler.samples
    in
    let elapsed_seconds = Unix.gettimeofday () -. start in
    Sampler.response_of_evaluated_reads ~elapsed_seconds reads
  end
  else begin
    let rng = Rng.create params.seed in
    let st = State.random p rng in
    ignore (Greedy.descend_state st);
    let stall = ref 0 in
    let round = ref 0 in
    (* The deadline check sits between decomposition rounds; the splice-back
       of the current round always completes, so the configuration returned
       is coherent. *)
    let timed_out = ref false in
    while
      !stall < params.num_repeats && !round < params.max_rounds
      &&
      if expired deadline then begin
        timed_out := true;
        false
      end
      else true
    do
      incr round;
      let improved =
        match !round mod 3 with
        | 0 ->
          (* Diversification: a random subset. *)
          let perm = Array.init n (fun i -> i) in
          Rng.shuffle rng perm;
          improve_with_subset ~sub_solver p st (Array.sub perm 0 params.sub_size)
        | 1 ->
          (* Locality: a contiguous index window, which repairs structures
             like domain walls in chain-shaped problems. *)
          let start = Rng.int rng (n - params.sub_size + 1) in
          improve_with_subset ~sub_solver p st
            (Array.init params.sub_size (fun k -> start + k))
        | _ ->
          (* Intensification: highest-impact variables, with a random offset
             so consecutive rounds differ. *)
          let order = impact_order st in
          let offset = if !round <= 2 then 0 else Rng.int rng (max 1 (n - params.sub_size)) in
          improve_with_subset ~sub_solver p st
            (Array.sub order (min offset (n - params.sub_size)) params.sub_size)
      in
      if improved then stall := 0 else incr stall
    done;
    ignore (Greedy.descend_state st);
    let elapsed_seconds = Unix.gettimeofday () -. start in
    Sampler.response_of_evaluated_reads ~elapsed_seconds ~timed_out:!timed_out
      [ (State.spins st, State.energy st) ]
  end
