(** Deterministic splitmix64 PRNG.

    Solvers take integer seeds and must reproduce bit-identical runs across
    OCaml versions, so [Stdlib.Random] (whose algorithm changed in 5.0) is
    avoided. *)

type t

val create : int -> t

val next_int64 : t -> int64

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); raises [Invalid_argument] for
    non-positive bounds. *)

val bool : t -> bool

val spins : t -> int -> Qac_ising.Problem.spin array
(** A uniformly random +-1 vector. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. *)

val split : t -> t
(** Derive an independent stream (per-read seeding). *)

val next_seed : t -> int
(** Derive a non-negative seed for an independent child stream (per-chunk
    seeding in {!Parallel}). *)

type rng := t

(** Per-lane counter generators for the bit-parallel kernel: one
    independent 63-bit splitmix-style stream per replica lane, states in a
    flat [int array] (no boxed numbers in the hot loop).  A lane's draw
    sequence is a pure function of its seed, so a lane annealed inside a
    packed block is bit-identical to the same lane annealed alone. *)
module Lanes : sig
  type t

  val create : rng -> int -> t
  (** [create rng n] seeds [n] lanes by drawing {!next_seed} from [rng]
      in lane order. *)

  val of_seeds : int array -> t
  (** Lane [l] seeded with [seeds.(l)] (copied). *)

  val num_lanes : t -> int

  val states : t -> int array
  (** The live per-lane states (aliased): exposed so kernels can duplicate
      a lane for the packed-vs-scalar equivalence tests. *)

  val draw : t -> int -> int
  (** [draw t l] advances lane [l] alone and returns a uniform 61-bit
      non-negative draw, the scale of {!Schedule.acceptance_tables}.
      Equivalent to [mix (states.(l) + increment) lsr 2] after storing the
      incremented state — the packed kernel inlines exactly that. *)

  val increment : int
  (** The odd additive constant of the lane counter. *)

  val mix : int -> int
  (** The multiply-xorshift output mix. *)
end
