(** Deterministic splitmix64 PRNG.

    Solvers take integer seeds and must reproduce bit-identical runs across
    OCaml versions, so [Stdlib.Random] (whose algorithm changed in 5.0) is
    avoided. *)

type t

val create : int -> t

val next_int64 : t -> int64

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); raises [Invalid_argument] for
    non-positive bounds. *)

val bool : t -> bool

val spins : t -> int -> Qac_ising.Problem.spin array
(** A uniformly random +-1 vector. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. *)

val split : t -> t
(** Derive an independent stream (per-read seeding). *)

val next_seed : t -> int
(** Derive a non-negative seed for an independent child stream (per-chunk
    seeding in {!Parallel}). *)
