(** Common sampler types: all solvers return a [response], mirroring how
    qmasm "can run a program arbitrarily many times and report statistics on
    the results" (section 4.3). *)

open Qac_ising

type sample = {
  spins : Problem.spin array;
  energy : float;
  num_occurrences : int;
}

type response = {
  samples : sample list;  (** distinct configurations, ascending energy *)
  num_reads : int;
  elapsed_seconds : float;
  timed_out : bool;  (** the solver hit its deadline and returned best-so-far *)
}

(* Dedup key: one byte per spin.  Bytes compare/hash without the per-element
   boxing an [int list] key pays. *)
let pack spins =
  Bytes.init (Array.length spins) (fun i -> if spins.(i) > 0 then '\001' else '\000')

let sorted_samples tbl =
  Hashtbl.fold (fun _ s acc -> s :: acc) tbl []
  |> List.sort (fun a b ->
      match compare a.energy b.energy with
      | 0 -> compare a.spins b.spins
      | c -> c)

(** Aggregate reads that already carry occurrence counts (bit-packed blocks
    and composite post-processors produce counted reads): counts for equal
    configurations sum {e before} the energy sort, so a 64-lane block that
    froze into one configuration contributes one sample with
    [num_occurrences = 64], not 64 singleton samples. *)
let response_of_counted_reads ?(elapsed_seconds = 0.0) ?(timed_out = false) reads =
  let tbl = Hashtbl.create 64 in
  let num_reads = ref 0 in
  List.iter
    (fun (spins, energy, count) ->
       if count < 1 then invalid_arg "Sampler.response_of_counted_reads: count < 1";
       num_reads := !num_reads + count;
       let key = pack spins in
       match Hashtbl.find_opt tbl key with
       | Some (sample : sample) ->
         Hashtbl.replace tbl key
           { sample with num_occurrences = sample.num_occurrences + count }
       | None ->
         Hashtbl.add tbl key { spins = Array.copy spins; energy; num_occurrences = count })
    reads;
  { samples = sorted_samples tbl; num_reads = !num_reads; elapsed_seconds; timed_out }

(** Aggregate reads whose energies the solver already tracked (e.g. via
    [State.energy]): no re-evaluation of the Hamiltonian per read. *)
let response_of_evaluated_reads ?elapsed_seconds ?timed_out reads =
  response_of_counted_reads ?elapsed_seconds ?timed_out
    (List.map (fun (spins, energy) -> (spins, energy, 1)) reads)

(** Aggregate raw reads into a response: duplicates are merged with
    occurrence counts, samples sorted by energy then configuration. *)
let response_of_reads problem ?elapsed_seconds ?timed_out reads =
  response_of_evaluated_reads ?elapsed_seconds ?timed_out
    (List.map (fun spins -> (spins, Problem.energy problem spins)) reads)

let best response =
  match response.samples with
  | [] -> invalid_arg "Sampler.best: empty response"
  | s :: _ -> s

let num_distinct response = List.length response.samples

(** Lowest-energy samples only (within [tolerance] of the best). *)
let ground_samples ?(tolerance = 1e-9) response =
  match response.samples with
  | [] -> []
  | best :: _ ->
    List.filter (fun s -> s.energy <= best.energy +. tolerance) response.samples

let success_probability response ~target_energy =
  if response.num_reads = 0 then 0.0
  else begin
    let hits =
      List.fold_left
        (fun acc s -> if s.energy <= target_energy +. 1e-9 then acc + s.num_occurrences else acc)
        0 response.samples
    in
    float_of_int hits /. float_of_int response.num_reads
  end

let time_to_solution ?(confidence = 0.99) response ~target_energy =
  let p = success_probability response ~target_energy in
  if p <= 0.0 then None
  else if p >= 1.0 then Some (response.elapsed_seconds /. float_of_int response.num_reads)
  else begin
    let per_read = response.elapsed_seconds /. float_of_int response.num_reads in
    let reads_needed = log (1.0 -. confidence) /. log (1.0 -. p) in
    Some (per_read *. Float.max 1.0 reads_needed)
  end

(** Merge responses from several solver invocations: occurrence counts add
    directly (no re-materialized per-read lists, no energy re-evaluation). *)
let merge _problem responses =
  let tbl = Hashtbl.create 64 in
  let num_reads = ref 0 in
  List.iter
    (fun r ->
       num_reads := !num_reads + r.num_reads;
       List.iter
         (fun s ->
            let key = pack s.spins in
            match Hashtbl.find_opt tbl key with
            | Some existing ->
              Hashtbl.replace tbl key
                { existing with
                  num_occurrences = existing.num_occurrences + s.num_occurrences }
            | None -> Hashtbl.add tbl key s)
         r.samples)
    responses;
  let elapsed = List.fold_left (fun acc r -> acc +. r.elapsed_seconds) 0.0 responses in
  let timed_out = List.exists (fun r -> r.timed_out) responses in
  { samples = sorted_samples tbl; num_reads = !num_reads; elapsed_seconds = elapsed; timed_out }

let pp_histogram ?(buckets = 10) fmt response =
  match response.samples with
  | [] -> Format.fprintf fmt "(no samples)@."
  | samples ->
    let lo = (List.hd samples).energy in
    let hi =
      List.fold_left (fun acc s -> Float.max acc s.energy) lo samples
    in
    let span = if hi -. lo < 1e-12 then 1.0 else hi -. lo in
    let counts = Array.make buckets 0 in
    List.iter
      (fun s ->
         let idx =
           min (buckets - 1)
             (int_of_float (float_of_int buckets *. (s.energy -. lo) /. span))
         in
         counts.(idx) <- counts.(idx) + s.num_occurrences)
      samples;
    let peak = Array.fold_left max 1 counts in
    Format.fprintf fmt "energy histogram (%d reads, %d distinct):@." response.num_reads
      (List.length samples);
    Array.iteri
      (fun i count ->
         let from = lo +. (span *. float_of_int i /. float_of_int buckets) in
         let upto = lo +. (span *. float_of_int (i + 1) /. float_of_int buckets) in
         let bar = String.make (count * 40 / peak) '#' in
         Format.fprintf fmt "  [%8.2f, %8.2f) %6d %s@." from upto count bar)
      counts
