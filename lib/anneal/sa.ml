open Qac_ising

type params = {
  num_reads : int;
  num_sweeps : int;
  beta_min : float option;
  beta_max : float option;
  schedule : [ `Geometric | `Linear ];
  greedy_postprocess : bool;
  seed : int;
}

let default_params =
  { num_reads = 100;
    num_sweeps = 200;
    beta_min = None;
    beta_max = None;
    schedule = `Geometric;
    greedy_postprocess = true;
    seed = 42 }

let anneal_one (p : Problem.t) ~rng ~num_sweeps ~schedule =
  let n = p.Problem.num_vars in
  let st = State.random p rng in
  (* One random visit order per read (sequential-scan SA, as in D-Wave's
     neal): a per-sweep reshuffle costs more than the O(1) proposals it
     reorders. *)
  let order = Array.init n (fun i -> i) in
  Rng.shuffle rng order;
  for step = 0 to num_sweeps - 1 do
    let beta = Schedule.beta schedule ~step ~num_steps:num_sweeps in
    State.metropolis_sweep st ~beta ~rng ~order
  done;
  st

let sample ?(params = default_params) (p : Problem.t) =
  if p.Problem.num_vars = 0 then
    Sampler.response_of_reads p (List.init params.num_reads (fun _ -> [||]))
  else begin
    let schedule =
      Schedule.create ~kind:params.schedule ?beta_min:params.beta_min
        ?beta_max:params.beta_max p
    in
    let rng = Rng.create params.seed in
    let start = Unix.gettimeofday () in
    let reads =
      List.init params.num_reads (fun _ ->
          let st = anneal_one p ~rng ~num_sweeps:params.num_sweeps ~schedule in
          if params.greedy_postprocess then ignore (Greedy.descend_state st);
          (State.spins st, State.energy st))
    in
    let elapsed_seconds = Unix.gettimeofday () -. start in
    Sampler.response_of_evaluated_reads ~elapsed_seconds reads
  end
