open Qac_ising

type params = {
  num_reads : int;
  num_sweeps : int;
  beta_min : float option;
  beta_max : float option;
  schedule : [ `Geometric | `Linear ];
  greedy_postprocess : bool;
  seed : int;
  kernel : [ `Bitpar | `Scalar ];
}

let default_params =
  { num_reads = 100;
    num_sweeps = 200;
    beta_min = None;
    beta_max = None;
    schedule = `Geometric;
    greedy_postprocess = true;
    seed = 42;
    kernel = `Bitpar }

(* Deadline checks sit between sweeps (a sweep is O(vars * degree), so one
   [gettimeofday] per sweep is noise).  [expired None] is a constant-false
   branch, keeping the untimed hot path unchanged. *)
let expired deadline =
  match deadline with
  | None -> false
  | Some d -> Unix.gettimeofday () > d

let anneal_one ?deadline (p : Problem.t) ~rng ~num_sweeps ~schedule =
  let n = p.Problem.num_vars in
  let st = State.random p rng in
  (* One random visit order per read (sequential-scan SA, as in D-Wave's
     neal): a per-sweep reshuffle costs more than the O(1) proposals it
     reorders. *)
  let order = Array.init n (fun i -> i) in
  Rng.shuffle rng order;
  let step = ref 0 in
  while !step < num_sweeps && not (expired deadline) do
    let beta = Schedule.beta schedule ~step:!step ~num_steps:num_sweeps in
    State.metropolis_sweep st ~beta ~rng ~order;
    incr step
  done;
  st

(* The scalar read loop: one float-kernel anneal per read. *)
let sample_scalar ~params ?deadline ~schedule (p : Problem.t) =
  let rng = Rng.create params.seed in
  let start = Unix.gettimeofday () in
  (* Best-effort under a deadline: each read checks between sweeps, and the
     read loop stops early once the deadline passes — whatever state the
     current read reached is still reported, so a timed-out response
     carries at least one (partial) read. *)
  let timed_out = ref false in
  let rec reads_from k =
    if k >= params.num_reads then []
    else begin
      let st = anneal_one ?deadline p ~rng ~num_sweeps:params.num_sweeps ~schedule in
      if params.greedy_postprocess && not (expired deadline) then
        ignore (Greedy.descend_state st);
      let read = (State.spins st, State.energy st) in
      if expired deadline then begin
        timed_out := true;
        [ read ]
      end
      else read :: reads_from (k + 1)
    end
  in
  let reads = reads_from 0 in
  let elapsed_seconds = Unix.gettimeofday () -. start in
  Sampler.response_of_evaluated_reads ~elapsed_seconds ~timed_out:!timed_out reads

(* The bit-parallel read loop: reads advance in packed blocks of up to 64
   lanes, one derived block seed per block.  Greedy polish and energy
   evaluation ride on the float [State] per lane, so the response carries
   incrementally-tracked energies exactly like the scalar path. *)
let sample_bitpar ~params ?deadline ~schedule (p : Problem.t) =
  let q = Bitpar.quantize p in
  let acceptance = Bitpar.acceptance q schedule ~num_sweeps:params.num_sweeps in
  let rng = Rng.create params.seed in
  let start = Unix.gettimeofday () in
  let timed_out = ref false in
  let reads = ref [] in
  let remaining = ref params.num_reads in
  while !remaining > 0 && not !timed_out do
    let lanes = min Bitpar.max_lanes !remaining in
    let block_seed = Rng.next_seed rng in
    let r = Bitpar.anneal_block ?deadline q ~acceptance ~lanes ~block_seed in
    if r.Bitpar.timed_out then timed_out := true;
    Array.iter
      (fun spins ->
         let st = State.make p spins in
         if params.greedy_postprocess && not (expired deadline) then
           ignore (Greedy.descend_state st);
         reads := (State.spins st, State.energy st, 1) :: !reads)
      r.Bitpar.reads;
    remaining := !remaining - lanes
  done;
  let elapsed_seconds = Unix.gettimeofday () -. start in
  Sampler.response_of_counted_reads ~elapsed_seconds ~timed_out:!timed_out
    (List.rev !reads)

let sample ?(params = default_params) ?deadline (p : Problem.t) =
  if p.Problem.num_vars = 0 then
    Sampler.response_of_reads p (List.init params.num_reads (fun _ -> [||]))
  else begin
    let schedule =
      Schedule.create ~kind:params.schedule ?beta_min:params.beta_min
        ?beta_max:params.beta_max p
    in
    match params.kernel with
    | `Scalar -> sample_scalar ~params ?deadline ~schedule p
    | `Bitpar -> sample_bitpar ~params ?deadline ~schedule p
  end
