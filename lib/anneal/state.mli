(** Incremental annealing state: spin vector + cached local fields + running
    energy, the shared inner-loop kernel of SA, SQA, tabu, greedy descent and
    the qbsolv decomposer.

    Maintained invariants:
    - [field t i = h.(i) + sum_j J_ij * spins.(j)];
    - [energy t = Problem.energy (problem t) (spins t)]
    (up to float rounding accumulated by incremental updates; see
    {!resync}).  A flip proposal is therefore O(1) and an accepted flip
    O(degree), via one CSR row walk. *)

type t

val make : Qac_ising.Problem.t -> Qac_ising.Problem.spin array -> t
(** [make p spins] builds the caches in O(vars + couplers).  [spins] is
    aliased, not copied: {!flip} mutates it in place.  Raises
    [Invalid_argument] on a bad spin vector. *)

val random : Qac_ising.Problem.t -> Rng.t -> t
(** A fresh state over a uniformly random configuration. *)

val copy : t -> t
(** Deep copy; the two states share only the problem. *)

val problem : t -> Qac_ising.Problem.t
val spins : t -> Qac_ising.Problem.spin array
(** The live spin array (aliased — treat as read-only; mutate via {!flip}). *)

val energy : t -> float
(** The tracked energy.  O(1) after {!flip}-only updates; after a
    {!metropolis_sweep} the first read resyncs in O(vars + couplers)
    (amortized over the sweeps of a read). *)

val field : t -> int -> float
(** The cached local field of spin [i], O(1). *)

val num_vars : t -> int

val delta : t -> int -> float
(** [delta t i] is the energy change of flipping spin [i], O(1):
    [-2 * spins.(i) * field t i]. *)

val flip : t -> int -> unit
(** Flip spin [i]: update the spin, the tracked energy, and the neighbors'
    cached fields in O(degree i). *)

val metropolis_sweep : t -> beta:float -> rng:Rng.t -> order:int array -> unit
(** One Metropolis sweep at inverse temperature [beta], visiting spins in
    [order] (entries must index valid spins).  Acceptance: [delta <= 0]
    always; otherwise with probability [exp (-beta * delta)] — except that
    proposals with [beta * delta > 30] (acceptance < 1e-13) are rejected
    without consuming randomness.  The hot loop updates spins and fields
    only; the tracked energy is resynced lazily on the next {!energy}
    read. *)

val resync : t -> unit
(** Recompute energy and fields from scratch (O(vars + couplers)), discarding
    accumulated float rounding. *)
