(** Greedy single-spin descent: repeatedly flip any spin that lowers the
    energy until none does.  Used standalone and as post-processing for
    stochastic samplers (qmasm-style sample polishing). *)

open Qac_ising

(** [descend_state st] drives the incremental state to a local minimum;
    returns the number of flips performed.  Each pass costs O(vars) in
    proposals plus O(degree) per accepted flip. *)
let descend_state st =
  let n = State.num_vars st in
  let flips = ref 0 in
  let improved = ref true in
  while !improved do
    improved := false;
    for i = 0 to n - 1 do
      if State.delta st i < -1e-12 then begin
        State.flip st i;
        incr flips;
        improved := true
      end
    done
  done;
  !flips

(** [descend p spins] mutates [spins] to a local minimum; returns the number
    of flips performed. *)
let descend (p : Problem.t) spins = descend_state (State.make p spins)

(** Non-mutating variant. *)
let local_minimum p spins =
  let copy = Array.copy spins in
  ignore (descend p copy);
  copy
