(** Annealing schedules: inverse-temperature (beta) ramps.

    The default range is derived from the problem, in the manner of D-Wave's
    classical neal sampler: the hot end makes even the stiffest spin flip
    with probability ~1/2; the cold end makes the weakest coefficient
    significant. *)

type t = {
  beta_min : float;
  beta_max : float;
  kind : [ `Geometric | `Linear ];
}

val default_range : Qac_ising.Problem.t -> float * float
(** [(beta_min, beta_max)] derived from the problem's field extremes. *)

val create :
  ?kind:[ `Geometric | `Linear ] ->
  ?beta_min:float ->
  ?beta_max:float ->
  Qac_ising.Problem.t ->
  t
(** Defaults: geometric ramp over {!default_range}. *)

val beta : t -> step:int -> num_steps:int -> float
(** Inverse temperature at sweep [step] of [num_steps]. *)

val acceptance_scale : int
(** [2^61]: thresholds and uniform draws share this scale
    ({!Rng.Lanes.draw}). *)

type acceptance = {
  num_steps : int;
  delta_unit : float;  (** energy per quantization level (2 * eps) *)
  thresholds : int array array;
      (** [thresholds.(step).(k)]: accept an uphill move of [k] levels at
          sweep [step] iff a uniform draw in [0, {!acceptance_scale})
          is below it.  [k = 0] holds the always-accept sentinel; [k] at
          or past the row length is an automatic rejection (the row stops
          at the first zero threshold, which subsumes the scalar kernel's
          [beta * delta > 30] cutoff). *)
}

(** [acceptance_tables t ~num_steps ~delta_unit ~max_level] precomputes the
    per-sweep Metropolis acceptance thresholds for deltas quantized to
    multiples of [delta_unit], up to [max_level] levels — one [exp] per
    sweep and one multiply per level, instead of an [exp] per proposal in
    the kernels.  Shared by the bit-packed block kernel and its scalar
    lane reference ({!Bitpar}). *)
val acceptance_tables :
  t -> num_steps:int -> delta_unit:float -> max_level:int -> acceptance
