(** Incremental annealing state: one replica's spin configuration plus the
    cached local field of every spin and a (lazily resynced) running energy.

    Invariants (maintained by {!flip} and {!metropolis_sweep}, checked by the
    property tests):
    - [fields.(i) = h.(i) + sum_j J_ij * spins.(j)] for every [i];
    - [energy t = Problem.energy problem spins].

    With the cache, a Metropolis proposal costs O(1)
    ([delta i = -2 * spins.(i) * fields.(i)] — the field of [i] does not
    depend on [spins.(i)] itself) and an accepted flip costs O(degree i):
    one CSR row walk pushing the field change to the neighbors.  The
    list-walking kernel this replaces re-derived the field from boxed
    adjacency lists on every proposal, accepted or not. *)

open Qac_ising

type t = {
  problem : Problem.t;
  spins : Problem.spin array;  (** aliased, mutated in place *)
  fields : float array;
  mutable energy : float;
  mutable energy_valid : bool;
      (* [metropolis_sweep] skips per-flip energy bookkeeping in its hot
         loop and invalidates instead; [energy] resyncs on demand. *)
}

(* [make p spins] wraps [spins] WITHOUT copying: flips mutate the caller's
   array.  Callers that need the original intact must copy first. *)
let make (p : Problem.t) spins =
  let energy = Problem.energy p spins in
  (* energy already validated length and spin values *)
  let fields = Array.init p.Problem.num_vars (Problem.local_field p spins) in
  { problem = p; spins; fields; energy; energy_valid = true }

let random p rng = make p (Rng.spins rng p.Problem.num_vars)

let copy t =
  { problem = t.problem;
    spins = Array.copy t.spins;
    fields = Array.copy t.fields;
    energy = t.energy;
    energy_valid = t.energy_valid }

let problem t = t.problem
let spins t = t.spins

let energy t =
  if not t.energy_valid then begin
    t.energy <- Problem.energy t.problem t.spins;
    t.energy_valid <- true
  end;
  t.energy

let field t i = t.fields.(i)
let num_vars t = t.problem.Problem.num_vars

let delta t i = -2.0 *. float_of_int t.spins.(i) *. t.fields.(i)

let flip t i =
  let p = t.problem in
  let s = t.spins.(i) in
  if t.energy_valid then
    t.energy <- t.energy +. (-2.0 *. float_of_int s *. t.fields.(i));
  t.spins.(i) <- -s;
  let step = -2.0 *. float_of_int s in
  for k = p.Problem.row_start.(i) to p.Problem.row_start.(i + 1) - 1 do
    let j = p.Problem.col.(k) in
    t.fields.(j) <- t.fields.(j) +. (step *. p.Problem.weight.(k))
  done

(* Below this, exp (-.beta *. delta) < 1e-13: reject outright and skip the
   RNG draw and the exp — statistically indistinguishable, and it keeps the
   cold tail of a ramp (where nearly every uphill move dies) off the two
   most expensive per-proposal operations. *)
let auto_reject_exponent = 30.0

let metropolis_sweep t ~beta ~rng ~order =
  let p = t.problem in
  let row_start = p.Problem.row_start in
  let col = p.Problem.col in
  let weight = p.Problem.weight in
  let spins = t.spins in
  let fields = t.fields in
  let cutoff = auto_reject_exponent /. beta in
  t.energy_valid <- false;
  for idx = 0 to Array.length order - 1 do
    let i = Array.unsafe_get order idx in
    let s = spins.(i) in
    (* delta = -2 s * field; field of i is independent of spin i *)
    let f = fields.(i) in
    let delta = if s > 0 then -2.0 *. f else 2.0 *. f in
    if
      delta <= 0.0
      || (delta < cutoff && Rng.float rng < exp (-.beta *. delta))
    then begin
      spins.(i) <- -s;
      let step = if s > 0 then -2.0 else 2.0 in
      for k = Array.unsafe_get row_start i to Array.unsafe_get row_start (i + 1) - 1 do
        let j = Array.unsafe_get col k in
        Array.unsafe_set fields j
          (Array.unsafe_get fields j +. (step *. Array.unsafe_get weight k))
      done
    end
  done

(* Incremental field updates accumulate float rounding over very long runs;
   [resync] recomputes both caches from scratch. *)
let resync t =
  t.energy <- Problem.energy t.problem t.spins;
  t.energy_valid <- true;
  Array.iteri (fun i _ -> t.fields.(i) <- Problem.local_field t.problem t.spins i) t.fields
