(** Bit-parallel multi-replica Metropolis kernel (multi-spin coding): up to
    64 SA replicas pack into one 64-bit spin word per variable and advance
    through a single CSR row walk per proposal.  Couplings quantize to
    integer levels, so acceptance is an integer compare against the
    per-sweep threshold tables of {!Schedule.acceptance_tables}, with a
    {!Rng.Lanes} draw only for uphill moves the table has not already
    rejected.

    The lane contract (see also [lib/anneal/README.md]): a lane's
    trajectory is a pure function of (quantized problem, acceptance
    tables, visit order, lane seed).  Lane [l] of {!anneal_block} is
    bit-identical to {!anneal_lane} with the same plan, and a block with
    [k] lanes equals the first [k] lanes of a wider block with the same
    [block_seed]. *)

val max_lanes : int
(** 64: replicas per packed block. *)

type quantized = {
  problem : Qac_ising.Problem.t;
  eps : float;  (** coefficient quantum: level [k] spans [k *. eps] energy *)
  qh : int array;  (** [round (h.(i) /. eps)] *)
  qweight : int array;  (** quantized CSR weights, parallel to [Problem.weight] *)
  max_level : int;  (** largest possible |local field| in levels, >= 1 *)
}

val default_resolution : int
(** 128 levels for the largest coefficient magnitude — comfortably finer
    than the target hardware's DAC precision, coarse enough to keep the
    threshold tables short. *)

val quantize : ?resolution:int -> Qac_ising.Problem.t -> quantized
(** Scale couplings to integers: [eps = max_coeff /. resolution] (1.0 for
    an all-zero problem).  Raises [Invalid_argument] when [resolution < 1]. *)

val delta_unit : quantized -> float
(** [2 *. eps]: the energy of one field level, the [delta_unit] to hand
    {!Schedule.acceptance_tables}. *)

val acceptance :
  quantized -> Schedule.t -> num_sweeps:int -> Schedule.acceptance
(** The per-sweep threshold tables for this quantization — built once per
    sample call and shared by every block and scalar lane. *)

val block_plan :
  num_vars:int -> lanes:int -> block_seed:int -> int array * int array
(** [(order, lane_seeds)]: the shuffled visit order shared by the block's
    lanes, then one derived seed per lane, all from
    [Rng.create block_seed].  Raises [Invalid_argument] unless
    [1 <= lanes <= 64]. *)

val anneal_lane :
  quantized ->
  acceptance:Schedule.acceptance ->
  order:int array ->
  lane_seed:int ->
  Qac_ising.Problem.spin array
(** The scalar reference kernel: one lane annealed with plain scalar code
    over the same integer dynamics, draw stream, and tables.  Shares no
    packing logic with {!anneal_block} — it is the equivalence comparator
    and the fallback for odd jobs. *)

type block_result = {
  reads : Qac_ising.Problem.spin array array;
      (** lane-indexed final configurations; a single entry (lane 0's
          partial state) when the block hit its deadline mid-anneal *)
  timed_out : bool;
}

val anneal_block :
  ?deadline:float ->
  quantized ->
  acceptance:Schedule.acceptance ->
  lanes:int ->
  block_seed:int ->
  block_result
(** Anneal [lanes] replicas in one packed pass over
    [acceptance.num_steps] sweeps.  [deadline] (absolute
    [Unix.gettimeofday] instant) is checked between sweeps; an expired
    block returns lane 0's current configuration as a single partial
    read, mirroring the scalar sampler's best-so-far contract.  Raises
    [Invalid_argument] unless [1 <= lanes <= 64]. *)
