(** Single-flip tabu search, in the style of the solver inside D-Wave's
    qbsolv (section 3).  Each restart walks from a random configuration,
    always taking the best non-tabu flip (aspiration: a tabu flip is allowed
    when it beats the best energy seen). *)

open Qac_ising

type params = {
  num_restarts : int;
  max_iterations : int;  (** per restart *)
  tenure : int option;  (** [None]: min(20, n/4 + 1) *)
  seed : int;
}

let default_params = { num_restarts = 10; max_iterations = 500; tenure = None; seed = 7 }

let expired deadline =
  match deadline with
  | None -> false
  | Some d -> Unix.gettimeofday () > d

let search_one ?deadline (p : Problem.t) ~rng ~max_iterations ~tenure =
  let n = p.Problem.num_vars in
  let st = State.random p rng in
  let best = Array.copy (State.spins st) in
  let best_energy = ref (State.energy st) in
  let tabu_until = Array.make n (-1) in
  (* The deadline check sits between iterations (an iteration is O(n)); the
     mask keeps it off the untimed path every 16 steps only to bound the
     [gettimeofday] rate on tiny problems. *)
  let step = ref 0 in
  while
    !step < max_iterations
    && ((!step land 15 <> 0) || not (expired deadline))
  do
    let iteration = !step in
    incr step;
    (* Best admissible flip: O(1) delta per candidate from the cached
       fields. *)
    let chosen = ref (-1) in
    let chosen_delta = ref infinity in
    let energy = State.energy st in
    for i = 0 to n - 1 do
      let delta = State.delta st i in
      let is_tabu = tabu_until.(i) > iteration in
      let aspirated = energy +. delta < !best_energy -. 1e-12 in
      if ((not is_tabu) || aspirated) && delta < !chosen_delta then begin
        chosen := i;
        chosen_delta := delta
      end
    done;
    if !chosen >= 0 then begin
      State.flip st !chosen;
      tabu_until.(!chosen) <- iteration + tenure;
      if State.energy st < !best_energy then begin
        best_energy := State.energy st;
        Array.blit (State.spins st) 0 best 0 n
      end
    end
  done;
  (best, !best_energy)

let sample ?(params = default_params) ?deadline (p : Problem.t) =
  let n = p.Problem.num_vars in
  if n = 0 then Sampler.response_of_reads p (List.init params.num_restarts (fun _ -> [||]))
  else begin
    let tenure =
      match params.tenure with
      | Some t -> max 1 t
      | None -> min 20 ((n / 4) + 1)
    in
    let rng = Rng.create params.seed in
    let start = Unix.gettimeofday () in
    (* Best-effort under a deadline: the restart loop stops once it passes,
       keeping the in-flight restart's best-so-far. *)
    let timed_out = ref false in
    let rec reads_from k =
      if k >= params.num_restarts then []
      else begin
        let read = search_one ?deadline p ~rng ~max_iterations:params.max_iterations ~tenure in
        if expired deadline then begin
          timed_out := true;
          [ read ]
        end
        else read :: reads_from (k + 1)
      end
    in
    let reads = reads_from 0 in
    let elapsed_seconds = Unix.gettimeofday () -. start in
    Sampler.response_of_evaluated_reads ~elapsed_seconds ~timed_out:!timed_out reads
  end
