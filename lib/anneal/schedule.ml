(** Annealing schedules: inverse-temperature (beta) ramps.

    The default range is derived from the problem, following the approach of
    D-Wave's classical neal sampler: the hot beta makes even the stiffest
    spin flip with probability ~1/2; the cold beta makes the weakest
    coefficient significant (acceptance ~1%). *)

open Qac_ising

type t = {
  beta_min : float;
  beta_max : float;
  kind : [ `Geometric | `Linear ];
}

let default_range (p : Problem.t) =
  let n = p.Problem.num_vars in
  if n = 0 then (0.1, 1.0)
  else begin
    (* Stiffest spin: the largest total field any spin can feel. *)
    let max_field = ref 0.0 in
    let min_coeff = ref infinity in
    for i = 0 to n - 1 do
      let field = ref (Float.abs p.Problem.h.(i)) in
      Problem.iter_neighbors p i (fun _ j -> field := !field +. Float.abs j);
      max_field := Float.max !max_field !field
    done;
    Array.iter
      (fun v -> if v <> 0.0 then min_coeff := Float.min !min_coeff (Float.abs v))
      p.Problem.h;
    Array.iter
      (fun (_, v) -> if v <> 0.0 then min_coeff := Float.min !min_coeff (Float.abs v))
      p.Problem.couplers;
    let max_field = if !max_field = 0.0 then 1.0 else !max_field in
    let min_coeff = if !min_coeff = infinity then 1.0 else !min_coeff in
    (log 2.0 /. (2.0 *. max_field), log 100.0 /. (2.0 *. min_coeff))
  end

let create ?(kind = `Geometric) ?beta_min ?beta_max p =
  let auto_min, auto_max = default_range p in
  let beta_min = Option.value beta_min ~default:auto_min in
  let beta_max = Option.value beta_max ~default:auto_max in
  if beta_min <= 0.0 || beta_max < beta_min then invalid_arg "Schedule.create: bad range";
  { beta_min; beta_max; kind }

(** [beta schedule ~step ~num_steps] is the inverse temperature at sweep
    [step] of [num_steps]. *)
let beta t ~step ~num_steps =
  if num_steps <= 1 then t.beta_max
  else begin
    let fraction = float_of_int step /. float_of_int (num_steps - 1) in
    match t.kind with
    | `Linear -> t.beta_min +. (fraction *. (t.beta_max -. t.beta_min))
    | `Geometric -> t.beta_min *. ((t.beta_max /. t.beta_min) ** fraction)
  end

(* --- Precomputed acceptance threshold tables -------------------------------- *)

(* Integer scale of the threshold tables: draws and thresholds live in
   [0, 2^61), the widest power-of-two range that still fits a native int
   with headroom for the comparison. *)
let acceptance_scale = 1 lsl 61

type acceptance = {
  num_steps : int;
  delta_unit : float;
  thresholds : int array array;
}

(* Per-sweep table: thresholds.(step).(k) = round(exp(-beta * delta_unit * k)
   * 2^61), the acceptance threshold for an uphill move of k quantization
   levels.  Built iteratively (t_k = t_{k-1} * a, one [exp] per sweep, one
   multiply per level) and truncated at the first zero entry: a level at or
   beyond the table length is an automatic rejection, which subsumes the
   beta*delta > 30 auto-reject cutoff of the scalar kernel (exp(-43) * 2^61
   rounds to 0, and 43 > 30). *)
let acceptance_tables t ~num_steps ~delta_unit ~max_level =
  if delta_unit <= 0.0 then invalid_arg "Schedule.acceptance_tables: delta_unit <= 0";
  if max_level < 0 then invalid_arg "Schedule.acceptance_tables: max_level < 0";
  let scale = float_of_int acceptance_scale in
  let thresholds =
    Array.init num_steps (fun step ->
        let b = beta t ~step ~num_steps in
        let a = exp (-.b *. delta_unit) in
        (* Worst case one entry per level plus the k=0 sentinel. *)
        let buf = Array.make (max_level + 1) 0 in
        buf.(0) <- acceptance_scale;
        let len = ref 1 in
        let v = ref scale in
        (try
           for k = 1 to max_level do
             v := !v *. a;
             let th = int_of_float (Float.round !v) in
             if th <= 0 then raise Exit;
             buf.(k) <- th;
             incr len
           done
         with Exit -> ());
        Array.sub buf 0 !len)
  in
  { num_steps; delta_unit; thresholds }
