(** Annealing schedules: inverse-temperature (beta) ramps.

    The default range is derived from the problem, following the approach of
    D-Wave's classical neal sampler: the hot beta makes even the stiffest
    spin flip with probability ~1/2; the cold beta makes the weakest
    coefficient significant (acceptance ~1%). *)

open Qac_ising

type t = {
  beta_min : float;
  beta_max : float;
  kind : [ `Geometric | `Linear ];
}

let default_range (p : Problem.t) =
  let n = p.Problem.num_vars in
  if n = 0 then (0.1, 1.0)
  else begin
    (* Stiffest spin: the largest total field any spin can feel. *)
    let max_field = ref 0.0 in
    let min_coeff = ref infinity in
    for i = 0 to n - 1 do
      let field = ref (Float.abs p.Problem.h.(i)) in
      Problem.iter_neighbors p i (fun _ j -> field := !field +. Float.abs j);
      max_field := Float.max !max_field !field
    done;
    Array.iter
      (fun v -> if v <> 0.0 then min_coeff := Float.min !min_coeff (Float.abs v))
      p.Problem.h;
    Array.iter
      (fun (_, v) -> if v <> 0.0 then min_coeff := Float.min !min_coeff (Float.abs v))
      p.Problem.couplers;
    let max_field = if !max_field = 0.0 then 1.0 else !max_field in
    let min_coeff = if !min_coeff = infinity then 1.0 else !min_coeff in
    (log 2.0 /. (2.0 *. max_field), log 100.0 /. (2.0 *. min_coeff))
  end

let create ?(kind = `Geometric) ?beta_min ?beta_max p =
  let auto_min, auto_max = default_range p in
  let beta_min = Option.value beta_min ~default:auto_min in
  let beta_max = Option.value beta_max ~default:auto_max in
  if beta_min <= 0.0 || beta_max < beta_min then invalid_arg "Schedule.create: bad range";
  { beta_min; beta_max; kind }

(** [beta schedule ~step ~num_steps] is the inverse temperature at sweep
    [step] of [num_steps]. *)
let beta t ~step ~num_steps =
  if num_steps <= 1 then t.beta_max
  else begin
    let fraction = float_of_int step /. float_of_int (num_steps - 1) in
    match t.kind with
    | `Linear -> t.beta_min +. (fraction *. (t.beta_max -. t.beta_min))
    | `Geometric -> t.beta_min *. ((t.beta_max /. t.beta_min) ** fraction)
  end
