(** Deterministic splitmix64 PRNG.

    Solvers take integer seeds and must reproduce bit-identical runs across
    OCaml versions, so we avoid [Stdlib.Random] (whose algorithm changed in
    5.0) and implement splitmix64 directly. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform float in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(** Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let raw = Int64.to_int (next_int64 t) land max_int in
  raw mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** A random spin vector. *)
let spins t n = Array.init n (fun _ -> if bool t then 1 else -1)

(** Fisher–Yates shuffle in place. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** Derive an independent stream (for per-read seeding). *)
let split t = create (Int64.to_int (next_int64 t))

(** Derive a non-negative integer seed for an independent child stream. *)
let next_seed t = Int64.to_int (next_int64 t) land max_int

(* --- Lane generators -------------------------------------------------------- *)

(** Per-lane counter generators for the bit-parallel kernel ({!Bitpar}):
    one independent stream per replica lane, states in a flat [int array]
    so the hot loop never touches a boxed number.

    Each lane is a 63-bit splitmix-style stream on the native int: the
    state is an additive counter (odd increment, so the period is 2^63
    regardless of the seed) and the output is a multiply-xorshift mix of
    the counter.  Acceptance draws take the top 61 bits, matching the
    threshold scale of {!Schedule.acceptance_tables}. *)
module Lanes = struct
  type t = { states : int array }

  (* Odd 63-bit increment (the splitmix64 golden ratio, truncated): any
     odd increment gives the full 2^63 period mod 2^63. *)
  let increment = 0x1E3779B97F4A7C15

  (* Multiply-xorshift mix (xorshift* output stage constants). *)
  let[@inline] mix z =
    let z = z lxor (z lsr 30) in
    let z = z * 0x2545F4914F6CDD1D in
    z lxor (z lsr 27)

  let of_seeds seeds = { states = Array.copy seeds }

  let create rng n = { states = Array.init n (fun _ -> next_seed rng) }

  let num_lanes t = Array.length t.states

  let states t = t.states

  (* 61-bit uniform draw for lane [l], advancing only that lane's state.
     [unsafe]: callers index lanes they created.  The packed kernel inlines
     this arithmetic by hand ([Bitpar], via {!increment} and {!mix}) — the
     equivalence tests pin the two code paths together. *)
  let[@inline] draw t l =
    let s = Array.unsafe_get t.states l + increment in
    Array.unsafe_set t.states l s;
    mix s lsr 2
end
