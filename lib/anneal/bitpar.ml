(** Bit-parallel multi-replica Metropolis kernel (multi-spin coding).

    Up to 64 independent SA replicas ("lanes") advance through one CSR row
    walk at a time: variable [i]'s spin across all lanes packs into one
    64-bit word (two native-int halves, so the hot loop never boxes an
    [int64]), while each lane keeps a small integer local-field
    accumulator.  Couplings quantize to integer levels ([quantize]), which
    turns Metropolis acceptance into an integer compare against the
    per-sweep threshold tables of {!Schedule.acceptance_tables} — no
    [exp], no float multiply, and a {!Rng.Lanes} draw only for uphill
    moves that a cold table has not already rejected.

    Lane independence is the load-bearing contract: a lane's trajectory is
    a pure function of (quantized problem, acceptance tables, visit order,
    lane seed).  Lanes share only read-only state, so lane [l] of a packed
    block is bit-identical to {!anneal_lane} run alone with the same
    derived seed — the property test in [test/test_bitpar.ml], and the
    reason a block with 17 live lanes equals the first 17 lanes of a
    64-lane block. *)

open Qac_ising

let max_lanes = 64

(* Lanes 0-31 live in the "lo" native word, 32-63 in "hi": OCaml's int64
   array elements are boxed, so a packed word is stored as two int halves
   and only materialized as an int64 at the API boundary. *)
let half = 32

(* --- Quantization ----------------------------------------------------------- *)

type quantized = {
  problem : Problem.t;
  eps : float;
  qh : int array;
  qweight : int array;
  max_level : int;
}

let default_resolution = 128

let quantize ?(resolution = default_resolution) (p : Problem.t) =
  if resolution < 1 then invalid_arg "Bitpar.quantize: resolution < 1";
  let maxc =
    Float.max (Problem.max_abs_h p)
      (Float.max (Float.abs (Problem.max_j p)) (Float.abs (Problem.min_j p)))
  in
  let eps = if maxc = 0.0 then 1.0 else maxc /. float_of_int resolution in
  let quant v = int_of_float (Float.round (v /. eps)) in
  let qh = Array.map quant p.Problem.h in
  let qweight = Array.map quant p.Problem.weight in
  let max_level = ref 1 in
  for i = 0 to p.Problem.num_vars - 1 do
    let f = ref (abs qh.(i)) in
    for k = p.Problem.row_start.(i) to p.Problem.row_start.(i + 1) - 1 do
      f := !f + abs qweight.(k)
    done;
    if !f > !max_level then max_level := !f
  done;
  { problem = p; eps; qh; qweight; max_level = !max_level }

let delta_unit q = 2.0 *. q.eps

let acceptance q schedule ~num_sweeps =
  Schedule.acceptance_tables schedule ~num_steps:num_sweeps
    ~delta_unit:(delta_unit q) ~max_level:q.max_level

(* --- Seed derivation --------------------------------------------------------- *)

(* Per-block plan: the visit order (shared by every lane of the block, one
   shuffle per block as in [Sa.anneal_one]) comes first from the block rng,
   then one derived seed per lane.  Each lane then expands its own seed
   into initial spins plus a {!Rng.Lanes} stream, so the plan alone pins
   every lane's trajectory. *)
let block_plan ~num_vars ~lanes ~block_seed =
  if lanes < 1 || lanes > max_lanes then
    invalid_arg "Bitpar.block_plan: lanes must be in [1, 64]";
  let rng = Rng.create block_seed in
  let order = Array.init num_vars (fun i -> i) in
  Rng.shuffle rng order;
  let lane_seeds = Array.init lanes (fun _ -> Rng.next_seed rng) in
  (order, lane_seeds)

let lane_init (q : quantized) lane_seed =
  let n = q.problem.Problem.num_vars in
  let lane_rng = Rng.create lane_seed in
  let spins = Rng.spins lane_rng n in
  let draw_seed = Rng.next_seed lane_rng in
  (spins, draw_seed)

(* --- Scalar lane reference kernel ------------------------------------------- *)

(* One lane, annealed with plain scalar code over the same quantized
   integer dynamics: the comparator for the packed kernel's equivalence
   tests and the fallback for odd jobs.  Deliberately shares no packing
   logic with [anneal_block] — only the seed derivation, the tables, and
   the draw stream. *)
let anneal_lane (q : quantized) ~(acceptance : Schedule.acceptance) ~order ~lane_seed =
  let p = q.problem in
  let n = p.Problem.num_vars in
  let row_start = p.Problem.row_start and col = p.Problem.col in
  let qw = q.qweight in
  let spins, draw_seed = lane_init q lane_seed in
  let lrng = Rng.Lanes.of_seeds [| draw_seed |] in
  let fields =
    Array.init n (fun i ->
        let f = ref q.qh.(i) in
        for k = row_start.(i) to row_start.(i + 1) - 1 do
          f := !f + (qw.(k) * spins.(col.(k)))
        done;
        !f)
  in
  for step = 0 to acceptance.Schedule.num_steps - 1 do
    let table = acceptance.Schedule.thresholds.(step) in
    let len = Array.length table in
    for idx = 0 to n - 1 do
      let i = order.(idx) in
      let s = spins.(i) in
      let k = -s * fields.(i) in
      if k <= 0 || (k < len && Rng.Lanes.draw lrng 0 < table.(k)) then begin
        spins.(i) <- -s;
        let step_j = -2 * s in
        for e = row_start.(i) to row_start.(i + 1) - 1 do
          let j = col.(e) in
          fields.(j) <- fields.(j) + (step_j * qw.(e))
        done
      end
    done
  done;
  spins

(* --- Packed block kernel ----------------------------------------------------- *)

type block_result = {
  reads : Problem.spin array array;
      (** lane-indexed final configurations; a single entry (lane 0's
          partial state) when the block timed out mid-anneal *)
  timed_out : bool;
}

let expired deadline =
  match deadline with
  | None -> false
  | Some d -> Unix.gettimeofday () > d

(* Extract lane [l]'s +-1 configuration from the packed words. *)
let lane_spins ~num_vars ~lo ~hi l =
  if l < half then
    Array.init num_vars (fun i -> if (lo.(i) lsr l) land 1 = 1 then 1 else -1)
  else
    let l = l - half in
    Array.init num_vars (fun i -> if (hi.(i) lsr l) land 1 = 1 then 1 else -1)

let anneal_block ?deadline (q : quantized) ~(acceptance : Schedule.acceptance)
    ~lanes ~block_seed =
  let p = q.problem in
  let n = p.Problem.num_vars in
  let order, lane_seeds = block_plan ~num_vars:n ~lanes ~block_seed in
  let row_start = p.Problem.row_start and col = p.Problem.col in
  let qw = q.qweight in
  let lanes_lo = min lanes half in
  let lanes_hi = lanes - lanes_lo in
  (* Packed spins: bit [l] of [lo.(i)] (or [l - 32] of [hi.(i)]) set means
     lane [l] holds spin +1 at variable [i]. *)
  let lo = Array.make n 0 and hi = Array.make n 0 in
  (* Per-lane integer local fields, lane-minor: [fields.(i * lanes + l)]. *)
  let fields = Array.make (n * lanes) 0 in
  let draw_seeds = Array.make lanes 0 in
  Array.iteri
    (fun l seed ->
       let spins, draw_seed = lane_init q seed in
       draw_seeds.(l) <- draw_seed;
       if l < half then
         Array.iteri (fun i s -> if s > 0 then lo.(i) <- lo.(i) lor (1 lsl l)) spins
       else begin
         let b = l - half in
         Array.iteri (fun i s -> if s > 0 then hi.(i) <- hi.(i) lor (1 lsl b)) spins
       end)
    lane_seeds;
  for i = 0 to n - 1 do
    let base = i * lanes in
    for l = 0 to lanes - 1 do
      fields.(base + l) <- q.qh.(i)
    done;
    for e = row_start.(i) to row_start.(i + 1) - 1 do
      let j = col.(e) in
      let w = qw.(e) in
      let jl = lo.(j) and jh = hi.(j) in
      for l = 0 to lanes_lo - 1 do
        (* s_j = +-1 from bit l of the neighbor's word *)
        let s = ((jl lsr l) land 1 * 2) - 1 in
        fields.(base + l) <- fields.(base + l) + (w * s)
      done;
      for l = 0 to lanes_hi - 1 do
        let s = ((jh lsr l) land 1 * 2) - 1 in
        fields.(base + half + l) <- fields.(base + half + l) + (w * s)
      done
    done
  done;
  let lrng = Rng.Lanes.of_seeds draw_seeds in
  let states = Rng.Lanes.states lrng in
  let rinc = Rng.Lanes.increment in
  let rmul = 0x2545F4914F6CDD1D in
  (* Scratch for accepted lanes of one variable: lane index + field step. *)
  let acc_lane = Array.make lanes 0 in
  let acc_step = Array.make lanes 0 in
  let num_sweeps = acceptance.Schedule.num_steps in
  let timed_out = ref false in
  let step = ref 0 in
  while !step < num_sweeps && not !timed_out do
    if expired deadline then timed_out := true
    else begin
      let table = acceptance.Schedule.thresholds.(!step) in
      let len = Array.length table in
      for idx = 0 to n - 1 do
        let i = Array.unsafe_get order idx in
        let base = i * lanes in
        (* Acceptance pass: per lane, delta in quantization levels is
           [k = -s * field]; accept downhill outright, reject past the
           table horizon without consuming randomness, draw otherwise.
           The draw is [Rng.Lanes.draw] inlined by hand (the equivalence
           tests against [anneal_lane] pin the two paths together). *)
        let wl = Array.unsafe_get lo i in
        let ml = ref 0 in
        for l = 0 to lanes_lo - 1 do
          let f = Array.unsafe_get fields (base + l) in
          let neg = -((wl lsr l) land 1) in
          let k = (f lxor neg) - neg in
          if k <= 0 then ml := !ml lor (1 lsl l)
          else if k < len then begin
            let s = Array.unsafe_get states l + rinc in
            Array.unsafe_set states l s;
            let z = s lxor (s lsr 30) in
            let z = z * rmul in
            let z = z lxor (z lsr 27) in
            if z lsr 2 < Array.unsafe_get table k then ml := !ml lor (1 lsl l)
          end
        done;
        let wh = Array.unsafe_get hi i in
        let mh = ref 0 in
        for l = 0 to lanes_hi - 1 do
          let f = Array.unsafe_get fields (base + half + l) in
          let neg = -((wh lsr l) land 1) in
          let k = (f lxor neg) - neg in
          if k <= 0 then mh := !mh lor (1 lsl l)
          else if k < len then begin
            let s = Array.unsafe_get states (half + l) + rinc in
            Array.unsafe_set states (half + l) s;
            let z = s lxor (s lsr 30) in
            let z = z * rmul in
            let z = z lxor (z lsr 27) in
            if z lsr 2 < Array.unsafe_get table k then mh := !mh lor (1 lsl l)
          end
        done;
        let ml = !ml and mh = !mh in
        if ml lor mh <> 0 then begin
          (* Flip pass: XOR the accept masks into the packed words, then
             push each accepted lane's field change (+-2 * qw) through the
             CSR row, edge-outer so one (col, weight) load serves every
             accepted lane. *)
          Array.unsafe_set lo i (wl lxor ml);
          Array.unsafe_set hi i (wh lxor mh);
          let count = ref 0 in
          if ml <> 0 then
            for l = 0 to lanes_lo - 1 do
              if (ml lsr l) land 1 = 1 then begin
                let c = !count in
                Array.unsafe_set acc_lane c l;
                (* old spin +1 (bit set): neighbors lose 2w; else gain *)
                Array.unsafe_set acc_step c (2 - ((wl lsr l) land 1 * 4));
                count := c + 1
              end
            done;
          if mh <> 0 then
            for l = 0 to lanes_hi - 1 do
              if (mh lsr l) land 1 = 1 then begin
                let c = !count in
                Array.unsafe_set acc_lane c (half + l);
                Array.unsafe_set acc_step c (2 - ((wh lsr l) land 1 * 4));
                count := c + 1
              end
            done;
          let count = !count in
          for e = Array.unsafe_get row_start i to Array.unsafe_get row_start (i + 1) - 1
          do
            let j = Array.unsafe_get col e in
            let w = Array.unsafe_get qw e in
            let bj = j * lanes in
            for c = 0 to count - 1 do
              let slot = bj + Array.unsafe_get acc_lane c in
              Array.unsafe_set fields slot
                (Array.unsafe_get fields slot + (Array.unsafe_get acc_step c * w))
            done
          done
        end
      done;
      incr step
    end
  done;
  let reads =
    if !timed_out then [| lane_spins ~num_vars:n ~lo ~hi 0 |]
    else Array.init lanes (lane_spins ~num_vars:n ~lo ~hi)
  in
  { reads; timed_out = !timed_out }
