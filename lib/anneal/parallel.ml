(** Domain-parallel sampling.

    [num_reads] is split into fixed-size chunks; chunk [i] gets a seed
    derived from the base seed by position, so the set of reads depends
    only on [(seed, num_reads, chunk_size)] — never on how many domains
    execute the chunks.  Running with [~num_threads:1] therefore produces
    exactly the same response (up to wall time) as [~num_threads:8], and
    results are reproducible across machines. *)

(* Small enough to load-balance across domains, large enough to amortize
   per-chunk solver setup (schedule construction etc.). *)
let default_chunk_size = 16

type chunk = { chunk_seed : int; chunk_reads : int }

let chunks ?(chunk_size = default_chunk_size) ~seed ~num_reads () =
  if chunk_size <= 0 then invalid_arg "Parallel.chunks: chunk_size must be positive";
  let rng = Rng.create seed in
  let rec go remaining acc =
    if remaining <= 0 then List.rev acc
    else
      let n = min chunk_size remaining in
      let s = Rng.next_seed rng in
      go (remaining - n) ({ chunk_seed = s; chunk_reads = n } :: acc)
  in
  go num_reads []

(* Shared domain pool: run [f 0 .. f (n-1)], work-stealing task indices off
   a shared atomic counter across [num_workers] domains (the calling domain
   included).  [f] must tolerate concurrent execution of distinct indices;
   index results land wherever [f] writes them, so completion order cannot
   leak into the output.  Used by the read-batch samplers below and by the
   minor embedder's parallel tries ([Qac_embed.Cmr]). *)
let run_tasks ?(num_workers = 1) n f =
  if n > 0 then begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          f i;
          loop ()
        end
      in
      loop ()
    in
    let workers = max 1 (min num_workers n) in
    if workers <= 1 then worker ()
    else begin
      let others = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join others
    end
  end

(* The deadline is one absolute instant shared by every chunk (not a
   per-chunk budget): chunks that start after it fall through immediately
   with their first partial read, so a timed-out batch still returns
   best-effort results from every chunk that got to run. *)
let sample ?(num_threads = 1) ?chunk_size ~seed ~num_reads sample_chunk problem =
  let chunks = Array.of_list (chunks ?chunk_size ~seed ~num_reads ()) in
  let results = Array.make (Array.length chunks) None in
  let start = Unix.gettimeofday () in
  run_tasks ~num_workers:num_threads (Array.length chunks) (fun i ->
      let c = chunks.(i) in
      results.(i) <- Some (sample_chunk ~seed:c.chunk_seed ~num_reads:c.chunk_reads));
  let elapsed_seconds = Unix.gettimeofday () -. start in
  let responses = Array.to_list results |> List.filter_map Fun.id in
  (* Merge re-aggregates and sorts by (energy, spins): chunk execution
     order cannot leak into the result.  Report wall time, not the sum of
     per-chunk times, so thread scaling is visible to benchmarks. *)
  { (Sampler.merge problem responses) with Sampler.elapsed_seconds }

(* SA chunks default to one full 64-lane block ([Bitpar.max_lanes]) so a
   chunk is exactly one packed block: the block seed derives from the chunk
   seed positionally, keeping reads independent of the thread count. *)
let sample_sa ?num_threads ?(chunk_size = Bitpar.max_lanes) ?deadline ~params problem =
  sample ?num_threads ~chunk_size ~seed:params.Sa.seed ~num_reads:params.Sa.num_reads
    (fun ~seed ~num_reads ->
       Sa.sample ~params:{ params with Sa.seed; num_reads } ?deadline problem)
    problem

let sample_sqa ?num_threads ?chunk_size ?deadline ~params problem =
  sample ?num_threads ?chunk_size ~seed:params.Sqa.seed ~num_reads:params.Sqa.num_reads
    (fun ~seed ~num_reads ->
       Sqa.sample ~params:{ params with Sqa.seed; num_reads } ?deadline problem)
    problem

let sample_tabu ?num_threads ?chunk_size ?deadline ~params problem =
  sample ?num_threads ?chunk_size ~seed:params.Tabu.seed
    ~num_reads:params.Tabu.num_restarts
    (fun ~seed ~num_reads ->
       Tabu.sample ~params:{ params with Tabu.seed; num_restarts = num_reads } ?deadline
         problem)
    problem
