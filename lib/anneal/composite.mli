(** Composable sample post-processors (the dwave-ocean "composite" idiom):
    improve a solver's response without touching the solver.  All
    composites preserve the {!Sampler.response} invariants — samples stay
    aggregated, sorted by (energy, configuration), and [num_reads] is
    conserved. *)

type postprocess = [ `None | `Polish | `Gauge ]

val postprocess_of_string : string -> postprocess option
(** ["none"] / ["polish"] / ["gauge"]; [None] otherwise (CLI parsing). *)

val string_of_postprocess : postprocess -> string

val polish :
  ?deadline:float -> Qac_ising.Problem.t -> Sampler.response -> Sampler.response
(** Steepest-descend every sample to its local minimum ({!Greedy});
    configurations that polish into the same minimum merge, with summed
    occurrence counts.  [deadline] (absolute instant) is checked before
    each sample's descent — samples not reached in time pass through
    unpolished. *)

val gauge_transform :
  seed:int -> Qac_ising.Problem.t -> Qac_ising.Problem.spin array * Qac_ising.Problem.t
(** [(g, p')] where [h' = g_i h_i] and [J' = g_i g_j J_ij]: the energy
    landscape is unchanged up to the relabeling [s -> g . s], and energies
    are bit-identical (every factor is a +-1 multiply). *)

val default_gauge_seed : int

val gauge :
  ?seed:int ->
  Qac_ising.Problem.t ->
  solve:(Qac_ising.Problem.t -> Sampler.response) ->
  Sampler.response
(** Run [solve] on the gauge-transformed problem and map the samples back
    ([s_i -> g_i s_i]); energies carry over exactly. *)

val wrap :
  postprocess:postprocess ->
  ?gauge_seed:int ->
  ?deadline:float ->
  Qac_ising.Problem.t ->
  solve:(Qac_ising.Problem.t -> Sampler.response) ->
  Sampler.response
(** Wire the chosen post-processing around a base solve: [`Gauge]
    transforms the problem before solving, [`Polish] descends the response
    after, [`None] is the identity. *)
