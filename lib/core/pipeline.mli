(** The end-to-end compiler of the paper: classical Verilog code down to a
    (logical or physical) quadratic pseudo-Boolean function, executed
    forward or backward on a classical annealing substrate, with results
    reported in terms of the source program's ports.

    Stages (section 4): Verilog -> elaborated module -> optimized gate
    netlist (time-unrolled when sequential) -> EDIF -> QMASM -> logical
    Ising problem -> (optionally) minor-embedded physical Ising problem ->
    samples -> named, verified solutions.

    Every stage failure raises [Qac_diag.Diag.Error], tagged with the stage
    that failed (["verilog-parse"], ["qmasm-assemble"], ["pipeline"], ...).
    Pass a [Qac_diag.Trace.t] to [compile]/[run] to record one timed span
    per stage with size counters (gates, nets, statements, logical vars and
    terms, physical qubits, max chain length). *)

type t = {
  verilog_src : string;
  elaborated : Qac_verilog.Elab.t;
  netlist : Qac_netlist.Netlist.t;  (** optimized; combinational (post-unroll) *)
  ff_names : string array;
  steps : int option;  (** unroll depth used, for sequential sources *)
  edif : string;
  qmasm_src : string;
  statements : Qac_qmasm.Ast.stmt list;  (** flat (macro-expanded) program *)
  program : Qac_qmasm.Assemble.t;  (** the logical Ising problem + symbols *)
  options : Qac_qmasm.Assemble.options;
      (** assembly options the program was compiled with; [run] reuses them
          when re-assembling with pins *)
}

(** [compile ?top ?steps ?optimize ?options ?trace src] runs the front half.
    Sequential sources require [steps] (the unroll depth, section 4.3.3).
    [options] control QMASM assembly; the default merges chains (qmasm's
    variable-merging optimization), which is what the paper's section 6.1
    variable counts reflect.  [trace] records the spans
    parse, elab, synth, unroll, edif-roundtrip, e2q, expand, assemble. *)
val compile :
  ?top:string ->
  ?steps:int ->
  ?optimize:bool ->
  ?options:Qac_qmasm.Assemble.options ->
  ?trace:Qac_diag.Trace.t ->
  string ->
  t

val default_options : Qac_qmasm.Assemble.options
(** merge_chains = true. *)

(** {1 Compile memoization}

    The front half is a pure function of (source, top, steps, optimize,
    options), so repeated compiles of the same source — the serving tier's
    common case — can return the already-compiled value by reference.
    Mutex-guarded; safe to share across domains. *)

type compile_cache

val compile_cache_create : unit -> compile_cache

val shared_compile_cache : unit -> compile_cache
(** The process-wide cache {!compile_cached} defaults to. *)

type compile_cache_stats = {
  hits : int;
  misses : int;
  entries : int;
}

val compile_cache_stats : compile_cache -> compile_cache_stats

val compile_cached :
  ?cache:compile_cache ->
  ?top:string ->
  ?steps:int ->
  ?optimize:bool ->
  ?options:Qac_qmasm.Assemble.options ->
  ?trace:Qac_diag.Trace.t ->
  string ->
  t
(** Like {!compile}, but memoized on a digest of the source plus the
    options.  A hit (miss) increments the ["compile-cache-hits"]
    (["compile-cache-misses"]) trace summary, accumulating across calls
    that share a trace; a miss additionally records the usual compile
    spans.  Concurrent misses on one key may compile twice — both produce
    identical values and the compile itself runs outside the cache lock. *)

(** {1 Execution} *)

type solver =
  | Exact_solver
  | Sa of Qac_anneal.Sa.params
  | Sqa of Qac_anneal.Sqa.params  (** path-integral simulated quantum annealing *)
  | Tabu of Qac_anneal.Tabu.params
  | Qbsolv of Qac_anneal.Qbsolv.params

type target =
  | Logical  (** solve the logical problem directly *)
  | Physical of {
      graph : Qac_chimera.Chimera.t;
      embed_params : Qac_embed.Cmr.params option;
      chain_strength : float option;
      roof_duality : bool;  (** elide a-priori-determined qubits (section 4.4) *)
    }

val dwave_target : target
(** C16 Chimera, default embedder, auto chain strength, roof duality off. *)

(** [dispatch_solver ?num_threads ?deadline solver problem] runs one solver
    on one problem.  SA/SQA/tabu read batches go through
    {!Qac_anneal.Parallel} at every thread count, so the sample set depends
    only on the seed — the same results whether [num_threads] is 1 (the
    default) or many.  Exact and qbsolv solvers always run sequentially.
    [deadline] (absolute [Unix.gettimeofday] instant) makes the annealers
    return best-so-far with [Sampler.response.timed_out] set; the exact
    solver ignores it (its size cap already bounds runtime). *)
val dispatch_solver :
  ?num_threads:int ->
  ?deadline:float ->
  solver ->
  Qac_ising.Problem.t ->
  Qac_anneal.Sampler.response

type solution = {
  ports : (string * int) list;  (** every module port, as an integer *)
  assignment : (string * bool) list;  (** all visible symbols *)
  energy : float;  (** logical energy *)
  num_occurrences : int;
  valid : bool;
      (** the section 5.1 check: the port values form a consistent
          input/output relation when the netlist is run forward *)
  assertions_ok : bool;
      (** every QMASM [!assert] (cell-level consistency) holds; a sample can
          be port-valid while an internal cell sits in an excited state *)
  pins_respected : bool;
      (** pins are energetic biases, not hard constraints; a sample may
          satisfy the circuit relation yet drift off a pinned value *)
  broken_chains : int;  (** 0 for logical runs *)
}

type run_result = {
  solutions : solution list;  (** distinct, ascending energy *)
  num_reads : int;
  elapsed_seconds : float;
  num_logical_vars : int;
  num_physical_qubits : int option;  (** [Some] for physical runs *)
  assertion_failures : int;  (** solutions violating a QMASM [!assert] *)
  timed_out : bool;
      (** the solve stage hit its [timeout_ms] deadline; solutions are the
          sampler's best-so-far partial results *)
}

(** [run t ~pins ~solver ~target] executes the compiled program.  [pins]
    fixes ports (or port bits, via ["C[3]"] names) to integer values —
    forward execution pins inputs, backward execution pins outputs
    (section 4.3.6).  Solutions are verified against the netlist and
    reported whether valid or not (the paper: invalid samples are detected
    in polynomial time and discarded by the caller).
    [pin_source] is raw QMASM pin text (one ["name := value"] per line,
    binary strings sized by the bracket range, as on the qmasm command
    line); [pins] is the programmatic integer form.
    [trace] records the spans assemble, (qpbo, embed — physical targets
    only,) solve, unembed, verify.  [num_threads] is forwarded to
    {!dispatch_solver} and — when [embed_params] is not given — to the
    embedder's parallel tries ({!Qac_embed.Cmr.params.num_threads}).
    Physical targets consult [embed_cache] (default: the process-wide
    {!Qac_embed.Cache.shared}) before embedding: a hit returns the cached
    embedding, skips the [embed] span, and records an [embed-cache-hit]
    counter; a miss records [embed-cache-miss] and populates the cache.
    [timeout_ms] bounds the solve stage: the absolute deadline is computed
    when solving starts, samplers return best-so-far on expiry, and
    [run_result.timed_out] (plus a [timed-out] counter on the solve span)
    reports whether it was hit.
    [postprocess] ({!Qac_anneal.Composite.postprocess}, default [`None])
    wraps the solve: [`Polish] steepest-descends every sample (the
    deadline bounds the polish loop too), [`Gauge] solves under a
    spin-reversal transform.  [chain_break]
    ({!Qac_embed.Embedding.chain_break}, default [Vote]) sets how broken
    chains resolve on physical targets: [Discard] drops broken reads
    (falling back to voting when every read is broken, with a
    [discarded-reads] counter on the unembed span), [Polish]
    greedy-repairs the physical configuration before voting. *)
val run :
  ?pins:(string * int) list ->
  ?pin_source:string ->
  ?trace:Qac_diag.Trace.t ->
  ?num_threads:int ->
  ?embed_cache:Qac_embed.Cache.t ->
  ?timeout_ms:float ->
  ?postprocess:Qac_anneal.Composite.postprocess ->
  ?chain_break:Qac_embed.Embedding.chain_break ->
  solver:solver ->
  target:target ->
  t ->
  run_result

val assemble_with_pins :
  ?pins:(string * int) list -> ?pin_source:string -> t -> Qac_qmasm.Assemble.t
(** The assemble stage of {!run} alone: re-assemble the program with pins
    appended, reusing the compile-time assembly options.  Lets callers (the
    batch server) build the pinned logical problem without solving. *)

val solution_of_spins :
  t ->
  program:Qac_qmasm.Assemble.t ->
  ?num_occurrences:int ->
  ?broken_chains:int ->
  Qac_ising.Problem.spin array ->
  solution
(** Name and verify one logical configuration against [program] (as built
    by {!assemble_with_pins}): port integers, the netlist relation check,
    assertion and pin checks.  The verify stage of {!run} applies this to
    every distinct read. *)

val valid_solutions : run_result -> solution list
(** Solutions that satisfy the circuit relation, every assertion, and every
    pin — i.e. the answers one would keep after the polynomial-time check of
    section 5.1. *)

(** {1 Introspection for the section 6.1 metrics} *)

type static_properties = {
  verilog_lines : int;
  edif_lines : int;
  qmasm_lines : int;  (** excluding the standard-cell library *)
  stdcell_lines : int;
  logical_vars : int;
  logical_terms : int;
}

val static_properties : t -> static_properties

val port_width : t -> string -> int option
