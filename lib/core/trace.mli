(** Span-based tracing for the compilation/execution pipeline.

    [with_span t "synth" (fun () -> ...)] records the wall time of the
    callback under the name ["synth"]; [counter t "gates" n] attaches a
    named integer to the innermost open span.  A trace accumulates
    completed spans in execution order and exports them as aligned text
    or JSON. *)

type span = {
  name : string;
  elapsed_seconds : float;
  counters : (string * int) list;  (** in the order first set *)
}

type t

val create : unit -> t

val with_span : t -> string -> (unit -> 'a) -> 'a
(** Time [f] under a named span.  Spans nest; the span is recorded even
    when [f] raises. *)

val counter : t -> string -> int -> unit
(** Attach (or overwrite) a counter on the innermost open span. *)

val spans : t -> span list
(** Completed spans, in completion order. *)

val find_span : t -> string -> span option
val find_counter : t -> string -> string -> int option
val total_seconds : t -> float

(** No-op variants for optionally-traced code paths. *)

val with_span_opt : t option -> string -> (unit -> 'a) -> 'a
val counter_opt : t option -> string -> int -> unit

val pp : Format.formatter -> t -> unit
val to_text : t -> string

val to_json : t -> string
(** [{"total_seconds":..., "spans":[{"name":..., "elapsed_seconds":...,
    "counters":{...}}, ...]}]. *)
