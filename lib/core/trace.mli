(** Span-based tracing for the compilation/execution pipeline.

    [with_span t "synth" (fun () -> ...)] records the wall time of the
    callback under the name ["synth"]; [counter t "gates" n] attaches a
    named integer to the innermost open span.  A trace accumulates
    completed spans in execution order and exports them as aligned text
    or JSON. *)

type span = {
  name : string;
  elapsed_seconds : float;
  counters : (string * int) list;  (** in the order first set *)
}

type t

val create : unit -> t

val with_span : t -> string -> (unit -> 'a) -> 'a
(** Time [f] under a named span.  Spans nest; the span is recorded even
    when [f] raises. *)

val counter : t -> string -> int -> unit
(** Attach (or overwrite) a counter on the innermost open span. *)

val spans : t -> span list
(** Completed spans, in completion order. *)

val find_span : t -> string -> span option
val find_counter : t -> string -> string -> int option
val total_seconds : t -> float

val set_summary : t -> string -> int -> unit
(** Set (or overwrite) a trace-wide summary value — a fact about the whole
    run (cache hit totals, tiler occupancy, ...) rather than any one span.
    Summaries export as a top-level ["summary"] object in {!to_json} and a
    trailing [summary:] line in {!pp}. *)

val summary : t -> (string * int) list
(** Summary key/values, in the order first set. *)

val find_summary : t -> string -> int option

(** No-op variants for optionally-traced code paths. *)

val with_span_opt : t option -> string -> (unit -> 'a) -> 'a
val counter_opt : t option -> string -> int -> unit

val pp : Format.formatter -> t -> unit
val to_text : t -> string

val to_json : t -> string
(** [{"total_seconds":..., "summary":{...}, "spans":[{"name":...,
    "elapsed_seconds":..., "counters":{...}}, ...]}]. *)
