(* Geometric bucketing: bucket 0 is underflow [0, min); bucket i for
   1 <= i <= n covers [min * r^(i-1), min * r^i); bucket n+1 is overflow
   [max, inf).  r = 10^(1/buckets_per_decade). *)

type t = {
  min_value : float;
  max_value : float;
  buckets_per_decade : int;
  ratio : float;
  inv_log_ratio : float;  (* 1 / ln r, for O(1) value->bucket *)
  counts : int array;  (* length = interior buckets + 2 *)
  mutable total : int;
  mutable value_sum : float;
  mutable value_max : float;
}

let create ?(min_value = 1e-6) ?(max_value = 1e4) ?(buckets_per_decade = 10) () =
  if not (min_value > 0.0 && max_value > min_value) then
    invalid_arg "Hist.create: need 0 < min_value < max_value";
  if buckets_per_decade < 1 then
    invalid_arg "Hist.create: buckets_per_decade must be >= 1";
  let decades = log10 (max_value /. min_value) in
  let interior = int_of_float (ceil (decades *. float_of_int buckets_per_decade)) in
  let ratio = 10.0 ** (1.0 /. float_of_int buckets_per_decade) in
  { min_value;
    max_value;
    buckets_per_decade;
    ratio;
    inv_log_ratio = 1.0 /. log ratio;
    counts = Array.make (interior + 2) 0;
    total = 0;
    value_sum = 0.0;
    value_max = 0.0 }

let num_buckets t = Array.length t.counts

let index t v =
  if v < t.min_value then 0
  else if v >= t.max_value then num_buckets t - 1
  else begin
    (* floor can land one bucket off at exact bound values because of
       rounding in log; clamp into the interior range. *)
    let i = 1 + int_of_float (log (v /. t.min_value) *. t.inv_log_ratio) in
    let i = if i < 1 then 1 else if i > num_buckets t - 2 then num_buckets t - 2 else i in
    i
  end

let lower_bound t i =
  if i = 0 then 0.0 else t.min_value *. (t.ratio ** float_of_int (i - 1))

let upper_bound t i =
  if i = 0 then t.min_value
  else if i = num_buckets t - 1 then infinity
  else t.min_value *. (t.ratio ** float_of_int i)

(* The value a bucket stands for when quoted as a quantile: the geometric
   midpoint for interior buckets, the clamp bound for the edge buckets. *)
let representative t i =
  if i = 0 then t.min_value
  else if i = num_buckets t - 1 then t.max_value
  else sqrt (lower_bound t i *. upper_bound t i)

let add t v =
  let i = index t v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  t.value_sum <- t.value_sum +. v;
  if v > t.value_max then t.value_max <- v

let count t = t.total
let sum t = t.value_sum
let mean t = if t.total = 0 then 0.0 else t.value_sum /. float_of_int t.total
let max_seen t = t.value_max
let bucket_ratio t = t.ratio

let quantile t q =
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Hist.quantile: q outside [0, 1]";
  if t.total = 0 then 0.0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int t.total))) in
    let i = ref 0 and seen = ref 0 in
    while !seen < rank && !i < num_buckets t do
      seen := !seen + t.counts.(!i);
      if !seen < rank then incr i
    done;
    representative t (min !i (num_buckets t - 1))
  end

let p50 t = quantile t 0.50
let p90 t = quantile t 0.90
let p99 t = quantile t 0.99

let same_layout a b =
  a.min_value = b.min_value && a.max_value = b.max_value
  && a.buckets_per_decade = b.buckets_per_decade

let merge_into dst src =
  if not (same_layout dst src) then
    invalid_arg "Hist.merge_into: bucket layouts differ";
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.total <- dst.total + src.total;
  dst.value_sum <- dst.value_sum +. src.value_sum;
  if src.value_max > dst.value_max then dst.value_max <- src.value_max

let copy t = { t with counts = Array.copy t.counts }

let clear t =
  Array.fill t.counts 0 (num_buckets t) 0;
  t.total <- 0;
  t.value_sum <- 0.0;
  t.value_max <- 0.0

let buckets t =
  let out = ref [] in
  for i = num_buckets t - 1 downto 0 do
    if t.counts.(i) > 0 then
      out := (lower_bound t i, upper_bound t i, t.counts.(i)) :: !out
  done;
  !out
