(** Structured diagnostics shared by every pipeline stage.

    The single error channel of the toolchain (replacing the historical
    per-module [exception Error of string] copies): a diagnostic carries
    the stage that raised it, the message, and an optional source line. *)

type t = {
  stage : string;  (** e.g. ["verilog-parse"], ["qmasm-assemble"], ["embed"] *)
  message : string;
  line : int option;  (** 1-based line in the stage's input, when known *)
}

exception Error of t

val make : ?line:int -> stage:string -> string -> t

(** [error ~stage fmt ...] formats a message and raises [Error]. *)
val error : ?line:int -> stage:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val errorf : ?line:int -> stage:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Alias for [error]. *)

val stage : t -> string
val message : t -> string
val line : t -> int option

val to_string : t -> string
(** ["stage: message"] or ["stage: line N: message"]. *)

val pp : Format.formatter -> t -> unit

val with_line : int -> t -> t

(** [locate ~line f] runs [f], attaching [line] to any escaping
    diagnostic that does not already carry one. *)
val locate : line:int -> (unit -> 'a) -> 'a

val protect : (unit -> 'a) -> ('a, t) result
(** Run a stage, capturing its diagnostic as a [result]. *)

val get : ('a, t) result -> 'a
(** Inverse of [protect]: unwrap or re-raise. *)
