(** Log-bucketed histogram for latency-style measurements.

    Values land in geometrically spaced buckets — [buckets_per_decade] per
    factor of ten between [min_value] and [max_value], plus an underflow and
    an overflow bucket — so a fixed, small amount of memory covers many
    orders of magnitude with bounded {e relative} error: a reported quantile
    is within one bucket ratio ([10^(1/buckets_per_decade)]) of the true
    value.  That is the standard shape for serving-latency metrics
    (HdrHistogram, Prometheus classic buckets): tails stay resolved without
    storing every observation.

    Not thread-safe; callers synchronize (the serve scheduler records under
    its own mutex and hands out {!copy} snapshots). *)

type t

val create :
  ?min_value:float -> ?max_value:float -> ?buckets_per_decade:int -> unit -> t
(** Defaults: [min_value = 1e-6], [max_value = 1e4] (microseconds to hours,
    in seconds), [buckets_per_decade = 10].  Raises [Invalid_argument] on a
    non-positive range or rate. *)

val add : t -> float -> unit
(** Record one observation.  Values below [min_value] (including negatives)
    clamp into the underflow bucket, values at or above [max_value] into the
    overflow bucket. *)

val count : t -> int
val sum : t -> float
val mean : t -> float
(** 0 when empty. *)

val max_seen : t -> float
(** Largest value observed (exact, not bucketed); 0 when empty. *)

val quantile : t -> float -> float
(** [quantile t q] for [0 <= q <= 1]: the representative value (geometric
    bucket midpoint) of the bucket holding the [ceil (q * count)]-th
    smallest observation.  0 when empty.  Raises [Invalid_argument] on a
    [q] outside [0, 1]. *)

val p50 : t -> float
val p90 : t -> float
val p99 : t -> float

val bucket_ratio : t -> float
(** The geometric growth factor between bucket bounds — the relative
    resolution of {!quantile}. *)

val merge_into : t -> t -> unit
(** [merge_into dst src] adds [src]'s counts into [dst].  Raises
    [Invalid_argument] when the bucket layouts differ. *)

val copy : t -> t

val clear : t -> unit

val buckets : t -> (float * float * int) list
(** Non-empty buckets as [(lower, upper, count)] in ascending order — the
    underflow bucket reports [(0, min_value, n)], the overflow bucket
    [(max_value, infinity, n)].  The raw export used by metrics surfaces. *)
