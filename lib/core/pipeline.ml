module Diag = Qac_diag.Diag
module Trace = Qac_diag.Trace

let error fmt = Diag.error ~stage:"pipeline" fmt

module N = Qac_netlist.Netlist
module Sim = Qac_netlist.Sim
module Passes = Qac_netlist.Passes
module Vlog = Qac_verilog
module Qmasm = Qac_qmasm
module E2Q = Qac_edif2qmasm.Edif2qmasm
module Anneal = Qac_anneal
module Chimera = Qac_chimera.Chimera
module Embedding = Qac_embed.Embedding
module Cmr = Qac_embed.Cmr
module Qpbo = Qac_roofdual.Qpbo
open Qac_ising

type t = {
  verilog_src : string;
  elaborated : Vlog.Elab.t;
  netlist : N.t;
  ff_names : string array;
  steps : int option;
  edif : string;
  qmasm_src : string;
  statements : Qmasm.Ast.stmt list;
  program : Qmasm.Assemble.t;
  options : Qmasm.Assemble.options;
}

let default_options =
  { Qmasm.Assemble.merge_chains = true; chain_strength = None; pin_strength = None }

(* Compile stages (section 4, Fig. 1), each a traced span:
   parse -> elab -> synth -> unroll -> edif-roundtrip -> e2q -> expand
   -> assemble.  Stage failures raise [Diag.Error] tagged at the raising
   stage, so no catch ladder is needed here. *)
let compile ?top ?steps ?(optimize = true) ?(options = default_options) ?trace verilog_src =
  let span name f = Trace.with_span_opt trace name f in
  let count key v = Trace.counter_opt trace key v in
  let design = span "parse" (fun () -> Vlog.Parser.parse_design verilog_src) in
  let elaborated = span "elab" (fun () -> Vlog.Elab.elaborate ?top design) in
  let { Vlog.Synth.netlist; ff_names } =
    span "synth" (fun () ->
        let r = Vlog.Synth.synthesize ~optimize elaborated in
        count "gates" (Array.length r.Vlog.Synth.netlist.N.cells);
        count "nets" r.Vlog.Synth.netlist.N.num_nets;
        r)
  in
  let netlist, steps =
    span "unroll" (fun () ->
        let netlist, steps =
          if N.is_combinational netlist then (netlist, None)
          else
            match steps with
            | None ->
              error
                "module %s is sequential; pass ~steps to unroll it (section 4.3.3)"
                netlist.N.name
            | Some s ->
              let unrolled = Passes.unroll ~ff_names netlist ~steps:s in
              ((if optimize then Passes.optimize unrolled else unrolled), Some s)
        in
        count "steps" (match steps with Some s -> s | None -> 0);
        count "gates" (Array.length netlist.N.cells);
        (netlist, steps))
  in
  let edif, reparsed =
    span "edif-roundtrip" (fun () ->
        let edif = Qac_edif.Edif.to_string netlist in
        (* Round-trip through EDIF, as the paper's toolchain does: the QMASM
           is generated from the parsed EDIF, not the in-memory netlist. *)
        let reparsed = Qac_edif.Edif.of_string edif in
        count "edif-lines" (Qac_edif.Edif.line_count edif);
        (edif, reparsed))
  in
  let qmasm_src = span "e2q" (fun () -> E2Q.convert reparsed) in
  let statements =
    span "expand" (fun () ->
        let stmts =
          Qmasm.Macro.expand ~resolve:E2Q.resolve (Qmasm.Parser.parse_string qmasm_src)
        in
        count "statements" (List.length stmts);
        stmts)
  in
  let program =
    span "assemble" (fun () ->
        let program = Qmasm.Assemble.assemble ~options statements in
        count "logical-vars" program.Qmasm.Assemble.problem.Problem.num_vars;
        count "logical-terms" (Problem.num_terms program.Qmasm.Assemble.problem);
        program)
  in
  { verilog_src;
    elaborated;
    netlist;
    ff_names;
    steps;
    edif;
    qmasm_src;
    statements;
    program;
    options }

(* --- Compile memoization --------------------------------------------------- *)

(* The whole front half is a pure function of (source, top, steps,
   optimize, options), so same-source jobs — the serving tier's common
   case — can skip parse->assemble entirely.  Keyed on a digest of the
   source plus the structural options; the compiled value is immutable and
   shared by reference. *)

type compile_cache = {
  cc_lock : Mutex.t;
  cc_table : (string * string option * int option * bool * Qmasm.Assemble.options, t) Hashtbl.t;
  mutable cc_hits : int;
  mutable cc_misses : int;
}

type compile_cache_stats = {
  hits : int;
  misses : int;
  entries : int;
}

let compile_cache_create () =
  { cc_lock = Mutex.create (); cc_table = Hashtbl.create 16; cc_hits = 0; cc_misses = 0 }

let shared_compile_cache_v = lazy (compile_cache_create ())
let shared_compile_cache () = Lazy.force shared_compile_cache_v

let compile_cache_stats c =
  Mutex.lock c.cc_lock;
  let s = { hits = c.cc_hits; misses = c.cc_misses; entries = Hashtbl.length c.cc_table } in
  Mutex.unlock c.cc_lock;
  s

(* Trace summaries accumulate across compiles within one trace. *)
let bump_summary trace key =
  match trace with
  | None -> ()
  | Some tr ->
    Trace.set_summary tr key (1 + Option.value ~default:0 (Trace.find_summary tr key))

let compile_cached ?cache ?top ?steps ?(optimize = true) ?(options = default_options)
    ?trace verilog_src =
  let c = match cache with Some c -> c | None -> shared_compile_cache () in
  let key = (Digest.string verilog_src, top, steps, optimize, options) in
  Mutex.lock c.cc_lock;
  match Hashtbl.find_opt c.cc_table key with
  | Some t ->
    c.cc_hits <- c.cc_hits + 1;
    Mutex.unlock c.cc_lock;
    bump_summary trace "compile-cache-hits";
    t
  | None ->
    c.cc_misses <- c.cc_misses + 1;
    Mutex.unlock c.cc_lock;
    (* Compile outside the lock: a slow compile must not serialize other
       shards' lookups.  Concurrent same-key misses both compile; last
       write wins with an identical value. *)
    bump_summary trace "compile-cache-misses";
    let t = compile ?top ?steps ~optimize ~options ?trace verilog_src in
    Mutex.lock c.cc_lock;
    Hashtbl.replace c.cc_table key t;
    Mutex.unlock c.cc_lock;
    t

(* --- Pins ----------------------------------------------------------------- *)

let port_width t name =
  match N.find_input t.netlist name with
  | Some nets -> Some (Array.length nets)
  | None ->
    (match N.find_output t.netlist name with
     | Some signals -> Some (Array.length signals)
     | None -> None)

(* A non-negative [value] fits in [width] bits iff shifting out those bits
   leaves nothing.  OCaml ints are 63-bit, so any value fits once
   [width >= Sys.int_size - 1]; never shift by the full width (undefined
   for shifts > int_size, and [1 lsl width] overflows at width 62). *)
let value_in_range ~width value =
  value >= 0 && (width >= Sys.int_size - 1 || value lsr width = 0)

(* Expand "name := value" into per-bit pins using the port's width. *)
let pin_statements t pins =
  List.map
    (fun (name, value) ->
       match port_width t name with
       | Some width ->
         if not (value_in_range ~width value) then
           error "pin value %d out of range for %d-bit port %s" value width name;
         Qmasm.Ast.Pin
           (List.init width (fun i ->
                (E2Q.port_symbol ~width name i, (value lsr i) land 1 = 1)))
       | None ->
         (* Maybe a bit name like "valid" that is 1-wide, or an explicit
            bit "C[3]"; fall back to a direct symbol pin. *)
         if value < 0 || value > 1 then
           error "pin target %s is not a known multi-bit port; value must be 0/1" name;
         Qmasm.Ast.Pin [ (name, value = 1) ])
    pins

(* --- Execution ------------------------------------------------------------ *)

type solver =
  | Exact_solver
  | Sa of Anneal.Sa.params
  | Sqa of Anneal.Sqa.params
  | Tabu of Anneal.Tabu.params
  | Qbsolv of Anneal.Qbsolv.params

type target =
  | Logical
  | Physical of {
      graph : Chimera.t;
      embed_params : Cmr.params option;
      chain_strength : float option;
      roof_duality : bool;
    }

let dwave_target =
  Physical
    { graph = Chimera.dwave_2000q;
      embed_params = None;
      chain_strength = None;
      roof_duality = false }

type solution = {
  ports : (string * int) list;
  assignment : (string * bool) list;
  energy : float;
  num_occurrences : int;
  valid : bool;
  assertions_ok : bool;
  pins_respected : bool;
  broken_chains : int;
}

type run_result = {
  solutions : solution list;
  num_reads : int;
  elapsed_seconds : float;
  num_logical_vars : int;
  num_physical_qubits : int option;
  assertion_failures : int;
  timed_out : bool;
}

(* Read batches for SA/SQA/tabu go through [Anneal.Parallel] at every thread
   count: the chunk decomposition depends only on the seed, so the sample set
   is identical whether the chunks run on 1 domain or many.  [deadline] is an
   absolute instant; the exact solver ignores it (enumeration is not
   interruptible mid-subtree, and its size cap already bounds its runtime). *)
let dispatch_solver ?(num_threads = 1) ?deadline solver problem =
  match solver with
  | Exact_solver -> Anneal.Exact_sampler.sample problem
  | Sa params -> Anneal.Parallel.sample_sa ~num_threads ?deadline ~params problem
  | Sqa params -> Anneal.Parallel.sample_sqa ~num_threads ?deadline ~params problem
  | Tabu params -> Anneal.Parallel.sample_tabu ~num_threads ?deadline ~params problem
  | Qbsolv params -> Anneal.Qbsolv.sample ~params ?deadline problem

let port_values t assignment =
  let value_of name width =
    let v = ref 0 in
    for i = 0 to width - 1 do
      match List.assoc_opt (E2Q.port_symbol ~width name i) assignment with
      | Some true -> v := !v lor (1 lsl i)
      | Some false | None -> ()
    done;
    !v
  in
  List.map (fun (name, nets) -> (name, value_of name (Array.length nets))) t.netlist.N.inputs
  @ List.map
      (fun (name, signals) -> (name, value_of name (Array.length signals)))
      t.netlist.N.outputs

let verify_ports t ports =
  let bit_vector width v = Array.init width (fun i -> (v lsr i) land 1 = 1) in
  let assignment =
    List.filter_map
      (fun (name, v) ->
         match port_width t name with
         | Some width -> Some (name, bit_vector width v)
         | None -> None)
      ports
  in
  Sim.check_relation t.netlist ~assignment

(* Re-assemble with the pins appended (the --pin workflow of section
   4.3.6: program code stays separate from program inputs), reusing the
   assembly options the program was compiled with. *)
let assemble_with_pins ?(pins = []) ?(pin_source = "") t =
  let source_pins =
    if String.trim pin_source = "" then []
    else
      try Qmasm.Parser.parse_string pin_source
      with Diag.Error d -> error "pin parse: %s" (Diag.to_string d)
  in
  let statements = t.statements @ pin_statements t pins @ source_pins in
  Qmasm.Assemble.assemble ~options:t.options statements

(* Name and verify one logical configuration: port integers, the netlist
   relation check (section 5.1), assertion and pin checks. *)
let solution_of_spins t ~program ?(num_occurrences = 1) ?(broken_chains = 0) spins =
  let assignment = Qmasm.Assemble.visible_assignment program spins in
  let full_assignment = Qmasm.Assemble.assignment_of_spins program spins in
  let lookup name =
    match List.assoc_opt name full_assignment with
    | Some v -> v
    | None -> error "assertion references unknown symbol %s" name
  in
  let assertions_ok =
    List.for_all (fun (_, ok) -> ok) (Qmasm.Assemble.check_assertions program lookup)
  in
  let ports = port_values t assignment in
  let valid = verify_ports t ports in
  let pins_respected =
    List.for_all
      (fun (name, expected) -> lookup name = expected)
      program.Qmasm.Assemble.pins
  in
  { ports;
    assignment;
    energy = Problem.energy program.Qmasm.Assemble.problem spins;
    num_occurrences;
    valid;
    assertions_ok;
    pins_respected;
    broken_chains }

(* Run stages, each a traced span: assemble -> (qpbo -> embed) -> solve
   -> unembed -> verify.  Logical targets skip the embedding spans.  The
   embed stage consults [embed_cache] first (keyed on problem structure +
   topology identity + embedder params): a hit skips the embed span
   entirely and records the [embed-cache-hit] counter instead.
   [timeout_ms] bounds the solve stage: the absolute deadline is computed
   when the solve span opens, the samplers return best-so-far on expiry,
   and the [timed-out] counter (0/1) lands on the solve span. *)
let run ?(pins = []) ?(pin_source = "") ?trace ?(num_threads = 1)
    ?(embed_cache = Qac_embed.Cache.shared ()) ?timeout_ms
    ?(postprocess = `None) ?(chain_break = Embedding.Vote) ~solver ~target t =
  let span name f = Trace.with_span_opt trace name f in
  let count key v = Trace.counter_opt trace key v in
  let deadline_of_timeout () =
    Option.map (fun ms -> Unix.gettimeofday () +. (ms /. 1000.0)) timeout_ms
  in
  (* One solve = composite-wrapped dispatch.  The deadline computed at
     span open bounds the base solve {e and} the polish loop: a run under
     time pressure returns unpolished samples rather than blowing its
     budget in post-processing. *)
  let composite_solve problem =
    let deadline = deadline_of_timeout () in
    Anneal.Composite.wrap ~postprocess ?deadline problem
      ~solve:(fun p -> dispatch_solver ~num_threads ?deadline solver p)
  in
  let program =
    span "assemble" (fun () ->
        let program = assemble_with_pins ~pins ~pin_source t in
        count "logical-vars" program.Qmasm.Assemble.problem.Problem.num_vars;
        count "logical-terms" (Problem.num_terms program.Qmasm.Assemble.problem);
        program)
  in
  let logical = program.Qmasm.Assemble.problem in
  let num_logical_vars = logical.Problem.num_vars in
  (* Solve, producing logical-level reads plus chain-break counts. *)
  let reads_logical, num_physical_qubits, num_reads, elapsed, timed_out =
    match target with
    | Logical ->
      let response =
        span "solve" (fun () ->
            let r = composite_solve logical in
            count "reads" r.Anneal.Sampler.num_reads;
            count "timed-out" (if r.Anneal.Sampler.timed_out then 1 else 0);
            r)
      in
      let reads =
        List.concat_map
          (fun s ->
             List.init s.Anneal.Sampler.num_occurrences (fun _ ->
                 (s.Anneal.Sampler.spins, 0)))
          response.Anneal.Sampler.samples
      in
      ( reads,
        None,
        response.Anneal.Sampler.num_reads,
        response.Anneal.Sampler.elapsed_seconds,
        response.Anneal.Sampler.timed_out )
    | Physical { graph; embed_params; chain_strength; roof_duality } ->
      let simplified =
        span "qpbo" (fun () ->
            let simplified =
              if roof_duality then Qpbo.simplify logical
              else
                { Qpbo.reduced = logical;
                  kept = Array.init num_logical_vars (fun i -> i);
                  fixed = [] }
            in
            count "kept-vars" (Array.length simplified.Qpbo.kept);
            count "fixed-vars" (List.length simplified.Qpbo.fixed);
            simplified)
      in
      let to_embed = simplified.Qpbo.reduced in
      (* vqa's --threads reaches the embedder here: an explicit embed_params
         wins, otherwise the run-level thread count parallelizes the tries
         (which by contract cannot change the embedding found). *)
      let eparams =
        match embed_params with
        | Some p -> p
        | None -> { (Cmr.params_for graph) with Cmr.num_threads }
      in
      let cache_key = Qac_embed.Cache.key graph to_embed ~params:eparams in
      let embedding =
        match Qac_embed.Cache.find embed_cache cache_key with
        | Some embedding ->
          count "embed-cache-hit" 1;
          count "physical-qubits" (Embedding.num_physical_qubits embedding);
          embedding
        | None ->
          let embedding =
            span "embed" (fun () ->
                count "embed-cache-miss" 1;
                let embedding =
                  match Cmr.find ~params:eparams graph to_embed with
                  | Some e -> e
                  | None ->
                    (* Dense interaction graphs defeat the path-based heuristic;
                       fall back to the deterministic clique template when it
                       applies. *)
                    (match Qac_embed.Clique.find graph to_embed with
                     | Some e -> e
                     | None ->
                       error "no minor embedding found (problem too large for the topology?)")
                in
                count "physical-qubits" (Embedding.num_physical_qubits embedding);
                count "max-chain-length" (Embedding.max_chain_length embedding);
                embedding)
          in
          Qac_embed.Cache.add embed_cache cache_key embedding;
          embedding
      in
      let physical = Embedding.apply ?chain_strength graph to_embed embedding in
      let compacted, old_of_new = Embedding.compact physical in
      let response =
        span "solve" (fun () ->
            let r = composite_solve compacted in
            count "reads" r.Anneal.Sampler.num_reads;
            count "timed-out" (if r.Anneal.Sampler.timed_out then 1 else 0);
            r)
      in
      let reads =
        span "unembed" (fun () ->
            let resolved =
              List.map
                (fun s ->
                   let full = Array.make physical.Problem.num_vars 1 in
                   Array.iteri
                     (fun k old -> full.(old) <- s.Anneal.Sampler.spins.(k))
                     old_of_new;
                   ( Embedding.unembed ~policy:chain_break ~problem:physical
                       embedding full,
                     s.Anneal.Sampler.num_occurrences ))
                response.Anneal.Sampler.samples
            in
            (* [Discard] drops broken reads here; an all-broken response
               falls back to the voted reads so the run stays non-empty. *)
            let kept =
              match chain_break with
              | Embedding.Discard ->
                let clean =
                  List.filter
                    (fun ((u : Embedding.unembedded), _) ->
                       u.Embedding.broken_chains = 0)
                    resolved
                in
                if clean = [] then resolved else clean
              | Embedding.Vote | Embedding.Polish -> resolved
            in
            let dropped =
              List.fold_left (fun acc (_, n) -> acc + n) 0 resolved
              - List.fold_left (fun acc (_, n) -> acc + n) 0 kept
            in
            count "discarded-reads" dropped;
            List.concat_map
              (fun ((u : Embedding.unembedded), n) ->
                 let restored =
                   Qpbo.restore ~original_num_vars:num_logical_vars simplified
                     u.Embedding.logical
                 in
                 List.init n (fun _ -> (restored, u.Embedding.broken_chains)))
              kept)
      in
      ( reads,
        Some (Embedding.num_physical_qubits embedding),
        response.Anneal.Sampler.num_reads,
        response.Anneal.Sampler.elapsed_seconds,
        response.Anneal.Sampler.timed_out )
  in
  span "verify" (fun () ->
      (* Aggregate logical reads into named solutions. *)
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun (spins, broken) ->
           let key = Array.to_list spins in
           match Hashtbl.find_opt tbl key with
           | Some (count, worst_broken) ->
             Hashtbl.replace tbl key (count + 1, max worst_broken broken)
           | None -> Hashtbl.replace tbl key (1, broken))
        reads_logical;
      let assertion_failures = ref 0 in
      let solutions =
        Hashtbl.fold
          (fun key (count, broken) acc ->
             let spins = Array.of_list key in
             let s =
               solution_of_spins t ~program ~num_occurrences:count
                 ~broken_chains:broken spins
             in
             if not s.assertions_ok then incr assertion_failures;
             s :: acc)
          tbl []
        |> List.sort (fun a b ->
            match compare a.energy b.energy with
            | 0 -> compare a.ports b.ports
            | c -> c)
      in
      count "distinct-solutions" (List.length solutions);
      count "valid-solutions"
        (List.length (List.filter (fun s -> s.valid && s.pins_respected) solutions));
      { solutions;
        num_reads;
        elapsed_seconds = elapsed;
        num_logical_vars;
        num_physical_qubits;
        assertion_failures = !assertion_failures;
        timed_out })

let valid_solutions result =
  List.filter (fun s -> s.valid && s.pins_respected) result.solutions

(* --- Section 6.1 metrics --------------------------------------------------- *)

type static_properties = {
  verilog_lines : int;
  edif_lines : int;
  qmasm_lines : int;
  stdcell_lines : int;
  logical_vars : int;
  logical_terms : int;
}

let count_code_lines src =
  String.split_on_char '\n' src
  |> List.filter (fun line ->
      let line =
        match Qmasm.Str_split.find_substring line "//" with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      String.trim line <> "")
  |> List.length

let static_properties t =
  { verilog_lines = count_code_lines t.verilog_src;
    edif_lines = Qac_edif.Edif.line_count t.edif;
    qmasm_lines = Qmasm.Parser.line_count t.qmasm_src;
    stdcell_lines = Qac_cells.Stdcell.line_count ();
    logical_vars = t.program.Qmasm.Assemble.problem.Problem.num_vars;
    logical_terms = Problem.num_terms t.program.Qmasm.Assemble.problem }
