(** Structured diagnostics shared by every pipeline stage.

    One exception for the whole toolchain: a diagnostic knows which stage
    raised it (parse, elab, synth, qmasm-assemble, embed, ...) and,
    when available, the source line, so callers never need a per-module
    catch ladder to recover provenance. *)

type t = {
  stage : string;
  message : string;
  line : int option;
}

exception Error of t

let make ?line ~stage message = { stage; message; line }

let error ?line ~stage fmt =
  Format.kasprintf (fun s -> raise (Error (make ?line ~stage s))) fmt

let errorf = error

let stage d = d.stage
let message d = d.message
let line d = d.line

let to_string d =
  match d.line with
  | Some l -> Printf.sprintf "%s: line %d: %s" d.stage l d.message
  | None -> Printf.sprintf "%s: %s" d.stage d.message

let pp fmt d = Format.pp_print_string fmt (to_string d)

let with_line line d = { d with line = Some line }

(* Re-raise an untagged (line-less) diagnostic with position information;
   one with a line already attached keeps the more precise inner location. *)
let locate ~line f =
  try f () with Error d when d.line = None -> raise (Error (with_line line d))

let protect f =
  match f () with
  | v -> Ok v
  | exception Error d -> Stdlib.Error d

let get = function
  | Ok v -> v
  | Stdlib.Error d -> raise (Error d)
