(** Span-based tracing for the compilation/execution pipeline.

    A trace is an ordered list of completed spans; each span has a wall
    time and named integer counters (gates, nets, logical vars, physical
    qubits, ...).  Spans nest: counters attach to the innermost open
    span.  Everything is a no-op when no trace is supplied (the [_opt]
    helpers), so the instrumented hot path costs one option match. *)

type span = {
  name : string;
  elapsed_seconds : float;
  counters : (string * int) list;  (** in the order first set *)
}

type frame = {
  fname : string;
  start : float;
  mutable fcounters : (string * int) list;  (* in the order first set *)
}

type t = {
  mutable completed : span list;  (* reverse order *)
  mutable stack : frame list;  (* innermost first *)
  mutable summaries : (string * int) list;  (* in the order first set *)
}

let create () = { completed = []; stack = []; summaries = [] }

let now = Unix.gettimeofday

let with_span t name f =
  let frame = { fname = name; start = now (); fcounters = [] } in
  t.stack <- frame :: t.stack;
  let finish () =
    (t.stack <- (match t.stack with _ :: rest -> rest | [] -> []));
    t.completed <-
      { name = frame.fname;
        elapsed_seconds = now () -. frame.start;
        counters = frame.fcounters }
      :: t.completed
  in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let counter t key value =
  match t.stack with
  | frame :: _ ->
    let rec set = function
      | [] -> [ (key, value) ]
      | (k, _) :: rest when k = key -> (k, value) :: rest
      | kv :: rest -> kv :: set rest
    in
    frame.fcounters <- set frame.fcounters
  | [] ->
    (* Counter outside any span: record it as a zero-duration span so the
       value is not silently lost. *)
    t.completed <- { name = key; elapsed_seconds = 0.0; counters = [ (key, value) ] } :: t.completed

let spans t = List.rev t.completed

let find_span t name = List.find_opt (fun s -> s.name = name) (spans t)

let find_counter t span_name key =
  match find_span t span_name with
  | None -> None
  | Some s -> List.assoc_opt key s.counters

let total_seconds t =
  List.fold_left (fun acc s -> acc +. s.elapsed_seconds) 0.0 (spans t)

(* Summaries are trace-wide key/value facts (cache hit totals, occupancy
   percentages, ...) that belong to the run, not to any one span. *)
let set_summary t key value =
  let rec set = function
    | [] -> [ (key, value) ]
    | (k, _) :: rest when k = key -> (k, value) :: rest
    | kv :: rest -> kv :: set rest
  in
  t.summaries <- set t.summaries

let summary t = t.summaries
let find_summary t key = List.assoc_opt key t.summaries

(* --- Optional-trace helpers ------------------------------------------------ *)

let with_span_opt t name f =
  match t with
  | Some t -> with_span t name f
  | None -> f ()

let counter_opt t key value =
  match t with
  | Some t -> counter t key value
  | None -> ()

(* --- Export ---------------------------------------------------------------- *)

let pp fmt t =
  let spans = spans t in
  let width =
    List.fold_left (fun acc s -> max acc (String.length s.name)) 4 spans
  in
  List.iter
    (fun s ->
       Format.fprintf fmt "%-*s %9.3f ms" width s.name (s.elapsed_seconds *. 1000.0);
       List.iter (fun (k, v) -> Format.fprintf fmt "  %s=%d" k v) s.counters;
       Format.fprintf fmt "@.")
    spans;
  Format.fprintf fmt "%-*s %9.3f ms@." width "total" (total_seconds t *. 1000.0);
  match t.summaries with
  | [] -> ()
  | kvs ->
    Format.fprintf fmt "summary:";
    List.iter (fun (k, v) -> Format.fprintf fmt " %s=%d" k v) kvs;
    Format.fprintf fmt "@."

let to_text t = Format.asprintf "%a" pp t

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let span_json s =
    let counters =
      s.counters
      |> List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (json_escape k) v)
      |> String.concat ","
    in
    Printf.sprintf "{\"name\":\"%s\",\"elapsed_seconds\":%.6f,\"counters\":{%s}}"
      (json_escape s.name) s.elapsed_seconds counters
  in
  let summary =
    t.summaries
    |> List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (json_escape k) v)
    |> String.concat ","
  in
  Printf.sprintf "{\"total_seconds\":%.6f,\"summary\":{%s},\"spans\":[%s]}"
    (total_seconds t) summary
    (String.concat "," (List.map span_json (spans t)))
