(** Recursive-descent parser for the Verilog subset (section 4.1). *)


val parse_design : string -> Ast.design
(** Parses every module in the source.  Raises [Error] with a line number on
    malformed input. *)
