let error fmt = Qac_diag.Diag.error ~stage:"verilog-synth" fmt

module B = Qac_netlist.Netlist.Builder
module N = Qac_netlist.Netlist

type word = N.signal array
(* LSB first. *)

type result = {
  netlist : N.t;
  ff_names : string array;
}

(* Net drivers, mirroring Eval. *)
type driver =
  | From_input of word
  | From_state of word  (* the Q word of a clocked reg *)
  | From_comb_block of int
  | From_assigns

type env = {
  m : Elab.t;
  b : B.t;
  driver : (string, driver) Hashtbl.t;
  assign_bits : (string, (int * int) option array) Hashtbl.t;
      (* per storage bit: (assign index, offset) *)
  assigns : (Ast.lvalue * Ast.expr) array;
  assign_memo : (int, word) Hashtbl.t;
  comb_blocks : Ast.statement list array;
  block_memo : (int, (string, word) Hashtbl.t) Hashtbl.t;
  block_busy : (int, unit) Hashtbl.t;
  net_memo : (string, word) Hashtbl.t;
  assign_busy : (int, unit) Hashtbl.t;
}

let zero_word w = Array.make w N.Zero

let const_word width value =
  Array.init width (fun i -> if (value lsr i) land 1 = 1 then N.One else N.Zero)

let extend word w =
  let len = Array.length word in
  if len >= w then Array.sub word 0 w
  else Array.append word (zero_word (w - len))

(* --- Word-level operators ---------------------------------------------- *)

let mux_word env sel a b =
  Array.init (Array.length a) (fun i -> B.mux env.b ~sel ~a:a.(i) ~b:b.(i))

let add_words env a b =
  let w = Array.length a in
  let out = Array.make w N.Zero in
  let carry = ref N.Zero in
  for i = 0 to w - 1 do
    let s1 = B.xor_ env.b a.(i) b.(i) in
    out.(i) <- B.xor_ env.b s1 !carry;
    carry := B.or_ env.b (B.and_ env.b a.(i) b.(i)) (B.and_ env.b s1 !carry)
  done;
  (out, !carry)

let not_word env a = Array.map (B.not_ env.b) a

(* a - b = a + ~b + 1; also returns the *borrow* (1 when a < b unsigned). *)
let sub_words env a b =
  let w = Array.length a in
  let out = Array.make w N.Zero in
  let carry = ref N.One in
  for i = 0 to w - 1 do
    let nb = B.not_ env.b b.(i) in
    let s1 = B.xor_ env.b a.(i) nb in
    out.(i) <- B.xor_ env.b s1 !carry;
    carry := B.or_ env.b (B.and_ env.b a.(i) nb) (B.and_ env.b s1 !carry)
  done;
  (out, B.not_ env.b !carry)

let mul_words env a b =
  let w = Array.length a in
  let acc = ref (zero_word w) in
  for i = 0 to w - 1 do
    (* acc += (a << i) masked by b.(i) *)
    let shifted = Array.init w (fun k -> if k < i then N.Zero else a.(k - i)) in
    let masked = Array.map (fun s -> B.and_ env.b s b.(i)) shifted in
    let sum, _ = add_words env !acc masked in
    acc := sum
  done;
  !acc

(* Restoring division; by-zero yields quotient all-ones, remainder = a,
   matching [Eval]. *)
let divmod_words env a b =
  let w = Array.length a in
  (* Remainder register is w+1 bits to absorb the shift. *)
  let r = ref (zero_word (w + 1)) in
  let q = Array.make w N.Zero in
  let b_ext = extend b (w + 1) in
  for i = w - 1 downto 0 do
    let shifted = Array.init (w + 1) (fun k -> if k = 0 then a.(i) else !r.(k - 1)) in
    let diff, borrow = sub_words env shifted b_ext in
    let ge = B.not_ env.b borrow in
    q.(i) <- ge;
    r := mux_word env ge shifted diff
  done;
  (q, Array.sub !r 0 w)

let eq_words env a b =
  let bits = Array.mapi (fun i ai -> B.xnor_ env.b ai b.(i)) a in
  Array.fold_left (fun acc bit -> B.and_ env.b acc bit) N.One bits

let lt_words env a b =
  let _, borrow = sub_words env a b in
  borrow

let reduce_or env word = Array.fold_left (fun acc s -> B.or_ env.b acc s) N.Zero word
let reduce_and env word = Array.fold_left (fun acc s -> B.and_ env.b acc s) N.One word
let reduce_xor env word = Array.fold_left (fun acc s -> B.xor_ env.b acc s) N.Zero word

(* Barrel shifter.  [left] selects direction; shifting by >= w yields 0. *)
let shift_words env a amount ~left =
  let w = Array.length a in
  let result = ref a in
  Array.iteri
    (fun k bit ->
       let dist = 1 lsl k in
       let shifted =
         if dist >= w then zero_word w
         else if left then
           Array.init w (fun i -> if i < dist then N.Zero else !result.(i - dist))
         else
           Array.init w (fun i -> if i + dist >= w then N.Zero else !result.(i + dist))
       in
       result := mux_word env bit !result shifted)
    amount;
  !result

(* --- Expressions -------------------------------------------------------- *)

let self_width (m : Elab.t) e =
  (* Same rules as the interpreter; duplicated signature via Eval is not
     exposed, so recompute locally. *)
  let rec go (e : Ast.expr) =
    match e with
    | Ast.Number { width = Some w; _ } -> w
    | Ast.Number { width = None; _ } -> 32
    | Ast.Ident name -> Elab.net_width m name
    | Ast.Index _ -> 1
    | Ast.Select (_, msb, lsb) -> abs (Elab.eval_const msb - Elab.eval_const lsb) + 1
    | Ast.Concat es -> List.fold_left (fun acc x -> acc + go x) 0 es
    | Ast.Replicate (n, x) -> Elab.eval_const n * go x
    | Ast.Unop ((Ast.Bit_not | Ast.Negate), a) -> go a
    | Ast.Unop (_, _) -> 1
    | Ast.Binop
        ( ( Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Bit_and | Ast.Bit_or
          | Ast.Bit_xor | Ast.Bit_xnor ),
          a,
          b ) ->
      max (go a) (go b)
    | Ast.Binop ((Ast.Shl | Ast.Shr), a, _) -> go a
    | Ast.Binop (_, _, _) -> 1
    | Ast.Ternary (_, a, b) -> max (go a) (go b)
  in
  go e

(* [read] resolves an identifier to its word (shadowed inside procedural
   blocks). *)
let rec synth_expr env ~read (e : Ast.expr) ~w : word =
  let m = env.m in
  match e with
  | Ast.Number { value; _ } -> const_word w value
  | Ast.Ident name -> extend (read name) w
  | Ast.Index (name, i) ->
    let net =
      match Elab.find_net m name with
      | Some n -> n
      | None -> error "undeclared identifier %s" name
    in
    let bit = Elab.storage_bit net (Elab.eval_const i) in
    extend [| read_bit env ~read name bit |] w
  | Ast.Select (name, msb, lsb) ->
    let net =
      match Elab.find_net m name with
      | Some n -> n
      | None -> error "undeclared identifier %s" name
    in
    let low, width = Elab.select_bits net (Elab.eval_const msb) (Elab.eval_const lsb) in
    extend (Array.init width (fun k -> read_bit env ~read name (low + k))) w
  | Ast.Concat es ->
    (* First element is most significant. *)
    let words = List.map (fun x -> synth_expr env ~read x ~w:(self_width m x)) es in
    extend (Array.concat (List.rev words)) w
  | Ast.Replicate (n, x) ->
    let count = Elab.eval_const n in
    let xw = self_width m x in
    let word = synth_expr env ~read x ~w:xw in
    extend (Array.concat (List.init count (fun _ -> word))) w
  | Ast.Unop (op, a) ->
    (match op with
     | Ast.Bit_not -> not_word env (synth_expr env ~read a ~w)
     | Ast.Negate ->
       (* -a = 0 - a *)
       let word = synth_expr env ~read a ~w in
       fst (sub_words env (zero_word w) word)
     | Ast.Log_not ->
       let word = synth_expr env ~read a ~w:(self_width m a) in
       extend [| B.not_ env.b (reduce_or env word) |] w
     | Ast.Reduce_and ->
       extend [| reduce_and env (synth_expr env ~read a ~w:(self_width m a)) |] w
     | Ast.Reduce_or ->
       extend [| reduce_or env (synth_expr env ~read a ~w:(self_width m a)) |] w
     | Ast.Reduce_xor ->
       extend [| reduce_xor env (synth_expr env ~read a ~w:(self_width m a)) |] w
     | Ast.Reduce_nand ->
       extend
         [| B.not_ env.b (reduce_and env (synth_expr env ~read a ~w:(self_width m a))) |]
         w
     | Ast.Reduce_nor ->
       extend
         [| B.not_ env.b (reduce_or env (synth_expr env ~read a ~w:(self_width m a))) |]
         w
     | Ast.Reduce_xnor ->
       extend
         [| B.not_ env.b (reduce_xor env (synth_expr env ~read a ~w:(self_width m a))) |]
         w)
  | Ast.Binop (op, a, b) ->
    let binary_arith f =
      let wa = synth_expr env ~read a ~w in
      let wb = synth_expr env ~read b ~w in
      f wa wb
    in
    let comparison f =
      let cw = max (self_width m a) (self_width m b) in
      let wa = synth_expr env ~read a ~w:cw in
      let wb = synth_expr env ~read b ~w:cw in
      extend [| f wa wb |] w
    in
    (match op with
     | Ast.Add -> binary_arith (fun x y -> fst (add_words env x y))
     | Ast.Sub -> binary_arith (fun x y -> fst (sub_words env x y))
     | Ast.Mul -> binary_arith (fun x y -> mul_words env x y)
     | Ast.Div -> binary_arith (fun x y -> fst (divmod_words env x y))
     | Ast.Mod -> binary_arith (fun x y -> snd (divmod_words env x y))
     | Ast.Bit_and -> binary_arith (Array.map2 (B.and_ env.b))
     | Ast.Bit_or -> binary_arith (Array.map2 (B.or_ env.b))
     | Ast.Bit_xor -> binary_arith (Array.map2 (B.xor_ env.b))
     | Ast.Bit_xnor -> binary_arith (Array.map2 (B.xnor_ env.b))
     | Ast.Log_and ->
       let va = reduce_or env (synth_expr env ~read a ~w:(self_width m a)) in
       let vb = reduce_or env (synth_expr env ~read b ~w:(self_width m b)) in
       extend [| B.and_ env.b va vb |] w
     | Ast.Log_or ->
       let va = reduce_or env (synth_expr env ~read a ~w:(self_width m a)) in
       let vb = reduce_or env (synth_expr env ~read b ~w:(self_width m b)) in
       extend [| B.or_ env.b va vb |] w
     | Ast.Eq -> comparison (eq_words env)
     | Ast.Neq -> comparison (fun x y -> B.not_ env.b (eq_words env x y))
     | Ast.Lt -> comparison (lt_words env)
     | Ast.Ge -> comparison (fun x y -> B.not_ env.b (lt_words env x y))
     | Ast.Gt -> comparison (fun x y -> lt_words env y x)
     | Ast.Le -> comparison (fun x y -> B.not_ env.b (lt_words env y x))
     | Ast.Shl ->
       let wa = synth_expr env ~read a ~w in
       let amount = synth_expr env ~read b ~w:(self_width m b) in
       shift_words env wa amount ~left:true
     | Ast.Shr ->
       let wa = synth_expr env ~read a ~w in
       let amount = synth_expr env ~read b ~w:(self_width m b) in
       shift_words env wa amount ~left:false)
  | Ast.Ternary (c, a, b) ->
    let cond = reduce_or env (synth_expr env ~read c ~w:(self_width m c)) in
    let wa = synth_expr env ~read a ~w in
    let wb = synth_expr env ~read b ~w in
    mux_word env cond wb wa

(* --- Demand-driven net synthesis ---------------------------------------- *)

(* Single-bit read that avoids demanding a whole bitwise-assigned net (the
   Listing 5 pattern of one assign per bit). *)
and read_bit env ~read name bit =
  match Hashtbl.find_opt env.net_memo name with
  | Some word -> word.(bit)
  | None ->
    (match Hashtbl.find_opt env.driver name with
     | Some From_assigns when not (Hashtbl.mem env.net_memo name) ->
       let arr = Hashtbl.find env.assign_bits name in
       (match arr.(bit) with
        | Some (idx, offset) -> (synth_assign env idx).(offset)
        | None -> N.Zero)
     | _ -> (read name).(bit))

and synth_net env name : word =
  match Hashtbl.find_opt env.net_memo name with
  | Some word -> word
  | None ->
    let w = Elab.net_width env.m name in
    let word =
      match Hashtbl.find_opt env.driver name with
      | Some (From_input word) | Some (From_state word) -> word
      | Some (From_comb_block idx) ->
        let results = synth_comb_block env idx in
        (match Hashtbl.find_opt results name with
         | Some word -> word
         | None -> error "combinational block does not always assign %s" name)
      | Some From_assigns ->
        let arr = Hashtbl.find env.assign_bits name in
        let word =
          Array.map
            (function
              | None -> N.Zero
              | Some (assign_idx, offset) -> (synth_assign env assign_idx).(offset))
            arr
        in
        if Array.length word = w then word else extend word w
      | None -> zero_word w
    in
    Hashtbl.replace env.net_memo name word;
    word

and synth_assign env idx : word =
  match Hashtbl.find_opt env.assign_memo idx with
  | Some word -> word
  | None ->
    if Hashtbl.mem env.assign_busy idx then
      error "combinational cycle through a continuous assignment";
    Hashtbl.replace env.assign_busy idx ();
    let lv, e = env.assigns.(idx) in
    let total = List.length (Eval_positions.positions env.m lv) in
    let cw = max total (self_width env.m e) in
    let word = synth_expr env ~read:(synth_net env) e ~w:cw in
    Hashtbl.remove env.assign_busy idx;
    Hashtbl.replace env.assign_memo idx word;
    word

(* --- Procedural blocks -------------------------------------------------- *)

(* Shadow entries: per-bit (signal, defined).  [fallback] supplies the
   value of unassigned bits when merging branches (Q for clocked regs,
   [None] for combinational blocks, where missing assignments are latches). *)
and exec_block env ~stmts ~fallback =
  let shadow : (string, (N.signal * bool) array) Hashtbl.t = Hashtbl.create 8 in
  let nb : (string, (N.signal * bool) array) Hashtbl.t = Hashtbl.create 8 in
  let read name =
    match Hashtbl.find_opt shadow name with
    | None -> synth_net env name
    | Some bits ->
      let base = lazy (synth_net env name) in
      Array.mapi
        (fun i (s, defined) -> if defined then s else (Lazy.force base).(i))
        bits
  in
  let entry tbl name =
    match Hashtbl.find_opt tbl name with
    | Some bits -> bits
    | None ->
      let w = Elab.net_width env.m name in
      let bits = Array.make w (N.Zero, false) in
      Hashtbl.replace tbl name bits;
      bits
  in
  let write tbl lv value_word =
    let positions = Eval_positions.positions env.m lv in
    List.iteri
      (fun offset (name, bit) ->
         let bits = entry tbl name in
         bits.(bit) <- (value_word.(offset), true))
      positions
  in
  let snapshot tbl = Hashtbl.fold (fun k v acc -> (k, Array.copy v) :: acc) tbl [] in
  let restore tbl saved =
    Hashtbl.reset tbl;
    List.iter (fun (k, v) -> Hashtbl.replace tbl k v) saved
  in
  let merge_tables cond ~then_:(st, nt) ~else_:(se, ne) ~is_nb tbl =
    ignore is_nb;
    let merge_into target then_tbl else_tbl =
      let keys = Hashtbl.create 8 in
      List.iter (fun (k, _) -> Hashtbl.replace keys k ()) then_tbl;
      List.iter (fun (k, _) -> Hashtbl.replace keys k ()) else_tbl;
      Hashtbl.iter
        (fun name () ->
           let w = Elab.net_width env.m name in
           let get tbl =
             match List.assoc_opt name tbl with
             | Some bits -> bits
             | None -> Array.make w (N.Zero, false)
           in
           let tb = get then_tbl and eb = get else_tbl in
           let merged =
             Array.init w (fun i ->
                 let ts, td = tb.(i) and es, ed = eb.(i) in
                 if td && ed then (B.mux env.b ~sel:cond ~a:es ~b:ts, true)
                 else if not (td || ed) then (N.Zero, false)
                 else
                   match fallback name with
                   | Some word ->
                     let other = word.(i) in
                     if td then (B.mux env.b ~sel:cond ~a:other ~b:ts, true)
                     else (B.mux env.b ~sel:cond ~a:es ~b:other, true)
                   | None ->
                     (* Combinational latch: leave undefined; an error fires
                        only if the bit is still undefined at block end. *)
                     (N.Zero, false))
           in
           Hashtbl.replace target name merged)
        keys
    in
    let t_sh, t_nb = st, nt in
    let e_sh, e_nb = se, ne in
    (match tbl with
     | `Shadow -> merge_into shadow t_sh e_sh
     | `Nb -> merge_into nb t_nb e_nb)
  in
  let rec exec stmts =
    List.iter
      (fun stmt ->
         match stmt with
         | Ast.Blocking (lv, e) ->
           let total = List.length (Eval_positions.positions env.m lv) in
           let cw = max total (self_width env.m e) in
           write shadow lv (synth_expr env ~read e ~w:cw)
         | Ast.Nonblocking (lv, e) ->
           let total = List.length (Eval_positions.positions env.m lv) in
           let cw = max total (self_width env.m e) in
           write nb lv (synth_expr env ~read e ~w:cw)
         | Ast.If (c, then_branch, else_branch) ->
           let cond = reduce_or env (synth_expr env ~read c ~w:(self_width env.m c)) in
           let base_sh = snapshot shadow and base_nb = snapshot nb in
           exec then_branch;
           let then_sh = snapshot shadow and then_nb = snapshot nb in
           restore shadow base_sh;
           restore nb base_nb;
           exec else_branch;
           let else_sh = snapshot shadow and else_nb = snapshot nb in
           merge_tables cond ~then_:(then_sh, then_nb) ~else_:(else_sh, else_nb)
             ~is_nb:false `Shadow;
           merge_tables cond ~then_:(then_sh, then_nb) ~else_:(else_sh, else_nb)
             ~is_nb:true `Nb
         | Ast.Case (subject, arms, default) ->
           (* Desugar to an if-chain on equality. *)
           let widths =
             self_width env.m subject
             :: List.concat_map
                  (fun (labels, _) -> List.map (self_width env.m) labels)
                  arms
           in
           let cw = List.fold_left max 1 widths in
           let rec desugar = function
             | [] -> (match default with Some d -> d | None -> [])
             | (labels, body) :: rest ->
               let cond =
                 List.fold_left
                   (fun acc l -> Ast.Binop (Ast.Log_or, acc, Ast.Binop (Ast.Eq, subject, l)))
                   (Ast.Binop (Ast.Eq, subject, List.hd labels))
                   (List.tl labels)
               in
               ignore cw;
               [ Ast.If (cond, body, desugar rest) ]
           in
           exec (desugar arms)
         | Ast.For _ -> error "for loops must be unrolled during elaboration")
      stmts
  in
  exec stmts;
  (shadow, nb)

and synth_comb_block env idx =
  match Hashtbl.find_opt env.block_memo idx with
  | Some results -> results
  | None ->
    if Hashtbl.mem env.block_busy idx then error "combinational block cycle";
    Hashtbl.replace env.block_busy idx ();
    let shadow, nb = exec_block env ~stmts:env.comb_blocks.(idx) ~fallback:(fun _ -> None) in
    (* Nonblocking assigns in comb blocks behave like blocking ones here. *)
    Hashtbl.iter
      (fun name bits ->
         let existing =
           match Hashtbl.find_opt shadow name with
           | Some e -> e
           | None ->
             let w = Elab.net_width env.m name in
             let e = Array.make w (N.Zero, false) in
             Hashtbl.replace shadow name e;
             e
         in
         Array.iteri (fun i (s, d) -> if d then existing.(i) <- (s, d)) bits)
      nb;
    let results = Hashtbl.create 8 in
    Hashtbl.iter
      (fun name bits ->
         if not (Array.for_all snd bits) then
           error "combinational block leaves %s partially unassigned (latch)" name;
         Hashtbl.replace results name (Array.map fst bits))
      shadow;
    Hashtbl.remove env.block_busy idx;
    Hashtbl.replace env.block_memo idx results;
    results

(* --- Top level ----------------------------------------------------------- *)

let synthesize ?(optimize = true) (m : Elab.t) =
  let b = B.create m.Elab.name in
  let driver = Hashtbl.create 32 in
  let assign_bits = Hashtbl.create 32 in
  let assigns = Array.of_list m.Elab.assigns in
  (* Input ports. *)
  List.iter
    (fun (name, (net : Elab.net)) ->
       if net.Elab.dir = Some Ast.Input then
         Hashtbl.replace driver name (From_input (B.add_input b name net.Elab.width)))
    m.Elab.nets;
  (* Continuous assigns (bit-level coverage). *)
  let env_m = m in
  Array.iteri
    (fun idx (lv, _) ->
       let positions = Eval_positions.positions env_m lv in
       List.iteri
         (fun offset (name, bit) ->
            let arr =
              match Hashtbl.find_opt assign_bits name with
              | Some arr -> arr
              | None ->
                let w = Elab.net_width m name in
                let arr = Array.make w None in
                Hashtbl.replace assign_bits name arr;
                arr
            in
            (match arr.(bit) with
             | Some _ -> error "multiple continuous assignments drive %s" name
             | None -> arr.(bit) <- Some (idx, offset));
            match Hashtbl.find_opt driver name with
            | Some (From_input _) -> error "continuous assignment drives input port %s" name
            | Some (From_state _ | From_comb_block _) ->
              error "%s driven by both a procedural block and an assign" name
            | Some From_assigns | None -> Hashtbl.replace driver name From_assigns)
         positions)
    assigns;
  (* Names assigned by procedural blocks. *)
  let rec assigned_names stmts =
    List.concat_map
      (function
        | Ast.Blocking (lv, _) | Ast.Nonblocking (lv, _) ->
          List.map fst (Eval_positions.positions m lv)
        | Ast.If (_, a, bb) -> assigned_names a @ assigned_names bb
        | Ast.Case (_, arms, default) ->
          List.concat_map (fun (_, body) -> assigned_names body) arms
          @ (match default with Some d -> assigned_names d | None -> [])
        | Ast.For (_, _, _, _, _, body) -> assigned_names body)
      stmts
  in
  let comb_blocks = Array.of_list m.Elab.comb in
  Array.iteri
    (fun idx stmts ->
       List.iter
         (fun name ->
            match Hashtbl.find_opt driver name with
            | Some (From_comb_block j) when j = idx -> ()
            | None -> Hashtbl.replace driver name (From_comb_block idx)
            | Some _ -> error "%s has multiple drivers" name)
         (List.sort_uniq compare (assigned_names stmts)))
    comb_blocks;
  (* Clocked regs: allocate DFF placeholders now so feedback works. *)
  let clocked_targets = ref [] in
  List.iter
    (fun (edge, stmts) ->
       let edge_kind =
         match edge with
         | Ast.Posedge _ -> `Pos
         | Ast.Negedge _ -> `Neg
         | Ast.Star -> assert false
       in
       List.iter
         (fun name ->
            match Hashtbl.find_opt driver name with
            | Some (From_state _) -> ()
            | None ->
              let w = Elab.net_width m name in
              let q = Array.init w (fun _ -> B.dff_placeholder b ~edge:edge_kind) in
              Hashtbl.replace driver name (From_state q);
              clocked_targets := (name, q) :: !clocked_targets
            | Some _ -> error "%s has multiple drivers" name)
         (List.sort_uniq compare (assigned_names stmts)))
    m.Elab.clocked;
  let clocked_targets = List.rev !clocked_targets in
  let env =
    { m;
      b;
      driver;
      assign_bits;
      assigns;
      assign_memo = Hashtbl.create 16;
      comb_blocks;
      block_memo = Hashtbl.create 4;
      block_busy = Hashtbl.create 4;
      net_memo = Hashtbl.create 32;
      assign_busy = Hashtbl.create 16 }
  in
  (* Synthesize each clocked block and connect the flip-flops. *)
  let d_words : (string, N.signal array) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (_, stmts) ->
       let fallback name =
         match Hashtbl.find_opt driver name with
         | Some (From_state q) -> Some q
         | _ -> None
       in
       let shadow, nb = exec_block env ~stmts ~fallback in
       List.iter
         (fun (name, q) ->
            let w = Array.length q in
            let get tbl =
              match Hashtbl.find_opt tbl name with
              | Some bits -> bits
              | None -> Array.make w (N.Zero, false)
            in
            let sh = get shadow and nbb = get nb in
            (* Was this reg touched by this block at all? *)
            let touched =
              Array.exists snd sh || Array.exists snd nbb
            in
            if touched then begin
              let d =
                Array.init w (fun i ->
                    let ns, nd = nbb.(i) in
                    if nd then ns
                    else
                      let ss, sd = sh.(i) in
                      if sd then ss else q.(i))
              in
              (match Hashtbl.find_opt d_words name with
               | Some _ -> error "%s assigned in multiple clocked blocks" name
               | None -> Hashtbl.replace d_words name d)
            end)
         clocked_targets)
    m.Elab.clocked;
  List.iter
    (fun (name, q) ->
       let d =
         match Hashtbl.find_opt d_words name with
         | Some d -> d
         | None -> q (* never actually assigned: holds its value *)
       in
       Array.iteri (fun i qs -> B.connect_dff b ~q:qs ~d:d.(i)) q)
    clocked_targets;
  (* Output ports. *)
  List.iter
    (fun (name, dir, _) ->
       if dir = Ast.Output then B.set_output b name (synth_net env name))
    m.Elab.ports;
  let ff_names =
    Array.of_list
      (List.concat_map
         (fun (name, q) ->
            let w = Array.length q in
            if w = 1 then [ name ]
            else List.init w (fun i -> Printf.sprintf "%s[%d]" name i))
         clocked_targets)
  in
  let netlist = B.build b in
  let netlist = if optimize then Qac_netlist.Passes.optimize netlist else netlist in
  { netlist; ff_names }

let compile ?optimize ?top src =
  let design = Parser.parse_design src in
  synthesize ?optimize (Elab.elaborate ?top design)
