let error fmt = Qac_diag.Diag.error ~stage:"verilog-elab" fmt

let max_width = 62

type net = {
  width : int;
  left : int;
  right : int;
  is_reg : bool;
  dir : Ast.direction option;
}

let storage_bit net i =
  let bit = if net.left >= net.right then i - net.right else net.right - i in
  if bit < 0 || bit >= net.width then error "bit index %d out of range" i;
  bit

let select_bits net a b =
  if (net.left >= net.right) <> (a >= b) then
    error "part-select [%d:%d] direction does not match the declaration" a b;
  let sa = storage_bit net a and sb = storage_bit net b in
  (min sa sb, abs (a - b) + 1)

type t = {
  name : string;
  ports : (string * Ast.direction * int) list;
  nets : (string * net) list;
  assigns : (Ast.lvalue * Ast.expr) list;
  clocked : (Ast.edge * Ast.statement list) list;
  comb : Ast.statement list list;
}

(* --- Constant expressions ---------------------------------------------- *)

let rec eval_const ?(env = []) (e : Ast.expr) =
  let eval e = eval_const ~env e in
  match e with
  | Ast.Number { value; _ } -> value
  | Ast.Ident name ->
    (match List.assoc_opt name env with
     | Some v -> v
     | None -> error "constant expression references non-parameter %s" name)
  | Ast.Unop (op, a) ->
    let va = eval a in
    (match op with
     | Ast.Negate -> -va
     | Ast.Bit_not -> lnot va
     | Ast.Log_not -> if va = 0 then 1 else 0
     | Ast.Reduce_and | Ast.Reduce_or | Ast.Reduce_xor | Ast.Reduce_nand
     | Ast.Reduce_nor | Ast.Reduce_xnor ->
       error "reduction operators not allowed in constant expressions")
  | Ast.Binop (op, a, b) ->
    let va = eval a and vb = eval b in
    (match op with
     | Ast.Add -> va + vb
     | Ast.Sub -> va - vb
     | Ast.Mul -> va * vb
     | Ast.Div -> if vb = 0 then error "division by zero in constant" else va / vb
     | Ast.Mod -> if vb = 0 then error "modulo by zero in constant" else va mod vb
     | Ast.Bit_and -> va land vb
     | Ast.Bit_or -> va lor vb
     | Ast.Bit_xor -> va lxor vb
     | Ast.Bit_xnor -> lnot (va lxor vb)
     | Ast.Log_and -> if va <> 0 && vb <> 0 then 1 else 0
     | Ast.Log_or -> if va <> 0 || vb <> 0 then 1 else 0
     | Ast.Eq -> if va = vb then 1 else 0
     | Ast.Neq -> if va <> vb then 1 else 0
     | Ast.Lt -> if va < vb then 1 else 0
     | Ast.Le -> if va <= vb then 1 else 0
     | Ast.Gt -> if va > vb then 1 else 0
     | Ast.Ge -> if va >= vb then 1 else 0
     | Ast.Shl -> va lsl vb
     | Ast.Shr -> va lsr vb)
  | Ast.Ternary (c, a, b) -> if eval c <> 0 then eval a else eval b
  | Ast.Index _ | Ast.Select _ | Ast.Concat _ | Ast.Replicate _ ->
    error "unsupported construct in constant expression"

(* --- Expression/statement rewriting ------------------------------------ *)

(* Substitute identifiers: parameters to numbers, instance-local names to
   prefixed names.  [subst] returns either a replacement expression or the
   identity. *)
let rec map_expr ~f (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Number _ -> e
  | Ast.Ident name -> f name
  | Ast.Index (name, i) ->
    let i = map_expr ~f i in
    (match f name with
     | Ast.Ident name' -> Ast.Index (name', i)
     | Ast.Number _ as n ->
       (* Indexing a parameter: fold to the selected bit. *)
       (match i with
        | Ast.Number { value = bit; _ } ->
          (match n with
           | Ast.Number { value; _ } ->
             Ast.Number { width = Some 1; value = (value lsr bit) land 1 }
           | _ -> assert false)
        | _ -> error "bit-select of a parameter requires constant index")
     | _ -> error "bad identifier substitution for %s" name)
  | Ast.Select (name, msb, lsb) ->
    (match f name with
     | Ast.Ident name' -> Ast.Select (name', map_expr ~f msb, map_expr ~f lsb)
     | _ -> error "part-select of a parameter is not supported")
  | Ast.Concat es -> Ast.Concat (List.map (map_expr ~f) es)
  | Ast.Replicate (n, x) -> Ast.Replicate (map_expr ~f n, map_expr ~f x)
  | Ast.Unop (op, a) -> Ast.Unop (op, map_expr ~f a)
  | Ast.Binop (op, a, b) -> Ast.Binop (op, map_expr ~f a, map_expr ~f b)
  | Ast.Ternary (c, a, b) -> Ast.Ternary (map_expr ~f c, map_expr ~f a, map_expr ~f b)

let rec map_lvalue ~f (lv : Ast.lvalue) : Ast.lvalue =
  match lv with
  | Ast.Lident name ->
    (match f name with
     | Ast.Ident name' -> Ast.Lident name'
     | _ -> error "lvalue %s may not be a parameter" name)
  | Ast.Lindex (name, i) ->
    (match f name with
     | Ast.Ident name' -> Ast.Lindex (name', map_expr ~f i)
     | _ -> error "lvalue %s may not be a parameter" name)
  | Ast.Lselect (name, msb, lsb) ->
    (match f name with
     | Ast.Ident name' -> Ast.Lselect (name', map_expr ~f msb, map_expr ~f lsb)
     | _ -> error "lvalue %s may not be a parameter" name)
  | Ast.Lconcat lvs -> Ast.Lconcat (List.map (map_lvalue ~f) lvs)

let rec map_statement ~f (s : Ast.statement) : Ast.statement =
  match s with
  | Ast.Blocking (lv, e) -> Ast.Blocking (map_lvalue ~f lv, map_expr ~f e)
  | Ast.Nonblocking (lv, e) -> Ast.Nonblocking (map_lvalue ~f lv, map_expr ~f e)
  | Ast.If (c, t, e) ->
    Ast.If (map_expr ~f c, List.map (map_statement ~f) t, List.map (map_statement ~f) e)
  | Ast.Case (subject, arms, default) ->
    Ast.Case
      ( map_expr ~f subject,
        List.map
          (fun (labels, body) ->
             (List.map (map_expr ~f) labels, List.map (map_statement ~f) body))
          arms,
        Option.map (List.map (map_statement ~f)) default )
  | Ast.For (v, init, cond, sv, step, body) ->
    (* The loop variable shadows any outer binding. *)
    let f' name = if name = v then Ast.Ident name else f name in
    Ast.For
      ( v,
        map_expr ~f init,
        map_expr ~f:f' cond,
        sv,
        map_expr ~f:f' step,
        List.map (map_statement ~f:f') body )

(* --- Generate-for unrolling --------------------------------------------- *)

let max_generate_iterations = 4096

(* Substitute a genvar (or any identifier) inside a module item; instance
   names gain the standard "label[v]." prefix. *)
let rec map_item ~f ~inst_prefix (item : Ast.item) : Ast.item =
  match item with
  | Ast.Decl _ -> error "declarations inside generate-for are not supported"
  | Ast.Parameter _ -> error "parameters inside generate-for are not supported"
  | Ast.Assign (lv, e) -> Ast.Assign (map_lvalue ~f lv, map_expr ~f e)
  | Ast.Always (edge, body) -> Ast.Always (edge, List.map (map_statement ~f) body)
  | Ast.Instance { module_name; instance_name; parameters; connections } ->
    let map_connection = function
      | Ast.Positional e -> Ast.Positional (map_expr ~f e)
      | Ast.Named (port, e) -> Ast.Named (port, Option.map (map_expr ~f) e)
    in
    Ast.Instance
      { module_name;
        instance_name = inst_prefix ^ instance_name;
        parameters = List.map map_connection parameters;
        connections = List.map map_connection connections }
  | Ast.Genfor { genvar; init; cond; step; label; body } ->
    (* The inner genvar shadows. *)
    let f' name = if name = genvar then Ast.Ident name else f name in
    Ast.Genfor
      { genvar;
        init = map_expr ~f init;
        cond = map_expr ~f:f' cond;
        step = map_expr ~f:f' step;
        label;
        body = List.map (map_item ~f:f' ~inst_prefix) body }

let rec expand_genfors ~env items =
  List.concat_map
    (fun (item : Ast.item) ->
       match item with
       | Ast.Genfor { genvar; init; cond; step; label; body } ->
         let subst v name =
           if name = genvar then Ast.Number { width = None; value = v }
           else Ast.Ident name
         in
         let rec iterate v count acc =
           if count > max_generate_iterations then
             error "generate-for on %s exceeds the unroll limit" genvar;
           if eval_const ~env (map_expr ~f:(subst v) cond) = 0 then
             List.concat (List.rev acc)
           else begin
             let block_name =
               Printf.sprintf "%s[%d]." (Option.value label ~default:genvar) v
             in
             let body' =
               List.map (map_item ~f:(subst v) ~inst_prefix:block_name) body
             in
             let body' = expand_genfors ~env body' in
             let next = eval_const ~env (map_expr ~f:(subst v) step) in
             iterate next (count + 1) (body' :: acc)
           end
         in
         iterate (eval_const ~env init) 0 []
       | _ -> [ item ])
    items

(* --- For-loop unrolling ------------------------------------------------ *)

let max_loop_iterations = 65536

let rec unroll_statement (s : Ast.statement) : Ast.statement list =
  match s with
  | Ast.Blocking _ | Ast.Nonblocking _ -> [ s ]
  | Ast.If (c, t, e) ->
    [ Ast.If (c, unroll_statements t, unroll_statements e) ]
  | Ast.Case (subject, arms, default) ->
    [ Ast.Case
        ( subject,
          List.map (fun (labels, body) -> (labels, unroll_statements body)) arms,
          Option.map unroll_statements default ) ]
  | Ast.For (var, init, cond, step_var, step, body) ->
    if step_var <> var then
      error "for-loop step must assign the loop variable %s" var;
    let subst v name = if name = var then Ast.Number { width = None; value = v } else Ast.Ident name in
    let rec iterate v count acc =
      if count > max_loop_iterations then error "for-loop on %s exceeds unroll limit" var;
      if eval_const (map_expr ~f:(subst v) cond) = 0 then List.concat (List.rev acc)
      else begin
        let body' = List.map (map_statement ~f:(subst v)) body in
        let next = eval_const (map_expr ~f:(subst v) step) in
        iterate next (count + 1) (unroll_statements body' :: acc)
      end
    in
    iterate (eval_const init) 0 []

and unroll_statements stmts = List.concat_map unroll_statement stmts

(* --- Module elaboration ------------------------------------------------ *)

let find_module design name =
  match List.find_opt (fun m -> m.Ast.module_name = name) design with
  | Some m -> m
  | None -> error "unknown module %s" name

(* Convert a port-connection expression into an lvalue (for outputs). *)
let rec lvalue_of_expr = function
  | Ast.Ident name -> Ast.Lident name
  | Ast.Index (name, i) -> Ast.Lindex (name, i)
  | Ast.Select (name, msb, lsb) -> Ast.Lselect (name, msb, lsb)
  | Ast.Concat es -> Ast.Lconcat (List.map lvalue_of_expr es)
  | e -> error "output port connection %s is not assignable" (Ast.expr_to_string e)

type partial = {
  mutable p_nets : (string * net) list;  (* reverse order *)
  mutable p_assigns : (Ast.lvalue * Ast.expr) list;  (* reverse order *)
  mutable p_clocked : (Ast.edge * Ast.statement list) list;
  mutable p_comb : Ast.statement list list;
}

let rec elaborate_module design ~instance_stack ~prefix ~param_overrides ~into m =
  if List.length instance_stack > 64 then
    error "instantiation too deep (recursive modules?)";
  (* Pass 1: parameters. *)
  let params = ref [] in
  List.iter
    (function
      | Ast.Parameter (name, e) ->
        let value =
          match List.assoc_opt name param_overrides with
          | Some v -> v
          | None -> eval_const ~env:!params e
        in
        params := (name, value) :: !params
      | _ -> ())
    m.Ast.items;
  let params = !params in
  (* Identifier substitution: parameters become numbers, everything else is
     prefixed with the instance path. *)
  let subst name =
    match List.assoc_opt name params with
    | Some v -> Ast.Number { width = None; value = v }
    | None -> Ast.Ident (prefix ^ name)
  in
  (* Expand generate-for constructs before anything looks at the items. *)
  let module_items = expand_genfors ~env:params m.Ast.items in
  (* Pass 2: declarations, merged by name. *)
  let decls = Hashtbl.create 16 in
  let decl_order = ref [] in
  List.iter
    (function
      | Ast.Decl d when d.Ast.kind = Some Ast.Genvar -> ()
      | Ast.Decl d ->
        let name = d.Ast.decl_name in
        if List.assoc_opt name params <> None then
          error "%s declared as both net and parameter" name;
        let existing = Hashtbl.find_opt decls name in
        if existing = None then decl_order := name :: !decl_order;
        let merged =
          match existing with
          | None -> d
          | Some (prev : Ast.decl) ->
            { Ast.decl_name = name;
              dir = (match d.Ast.dir with Some _ -> d.Ast.dir | None -> prev.Ast.dir);
              kind = (match d.Ast.kind with Some _ -> d.Ast.kind | None -> prev.Ast.kind);
              range =
                (match d.Ast.range with Some _ -> d.Ast.range | None -> prev.Ast.range) }
        in
        Hashtbl.replace decls name merged
      | _ -> ())
    module_items;
  let net_of_decl (d : Ast.decl) =
    let width, left, right =
      match d.Ast.kind, d.Ast.range with
      | Some (Ast.Integer | Ast.Genvar), None -> (32, 31, 0)
      | _, None -> (1, 0, 0)
      | _, Some (left_e, right_e) ->
        let left = eval_const ~env:params left_e in
        let right = eval_const ~env:params right_e in
        (abs (left - right) + 1, left, right)
    in
    if width > max_width then
      error "%s: width %d exceeds the supported maximum %d" d.Ast.decl_name width max_width;
    { width;
      left;
      right;
      is_reg =
        (d.Ast.kind = Some Ast.Reg || d.Ast.kind = Some Ast.Integer
         || d.Ast.kind = Some Ast.Genvar);
      dir = d.Ast.dir }
  in
  List.iter
    (fun name ->
       let d = Hashtbl.find decls name in
       let net = net_of_decl d in
       (* Ports of inlined child instances become plain internal nets. *)
       let net = if prefix = "" then net else { net with dir = None } in
       into.p_nets <- (prefix ^ name, net) :: into.p_nets)
    (List.rev !decl_order);
  (* Pass 3: behaviour. *)
  List.iter
    (function
      | Ast.Decl _ | Ast.Parameter _ -> ()
      | Ast.Genfor _ -> assert false (* expanded above *)
      | Ast.Assign (lv, e) ->
        into.p_assigns <- (map_lvalue ~f:subst lv, map_expr ~f:subst e) :: into.p_assigns
      | Ast.Always (edge, body) ->
        let body = unroll_statements (List.map (map_statement ~f:subst) body) in
        let edge =
          match edge with
          | Ast.Posedge clk -> Ast.Posedge (prefix ^ clk)
          | Ast.Negedge clk -> Ast.Negedge (prefix ^ clk)
          | Ast.Star -> Ast.Star
        in
        (match edge with
         | Ast.Star -> into.p_comb <- body :: into.p_comb
         | Ast.Posedge _ | Ast.Negedge _ ->
           into.p_clocked <- (edge, body) :: into.p_clocked)
      | Ast.Instance { module_name; instance_name; parameters; connections } ->
        let child = find_module design module_name in
        if List.mem module_name instance_stack then
          error "recursive instantiation of module %s" module_name;
        let child_prefix = prefix ^ instance_name ^ "." in
        (* Parameter overrides, evaluated in the parent's constant env. *)
        let child_params = collect_params child in
        let overrides =
          List.mapi
            (fun i conn ->
               match conn with
               | Ast.Named (p, Some e) -> (p, eval_const ~env:params (map_expr ~f:subst e))
               | Ast.Named (p, None) -> error "empty parameter override .%s()" p
               | Ast.Positional e ->
                 (match List.nth_opt child_params i with
                  | Some p -> (p, eval_const ~env:params (map_expr ~f:subst e))
                  | None -> error "too many parameter overrides for %s" module_name))
            parameters
        in
        elaborate_module design
          ~instance_stack:(module_name :: instance_stack)
          ~prefix:child_prefix ~param_overrides:overrides ~into child;
        (* Port connections become assigns at the boundary. *)
        let child_ports = child.Ast.ports in
        let connection_for idx port =
          let named =
            List.find_map
              (function
                | Ast.Named (p, e) when p = port -> Some e
                | _ -> None)
              connections
          in
          match named with
          | Some e -> Some e
          | None ->
            if List.exists (function Ast.Named _ -> true | _ -> false) connections
            then None
            else (
              match List.nth_opt connections idx with
              | Some (Ast.Positional e) -> Some (Some e)
              | _ -> None)
        in
        List.iteri
          (fun idx port ->
             let dir = port_direction child port in
             match connection_for idx port with
             | None | Some None -> () (* unconnected *)
             | Some (Some parent_expr) ->
               let parent_expr = map_expr ~f:subst parent_expr in
               let child_name = child_prefix ^ port in
               (match dir with
                | Ast.Input ->
                  into.p_assigns <-
                    (Ast.Lident child_name, parent_expr) :: into.p_assigns
                | Ast.Output ->
                  into.p_assigns <-
                    (lvalue_of_expr parent_expr, Ast.Ident child_name)
                    :: into.p_assigns))
          child_ports)
    module_items

and collect_params m =
  List.filter_map
    (function Ast.Parameter (name, _) -> Some name | _ -> None)
    m.Ast.items

and port_direction m port =
  let dir =
    List.find_map
      (function
        | Ast.Decl d when d.Ast.decl_name = port -> d.Ast.dir
        | _ -> None)
      m.Ast.items
  in
  match dir with
  | Some d -> d
  | None -> error "port %s of module %s has no direction" port m.Ast.module_name

let elaborate ?top design =
  if design = [] then error "empty design";
  let top_module =
    match top with
    | Some name -> find_module design name
    | None -> List.nth design (List.length design - 1)
  in
  let into = { p_nets = []; p_assigns = []; p_clocked = []; p_comb = [] } in
  elaborate_module design ~instance_stack:[ top_module.Ast.module_name ] ~prefix:""
    ~param_overrides:[] ~into top_module;
  let nets = List.rev into.p_nets in
  let ports =
    List.map
      (fun port ->
         match List.assoc_opt port nets with
         | Some { dir = Some d; width; _ } -> (port, d, width)
         | Some { dir = None; _ } -> error "port %s has no direction" port
         | None -> error "port %s is not declared" port)
      top_module.Ast.ports
  in
  { name = top_module.Ast.module_name;
    ports;
    nets;
    assigns = List.rev into.p_assigns;
    clocked = List.rev into.p_clocked;
    comb = List.rev into.p_comb }

let find_net t name = List.assoc_opt name t.nets

let net_width t name =
  match find_net t name with
  | Some n -> n.width
  | None -> error "undeclared identifier %s" name
