(** Hand-written lexer for the Verilog subset. *)

type token =
  | Id of string
  | Int of int  (** plain decimal literal *)
  | Sized of int * int  (** [4'b1010] is [Sized (4, 10)] *)
  | Kw of string  (** reserved word *)
  | Sym of string  (** operator or punctuation *)
  | Eof


val keywords : string list

(** [tokenize src] lexes the whole input into [(token, line)] pairs, ending
    with [Eof].  Line comments, block comments and backtick directives are
    skipped; [===]/[!==]/[<<<]/[>>>] degrade to their 2-state versions. *)
val tokenize : string -> (token * int) list
