(** Elaboration: turn a parsed design into one flat module with resolved
    widths.

    Elaboration evaluates parameters, merges split declarations
    ([output x; reg [5:0] x;]), unrolls constant-bound [for] loops, and
    inlines module instances (child nets are prefixed with
    ["<instance>."]).  The result is what the interpreter and the
    synthesizer consume. *)

type net = {
  width : int;
  left : int;  (** the range's left (most significant) index *)
  right : int;  (** the right (least significant) index; [left < right] is an
                    ascending range like Listing 5's [wire [1:10]] *)
  is_reg : bool;
  dir : Ast.direction option;
}

(** [storage_bit net i] maps a declared index to its storage position
    (0 = least significant).  Raises [Error] when out of range. *)
val storage_bit : net -> int -> int

(** [select_bits net a b] resolves a part-select [x[a:b]] to
    [(low_storage_bit, width)]; the select direction must match the
    declaration. *)
val select_bits : net -> int -> int -> int * int

type t = {
  name : string;
  ports : (string * Ast.direction * int) list;  (** name, direction, width *)
  nets : (string * net) list;  (** in declaration order *)
  assigns : (Ast.lvalue * Ast.expr) list;
  clocked : (Ast.edge * Ast.statement list) list;
      (** [always @(posedge/negedge ...)] blocks *)
  comb : Ast.statement list list;  (** [always @*] blocks *)
}


val max_width : int
(** Nets wider than this (62 bits) are rejected: the interpreter packs
    values into OCaml ints. *)

(** [elaborate ?top design] elaborates the module named [top] (default: the
    last module in the design, conventionally the top). *)
val elaborate : ?top:string -> Ast.design -> t

val find_net : t -> string -> net option

val net_width : t -> string -> int
(** Raises [Error] for undeclared names. *)

(** [eval_const ?env e] evaluates a constant expression (numbers, parameters
    already substituted, arithmetic).  Used for ranges, loop bounds and
    replication counts. *)
val eval_const : ?env:(string * int) list -> Ast.expr -> int
