(** Reference interpreter for elaborated Verilog modules.

    Two-state (0/1), unsigned semantics over OCaml ints (widths are capped at
    [Elab.max_width]).  This is the ground truth the synthesizer is tested
    against, and the polynomial-time verifier used to validate annealer
    samples at the source level. *)

type t


val create : Elab.t -> t

val width : t -> string -> int
(** Declared width of a port or net. *)

(** [comb_outputs t ~inputs] evaluates a purely combinational module.
    [inputs] maps input-port names to integer values (truncated to port
    width); the result lists every output port.  Raises [Error] on
    combinational cycles or missing inputs. *)
val comb_outputs : t -> inputs:(string * int) list -> (string * int) list

(** [peek t ~inputs name] evaluates any net (not just outputs) in a
    combinational module — handy for tests that look at internal wires. *)
val peek : t -> inputs:(string * int) list -> string -> int

type state

val initial_state : t -> state
(** All flip-flops hold 0 (two-state semantics). *)

(** [step t st ~inputs] runs one clock cycle: combinational logic settles
    against the current state, every clocked block fires (clock edges are
    ignored — time is discrete, matching section 4.3.3), and the updated
    state is returned alongside the output-port values observed during the
    cycle. *)
val step : t -> state -> inputs:(string * int) list -> (string * int) list * state

val run : t -> inputs:(string * int) list list -> (string * int) list list
(** Multi-cycle simulation from [initial_state]. *)
