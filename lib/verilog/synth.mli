(** Synthesis: bit-blast an elaborated Verilog module into a gate-level
    netlist over the Table 5 cell set (the Yosys/ABC role of section 4.2).

    Word-level operators expand into standard structures: ripple-carry
    adders, shift-add multipliers, restoring dividers, borrow-chain
    comparators, barrel shifters and mux trees.  Clocked [always] blocks
    become D flip-flops; combinational blocks become mux-merged dataflow
    (incomplete assignments — latches — are rejected). *)


type result = {
  netlist : Qac_netlist.Netlist.t;
  ff_names : string array;
      (** flip-flop names ("var[3]"), indexed in DFF cell order; feed these
          to {!Qac_netlist.Passes.unroll} for readable state port names *)
}

(** [synthesize ?optimize m] compiles [m].  With [optimize] (default true)
    the result is run through {!Qac_netlist.Passes.optimize}
    (dead-gate elimination + tech-mapping). *)
val synthesize : ?optimize:bool -> Elab.t -> result

(** [compile ?optimize ?top src] parses, elaborates and synthesizes Verilog
    source in one call. *)
val compile : ?optimize:bool -> ?top:string -> string -> result
