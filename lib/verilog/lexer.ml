(** Hand-written lexer for the Verilog subset. *)

type token =
  | Id of string
  | Int of int  (** plain decimal literal *)
  | Sized of int * int  (** [4'b1010] -> [(4, 10)] *)
  | Kw of string  (** reserved word *)
  | Sym of string  (** operator or punctuation *)
  | Eof

let error fmt = Qac_diag.Diag.error ~stage:"verilog-lex" fmt

let keywords =
  [ "module"; "endmodule"; "input"; "output"; "inout"; "wire"; "reg"; "integer";
    "assign"; "always"; "if"; "else"; "begin"; "end"; "case"; "casez"; "endcase";
    "default"; "posedge"; "negedge"; "or"; "parameter"; "localparam"; "for";
    "initial"; "function"; "endfunction"; "genvar"; "generate"; "endgenerate" ]

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
}

let create src = { src; pos = 0; line = 1 }

let peek_char lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let peek_char2 lx =
  if lx.pos + 1 < String.length lx.src then Some lx.src.[lx.pos + 1] else None

let advance lx =
  (match peek_char lx with Some '\n' -> lx.line <- lx.line + 1 | _ -> ());
  lx.pos <- lx.pos + 1

let is_id_start = function 'a' .. 'z' | 'A' .. 'Z' | '_' | '\\' -> true | _ -> false
let is_id_char = function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true | _ -> false
let is_digit = function '0' .. '9' -> true | _ -> false

let rec skip_trivia lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance lx;
    skip_trivia lx
  | Some '/' when peek_char2 lx = Some '/' ->
    let rec to_eol () =
      match peek_char lx with
      | Some '\n' | None -> ()
      | Some _ ->
        advance lx;
        to_eol ()
    in
    to_eol ();
    skip_trivia lx
  | Some '/' when peek_char2 lx = Some '*' ->
    advance lx;
    advance lx;
    let rec to_close () =
      match peek_char lx, peek_char2 lx with
      | Some '*', Some '/' ->
        advance lx;
        advance lx
      | None, _ -> error "line %d: unterminated block comment" lx.line
      | Some _, _ ->
        advance lx;
        to_close ()
    in
    to_close ();
    skip_trivia lx
  | Some '`' ->
    (* Preprocessor directives: skip the rest of the line. *)
    let rec to_eol () =
      match peek_char lx with
      | Some '\n' | None -> ()
      | Some _ ->
        advance lx;
        to_eol ()
    in
    to_eol ();
    skip_trivia lx
  | Some _ | None -> ()

let read_while lx pred =
  let start = lx.pos in
  let rec loop () =
    match peek_char lx with
    | Some c when pred c ->
      advance lx;
      loop ()
    | Some _ | None -> ()
  in
  loop ();
  String.sub lx.src start (lx.pos - start)

let digit_value base c =
  let v =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> 99
  in
  if v >= base then None else Some v

(* The digits of a based literal; underscores are separators. *)
let read_based_value lx ~base ~line =
  let digits = read_while lx (fun c -> is_id_char c) in
  if digits = "" then error "line %d: missing digits in based literal" line;
  let value = ref 0 in
  String.iter
    (fun c ->
       if c <> '_' then
         match digit_value base c with
         | Some v -> value := (!value * base) + v
         | None -> error "line %d: bad digit %c for base %d" line c base)
    digits;
  !value

let next lx =
  skip_trivia lx;
  let line = lx.line in
  match peek_char lx with
  | None -> (Eof, line)
  | Some c when is_digit c ->
    let digits = read_while lx (fun ch -> is_digit ch || ch = '_') in
    let value =
      int_of_string (String.concat "" (String.split_on_char '_' digits))
    in
    (* A size prefix?  [4'b1010] *)
    if peek_char lx = Some '\'' then begin
      advance lx;
      let base_char = peek_char lx in
      (match base_char with
       | Some ('b' | 'B') ->
         advance lx;
         (Sized (value, read_based_value lx ~base:2 ~line), line)
       | Some ('o' | 'O') ->
         advance lx;
         (Sized (value, read_based_value lx ~base:8 ~line), line)
       | Some ('d' | 'D') ->
         advance lx;
         (Sized (value, read_based_value lx ~base:10 ~line), line)
       | Some ('h' | 'H') ->
         advance lx;
         (Sized (value, read_based_value lx ~base:16 ~line), line)
       | _ -> error "line %d: bad base in sized literal" line)
    end
    else (Int value, line)
  | Some '\'' ->
    (* Unsized based literal 'b101: treat as 32-bit. *)
    advance lx;
    (match peek_char lx with
     | Some ('b' | 'B') ->
       advance lx;
       (Sized (32, read_based_value lx ~base:2 ~line), line)
     | Some ('o' | 'O') ->
       advance lx;
       (Sized (32, read_based_value lx ~base:8 ~line), line)
     | Some ('d' | 'D') ->
       advance lx;
       (Sized (32, read_based_value lx ~base:10 ~line), line)
     | Some ('h' | 'H') ->
       advance lx;
       (Sized (32, read_based_value lx ~base:16 ~line), line)
     | _ -> error "line %d: bad base in literal" line)
  | Some c when is_id_start c ->
    if c = '\\' then begin
      (* Escaped identifier: up to whitespace. *)
      advance lx;
      let name = read_while lx (fun ch -> ch <> ' ' && ch <> '\t' && ch <> '\n') in
      (Id name, line)
    end
    else begin
      let name = read_while lx is_id_char in
      if List.mem name keywords then (Kw name, line) else (Id name, line)
    end
  | Some c ->
    let two =
      if lx.pos + 1 < String.length lx.src then
        Some (String.sub lx.src lx.pos 2)
      else None
    in
    let three =
      if lx.pos + 2 < String.length lx.src then
        Some (String.sub lx.src lx.pos 3)
      else None
    in
    (match three with
     | Some (("===" | "!==" | "<<<" | ">>>") as s) ->
       advance lx;
       advance lx;
       advance lx;
       (* Case equality and arithmetic shifts degrade to 2-state versions. *)
       let degraded =
         match s with "===" -> "==" | "!==" -> "!=" | "<<<" -> "<<" | _ -> ">>"
       in
       (Sym degraded, line)
     | _ ->
       (match two with
        | Some (("&&" | "||" | "==" | "!=" | "<=" | ">=" | "<<" | ">>" | "~^" | "^~"
                | "~&" | "~|") as s) ->
          advance lx;
          advance lx;
          (Sym (if s = "^~" then "~^" else s), line)
        | _ ->
          (match c with
           | '(' | ')' | '[' | ']' | '{' | '}' | ',' | ';' | ':' | '.' | '=' | '<'
           | '>' | '&' | '|' | '^' | '~' | '!' | '+' | '-' | '*' | '/' | '%' | '?'
           | '@' | '#' ->
             advance lx;
             (Sym (String.make 1 c), line)
           | _ -> error "line %d: unexpected character %C" line c)))

let tokenize src =
  let lx = create src in
  let rec loop acc =
    match next lx with
    | (Eof, line) -> List.rev ((Eof, line) :: acc)
    | tok -> loop (tok :: acc)
  in
  loop []
