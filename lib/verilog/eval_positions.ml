(** Shared lvalue expansion: an lvalue denotes an ordered list of
    (net, storage bit) positions, LSB first, used identically by the
    interpreter and the synthesizer. *)

let error fmt = Qac_diag.Diag.error ~stage:"verilog-elab" fmt

let rec positions (m : Elab.t) (lv : Ast.lvalue) =
  match lv with
  | Ast.Lident name ->
    let net =
      match Elab.find_net m name with
      | Some n -> n
      | None -> error "assignment to undeclared %s" name
    in
    List.init net.Elab.width (fun i -> (name, i))
  | Ast.Lindex (name, i) ->
    let net =
      match Elab.find_net m name with
      | Some n -> n
      | None -> error "assignment to undeclared %s" name
    in
    [ (name, Elab.storage_bit net (Elab.eval_const i)) ]
  | Ast.Lselect (name, msb, lsb) ->
    let net =
      match Elab.find_net m name with
      | Some n -> n
      | None -> error "assignment to undeclared %s" name
    in
    let low, width = Elab.select_bits net (Elab.eval_const msb) (Elab.eval_const lsb) in
    List.init width (fun i -> (name, low + i))
  | Ast.Lconcat lvs ->
    (* First element is most significant: reverse before concatenating. *)
    List.concat_map (positions m) (List.rev lvs)
