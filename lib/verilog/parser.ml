(** Recursive-descent parser for the Verilog subset.  Produces [Ast.design]. *)

let error fmt = Qac_diag.Diag.error ~stage:"verilog-parse" fmt

type t = {
  tokens : (Lexer.token * int) array;
  mutable pos : int;
}

let peek p = fst p.tokens.(p.pos)
let line p = snd p.tokens.(p.pos)
let advance p = if p.pos < Array.length p.tokens - 1 then p.pos <- p.pos + 1

let token_name = function
  | Lexer.Id s -> Printf.sprintf "identifier %s" s
  | Lexer.Int v -> Printf.sprintf "number %d" v
  | Lexer.Sized (w, v) -> Printf.sprintf "literal %d'd%d" w v
  | Lexer.Kw s -> Printf.sprintf "keyword %s" s
  | Lexer.Sym s -> Printf.sprintf "'%s'" s
  | Lexer.Eof -> "end of input"

let expect_sym p s =
  match peek p with
  | Lexer.Sym s' when s' = s -> advance p
  | tok -> error "line %d: expected '%s', found %s" (line p) s (token_name tok)

let expect_kw p s =
  match peek p with
  | Lexer.Kw s' when s' = s -> advance p
  | tok -> error "line %d: expected '%s', found %s" (line p) s (token_name tok)

let accept_sym p s =
  match peek p with
  | Lexer.Sym s' when s' = s ->
    advance p;
    true
  | _ -> false

let accept_kw p s =
  match peek p with
  | Lexer.Kw s' when s' = s ->
    advance p;
    true
  | _ -> false

let expect_id p =
  match peek p with
  | Lexer.Id name ->
    advance p;
    name
  | tok -> error "line %d: expected identifier, found %s" (line p) (token_name tok)

(* --- Expressions ------------------------------------------------------- *)

(* Binding powers, loosest first. *)
let binop_of_sym = function
  | "||" -> Some (Ast.Log_or, 1)
  | "&&" -> Some (Ast.Log_and, 2)
  | "|" -> Some (Ast.Bit_or, 3)
  | "^" -> Some (Ast.Bit_xor, 4)
  | "~^" -> Some (Ast.Bit_xnor, 4)
  | "&" -> Some (Ast.Bit_and, 5)
  | "==" -> Some (Ast.Eq, 6)
  | "!=" -> Some (Ast.Neq, 6)
  | "<" -> Some (Ast.Lt, 7)
  | "<=" -> Some (Ast.Le, 7)
  | ">" -> Some (Ast.Gt, 7)
  | ">=" -> Some (Ast.Ge, 7)
  | "<<" -> Some (Ast.Shl, 8)
  | ">>" -> Some (Ast.Shr, 8)
  | "+" -> Some (Ast.Add, 9)
  | "-" -> Some (Ast.Sub, 9)
  | "*" -> Some (Ast.Mul, 10)
  | "/" -> Some (Ast.Div, 10)
  | "%" -> Some (Ast.Mod, 10)
  | _ -> None

let rec parse_expr p = parse_ternary p

and parse_ternary p =
  let cond = parse_binary p 1 in
  if accept_sym p "?" then begin
    let t = parse_expr p in
    expect_sym p ":";
    let e = parse_expr p in
    Ast.Ternary (cond, t, e)
  end
  else cond

and parse_binary p min_bp =
  let lhs = ref (parse_unary p) in
  let continue_ = ref true in
  while !continue_ do
    match peek p with
    | Lexer.Sym s ->
      (match binop_of_sym s with
       | Some (op, bp) when bp >= min_bp ->
         advance p;
         let rhs = parse_binary p (bp + 1) in
         lhs := Ast.Binop (op, !lhs, rhs)
       | Some _ | None -> continue_ := false)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary p =
  match peek p with
  | Lexer.Sym "~" ->
    advance p;
    Ast.Unop (Ast.Bit_not, parse_unary p)
  | Lexer.Sym "!" ->
    advance p;
    Ast.Unop (Ast.Log_not, parse_unary p)
  | Lexer.Sym "-" ->
    advance p;
    Ast.Unop (Ast.Negate, parse_unary p)
  | Lexer.Sym "+" ->
    advance p;
    parse_unary p
  | Lexer.Sym "&" ->
    advance p;
    Ast.Unop (Ast.Reduce_and, parse_unary p)
  | Lexer.Sym "|" ->
    advance p;
    Ast.Unop (Ast.Reduce_or, parse_unary p)
  | Lexer.Sym "^" ->
    advance p;
    Ast.Unop (Ast.Reduce_xor, parse_unary p)
  | Lexer.Sym "~&" ->
    advance p;
    Ast.Unop (Ast.Reduce_nand, parse_unary p)
  | Lexer.Sym "~|" ->
    advance p;
    Ast.Unop (Ast.Reduce_nor, parse_unary p)
  | Lexer.Sym "~^" ->
    advance p;
    Ast.Unop (Ast.Reduce_xnor, parse_unary p)
  | _ -> parse_primary p

and parse_primary p =
  match peek p with
  | Lexer.Int v ->
    advance p;
    Ast.Number { width = None; value = v }
  | Lexer.Sized (w, v) ->
    advance p;
    Ast.Number { width = Some w; value = v }
  | Lexer.Sym "(" ->
    advance p;
    let e = parse_expr p in
    expect_sym p ")";
    e
  | Lexer.Sym "{" ->
    advance p;
    (* Either a concatenation {a, b} or a replication {n{x}}. *)
    let first = parse_expr p in
    if accept_sym p "{" then begin
      let inner = parse_expr p in
      expect_sym p "}";
      expect_sym p "}";
      Ast.Replicate (first, inner)
    end
    else begin
      let rec rest acc =
        if accept_sym p "," then rest (parse_expr p :: acc)
        else begin
          expect_sym p "}";
          List.rev acc
        end
      in
      Ast.Concat (rest [ first ])
    end
  | Lexer.Id name ->
    advance p;
    if accept_sym p "[" then begin
      let first = parse_expr p in
      if accept_sym p ":" then begin
        let lsb = parse_expr p in
        expect_sym p "]";
        Ast.Select (name, first, lsb)
      end
      else begin
        expect_sym p "]";
        Ast.Index (name, first)
      end
    end
    else Ast.Ident name
  | tok -> error "line %d: expected expression, found %s" (line p) (token_name tok)

(* --- Lvalues ----------------------------------------------------------- *)

let rec parse_lvalue p =
  match peek p with
  | Lexer.Sym "{" ->
    advance p;
    let rec items acc =
      let lv = parse_lvalue p in
      if accept_sym p "," then items (lv :: acc)
      else begin
        expect_sym p "}";
        List.rev (lv :: acc)
      end
    in
    Ast.Lconcat (items [])
  | Lexer.Id name ->
    advance p;
    if accept_sym p "[" then begin
      let first = parse_expr p in
      if accept_sym p ":" then begin
        let lsb = parse_expr p in
        expect_sym p "]";
        Ast.Lselect (name, first, lsb)
      end
      else begin
        expect_sym p "]";
        Ast.Lindex (name, first)
      end
    end
    else Ast.Lident name
  | tok -> error "line %d: expected lvalue, found %s" (line p) (token_name tok)

(* --- Statements -------------------------------------------------------- *)

(* Returns a statement *list* because [begin ... end] blocks flatten into
   their parent. *)
let rec parse_statement p =
  match peek p with
  | Lexer.Kw "begin" ->
    advance p;
    let rec stmts acc =
      if accept_kw p "end" then List.concat (List.rev acc)
      else stmts (parse_statement p :: acc)
    in
    stmts []
  | Lexer.Kw "if" ->
    advance p;
    expect_sym p "(";
    let cond = parse_expr p in
    expect_sym p ")";
    let then_branch = parse_statement p in
    let else_branch = if accept_kw p "else" then parse_statement p else [] in
    [ Ast.If (cond, then_branch, else_branch) ]
  | Lexer.Kw "case" | Lexer.Kw "casez" ->
    advance p;
    expect_sym p "(";
    let subject = parse_expr p in
    expect_sym p ")";
    let rec arms acc default =
      if accept_kw p "endcase" then (List.rev acc, default)
      else if accept_kw p "default" then begin
        ignore (accept_sym p ":");
        let body = parse_statement p in
        arms acc (Some body)
      end
      else begin
        let rec labels acc_l =
          let e = parse_expr p in
          if accept_sym p "," then labels (e :: acc_l) else List.rev (e :: acc_l)
        in
        let labels = labels [] in
        expect_sym p ":";
        let body = parse_statement p in
        arms ((labels, body) :: acc) default
      end
    in
    let arms, default = arms [] None in
    [ Ast.Case (subject, arms, default) ]
  | Lexer.Kw "for" ->
    advance p;
    expect_sym p "(";
    let var = expect_id p in
    expect_sym p "=";
    let init = parse_expr p in
    expect_sym p ";";
    let cond = parse_expr p in
    expect_sym p ";";
    let step_var = expect_id p in
    expect_sym p "=";
    let step = parse_expr p in
    expect_sym p ")";
    let body = parse_statement p in
    [ Ast.For (var, init, cond, step_var, step, body) ]
  | _ ->
    let lv = parse_lvalue p in
    let stmt =
      if accept_sym p "=" then Ast.Blocking (lv, parse_expr p)
      else if accept_sym p "<=" then Ast.Nonblocking (lv, parse_expr p)
      else error "line %d: expected '=' or '<=', found %s" (line p) (token_name (peek p))
    in
    expect_sym p ";";
    [ stmt ]

(* --- Module items ------------------------------------------------------ *)

let parse_range_opt p =
  if accept_sym p "[" then begin
    let msb = parse_expr p in
    expect_sym p ":";
    let lsb = parse_expr p in
    expect_sym p "]";
    Some (msb, lsb)
  end
  else None

let parse_edge p =
  if accept_kw p "posedge" then Ast.Posedge (expect_id p)
  else if accept_kw p "negedge" then Ast.Negedge (expect_id p)
  else begin
    (* Level-sensitive entries make the block combinational. *)
    (match peek p with
     | Lexer.Sym "*" -> advance p
     | Lexer.Id _ ->
       advance p;
       ()
     | tok -> error "line %d: bad sensitivity item %s" (line p) (token_name tok));
    Ast.Star
  end

let parse_sensitivity p =
  expect_sym p "@";
  if accept_sym p "*" then Ast.Star
  else begin
    expect_sym p "(";
    if accept_sym p "*" then begin
      expect_sym p ")";
      Ast.Star
    end
    else begin
      let first = parse_edge p in
      let merged = ref first in
      while accept_kw p "or" || accept_sym p "," do
        let next = parse_edge p in
        (* Multiple edges: keep the first clocked one; mixed lists with
           level-sensitive entries degrade to Star. *)
        match !merged, next with
        | Ast.Star, e -> merged := e
        | e, Ast.Star -> merged := e
        | _ -> ()
      done;
      expect_sym p ")";
      !merged
    end
  end

let parse_connections p =
  expect_sym p "(";
  if accept_sym p ")" then []
  else begin
    let parse_one () =
      if accept_sym p "." then begin
        let port = expect_id p in
        expect_sym p "(";
        if accept_sym p ")" then Ast.Named (port, None)
        else begin
          let e = parse_expr p in
          expect_sym p ")";
          Ast.Named (port, Some e)
        end
      end
      else Ast.Positional (parse_expr p)
    in
    let rec loop acc =
      let c = parse_one () in
      if accept_sym p "," then loop (c :: acc)
      else begin
        expect_sym p ")";
        List.rev (c :: acc)
      end
    in
    loop []
  end

(* One declaration statement can declare several names:
   [input a, b;] or [output reg [5:0] x, y;]. *)
let parse_decl_bodies p ~dir ~kind =
  let kind =
    match kind with
    | Some _ -> kind
    | None ->
      if accept_kw p "wire" then Some Ast.Wire
      else if accept_kw p "reg" then Some Ast.Reg
      else None
  in
  let range = parse_range_opt p in
  let rec names acc =
    let name = expect_id p in
    if accept_sym p "," then names (name :: acc) else List.rev (name :: acc)
  in
  let names = names [] in
  expect_sym p ";";
  List.map
    (fun decl_name -> Ast.Decl { Ast.decl_name; dir; kind; range })
    names

let rec parse_item p =
  match peek p with
  | Lexer.Kw "input" ->
    advance p;
    parse_decl_bodies p ~dir:(Some Ast.Input) ~kind:None
  | Lexer.Kw "output" ->
    advance p;
    parse_decl_bodies p ~dir:(Some Ast.Output) ~kind:None
  | Lexer.Kw "inout" -> error "line %d: inout ports are not supported" (line p)
  | Lexer.Kw "wire" ->
    advance p;
    parse_decl_bodies p ~dir:None ~kind:(Some Ast.Wire)
  | Lexer.Kw "reg" ->
    advance p;
    parse_decl_bodies p ~dir:None ~kind:(Some Ast.Reg)
  | Lexer.Kw "integer" ->
    advance p;
    parse_decl_bodies p ~dir:None ~kind:(Some Ast.Integer)
  | Lexer.Kw "genvar" ->
    advance p;
    parse_decl_bodies p ~dir:None ~kind:(Some Ast.Genvar)
  | Lexer.Kw "generate" ->
    advance p;
    let rec items acc =
      if accept_kw p "endgenerate" then List.rev acc
      else items (List.rev_append (parse_generate_item p) acc)
    in
    items []
  | Lexer.Kw "parameter" | Lexer.Kw "localparam" ->
    advance p;
    ignore (parse_range_opt p);
    let rec params acc =
      let name = expect_id p in
      expect_sym p "=";
      let value = parse_expr p in
      if accept_sym p "," then params (Ast.Parameter (name, value) :: acc)
      else begin
        expect_sym p ";";
        List.rev (Ast.Parameter (name, value) :: acc)
      end
    in
    params []
  | Lexer.Kw "assign" ->
    advance p;
    let rec assigns acc =
      let lv = parse_lvalue p in
      expect_sym p "=";
      let e = parse_expr p in
      if accept_sym p "," then assigns (Ast.Assign (lv, e) :: acc)
      else begin
        expect_sym p ";";
        List.rev (Ast.Assign (lv, e) :: acc)
      end
    in
    assigns []
  | Lexer.Kw "always" ->
    advance p;
    let edge = parse_sensitivity p in
    let body = parse_statement p in
    [ Ast.Always (edge, body) ]
  | Lexer.Kw "initial" ->
    (* Initial blocks are testbench-only; parse and discard. *)
    advance p;
    let _ = parse_statement p in
    []
  | Lexer.Id module_name ->
    advance p;
    let parameters =
      if accept_sym p "#" then parse_connections p else []
    in
    let instance_name = expect_id p in
    let connections = parse_connections p in
    expect_sym p ";";
    [ Ast.Instance { module_name; instance_name; parameters; connections } ]
  | tok -> error "line %d: unexpected %s in module body" (line p) (token_name tok)

(* Inside generate: for-generate loops plus ordinary items. *)
and parse_generate_item p =
  match peek p with
  | Lexer.Kw "for" ->
    advance p;
    expect_sym p "(";
    let genvar = expect_id p in
    expect_sym p "=";
    let init = parse_expr p in
    expect_sym p ";";
    let cond = parse_expr p in
    expect_sym p ";";
    let step_var = expect_id p in
    expect_sym p "=";
    let step = parse_expr p in
    if step_var <> genvar then
      error "line %d: generate-for must step its own genvar %s" (line p) genvar;
    expect_sym p ")";
    expect_kw p "begin";
    let label = if accept_sym p ":" then Some (expect_id p) else None in
    let rec body acc =
      if accept_kw p "end" then List.rev acc
      else body (List.rev_append (parse_generate_item p) acc)
    in
    let body = body [] in
    [ Ast.Genfor { genvar; init; cond; step; label; body } ]
  | _ -> parse_item p

and parse_module p =
  expect_kw p "module";
  let module_name = expect_id p in
  let ports = ref [] in
  let ansi_items = ref [] in
  if accept_sym p "(" then begin
    if not (accept_sym p ")") then begin
      let parse_port () =
        let dir =
          if accept_kw p "input" then Some Ast.Input
          else if accept_kw p "output" then Some Ast.Output
          else None
        in
        let kind =
          if accept_kw p "wire" then Some Ast.Wire
          else if accept_kw p "reg" then Some Ast.Reg
          else None
        in
        let range = if dir <> None || kind <> None then parse_range_opt p else None in
        let name = expect_id p in
        ports := name :: !ports;
        if dir <> None || kind <> None then
          ansi_items := Ast.Decl { Ast.decl_name = name; dir; kind; range } :: !ansi_items
      in
      parse_port ();
      while accept_sym p "," do
        parse_port ()
      done;
      expect_sym p ")"
    end
  end;
  expect_sym p ";";
  let rec items acc =
    if accept_kw p "endmodule" then List.rev acc
    else items (List.rev_append (parse_item p) acc)
  in
  let body = items (List.rev !ansi_items) in
  { Ast.module_name; ports = List.rev !ports; items = body }

let parse_design src =
  let p = { tokens = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let rec modules acc =
    match peek p with
    | Lexer.Eof -> List.rev acc
    | _ -> modules (parse_module p :: acc)
  in
  modules []
