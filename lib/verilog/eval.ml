let error fmt = Qac_diag.Diag.error ~stage:"verilog-eval" fmt

let mask width v = if width >= 63 then v else v land ((1 lsl width) - 1)

(* How a net (or some of its bits) gets its value. *)
type driver =
  | From_input
  | From_state  (** assigned in a clocked block *)
  | From_comb_block of int  (** index into [comb_blocks] *)
  | From_assigns  (** one or more continuous assigns cover (some) bits *)
  | Undriven

type t = {
  m : Elab.t;
  (* name -> (assign index, offset) per covered bit, indexed by storage bit *)
  assign_bits : (string, (int * int) option array) Hashtbl.t;
  assigns : (Ast.expr * int) array;  (* rhs, context width *)
  driver : (string, driver) Hashtbl.t;
  comb_blocks : Ast.statement list array;
  comb_targets : string list array;  (* names each comb block assigns *)
  clocked_regs : string list;
}

(* Self-determined width of an expression. *)
let rec self_width (m : Elab.t) (e : Ast.expr) =
  match e with
  | Ast.Number { width = Some w; _ } -> w
  | Ast.Number { width = None; _ } -> 32
  | Ast.Ident name -> Elab.net_width m name
  | Ast.Index _ -> 1
  | Ast.Select (_, msb, lsb) -> abs (Elab.eval_const msb - Elab.eval_const lsb) + 1
  | Ast.Concat es -> List.fold_left (fun acc x -> acc + self_width m x) 0 es
  | Ast.Replicate (n, x) -> Elab.eval_const n * self_width m x
  | Ast.Unop ((Ast.Bit_not | Ast.Negate), a) -> self_width m a
  | Ast.Unop (_, _) -> 1
  | Ast.Binop
      ( ( Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Bit_and | Ast.Bit_or
        | Ast.Bit_xor | Ast.Bit_xnor ),
        a,
        b ) ->
    max (self_width m a) (self_width m b)
  | Ast.Binop ((Ast.Shl | Ast.Shr), a, _) -> self_width m a
  | Ast.Binop (_, _, _) -> 1
  | Ast.Ternary (_, a, b) -> max (self_width m a) (self_width m b)

let create (m : Elab.t) =
  let driver = Hashtbl.create 32 in
  let assign_bits = Hashtbl.create 32 in
  List.iter
    (fun (name, (net : Elab.net)) ->
       if net.Elab.dir = Some Ast.Input then Hashtbl.replace driver name From_input
       else Hashtbl.replace driver name Undriven;
       ignore net)
    m.Elab.nets;
  (* Continuous assigns, registered per bit at assign granularity so that
     separate assigns to different bits of one net (Listing 5's x[1]..x[10])
     do not look like a combinational cycle. *)
  let assigns =
    Array.of_list
      (List.map
         (fun (lv, e) ->
            let total_width = List.length (Eval_positions.positions m lv) in
            (e, max total_width (self_width m e)))
         m.Elab.assigns)
  in
  List.iteri
    (fun idx (lv, _) ->
       let positions = Eval_positions.positions m lv in
       List.iteri
         (fun offset (name, bit) ->
            let arr =
              match Hashtbl.find_opt assign_bits name with
              | Some arr -> arr
              | None ->
                let w = Elab.net_width m name in
                let arr = Array.make w None in
                Hashtbl.replace assign_bits name arr;
                arr
            in
            (match arr.(bit) with
             | Some _ -> error "multiple continuous assignments drive %s" name
             | None -> ());
            arr.(bit) <- Some (idx, offset);
            (match Hashtbl.find_opt driver name with
             | Some From_input -> error "continuous assignment drives input port %s" name
             | Some (From_state | From_comb_block _) ->
               error "%s driven by both a procedural block and an assign" name
             | Some (From_assigns | Undriven) | None ->
               Hashtbl.replace driver name From_assigns))
         positions)
    m.Elab.assigns;
  (* Procedural blocks. *)
  let rec assigned_names stmts =
    List.concat_map
      (function
        | Ast.Blocking (lv, _) | Ast.Nonblocking (lv, _) ->
          List.map fst (Eval_positions.positions m lv)
        | Ast.If (_, a, b) -> assigned_names a @ assigned_names b
        | Ast.Case (_, arms, default) ->
          List.concat_map (fun (_, body) -> assigned_names body) arms
          @ (match default with Some d -> assigned_names d | None -> [])
        | Ast.For (_, _, _, _, _, body) -> assigned_names body)
      stmts
  in
  let comb_blocks = Array.of_list m.Elab.comb in
  let comb_targets =
    Array.map (fun stmts -> List.sort_uniq compare (assigned_names stmts)) comb_blocks
  in
  Array.iteri
    (fun idx targets ->
       List.iter
         (fun name ->
            match Hashtbl.find_opt driver name with
            | Some (From_comb_block j) when j = idx -> ()
            | Some Undriven | None -> Hashtbl.replace driver name (From_comb_block idx)
            | Some _ -> error "%s has multiple drivers" name)
         targets)
    comb_targets;
  let clocked_regs = ref [] in
  List.iter
    (fun (_, stmts) ->
       List.iter
         (fun name ->
            match Hashtbl.find_opt driver name with
            | Some From_state -> ()
            | Some Undriven | None ->
              Hashtbl.replace driver name From_state;
              clocked_regs := name :: !clocked_regs
            | Some _ -> error "%s has multiple drivers" name)
         (List.sort_uniq compare (assigned_names stmts)))
    m.Elab.clocked;
  { m;
    assign_bits;
    assigns;
    driver;
    comb_blocks;
    comb_targets;
    clocked_regs = List.sort_uniq compare !clocked_regs }

let width t name = Elab.net_width t.m name

(* --- Evaluation context ------------------------------------------------ *)

type ctx = {
  t : t;
  inputs : (string, int) Hashtbl.t;
  state : (string, int) Hashtbl.t;
  memo : (string, int) Hashtbl.t;
  busy : (string, unit) Hashtbl.t;
  (* per-evaluation cache of comb-block results *)
  block_memo : (int, (string, int) Hashtbl.t) Hashtbl.t;
  block_busy : (int, unit) Hashtbl.t;
  assign_memo : (int, int) Hashtbl.t;
  assign_busy : (int, unit) Hashtbl.t;
}

let rec net_value ctx name =
  match Hashtbl.find_opt ctx.memo name with
  | Some v -> v
  | None ->
    let w = Elab.net_width ctx.t.m name in
    let v =
      match Hashtbl.find_opt ctx.t.driver name with
      | Some From_input ->
        (match Hashtbl.find_opt ctx.inputs name with
         | Some v -> mask w v
         | None -> error "missing input %s" name)
      | Some From_state ->
        (match Hashtbl.find_opt ctx.state name with
         | Some v -> v
         | None -> 0)
      | Some (From_comb_block idx) ->
        let results = run_comb_block ctx idx in
        (match Hashtbl.find_opt results name with
         | Some v -> v
         | None -> error "combinational block does not always assign %s" name)
      | Some From_assigns ->
        let arr = Hashtbl.find ctx.t.assign_bits name in
        let v = ref 0 in
        Array.iteri
          (fun bit src ->
             match src with
             | None -> ()
             | Some (idx, offset) ->
               if (assign_value ctx idx lsr offset) land 1 = 1 then v := !v lor (1 lsl bit))
          arr;
        !v
      | Some Undriven | None -> 0
    in
    Hashtbl.replace ctx.memo name v;
    v

and net_bit ctx name bit =
  (* Reads one bit; goes through the per-assign path when possible so that
     bitwise-assigned nets are not treated as whole-net dependencies. *)
  match Hashtbl.find_opt ctx.memo name with
  | Some v -> (v lsr bit) land 1
  | None ->
    (match Hashtbl.find_opt ctx.t.driver name with
     | Some From_assigns ->
       let arr = Hashtbl.find ctx.t.assign_bits name in
       (match arr.(bit) with
        | Some (idx, offset) -> (assign_value ctx idx lsr offset) land 1
        | None -> 0)
     | _ -> (net_value ctx name lsr bit) land 1)

and assign_value ctx idx =
  match Hashtbl.find_opt ctx.assign_memo idx with
  | Some v -> v
  | None ->
    if Hashtbl.mem ctx.assign_busy idx then
      error "combinational cycle through assignment %d" idx;
    Hashtbl.replace ctx.assign_busy idx ();
    let e, context = ctx.t.assigns.(idx) in
    let v = eval_expr ctx e context in
    Hashtbl.remove ctx.assign_busy idx;
    Hashtbl.replace ctx.assign_memo idx v;
    v

and eval_expr ctx (e : Ast.expr) context_width =
  let m = ctx.t.m in
  let w = context_width in
  match e with
  | Ast.Number { value; _ } -> mask w value
  | Ast.Ident name -> mask w (net_value ctx name)
  | Ast.Index (name, i) ->
    let net =
      match Elab.find_net m name with
      | Some n -> n
      | None -> error "undeclared identifier %s" name
    in
    net_bit ctx name (Elab.storage_bit net (Elab.eval_const i))
  | Ast.Select (name, msb, lsb) ->
    let net =
      match Elab.find_net m name with
      | Some n -> n
      | None -> error "undeclared identifier %s" name
    in
    let low, width = Elab.select_bits net (Elab.eval_const msb) (Elab.eval_const lsb) in
    let v = ref 0 in
    for k = 0 to width - 1 do
      if net_bit ctx name (low + k) = 1 then v := !v lor (1 lsl k)
    done;
    mask w !v
  | Ast.Concat es ->
    (* First element is most significant. *)
    let v = ref 0 in
    List.iter
      (fun x ->
         let xw = self_width m x in
         v := (!v lsl xw) lor eval_expr ctx x xw)
      es;
    mask w !v
  | Ast.Replicate (n, x) ->
    let count = Elab.eval_const n in
    let xw = self_width m x in
    let xv = eval_expr ctx x xw in
    let v = ref 0 in
    for _ = 1 to count do
      v := (!v lsl xw) lor xv
    done;
    mask w !v
  | Ast.Unop (op, a) ->
    (match op with
     | Ast.Bit_not -> mask w (lnot (eval_expr ctx a w))
     | Ast.Negate -> mask w (-eval_expr ctx a w)
     | Ast.Log_not -> if eval_expr ctx a (self_width m a) = 0 then 1 else 0
     | Ast.Reduce_and ->
       let aw = self_width m a in
       if eval_expr ctx a aw = mask aw (-1) then 1 else 0
     | Ast.Reduce_or -> if eval_expr ctx a (self_width m a) <> 0 then 1 else 0
     | Ast.Reduce_xor ->
       let rec popcount v acc = if v = 0 then acc else popcount (v lsr 1) (acc + (v land 1)) in
       popcount (eval_expr ctx a (self_width m a)) 0 land 1
     | Ast.Reduce_nand ->
       let aw = self_width m a in
       if eval_expr ctx a aw = mask aw (-1) then 0 else 1
     | Ast.Reduce_nor -> if eval_expr ctx a (self_width m a) = 0 then 1 else 0
     | Ast.Reduce_xnor ->
       let rec popcount v acc = if v = 0 then acc else popcount (v lsr 1) (acc + (v land 1)) in
       1 - (popcount (eval_expr ctx a (self_width m a)) 0 land 1))
  | Ast.Binop (op, a, b) ->
    let arith f =
      let va = eval_expr ctx a w and vb = eval_expr ctx b w in
      mask w (f va vb)
    in
    let compare_unsigned f =
      let cw = max (self_width m a) (self_width m b) in
      let va = eval_expr ctx a cw and vb = eval_expr ctx b cw in
      if f (compare va vb) 0 then 1 else 0
    in
    (match op with
     | Ast.Add -> arith ( + )
     | Ast.Sub -> arith ( - )
     | Ast.Mul -> arith ( * )
     | Ast.Div ->
       (* Division by zero yields all-ones, matching the synthesized
          restoring divider. *)
       arith (fun x y -> if y = 0 then -1 else x / y)
     | Ast.Mod -> arith (fun x y -> if y = 0 then x else x mod y)
     | Ast.Bit_and -> arith ( land )
     | Ast.Bit_or -> arith ( lor )
     | Ast.Bit_xor -> arith ( lxor )
     | Ast.Bit_xnor -> arith (fun x y -> lnot (x lxor y))
     | Ast.Log_and ->
       let va = eval_expr ctx a (self_width m a) in
       let vb = eval_expr ctx b (self_width m b) in
       if va <> 0 && vb <> 0 then 1 else 0
     | Ast.Log_or ->
       let va = eval_expr ctx a (self_width m a) in
       let vb = eval_expr ctx b (self_width m b) in
       if va <> 0 || vb <> 0 then 1 else 0
     | Ast.Eq -> compare_unsigned ( = )
     | Ast.Neq -> compare_unsigned ( <> )
     | Ast.Lt -> compare_unsigned ( < )
     | Ast.Le -> compare_unsigned ( <= )
     | Ast.Gt -> compare_unsigned ( > )
     | Ast.Ge -> compare_unsigned ( >= )
     | Ast.Shl ->
       let amount = eval_expr ctx b (self_width m b) in
       if amount >= w then 0 else mask w (eval_expr ctx a w lsl amount)
     | Ast.Shr ->
       let amount = eval_expr ctx b (self_width m b) in
       if amount >= w then 0 else mask w (eval_expr ctx a w lsr amount))
  | Ast.Ternary (c, a, b) ->
    if eval_expr ctx c (self_width m c) <> 0 then eval_expr ctx a w else eval_expr ctx b w

(* Execute a statement list.  [shadow] maps names to (value, defined_mask);
   reads fall back to [fallback name].  Nonblocking assignments are appended
   to [nb]. *)
and exec_statements ctx ~shadow ~fallback ~nb stmts =
  (* Expression evaluation inside a block sees shadowed values: temporarily
     override the memo table. *)
  let with_shadowed_reads f =
    let saved = Hashtbl.copy ctx.memo in
    let saved_assigns = Hashtbl.copy ctx.assign_memo in
    Hashtbl.iter
      (fun name (v, defined) ->
         (* Unwritten bits of a partially assigned target read as the
            fallback value. *)
         let base = fallback name in
         Hashtbl.replace ctx.memo name ((base land lnot defined) lor (v land defined)))
      shadow;
    Fun.protect
      ~finally:(fun () ->
        Hashtbl.reset ctx.memo;
        Hashtbl.iter (fun k v -> Hashtbl.replace ctx.memo k v) saved;
        Hashtbl.reset ctx.assign_memo;
        Hashtbl.iter (fun k v -> Hashtbl.replace ctx.assign_memo k v) saved_assigns)
      f
  in
  let eval_in_block e cw = with_shadowed_reads (fun () -> eval_expr ctx e cw) in
  let write_positions lv value =
    let positions = Eval_positions.positions ctx.t.m lv in
    List.iteri
      (fun offset (name, bit) ->
         let prev_v, prev_mask =
           match Hashtbl.find_opt shadow name with
           | Some entry -> entry
           | None -> (0, 0)
         in
         let bitval = (value lsr offset) land 1 in
         let v = if bitval = 1 then prev_v lor (1 lsl bit) else prev_v land lnot (1 lsl bit) in
         Hashtbl.replace shadow name (v, prev_mask lor (1 lsl bit)))
      positions
  in
  let rec exec stmts =
    List.iter
      (fun stmt ->
         match stmt with
         | Ast.Blocking (lv, e) ->
           let positions = Eval_positions.positions ctx.t.m lv in
           let total = List.length positions in
           let cw = max total (self_width ctx.t.m e) in
           write_positions lv (eval_in_block e cw)
         | Ast.Nonblocking (lv, e) ->
           let positions = Eval_positions.positions ctx.t.m lv in
           let total = List.length positions in
           let cw = max total (self_width ctx.t.m e) in
           let value = eval_in_block e cw in
           List.iteri
             (fun offset (name, bit) -> nb := (name, bit, (value lsr offset) land 1) :: !nb)
             positions
         | Ast.If (c, then_branch, else_branch) ->
           if eval_in_block c (self_width ctx.t.m c) <> 0 then exec then_branch
           else exec else_branch
         | Ast.Case (subject, arms, default) ->
           let widths =
             self_width ctx.t.m subject
             :: List.concat_map (fun (labels, _) -> List.map (self_width ctx.t.m) labels) arms
           in
           let cw = List.fold_left max 1 widths in
           let sv = eval_in_block subject cw in
           let rec pick = function
             | [] -> (match default with Some d -> exec d | None -> ())
             | (labels, body) :: rest ->
               if List.exists (fun l -> eval_in_block l cw = sv) labels then exec body
               else pick rest
           in
           pick arms
         | Ast.For _ -> error "for loops must be unrolled during elaboration")
      stmts
  in
  exec stmts

and run_comb_block ctx idx =
  match Hashtbl.find_opt ctx.block_memo idx with
  | Some results -> results
  | None ->
    if Hashtbl.mem ctx.block_busy idx then
      error "combinational block %d reads its own outputs (cycle)" idx;
    Hashtbl.replace ctx.block_busy idx ();
    let shadow = Hashtbl.create 8 in
    let nb = ref [] in
    (* Reading one of the block's own targets before it is assigned is latch
       behaviour; such bits read as 0 rather than demanding the net (which
       would be a spurious cycle through this very block). *)
    let targets = ctx.t.comb_targets.(idx) in
    let fallback name = if List.mem name targets then 0 else net_value ctx name in
    exec_statements ctx ~shadow ~fallback ~nb (ctx.t.comb_blocks.(idx));
    List.iter
      (fun (name, bit, v) ->
         let prev_v, prev_mask =
           match Hashtbl.find_opt shadow name with
           | Some entry -> entry
           | None -> (0, 0)
         in
         let value = if v = 1 then prev_v lor (1 lsl bit) else prev_v land lnot (1 lsl bit) in
         Hashtbl.replace shadow name (value, prev_mask lor (1 lsl bit)))
      !nb;
    let results = Hashtbl.create 8 in
    Hashtbl.iter
      (fun name (v, defined) ->
         let w = Elab.net_width ctx.t.m name in
         if defined <> mask w (-1) then
           error "combinational block leaves %s partially unassigned (latch)" name;
         Hashtbl.replace results name v)
      shadow;
    Hashtbl.remove ctx.block_busy idx;
    Hashtbl.replace ctx.block_memo idx results;
    results

(* --- Public API --------------------------------------------------------- *)

let make_ctx t ~inputs ~state =
  let input_tbl = Hashtbl.create 8 in
  List.iter
    (fun (name, v) ->
       match Elab.find_net t.m name with
       | Some net -> Hashtbl.replace input_tbl name (mask net.Elab.width v)
       | None -> error "unknown input %s" name)
    inputs;
  { t;
    inputs = input_tbl;
    state;
    memo = Hashtbl.create 32;
    busy = Hashtbl.create 8;
    block_memo = Hashtbl.create 4;
    block_busy = Hashtbl.create 4;
    assign_memo = Hashtbl.create 16;
    assign_busy = Hashtbl.create 16 }

let outputs_of_ctx ctx =
  List.filter_map
    (fun (name, dir, _) ->
       if dir = Ast.Output then Some (name, net_value ctx name) else None)
    ctx.t.m.Elab.ports

let comb_outputs t ~inputs =
  if t.m.Elab.clocked <> [] then error "comb_outputs on a sequential module";
  let ctx = make_ctx t ~inputs ~state:(Hashtbl.create 1) in
  outputs_of_ctx ctx

let peek t ~inputs name =
  let ctx = make_ctx t ~inputs ~state:(Hashtbl.create 1) in
  net_value ctx name

type state = (string, int) Hashtbl.t

let initial_state t =
  let st = Hashtbl.create 8 in
  List.iter (fun name -> Hashtbl.replace st name 0) t.clocked_regs;
  st

let step t st ~inputs =
  let ctx = make_ctx t ~inputs ~state:st in
  let outputs = outputs_of_ctx ctx in
  let next = Hashtbl.copy st in
  List.iter
    (fun (_, stmts) ->
       let shadow = Hashtbl.create 8 in
       let nb = ref [] in
       exec_statements ctx ~shadow ~fallback:(fun name -> net_value ctx name) ~nb stmts;
       (* Blocking assignments inside clocked blocks persist immediately. *)
       Hashtbl.iter
         (fun name (v, defined) ->
            if Hashtbl.mem next name then begin
              let prev = try Hashtbl.find next name with Not_found -> 0 in
              Hashtbl.replace next name ((prev land lnot defined) lor (v land defined))
            end)
         shadow;
       List.iter
         (fun (name, bit, v) ->
            if Hashtbl.mem next name then begin
              let prev = try Hashtbl.find next name with Not_found -> 0 in
              Hashtbl.replace next name
                (if v = 1 then prev lor (1 lsl bit) else prev land lnot (1 lsl bit))
            end)
         !nb)
    t.m.Elab.clocked;
  (outputs, next)

let run t ~inputs =
  let rec go st acc = function
    | [] -> List.rev acc
    | cycle :: rest ->
      let outputs, st = step t st ~inputs:cycle in
      go st (outputs :: acc) rest
  in
  go (initial_state t) [] inputs
