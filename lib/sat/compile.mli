(** Clause → Ising penalty compiler: a parsed {!Dimacs} formula becomes a
    plain {!Qac_ising.Problem.t} whose energy, with ancillas set optimally,
    {e equals} the violated-clause weight of the decoded assignment.  That
    exact accounting (Bian et al., arXiv 1811.02524) is what makes the
    ground states of the compiled Hamiltonian exactly the SAT models — or
    the MaxSAT optima — of the formula, so everything downstream of
    [Problem.t] (embedding, tiling, qbsolv decomposition, bit-parallel
    annealing, the serving tier) serves SAT workloads unchanged.

    Encodings, per clause of weight [w] (after deduplication; tautologies
    compile to nothing):
    - {b 1 literal}: direct field, [w/2 - w*s*sigma/2];
    - {b 2 literals}: direct field + coupler,
      [w/4 * (1 - s1*s1' - s2*s2' + s1 s2 s1' s2')];
    - {b 3 literals}: the gap-maximal OR gadget derived {e once} by
      {!Qac_cellgen.Gen.derive} (LP gap maximization with ancilla search)
      and cached; every literal polarity reuses the same derivation under
      the gauge transform [h_i -> s_i h_i], [J_ij -> s_i s_j J_ij], which
      preserves the spectrum — one LP solve serves all eight sign
      patterns;
    - {b k > 3 literals}: standard chaining through fresh ancillas,
      [(l1 v l2 v y1)(~y1 v l3 v y2)...(~y_{k-3} v l_{k-1} v l_k)], each
      link a 3-literal gadget; a violated clause excites exactly one link.

    Each gadget instance is scaled by [w / effective_gap] and shifted by
    its ground energy, so a satisfied clause contributes exactly 0 and a
    violated one exactly [w] (minimizing over its ancillas).  Hard clauses
    weigh [soft_weight_sum + 1] — never worth trading for any set of soft
    clauses.  A weight spread whose coefficient dynamic range exceeds
    [2^precision_bits] is refused with a {!Qac_diag.Diag.Error} (stage
    ["sat-compile"]), never silently clipped. *)

type options = {
  range : Qac_ising.Scale.range;
      (** coefficient box for the gadget LP (default {!Qac_ising.Scale.dwave_2000q}) *)
  precision_bits : int;
      (** refuse compiled problems whose coefficient dynamic range exceeds
          [2^precision_bits] (default 30) *)
  adjacency : (int -> int -> bool) option;
      (** restrict which of the gadget's internal couplers may be used
          (forwarded to {!Qac_cellgen.Gen.derive}); [None] = fully
          connected.  Gadgets derived under a restriction are not cached. *)
}

val default_options : options

type gadget = {
  derived : Qac_cellgen.Gen.derived;
      (** the canonical all-positive 3-literal OR cell (3 decision
          variables, then ancillas) *)
  effective_gap : float;
      (** min over ancillas of the violated row's energy, above ground —
          the exact per-unit-weight violation cost; at least [derived.gap] *)
  ancilla_for : bool array array;
      (** indexed by the 3-bit literal-truth row (literal 1 is the most
          significant bit): the ancilla values minimizing the gadget's
          energy on that row *)
}

val clause_gadget : ?options:options -> unit -> gadget
(** Derive (or fetch from the per-range cache) the 3-literal OR gadget.
    Raises {!Qac_diag.Diag.Error} if the LP finds no gadget under
    [options.range]/[options.adjacency] within the ancilla budget. *)

type lit = {
  var : int;  (** problem variable index (formula variable or chain ancilla) *)
  sign : int;  (** +1 positive literal, -1 negated *)
}

type sub_clause = {
  slits : lit array;  (** exactly 3, over formula variables and chain ancillas *)
  anc : int;  (** first problem index of this instance's gadget ancillas *)
}

type compiled_clause = {
  cweight : float;  (** effective weight ([hard_weight] for hard clauses) *)
  clits : lit array;  (** deduplicated original literals; [[||]] for
                          tautologies (compiled away) and empty clauses *)
  chain : int array;  (** chain-ancilla problem indices ([k - 3] of them) *)
  subs : sub_clause array;  (** gadget instances; empty for k <= 2 *)
}

type t = {
  formula : Dimacs.t;
  problem : Qac_ising.Problem.t;
      (** variables [0 .. num_formula_vars - 1] are DIMACS variables
          [1 .. num_vars] in order; ancillas follow *)
  num_formula_vars : int;
  num_ancillas : int;
  hard_weight : float;
  gadget : gadget;
  clauses : compiled_clause array;  (** parallel to [formula.clauses] *)
}

val compile : ?options:options -> Dimacs.t -> t
(** Raises {!Qac_diag.Diag.Error} (stage ["sat-compile"]) on an empty hard
    clause (the formula is trivially unsatisfiable), a non-finite weight
    sum, or a weight spread beyond [2^precision_bits]. *)

val decode : t -> Qac_ising.Problem.spin array -> bool array
(** Truth values of the formula variables (ancillas dropped): variable [v]
    of the DIMACS file is entry [v - 1]. *)

val spins_of_assignment : t -> bool array -> Qac_ising.Problem.spin array
(** The full spin configuration for an assignment with every ancilla at its
    conditional optimum.  Central invariant (tested exhaustively):
    [Problem.energy t.problem (spins_of_assignment t a) = cost t a]. *)

val repair : t -> Qac_ising.Problem.spin array -> Qac_ising.Problem.spin array
(** Reset every ancilla of a read to its conditional optimum, keeping the
    decision spins: [spins_of_assignment t (decode t spins)].  Use before
    energy accounting — a sampler's ancillas may sit above their optimum,
    in which case the raw energy over-reports the violation cost. *)

val cost : t -> bool array -> float
(** [hard_weight * hard-violations + violated soft weight] — the quantity
    the compiled Hamiltonian's energy realizes (0 for a model of all hard
    clauses and all soft clauses). *)

val best_cost : t -> float
(** [float_of_int (fst (Dimacs.violations ...))]-free shortcut: the cost of
    an assignment violating nothing, i.e. [0.0]; exposed for symmetry with
    energy offsets when callers compare energies to costs. *)
