(** DIMACS CNF/WCNF parser (see dimacs.mli). *)

let stage = "dimacs"
let error ?line fmt = Qac_diag.Diag.error ?line ~stage fmt

type weight = Hard | Soft of float

type clause = {
  lits : int array;
  weight : weight;
}

type mode = Cnf | Wcnf

type t = {
  num_vars : int;
  clauses : clause array;
  mode : mode;
  top : float option;
}

type header = {
  hmode : mode;
  hvars : int;
  hclauses : int;
  htop : float option;
}

(* Mutable cursor threaded through the line fold: the clause under
   construction (literals in reverse) and, for WCNF, its pending weight —
   [None] marks a clause boundary, where the next token must be a weight. *)
type state = {
  mutable header : header option;
  mutable acc : clause list;  (** finished clauses, reversed *)
  mutable cur : int list;  (** current clause literals, reversed *)
  mutable cur_weight : weight option;  (** set for WCNF once the weight token is read *)
  mutable in_clause : bool;  (** a clause has been started (weight read or literal seen) *)
  mutable stopped : bool;  (** saw the SATLIB ["%"] terminator *)
}

let tokens_of_line line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let parse_header ~line toks =
  match toks with
  | "p" :: "cnf" :: rest ->
    (match rest with
     | [ nv; nc ] ->
       (match int_of_string_opt nv, int_of_string_opt nc with
        | Some v, Some c when v >= 0 && c >= 0 ->
          { hmode = Cnf; hvars = v; hclauses = c; htop = None }
        | _ -> error ~line "bad 'p cnf' header: expected two non-negative integers")
     | _ -> error ~line "bad 'p cnf' header: expected 'p cnf VARS CLAUSES'")
  | "p" :: "wcnf" :: rest ->
    (match rest with
     | [ nv; nc ] | [ nv; nc; _ ] ->
       (match int_of_string_opt nv, int_of_string_opt nc with
        | Some v, Some c when v >= 0 && c >= 0 ->
          let htop =
            match rest with
            | [ _; _; top ] ->
              (match float_of_string_opt top with
               | Some t when Float.is_finite t && t > 0.0 -> Some t
               | _ -> error ~line "bad 'p wcnf' header: TOP must be a positive number")
            | _ -> None
          in
          { hmode = Wcnf; hvars = v; hclauses = c; htop }
        | _ -> error ~line "bad 'p wcnf' header: expected non-negative integer counts")
     | _ -> error ~line "bad 'p wcnf' header: expected 'p wcnf VARS CLAUSES [TOP]'")
  | "p" :: fmt :: _ -> error ~line "unknown DIMACS format %S (expected cnf or wcnf)" fmt
  | _ -> error ~line "malformed 'p' header line"

let finish_clause st ~line ~(h : header) =
  let weight =
    match h.hmode with
    | Cnf -> Hard
    | Wcnf ->
      (match st.cur_weight with
       | Some Hard -> Hard
       | Some (Soft w) ->
         (match h.htop with
          | Some top when w >= top -. 1e-12 -> Hard
          | _ -> Soft w)
       | None -> error ~line "WCNF clause is missing its weight")
  in
  let lits = Array.of_list (List.rev st.cur) in
  st.acc <- { lits; weight } :: st.acc;
  st.cur <- [];
  st.cur_weight <- None;
  st.in_clause <- false

let consume_token st ~line tok =
  let h =
    match st.header with
    | Some h -> h
    | None -> error ~line "clause data before the 'p cnf/wcnf' header"
  in
  if h.hmode = Wcnf && not st.in_clause then begin
    (* Clause start: the first token is the weight ('h' marks a hard
       clause, new-style WCNF). *)
    st.in_clause <- true;
    match tok with
    | "h" | "H" -> st.cur_weight <- Some Hard
    | _ ->
      (match float_of_string_opt tok with
       | Some w when Float.is_finite w && w > 0.0 -> st.cur_weight <- Some (Soft w)
       | Some _ -> error ~line "clause weight %S must be positive and finite" tok
       | None -> error ~line "expected a clause weight, got %S" tok)
  end
  else
    match int_of_string_opt tok with
    | Some 0 -> finish_clause st ~line ~h
    | Some l ->
      st.in_clause <- true;
      let v = abs l in
      if v > h.hvars then
        error ~line "literal %d out of range (%d variable%s declared)" l h.hvars
          (if h.hvars = 1 then "" else "s")
      else st.cur <- l :: st.cur
    | None -> error ~line "expected a literal, got %S" tok

let parse text =
  let st =
    { header = None; acc = []; cur = []; cur_weight = None; in_clause = false;
      stopped = false }
  in
  let last_line = ref 0 in
  String.split_on_char '\n' text
  |> List.iteri (fun i raw ->
      let line = i + 1 in
      let s = String.trim raw in
      if st.stopped || s = "" then ()
      else if s.[0] = 'c' && (String.length s = 1 || s.[1] = ' ' || s.[1] = '\t') then ()
      else if s = "%" then st.stopped <- true
      else if s.[0] = 'p' then begin
        (match st.header with
         | Some _ -> error ~line "duplicate 'p' header"
         | None -> ());
        st.header <- Some (parse_header ~line (tokens_of_line s))
      end
      else begin
        last_line := line;
        List.iter (consume_token st ~line) (tokens_of_line s)
      end);
  let h =
    match st.header with
    | Some h -> h
    | None -> error "missing 'p cnf/wcnf' header"
  in
  if st.in_clause || st.cur <> [] then
    error ~line:!last_line "unterminated clause at end of input (missing 0)";
  let clauses = Array.of_list (List.rev st.acc) in
  if Array.length clauses <> h.hclauses then
    error "header declares %d clause%s, file has %d" h.hclauses
      (if h.hclauses = 1 then "" else "s")
      (Array.length clauses);
  { num_vars = h.hvars; clauses; mode = h.hmode; top = h.htop }

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

let num_hard t =
  Array.fold_left (fun n c -> if c.weight = Hard then n + 1 else n) 0 t.clauses

let num_soft t = Array.length t.clauses - num_hard t

let soft_weight_sum t =
  Array.fold_left
    (fun s c -> match c.weight with Hard -> s | Soft w -> s +. w)
    0.0 t.clauses

let clause_satisfied c a =
  Array.exists
    (fun l ->
       let v = abs l - 1 in
       if l > 0 then a.(v) else not a.(v))
    c.lits

let violations t a =
  if Array.length a <> t.num_vars then
    invalid_arg "Dimacs.violations: assignment length mismatch";
  Array.fold_left
    (fun (hard, soft) c ->
       if clause_satisfied c a then (hard, soft)
       else
         match c.weight with
         | Hard -> (hard + 1, soft)
         | Soft w -> (hard, soft +. w))
    (0, 0.0) t.clauses

let satisfied t a = fst (violations t a) = 0
