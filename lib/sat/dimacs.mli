(** DIMACS CNF/WCNF frontend: the standard SAT/MaxSAT interchange format,
    parsed into a plain clause list ready for {!Compile}.

    Supported subset (see [lib/sat/README.md] for the grammar):
    - comment lines starting with [c];
    - a [p cnf VARS CLAUSES] or [p wcnf VARS CLAUSES [TOP]] header;
    - clauses as whitespace-separated nonzero literals terminated by [0],
      free to span (or share) lines;
    - WCNF clauses prefixed by a positive weight, with [h] (new-style WCNF)
      or any weight at or above the header's [TOP] marking a hard clause;
    - a line consisting of [%] ends the clause section (the SATLIB
      convention, whose files close with ["%\n0\n"]).

    Malformed input — missing or duplicate header, literals out of the
    declared range, non-positive or non-finite weights, an unterminated
    final clause, a clause count that contradicts the header — raises
    {!Qac_diag.Diag.Error} with stage ["dimacs"] and the offending line
    number. *)

type weight =
  | Hard  (** must hold; violating it dominates every soft clause *)
  | Soft of float  (** MaxSAT: violating it costs this much *)

type clause = {
  lits : int array;
      (** DIMACS literals: [v] for variable [v], [-v] for its negation,
          [1 <= v <= num_vars]; never 0.  May be empty (an always-violated
          clause) and may repeat or contradict itself — {!Compile}
          normalizes. *)
  weight : weight;
}

type mode = Cnf | Wcnf

type t = {
  num_vars : int;  (** declared variable count; variables are [1..num_vars] *)
  clauses : clause array;  (** in file order *)
  mode : mode;
  top : float option;  (** WCNF hard-clause threshold, when the header had one *)
}

val parse : string -> t
(** Parse DIMACS text.  Raises {!Qac_diag.Diag.Error} (stage ["dimacs"])
    with a line number on malformed input. *)

val parse_file : string -> t
(** {!parse} on a file's contents; I/O failures raise [Sys_error]. *)

val num_hard : t -> int
val num_soft : t -> int

val soft_weight_sum : t -> float

val clause_satisfied : clause -> bool array -> bool
(** [clause_satisfied c a] — does assignment [a] (indexed by variable - 1)
    satisfy some literal of [c]?  An empty clause is never satisfied. *)

val violations : t -> bool array -> int * float
(** [(hard clauses violated, total weight of soft clauses violated)] under
    an assignment of the [num_vars] formula variables. *)

val satisfied : t -> bool array -> bool
(** Every hard clause holds (soft clauses are free to fail). *)
