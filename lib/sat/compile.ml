(** Clause → Ising penalty compiler (see compile.mli for the encoding). *)

module Problem = Qac_ising.Problem
module Builder = Qac_ising.Problem.Builder
module Scale = Qac_ising.Scale
module Gen = Qac_cellgen.Gen
module Truthtab = Qac_cellgen.Truthtab

let stage = "sat-compile"
let error ?line fmt = Qac_diag.Diag.error ?line ~stage fmt

type options = {
  range : Scale.range;
  precision_bits : int;
  adjacency : (int -> int -> bool) option;
}

let default_options =
  { range = Scale.dwave_2000q; precision_bits = 30; adjacency = None }

type gadget = {
  derived : Gen.derived;
  effective_gap : float;
  ancilla_for : bool array array;
}

(* The canonical 3-variable OR relation: every row except all-false. *)
let or3_table () =
  Truthtab.create ~num_vars:3
    (List.filter (fun r -> Array.exists Fun.id r) (Truthtab.all_rows ~num_vars:3))

(* For each of the 8 decision rows, the conditional optimum over the 2^a
   ancilla assignments — both the lookup table that [spins_of_assignment]
   uses and the exact violation cost ([effective_gap], row 0). *)
let analyze_derived (d : Gen.derived) =
  let na = d.Gen.num_ancillas in
  let spins = Array.make (3 + na) 1 in
  let best_for idx =
    spins.(0) <- (if idx land 4 <> 0 then 1 else -1);
    spins.(1) <- (if idx land 2 <> 0 then 1 else -1);
    spins.(2) <- (if idx land 1 <> 0 then 1 else -1);
    let best_e = ref infinity and best = ref [||] in
    for m = 0 to (1 lsl na) - 1 do
      for j = 0 to na - 1 do
        spins.(3 + j) <- (if m land (1 lsl (na - 1 - j)) <> 0 then 1 else -1)
      done;
      let e = Problem.energy d.Gen.problem spins in
      if e < !best_e then begin
        best_e := e;
        best := Array.init na (fun j -> spins.(3 + j) = 1)
      end
    done;
    (!best_e, !best)
  in
  let ancilla_for = Array.make 8 [||] in
  let violated_energy = ref infinity in
  for idx = 0 to 7 do
    let e, anc = best_for idx in
    ancilla_for.(idx) <- anc;
    if idx = 0 then violated_energy := e
  done;
  {
    derived = d;
    effective_gap = !violated_energy -. d.Gen.ground_energy;
    ancilla_for;
  }

let derive_gadget options =
  match
    Gen.derive ~range:options.range ?adjacency:options.adjacency (or3_table ())
  with
  | None ->
    error
      "no 3-literal OR gadget exists under the requested coefficient \
       range/adjacency"
  | Some d -> analyze_derived d

(* One LP solve per coefficient range for the process's lifetime; adjacency
   restrictions bypass the cache (closures are not meaningful keys). *)
let gadget_cache : (Scale.range, gadget) Hashtbl.t = Hashtbl.create 4
let gadget_mutex = Mutex.create ()

let clause_gadget ?(options = default_options) () =
  match options.adjacency with
  | Some _ -> derive_gadget options
  | None ->
    Mutex.lock gadget_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock gadget_mutex)
      (fun () ->
         match Hashtbl.find_opt gadget_cache options.range with
         | Some g -> g
         | None ->
           let g = derive_gadget options in
           Hashtbl.add gadget_cache options.range g;
           g)

type lit = {
  var : int;
  sign : int;
}

type sub_clause = {
  slits : lit array;
  anc : int;
}

type compiled_clause = {
  cweight : float;
  clits : lit array;
  chain : int array;
  subs : sub_clause array;
}

type t = {
  formula : Dimacs.t;
  problem : Problem.t;
  num_formula_vars : int;
  num_ancillas : int;
  hard_weight : float;
  gadget : gadget;
  clauses : compiled_clause array;
}

(* Sum [scale * (H_gadget - ground)] into the builder, gauge-transformed so
   canonical decision variable [i] tracks the TRUTH of literal [i]:
   h_i -> s_i h_i and J_ij -> s_i s_j J_ij leave the spectrum untouched.
   Ancillas (indices >= 3 in the cell) keep sign +1 and land at
   [anc], [anc + 1], ... of the full problem. *)
let add_gadget b (g : gadget) ~scale ~(slits : lit array) ~anc =
  let p = g.derived.Gen.problem in
  let map i = if i < 3 then slits.(i).var else anc + (i - 3) in
  let sgn i = if i < 3 then float_of_int slits.(i).sign else 1.0 in
  Builder.add_offset b (-.scale *. g.derived.Gen.ground_energy);
  Array.iteri
    (fun i hv ->
       if hv <> 0.0 then Builder.add_h b (map i) (scale *. hv *. sgn i))
    p.Problem.h;
  Array.iter
    (fun ((i, j), v) ->
       Builder.add_j b (map i) (map j) (scale *. v *. sgn i *. sgn j))
    p.Problem.couplers

let no_penalty w clits = { cweight = w; clits; chain = [||]; subs = [||] }

let compile_clause b gadget ~next_anc ~hard_weight (c : Dimacs.clause) =
  let w = match c.weight with Hard -> hard_weight | Soft w -> w in
  (* Normalize: merge repeated literals; a variable appearing in both
     polarities makes the clause a tautology, which contributes nothing. *)
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  let tautology = ref false in
  Array.iter
    (fun l ->
       let v = abs l - 1 and s = if l > 0 then 1 else -1 in
       match Hashtbl.find_opt seen v with
       | None ->
         Hashtbl.add seen v s;
         order := v :: !order
       | Some s' -> if s' <> s then tautology := true)
    c.lits;
  if !tautology then no_penalty w [||]
  else begin
    let clits =
      Array.of_list
        (List.rev_map (fun v -> { var = v; sign = Hashtbl.find seen v }) !order)
    in
    let k = Array.length clits in
    let alloc n =
      let a = !next_anc in
      next_anc := a + n;
      a
    in
    let mk_sub slits =
      let anc = alloc gadget.derived.Gen.num_ancillas in
      add_gadget b gadget ~scale:(w /. gadget.effective_gap) ~slits ~anc;
      { slits; anc }
    in
    match k with
    | 0 ->
      (match c.weight with
       | Hard ->
         error
           "formula contains an empty hard clause: trivially unsatisfiable"
       | Soft w ->
         (* Always violated: its cost is a constant of the Hamiltonian. *)
         Builder.add_offset b w;
         no_penalty w [||])
    | 1 ->
      (* w * (1 - s*sigma) / 2: satisfied costs 0, violated exactly w. *)
      let { var; sign } = clits.(0) in
      Builder.add_offset b (w /. 2.0);
      Builder.add_h b var (-.w *. float_of_int sign /. 2.0);
      no_penalty w clits
    | 2 ->
      (* w * (1 - s1*sigma1)(1 - s2*sigma2) / 4. *)
      let l1 = clits.(0) and l2 = clits.(1) in
      let s1 = float_of_int l1.sign and s2 = float_of_int l2.sign in
      Builder.add_offset b (w /. 4.0);
      Builder.add_h b l1.var (-.w *. s1 /. 4.0);
      Builder.add_h b l2.var (-.w *. s2 /. 4.0);
      Builder.add_j b l1.var l2.var (w *. s1 *. s2 /. 4.0);
      no_penalty w clits
    | 3 -> { cweight = w; clits; chain = [||]; subs = [| mk_sub clits |] }
    | _ ->
      (* (l0 l1 y0)(~y0 l2 y1)...(~y_{k-4} l_{k-2} l_{k-1}): with the chain
         at its conditional optimum, a satisfied clause satisfies every
         link and a violated clause excites exactly the last one. *)
      let chain = Array.init (k - 3) (fun _ -> alloc 1) in
      let subs =
        Array.init (k - 2) (fun i ->
            if i = 0 then
              mk_sub [| clits.(0); clits.(1); { var = chain.(0); sign = 1 } |]
            else if i = k - 3 then
              mk_sub
                [| { var = chain.(i - 1); sign = -1 };
                   clits.(k - 2);
                   clits.(k - 1)
                |]
            else
              mk_sub
                [| { var = chain.(i - 1); sign = -1 };
                   clits.(i + 1);
                   { var = chain.(i); sign = 1 }
                |])
      in
      { cweight = w; clits; chain; subs }
  end

let compile ?(options = default_options) (f : Dimacs.t) =
  let soft_sum = Dimacs.soft_weight_sum f in
  if not (Float.is_finite soft_sum) then
    error "soft clause weights sum to %g; not representable" soft_sum;
  let hard_weight = if Dimacs.num_soft f > 0 then soft_sum +. 1.0 else 1.0 in
  let gadget = clause_gadget ~options () in
  let b = Builder.create ~num_vars:f.Dimacs.num_vars () in
  let next_anc = ref f.Dimacs.num_vars in
  let clauses =
    Array.map (compile_clause b gadget ~next_anc ~hard_weight) f.Dimacs.clauses
  in
  let problem = Builder.build b in
  let dr = Scale.dynamic_range problem in
  let budget = Float.of_int 2 ** float_of_int options.precision_bits in
  if dr > budget then
    error
      "clause weight spread demands a coefficient dynamic range of %.3g, \
       beyond the %d-bit budget of %.3g; rescale the soft weights"
      dr options.precision_bits budget;
  {
    formula = f;
    problem;
    num_formula_vars = f.Dimacs.num_vars;
    num_ancillas = !next_anc - f.Dimacs.num_vars;
    hard_weight;
    gadget;
    clauses;
  }

let decode t spins =
  if Array.length spins < t.num_formula_vars then
    invalid_arg "Compile.decode: spin array shorter than the formula";
  Array.init t.num_formula_vars (fun i -> Problem.bool_of_spin spins.(i))

let spins_of_assignment t a =
  if Array.length a <> t.num_formula_vars then
    invalid_arg "Compile.spins_of_assignment: assignment length mismatch";
  let spins = Array.make t.problem.Problem.num_vars 1 in
  Array.iteri (fun i v -> spins.(i) <- Problem.spin_of_bool v) a;
  let lit_true l = spins.(l.var) = l.sign in
  Array.iter
    (fun cc ->
       if Array.length cc.clits >= 3 then begin
         (* Chain ancillas first: y_i = not (l_0 v ... v l_{i+1}).  Sub-
            clause literals then read them through [spins] like any other
            variable. *)
         let prefix = ref (lit_true cc.clits.(0)) in
         Array.iteri
           (fun i y ->
              prefix := !prefix || lit_true cc.clits.(i + 1);
              spins.(y) <- Problem.spin_of_bool (not !prefix))
           cc.chain;
         Array.iter
           (fun sub ->
              let idx =
                (if lit_true sub.slits.(0) then 4 else 0)
                + (if lit_true sub.slits.(1) then 2 else 0)
                + if lit_true sub.slits.(2) then 1 else 0
              in
              Array.iteri
                (fun j v -> spins.(sub.anc + j) <- Problem.spin_of_bool v)
                t.gadget.ancilla_for.(idx))
           cc.subs
       end)
    t.clauses;
  spins

let repair t spins = spins_of_assignment t (decode t spins)

let cost t a =
  let hard, soft = Dimacs.violations t.formula a in
  (t.hard_weight *. float_of_int hard) +. soft

let best_cost _ = 0.0
