type t = Topology.t

type coords = {
  orientation : int;
  offset : int;
  track : int;
  position : int;
}

let default_vertical_shifts = [| 2; 2; 2; 2; 10; 10; 10; 10; 6; 6; 6; 6 |]
let default_horizontal_shifts = [| 6; 6; 6; 6; 2; 2; 2; 2; 10; 10; 10; 10 |]

(* Shift lists ride inside [Topology.params] so that two Pegasus graphs with
   the same [m] but different crossing geometry have distinct identities
   (the embedding cache digests the params list).  Twelve values in [0, 12)
   pack into 4 bits each — 48 bits, comfortably inside an OCaml int. *)
let pack_shifts shifts =
  let packed = ref 0 in
  for i = 11 downto 0 do
    packed := (!packed lsl 4) lor shifts.(i)
  done;
  !packed

let unpack_shifts packed =
  Array.init 12 (fun i -> (packed lsr (4 * i)) land 0xF)

let qubit_of_coords ~m { orientation; offset; track; position } =
  if orientation < 0 || orientation > 1 then invalid_arg "Pegasus: bad orientation";
  if offset < 0 || offset >= m then invalid_arg "Pegasus: bad offset";
  if track < 0 || track >= 12 then invalid_arg "Pegasus: bad track";
  if position < 0 || position >= m - 1 then invalid_arg "Pegasus: bad position";
  ((((orientation * m) + offset) * 12) + track) * (m - 1) + position

let coords_of_qubit ~m q =
  let per_orientation = m * 12 * (m - 1) in
  if q < 0 || q >= 2 * per_orientation then invalid_arg "Pegasus: qubit out of range";
  let position = q mod (m - 1) in
  let rest = q / (m - 1) in
  let track = rest mod 12 in
  let rest = rest / 12 in
  let offset = rest mod m in
  let orientation = rest / m in
  { orientation; offset; track; position }

let create ?(broken = []) ?(vertical_shifts = default_vertical_shifts)
    ?(horizontal_shifts = default_horizontal_shifts) m =
  if m < 2 then invalid_arg "Pegasus.create: size must be >= 2";
  if Array.length vertical_shifts <> 12 || Array.length horizontal_shifts <> 12 then
    invalid_arg "Pegasus.create: shift lists must have length 12";
  Array.iter
    (fun s -> if s < 0 || s >= 12 then invalid_arg "Pegasus.create: shifts must be in [0, 12)")
    (Array.append vertical_shifts horizontal_shifts);
  let num_qubits = 2 * m * 12 * (m - 1) in
  let q c = qubit_of_coords ~m c in
  let edges = ref [] in
  (* Geometry: vertical qubit (0,w,k,z) is the segment
       x = 12w + k,  y in [12z + vshift(k), 12z + vshift(k) + 12)
     horizontal qubit (1,w,k,z) is
       y = 12w + k,  x in [12z + hshift(k), 12z + hshift(k) + 12). *)
  let vx w k = (12 * w) + k in
  let vy0 k z = (12 * z) + vertical_shifts.(k) in
  (* horizontal segment: y = 12w + k (used implicitly in the crossing scan) *)
  let hx0 k z = (12 * z) + horizontal_shifts.(k) in
  for w = 0 to m - 1 do
    for k = 0 to 11 do
      for z = 0 to m - 2 do
        (* External: consecutive collinear segments. *)
        if z + 1 <= m - 2 then begin
          edges :=
            ( q { orientation = 0; offset = w; track = k; position = z },
              q { orientation = 0; offset = w; track = k; position = z + 1 } )
            :: ( q { orientation = 1; offset = w; track = k; position = z },
                 q { orientation = 1; offset = w; track = k; position = z + 1 } )
            :: !edges
        end;
        (* Odd: the paired track at the same place. *)
        if k mod 2 = 0 then begin
          edges :=
            ( q { orientation = 0; offset = w; track = k; position = z },
              q { orientation = 0; offset = w; track = k + 1; position = z } )
            :: ( q { orientation = 1; offset = w; track = k; position = z },
                 q { orientation = 1; offset = w; track = k + 1; position = z } )
            :: !edges
        end
      done
    done
  done;
  (* Internal: a vertical and a horizontal segment that cross. *)
  for w = 0 to m - 1 do
    for k = 0 to 11 do
      for z = 0 to m - 2 do
        let x = vx w k and y0 = vy0 k z in
        (* Horizontal qubits with y = 12w' + k' in [y0, y0 + 12) and
           x in [hx0, hx0 + 12). *)
        for yy = y0 to y0 + 11 do
          let w' = yy / 12 and k' = yy mod 12 in
          if w' >= 0 && w' < m then begin
            (* x in [12z' + hshift(k'), ... + 12)  =>  z' = floor((x - hshift)/12) *)
            let z' = (x - horizontal_shifts.(k')) / 12 in
            let z' = if x - horizontal_shifts.(k') < 0 then -1 else z' in
            if z' >= 0 && z' <= m - 2 && x >= hx0 k' z' && x < hx0 k' z' + 12 then
              edges :=
                ( q { orientation = 0; offset = w; track = k; position = z },
                  q { orientation = 1; offset = w'; track = k'; position = z' } )
                :: !edges
          end
        done
      done
    done
  done;
  (* The idealized 24m(m-1) fabric leaves a few boundary segment pairs that
     cross nothing; production chips omit them (dwave_networkx's
     fabric_only).  Mark everything outside the largest connected component
     broken. *)
  let full = Topology.create ~name:"tmp" ~params:[] ~num_qubits ~edges:!edges ~broken () in
  let component = Array.make num_qubits (-1) in
  let count = ref 0 in
  for start = 0 to num_qubits - 1 do
    if component.(start) < 0 then begin
      let id = !count in
      incr count;
      let queue = Queue.create () in
      component.(start) <- id;
      Queue.add start queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        List.iter
          (fun v ->
             if component.(v) < 0 then begin
               component.(v) <- id;
               Queue.add v queue
             end)
          (Topology.neighbors full u)
      done
    end
  done;
  let sizes = Array.make !count 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) component;
  let largest = ref 0 in
  Array.iteri (fun c size -> if size > sizes.(!largest) then largest := c) sizes;
  let off_fabric =
    List.filteri (fun q _ -> component.(q) <> !largest)
      (List.init num_qubits (fun q -> q))
  in
  Topology.create
    ~name:(Printf.sprintf "pegasus-%d" m)
    ~params:
      [ ("m", m);
        ("vshifts", pack_shifts vertical_shifts);
        ("hshifts", pack_shifts horizontal_shifts) ]
    ~num_qubits ~edges:!edges ~broken:(broken @ off_fabric) ()

let size t = Topology.param t "m"
let vertical_shifts t = unpack_shifts (Topology.param t "vshifts")
let horizontal_shifts t = unpack_shifts (Topology.param t "hshifts")
let qubit t c = qubit_of_coords ~m:(size t) c
let coords t q = coords_of_qubit ~m:(size t) q
