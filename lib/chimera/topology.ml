type t = {
  name : string;
  params : (string * int) list;
  row_start : int array;
  col : int array;
  working : bool array;
  num_edges : int;
}

(* Edges are deduplicated through a Hashtbl keyed on the normalized pair, so
   building a topology is O(V + E) regardless of degree; the old per-edge
   [List.mem] scan made large Pegasus fabrics quadratic to construct. *)
let create ~name ~params ~num_qubits ~edges ?(broken = []) () =
  if num_qubits < 0 then invalid_arg "Topology.create: negative qubit count";
  let working = Array.make num_qubits true in
  List.iter
    (fun q ->
       if q < 0 || q >= num_qubits then
         invalid_arg "Topology.create: broken qubit out of range";
       working.(q) <- false)
    broken;
  let seen = Hashtbl.create (List.length edges * 2) in
  let degree = Array.make num_qubits 0 in
  let kept = ref [] in
  let num_edges = ref 0 in
  List.iter
    (fun (a, b) ->
       if a < 0 || a >= num_qubits || b < 0 || b >= num_qubits then
         invalid_arg "Topology.create: edge endpoint out of range";
       if a = b then invalid_arg "Topology.create: self-loop";
       if working.(a) && working.(b) then begin
         let key = if a < b then (a, b) else (b, a) in
         if not (Hashtbl.mem seen key) then begin
           Hashtbl.replace seen key ();
           kept := key :: !kept;
           degree.(a) <- degree.(a) + 1;
           degree.(b) <- degree.(b) + 1;
           incr num_edges
         end
       end)
    edges;
  let row_start = Array.make (num_qubits + 1) 0 in
  for q = 0 to num_qubits - 1 do
    row_start.(q + 1) <- row_start.(q) + degree.(q)
  done;
  let col = Array.make row_start.(num_qubits) 0 in
  let cursor = Array.sub row_start 0 num_qubits in
  List.iter
    (fun (a, b) ->
       col.(cursor.(a)) <- b;
       cursor.(a) <- cursor.(a) + 1;
       col.(cursor.(b)) <- a;
       cursor.(b) <- cursor.(b) + 1)
    !kept;
  (* Sort each row so [adjacent] can binary-search and iteration order is a
     canonical function of the edge set, not of input order. *)
  for q = 0 to num_qubits - 1 do
    let lo = row_start.(q) and hi = row_start.(q + 1) in
    let sub = Array.sub col lo (hi - lo) in
    Array.sort compare sub;
    Array.blit sub 0 col lo (hi - lo)
  done;
  { name; params; row_start; col; working; num_edges = !num_edges }

let num_qubits t = Array.length t.working

let num_working_qubits t =
  Array.fold_left (fun acc w -> if w then acc + 1 else acc) 0 t.working

let is_working t q = q >= 0 && q < num_qubits t && t.working.(q)

let degree t q =
  if q < 0 || q >= num_qubits t then invalid_arg "Topology.degree: out of range";
  t.row_start.(q + 1) - t.row_start.(q)

let iter_neighbors t q f =
  if q < 0 || q >= num_qubits t then invalid_arg "Topology.iter_neighbors: out of range";
  for k = t.row_start.(q) to t.row_start.(q + 1) - 1 do
    f (Array.unsafe_get t.col k)
  done

let neighbors t q =
  if q < 0 || q >= num_qubits t then invalid_arg "Topology.neighbors: out of range";
  List.init (degree t q) (fun i -> t.col.(t.row_start.(q) + i))

(* Rows are sorted, so membership is a binary search. *)
let adjacent t a b =
  if a < 0 || a >= num_qubits t then invalid_arg "Topology.adjacent: out of range";
  let rec search lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      let v = t.col.(mid) in
      if v = b then true else if v < b then search (mid + 1) hi else search lo mid
  in
  search t.row_start.(a) t.row_start.(a + 1)

let edges t =
  let acc = ref [] in
  for q = num_qubits t - 1 downto 0 do
    for k = t.row_start.(q + 1) - 1 downto t.row_start.(q) do
      let p = t.col.(k) in
      if q < p then acc := (q, p) :: !acc
    done
  done;
  !acc

let num_edges t = t.num_edges

let max_degree t =
  let best = ref 0 in
  for q = 0 to num_qubits t - 1 do
    best := max !best (degree t q)
  done;
  !best

let param t name = List.assoc name t.params

let is_bipartite t =
  let color = Array.make (num_qubits t) (-1) in
  let ok = ref true in
  for start = 0 to num_qubits t - 1 do
    if color.(start) < 0 && t.working.(start) then begin
      color.(start) <- 0;
      let queue = Queue.create () in
      Queue.add start queue;
      while not (Queue.is_empty queue) do
        let q = Queue.pop queue in
        iter_neighbors t q (fun n ->
            if color.(n) < 0 then begin
              color.(n) <- 1 - color.(q);
              Queue.add n queue
            end
            else if color.(n) = color.(q) then ok := false)
      done
    end
  done;
  !ok
